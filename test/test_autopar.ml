(** Tests for the loop→map auto-parallelization subsystem (lib/autopar):
    conversion coverage on Polybench kernels, WCR reduction certificates,
    conflict reports for loops that must NOT be parallelized, validity of
    the rewritten SDFGs, and bit-identity of multi-domain execution. *)

open Dcir_workloads
module Pipelines = Dcir_core.Pipelines
module Loop_to_map = Dcir_autopar.Loop_to_map
module Sdfg = Dcir_sdfg.Sdfg
module Validate = Dcir_sdfg.Validate
module Oracle = Dcir_fuzz.Oracle

let compile_autopar ~(src : string) ~(entry : string) :
    Sdfg.t * Loop_to_map.report =
  match Pipelines.compile ~autopar:true Pipelines.Dcir ~src ~entry with
  | Pipelines.CSdfg sdfg -> (
      match !Pipelines.last_autopar_report with
      | Some r -> (sdfg, r)
      | None -> Alcotest.fail "autopar compile left no report")
  | Pipelines.CMlir _ -> Alcotest.fail "Dcir pipeline did not produce an SDFG"

let converted_classes (r : Loop_to_map.report) :
    (string * Sdfg.par_class) list list =
  List.filter_map
    (fun (e : Loop_to_map.entry) ->
      match e.en_outcome with
      | Loop_to_map.Converted { co_classes; _ } -> Some co_classes
      | Loop_to_map.Rejected _ -> None)
    r

let rejections (r : Loop_to_map.report) : string list =
  List.filter_map
    (fun (e : Loop_to_map.entry) ->
      match e.en_outcome with
      | Loop_to_map.Rejected msg -> Some msg
      | Loop_to_map.Converted _ -> None)
    r

(* All map scopes anywhere in the SDFG, outermost first. *)
let rec maps_of_graph (g : Sdfg.graph) : Sdfg.map_node list =
  List.concat_map
    (fun (n : Sdfg.node) ->
      match n.kind with
      | Sdfg.MapN mn -> mn :: maps_of_graph mn.m_body
      | Sdfg.Access _ | Sdfg.TaskletN _ -> [])
    (Sdfg.nodes g)

let maps_of (sdfg : Sdfg.t) : Sdfg.map_node list =
  List.concat_map
    (fun (s : Sdfg.state) -> maps_of_graph s.s_graph)
    (Sdfg.states sdfg)

let rec graph_has_wcr_write (g : Sdfg.graph) (name : string)
    (w : Sdfg.wcr) : bool =
  List.exists
    (fun (e : Sdfg.edge) ->
      match e.e_memlet with
      | Some m -> String.equal m.data name && m.wcr = Some w
      | None -> false)
    (Sdfg.edges g)
  || List.exists
       (fun (n : Sdfg.node) ->
         match n.kind with
         | Sdfg.MapN mn -> graph_has_wcr_write mn.m_body name w
         | _ -> false)
       (Sdfg.nodes g)

(* ------------------------------------------------------------------ *)
(* Conversion coverage: each kernel's counted loops either become
   certified map scopes or leave a concrete rejection witness, and the
   rewritten SDFG still validates. *)

let check_kernel ~(min_converted : int) (w : Workload.t) () =
  let sdfg, report = compile_autopar ~src:w.src ~entry:w.entry in
  Alcotest.(check bool) "report covers the kernel's loops" true (report <> []);
  let conv = converted_classes report in
  if List.length conv < min_converted then
    Alcotest.failf "only %d loop(s) converted, expected at least %d:@.%s"
      (List.length conv) min_converted
      (Format.asprintf "%a" Loop_to_map.pp_report report);
  let certified =
    List.filter (fun (mn : Sdfg.map_node) -> mn.m_par <> None) (maps_of sdfg)
  in
  Alcotest.(check bool) "each conversion left a certified map" true
    (List.length certified >= List.length conv);
  (match Validate.errors sdfg with
  | [] -> ()
  | errs ->
      Alcotest.failf "rewritten SDFG no longer validates:@.%s"
        (String.concat "\n"
           (List.map
              (fun (d : Validate.diagnostic) -> d.message)
              errs)))

(* ------------------------------------------------------------------ *)
(* WCR reductions: converted accumulation loops must carry a reduction
   class in their certificate, and the map body must actually perform the
   update through a WCR memlet (the executor's merge step relies on it). *)

let check_reduction (w : Workload.t) () =
  let sdfg, report = compile_autopar ~src:w.src ~entry:w.entry in
  let reductions =
    List.concat_map
      (List.filter (fun (_, c) ->
           match c with Sdfg.ParReduction _ -> true | _ -> false))
      (converted_classes report)
  in
  Alcotest.(check bool) "at least one reduction certified" true
    (reductions <> []);
  let certs =
    List.filter_map (fun (mn : Sdfg.map_node) ->
        Option.map (fun c -> (mn, c)) mn.m_par)
      (maps_of sdfg)
  in
  List.iter
    (fun (name, cls) ->
      match cls with
      | Sdfg.ParReduction wcr ->
          let backed =
            List.exists
              (fun ((mn : Sdfg.map_node), (c : Sdfg.par_cert)) ->
                List.mem_assoc name c.pc_classes
                && graph_has_wcr_write mn.m_body name wcr)
              certs
          in
          Alcotest.(check bool)
            (Printf.sprintf "reduction '%s' backed by a WCR write" name)
            true backed
      | _ -> ())
    reductions

(* Prefix sum: s is accumulated AND read every iteration (B[i] = s), so
   the loop is loop-carried — a WCR-shaped update that must NOT be turned
   into a parallel reduction. *)
let prefix_sum_src =
  {|
double kernel_prefix(double A[64], double B[64]) {
  double s = 0.0;
  for (int i = 0; i < 64; i++) {
    s = s + A[i];
    B[i] = s;
  }
  return s;
}
|}

let test_prefix_sum_not_parallelized () =
  let _, report = compile_autopar ~src:prefix_sum_src ~entry:"kernel_prefix" in
  Alcotest.(check int) "no loop converted" 0
    (List.length (converted_classes report));
  Alcotest.(check bool) "rejection carries a witness" true
    (rejections report <> [])

(* Stencil time loops carry values between iterations through the whole
   array; the conflict report must say which subsets may overlap. *)
let test_jacobi_time_loop_rejected () =
  let _, report =
    compile_autopar ~src:Polybench.jacobi_1d.src
      ~entry:Polybench.jacobi_1d.entry
  in
  Alcotest.(check bool) "some loop rejected" true (rejections report <> []);
  Alcotest.(check bool) "witness names the overlap" true
    (List.exists
       (fun msg -> Tutil.contains msg "may overlap")
       (rejections report))

(* ------------------------------------------------------------------ *)
(* Execution: the auto-parallelized program stays correct against the
   unoptimized reference, and multi-domain execution is bit-identical to
   serial — outputs, return value, and every machine metric. *)

let check_identity (w : Workload.t) () =
  let compiled =
    Pipelines.compile ~autopar:true Pipelines.Dcir ~src:w.src ~entry:w.entry
  in
  let args = w.args () in
  let reference =
    Pipelines.run
      (Pipelines.CMlir (Dcir_cfront.Polygeist.compile w.src))
      ~entry:w.entry args
  in
  let serial = Pipelines.run compiled ~entry:w.entry args in
  let par = Pipelines.run ~jobs:3 compiled ~entry:w.entry args in
  Alcotest.(check (option string))
    "autopar output matches the reference" None
    (Oracle.divergence reference serial);
  Alcotest.(check (option string))
    "parallel run bit-identical to serial" None
    (Oracle.serial_par_divergence serial par)

let suite =
  ( "autopar",
    [
      Alcotest.test_case "gemm loops convert" `Quick
        (check_kernel ~min_converted:3 Polybench.gemm);
      Alcotest.test_case "mvt loops convert" `Quick
        (check_kernel ~min_converted:3 Polybench.mvt);
      Alcotest.test_case "atax loops convert" `Quick
        (check_kernel ~min_converted:3 Polybench.atax);
      Alcotest.test_case "bicg loops convert" `Quick
        (check_kernel ~min_converted:2 Polybench.bicg);
      Alcotest.test_case "gemm reduction certificates" `Quick
        (check_reduction Polybench.gemm);
      Alcotest.test_case "atax reduction certificates" `Quick
        (check_reduction Polybench.atax);
      Alcotest.test_case "prefix sum must stay serial" `Quick
        test_prefix_sum_not_parallelized;
      Alcotest.test_case "jacobi-1d time loop rejected" `Quick
        test_jacobi_time_loop_rejected;
      Alcotest.test_case "gemm serial/parallel identity" `Quick
        (check_identity Polybench.gemm);
      Alcotest.test_case "mvt serial/parallel identity" `Quick
        (check_identity Polybench.mvt);
      Alcotest.test_case "atax serial/parallel identity" `Quick
        (check_identity Polybench.atax);
    ] )
