(** Tests for the shared graph/id utilities underpinning both IRs. *)

open Dcir_support

let test_fresh_names () =
  let g = Id_gen.create () in
  Alcotest.(check string) "first" "s_0" (Id_gen.fresh g "s");
  Alcotest.(check string) "second" "s_1" (Id_gen.fresh g "s");
  Alcotest.(check string) "other prefix" "t_0" (Id_gen.fresh g "t");
  Id_gen.reserve g "s_9";
  Alcotest.(check string) "reserve skips" "s_10" (Id_gen.fresh g "s")

let test_topo_sort () =
  let g = Digraph.create ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let order = Digraph.topo_sort g in
  let pos x = Option.get (List.find_index (Int.equal x) order) in
  Alcotest.(check bool) "0 before 1" true (pos 0 < pos 1);
  Alcotest.(check bool) "1 before 3" true (pos 1 < pos 3);
  Alcotest.(check bool) "2 before 3" true (pos 2 < pos 3);
  let cyclic = Digraph.create ~n:2 [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "cycle raises" true
    (try
       ignore (Digraph.topo_sort cyclic);
       false
     with Invalid_argument _ -> true)

let test_reachability () =
  let g = Digraph.create ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
  let r = Digraph.reachable g ~roots:[ 0 ] in
  Alcotest.(check bool) "2 reachable" true r.(2);
  Alcotest.(check bool) "4 not" false r.(4);
  let co = Digraph.co_reachable g ~roots:[ 2 ] in
  Alcotest.(check bool) "0 co-reaches 2" true co.(0);
  Alcotest.(check bool) "3 does not" false co.(3)

let test_scc () =
  let g = Digraph.create ~n:4 [ (0, 1); (1, 0); (1, 2); (2, 3) ] in
  let comps = List.map (List.sort compare) (Digraph.scc g) in
  Alcotest.(check bool) "cycle grouped" true (List.mem [ 0; 1 ] comps);
  Alcotest.(check bool) "singletons split" true
    (List.mem [ 2 ] comps && List.mem [ 3 ] comps)

let test_idom () =
  (* Diamond: 0 -> {1,2} -> 3; idom(3) = 0. *)
  let g = Digraph.create ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let doms = Digraph.idom g ~root:0 in
  Alcotest.(check int) "idom 1" 0 doms.(1);
  Alcotest.(check int) "idom 3" 0 doms.(3);
  (* Loop shape: 0 -> 1 -> 2 -> 1; 1 dominates 2. *)
  let l = Digraph.create ~n:3 [ (0, 1); (1, 2); (2, 1) ] in
  let doms = Digraph.idom l ~root:0 in
  Alcotest.(check int) "loop body dominated by header" 1 doms.(2)

let test_union_find () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Union_find.union uf 4 5;
  Alcotest.(check bool) "0~2" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "0!~4" false (Union_find.same uf 0 4);
  Alcotest.(check int) "three groups" 3 (List.length (Union_find.groups uf))

let prop_rpo_starts_at_root =
  QCheck2.Test.make ~count:100 ~name:"reverse postorder starts at root"
    QCheck2.Gen.(list_size (int_range 0 30) (tup2 (int_range 0 9) (int_range 0 9)))
    (fun edges ->
      let g = Dcir_support.Digraph.create ~n:10 edges in
      match Dcir_support.Digraph.reverse_postorder g ~root:0 with
      | first :: _ -> first = 0
      | [] -> false)

(* Journal files are replaced, never truncated in place: a write that
   dies mid-emit must leave the previous bytes intact and no temp file
   behind, and a successful write must fully replace them. *)
let test_atomic_write () =
  let path = Filename.temp_file "dcir_atomic" ".txt" in
  let read () = In_channel.with_open_bin path In_channel.input_all in
  Atomic_io.write path (fun oc -> output_string oc "first\n");
  Alcotest.(check string) "initial write lands" "first\n" (read ());
  (try
     Atomic_io.write path (fun oc ->
         output_string oc "torn";
         failwith "disk full")
   with Failure _ -> ());
  Alcotest.(check string) "old bytes survive a failed write" "first\n"
    (read ());
  Alcotest.(check bool) "no temp file left behind" false
    (Sys.file_exists (path ^ ".tmp"));
  Atomic_io.write path (fun oc -> output_string oc "second\n");
  Alcotest.(check string) "successful write replaces" "second\n" (read ());
  Sys.remove path

let suite =
  ( "support",
    [
      Alcotest.test_case "fresh names" `Quick test_fresh_names;
      Alcotest.test_case "atomic journal writes" `Quick test_atomic_write;
      Alcotest.test_case "topological sort" `Quick test_topo_sort;
      Alcotest.test_case "reachability" `Quick test_reachability;
      Alcotest.test_case "strongly connected components" `Quick test_scc;
      Alcotest.test_case "immediate dominators" `Quick test_idom;
      Alcotest.test_case "union-find" `Quick test_union_find;
      QCheck_alcotest.to_alcotest prop_rpo_starts_at_root;
    ] )
