(** Integration tests over the paper's workloads: a representative subset of
    Polybench kernels plus the case studies run through every pipeline with
    output verification, and the headline shapes of the evaluation hold. *)

open Dcir_core
open Dcir_workloads

let cycles ms p =
  (List.find (fun (m : Pipelines.measurement) -> m.pipeline = p) ms).cycles

let run (w : Workload.t) =
  Pipelines.compare_pipelines ~src:w.src ~entry:w.entry (w.args ())

let check_correct (w : Workload.t) () =
  List.iter
    (fun (m : Pipelines.measurement) ->
      Alcotest.(check bool) (w.name ^ "/" ^ m.pipeline) true m.correct)
    (run w)

let test_fig2_shape () =
  let ms = run Case_studies.fig2_example in
  List.iter
    (fun (m : Pipelines.measurement) ->
      Alcotest.(check bool) m.pipeline true m.correct)
    ms;
  Alcotest.(check bool) "DCIR elides everything (>=100x)" true
    (cycles ms "gcc" /. Float.max (cycles ms "dcir") 1.0 > 100.0)

let test_syrk_shape () =
  (* Fig 7: the DaCe frontend's opaque tasklets lose to DCIR on syrk. *)
  let ms = run Polybench.syrk in
  Alcotest.(check bool) "dace slower than dcir on syrk" true
    (cycles ms "dace" > 1.1 *. cycles ms "dcir")

let test_milc_shape () =
  let ms = run Case_studies.milc in
  Alcotest.(check bool) "dcir >= 2x over gcc on milc" true
    (cycles ms "gcc" > 2.0 *. cycles ms "dcir")

let test_mlir_gap_on_accumulators () =
  (* Fig 6 mechanism: the MLIR pipeline misses register promotion, so
     accumulator kernels pay extra memory traffic; DCIR recovers it. *)
  List.iter
    (fun (w : Workload.t) ->
      let ms = run w in
      Alcotest.(check bool)
        (w.name ^ ": mlir slower than dcir")
        true
        (cycles ms "mlir" > 1.05 *. cycles ms "dcir"))
    [ Polybench.atax; Polybench.mvt; Polybench.mm2 ]

let suite =
  ( "workloads",
    [
      Alcotest.test_case "gemm all pipelines correct" `Slow
        (check_correct Polybench.gemm);
      Alcotest.test_case "gesummv all pipelines correct" `Quick
        (check_correct Polybench.gesummv);
      Alcotest.test_case "trisolv all pipelines correct" `Quick
        (check_correct Polybench.trisolv);
      Alcotest.test_case "durbin all pipelines correct" `Quick
        (check_correct Polybench.durbin);
      Alcotest.test_case "deriche all pipelines correct" `Slow
        (check_correct Polybench.deriche);
      Alcotest.test_case "jacobi-1d all pipelines correct" `Quick
        (check_correct Polybench.jacobi_1d);
      Alcotest.test_case "floyd-warshall all pipelines correct" `Slow
        (check_correct Polybench.floyd_warshall);
      Alcotest.test_case "bandwidth all pipelines correct" `Slow
        (check_correct Case_studies.bandwidth);
      Alcotest.test_case "fig2 shape" `Quick test_fig2_shape;
      Alcotest.test_case "fig7 (syrk) shape" `Slow test_syrk_shape;
      Alcotest.test_case "fig9 (milc) shape" `Slow test_milc_shape;
      Alcotest.test_case "fig6 mechanism" `Slow test_mlir_gap_on_accumulators;
    ] )

let () =
  Alcotest.run "dcir"
    [
      Test_support.suite;
      Test_symbolic.suite;
      Test_machine.suite;
      Test_mlir.suite;
      Test_cfront.suite;
      Test_mlir_passes.suite;
      Test_trapsafe.suite;
      Test_sdfg.suite;
      Test_interp_plans.suite;
      Test_dace_passes.suite;
      Test_obs.suite;
      Test_events.suite;
      Test_core.suite;
      Test_autopar.suite;
      Test_fuzz.suite;
      Test_resilience.suite;
      Test_serve.suite;
      suite;
    ]
