(** Trap-safety regression tests (optimization soundness): the O2
    pipelines must preserve trap behaviour — a division that did not
    execute in the source must not execute after optimization, and one
    that did must still fire — pinned across both interpreter modes and
    every pipeline. Plus unit tests for the generic {!Dataflow} framework
    (diamond fixpoints, transfer monotonicity), the store-forward
    multi-key hygiene fix, and LCM's structural and cycle-count wins. *)

open Dcir_mlir
open Dcir_cfront
module P = Dcir_mlir_passes
module Core = Dcir_core.Pipelines
module Df = Dcir_mlir_passes.Dataflow

let count_ops (m : Ir.modul) (name : string) : int =
  let n = ref 0 in
  Ir.walk_module m (fun o -> if String.equal o.Ir.name name then incr n);
  !n

let compile_with (passes : Pass.t list) (src : string) : Ir.modul =
  let m = Polygeist.compile src in
  ignore (Pass.run_to_fixpoint passes m);
  Verifier.verify_exn m;
  m

(* ------------------------------------------------------------------ *)
(* Trap parity: reference (unoptimized) vs every O2 pipeline, in both
   interpreter modes. *)

type outcome = Trapped | Finished of Core.run_result

let outcome_name = function Trapped -> "trap" | Finished _ -> "finish"

let run_opt (mode : Core.interp_mode) (kind : Core.kind) ~(src : string)
    ~(entry : string) (args : Core.arg list) : outcome =
  match
    let c = Core.compile kind ~src ~entry in
    Core.run ~interp_mode:mode c ~entry args
  with
  | r -> Finished r
  | exception e -> (
      match Dcir_fuzz.Oracle.trap_kind_of_exn e with
      | Some _ -> Trapped
      | None -> raise e)

let run_ref (mode : Core.interp_mode) ~(src : string) ~(entry : string)
    (args : Core.arg list) : outcome =
  match
    Core.run ~interp_mode:mode (Core.CMlir (Polygeist.compile src)) ~entry
      args
  with
  | r -> Finished r
  | exception e -> (
      match Dcir_fuzz.Oracle.trap_kind_of_exn e with
      | Some _ -> Trapped
      | None -> raise e)

let all_kinds =
  [
    ("gcc", Core.Gcc); ("clang", Core.Clang); ("mlir", Core.Mlir);
    ("dcir", Core.Dcir);
  ]

(** Every pipeline at O2 must agree with the unoptimized reference on
    whether the program traps, and on outputs when it does not. *)
let assert_parity ?(kinds = all_kinds) ~(what : string) ~(src : string)
    ~(entry : string) (args : Core.arg list) : unit =
  List.iter
    (fun (mode : Core.interp_mode) ->
      let reference = run_ref mode ~src ~entry args in
      List.iter
        (fun (kname, kind) ->
          let o = run_opt mode kind ~src ~entry args in
          let label =
            Printf.sprintf "%s [%s, %s]" what kname
              (match mode with
              | `Tree -> "tree"
              | `Compiled -> "compiled"
              | `Bytecode -> "bytecode"
              | `Adaptive -> "adaptive")
          in
          match (reference, o) with
          | Trapped, Trapped -> ()
          | Finished a, Finished b ->
              Alcotest.(check bool)
                (label ^ " outputs match")
                true
                (Tutil.outputs_close a b)
          | a, b ->
              Alcotest.failf "%s: reference %s but pipeline %s" label
                (outcome_name a) (outcome_name b))
        kinds)
    [ `Tree; `Compiled; `Bytecode; `Adaptive ]

(* A division inside a loop that runs zero times must not trap after
   optimization (pre-fix LICM hoisted it into the preheader). *)
let src_zero_trip =
  {|
int f(int n, int d) {
  int s = 0;
  for (int i = 0; i < n; i++) { s = s + 100 / d; }
  return s;
}
|}

let test_parity_zero_trip () =
  assert_parity ~what:"zero-trip" ~src:src_zero_trip ~entry:"f"
    [ Core.AInt 0; Core.AInt 0 ];
  assert_parity ~what:"nonzero-trip" ~src:src_zero_trip ~entry:"f"
    [ Core.AInt 2; Core.AInt 0 ];
  assert_parity ~what:"benign" ~src:src_zero_trip ~entry:"f"
    [ Core.AInt 5; Core.AInt 3 ]

(* An unused trapping division must survive DCE: it is the only occurrence,
   so nothing dominates it. *)
let src_unused =
  {|
int g(int a, int d) {
  int t = a / d;
  return a + 1;
}
|}

(* The control-centric pipelines only: in the data-centric IR a value
   with no dataflow edge to any output is structurally absent, so the
   dcir pipeline drops unobservable divisions by construction — which is
   why the fuzzer's trap grammar always stores division results. The
   contract under test here is the control-side one: [Dce] must keep an
   unused trapping op with no dominating twin. *)
let test_parity_unused_division () =
  let kinds = [ ("gcc", Core.Gcc); ("clang", Core.Clang); ("mlir", Core.Mlir) ] in
  assert_parity ~kinds ~what:"unused-div" ~src:src_unused ~entry:"g"
    [ Core.AInt 7; Core.AInt 0 ];
  assert_parity ~kinds ~what:"unused-div-ok" ~src:src_unused ~entry:"g"
    [ Core.AInt 7; Core.AInt 2 ];
  let m =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Cse.pass; P.Dce.pass ]
      src_unused
  in
  Alcotest.(check int) "unused division survives DCE" 1
    (count_ops m "arith.divsi")

(* CSE may merge two identical divisions (the first dominates the second
   in the same region); the merged op still traps for d = 0. *)
let src_cse_pair =
  {|
int h(int a, int d) {
  int x = a / d;
  int y = a / d;
  return x + y;
}
|}

let test_parity_cse_pair () =
  assert_parity ~what:"cse-pair" ~src:src_cse_pair ~entry:"h"
    [ Core.AInt 9; Core.AInt 0 ];
  assert_parity ~what:"cse-pair-ok" ~src:src_cse_pair ~entry:"h"
    [ Core.AInt 9; Core.AInt 3 ];
  let m =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Cse.pass; P.Dce.pass ]
      src_cse_pair
  in
  Alcotest.(check int) "one division retained" 1 (count_ops m "arith.divsi")

(* The Bril hoist-thru-loop shape: a loop-invariant division inside a
   provably nonzero-trip loop. LCM may hoist it (constant bounds prove the
   loop runs), and trap behaviour is unchanged either way. *)
let src_hoist =
  {|
int k(int a, int d) {
  int s = 0;
  for (int i = 0; i < 4; i++) { s = s + a / d; }
  return s;
}
|}

let divsi_inside_loop (m : Ir.modul) : int =
  let n = ref 0 in
  Ir.walk_module m (fun o ->
      if String.equal o.Ir.name "scf.for" then
        List.iter
          (fun r ->
            Ir.walk_region r (fun inner ->
                if String.equal inner.Ir.name "arith.divsi" then incr n))
          o.Ir.regions);
  !n

let test_parity_lcm_hoist () =
  assert_parity ~what:"lcm-hoist" ~src:src_hoist ~entry:"k"
    [ Core.AInt 8; Core.AInt 0 ];
  assert_parity ~what:"lcm-hoist-ok" ~src:src_hoist ~entry:"k"
    [ Core.AInt 8; Core.AInt 2 ];
  (* Structurally: LCM alone (no LICM) moves the division out of the
     proven-nonzero loop... *)
  let m =
    compile_with [ P.Mem2reg.pass; P.Canonicalize.pass; P.Lcm.pass ] src_hoist
  in
  Alcotest.(check int) "division hoisted by LCM" 0 (divsi_inside_loop m);
  Alcotest.(check int) "division still present" 1 (count_ops m "arith.divsi");
  (* ...but never out of a possibly-zero-trip loop (symbolic bound): the
     bypass edge stops anticipability at the loop entry. *)
  let m0 =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Lcm.pass ]
      src_zero_trip
  in
  Alcotest.(check int) "division stays in zero-trip loop" 1
    (divsi_inside_loop m0)

(* ------------------------------------------------------------------ *)
(* Dominance-based trap dedup: CSE and DCE decide trapping-op reuse on
   the {!Dataflow} CFG rather than region scoping. A division inside a
   proven-nonzero-trip loop dominates the code after the loop, so an
   unused duplicate there may go; with a symbolic (possibly-zero) bound
   the bypass edge breaks dominance and the duplicate must stay; and
   sibling [scf.if] branches never dominate each other. *)

let src_dom_nonzero =
  {|
int wa(int a, int d) {
  int s = 0;
  for (int i = 0; i < 4; i++) { s = s + a / d; }
  int t = a / d;
  return s;
}
|}

let src_dom_zero_trip =
  {|
int wb(int a, int d, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) { s = s + a / d; }
  int t = a / d;
  return s;
}
|}

let src_dom_siblings =
  {|
int wc(int a, int d, int c) {
  int x = 0;
  if (c > 0) { x = a / d; } else { x = a / d + 1; }
  return x;
}
|}

let ctl_kinds =
  [ ("gcc", Core.Gcc); ("clang", Core.Clang); ("mlir", Core.Mlir) ]

let test_dominance_trap_dedup () =
  (* Proven-nonzero loop: the in-loop division dominates the unused
     post-loop duplicate, so DCE may delete the duplicate — the witness
     already trapped or passed with the same operands. *)
  let m =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Dce.pass ]
      src_dom_nonzero
  in
  Alcotest.(check int) "post-loop duplicate deleted" 1
    (count_ops m "arith.divsi");
  Alcotest.(check int) "surviving division is the in-loop witness" 1
    (divsi_inside_loop m);
  assert_parity ~kinds:ctl_kinds ~what:"dom-nonzero" ~src:src_dom_nonzero
    ~entry:"wa"
    [ Core.AInt 7; Core.AInt 0 ];
  (* ...but with a possibly-zero trip count the bypass edge breaks
     dominance: on the n = 0 path the duplicate's trap is the only one,
     so neither CSE nor DCE may touch it. *)
  let m0 =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Cse.pass; P.Dce.pass ]
      src_dom_zero_trip
  in
  Alcotest.(check int) "zero-trip duplicate survives" 2
    (count_ops m0 "arith.divsi");
  assert_parity ~kinds:ctl_kinds ~what:"dom-zero-trip"
    ~src:src_dom_zero_trip ~entry:"wb"
    [ Core.AInt 7; Core.AInt 0; Core.AInt 0 ];
  (* Sibling branches never dominate each other: same-signature divisions
     in the two arms stay independent. *)
  let m1 =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Cse.pass; P.Dce.pass ]
      src_dom_siblings
  in
  Alcotest.(check int) "sibling divisions not merged" 2
    (count_ops m1 "arith.divsi")

(* ------------------------------------------------------------------ *)
(* Dataflow framework units *)

let diamond_src =
  {|
int df(int a, int b, int c) {
  int r = a * b;
  if (c > 0) { r = r + a; } else { r = r - b; }
  return r + 1;
}
|}

let diamond_cfg () : Df.cfg =
  let m = Polygeist.compile diamond_src in
  ignore (Pass.run_to_fixpoint [ P.Mem2reg.pass ] m);
  let f = Option.get (Ir.find_func m "df") in
  Df.build_cfg (Option.get f.Ir.fbody)

let test_dataflow_diamond () =
  let cfg = diamond_cfg () in
  let n = Array.length cfg.Df.blocks in
  let fork =
    match
      Array.to_list cfg.Df.blocks
      |> List.find_opt (fun (b : Df.block) -> List.length b.Df.succs = 2)
    with
    | Some b -> b.Df.bid
    | None -> Alcotest.fail "no fork block in diamond CFG"
  in
  let join =
    match
      Array.to_list cfg.Df.blocks
      |> List.find_opt (fun (b : Df.block) -> List.length b.Df.preds = 2)
    with
    | Some b -> b.Df.bid
    | None -> Alcotest.fail "no join block in diamond CFG"
  in
  let branches = cfg.Df.blocks.(fork).Df.succs in
  Alcotest.(check int) "two branches" 2 (List.length branches);
  (* Forward reachability (union meet): every block reaches itself and the
     join sees both branches. *)
  let reach =
    Df.solve cfg ~dir:Df.Forward ~nbits:n
      ~meet:`Union
      ~boundary:(Df.Bits.create ~full:false n)
      ~transfer:(fun b x ->
        let s = Df.Bits.copy x in
        Df.Bits.add s b;
        s)
      ()
  in
  List.iter
    (fun br ->
      Alcotest.(check bool)
        (Printf.sprintf "branch %d reaches join" br)
        true
        (Df.Bits.mem reach.Df.inb.(join) br))
    branches;
  let b0 = List.hd branches and b1 = List.nth branches 1 in
  Alcotest.(check bool) "branches do not reach each other" false
    (Df.Bits.mem reach.Df.inb.(b0) b1 || Df.Bits.mem reach.Df.inb.(b1) b0);
  (* Backward reachability: the fork is reached (backwards) from both
     branches. *)
  let breach =
    Df.solve cfg ~dir:Df.Backward ~nbits:n
      ~meet:`Union
      ~boundary:(Df.Bits.create ~full:false n)
      ~transfer:(fun b x ->
        let s = Df.Bits.copy x in
        Df.Bits.add s b;
        s)
      ()
  in
  List.iter
    (fun br ->
      Alcotest.(check bool)
        (Printf.sprintf "fork backward-reaches branch %d" br)
        true
        (Df.Bits.mem breach.Df.inb.(fork) br))
    branches;
  (* Dominators: the fork dominates branches and join; neither branch
     dominates the join. *)
  let doms = Df.dominators cfg in
  List.iter
    (fun br ->
      Alcotest.(check bool) "fork dominates branch" true
        (Df.dominates doms fork br))
    branches;
  Alcotest.(check bool) "fork dominates join" true
    (Df.dominates doms fork join);
  Alcotest.(check bool) "branches do not dominate join" false
    (Df.dominates doms b0 join || Df.dominates doms b1 join)

(* Gen/kill transfer functions are monotone: x ⊆ y implies f(x) ⊆ f(y).
   Smoke-checked on pseudo-random gen/kill/input triples (fixed LCG, no
   wall-clock seeds). *)
let test_transfer_monotone () =
  let nbits = 24 in
  let state = ref 12345 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  let random_bits () =
    let s = Df.Bits.create ~full:false nbits in
    for i = 0 to nbits - 1 do
      if next () land 3 = 0 then Df.Bits.add s i
    done;
    s
  in
  for _ = 1 to 50 do
    let gen = random_bits () and kill = random_bits () in
    let x = random_bits () in
    (* y = x ∪ (more bits) ⊇ x *)
    let y = Df.Bits.copy x in
    Df.Bits.union_into y (random_bits ());
    let f s =
      let r = Df.Bits.copy s in
      Df.Bits.diff_into r kill;
      Df.Bits.union_into r gen;
      r
    in
    let fx = f x and fy = f y in
    for i = 0 to nbits - 1 do
      if Df.Bits.mem fx i then
        Alcotest.(check bool) "monotone: f(x) ⊆ f(y)" true (Df.Bits.mem fy i)
    done
  done

(* ------------------------------------------------------------------ *)
(* Store-forward hygiene: two stores to distinct constant indices must
   both stay tracked, so both following loads forward. *)

let test_store_forward_two_keys () =
  let src =
    {|
double p(double a, double b) {
  double t[2];
  t[0] = a;
  t[1] = b;
  return t[0] + t[1];
}
|}
  in
  let m =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Cse.pass; P.Store_forward.pass;
        P.Dce.pass ]
      src
  in
  Alcotest.(check int) "both loads forwarded" 0 (count_ops m "memref.load");
  let results, _ =
    Interp.run m ~entry:"p"
      [
        Interp.Scalar (Dcir_machine.Value.VFloat 2.5);
        Interp.Scalar (Dcir_machine.Value.VFloat 4.0);
      ]
  in
  Alcotest.(check (float 1e-9)) "semantics" 6.5
    (Dcir_machine.Value.as_float (List.hd results))

(* ------------------------------------------------------------------ *)
(* LCM local availability: repeated loads of the same element with no
   intervening store collapse to one (the floyd-warshall shape). *)

let test_lcm_local_reuse () =
  let src =
    {|
int q(int a[4], int i, int j) {
  int m = a[i] + a[j];
  int n = a[i] + a[j];
  return m + n;
}
|}
  in
  let before = compile_with [ P.Mem2reg.pass ] src in
  Alcotest.(check int) "four loads before" 4 (count_ops before "memref.load");
  let after = compile_with [ P.Mem2reg.pass; P.Lcm.pass ] src in
  Alcotest.(check int) "two loads after" 2 (count_ops after "memref.load")

(* LCM strictly reduces executed cycles on the Fig 6 gap kernels it
   targets (and the full-suite report_compare gate in bench/ ensures it
   regresses none). *)
let test_lcm_reduces_cycles () =
  List.iter
    (fun wname ->
      let w =
        List.find
          (fun (w : Dcir_workloads.Workload.t) -> String.equal w.name wname)
          Dcir_workloads.Polybench.all
      in
      let cycles disable =
        let c = Core.compile ~disable Core.Dcir ~src:w.src ~entry:w.entry in
        let r = Core.run c ~entry:w.entry (w.args ()) in
        r.Core.metrics.Dcir_machine.Metrics.cycles
      in
      let with_lcm = cycles [] and without_lcm = cycles [ "lcm" ] in
      Alcotest.(check bool)
        (Printf.sprintf "%s: lcm strictly reduces cycles (%.0f < %.0f)" wname
           with_lcm without_lcm)
        true
        (with_lcm < without_lcm))
    [ "floyd-warshall"; "cholesky"; "correlation" ]

let suite =
  ( "trap-safety",
    [
      Alcotest.test_case "parity: division in zero-trip loop" `Quick
        test_parity_zero_trip;
      Alcotest.test_case "parity: unused trapping division" `Quick
        test_parity_unused_division;
      Alcotest.test_case "parity: CSE'd division pair" `Quick
        test_parity_cse_pair;
      Alcotest.test_case "parity: LCM hoist-through-loop" `Quick
        test_parity_lcm_hoist;
      Alcotest.test_case "dominance: trap dedup on the CFG" `Quick
        test_dominance_trap_dedup;
      Alcotest.test_case "dataflow: diamond fixpoints + dominators" `Quick
        test_dataflow_diamond;
      Alcotest.test_case "dataflow: transfer monotonicity" `Quick
        test_transfer_monotone;
      Alcotest.test_case "store-forward: two keys tracked" `Quick
        test_store_forward_two_keys;
      Alcotest.test_case "lcm: local load reuse" `Quick test_lcm_local_reuse;
      Alcotest.test_case "lcm: reduces cycles on gap kernels" `Slow
        test_lcm_reduces_cycles;
    ] )
