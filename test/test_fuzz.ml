(** Tests for the robustness subsystem: the fuzz generator/oracle/shrinker
    and checked pass execution (snapshot / re-verify / rollback with crash
    reproducers) in both pass drivers. *)

module Gen = Dcir_fuzz.Gen
module Oracle = Dcir_fuzz.Oracle
module Shrink = Dcir_fuzz.Shrink
module Rng = Dcir_fuzz.Rng
module Ir = Dcir_mlir.Ir
module Pass = Dcir_mlir.Pass
module Verifier = Dcir_mlir.Verifier
module Diag = Dcir_support.Diagnostics
module Sdfg = Dcir_sdfg.Sdfg
module Driver = Dcir_dace_passes.Driver
module Pipelines = Dcir_core.Pipelines

(* Printed MLIR modulo SSA value numbering: snapshot/restore clones the
   module, drawing fresh ids from the global generator, so only the numeric
   suffixes differ between a module and its rollback. *)
let strip_ids (s : string) : string =
  String.to_seq s
  |> Seq.filter (fun c -> not (c >= '0' && c <= '9'))
  |> String.of_seq

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_generator_deterministic () =
  let a = Gen.generate 12345 and b = Gen.generate 12345 in
  Alcotest.(check string) "same seed, same source" a.src b.src;
  let c = Gen.generate 54321 in
  Alcotest.(check bool) "different seed, different source" true
    (not (String.equal a.src c.src))

let test_generated_programs_compile () =
  (* Every generated program must pass the full frontend — the generator's
     well-typedness guarantee. *)
  for i = 0 to 24 do
    let case = Gen.generate (Rng.derive 7 i) in
    match Dcir_cfront.Polygeist.compile case.src with
    | _ -> ()
    | exception e ->
        Alcotest.failf "case seed %d: frontend rejected generated program: %s\n%s"
          case.seed (Printexc.to_string e) case.src
  done

(* ------------------------------------------------------------------ *)
(* Oracle *)

let test_oracle_agreement_smoke () =
  (* A small inline campaign; the 100-program CI campaign runs via the
     dune runtest rule invoking `dcir fuzz`. *)
  for i = 0 to 7 do
    let case = Gen.generate (Rng.derive 42 i) in
    match Oracle.check case with
    | [] -> ()
    | fails ->
        Alcotest.failf "case seed %d: %s\n%s" case.seed
          (String.concat "; " (List.map Oracle.failure_str fails))
          case.src
  done

(* ------------------------------------------------------------------ *)
(* Shrinker *)

let test_shrinker_minimizes () =
  let open Dcir_cfront.C_ast in
  (* Inject an unsupported statement into a generated program: while-loops
     are outside the lowered subset, so the reference frontend rejects the
     whole program. The shrinker must strip everything else away. *)
  let base = Gen.generate 99 in
  let f = List.hd base.prog.funcs in
  let poisoned = SWhile (EBinop (Lt, EInt 0, EInt 1), []) in
  let prog = { funcs = [ { f with body = f.body @ [ poisoned ] } ] } in
  let case =
    { base with Gen.prog; src = Dcir_fuzz.Cprint.program_str prog }
  in
  let fails = Oracle.check case in
  Alcotest.(check bool) "reference rejects the poisoned program" true
    (List.exists (fun (fl : Oracle.failure) -> fl.f_invalid) fails);
  let shrunk, shrunk_fails = Shrink.shrink case fails in
  Alcotest.(check bool) "shrunk case still fails" true (shrunk_fails <> []);
  Alcotest.(check int) "minimized to the injected statement alone" 1
    (List.length (List.hd shrunk.Gen.prog.funcs).body)

(* ------------------------------------------------------------------ *)
(* Checked pass execution: MLIR driver *)

let check_reproducer ~(pass_name : string) (path : string option) : unit =
  match path with
  | None -> Alcotest.fail "no crash reproducer written"
  | Some p ->
      Alcotest.(check bool) "reproducer file exists" true (Sys.file_exists p);
      let contents = read_file p in
      Alcotest.(check bool) "reproducer names the pass pipeline" true
        (Tutil.contains contents
           (Printf.sprintf "pass-pipeline='%s'" pass_name));
      Sys.remove p

let test_checked_mlir_rollback () =
  let src = "double f(double x) {\n  return (x + 1.0);\n}\n" in
  let m = Dcir_cfront.Polygeist.compile src in
  let before = Dcir_mlir.Printer.module_to_string m in
  (* Deliberately broken pass: drops the first op of the entry function,
     leaving a use of an undefined value behind. *)
  let broken =
    Pass.make "break-ir" (fun (m : Ir.modul) ->
        (match (List.hd m.funcs).fbody with
        | Some r -> r.rops <- List.tl r.rops
        | None -> ());
        true)
  in
  let changed, st = Pass.run_to_fixpoint_stats ~checked:true [ broken ] m in
  Alcotest.(check bool) "no net change reported" false changed;
  Alcotest.(check int) "exactly one incident" 1 (List.length st.incidents);
  let inc = List.hd st.incidents in
  Alcotest.(check string) "incident names the pass" "break-ir" inc.Diag.in_pass;
  Alcotest.(check string) "module rolled back to the pre-pass IR"
    (strip_ids before)
    (strip_ids (Dcir_mlir.Printer.module_to_string m));
  Alcotest.(check int) "restored module verifies" 0
    (List.length
       (List.filter
          (fun (d : Verifier.diagnostic) -> d.severity = `Error)
          (Verifier.verify_module m)));
  check_reproducer ~pass_name:"break-ir" inc.Diag.reproducer

let test_checked_mlir_crash_recovered () =
  (* A pass that raises must also be rolled back, not crash the driver. *)
  let m = Dcir_cfront.Polygeist.compile "double g(double x) {\n  return x;\n}\n" in
  let before = Dcir_mlir.Printer.module_to_string m in
  let crasher = Pass.make "crash-pass" (fun _ -> failwith "boom") in
  let changed, st = Pass.run_to_fixpoint_stats ~checked:true [ crasher ] m in
  Alcotest.(check bool) "no net change reported" false changed;
  Alcotest.(check int) "exactly one incident" 1 (List.length st.incidents);
  let inc = List.hd st.incidents in
  Alcotest.(check bool) "incident records the exception" true
    (Tutil.contains inc.Diag.reason "boom");
  Alcotest.(check string) "module untouched" (strip_ids before)
    (strip_ids (Dcir_mlir.Printer.module_to_string m));
  (match inc.Diag.reproducer with Some p -> Sys.remove p | None -> ())

(* ------------------------------------------------------------------ *)
(* Checked pass execution: DaCe driver *)

let test_checked_dace_rollback () =
  let src =
    "void h(double x[8], double y[8]) {\n\
    \  for (int i = 0; i < 8; i++) {\n\
    \    y[i] = (x[i] * 2.0);\n\
    \  }\n\
     }\n"
  in
  let sdfg =
    match
      Pipelines.compile ~optimize_sdfg:false Pipelines.Dace ~src ~entry:"h"
    with
    | Pipelines.CSdfg s -> s
    | Pipelines.CMlir _ -> Alcotest.fail "expected an SDFG"
  in
  let before = Dcir_sdfg.Printer.to_string sdfg in
  (* Deliberately broken pass: drops every container, so all memlets fail
     validation. *)
  let broken =
    ("clear-containers", fun (s : Sdfg.t) -> Hashtbl.reset s.containers; true)
  in
  let acc = Driver.new_accum () in
  let changed = Driver.fixpoint ~accum:acc ~checked:true [ broken ] sdfg in
  Alcotest.(check bool) "no net change reported" false changed;
  Alcotest.(check int) "exactly one incident" 1 (List.length acc.incidents);
  let inc = List.hd acc.incidents in
  Alcotest.(check string) "incident names the pass" "clear-containers"
    inc.Diag.in_pass;
  Alcotest.(check string) "SDFG rolled back to the pre-pass form" before
    (Dcir_sdfg.Printer.to_string sdfg);
  Alcotest.(check int) "restored SDFG validates" 0
    (List.length (Dcir_sdfg.Validate.errors sdfg));
  (* The pass is disabled for the rest of the fixpoint: a second run with
     the shared accumulator records no new incident. *)
  let changed2 = Driver.fixpoint ~accum:acc ~checked:true [ broken ] sdfg in
  Alcotest.(check bool) "disabled pass no longer runs" false changed2;
  Alcotest.(check int) "no further incidents" 1 (List.length acc.incidents);
  check_reproducer ~pass_name:"clear-containers" inc.Diag.reproducer

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "generator determinism" `Quick
        test_generator_deterministic;
      Alcotest.test_case "generated programs compile" `Quick
        test_generated_programs_compile;
      Alcotest.test_case "oracle agreement smoke" `Quick
        test_oracle_agreement_smoke;
      Alcotest.test_case "shrinker minimizes" `Quick test_shrinker_minimizes;
      Alcotest.test_case "checked MLIR rollback" `Quick
        test_checked_mlir_rollback;
      Alcotest.test_case "checked MLIR crash recovery" `Quick
        test_checked_mlir_crash_recovered;
      Alcotest.test_case "checked DaCe rollback" `Quick
        test_checked_dace_rollback;
    ] )
