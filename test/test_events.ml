(** Tests for decision provenance: the metrics registry (histogram
    bucket-edge semantics, reset freshness), the structured event stream
    (sequencing, ambient install, serialization), byte-identical
    same-seed golden streams from `dcir explain` and the coverage
    campaign, the explain narrative on certified / refused / degraded
    programs, and the Polybench-wide invariant that every autopar
    refusal carries a conflict witness. *)

module Obs = Dcir_obs.Obs
module Metrics = Dcir_obs.Metrics
module Events = Dcir_obs.Events
module Json = Dcir_obs.Json
module Pipelines = Dcir_core.Pipelines
module Explain = Dcir_core.Explain
module Budget = Dcir_resilience.Budget
module Polybench = Dcir_workloads.Polybench

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_histogram_edges () =
  Metrics.reset_all ();
  let h = Metrics.Histogram.make "test.hist.edges" ~edges:[| 1.0; 2.0; 5.0 |] in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 1.5; 3.0; 7.0 ];
  (* v <= edge lands in that bucket; past the last edge is the overflow
     slot. 0.5 and the boundary value 1.0 both land in bucket 0. *)
  Alcotest.(check (array int))
    "bucket counts (inclusive upper edges + overflow)" [| 2; 1; 1; 1 |]
    (Metrics.Histogram.counts h);
  Alcotest.(check int) "total" 5 (Metrics.Histogram.total h);
  Alcotest.(check (float 1e-9)) "sum" 13.0 (Metrics.Histogram.sum h)

let test_histogram_validation () =
  Alcotest.check_raises "empty edges rejected"
    (Invalid_argument "Metrics.Histogram.make: empty bucket edges")
    (fun () -> ignore (Metrics.Histogram.make "test.hist.bad0" ~edges:[||]));
  Alcotest.check_raises "non-ascending edges rejected"
    (Invalid_argument "Metrics.Histogram.make: edges must ascend strictly")
    (fun () ->
      ignore (Metrics.Histogram.make "test.hist.bad1" ~edges:[| 2.0; 1.0 |]))

let test_obs_reset_fresh () =
  (* Satellite fix: [Obs.reset] must restore a fully fresh collector —
     span state, the legacy Obs counters, AND the metrics registry. *)
  Obs.enable ();
  Fun.protect ~finally:Obs.disable (fun () ->
      Obs.reset ();
      let legacy = Obs.Counter.make "test.reset.legacy" in
      Obs.Counter.incr legacy ~by:7;
      let c = Metrics.Counter.make "test.reset.counter" in
      Metrics.Counter.incr c ~by:3;
      let h = Metrics.Histogram.make "test.reset.hist" ~edges:[| 1.0 |] in
      Metrics.Histogram.observe h 0.5;
      Obs.with_span "stale" (fun () -> ());
      let epoch_before = Obs.epoch_s () in
      Obs.reset ();
      Alcotest.(check int) "no spans survive" 0 (List.length (Obs.roots ()));
      Alcotest.(check int) "legacy counter zeroed" 0 (Obs.Counter.value legacy);
      Alcotest.(check int) "metrics counter zeroed" 0 (Metrics.Counter.value c);
      Alcotest.(check int) "histogram zeroed" 0 (Metrics.Histogram.total h);
      Alcotest.(check bool) "epoch advanced" true
        (Obs.epoch_s () >= epoch_before))

(* ------------------------------------------------------------------ *)
(* Event stream basics *)

let test_event_stream () =
  let t = Events.create () in
  Events.install t;
  Fun.protect ~finally:Events.clear (fun () ->
      Events.emit ~code:"NOTE" [ ("msg", Json.Str "a") ];
      Events.emit ~code:"PHASE" [ ("name", Json.Str "b") ]);
  Events.emit ~code:"NOTE" [ ("msg", Json.Str "after clear: dropped") ];
  Alcotest.(check int) "two events recorded" 2 (Events.length t);
  Alcotest.(check (list int))
    "contiguous seqs" [ 0; 1 ]
    (List.map (fun (e : Events.event) -> e.Events.ev_seq) (Events.events t));
  List.iter
    (fun (e : Events.event) ->
      Alcotest.(check bool)
        (e.Events.ev_code ^ " in catalogue")
        true
        (Events.is_known e.Events.ev_code))
    (Events.events t);
  match Events.to_json t with
  | Json.Obj (("schema", Json.Str "dcir-events/1") :: _) -> ()
  | j -> Alcotest.failf "bad schema header: %s" (Json.to_string j)

(* ------------------------------------------------------------------ *)
(* Explain narratives *)

let contains (haystack : string) (needle : string) : bool =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let map_and_scan_src =
  {|
void kernel(int n, double A[64], double B[64]) {
  for (int i = 0; i < n; i++) {
    B[i] = A[i] * 2.0 + 1.0;
  }
  for (int i = 1; i < n; i++) {
    A[i] = A[i] + A[i - 1];
  }
}
|}

let explain_fixture ?limits ?(run = false) () =
  Explain.explain ?limits ~run Pipelines.Dcir ~src:map_and_scan_src
    ~entry:"kernel"
    ~args:(fun () ->
      [
        Pipelines.AInt 64;
        Pipelines.AFloatArr (Array.make 64 1.0, [| 64 |]);
        Pipelines.AFloatArr (Array.make 64 0.0, [| 64 |]);
      ])
    ()

let test_explain_certified_and_refused () =
  let x = explain_fixture ~run:true () in
  let evs = Explain.events x in
  Alcotest.(check int)
    "one loop certified" 1
    (List.length (Events.with_code evs "APAR-CERT"));
  (match Events.with_code evs "APAR-REFUSE" with
  | [ e ] ->
      let w = Events.str_field e "witness" in
      Alcotest.(check bool) "refusal carries a witness" true
        (String.length w > 0);
      Alcotest.(check bool) "witness names the conflicting array" true
        (String.length w >= 2 && String.sub w 0 2 = "_A")
  | es -> Alcotest.failf "expected one refusal, got %d" (List.length es));
  let text = Explain.to_string x in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("narrative mentions " ^ needle) true
        (contains text needle))
    [ "[APAR-CERT]"; "[APAR-REFUSE]"; "[TIER-LAND]"; "[EXEC-MODE]"; "summary:" ]

let test_explain_degraded () =
  (* A fuel budget too small for the full O2 pass pipeline forces the
     degradation ladder down; the narrative must name the failed tier
     (stable-coded) and the tier it landed at. *)
  let x =
    explain_fixture ~limits:{ Budget.default with Budget.max_fuel = 10 } ()
  in
  (match x.Explain.ex_report with
  | Some r ->
      Alcotest.(check bool) "landed below the requested tier" true
        (r.Pipelines.res_landed <> r.Pipelines.res_requested)
  | None -> Alcotest.fail "expected a (degraded) artifact, got a failure");
  let text = Explain.to_string x in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("narrative mentions " ^ needle) true
        (contains text needle))
    [ "[TIER-FAIL]"; "E-BUDGET-FUEL"; "requested" ]

let test_explain_deterministic () =
  let a = explain_fixture ~run:true () and b = explain_fixture ~run:true () in
  Alcotest.(check string)
    "same input, byte-identical event stream"
    (Json.to_string (Explain.events_json a))
    (Json.to_string (Explain.events_json b))

(* ------------------------------------------------------------------ *)
(* Golden coverage campaign *)

let test_coverage_golden () =
  let stream () =
    let r = Dcir_fuzz.Coverage.run ~count:6 ~seed:7 () in
    Json.to_string
      (Events.to_json ~header:(Dcir_fuzz.Coverage.events_header r)
         r.Dcir_fuzz.Coverage.cov_events)
  in
  Alcotest.(check string)
    "same seed, byte-identical dcir-events/1 stream" (stream ()) (stream ())

(* ------------------------------------------------------------------ *)
(* Polybench sweep: every refusal is witnessed *)

let test_polybench_witnesses () =
  List.iter
    (fun (w : Dcir_workloads.Workload.t) ->
      let x =
        Explain.explain ~run:false Pipelines.Dcir ~src:w.src ~entry:w.entry
          ~args:(fun () -> [])
          ()
      in
      (match x.Explain.ex_error with
      | Some e -> Alcotest.failf "%s: compile failed: %s" w.name e
      | None -> ());
      let evs = Explain.events x in
      List.iter
        (fun (e : Events.event) ->
          Alcotest.(check bool)
            (w.name ^ ": refusal witnessed")
            true
            (String.trim (Events.str_field e "witness") <> ""))
        (Events.with_code evs "APAR-REFUSE");
      List.iter
        (fun (e : Events.event) ->
          Alcotest.(check bool)
            (w.name ^ ": skip names its breaker state")
            true
            (Events.str_field e "breaker" <> ""))
        (Events.with_code evs "PASS-SKIP");
      List.iter
        (fun (e : Events.event) ->
          Alcotest.(check bool)
            (w.name ^ ": tier landing names both tiers")
            true
            (Events.str_field e "landed" <> ""
            && Events.str_field e "requested" <> ""))
        (Events.with_code evs "TIER-LAND"))
    Polybench.all

let suite =
  ( "events",
    [
      Alcotest.test_case "histogram bucket edges" `Quick test_histogram_edges;
      Alcotest.test_case "histogram validation" `Quick
        test_histogram_validation;
      Alcotest.test_case "Obs.reset restores a fresh collector" `Quick
        test_obs_reset_fresh;
      Alcotest.test_case "event stream basics" `Quick test_event_stream;
      Alcotest.test_case "explain: certified + refused" `Quick
        test_explain_certified_and_refused;
      Alcotest.test_case "explain: degraded tier" `Quick test_explain_degraded;
      Alcotest.test_case "explain: deterministic stream" `Quick
        test_explain_deterministic;
      Alcotest.test_case "coverage: same-seed golden stream" `Quick
        test_coverage_golden;
      Alcotest.test_case "polybench: every refusal witnessed" `Slow
        test_polybench_witnesses;
    ] )
