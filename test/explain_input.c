/* Fixture for `dcir explain` tests: one loop the auto-parallelizer
 * certifies (pure elementwise map) and one it must refuse with a
 * loop-carried-dependence witness (prefix sum). */
void kernel(int n, double A[64], double B[64]) {
  for (int i = 0; i < n; i++) {
    B[i] = A[i] * 2.0 + 1.0;
  }
  for (int i = 1; i < n; i++) {
    A[i] = A[i] + A[i - 1];
  }
}
