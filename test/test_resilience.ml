(** Resource governance: deterministic budgets, the per-pass circuit
    breaker, the graceful-degradation ladder, and the seeded chaos
    campaign. The invariants under test are the resilience contract:
    exhaustion is a structured answer (never a hang), the two
    interpreters trap on exactly the same ceiling, a degraded compile
    still matches the unoptimized reference within floating-point
    tolerance, and a chaos campaign replayed with its seed reproduces the
    incident journal byte-for-byte. *)

module Pipelines = Dcir_core.Pipelines
module Budget = Dcir_resilience.Budget
module Breaker = Dcir_resilience.Breaker
module Chaos = Dcir_resilience.Chaos
module Journal = Dcir_resilience.Journal
module Polybench = Dcir_workloads.Polybench
module Workload = Dcir_workloads.Workload
module Oracle = Dcir_fuzz.Oracle
module Json = Dcir_obs.Json

(* ------------------------------------------------------------------ *)
(* Budgets *)

let test_budget_kinds () =
  let limits = { Budget.max_steps = 3; max_fuel = 2; max_allocs = 1 } in
  let b = Budget.create ~limits () in
  Budget.step b;
  Budget.step b;
  Budget.step b;
  (try
     Budget.step b;
     Alcotest.fail "step budget did not trip"
   with Budget.Exhausted (Budget.Steps, 3) -> ());
  (try
     Budget.burn_fuel b;
     Budget.burn_fuel b;
     Budget.burn_fuel b;
     Alcotest.fail "fuel budget did not trip"
   with Budget.Exhausted (Budget.Fuel, 2) -> ());
  try
    Budget.alloc b;
    Budget.alloc b;
    Alcotest.fail "alloc budget did not trip"
  with Budget.Exhausted (Budget.Allocs, 1) -> ()

let test_budget_fork_merge () =
  let limits = { Budget.default with Budget.max_steps = 10 } in
  let b = Budget.create ~limits () in
  Budget.step b;
  let child = Budget.fork b in
  Alcotest.(check int) "fork counts from zero" 0 child.Budget.steps;
  for _ = 1 to 10 do Budget.step child done;
  (* Merging may exceed the ceiling without raising: the ceiling bounds
     each sequential stream, the merge only aggregates for reporting. *)
  Budget.merge_steps ~into:b child;
  Alcotest.(check int) "merged step count" 11 b.Budget.steps

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let test_breaker_lifecycle () =
  let b = Breaker.create () in
  let check msg expected = Alcotest.(check string) msg expected (Breaker.state_name b "p") in
  check "starts closed" "closed";
  Alcotest.(check bool) "closed admits" true (Breaker.admits b "p");
  Breaker.record_failure b "p";
  check "opens after trip_after=1 failure" "open";
  Alcotest.(check bool) "open rejects" false (Breaker.admits b "p");
  Breaker.end_round b;
  check "still open after one round" "open";
  Breaker.end_round b;
  check "probation after cooldown_rounds=2" "probation";
  Alcotest.(check bool) "probation admits" true (Breaker.admits b "p");
  Breaker.record_success b "p";
  check "one clean application is not enough" "probation";
  Breaker.record_success b "p";
  check "re-closes after probation_successes=2" "closed"

let test_breaker_probation_failure () =
  let b = Breaker.create () in
  Breaker.record_failure b "p";
  Breaker.end_round b;
  Breaker.end_round b;
  Alcotest.(check string) "probation" "probation" (Breaker.state_name b "p");
  Breaker.record_failure b "p";
  Alcotest.(check string) "probation failure re-opens immediately" "open"
    (Breaker.state_name b "p");
  Alcotest.(check int) "failures accumulate" 2 (Breaker.total_failures b)

(* ------------------------------------------------------------------ *)
(* Budget-exhaustion parity between the two interpreters *)

let tiny_steps = 500

let run_with_step_cap (kind : Pipelines.kind) (w : Workload.t) : exn option =
  let limits = { Budget.default with Budget.max_steps = tiny_steps } in
  let compiled = Pipelines.compile kind ~src:w.Workload.src ~entry:w.Workload.entry in
  match
    Pipelines.run ~budget:(Budget.create ~limits ()) compiled
      ~entry:w.Workload.entry
      (w.Workload.args ())
  with
  | _ -> None
  | exception e -> Some e

let test_exhaustion_parity () =
  (* Both interpreters (MLIR walks the module, SDFG walks the graph) must
     trap with the same structured exception naming the same ceiling. *)
  List.iter
    (fun kind ->
      match run_with_step_cap kind Polybench.gemm with
      | Some (Budget.Exhausted (Budget.Steps, limit)) ->
          Alcotest.(check int)
            (Pipelines.kind_name kind ^ " traps at the configured ceiling")
            tiny_steps limit
      | Some e ->
          Alcotest.fail
            (Pipelines.kind_name kind ^ ": wrong exception "
            ^ Printexc.to_string e)
      | None ->
          Alcotest.fail
            (Pipelines.kind_name kind ^ ": ran to completion under the cap"))
    [ Pipelines.Mlir; Pipelines.Dcir ]

let test_tree_compiled_step_parity () =
  (* The tree walker charges one step per executed op; compiled plans
     charge one per executed closure over the same op sequence. The
     counters must agree exactly, so budget trips are mode-independent. *)
  let w = Polybench.gesummv in
  let compiled =
    Pipelines.compile Pipelines.Mlir ~src:w.Workload.src ~entry:w.Workload.entry
  in
  let steps mode =
    let b = Budget.create () in
    ignore
      (Pipelines.run ~budget:b ~interp_mode:mode compiled
         ~entry:w.Workload.entry
         (w.Workload.args ()));
    b.Budget.steps
  in
  let tree = steps `Tree and comp = steps `Compiled in
  Alcotest.(check bool) "executed at all" true (tree > 0);
  Alcotest.(check int) "tree and compiled step counts agree" tree comp

(* ------------------------------------------------------------------ *)
(* Degradation ladder *)

let forced_failure_plans =
  [
    ( "pass crash at the first application",
      {
        Chaos.pl_seed = 0;
        pl_faults = [ Chaos.Pass_crash ];
        crash_at = Some 0;
        corrupt_at = None;
        starved_fuel = None;
        fail_alloc = None;
        pl_checked = false;
        kill_at = None;
        poison = false;
      } );
    ( "fuel starved to zero",
      {
        Chaos.pl_seed = 0;
        pl_faults = [ Chaos.Fuel_starvation ];
        crash_at = None;
        corrupt_at = None;
        starved_fuel = Some 0;
        fail_alloc = None;
        pl_checked = false;
        kill_at = None;
        poison = false;
      } );
  ]

let test_ladder (w : Workload.t) () =
  let reference =
    Pipelines.run
      (Pipelines.CMlir (Dcir_cfront.Polygeist.compile w.Workload.src))
      ~entry:w.Workload.entry
      (w.Workload.args ())
  in
  List.iter
    (fun (what, plan) ->
      Chaos.install plan;
      Fun.protect ~finally:Chaos.clear (fun () ->
          let compiled, report =
            Pipelines.compile_resilient Pipelines.Dcir ~src:w.Workload.src
              ~entry:w.Workload.entry
          in
          Alcotest.(check bool)
            (what ^ ": degradation recorded")
            true
            (report.Pipelines.res_degradations <> []
            && report.Pipelines.res_landed <> Pipelines.O2);
          let r =
            Pipelines.run compiled ~entry:w.Workload.entry
              (w.Workload.args ())
          in
          match Oracle.divergence reference r with
          | None -> ()
          | Some msg ->
              Alcotest.fail
                (what ^ ": degraded artifact diverges from reference: " ^ msg)))
    forced_failure_plans

(* ------------------------------------------------------------------ *)
(* Chaos campaign determinism *)

let test_chaos_determinism () =
  let campaign () = Dcir_fuzz.Chaos_campaign.run ~count:12 ~seed:7 () in
  let a = campaign () and b = campaign () in
  Alcotest.(check bool) "no oracle violations" true
    (Dcir_fuzz.Chaos_campaign.ok a);
  Alcotest.(check bool) "journals are non-trivial" true
    (Journal.length a.Dcir_fuzz.Chaos_campaign.ch_journal > 24);
  Alcotest.(check string) "same seed, byte-identical journal"
    (Json.to_string (Dcir_fuzz.Chaos_campaign.journal_json a))
    (Json.to_string (Dcir_fuzz.Chaos_campaign.journal_json b))

let suite =
  ( "resilience",
    [
      Alcotest.test_case "budget kinds trip at their ceilings" `Quick
        test_budget_kinds;
      Alcotest.test_case "budget fork/merge" `Quick test_budget_fork_merge;
      Alcotest.test_case "breaker open -> probation -> close" `Quick
        test_breaker_lifecycle;
      Alcotest.test_case "breaker probation failure re-opens" `Quick
        test_breaker_probation_failure;
      Alcotest.test_case "step exhaustion parity across interpreters" `Quick
        test_exhaustion_parity;
      Alcotest.test_case "tree/compiled step-count parity" `Quick
        test_tree_compiled_step_parity;
      Alcotest.test_case "ladder: gesummv degrades and stays correct" `Quick
        (test_ladder Polybench.gesummv);
      Alcotest.test_case "ladder: trisolv degrades and stays correct" `Quick
        (test_ladder Polybench.trisolv);
      Alcotest.test_case "ladder: jacobi-1d degrades and stays correct" `Quick
        (test_ladder Polybench.jacobi_1d);
      Alcotest.test_case "chaos campaign is deterministic" `Slow
        test_chaos_determinism;
    ] )
