(** Tests for compiled execution plans and the interpreter hot-path fixes.

    The compiled plans ({!Dcir_sdfg.Interp} [~mode:Compiled],
    {!Dcir_mlir.Interp} likewise) must be {e observably indistinguishable}
    from the tree walkers: same outputs, same traps, and bit-identical
    machine metrics — the cost model is the paper's measurement apparatus,
    so a plan that changes cycle counts silently corrupts every figure.
    These tests pin that contract on hand-built SDFGs, on the full
    fixed-seed fuzz corpus, and on a Polybench subset, alongside the
    hot-path bug sweep: symbol reads of scalar containers must charge a
    load, float->int casts truncate toward zero and trap on NaN/inf in
    both interpreters, and SDFG construction must stay linear. *)

open Dcir_sdfg
open Dcir_symbolic
open Dcir_machine
module Pipelines = Dcir_core.Pipelines
module Metrics = Dcir_machine.Metrics

let mk_tasklet ?(syms = []) name ins outs code =
  {
    Sdfg.tname = name;
    t_inputs = ins;
    t_outputs = outs;
    t_syms = syms;
    code = Sdfg.Native code;
    t_overhead = 0.0;
  }

let memlet ?wcr ?other data subset = { Sdfg.data; subset; wcr; other }

let metrics_equal (a : Metrics.t) (b : Metrics.t) : bool =
  Int64.equal (Int64.bits_of_float a.cycles) (Int64.bits_of_float b.cycles)
  && a.loads = b.loads && a.stores = b.stores
  && a.bytes_loaded = b.bytes_loaded
  && a.bytes_stored = b.bytes_stored
  && a.int_ops = b.int_ops && a.fp_ops = b.fp_ops
  && a.math_calls = b.math_calls && a.branches = b.branches
  && a.heap_allocs = b.heap_allocs
  && a.heap_frees = b.heap_frees
  && a.heap_bytes = b.heap_bytes
  && a.stack_allocs = b.stack_allocs
  && a.l1_misses = b.l1_misses && a.l2_misses = b.l2_misses
  && a.l3_misses = b.l3_misses
  && a.l1_accesses = b.l1_accesses

let check_metrics_equal label (a : Metrics.t) (b : Metrics.t) =
  if not (metrics_equal a b) then
    Alcotest.failf "%s: tree and compiled metrics differ\ntree:\n%a\ncompiled:\n%a"
      label Metrics.pp a Metrics.pp b

let results_identical (a : Pipelines.run_result) (b : Pipelines.run_result) :
    bool =
  (match (a.return_value, b.return_value) with
  | Some x, Some y -> Value.equal x y
  | None, None -> true
  | _ -> false)
  && List.length a.outputs = List.length b.outputs
  && List.for_all2
       (fun (i, x) (j, y) ->
         i = j
         && Array.length x = Array.length y
         && Array.for_all2 Value.equal x y)
       a.outputs b.outputs
  && metrics_equal a.metrics b.metrics

(* ------------------------------------------------------------------ *)
(* Symbol reads of scalar containers charge a load *)

(* One interstate condition reading scalar container [n]; the condition
   evaluation is the only memory access in the whole program, so the load
   counter isolates the sym_env path (a [peek] would leave it at 0). *)
let symenv_sdfg () : Sdfg.t =
  let sdfg = Sdfg.create "symenv" in
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DInt ~shape:[] "n");
  sdfg.param_order <- [ "n" ];
  ignore (Sdfg.add_state sdfg "init");
  ignore (Sdfg.add_state sdfg "exit");
  Sdfg.add_istate_edge sdfg
    ~cond:(Bexpr.gt (Expr.sym "n") Expr.zero)
    ~src:"init" ~dst:"exit" ();
  sdfg.start_state <- "init";
  sdfg

let run_symenv (mode : Interp.mode) : Metrics.t =
  let machine = Machine.create () in
  let n =
    Machine.alloc machine ~storage:Machine.Heap ~elems:1 ~elem_bytes:8
      ~zero_init:(Value.VInt 0)
  in
  Machine.poke n 0 (Value.VInt 5);
  let _ =
    Interp.run ~machine ~mode (symenv_sdfg ()) ~buffers:[ ("n", n, [||]) ]
      ~symbols:[] ()
  in
  Machine.metrics machine

let test_symenv_scalar_load () =
  let mt = run_symenv Interp.Tree in
  Alcotest.(check int) "scalar-container symbol read goes through the cache" 1
    mt.loads;
  Alcotest.(check bool) "load charged cycles" true (mt.cycles > 0.0);
  check_metrics_equal "symenv" mt (run_symenv Interp.Compiled)

(* ------------------------------------------------------------------ *)
(* SDFG construction stays linear in the number of states *)

let test_construction_scale () =
  let n = 10_000 in
  let label i = "s" ^ string_of_int i in
  let t0 = Sys.time () in
  let sdfg = Sdfg.create "big" in
  for i = 0 to n - 1 do
    ignore (Sdfg.add_state sdfg (label i))
  done;
  for i = 0 to n - 2 do
    Sdfg.add_istate_edge sdfg ~src:(label i) ~dst:(label (i + 1)) ()
  done;
  sdfg.start_state <- label 0;
  let dt = Sys.time () -. t0 in
  (* Quadratic append made this minutes; staged construction is
     milliseconds. The bound is loose only to absorb CI noise. *)
  if dt >= 1.0 then
    Alcotest.failf "10k-state construction took %.2fs (expected well under 1s)"
      dt;
  Alcotest.(check int) "all states present" n (List.length (Sdfg.states sdfg));
  Alcotest.(check bool) "find_state hits the last state" true
    (Sdfg.find_state sdfg (label (n - 1)) <> None);
  (* And the whole chain executes identically in both modes. *)
  let run mode =
    let machine = Machine.create () in
    ignore (Interp.run ~machine ~mode sdfg ~buffers:[] ~symbols:[] ());
    Machine.metrics machine
  in
  check_metrics_equal "10k-state chain" (run Interp.Tree) (run Interp.Compiled)

(* ------------------------------------------------------------------ *)
(* float->int casts: truncation toward zero, trap on NaN/inf *)

let cast_src = "int kernel_cast(double x) {\n  return (int)x;\n}\n"
let cast_kinds = [ Pipelines.Mlir; Pipelines.Dcir ]
let modes : Pipelines.interp_mode list = [ `Tree; `Compiled; `Bytecode ]

let run_cast kind mode (x : float) : Pipelines.run_result =
  let compiled =
    Pipelines.compile kind ~src:cast_src ~entry:"kernel_cast"
  in
  Pipelines.run ~interp_mode:mode compiled ~entry:"kernel_cast"
    [ Pipelines.AFloat x ]

let test_toint_truncation () =
  List.iter
    (fun (x, expect) ->
      List.iter
        (fun kind ->
          List.iter
            (fun mode ->
              let r = run_cast kind mode x in
              Alcotest.(check bool)
                (Printf.sprintf "(int)%g = %d [%s]" x expect
                   (Pipelines.kind_name kind))
                true
                (r.return_value = Some (Value.VInt expect)))
            modes)
        cast_kinds)
    [ (2.9, 2); (-2.9, -2); (-0.5, 0); (7.0, 7) ]

let trap_message (f : unit -> Pipelines.run_result) : string =
  match f () with
  | _ -> Alcotest.fail "expected a trap, got a result"
  | exception Dcir_sdfg.Interp.Trap msg -> msg
  | exception Dcir_mlir.Interp.Trap msg -> msg

let test_toint_traps () =
  List.iter
    (fun (x, expect_sub) ->
      let msgs =
        List.concat_map
          (fun kind ->
            List.map (fun mode -> trap_message (fun () -> run_cast kind mode x)) modes)
          cast_kinds
      in
      List.iter
        (fun msg ->
          Alcotest.(check bool)
            (Printf.sprintf "trap mentions %S (got %S)" expect_sub msg)
            true
            (Tutil.contains msg expect_sub))
        msgs;
      (* Same wording everywhere: both interpreters, both modes. *)
      List.iter
        (fun msg -> Alcotest.(check string) "trap message uniform" (List.hd msgs) msg)
        msgs)
    [ (Float.nan, "nan"); (Float.infinity, "out of range");
      (Float.neg_infinity, "out of range") ]

(* ------------------------------------------------------------------ *)
(* BMod / BMin / BMax on floats: parity across interpreters and modes *)

(* MLIR reference: a two-argument float function around one arith op. *)
let mlir_fbin (build : Dcir_mlir.Ir.value -> Dcir_mlir.Ir.value -> Dcir_mlir.Ir.op)
    (mode : Dcir_mlir.Interp.mode) (a : float) (b : float) : Value.t =
  let open Dcir_mlir in
  let f =
    Func_d.make_func ~name:"f"
      ~params:[ ("a", Types.F64); ("b", Types.F64) ]
      ~ret:[ Types.F64 ]
      (fun params ->
        let va = List.nth params 0 and vb = List.nth params 1 in
        let o = build va vb in
        [ o; Func_d.return_ [ Ir.result o ] ])
  in
  let m = Ir.new_module () in
  m.funcs <- [ f ];
  let results, _ =
    Interp.run ~mode m ~entry:"f"
      [ Interp.Scalar (Value.VFloat a); Interp.Scalar (Value.VFloat b) ]
  in
  List.hd results

let sdfg_fbin (op : Texpr.binop) (a : float) (b : float) : Value.t =
  let m = Machine.create () in
  Interp.apply_binop m op (Value.VFloat a) (Value.VFloat b)

let fbin_operands =
  [ (7.5, 2.0); (-7.5, 2.0); (7.5, -2.0); (3.0, Float.nan); (Float.nan, 3.0);
    (0.0, -0.0) ]

let test_float_minmax_cross_interp () =
  List.iter
    (fun (texpr_op, arith_op, name) ->
      List.iter
        (fun (a, b) ->
          let s = sdfg_fbin texpr_op a b in
          List.iter
            (fun mode ->
              let v = mlir_fbin arith_op mode a b in
              Alcotest.(check bool)
                (Printf.sprintf "%s(%g, %g) agrees across interpreters" name a b)
                true (Value.equal s v))
            [ Dcir_mlir.Interp.Tree; Dcir_mlir.Interp.Compiled ])
        fbin_operands)
    [ (Texpr.BMin, Dcir_mlir.Arith.minf, "min");
      (Texpr.BMax, Dcir_mlir.Arith.maxf, "max") ]

let test_float_mod_semantics () =
  (* No arith.remf in the dialect subset; BMod floats pin Float.rem
     (truncated division, sign of the dividend) directly. *)
  List.iter
    (fun ((a, b), expect) ->
      Alcotest.(check bool)
        (Printf.sprintf "fmod(%g, %g)" a b)
        true
        (Value.equal (sdfg_fbin Texpr.BMod a b) (Value.VFloat expect)))
    [ ((7.5, 2.0), 1.5); ((-7.5, 2.0), -1.5); ((7.5, -2.0), 1.5) ];
  Alcotest.(check bool) "fmod propagates nan" true
    (Value.equal (sdfg_fbin Texpr.BMod 3.0 Float.nan) (Value.VFloat Float.nan))

(* Tasklet-level: the same ops through whole-SDFG execution, both modes. *)
let fbin_sdfg () : Sdfg.t =
  let sdfg = Sdfg.create "fbin" in
  List.iter
    (fun name ->
      ignore
        (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat ~shape:[]
           name))
    [ "a"; "b"; "m"; "lo"; "hi" ];
  sdfg.param_order <- [ "a"; "b"; "m"; "lo"; "hi" ];
  let st = Sdfg.add_state sdfg "s" in
  let g = st.s_graph in
  let a = Sdfg.add_node g (Sdfg.Access "a") in
  let b = Sdfg.add_node g (Sdfg.Access "b") in
  let t =
    Sdfg.add_node g
      (Sdfg.TaskletN
         (mk_tasklet "t" [ "_a"; "_b" ] [ "_m"; "_lo"; "_hi" ]
            [
              ("_m", Texpr.TBin (Texpr.BMod, TIn "_a", TIn "_b"));
              ("_lo", Texpr.TBin (Texpr.BMin, TIn "_a", TIn "_b"));
              ("_hi", Texpr.TBin (Texpr.BMax, TIn "_a", TIn "_b"));
            ]))
  in
  ignore (Sdfg.add_edge g ~dst_conn:"_a" ~memlet:(memlet "a" []) a t);
  ignore (Sdfg.add_edge g ~dst_conn:"_b" ~memlet:(memlet "b" []) b t);
  List.iter
    (fun (conn, name) ->
      let out = Sdfg.add_node g (Sdfg.Access name) in
      ignore (Sdfg.add_edge g ~src_conn:conn ~memlet:(memlet name []) t out))
    [ ("_m", "m"); ("_lo", "lo"); ("_hi", "hi") ];
  sdfg

let test_float_binops_tasklet_parity () =
  let sdfg = fbin_sdfg () in
  List.iter
    (fun (a, b) ->
      let run mode =
        let machine = Machine.create () in
        let scalar v =
          let buf =
            Machine.alloc machine ~storage:Machine.Heap ~elems:1 ~elem_bytes:8
              ~zero_init:(Value.VFloat 0.0)
          in
          Machine.poke buf 0 (Value.VFloat v);
          buf
        in
        let bufs =
          [ ("a", scalar a, [||]); ("b", scalar b, [||]); ("m", scalar 0.0, [||]);
            ("lo", scalar 0.0, [||]); ("hi", scalar 0.0, [||]) ]
        in
        ignore (Interp.run ~machine ~mode sdfg ~buffers:bufs ~symbols:[] ());
        let out name =
          let _, buf, _ = List.find (fun (n, _, _) -> n = name) bufs in
          Machine.peek buf 0
        in
        ((out "m", out "lo", out "hi"), Machine.metrics machine)
      in
      let (vt, mt) = run Interp.Tree and (vc, mc) = run Interp.Compiled in
      let m1, lo1, hi1 = vt and m2, lo2, hi2 = vc in
      Alcotest.(check bool)
        (Printf.sprintf "tasklet outputs identical for (%g, %g)" a b)
        true
        (Value.equal m1 m2 && Value.equal lo1 lo2 && Value.equal hi1 hi2);
      check_metrics_equal "fbin tasklet" mt mc)
    fbin_operands

(* ------------------------------------------------------------------ *)
(* Three-way differential (tree / plan / bytecode): fuzz corpus,
   Polybench subset, and trap-timing shapes *)

let run_outcome compiled ~entry args (mode : Pipelines.interp_mode) :
    (Pipelines.run_result, string) result =
  match Pipelines.run ~interp_mode:mode compiled ~entry args with
  | r -> Ok r
  | exception Dcir_sdfg.Interp.Trap m -> Error m
  | exception Dcir_mlir.Interp.Trap m -> Error m

let check_plan_differential ~label kind ~src ~entry args =
  let compiled = Pipelines.compile kind ~src ~entry in
  let rt = run_outcome compiled ~entry args `Tree in
  let rc = run_outcome compiled ~entry args `Compiled in
  let rb = run_outcome compiled ~entry args `Bytecode in
  let agree a b =
    match (a, b) with
    | Ok x, Ok y -> results_identical x y
    | Error x, Error y -> String.equal x y
    | _ -> false
  in
  if not (agree rt rc) then
    Alcotest.failf
      "%s: compiled plan diverged from tree walker (outputs, trap, or metrics)"
      label;
  if not (agree rt rb) then
    Alcotest.failf
      "%s: bytecode diverged from tree walker (outputs, trap, or metrics)"
      label

let test_fuzz_plan_differential () =
  (* Same corpus as the CI fuzz campaign: seed 42, 100 programs. Every
     case must execute identically — outputs AND machine metrics — under
     tree walking and compiled plans. The SDFG-native pipeline runs for
     every case; the opaque-tasklet pipeline (dace) on every tenth. *)
  let seed = 42 and count = 100 in
  for i = 0 to count - 1 do
    let case = Dcir_fuzz.Gen.generate (Dcir_fuzz.Rng.derive seed i) in
    let args = case.args () in
    check_plan_differential
      ~label:(Printf.sprintf "fuzz case %d (seed %d) dcir" i case.seed)
      Pipelines.Dcir ~src:case.src ~entry:case.entry args;
    if i mod 10 = 0 then
      check_plan_differential
        ~label:(Printf.sprintf "fuzz case %d (seed %d) dace" i case.seed)
        Pipelines.Dace ~src:case.src ~entry:case.entry args
  done

let test_polybench_plan_differential () =
  let open Dcir_workloads in
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun kind ->
          check_plan_differential
            ~label:(w.name ^ " " ^ Pipelines.kind_name kind)
            kind ~src:w.src ~entry:w.entry (w.args ()))
        [ Pipelines.Dcir; Pipelines.Dace ])
    [ Polybench.gesummv; Polybench.trisolv; Polybench.jacobi_1d ]

(* Trap-timing parity on the shapes from test_trapsafe.ml: all three
   tiers must trap at the same point (or not at all) with the same
   message, and agree bit-for-bit when they finish. *)
let test_bytecode_trap_timing () =
  let zero_trip =
    {|
int f(int n, int d) {
  int s = 0;
  for (int i = 0; i < n; i++) { s = s + 100 / d; }
  return s;
}
|}
  in
  List.iter
    (fun (what, args) ->
      check_plan_differential
        ~label:("trap-timing " ^ what)
        Pipelines.Dcir ~src:zero_trip ~entry:"f" args)
    [
      ("zero-trip", [ Pipelines.AInt 0; Pipelines.AInt 0 ]);
      ("nonzero-trip", [ Pipelines.AInt 2; Pipelines.AInt 0 ]);
      ("benign", [ Pipelines.AInt 5; Pipelines.AInt 3 ]);
    ];
  let rem =
    {|
int g(int a, int d) {
  int t = a % d;
  int u = a / d;
  return t + u;
}
|}
  in
  List.iter
    (fun (what, args) ->
      check_plan_differential
        ~label:("trap-timing " ^ what)
        Pipelines.Dcir ~src:rem ~entry:"g" args)
    [
      ("rem-zero", [ Pipelines.AInt 7; Pipelines.AInt 0 ]);
      ("rem-ok", [ Pipelines.AInt 7; Pipelines.AInt 3 ]);
    ]

let suite =
  ( "interp-plans",
    [
      Alcotest.test_case "sym_env scalar read charges a load" `Quick
        test_symenv_scalar_load;
      Alcotest.test_case "10k-state construction is linear" `Quick
        test_construction_scale;
      Alcotest.test_case "float->int truncates toward zero" `Quick
        test_toint_truncation;
      Alcotest.test_case "float->int traps on nan/inf, uniformly" `Quick
        test_toint_traps;
      Alcotest.test_case "min/max float cross-interpreter parity" `Quick
        test_float_minmax_cross_interp;
      Alcotest.test_case "fmod float semantics" `Quick test_float_mod_semantics;
      Alcotest.test_case "BMod/BMin/BMax tasklet tree-vs-plan parity" `Quick
        test_float_binops_tasklet_parity;
      Alcotest.test_case "bytecode trap-timing parity" `Quick
        test_bytecode_trap_timing;
      Alcotest.test_case "fuzz corpus plan-vs-tree differential" `Slow
        test_fuzz_plan_differential;
      Alcotest.test_case "polybench plan-vs-tree metric equality" `Slow
        test_polybench_plan_differential;
    ] )
