(** Tests for the telemetry substrate (lib/obs): span nesting and exception
    safety, Chrome trace_event JSON well-formedness via the in-repo JSON
    parser, counters, and end-to-end profile attribution (per-state cycles
    partition the interpreter's total). *)

module Obs = Dcir_obs.Obs
module Json = Dcir_obs.Json
module Pipelines = Dcir_core.Pipelines

let with_collection f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable f

let test_span_nesting () =
  with_collection (fun () ->
      let r =
        Obs.with_span "outer" (fun () ->
            Obs.with_span "first" (fun () -> ());
            Obs.with_span "second" (fun () -> 42))
      in
      Alcotest.(check int) "with_span passes the result through" 42 r;
      match Obs.roots () with
      | [ outer ] ->
          Alcotest.(check string) "root name" "outer" (Obs.span_name outer);
          Alcotest.(check (list string))
            "children in order" [ "first"; "second" ]
            (List.map Obs.span_name (Obs.span_children outer));
          Alcotest.(check bool) "non-negative duration" true
            (Obs.span_duration_ms outer >= 0.0);
          List.iter
            (fun c ->
              Alcotest.(check bool) "child within parent" true
                (Obs.span_duration_ms c <= Obs.span_duration_ms outer))
            (Obs.span_children outer)
      | rs -> Alcotest.failf "expected one root, got %d" (List.length rs))

let test_span_exception_safety () =
  with_collection (fun () ->
      (try
         Obs.with_span "outer" (fun () ->
             Obs.with_span "boom" (fun () -> failwith "boom"))
       with Failure _ -> ());
      match Obs.roots () with
      | [ outer ] ->
          Alcotest.(check (list string))
            "raising span still recorded" [ "boom" ]
            (List.map Obs.span_name (Obs.span_children outer))
      | rs -> Alcotest.failf "expected one root, got %d" (List.length rs))

let test_disabled_is_passthrough () =
  Obs.disable ();
  Obs.reset ();
  let r = Obs.with_span "ignored" (fun () -> 7) in
  Alcotest.(check int) "result" 7 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.roots ()))

let test_trace_json () =
  with_collection (fun () ->
      Obs.with_span ~cat:"test" ~args:[ ("k", Json.Int 3) ] "outer" (fun () ->
          Obs.with_span "inner" (fun () -> ()));
      let s = Obs.trace_to_string () in
      let j =
        match Json.parse s with
        | Ok j -> j
        | Error e -> Alcotest.failf "trace does not parse: %s" e
      in
      let events =
        match Option.bind (Json.member "traceEvents" j) Json.to_list with
        | Some evs -> evs
        | None -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check int) "one event per span" 2 (List.length events);
      List.iter
        (fun ev ->
          Alcotest.(check (option string))
            "complete-event phase" (Some "X")
            (Option.bind (Json.member "ph" ev) Json.to_str);
          List.iter
            (fun key ->
              if Json.member key ev = None then
                Alcotest.failf "event missing %S" key)
            [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
        events;
      let outer = List.hd events in
      Alcotest.(check (option string)) "cat preserved" (Some "test")
        (Option.bind (Json.member "cat" outer) Json.to_str);
      match Option.bind (Json.member "args" outer) (Json.member "k") with
      | Some (Json.Int 3) -> ()
      | _ -> Alcotest.fail "span args lost in trace")

let test_counters () =
  let c = Obs.Counter.make "test.counter" in
  Obs.Counter.set c 0;
  Obs.Counter.incr c;
  Obs.Counter.incr ~by:4 c;
  Alcotest.(check int) "accumulated" 5 (Obs.Counter.value c);
  Alcotest.(check bool) "same name, same counter" true
    (Obs.Counter.make "test.counter" == c);
  Alcotest.(check (option int)) "listed" (Some 5)
    (List.assoc_opt "test.counter" (Obs.Counter.all ()));
  Obs.Counter.reset_all ();
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c)

(* End-to-end: per-state cycle attribution must partition the interpreter's
   total cycle count (the acceptance criterion for [dcir run --profile]). *)
let test_profile_partitions_cycles () =
  let src =
    {|
double kern(double x[32], int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++)
    s += x[i] * 2.0;
  return s;
}
|}
  in
  let args =
    [
      Pipelines.AFloatArr (Array.init 32 float_of_int, [| 32 |]);
      Pipelines.AInt 32;
    ]
  in
  let compiled = Pipelines.compile Dcir ~src ~entry:"kern" in
  let profile = Obs.Profile.create () in
  let r = Pipelines.run ~profile compiled ~entry:"kern" args in
  let attributed = Obs.Profile.total_cycles profile ~kind:"state" in
  Alcotest.(check bool) "some cycles attributed" true (attributed > 0.0);
  Alcotest.(check (float 1e-6)) "states partition total cycles"
    r.metrics.cycles attributed;
  List.iter
    (fun (_, (e : Obs.Profile.entry)) ->
      Alcotest.(check bool) "positive hit counts" true (e.hits > 0))
    (Obs.Profile.entries profile ~kind:"state")

let suite =
  ( "obs",
    [
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span exception safety" `Quick
        test_span_exception_safety;
      Alcotest.test_case "disabled collector is passthrough" `Quick
        test_disabled_is_passthrough;
      Alcotest.test_case "trace_event JSON well-formed" `Quick test_trace_json;
      Alcotest.test_case "counters" `Quick test_counters;
      Alcotest.test_case "profile partitions cycles" `Quick
        test_profile_partitions_cycles;
    ] )
