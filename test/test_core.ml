(** Tests for the DCIR bridge itself: the MLIR→sdfg-dialect converter, the
    dialect→SDFG translator (including tasklet raising), the DaCe C frontend
    baseline, and the assembled pipelines. *)

open Dcir_core
open Dcir_mlir

let saxpy_src =
  {|
void saxpy(double x[32], double y[32], double a) {
  for (int i = 0; i < 32; i++)
    y[i] = a * x[i] + y[i];
}
|}

let convert src =
  let m = Dcir_cfront.Polygeist.compile src in
  ignore (Pass.run_to_fixpoint (Pipelines.control_passes Dcir) m);
  Converter.convert_module m

let test_converter_emits_dialect () =
  let converted = convert saxpy_src in
  let txt = Printer.module_to_string converted in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " emitted") true (Tutil.contains txt frag))
    [ "sdfg.state"; "sdfg.edge"; "sdfg.tasklet"; "sdfg.alloc"; "sdfg.load";
      "sdfg.store"; "sdfg.converted" ];
  Verifier.verify_exn converted

let test_converter_one_op_per_state () =
  (* §5.1: every computation in its own state; states only contain
     sdfg.* operations. *)
  let converted = convert saxpy_src in
  Ir.walk_module converted (fun o ->
      if String.equal o.Ir.name "sdfg.state" then
        List.iter
          (fun (inner : Ir.op) ->
            Alcotest.(check bool)
              ("state op is sdfg.*: " ^ inner.name)
              true
              (Sdfg_d.is_sdfg_op inner.name))
          (List.hd o.regions).rops)

let test_converter_rejects_calls () =
  let m =
    Dcir_cfront.Polygeist.compile
      "double g(double x) { return x; }\ndouble f(double x) { return g(x); }"
  in
  (* Without inlining, func.call reaches the converter and is rejected. *)
  Alcotest.(check bool) "calls rejected" true
    (try
       ignore (Converter.convert_module m);
       false
     with Converter.Conversion_error _ -> true)

let test_translator_raises_tasklets () =
  let converted = convert saxpy_src in
  let sdfg = Translator.translate_module converted ~entry:"saxpy" in
  (* All converter-generated tasklets raise to native code (no opaque MLIR
     tasklets with their LTO overhead). *)
  let opaque = ref 0 and native = ref 0 in
  List.iter
    (fun (st : Dcir_sdfg.Sdfg.state) ->
      List.iter
        (fun (n : Dcir_sdfg.Sdfg.node) ->
          match n.kind with
          | Dcir_sdfg.Sdfg.TaskletN { code = Native _; _ } -> incr native
          | Dcir_sdfg.Sdfg.TaskletN { code = Opaque _; _ } -> incr opaque
          | _ -> ())
        (Dcir_sdfg.Sdfg.nodes st.s_graph))
    (Dcir_sdfg.Sdfg.states sdfg);
  Alcotest.(check int) "no opaque tasklets" 0 !opaque;
  Alcotest.(check bool) "has native tasklets" true (!native > 0)

let test_translator_metadata () =
  let converted = convert saxpy_src in
  let sdfg = Translator.translate_module converted ~entry:"saxpy" in
  Alcotest.(check int) "three parameters" 3 (List.length sdfg.param_order);
  Alcotest.(check bool) "x is an argument container" true
    (List.mem "_x" (Dcir_sdfg.Sdfg.arg_order sdfg));
  Alcotest.(check bool) "validates" true
    (Dcir_sdfg.Validate.errors sdfg = [])

let test_dace_frontend_opaque () =
  let sdfg = Dace_frontend.compile saxpy_src ~entry:"saxpy" in
  (* The DaCe C frontend creates indivisible (opaque) statement tasklets. *)
  let opaque = ref 0 in
  List.iter
    (fun (st : Dcir_sdfg.Sdfg.state) ->
      List.iter
        (fun (n : Dcir_sdfg.Sdfg.node) ->
          match n.kind with
          | Dcir_sdfg.Sdfg.TaskletN { code = Opaque _; _ } -> incr opaque
          | _ -> ())
        (Dcir_sdfg.Sdfg.nodes st.s_graph))
    (Dcir_sdfg.Sdfg.states sdfg);
  Alcotest.(check bool) "opaque statement tasklets" true (!opaque > 0)

let test_dace_frontend_descending () =
  (* Descending loops are preserved as descending state-machine loops. *)
  let src =
    {|
void rev(double a[8]) {
  for (int i = 7; i >= 0; i--)
    a[i] = 1.0 * i;
}
|}
  in
  let sdfg = Dace_frontend.compile src ~entry:"rev" in
  let has_negative_step =
    List.exists
      (fun (e : Dcir_sdfg.Sdfg.istate_edge) ->
        List.exists
          (fun (s, ex) ->
            let step =
              Dcir_symbolic.Expr.sub ex (Dcir_symbolic.Expr.sym s)
            in
            Dcir_symbolic.Expr.is_constant step = Some (-1))
          e.ie_assign)
      (Dcir_sdfg.Sdfg.istate_edges sdfg)
  in
  Alcotest.(check bool) "negative-step loop kept" true has_negative_step

let test_pipelines_agree_on_saxpy () =
  let args () =
    [
      Pipelines.AFloatArr (Array.init 32 float_of_int, [| 32 |]);
      Pipelines.AFloatArr (Array.make 32 1.0, [| 32 |]);
      Pipelines.AFloat 2.0;
    ]
  in
  let ms = Pipelines.compare_pipelines ~src:saxpy_src ~entry:"saxpy" (args ()) in
  Alcotest.(check int) "five pipelines" 5 (List.length ms);
  List.iter
    (fun (m : Pipelines.measurement) ->
      Alcotest.(check bool) (m.pipeline ^ " correct") true m.correct)
    ms

let test_dcir_not_slower_than_mlir () =
  (* Paper observation 1: DCIR is never (meaningfully) slower than MLIR. *)
  let checks =
    [ Dcir_workloads.Polybench.gesummv; Dcir_workloads.Polybench.atax;
      Dcir_workloads.Case_studies.mish_eager ]
  in
  List.iter
    (fun (w : Dcir_workloads.Workload.t) ->
      let ms =
        Pipelines.compare_pipelines ~src:w.src ~entry:w.entry (w.args ())
      in
      let c p =
        (List.find (fun (m : Pipelines.measurement) -> m.pipeline = p) ms).cycles
      in
      Alcotest.(check bool)
        (w.name ^ ": dcir <= 1.02 * mlir")
        true
        (c "dcir" <= 1.02 *. c "mlir"))
    checks

let test_icc_vector_math_faster () =
  let w = Dcir_workloads.Case_studies.mish_eager in
  let compiled = Pipelines.compile Dcir ~src:w.src ~entry:w.entry in
  let base = (Pipelines.run compiled ~entry:w.entry (w.args ())).metrics.cycles in
  let icc =
    (Pipelines.run
       ~cfg:(Dcir_machine.Cost.with_vector_math Dcir_machine.Cost.default)
       compiled ~entry:w.entry (w.args ()))
      .metrics
      .cycles
  in
  Alcotest.(check bool) "vector math wins on Mish" true (icc < base)

let suite =
  ( "core",
    [
      Alcotest.test_case "converter emits the sdfg dialect" `Quick
        test_converter_emits_dialect;
      Alcotest.test_case "converter: one op per state" `Quick
        test_converter_one_op_per_state;
      Alcotest.test_case "converter rejects calls" `Quick
        test_converter_rejects_calls;
      Alcotest.test_case "translator raises tasklets" `Quick
        test_translator_raises_tasklets;
      Alcotest.test_case "translator metadata" `Quick test_translator_metadata;
      Alcotest.test_case "dace frontend: opaque tasklets" `Quick
        test_dace_frontend_opaque;
      Alcotest.test_case "dace frontend: descending loops" `Quick
        test_dace_frontend_descending;
      Alcotest.test_case "pipelines agree (saxpy)" `Quick
        test_pipelines_agree_on_saxpy;
      Alcotest.test_case "dcir never slower than mlir" `Slow
        test_dcir_not_slower_than_mlir;
      Alcotest.test_case "ICC vector math" `Quick test_icc_vector_math_faster;
    ] )
