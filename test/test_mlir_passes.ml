(** Tests for the control-centric passes. Each pass is checked structurally
    (the expected rewrite happened) and semantically (execution result is
    unchanged); a differential property test compiles random C kernels under
    every pass pipeline and compares outputs. *)

open Dcir_mlir
open Dcir_cfront
module P = Dcir_mlir_passes

let count_ops (m : Ir.modul) (name : string) : int =
  let n = ref 0 in
  Ir.walk_module m (fun o -> if String.equal o.Ir.name name then incr n);
  !n

let compile_with (passes : Pass.t list) (src : string) : Ir.modul =
  let m = Polygeist.compile src in
  ignore (Pass.run_to_fixpoint passes m);
  Verifier.verify_exn m;
  m

let run_int (m : Ir.modul) ~entry args : int =
  let results, _ = Interp.run m ~entry args in
  Dcir_machine.Value.as_int (List.hd results)

let run_float (m : Ir.modul) ~entry args : float =
  let results, _ = Interp.run m ~entry args in
  Dcir_machine.Value.as_float (List.hd results)

(* ------------------------------------------------------------------ *)

let test_mem2reg () =
  let src =
    "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i > 2) s \
     += i; } return s; }"
  in
  let before = compile_with [] src in
  let after = compile_with [ P.Mem2reg.pass; P.Dce.pass ] src in
  Alcotest.(check bool) "cells before" true (count_ops before "memref.alloca" > 0);
  Alcotest.(check int) "cells gone" 0 (count_ops after "memref.alloca");
  let arg = [ Interp.Scalar (Dcir_machine.Value.VInt 10) ] in
  Alcotest.(check int) "semantics" (run_int before ~entry:"f" arg)
    (run_int after ~entry:"f" arg)

let test_fixpoint_stats () =
  let src =
    "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i > 2) s \
     += i; } return s; }"
  in
  let passes = [ P.Mem2reg.pass; P.Canonicalize.pass; P.Dce.pass ] in
  let m = Polygeist.compile src in
  let changed, stats = Pass.run_to_fixpoint_stats passes m in
  Alcotest.(check bool) "pipeline changed the module" true changed;
  (* mem2reg fires in round 1, so the fixpoint needs a second round to
     confirm quiescence. *)
  Alcotest.(check bool) "at least two rounds" true (stats.rounds >= 2);
  let apps name = List.assoc name stats.applications in
  Alcotest.(check bool) "mem2reg applied" true (apps "mem2reg" > 0);
  Alcotest.(check bool) "dce applied" true (apps "dce" > 0);
  (* A second run over the already-optimized module must be a no-op that
     settles in exactly one round with zero applications. *)
  let changed2, stats2 = Pass.run_to_fixpoint_stats passes m in
  Alcotest.(check bool) "idempotent" false changed2;
  Alcotest.(check int) "one quiescent round" 1 stats2.rounds;
  List.iter
    (fun (name, n) ->
      Alcotest.(check int) (name ^ " not applied on rerun") 0 n)
    stats2.applications

let test_canonicalize_folds () =
  let src = "int f() { return (2 + 3) * 4 - (10 / 5); }" in
  let m = compile_with [ P.Mem2reg.pass; P.Canonicalize.pass; P.Dce.pass ] src in
  Alcotest.(check int) "all folded" 0 (count_ops m "arith.addi");
  Alcotest.(check int) "result" 18 (run_int m ~entry:"f" [])

let test_cse () =
  let src = "double f(double x) { return x * x + x * x; }" in
  let m = compile_with [ P.Mem2reg.pass; P.Cse.pass; P.Dce.pass ] src in
  Alcotest.(check int) "one multiply" 1 (count_ops m "arith.mulf");
  Alcotest.(check (float 1e-9)) "value" 18.0
    (run_float m ~entry:"f" [ Interp.Scalar (Dcir_machine.Value.VFloat 3.0) ])

let test_dce_dead_malloc () =
  let src =
    "int f() { int *p = (int*)malloc(100 * sizeof(int)); free(p); return 5; }"
  in
  let m =
    compile_with [ P.Mem2reg.pass; P.Canonicalize.pass; P.Dce.pass ] src
  in
  Alcotest.(check int) "allocation elided" 0 (count_ops m "memref.alloc");
  Alcotest.(check int) "dealloc elided" 0 (count_ops m "memref.dealloc")

let test_licm_hoists () =
  let src =
    {|
double f(double a[8], double b[8]) {
  double s = 0.0;
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      s += a[i] * b[j];
  return s;
}
|}
  in
  let m =
    compile_with [ P.Mem2reg.pass; P.Canonicalize.pass; P.Licm.pass; P.Dce.pass ] src
  in
  (* a[i] must be loaded in the i-loop, not the j-loop: exactly one load
     remains in the innermost loop body. *)
  let innermost_loads = ref (-1) in
  Ir.walk_module m (fun o ->
      if String.equal o.Ir.name "scf.for" then begin
        let body = Scf_d.loop_body o in
        let has_nested_loop =
          List.exists (fun (x : Ir.op) -> String.equal x.name "scf.for") body.rops
        in
        if not has_nested_loop then
          innermost_loads :=
            List.length
              (List.filter
                 (fun (x : Ir.op) -> String.equal x.name "memref.load")
                 body.rops)
      end);
  Alcotest.(check int) "one load in inner loop" 1 !innermost_loads

let test_inline () =
  let src =
    "double sq(double x) { return x * x; }\n\
     double f(double y) { return sq(y) + sq(y + 1.0); }"
  in
  let m =
    compile_with [ P.Mem2reg.pass; P.Inline.pass; P.Cse.pass; P.Dce.pass ] src
  in
  Alcotest.(check int) "no calls left" 0 (count_ops m "func.call");
  Alcotest.(check (float 1e-9)) "value" 25.0
    (run_float m ~entry:"f" [ Interp.Scalar (Dcir_machine.Value.VFloat 3.0) ])

let test_loop_fusion () =
  let src =
    {|
void f(double a[64], double b[64]) {
  for (int i = 0; i < 64; i++)
    a[i] = 5.0;
  for (int j = 0; j < 64; j++)
    b[j] = a[j] * 2.0;
}
|}
  in
  let m =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Loop_fusion.pass; P.Dce.pass ]
      src
  in
  Alcotest.(check int) "loops fused" 1 (count_ops m "scf.for")

let test_loop_fusion_rejects_carried () =
  (* b[i] reads a[i+1]: not element-wise; must not fuse. *)
  let src =
    {|
void f(double a[64], double b[64]) {
  for (int i = 0; i < 63; i++)
    a[i] = 5.0;
  for (int j = 0; j < 63; j++)
    b[j] = a[j + 1];
}
|}
  in
  let m =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Loop_fusion.pass ] src
  in
  Alcotest.(check int) "not fused" 2 (count_ops m "scf.for")

let test_reg_promote () =
  let src =
    {|
void f(double c[8][8], double a[8][8], double b[8][8]) {
  for (int i = 0; i < 8; i++)
    for (int j = 0; j < 8; j++)
      for (int k = 0; k < 8; k++)
        c[i][j] += a[i][k] * b[k][j];
}
|}
  in
  let base = [ P.Mem2reg.pass; P.Canonicalize.pass; P.Cse.pass; P.Dce.pass ] in
  let before = compile_with base src in
  let after = compile_with (base @ [ P.Reg_promote.pass; P.Dce.pass ]) src in
  let stores m = count_ops m "memref.store" in
  (* The c[i][j] store moves out of the k-loop: static store count stays, but
     the innermost loop must contain none. *)
  ignore (stores before);
  let inner_has_store = ref false in
  Ir.walk_module after (fun o ->
      if String.equal o.Ir.name "scf.for" then begin
        let body = Scf_d.loop_body o in
        let nested =
          List.exists (fun (x : Ir.op) -> String.equal x.name "scf.for") body.rops
        in
        if not nested then
          inner_has_store :=
            List.exists
              (fun (x : Ir.op) -> String.equal x.name "memref.store")
              body.rops
      end);
  Alcotest.(check bool) "no store in innermost loop" false !inner_has_store

let test_store_forward () =
  let src =
    {|
double f(double a[8]) {
  a[3] = 7.0;
  double x = a[3];
  return x * 2.0;
}
|}
  in
  let m =
    compile_with
      [ P.Mem2reg.pass; P.Canonicalize.pass; P.Cse.pass; P.Store_forward.pass;
        P.Dce.pass ]
      src
  in
  Alcotest.(check int) "load forwarded away" 0 (count_ops m "memref.load")

(* ------------------------------------------------------------------ *)
(* Differential property test: random kernels, all pipelines agree. *)

let gen_kernel : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  (* Random element-wise/stencil-ish kernels over two arrays and a scalar. *)
  let exprs =
    [
      "a[i]"; "b[i]"; "a[i] + b[i]"; "a[i] * 2.0 + 1.0"; "b[i] - a[i] * s";
      "a[i] * a[i]"; "s * 3.0";
    ]
  in
  let stmts =
    [
      (fun e -> Printf.sprintf "a[i] = %s;" e);
      (fun e -> Printf.sprintf "b[i] = %s;" e);
      (fun e -> Printf.sprintf "acc += %s;" e);
      (fun e -> Printf.sprintf "if (a[i] > 0.5) b[i] = %s;" e);
    ]
  in
  let* n_loops = int_range 1 3 in
  let* bodies =
    list_repeat n_loops
      (let* stmt_count = int_range 1 3 in
       list_repeat stmt_count
         (let* s = oneofl stmts in
          let* e = oneofl exprs in
          return (s e)))
  in
  let loops =
    List.map
      (fun body ->
        Printf.sprintf "  for (int i = 0; i < 16; i++) {\n    %s\n  }"
          (String.concat "\n    " body))
      bodies
  in
  return
    (Printf.sprintf
       "double kernel(double a[16], double b[16], double s) {\n\
       \  double acc = 0.0;\n%s\n  double r = acc;\n  for (int i = 0; i < 16; \
        i++)\n    r += a[i] + b[i];\n  return r;\n}"
       (String.concat "\n" loops))

let prop_pipelines_agree =
  QCheck2.Test.make ~count:60 ~print:Fun.id
    ~name:"all five pipelines agree on random kernels" gen_kernel
    (fun src ->
      let args () =
        [
          Dcir_core.Pipelines.AFloatArr
            (Array.init 16 (fun i -> Dcir_workloads.Workload.frand i), [| 16 |]);
          Dcir_core.Pipelines.AFloatArr
            (Array.init 16 (fun i -> Dcir_workloads.Workload.frand (i + 99)), [| 16 |]);
          Dcir_core.Pipelines.AFloat 0.75;
        ]
      in
      let ms =
        Dcir_core.Pipelines.compare_pipelines ~src ~entry:"kernel" (args ())
      in
      List.for_all (fun (m : Dcir_core.Pipelines.measurement) -> m.correct) ms)

let suite =
  ( "mlir-passes",
    [
      Alcotest.test_case "mem2reg promotes cells" `Quick test_mem2reg;
      Alcotest.test_case "fixpoint stats track rounds" `Quick test_fixpoint_stats;
      Alcotest.test_case "canonicalize folds constants" `Quick test_canonicalize_folds;
      Alcotest.test_case "cse dedups" `Quick test_cse;
      Alcotest.test_case "dce elides dead malloc" `Quick test_dce_dead_malloc;
      Alcotest.test_case "licm hoists invariant loads" `Quick test_licm_hoists;
      Alcotest.test_case "inline removes calls" `Quick test_inline;
      Alcotest.test_case "loop fusion merges" `Quick test_loop_fusion;
      Alcotest.test_case "loop fusion rejects offsets" `Quick test_loop_fusion_rejects_carried;
      Alcotest.test_case "register promotion" `Quick test_reg_promote;
      Alcotest.test_case "store forwarding" `Quick test_store_forward;
      QCheck_alcotest.to_alcotest prop_pipelines_agree;
    ] )
