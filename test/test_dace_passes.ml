(** Tests for the data-centric passes, driven through the real pipeline:
    compile a C kernel with the converter, run one pass (or stage), and
    check both the structural effect and semantic preservation. *)

open Dcir_core
module Driver = Dcir_dace_passes.Driver
module Sdfg = Dcir_sdfg.Sdfg

let compile_sdfg ?(control = true) (src : string) ~(entry : string) : Sdfg.t =
  let m = Dcir_cfront.Polygeist.compile src in
  if control then
    ignore
      (Dcir_mlir.Pass.run_to_fixpoint (Pipelines.control_passes Dcir) m);
  let converted = Converter.convert_module m in
  Translator.translate_module converted ~entry

let semantics_preserved ?disable (w_src : string) ~(entry : string)
    (args : unit -> Pipelines.arg list) : bool =
  let reference =
    Pipelines.run (CMlir (Dcir_cfront.Polygeist.compile w_src)) ~entry (args ())
  in
  let compiled = Pipelines.compile ?disable Dcir ~src:w_src ~entry in
  let r = Pipelines.run compiled ~entry (args ()) in
  Tutil.outputs_close reference r

let saxpy_src =
  {|
void saxpy(double x[32], double y[32], double a) {
  for (int i = 0; i < 32; i++)
    y[i] = a * x[i] + y[i];
}
|}

let saxpy_args () =
  [
    Pipelines.AFloatArr (Array.init 32 float_of_int, [| 32 |]);
    Pipelines.AFloatArr (Array.make 32 1.0, [| 32 |]);
    Pipelines.AFloat 2.0;
  ]

let container_count (sdfg : Sdfg.t) : int = Hashtbl.length sdfg.containers

let test_scalar_to_symbol () =
  let sdfg = compile_sdfg saxpy_src ~entry:"saxpy" in
  let scalars_before =
    Hashtbl.fold
      (fun _ (c : Sdfg.container) n -> if Sdfg.is_scalar c then n + 1 else n)
      sdfg.containers 0
  in
  ignore (Dcir_dace_passes.Scalar_to_symbol.run sdfg);
  let scalars_after =
    Hashtbl.fold
      (fun _ (c : Sdfg.container) n -> if Sdfg.is_scalar c then n + 1 else n)
      sdfg.containers 0
  in
  Alcotest.(check bool) "int scalars promoted" true
    (scalars_after < scalars_before)

let test_symbol_propagation () =
  let sdfg = compile_sdfg saxpy_src ~entry:"saxpy" in
  ignore (Driver.fixpoint Driver.inference sdfg);
  (* After promotion + propagation, constants are folded into subsets and no
     single-assignment symbol remains on the edges. *)
  let single_assign_consts =
    List.concat_map
      (fun (e : Sdfg.istate_edge) ->
        List.filter
          (fun (_, ex) -> Dcir_symbolic.Expr.is_constant ex <> None)
          e.ie_assign)
      (Sdfg.istate_edges sdfg)
    |> List.filter (fun (s, _) ->
           List.length
             (List.filter
                (fun (e : Sdfg.istate_edge) -> List.mem_assoc s e.ie_assign)
                (Sdfg.istate_edges sdfg))
           = 1)
  in
  Alcotest.(check int) "no residual constant symbols" 0
    (List.length single_assign_consts)

let test_state_fusion_shrinks () =
  let sdfg = compile_sdfg saxpy_src ~entry:"saxpy" in
  let before = List.length (Sdfg.states sdfg) in
  ignore (Driver.fixpoint Driver.inference sdfg);
  ignore (Dcir_dace_passes.State_fusion.run sdfg);
  Alcotest.(check bool) "fewer states" true (List.length (Sdfg.states sdfg) < before)

let test_wcr_detection () =
  let src =
    {|
void acc(double x[16], double out[16]) {
  for (int i = 0; i < 16; i++)
    out[i] = out[i] + x[i];
}
|}
  in
  let sdfg = compile_sdfg src ~entry:"acc" in
  ignore (Driver.simplify sdfg);
  let has_wcr = ref false in
  List.iter
    (fun (st : Sdfg.state) ->
      List.iter
        (fun (e : Sdfg.edge) ->
          match e.e_memlet with
          | Some m when m.wcr = Some Sdfg.WcrSum -> has_wcr := true
          | _ -> ())
        (Sdfg.edges st.s_graph))
    (Sdfg.states sdfg);
  Alcotest.(check bool) "update detected" true !has_wcr;
  Alcotest.(check bool) "semantics" true
    (semantics_preserved src ~entry:"acc" (fun () ->
         [
           Pipelines.AFloatArr (Array.init 16 float_of_int, [| 16 |]);
           Pipelines.AFloatArr (Array.make 16 5.0, [| 16 |]);
         ]))

let test_dead_dataflow () =
  let src =
    {|
void dead(double out[8]) {
  double *junk = (double*)malloc(64 * sizeof(double));
  for (int i = 0; i < 64; i++)
    junk[i] = 1.0 * i;
  for (int i = 0; i < 8; i++)
    out[i] = 2.0 * i;
  free(junk);
}
|}
  in
  let sdfg = compile_sdfg src ~entry:"dead" in
  Driver.reset_counters ();
  let stats = Driver.optimize sdfg in
  Alcotest.(check bool) "junk eliminated" true
    (Driver.eliminated_containers () > 0);
  Alcotest.(check bool) "container gone" false
    (Hashtbl.fold
       (fun name _ acc -> acc || Tutil.contains name "junk")
       sdfg.containers false);
  (* The stats record must reflect what actually happened: three fixpoint
     stages ran (>= 1 round each), some pass applied at least once, and the
     after-counts match the live SDFG. *)
  Alcotest.(check bool) "fixpoint ran >= 3 rounds" true (stats.rounds >= 3);
  let total_apps =
    List.fold_left (fun acc (_, n) -> acc + n) 0 stats.applications
  in
  Alcotest.(check bool) "some pass applied" true (total_apps > 0);
  Alcotest.(check bool) "containers shrank" true
    (stats.containers_after < stats.containers_before);
  Alcotest.(check int) "states_after matches SDFG" stats.states_after
    (List.length (Sdfg.states sdfg));
  Alcotest.(check int) "containers_after matches SDFG" stats.containers_after
    (Hashtbl.length sdfg.containers);
  Alcotest.(check int) "eliminated count in stats"
    (Driver.eliminated_containers ())
    stats.eliminated_containers

let test_self_cycle_dead () =
  (* The Fig 2 pattern: an array only read to feed writes to itself. *)
  let src =
    {|
int selfdead(int n) {
  int *A = (int*)malloc(64 * sizeof(int));
  for (int i = 0; i < 64; i++)
    A[i] = 1;
  for (int t = 0; t < n; t++)
    for (int i = 0; i < 63; i++)
      A[i] = A[i + 1];
  free(A);
  return n;
}
|}
  in
  let sdfg = compile_sdfg src ~entry:"selfdead" in
  ignore (Driver.optimize sdfg);
  let a_exists =
    Hashtbl.fold (fun name _ acc -> acc || Tutil.contains name "A") sdfg.containers false
  in
  Alcotest.(check bool) "self-sustaining array removed" false a_exists

let test_alloc_hoisting () =
  let src =
    {|
double hoist(double x[16]) {
  double s = 0.0;
  for (int t = 0; t < 16; t++) {
    double *tmp = (double*)malloc(16 * sizeof(double));
    for (int i = 0; i < 16; i++)
      tmp[i] = x[i] * 2.0;
    for (int i = 0; i < 16; i++)
      s += tmp[i];
    free(tmp);
  }
  return s;
}
|}
  in
  let args () = [ Pipelines.AFloatArr (Array.init 16 float_of_int, [| 16 |]) ] in
  let r_dcir = Tutil.run_pipeline Dcir ~src ~entry:"hoist" (args ()) in
  let r_mlir = Tutil.run_pipeline Mlir ~src ~entry:"hoist" (args ()) in
  Alcotest.(check bool) "allocations hoisted/eliminated" true
    (r_dcir.metrics.heap_allocs < r_mlir.metrics.heap_allocs);
  Alcotest.(check bool) "semantics" true
    (semantics_preserved src ~entry:"hoist" args)

let test_stack_allocation () =
  let sdfg =
    compile_sdfg
      {|
void f(double out[8]) {
  double *t = (double*)malloc(8 * sizeof(double));
  for (int i = 0; i < 8; i++)
    t[i] = 1.0 * i;
  for (int i = 0; i < 8; i++)
    out[i] = t[i] + t[7 - i];
  free(t);
}
|}
      ~entry:"f"
  in
  ignore (Driver.optimize sdfg);
  let heap_transients =
    Hashtbl.fold
      (fun _ (c : Sdfg.container) n ->
        if c.transient && c.storage = Sdfg.Heap then n + 1 else n)
      sdfg.containers 0
  in
  Alcotest.(check int) "small transient moved off the heap" 0 heap_transients

let test_loop_fusion_and_shrink () =
  let src =
    {|
void chain(double x[64], double out[64]) {
  double *t = (double*)malloc(64 * sizeof(double));
  for (int i = 0; i < 64; i++)
    t[i] = x[i] * 2.0;
  for (int i = 0; i < 64; i++)
    out[i] = t[i] + 1.0;
  free(t);
}
|}
  in
  let args () =
    [
      Pipelines.AFloatArr (Array.init 64 float_of_int, [| 64 |]);
      Pipelines.AFloatArr (Array.make 64 0.0, [| 64 |]);
    ]
  in
  let r_dcir = Tutil.run_pipeline Dcir ~src ~entry:"chain" (args ()) in
  let r_mlir = Tutil.run_pipeline Mlir ~src ~entry:"chain" (args ()) in
  (* The intermediate array becomes a register scalar: its 64 loads and 64
     stores disappear. *)
  Alcotest.(check bool) "less traffic after fusion+shrink" true
    (r_dcir.metrics.loads + r_dcir.metrics.stores
    < r_mlir.metrics.loads + r_mlir.metrics.stores);
  Alcotest.(check bool) "semantics" true
    (semantics_preserved src ~entry:"chain" args)

let test_local_storage () =
  let src =
    {|
void dot(double a[24][24], double b[24][24], double c[24][24]) {
  for (int i = 0; i < 24; i++)
    for (int j = 0; j < 24; j++)
      for (int k = 0; k < 24; k++)
        c[i][j] += a[i][k] * b[k][j];
}
|}
  in
  let args () =
    [
      Pipelines.AFloatArr (Array.init 576 (fun k -> Dcir_workloads.Workload.frand k), [| 24; 24 |]);
      Pipelines.AFloatArr (Array.init 576 (fun k -> Dcir_workloads.Workload.frand (k + 7)), [| 24; 24 |]);
      Pipelines.AFloatArr (Array.make 576 0.0, [| 24; 24 |]);
    ]
  in
  let with_ls = Tutil.run_pipeline Dcir ~src ~entry:"dot" (args ()) in
  let without =
    Tutil.run_pipeline ~disable:[ "local-storage" ] Dcir ~src ~entry:"dot"
      (args ())
  in
  Alcotest.(check bool) "accumulator promoted to register" true
    (with_ls.metrics.stores < without.metrics.stores);
  Alcotest.(check bool) "semantics" true
    (semantics_preserved src ~entry:"dot" args)

let test_invariant_collapse () =
  let src =
    {|
int inv(int n) {
  int *B = (int*)malloc(16 * sizeof(int));
  for (int t = 0; t < 1000; t++)
    B[3] = 7;
  int r = B[3];
  free(B);
  return r;
}
|}
  in
  let args () = [ Pipelines.AInt 5 ] in
  let r_dcir = Tutil.run_pipeline Dcir ~src ~entry:"inv" (args ()) in
  let r_mlir = Tutil.run_pipeline Mlir ~src ~entry:"inv" (args ()) in
  Alcotest.(check bool) "idempotent loop collapsed" true
    (r_dcir.metrics.cycles < r_mlir.metrics.cycles /. 10.0);
  Alcotest.(check bool) "result" true
    (r_dcir.return_value = Some (Dcir_machine.Value.VInt 7))

let test_simplify_idempotent () =
  let sdfg = compile_sdfg saxpy_src ~entry:"saxpy" in
  ignore (Driver.simplify sdfg);
  let states = List.length (Sdfg.states sdfg) in
  let containers = container_count sdfg in
  ignore (Driver.simplify sdfg);
  Alcotest.(check int) "states stable" states (List.length (Sdfg.states sdfg));
  Alcotest.(check int) "containers stable" containers (container_count sdfg)

let test_each_pass_preserves_semantics () =
  (* Disabling any single pass must never change results, only costs. *)
  List.iter
    (fun pass ->
      Alcotest.(check bool)
        (Printf.sprintf "disable %s keeps semantics" pass)
        true
        (semantics_preserved ~disable:[ pass ] saxpy_src ~entry:"saxpy"
           saxpy_args))
    Driver.all_pass_names

let suite =
  ( "dace-passes",
    [
      Alcotest.test_case "scalar-to-symbol" `Quick test_scalar_to_symbol;
      Alcotest.test_case "symbol propagation" `Quick test_symbol_propagation;
      Alcotest.test_case "state fusion" `Quick test_state_fusion_shrinks;
      Alcotest.test_case "WCR detection" `Quick test_wcr_detection;
      Alcotest.test_case "dead dataflow elimination" `Quick test_dead_dataflow;
      Alcotest.test_case "self-cycle dead arrays" `Quick test_self_cycle_dead;
      Alcotest.test_case "allocation hoisting" `Quick test_alloc_hoisting;
      Alcotest.test_case "stack allocation" `Quick test_stack_allocation;
      Alcotest.test_case "loop fusion + shrink" `Quick test_loop_fusion_and_shrink;
      Alcotest.test_case "local storage promotion" `Quick test_local_storage;
      Alcotest.test_case "invariant loop collapse" `Quick test_invariant_collapse;
      Alcotest.test_case "simplify is idempotent" `Quick test_simplify_idempotent;
      Alcotest.test_case "pass ablations preserve semantics" `Quick
        test_each_pass_preserves_semantics;
    ] )
