(** Tests for the SDFG IR: construction, validation (including Fig 3's
    parametric size checks), and the interpreter (tasklets, copies, WCR
    updates, state-machine loops, parametric maps). *)

open Dcir_sdfg
open Dcir_symbolic
open Dcir_machine

let mk_tasklet ?(syms = []) name ins outs code =
  {
    Sdfg.tname = name;
    t_inputs = ins;
    t_outputs = outs;
    t_syms = syms;
    code = Sdfg.Native code;
    t_overhead = 0.0;
  }

let memlet ?wcr ?other data subset = { Sdfg.data; subset; wcr; other }

(* y[i] = 2*x[i] over a state-machine loop with symbol i. *)
let scale_sdfg () : Sdfg.t =
  let sdfg = Sdfg.create "scale" in
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.sym "N" ] "x");
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.sym "N" ] "y");
  sdfg.arg_symbols <- [ "N" ];
  sdfg.param_order <- [ "x"; "y" ];
  let init = Sdfg.add_state sdfg "init" in
  ignore init;
  let guard = Sdfg.add_state sdfg "guard" in
  let body = Sdfg.add_state sdfg "body" in
  let exit_s = Sdfg.add_state sdfg "exit" in
  let g = body.s_graph in
  let x = Sdfg.add_node g (Sdfg.Access "x") in
  let y = Sdfg.add_node g (Sdfg.Access "y") in
  let t =
    Sdfg.add_node g
      (Sdfg.TaskletN
         (mk_tasklet "t" [ "_in" ] [ "_out" ]
            [ ("_out", Texpr.TBin (Texpr.BMul, TFloat 2.0, TIn "_in")) ]))
  in
  ignore
    (Sdfg.add_edge g ~dst_conn:"_in"
       ~memlet:(memlet "x" [ Range.index (Expr.sym "i") ])
       x t);
  ignore
    (Sdfg.add_edge g ~src_conn:"_out"
       ~memlet:(memlet "y" [ Range.index (Expr.sym "i") ])
       t y);
  Sdfg.add_istate_edge sdfg ~assign:[ ("i", Expr.zero) ] ~src:"init"
    ~dst:"guard" ();
  Sdfg.add_istate_edge sdfg
    ~cond:(Bexpr.lt (Expr.sym "i") (Expr.sym "N"))
    ~src:"guard" ~dst:"body" ();
  Sdfg.add_istate_edge sdfg
    ~assign:[ ("i", Expr.add (Expr.sym "i") Expr.one) ]
    ~src:"body" ~dst:"guard" ();
  Sdfg.add_istate_edge sdfg
    ~cond:(Bexpr.ge (Expr.sym "i") (Expr.sym "N"))
    ~src:"guard" ~dst:"exit" ();
  Sdfg.find_state sdfg "exit" |> ignore;
  sdfg.start_state <- "init";
  ignore exit_s;
  ignore guard;
  sdfg

let run_scale n =
  let sdfg = scale_sdfg () in
  Validate.validate_exn sdfg;
  let machine = Machine.create () in
  let x =
    Machine.alloc machine ~storage:Machine.Heap ~elems:n ~elem_bytes:8
      ~zero_init:(Value.VFloat 0.0)
  in
  let y =
    Machine.alloc machine ~storage:Machine.Heap ~elems:n ~elem_bytes:8
      ~zero_init:(Value.VFloat 0.0)
  in
  for i = 0 to n - 1 do
    Machine.poke x i (Value.VFloat (float_of_int i))
  done;
  let _ =
    Interp.run ~machine sdfg
      ~buffers:[ ("x", x, [| n |]); ("y", y, [| n |]) ]
      ~symbols:[ ("N", n) ] ()
  in
  Array.init n (fun i -> Value.as_float (Machine.peek y i))

let test_loop_execution () =
  let y = run_scale 8 in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-9)) "2*i" (2.0 *. float_of_int i) v)
    y

let test_wcr_update () =
  (* acc += x[i] via a WCR store. *)
  let sdfg = Sdfg.create "reduce" in
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.int 8 ] "x");
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat ~shape:[]
       "acc");
  sdfg.param_order <- [ "x"; "acc" ];
  let body = Sdfg.add_state sdfg "body" in
  let g = body.s_graph in
  let x = Sdfg.add_node g (Sdfg.Access "x") in
  let acc = Sdfg.add_node g (Sdfg.Access "acc") in
  let t =
    Sdfg.add_node g
      (Sdfg.TaskletN (mk_tasklet "t" [ "_in" ] [ "_out" ] [ ("_out", Texpr.TIn "_in") ]))
  in
  ignore
    (Sdfg.add_edge g ~dst_conn:"_in"
       ~memlet:(memlet "x" [ Range.index (Expr.sym "i") ])
       x t);
  ignore
    (Sdfg.add_edge g ~src_conn:"_out"
       ~memlet:(memlet ~wcr:Sdfg.WcrSum "acc" [])
       t acc);
  Sdfg.add_istate_edge sdfg ~assign:[ ("i", Expr.zero) ] ~src:"body" ~dst:"body"
    ~cond:(Bexpr.lt (Expr.sym "i") (Expr.int (-1)))
    ();
  (* Simpler: run the single state 8 times through a guard loop. *)
  let sdfg2 = Sdfg.create "reduce2" in
  ignore
    (Sdfg.add_container sdfg2 ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.int 8 ] "x");
  ignore
    (Sdfg.add_container sdfg2 ~transient:false ~dtype:Sdfg.DFloat ~shape:[]
       "acc");
  sdfg2.param_order <- [ "x"; "acc" ];
  let init = Sdfg.add_state sdfg2 "init" in
  let guard = Sdfg.add_state sdfg2 "guard" in
  let body2 = Sdfg.add_state sdfg2 "body" in
  let exit_s = Sdfg.add_state sdfg2 "exit" in
  ignore (init, guard, exit_s);
  let g2 = body2.s_graph in
  let x2 = Sdfg.add_node g2 (Sdfg.Access "x") in
  let acc2 = Sdfg.add_node g2 (Sdfg.Access "acc") in
  let t2 =
    Sdfg.add_node g2
      (Sdfg.TaskletN (mk_tasklet "t" [ "_in" ] [ "_out" ] [ ("_out", Texpr.TIn "_in") ]))
  in
  ignore
    (Sdfg.add_edge g2 ~dst_conn:"_in"
       ~memlet:(memlet "x" [ Range.index (Expr.sym "i") ])
       x2 t2);
  ignore
    (Sdfg.add_edge g2 ~src_conn:"_out"
       ~memlet:(memlet ~wcr:Sdfg.WcrSum "acc" [])
       t2 acc2);
  Sdfg.add_istate_edge sdfg2 ~assign:[ ("i", Expr.zero) ] ~src:"init" ~dst:"guard" ();
  Sdfg.add_istate_edge sdfg2
    ~cond:(Bexpr.lt (Expr.sym "i") (Expr.int 8))
    ~src:"guard" ~dst:"body" ();
  Sdfg.add_istate_edge sdfg2
    ~assign:[ ("i", Expr.add (Expr.sym "i") Expr.one) ]
    ~src:"body" ~dst:"guard" ();
  Sdfg.add_istate_edge sdfg2
    ~cond:(Bexpr.ge (Expr.sym "i") (Expr.int 8))
    ~src:"guard" ~dst:"exit" ();
  sdfg2.start_state <- "init";
  ignore sdfg;
  let machine = Machine.create () in
  let x =
    Machine.alloc machine ~storage:Machine.Heap ~elems:8 ~elem_bytes:8
      ~zero_init:(Value.VFloat 0.0)
  in
  let acc =
    Machine.alloc machine ~storage:Machine.Register ~elems:1 ~elem_bytes:8
      ~zero_init:(Value.VFloat 0.0)
  in
  for i = 0 to 7 do
    Machine.poke x i (Value.VFloat (float_of_int (i + 1)))
  done;
  let _ =
    Interp.run ~machine sdfg2
      ~buffers:[ ("x", x, [| 8 |]); ("acc", acc, [||]) ]
      ~symbols:[] ()
  in
  Alcotest.(check (float 1e-9)) "wcr sum 1..8" 36.0
    (Value.as_float (Machine.peek acc 0))

let test_map_execution () =
  (* Parametric-parallel map: y[i] = x[i] + 1 for i in [0, N). *)
  let sdfg = Sdfg.create "mapped" in
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.sym "N" ] "x");
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.sym "N" ] "y");
  sdfg.arg_symbols <- [ "N" ];
  sdfg.param_order <- [ "x"; "y" ];
  let st = Sdfg.add_state sdfg "s" in
  let body = Sdfg.new_graph () in
  let x = Sdfg.add_node body (Sdfg.Access "x") in
  let y = Sdfg.add_node body (Sdfg.Access "y") in
  let t =
    Sdfg.add_node body
      (Sdfg.TaskletN
         (mk_tasklet "t" [ "_in" ] [ "_out" ]
            [ ("_out", Texpr.TBin (Texpr.BAdd, TIn "_in", TFloat 1.0)) ]))
  in
  ignore
    (Sdfg.add_edge body ~dst_conn:"_in"
       ~memlet:(memlet "x" [ Range.index (Expr.sym "i") ])
       x t);
  ignore
    (Sdfg.add_edge body ~src_conn:"_out"
       ~memlet:(memlet "y" [ Range.index (Expr.sym "i") ])
       t y);
  let map_node =
    Sdfg.add_node st.s_graph
      (Sdfg.MapN
         { m_params = [ "i" ]; m_ranges = [ Range.full (Expr.sym "N") ];
           m_body = body; m_par = None })
  in
  ignore map_node;
  Validate.validate_exn sdfg;
  let machine = Machine.create () in
  let x_buf =
    Machine.alloc machine ~storage:Machine.Heap ~elems:5 ~elem_bytes:8
      ~zero_init:(Value.VFloat 0.0)
  in
  let y_buf =
    Machine.alloc machine ~storage:Machine.Heap ~elems:5 ~elem_bytes:8
      ~zero_init:(Value.VFloat 0.0)
  in
  for i = 0 to 4 do
    Machine.poke x_buf i (Value.VFloat (float_of_int (10 * i)))
  done;
  let _ =
    Interp.run ~machine sdfg
      ~buffers:[ ("x", x_buf, [| 5 |]); ("y", y_buf, [| 5 |]) ]
      ~symbols:[ ("N", 5) ] ()
  in
  for i = 0 to 4 do
    Alcotest.(check (float 1e-9)) "map result"
      (float_of_int (10 * i) +. 1.0)
      (Value.as_float (Machine.peek y_buf i))
  done

(* ------------------------------------------------------------------ *)
(* Validation *)

let test_validate_size_mismatch () =
  (* Fig 3: full copy of x (size N) into z (size M) cannot be proven. *)
  let sdfg = Sdfg.create "copy" in
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.sym "N" ] "x");
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.sym "M" ] "z");
  sdfg.arg_symbols <- [ "N"; "M" ];
  let st = Sdfg.add_state sdfg "s" in
  let x = Sdfg.add_node st.s_graph (Sdfg.Access "x") in
  let z = Sdfg.add_node st.s_graph (Sdfg.Access "z") in
  ignore
    (Sdfg.add_edge st.s_graph
       ~memlet:
         (memlet
            ~other:[ Range.full (Expr.sym "M") ]
            "x"
            [ Range.full (Expr.sym "N") ])
       x z);
  Alcotest.(check bool) "size mismatch reported" true
    (Validate.errors sdfg <> []);
  (* The same copy with matching sizes validates. *)
  let ok = Sdfg.create "copy_ok" in
  ignore
    (Sdfg.add_container ok ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.sym "N" ] "x");
  ignore
    (Sdfg.add_container ok ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.sym "N" ] "z");
  ok.arg_symbols <- [ "N" ];
  let st = Sdfg.add_state ok "s" in
  let x = Sdfg.add_node st.s_graph (Sdfg.Access "x") in
  let z = Sdfg.add_node st.s_graph (Sdfg.Access "z") in
  ignore
    (Sdfg.add_edge st.s_graph
       ~memlet:
         (memlet ~other:[ Range.full (Expr.sym "N") ] "x"
            [ Range.full (Expr.sym "N") ])
       x z);
  Alcotest.(check int) "matching sizes accepted" 0
    (List.length (Validate.errors ok))

let test_validate_oob () =
  let sdfg = Sdfg.create "oob" in
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.int 4 ] "x");
  let st = Sdfg.add_state sdfg "s" in
  let x = Sdfg.add_node st.s_graph (Sdfg.Access "x") in
  let t =
    Sdfg.add_node st.s_graph
      (Sdfg.TaskletN (mk_tasklet "t" [ "_in" ] [] []))
  in
  ignore
    (Sdfg.add_edge st.s_graph ~dst_conn:"_in"
       ~memlet:(memlet "x" [ Range.index (Expr.int 7) ])
       x t);
  Alcotest.(check bool) "out-of-bounds subset reported" true
    (Validate.errors sdfg <> [])

let test_validate_structural () =
  let sdfg = Sdfg.create "bad" in
  let st = Sdfg.add_state sdfg "s" in
  let t =
    Sdfg.add_node st.s_graph
      (Sdfg.TaskletN (mk_tasklet "t" [] [ "_out" ] [ ("_out", Texpr.TIn "_nope") ]))
  in
  ignore t;
  Alcotest.(check bool) "undeclared connector reported" true
    (Validate.errors sdfg <> []);
  let sdfg2 = Sdfg.create "bad2" in
  Sdfg.add_istate_edge sdfg2 ~src:"ghost" ~dst:"ghost2" ();
  Alcotest.(check bool) "dangling edge reported" true
    (Validate.errors sdfg2 <> [])

(* Structured diagnostics: each failure class must surface as an [`Error]
   whose message names the offending entity — the fuzz CLI and the checked
   pass drivers render these verbatim. *)
let has_error (diags : Validate.diagnostic list) (sub : string) : bool =
  List.exists
    (fun (d : Validate.diagnostic) ->
      d.severity = `Error && Tutil.contains d.message sub)
    diags

let test_validate_unknown_container () =
  let sdfg = Sdfg.create "diag1" in
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.int 4 ] "x");
  let st = Sdfg.add_state sdfg "s" in
  let x = Sdfg.add_node st.s_graph (Sdfg.Access "x") in
  let t =
    Sdfg.add_node st.s_graph (Sdfg.TaskletN (mk_tasklet "t" [ "_in" ] [] []))
  in
  ignore (Sdfg.add_edge st.s_graph ~dst_conn:"_in" ~memlet:(memlet "ghost" []) x t);
  Alcotest.(check bool) "unknown container is an error naming it" true
    (has_error (Validate.validate sdfg) "unknown container 'ghost'")

let test_validate_rank_mismatch () =
  let sdfg = Sdfg.create "diag2" in
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.int 4; Expr.int 4 ] "m");
  let st = Sdfg.add_state sdfg "s" in
  let m = Sdfg.add_node st.s_graph (Sdfg.Access "m") in
  let t =
    Sdfg.add_node st.s_graph (Sdfg.TaskletN (mk_tasklet "t" [ "_in" ] [] []))
  in
  ignore
    (Sdfg.add_edge st.s_graph ~dst_conn:"_in"
       ~memlet:(memlet "m" [ Range.index (Expr.int 1) ])
       m t);
  Alcotest.(check bool) "rank mismatch is an error stating both ranks" true
    (has_error (Validate.validate sdfg) "rank 1 but container has rank 2")

let test_validate_symbolic_oob () =
  (* x has symbolic size N; subset [N + 1] is provably out of bounds for
     every binding of N. *)
  let sdfg = Sdfg.create "diag3" in
  ignore
    (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
       ~shape:[ Expr.sym "N" ] "x");
  sdfg.arg_symbols <- [ "N" ];
  let st = Sdfg.add_state sdfg "s" in
  let x = Sdfg.add_node st.s_graph (Sdfg.Access "x") in
  let t =
    Sdfg.add_node st.s_graph (Sdfg.TaskletN (mk_tasklet "t" [ "_in" ] [] []))
  in
  ignore
    (Sdfg.add_edge st.s_graph ~dst_conn:"_in"
       ~memlet:(memlet "x" [ Range.index (Expr.add (Expr.sym "N") Expr.one) ])
       x t);
  Alcotest.(check bool) "provably-OOB symbolic subset is an error" true
    (has_error (Validate.validate sdfg) "out of bounds")

(* Map-scope validation: the auto-parallelizer's output (certified maps
   with summarizing external memlets) leans on these invariants, so each
   violation must be a hard error. *)

let map_check_sdfg ~(params : string list) ~(ranges : Range.dim list)
    ~(ext : Sdfg.graph -> Sdfg.node -> unit) () : Sdfg.t =
  let sdfg = Sdfg.create "map_checks" in
  List.iter
    (fun name ->
      ignore
        (Sdfg.add_container sdfg ~transient:false ~dtype:Sdfg.DFloat
           ~shape:[ Expr.int 8 ] name))
    [ "x"; "y"; "z" ];
  sdfg.param_order <- [ "x"; "y"; "z" ];
  let st = Sdfg.add_state sdfg "s" in
  (* Body: y[i] = x[i]. The container z is never touched inside. *)
  let body = Sdfg.new_graph () in
  let x = Sdfg.add_node body (Sdfg.Access "x") in
  let y = Sdfg.add_node body (Sdfg.Access "y") in
  let t =
    Sdfg.add_node body
      (Sdfg.TaskletN
         (mk_tasklet "t" [ "_in" ] [ "_out" ] [ ("_out", Texpr.TIn "_in") ]))
  in
  ignore
    (Sdfg.add_edge body ~dst_conn:"_in"
       ~memlet:(memlet "x" [ Range.index (Expr.sym "i") ])
       x t);
  ignore
    (Sdfg.add_edge body ~src_conn:"_out"
       ~memlet:(memlet "y" [ Range.index (Expr.sym "i") ])
       t y);
  let mnode =
    Sdfg.add_node st.s_graph
      (Sdfg.MapN { m_params = params; m_ranges = ranges; m_body = body;
                   m_par = None })
  in
  ext st.s_graph mnode;
  sdfg

let full8 = Range.dim (Expr.int 0) (Expr.int 7)
let no_ext _ _ = ()

let test_validate_map_params () =
  let ok = map_check_sdfg ~params:[ "i" ] ~ranges:[ full8 ] ~ext:no_ext () in
  Alcotest.(check int) "well-formed map accepted" 0
    (List.length (Validate.errors ok));
  let dup =
    map_check_sdfg ~params:[ "i"; "i" ] ~ranges:[ full8; full8 ] ~ext:no_ext
      ()
  in
  Alcotest.(check bool) "duplicate parameter is an error" true
    (has_error (Validate.validate dup) "declares parameter 'i' twice");
  let shadow =
    map_check_sdfg ~params:[ "x" ] ~ranges:[ full8 ] ~ext:no_ext ()
  in
  Alcotest.(check bool) "container-shadowing parameter is an error" true
    (has_error (Validate.validate shadow) "shadows a container")

let test_validate_map_step () =
  let zero =
    map_check_sdfg ~params:[ "i" ]
      ~ranges:[ Range.dim ~step:Expr.zero (Expr.int 0) (Expr.int 7) ]
      ~ext:no_ext ()
  in
  Alcotest.(check bool) "zero step is an error" true
    (has_error (Validate.validate zero) "non-positive step");
  let negative =
    map_check_sdfg ~params:[ "i" ]
      ~ranges:[ Range.dim ~step:(Expr.int (-1)) (Expr.int 0) (Expr.int 7) ]
      ~ext:no_ext ()
  in
  Alcotest.(check bool) "negative step is an error" true
    (has_error (Validate.validate negative) "non-positive step");
  (* A symbolic step is not decidably non-positive: allowed. *)
  let symbolic =
    map_check_sdfg ~params:[ "i" ]
      ~ranges:[ Range.dim ~step:(Expr.sym "S") (Expr.int 0) (Expr.int 7) ]
      ~ext:no_ext ()
  in
  Alcotest.(check bool) "symbolic step stays undecided" false
    (has_error (Validate.validate symbolic) "non-positive step")

let test_validate_map_external_memlets () =
  (* Output memlet claiming a write of z, which the body never writes. *)
  let lying_out =
    map_check_sdfg ~params:[ "i" ] ~ranges:[ full8 ]
      ~ext:(fun g mnode ->
        let z = Sdfg.add_node g (Sdfg.Access "z") in
        ignore
          (Sdfg.add_edge g
             ~memlet:(memlet "z" [ Range.full (Expr.int 8) ])
             mnode z))
      ()
  in
  Alcotest.(check bool) "vacuous output memlet is an error" true
    (has_error (Validate.validate lying_out) "never writes");
  (* Input memlet feeding the map a container the body never accesses. *)
  let lying_in =
    map_check_sdfg ~params:[ "i" ] ~ranges:[ full8 ]
      ~ext:(fun g mnode ->
        let z = Sdfg.add_node g (Sdfg.Access "z") in
        ignore
          (Sdfg.add_edge g
             ~memlet:(memlet "z" [ Range.full (Expr.int 8) ])
             z mnode))
      ()
  in
  Alcotest.(check bool) "vacuous input memlet is an error" true
    (has_error (Validate.validate lying_in) "never accesses");
  (* Honest summarizing edges — x in, y out — validate cleanly. *)
  let honest =
    map_check_sdfg ~params:[ "i" ] ~ranges:[ full8 ]
      ~ext:(fun g mnode ->
        let x = Sdfg.add_node g (Sdfg.Access "x") in
        let y = Sdfg.add_node g (Sdfg.Access "y") in
        ignore
          (Sdfg.add_edge g
             ~memlet:(memlet "x" [ Range.full (Expr.int 8) ])
             x mnode);
        ignore
          (Sdfg.add_edge g
             ~memlet:(memlet "y" [ Range.full (Expr.int 8) ])
             mnode y))
      ()
  in
  Alcotest.(check int) "summarizing memlets accepted" 0
    (List.length (Validate.errors honest))

let test_printer_smoke () =
  let s = Printer.to_string (scale_sdfg ()) in
  List.iter
    (fun frag ->
      Alcotest.(check bool) (frag ^ " printed") true (Tutil.contains s frag))
    [ "sdfg scale"; "state body"; "edge guard -> body"; "x[i]" ]

let suite =
  ( "sdfg",
    [
      Alcotest.test_case "state-machine loop" `Quick test_loop_execution;
      Alcotest.test_case "WCR update" `Quick test_wcr_update;
      Alcotest.test_case "parametric map" `Quick test_map_execution;
      Alcotest.test_case "validate: Fig 3 sizes" `Quick test_validate_size_mismatch;
      Alcotest.test_case "validate: out of bounds" `Quick test_validate_oob;
      Alcotest.test_case "validate: structure" `Quick test_validate_structural;
      Alcotest.test_case "validate: unknown container diagnostic" `Quick
        test_validate_unknown_container;
      Alcotest.test_case "validate: rank mismatch diagnostic" `Quick
        test_validate_rank_mismatch;
      Alcotest.test_case "validate: map parameters" `Quick
        test_validate_map_params;
      Alcotest.test_case "validate: map range step" `Quick
        test_validate_map_step;
      Alcotest.test_case "validate: map external memlets" `Quick
        test_validate_map_external_memlets;
      Alcotest.test_case "validate: symbolic OOB diagnostic" `Quick
        test_validate_symbolic_oob;
      Alcotest.test_case "printer" `Quick test_printer_smoke;
    ] )
