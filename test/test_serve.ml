(** The serving layer: content digests, the sharded LRU artifact store,
    the admission queue, and the batch engine itself. The invariants
    under test are the serving contract: digests are pure functions of
    program structure (canonicalized against process-global counters),
    store telemetry is a deterministic function of the operation
    sequence, a cache hit is invisible in outputs and metrics, a
    tenant's responses are byte-identical whether it shares the engine
    with a noisy neighbor or runs alone, and the whole journal replays
    byte-for-byte from its seed. *)

module Cdigest = Dcir_support.Digest
module Cstore = Dcir_support.Cstore
module Pipelines = Dcir_core.Pipelines
module Budget = Dcir_resilience.Budget
module Breaker = Dcir_resilience.Breaker
module Chaos = Dcir_resilience.Chaos
module Json = Dcir_obs.Json
module Request = Dcir_serve.Request
module Admission = Dcir_serve.Admission
module Engine = Dcir_serve.Engine
module Sjournal = Dcir_serve.Sjournal

(* ------------------------------------------------------------------ *)
(* Digests *)

let test_digest_stability () =
  (* Pinned vectors: the digest is part of the journal format, so a
     silent change to the hash is a format break, not a refactor. *)
  Alcotest.(check string)
    "empty" "f52a15e9a9b5e89be220a8397b1dcdaf"
    (Cdigest.of_string "");
  Alcotest.(check string)
    "abc" "0dd490490804b508351d88a9dce78d10"
    (Cdigest.of_string "abc");
  Alcotest.(check bool) "distinct inputs, distinct digests" true
    (Cdigest.of_string "abc" <> Cdigest.of_string "abd");
  Alcotest.(check int) "32 hex chars" 32
    (String.length (Cdigest.of_string "anything"))

let test_digest_canonical () =
  (* Serial tokens renumber by first occurrence, consistently. *)
  Alcotest.(check string)
    "node ids" "#0 -> #1 ; #0" (Cdigest.canonical "#12 -> #7 ; #12");
  (* Prefixes are preserved, each with its own counter. *)
  Alcotest.(check string)
    "per-prefix" "%x0 %y0 %x1" (Cdigest.canonical "%x9 %y9 %x3");
  (* Numeric literals pass through untouched. *)
  Alcotest.(check string)
    "literals" "1.5e10 + 0x1A - 42" (Cdigest.canonical "1.5e10 + 0x1A - 42");
  (* Names without a digit suffix are untouched. *)
  Alcotest.(check string) "plain names" "gemm(A, B)"
    (Cdigest.canonical "gemm(A, B)");
  (* The property the store needs: same structure, different serials,
     same canonical form — hence same digest. *)
  Alcotest.(check string) "alpha-equivalent serials agree"
    (Cdigest.of_string (Cdigest.canonical "#4 [#4 -> #5]"))
    (Cdigest.of_string (Cdigest.canonical "#90 [#90 -> #91]"))

(* Compiling the same source twice in one process must yield the same
   digest even though printed node ids come from a global counter. *)
let test_digest_position_independent () =
  let src = "int dbl(int n) { return n + n; }" in
  let digest () =
    match Pipelines.compile Pipelines.Dcir ~src ~entry:"dbl" with
    | Pipelines.CSdfg sdfg -> Pipelines.digest_of_sdfg sdfg
    | Pipelines.CMlir _ -> Alcotest.fail "expected an SDFG"
  in
  let d1 = digest () in
  (* Burn some node ids with an unrelated compilation in between. *)
  ignore
    (Pipelines.compile Pipelines.Dcir
       ~src:"double tri(double x) { return x * 3.0; }" ~entry:"tri");
  Alcotest.(check string) "digest survives process history" d1 (digest ())

(* ------------------------------------------------------------------ *)
(* The artifact store *)

let test_store_lru_determinism () =
  let trajectory () =
    let s = Cstore.create ~shards:1 ~capacity:2 () in
    let evicted = ref [] in
    let add k v = evicted := !evicted @ List.map fst (Cstore.add s k v) in
    add "k1" 1;
    add "k2" 2;
    ignore (Cstore.find s "k1") (* k1 now most recent *);
    add "k3" 3 (* must evict k2, the LRU *);
    (!evicted, Cstore.keys s)
  in
  let evicted, keys = trajectory () in
  Alcotest.(check (list string)) "LRU victim" [ "k2" ] evicted;
  Alcotest.(check (list string)) "survivors" [ "k1"; "k3" ] keys;
  (* Same operation sequence, same trajectory — determinism is the
     contract, not an accident. *)
  Alcotest.(check bool) "replay identical" true (trajectory () = (evicted, keys))

let test_store_capacity_edges () =
  (* Capacity 1: every insertion evicts the previous occupant. *)
  let s1 = Cstore.create ~capacity:1 () in
  Alcotest.(check (list string)) "first insert evicts nothing" []
    (List.map fst (Cstore.add s1 "a" 1));
  Alcotest.(check (list string)) "second evicts first" [ "a" ]
    (List.map fst (Cstore.add s1 "b" 2));
  Alcotest.(check bool) "only b lives" true
    (Cstore.find s1 "b" = Some 2 && Cstore.find s1 "a" = None);
  (* Capacity 0 disables the store: nothing stored, every find misses,
     no eviction ever reported. *)
  let s0 = Cstore.create ~capacity:0 () in
  Alcotest.(check (list string)) "zero-capacity add evicts nothing" []
    (List.map fst (Cstore.add s0 "a" 1));
  Alcotest.(check bool) "zero-capacity find misses" true
    (Cstore.find s0 "a" = None);
  Alcotest.(check int) "zero-capacity stays empty" 0 (Cstore.length s0)

(* The differential that justifies caching at all: a plan served from
   the store is bit-identical to a fresh compile — outputs AND metrics —
   and the hit is visible in the telemetry. *)
let test_cached_vs_fresh_identical () =
  Pipelines.reset_plan_cache ();
  let src =
    "double scale(double a[32], double s) { for (int i = 0; i < 32; i++) { \
     a[i] = a[i] * s; } return a[0]; }"
  in
  let args () =
    [
      Pipelines.AFloatArr (Array.init 32 (fun i -> float_of_int i *. 0.5), [| 32 |]);
      Pipelines.AFloat 3.0;
    ]
  in
  let stat k =
    match List.assoc_opt k (Pipelines.plan_cache_stats ()) with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.fail ("plan_cache_stats missing " ^ k)
  in
  let go () =
    let compiled = Pipelines.compile Pipelines.Dcir ~src ~entry:"scale" in
    Pipelines.run compiled ~entry:"scale" (args ())
  in
  let fresh = go () in
  let hits_before = stat "hits" in
  let cached = go () in
  Alcotest.(check int) "second run hits the store" (hits_before + 1)
    (stat "hits");
  (* Bit-identical, not merely close: same plan, same arithmetic. *)
  Alcotest.(check bool) "return values identical" true
    (fresh.Pipelines.return_value = cached.Pipelines.return_value);
  Alcotest.(check bool) "outputs identical" true
    (fresh.Pipelines.outputs = cached.Pipelines.outputs);
  let m1 = fresh.Pipelines.metrics and m2 = cached.Pipelines.metrics in
  Alcotest.(check (float 0.0)) "cycles identical"
    m1.Dcir_machine.Metrics.cycles m2.Dcir_machine.Metrics.cycles;
  Alcotest.(check int) "loads identical" m1.Dcir_machine.Metrics.loads
    m2.Dcir_machine.Metrics.loads;
  Alcotest.(check int) "stores identical" m1.Dcir_machine.Metrics.stores
    m2.Dcir_machine.Metrics.stores

(* ------------------------------------------------------------------ *)
(* Admission queue *)

let test_admission_shed () =
  let q = Admission.create ~capacity:2 in
  Alcotest.(check bool) "admit 1" true
    (Admission.admit q ~priority:1 "a" = Admission.Admitted);
  Alcotest.(check bool) "admit 2" true
    (Admission.admit q ~priority:2 "b" = Admission.Admitted);
  (* Full queue, lower-priority incoming: shed on the spot. *)
  Alcotest.(check bool) "incoming victim" true
    (Admission.admit q ~priority:0 "c" = Admission.Shed_incoming);
  (* Full queue, higher-priority incoming: oldest lowest-priority queued
     entry is the victim. *)
  (match Admission.admit q ~priority:3 "d" with
  | Admission.Shed e -> Alcotest.(check string) "queued victim" "a" e.Admission.qe_item
  | _ -> Alcotest.fail "expected a queued shed");
  Alcotest.(check int) "still at capacity" 2 (Admission.length q)

let test_admission_backoff () =
  let q = Admission.create ~capacity:8 in
  List.iter
    (fun (p, x) -> ignore (Admission.admit q ~priority:p x))
    [ (0, "A1"); (0, "B1"); (0, "A2"); (0, "B2"); (0, "A3") ];
  let retry = { Admission.qe_order = 99; qe_priority = 0; qe_item = "Ax" } in
  let same x = x.[0] = 'A' in
  (* Attempt 1: behind 2^1 = 2 same-group entries — between A2 and A3,
     regardless of the interleaved B traffic. *)
  Alcotest.(check int) "depth counts own group only" 2
    (Admission.reinsert q retry ~attempt:1 ~same);
  let order = List.map (fun e -> e.Admission.qe_item) q.Admission.entries in
  Alcotest.(check (list string)) "insertion point"
    [ "A1"; "B1"; "A2"; "Ax"; "B2"; "A3" ]
    order;
  (* A huge attempt number lands at the very back, not in a 2^k loop. *)
  let q2 = Admission.create ~capacity:8 in
  ignore (Admission.admit q2 ~priority:0 "A1");
  Alcotest.(check int) "overshoot goes to the back" 1
    (Admission.reinsert q2 retry ~attempt:30 ~same)

(* ------------------------------------------------------------------ *)
(* The engine *)

let inline ~id ~tenant ?(op = Request.Run) ?deadline (src, entry) : Request.t =
  {
    Request.rq_id = id;
    rq_tenant = tenant;
    rq_op = op;
    rq_source = Request.Inline { src; entry = Some entry };
    rq_kind = Pipelines.Dcir;
    rq_tier = Pipelines.O2;
    rq_priority = 0;
    rq_deadline = deadline;
    rq_retries = None;
    rq_size = 8.0;
  }

let tiny = ("int ident(int n) { return n; }", "ident")

let heavy =
  ( "double sweep(double a[64][64]) { double s = 0.0; for (int i = 0; i < 64; \
     i++) { for (int j = 0; j < 64; j++) { a[i][j] = a[i][j] * 1.5 + s; s = s \
     + a[i][j]; } } return s; }",
    "sweep" )

let response_of (report : Engine.report) (id : string) : Sjournal.response =
  match
    List.find_opt
      (fun (r : Sjournal.response) -> r.Sjournal.rs_id = id)
      report.Engine.rp_responses
  with
  | Some r -> r
  | None -> Alcotest.fail ("no response for " ^ id)

(* Tenant A exhausts its quota and trips its breaker; tenant B's
   responses must be byte-identical to a B-only run — the noisy
   neighbor is invisible. *)
let test_tenant_isolation () =
  let requests =
    [
      inline ~id:"a1" ~tenant:"A" heavy;
      inline ~id:"b1" ~tenant:"B" tiny;
      inline ~id:"a2" ~tenant:"A" heavy;
      inline ~id:"b2" ~tenant:"B" tiny;
      inline ~id:"a3" ~tenant:"A" heavy;
    ]
  in
  let config =
    {
      Engine.default_config with
      (* Fuel covers B's trivial program but not A's loop nest: A's
         first attempt exhausts the quota and the failure trips the
         breaker (trip_after defaults to 1). *)
      Engine.cfg_limits =
        { Budget.max_steps = 2_000; max_fuel = 1_000_000; max_allocs = 100_000 };
      (* No retries: a1's budget failure is terminal, so the breaker
         trip and the later quota rejections are all visible. *)
      cfg_retries = 0;
    }
  in
  let multi = Engine.run ~config (List.map (fun r -> Ok r) requests) in
  (* A saw structured trouble: a budget failure, then rejections. *)
  let a1 = response_of multi "a1" in
  Alcotest.(check string) "a1 failed" "failed"
    (Sjournal.status_name a1.Sjournal.rs_status);
  Alcotest.(check bool) "a1 diagnosed with a budget code" true
    (String.length a1.Sjournal.rs_code >= 8
    && String.sub a1.Sjournal.rs_code 0 8 = "E-BUDGET");
  List.iter
    (fun id ->
      let r = response_of multi id in
      Alcotest.(check string) (id ^ " rejected") "rejected"
        (Sjournal.status_name r.Sjournal.rs_status);
      Alcotest.(check bool) (id ^ " reason is attributable") true
        (List.mem r.Sjournal.rs_code [ "breaker-open"; "quota-exhausted" ]))
    [ "a2"; "a3" ];
  (* B is untouched... *)
  List.iter
    (fun id ->
      Alcotest.(check string) (id ^ " ok") "ok"
        (Sjournal.status_name (response_of multi id).Sjournal.rs_status))
    [ "b1"; "b2" ];
  (* ...and byte-identical to a world where A never existed. *)
  let solo =
    Engine.run ~config
      (List.filter_map
         (fun (r : Request.t) ->
           if r.Request.rq_tenant = "B" then Some (Ok r) else None)
         requests)
  in
  Alcotest.(check (list string)) "B's responses identical"
    (Sjournal.responses_for_tenant solo.Engine.rp_responses "B")
    (Sjournal.responses_for_tenant multi.Engine.rp_responses "B")

(* Deadlines are budget steps, not wall time: a tenant whose spend has
   passed a request's deadline gets a structured kill, deterministic on
   every replay. *)
let test_deadline () =
  let requests =
    [
      inline ~id:"warm" ~tenant:"T" heavy;
      inline ~id:"late" ~tenant:"T" ~deadline:1 tiny;
    ]
  in
  let report = Engine.run (List.map (fun r -> Ok r) requests) in
  let late = response_of report "late" in
  Alcotest.(check string) "deadline kill is a failure" "failed"
    (Sjournal.status_name late.Sjournal.rs_status);
  Alcotest.(check string) "with its own code" "deadline-expired"
    late.Sjournal.rs_code;
  Alcotest.(check int) "no attempt was burned" 0 late.Sjournal.rs_attempts

(* Same requests, same config: the rendered journal must be
   byte-identical — cache state, counters and all. *)
let test_journal_double_run () =
  let requests =
    List.map
      (fun r -> Ok r)
      [
        inline ~id:"r1" ~tenant:"x" tiny;
        inline ~id:"r2" ~tenant:"y" heavy;
        inline ~id:"r3" ~tenant:"x" ~op:Request.Compile tiny;
      ]
  in
  let render () = Json.to_string (Engine.to_json (Engine.run requests)) in
  Alcotest.(check string) "byte-identical journals" (render ()) (render ())

(* Malformed batch entries are salvaged as structured rejections, never
   dropped, never fatal to their neighbors. *)
let test_request_salvage () =
  let text =
    {|{"schema":"dcir-serve-requests/1","requests":[
       {"id":"good","tenant":"t","op":"run",
        "source":{"inline":"int one(int n) { return 1; }","entry":"one"}},
       {"id":"bad","tenant":"t","op":"frobnicate",
        "source":{"inline":"int f(int n) { return n; }"}},
       {"id":"nosrc","tenant":"t","op":"run"}
     ]}|}
  in
  match Request.parse text with
  | Error e -> Alcotest.fail e
  | Ok items ->
      let ok, rejected = List.partition Result.is_ok items in
      Alcotest.(check int) "one good" 1 (List.length ok);
      Alcotest.(check int) "two salvaged" 2 (List.length rejected);
      List.iter
        (function
          | Error (r : Request.rejected) ->
              Alcotest.(check bool) "reason present" true
                (String.length r.Request.rej_reason > 0);
              Alcotest.(check bool) "identity salvaged" true
                (List.mem r.Request.rej_id [ "bad"; "nosrc" ])
          | Ok _ -> ())
        rejected

(* ------------------------------------------------------------------ *)
(* The worker pool *)

let replay_string (r : Engine.report) : string =
  Json.to_string (Engine.replay_json r)

let entries_with (report : Engine.report) (code : string) :
    (string * Json.t) list list =
  match Json.member "entries" (Engine.to_json report) with
  | Some (Json.List rows) ->
      List.filter_map
        (function
          | Json.Obj fields
            when List.assoc_opt "code" fields = Some (Json.Str code) ->
              Some fields
          | _ -> None)
        rows
  | _ -> Alcotest.fail "journal missing entries"

(* Adversarial completion order: a slow compile admitted first, quick
   ones behind it. Workers finish the quick ones while the slow one is
   still running; the supervisor must still commit — and therefore
   journal and respond — in admission order, byte-identically to the
   sequential engine. *)
let test_pool_commit_order () =
  let requests =
    List.map
      (fun r -> Ok r)
      [
        inline ~id:"a1" ~tenant:"A" heavy;
        inline ~id:"b1" ~tenant:"B" tiny;
        inline ~id:"c1" ~tenant:"C" tiny;
        inline ~id:"b2" ~tenant:"B" tiny;
        inline ~id:"a2" ~tenant:"A" heavy;
        inline ~id:"c2" ~tenant:"C" ~op:Request.Compile tiny;
      ]
  in
  let run workers =
    Engine.run
      ~config:{ Engine.default_config with Engine.cfg_workers = workers }
      requests
  in
  let w1 = run 1 and w4 = run 4 in
  Alcotest.(check string) "journal bytes agree (worker count aside)"
    (replay_string w1) (replay_string w4);
  Alcotest.(check (list string)) "responses in admission order"
    [ "a1"; "b1"; "c1"; "b2"; "a2"; "c2" ]
    (List.map
       (fun (r : Sjournal.response) -> r.Sjournal.rs_id)
       w4.Engine.rp_responses);
  Alcotest.(check bool) "pooled run recorded placements" true
    (w4.Engine.rp_placements <> []);
  Alcotest.(check bool) "sequential run has none" true
    (w1.Engine.rp_placements = [])

(* A chaos kill on attempt 1 is caught on the worker, journaled with
   the request it hit, and the retry lands on a different domain —
   crash isolation plus attribution. *)
let test_worker_crash_retry () =
  let requests = [ Ok (inline ~id:"victim" ~tenant:"T" tiny) ] in
  let chaos ~id ~attempt =
    if id = "victim" && attempt = 1 then
      Some (Chaos.arm_worker ~kill_at:1 (Chaos.no_faults ~seed:1))
    else None
  in
  let config =
    {
      Engine.default_config with
      Engine.cfg_workers = 4;
      cfg_chaos = Some chaos;
    }
  in
  let report = Engine.run ~config requests in
  let r = response_of report "victim" in
  Alcotest.(check string) "eventually ok" "ok"
    (Sjournal.status_name r.Sjournal.rs_status);
  Alcotest.(check int) "second attempt won" 2 r.Sjournal.rs_attempts;
  (match entries_with report "SRV-WORKER-KILL" with
  | [ fields ] ->
      Alcotest.(check bool) "kill names its request and tenant" true
        (List.assoc_opt "id" fields = Some (Json.Str "victim")
        && List.assoc_opt "tenant" fields = Some (Json.Str "T"))
  | kills ->
      Alcotest.fail
        (Printf.sprintf "expected one SRV-WORKER-KILL, found %d"
           (List.length kills)));
  (match
     List.filter (fun (id, _, _) -> id = "victim") report.Engine.rp_placements
   with
  | [ (_, 1, d1); (_, 2, d2) ] ->
      Alcotest.(check bool) "retry moved to another domain" true (d1 <> d2)
  | ps ->
      Alcotest.fail
        (Printf.sprintf "expected two placements for victim, found %d"
           (List.length ps)));
  (* The same batch under the sequential engine renders the same
     journal: the kill derives from (id, attempt), never from where or
     when the attempt ran. *)
  let sequential =
    Engine.run ~config:{ config with Engine.cfg_workers = 1 } requests
  in
  Alcotest.(check string) "kill is scheduling-independent"
    (replay_string sequential) (replay_string report)

(* Identical compile requests coalesce: the first worker's artifact is
   fanned to the rest, each charged as if it had compiled it itself.
   The journal still shows the sequential engine's one PLAN-MISS and k
   PLAN-HITs, and every response carries the same artifact digest. *)
let test_pool_coalescing () =
  let requests =
    List.map
      (fun r -> Ok r)
      (List.init 4 (fun i ->
           inline
             ~id:(Printf.sprintf "c%d" i)
             ~tenant:"T" ~op:Request.Compile tiny))
  in
  let run workers =
    Pipelines.reset_plan_cache ();
    Engine.run
      ~config:{ Engine.default_config with Engine.cfg_workers = workers }
      requests
  in
  let w1 = run 1 in
  let w4 = run 4 in
  Alcotest.(check string) "journal bytes agree" (replay_string w1)
    (replay_string w4);
  Alcotest.(check int) "three of four compiles coalesced" 3
    w4.Engine.rp_coalesced;
  let pc key (report : Engine.report) =
    match
      Option.bind
        (Json.member "summary" (Engine.to_json report))
        (fun s ->
          Option.bind (Json.member "plan_cache" s) (Json.member key))
    with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.fail ("journal summary missing plan_cache." ^ key)
  in
  Alcotest.(check int) "one miss" 1 (pc "misses" w4);
  Alcotest.(check int) "k hits" 3 (pc "hits" w4);
  (match w4.Engine.rp_responses with
  | first :: rest ->
      Alcotest.(check bool) "digest present" true
        (first.Sjournal.rs_digest <> None);
      List.iter
        (fun (r : Sjournal.response) ->
          Alcotest.(check bool) "identical artifact digests" true
            (r.Sjournal.rs_digest = first.Sjournal.rs_digest))
        rest
  | [] -> Alcotest.fail "no responses")

(* The noisy-neighbor differential again, this time with four worker
   domains churning: tenant B's responses must still be byte-identical
   to a solo run. *)
let test_pool_tenant_isolation () =
  let requests =
    [
      inline ~id:"a1" ~tenant:"A" heavy;
      inline ~id:"b1" ~tenant:"B" tiny;
      inline ~id:"a2" ~tenant:"A" heavy;
      inline ~id:"b2" ~tenant:"B" tiny;
      inline ~id:"a3" ~tenant:"A" heavy;
    ]
  in
  let config =
    {
      Engine.default_config with
      Engine.cfg_workers = 4;
      cfg_limits =
        { Budget.max_steps = 2_000; max_fuel = 1_000_000; max_allocs = 100_000 };
      cfg_retries = 0;
    }
  in
  let multi = Engine.run ~config (List.map (fun r -> Ok r) requests) in
  let solo =
    Engine.run ~config
      (List.filter_map
         (fun (r : Request.t) ->
           if r.Request.rq_tenant = "B" then Some (Ok r) else None)
         requests)
  in
  Alcotest.(check (list string)) "B's responses identical under the pool"
    (Sjournal.responses_for_tenant solo.Engine.rp_responses "B")
    (Sjournal.responses_for_tenant multi.Engine.rp_responses "B")

(* The budget-step watchdog bounds a single attempt deterministically:
   no wall clock, so the same limit journals the same entry at any
   worker count. *)
let test_watchdog () =
  let requests = [ Ok (inline ~id:"w" ~tenant:"T" heavy) ] in
  let config =
    {
      Engine.default_config with
      Engine.cfg_watchdog = Some 100;
      cfg_retries = 0;
    }
  in
  let report = Engine.run ~config requests in
  let r = response_of report "w" in
  Alcotest.(check string) "watchdog stops the attempt" "failed"
    (Sjournal.status_name r.Sjournal.rs_status);
  (match entries_with report "SRV-WORKER-WATCHDOG" with
  | [ fields ] ->
      Alcotest.(check bool) "entry names request, tenant and limit" true
        (List.assoc_opt "id" fields = Some (Json.Str "w")
        && List.assoc_opt "tenant" fields = Some (Json.Str "T")
        && List.assoc_opt "limit" fields = Some (Json.Int 100))
  | wd ->
      Alcotest.fail
        (Printf.sprintf "expected one SRV-WORKER-WATCHDOG, found %d"
           (List.length wd)));
  let pooled =
    Engine.run ~config:{ config with Engine.cfg_workers = 4 } requests
  in
  Alcotest.(check string) "watchdog is worker-count-independent"
    (replay_string report) (replay_string pooled)

let suite =
  ( "serve",
    [
      Alcotest.test_case "digest stability" `Quick test_digest_stability;
      Alcotest.test_case "digest canonicalization" `Quick test_digest_canonical;
      Alcotest.test_case "digest position independence" `Quick
        test_digest_position_independent;
      Alcotest.test_case "store LRU determinism" `Quick
        test_store_lru_determinism;
      Alcotest.test_case "store capacity edges" `Quick
        test_store_capacity_edges;
      Alcotest.test_case "cached vs fresh bit-identical" `Quick
        test_cached_vs_fresh_identical;
      Alcotest.test_case "admission shedding" `Quick test_admission_shed;
      Alcotest.test_case "retry backoff depth" `Quick test_admission_backoff;
      Alcotest.test_case "tenant isolation" `Quick test_tenant_isolation;
      Alcotest.test_case "budget-step deadlines" `Quick test_deadline;
      Alcotest.test_case "journal double-run identity" `Quick
        test_journal_double_run;
      Alcotest.test_case "malformed request salvage" `Quick
        test_request_salvage;
      Alcotest.test_case "pool commit-order determinism" `Quick
        test_pool_commit_order;
      Alcotest.test_case "worker crash retries elsewhere" `Quick
        test_worker_crash_retry;
      Alcotest.test_case "same-digest coalescing" `Quick test_pool_coalescing;
      Alcotest.test_case "tenant isolation under the pool" `Quick
        test_pool_tenant_isolation;
      Alcotest.test_case "budget-step watchdog" `Quick test_watchdog;
    ] )
