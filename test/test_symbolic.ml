(** Tests for the symbolic engine: canonicalization laws, parser round
    trips, comparison deciding, ranges, and the equation solver. Property
    tests check simplification against concrete evaluation on random
    expressions. *)

open Dcir_symbolic

let expr = Alcotest.testable Expr.pp Expr.equal

let e s = Parse.expr s

(* ------------------------------------------------------------------ *)
(* Expr unit tests *)

let test_simplify_basic () =
  Alcotest.check expr "N+N = 2N" (e "2*N") (e "N + N");
  Alcotest.check expr "const fold" (Expr.int 7) (e "3 + 4");
  Alcotest.check expr "x*0" Expr.zero (Expr.mul (Expr.sym "x") Expr.zero);
  Alcotest.check expr "x*1" (Expr.sym "x") (Expr.mul (Expr.sym "x") Expr.one);
  Alcotest.check expr "distribute" (e "N*N - 1") (e "(N+1)*(N-1)");
  Alcotest.check expr "cancel" Expr.zero (Expr.sub (e "2*N + 3") (e "N + N + 3"))

let test_simplify_div_mod () =
  Alcotest.check expr "x/1" (Expr.sym "x") (Expr.div (Expr.sym "x") Expr.one);
  Alcotest.check expr "x/x" Expr.one (Expr.div (Expr.sym "x") (Expr.sym "x"));
  Alcotest.check expr "(4N)/2" (e "2*N") (Expr.div (e "4*N") (Expr.int 2));
  Alcotest.check expr "x mod x" Expr.zero
    (Expr.modulo (Expr.sym "x") (Expr.sym "x"));
  Alcotest.check expr "(6N) mod 3" Expr.zero (Expr.modulo (e "6*N") (Expr.int 3));
  Alcotest.(check int) "floor div" (-2) (Expr.eval (fun _ -> None) (Expr.div (Expr.int (-3)) (Expr.int 2)))

let test_min_max () =
  Alcotest.check expr "min consts" (Expr.int 2) (Expr.min_ (Expr.int 5) (Expr.int 2));
  Alcotest.check expr "max consts" (Expr.int 5) (Expr.max_ (Expr.int 5) (Expr.int 2));
  Alcotest.check expr "min self" (Expr.sym "a") (Expr.min_ (Expr.sym "a") (Expr.sym "a"))

let test_subst () =
  let r = Expr.subst_one "N" (e "M + 1") (e "2*N + N*N") in
  Alcotest.check expr "subst" (e "M*M + 4*M + 3") r

let test_free_syms () =
  Alcotest.(check (list string))
    "free syms" [ "M"; "N" ]
    (Expr.free_syms (e "N*M + N - 3"))

let test_eval_unbound () =
  Alcotest.check_raises "unbound" (Expr.Unbound_symbol "Q") (fun () ->
      ignore (Expr.eval (fun _ -> None) (Expr.sym "Q")))

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_precedence () =
  Alcotest.check expr "mul before add" (e "a + b*c")
    (Expr.add (Expr.sym "a") (Expr.mul (Expr.sym "b") (Expr.sym "c")));
  Alcotest.check expr "parens" (Expr.mul (e "a + b") (Expr.sym "c")) (e "(a+b)*c");
  Alcotest.check expr "unary minus" (Expr.sub (Expr.int 0) (e "2*a")) (e "-2*a");
  Alcotest.check expr "min fn" (Expr.min_ (Expr.sym "a") (e "b+1")) (e "min(a, b+1)")

let test_parse_errors () =
  Alcotest.(check bool) "garbage" true (Parse.expr_opt "a +* b" = None);
  Alcotest.(check bool) "trailing" true (Parse.expr_opt "a b" = None);
  Alcotest.(check bool) "ok" true (Parse.expr_opt "a*b - 3" <> None)

let test_parse_bexpr () =
  let b = Parse.bexpr "i < N and j >= 0" in
  match b with
  | Bexpr.And (Bexpr.Cmp (Bexpr.Lt, _, _), Bexpr.Cmp (Bexpr.Ge, _, _)) -> ()
  | _ -> Alcotest.fail "unexpected parse"

(* ------------------------------------------------------------------ *)
(* Bexpr deciding *)

let test_decide () =
  Alcotest.(check (option bool)) "const true" (Some true)
    (Bexpr.decide (Parse.bexpr "3 < 4"));
  Alcotest.(check (option bool)) "const false" (Some false)
    (Bexpr.decide (Parse.bexpr "4 <= 3"));
  Alcotest.(check (option bool)) "i+1 > i" (Some true)
    (Bexpr.decide (Bexpr.gt (e "i+1") (e "i")));
  (* No sign assumption on symbols: j >= 0 must stay dynamic. *)
  Alcotest.(check (option bool)) "sym undecided" None
    (Bexpr.decide (Bexpr.ge (Expr.sym "j") Expr.zero));
  Alcotest.(check (option bool)) "and short-circuit" (Some false)
    (Bexpr.decide (Bexpr.And (Bexpr.Bool false, Bexpr.ge (Expr.sym "j") Expr.zero)))

let test_simplify_not () =
  match Bexpr.simplify (Bexpr.Not (Bexpr.lt (Expr.sym "i") (Expr.sym "N"))) with
  | Bexpr.Cmp (Bexpr.Ge, _, _) -> ()
  | b -> Alcotest.failf "expected >=, got %s" (Bexpr.to_string b)

(* ------------------------------------------------------------------ *)
(* Ranges *)

let test_range_volume () =
  let r = [ Range.full (Expr.sym "N"); Range.index (e "i") ] in
  Alcotest.check expr "volume" (Expr.sym "N") (Range.volume r)

let test_range_union () =
  let a = [ Range.index (e "i") ] and b = [ Range.index (e "i+1") ] in
  let u = Range.union a b in
  Alcotest.check expr "lo" (Expr.min_ (e "i") (e "i+1")) (List.hd u).lo;
  Alcotest.check expr "hi" (Expr.max_ (e "i") (e "i+1")) (List.hd u).hi

let test_range_covers_disjoint () =
  let full = [ Range.dim (Expr.int 0) (Expr.int 9) ] in
  let inner = [ Range.dim (Expr.int 2) (Expr.int 5) ] in
  Alcotest.(check bool) "covers" true (Range.covers full inner);
  Alcotest.(check bool) "not covers" false (Range.covers inner full);
  let a = [ Range.dim (Expr.int 0) (Expr.int 3) ] in
  let b = [ Range.dim (Expr.int 5) (Expr.int 9) ] in
  Alcotest.(check bool) "disjoint" true (Range.disjoint a b);
  Alcotest.(check bool) "overlap" false (Range.disjoint full inner)

(* ------------------------------------------------------------------ *)
(* Solver *)

let test_solve_simple () =
  let sol = Solve.solve ~unknowns:[ "s_0" ] [ (e "s_0", e "N + 1") ] in
  Alcotest.check expr "s_0" (e "N+1") (List.assoc "s_0" sol)

let test_solve_linear () =
  let sol = Solve.solve ~unknowns:[ "x" ] [ (e "2*x + 4", e "10") ] in
  Alcotest.check expr "x=3" (Expr.int 3) (List.assoc "x" sol)

let test_solve_chain () =
  let sol =
    Solve.solve ~unknowns:[ "a"; "b" ] [ (e "a", e "b + 1"); (e "b", e "N") ]
  in
  Alcotest.check expr "b" (Expr.sym "N") (List.assoc "b" sol);
  Alcotest.check expr "a" (e "N+1") (List.assoc "a" sol)

let test_solve_nonlinear_skipped () =
  let sol = Solve.solve ~unknowns:[ "x" ] [ (e "x*x", e "9") ] in
  Alcotest.(check bool) "no solution" true (List.assoc_opt "x" sol = None)

let test_solve_negative_coeff () =
  (* Descending relations: the coefficient of the unknown is negative. *)
  let sol = Solve.solve ~unknowns:[ "x" ] [ (e "10 - 2*x", e "4") ] in
  Alcotest.check expr "x=3" (Expr.int 3) (List.assoc "x" sol);
  let sol = Solve.solve ~unknowns:[ "x" ] [ (e "N - x", e "N - 5") ] in
  Alcotest.check expr "x=5" (Expr.int 5) (List.assoc "x" sol);
  (* Inexact division must not invent a floor-rounded "solution". *)
  let sol = Solve.solve ~unknowns:[ "x" ] [ (e "2*x", e "7") ] in
  Alcotest.(check bool) "2x=7 unsolved" true (List.assoc_opt "x" sol = None)

let test_linear_in () =
  (match Solve.linear_in "i" (e "N - 3*i + 1") with
  | Some (c, _) -> Alcotest.(check int) "coeff" (-3) c
  | None -> Alcotest.fail "expected linear decomposition");
  Alcotest.(check bool) "i*j is not linear in i" true
    (Solve.linear_in "i" (e "i*j") = None);
  Alcotest.(check bool) "i-i has zero coefficient" true
    (Solve.linear_in "i" (e "i - i + N") = None)

(* ------------------------------------------------------------------ *)
(* Per-iteration independence — the queries behind the loop→map
   dependence tester (lib/autopar). *)

let test_dim_apart () =
  let d lo hi = Range.dim (e lo) (e hi) in
  (* Symbolic bounds, apart for every value of i. *)
  Alcotest.(check bool) "strictly below" true
    (Range.dim_apart (d "i" "i+1") (d "i+2" "i+3"));
  (* Off-by-one: sharing the single endpoint i+1 is an overlap. *)
  Alcotest.(check bool) "touching endpoints" false
    (Range.dim_apart (d "i" "i+1") (d "i+1" "i+2"));
  Alcotest.(check bool) "adjacent singletons" true
    (Range.dim_apart (d "i" "i") (d "i+1" "i+1"));
  (* Unknown separation must stay "may overlap". *)
  Alcotest.(check bool) "symbolic gap undecided" false
    (Range.dim_apart (d "0" "N") (d "M" "M"))

let test_iter_disjoint_indices () =
  let idx s = [ Range.index (e s) ] in
  let disj a b = Range.iter_disjoint ~sym:"i" (idx a) (idx b) in
  (* Injective single indices: distinct iterations hit distinct cells. *)
  Alcotest.(check bool) "A[i]" true (disj "i" "i");
  Alcotest.(check bool) "A[2*i+1]" true (disj "2*i+1" "2*i+1");
  (* Negative stride: descending accesses are injective too. *)
  Alcotest.(check bool) "A[N-i]" true (disj "N-i" "N-i");
  Alcotest.(check bool) "A[N-2*i]" true (disj "N-2*i" "N-2*i");
  (* Index independent of i: every iteration hits the same cell. *)
  Alcotest.(check bool) "A[j]" false (disj "j" "j");
  (* Non-linear in i: not provably injective. *)
  Alcotest.(check bool) "A[i*i]" false (disj "i*i" "i*i")

let test_iter_disjoint_blocks () =
  let blk lo hi = [ Range.dim (e lo) (e hi) ] in
  let disj a b = Range.iter_disjoint ~sym:"i" a b in
  (* Two-wide tiles with stride two: consecutive iterations just clear
     each other. *)
  Alcotest.(check bool) "tiles [2i:2i+1]" true
    (disj (blk "2*i" "2*i+1") (blk "2*i" "2*i+1"));
  (* Off-by-one endpoint: [2i:2i+2] tiles share cell 2i+2 with the next
     iteration. *)
  Alcotest.(check bool) "tiles [2i:2i+2] overlap" false
    (disj (blk "2*i" "2*i+2") (blk "2*i" "2*i+2"));
  (* Negative stride tiles, same width: still provably disjoint. *)
  Alcotest.(check bool) "tiles [N-2i-1:N-2i]" true
    (disj (blk "N-2*i-1" "N-2*i") (blk "N-2*i-1" "N-2*i"));
  (* Mismatched coefficients between the two ranges: undecided. *)
  Alcotest.(check bool) "coefficient mismatch" false
    (disj (blk "i" "i") (blk "2*i" "2*i"))

let test_range_widen () =
  let w s = Range.widen ~sym:"i" ~lo:Expr.zero ~hi:(e "N-1") s in
  (* Ascending bound: substitute the loop extremes directly. *)
  (match w [ Range.index (e "i") ] with
  | [ d ] ->
      Alcotest.check expr "lo" Expr.zero d.lo;
      Alcotest.check expr "hi" (e "N-1") d.hi
  | _ -> Alcotest.fail "rank");
  (* Descending bound (negative coefficient): extremes swap. *)
  (match w [ Range.index (e "N-i") ] with
  | [ d ] ->
      Alcotest.check expr "lo" (e "1") d.lo;
      Alcotest.check expr "hi" (e "N") d.hi
  | _ -> Alcotest.fail "rank");
  (* Non-linear bound: min/max of both substitutions. *)
  (match Range.widen ~sym:"i" ~lo:Expr.zero ~hi:(Expr.int 3)
           [ Range.index (e "i*i") ]
   with
  | [ d ] ->
      Alcotest.check expr "lo" Expr.zero d.lo;
      Alcotest.check expr "hi" (Expr.int 9) d.hi
  | _ -> Alcotest.fail "rank");
  (* Dimension not mentioning the symbol is untouched. *)
  match w [ Range.dim (e "j") (e "j+1") ] with
  | [ d ] ->
      Alcotest.check expr "lo" (e "j") d.lo;
      Alcotest.check expr "hi" (e "j+1") d.hi
  | _ -> Alcotest.fail "rank"

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_expr : Expr.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ map Expr.int (int_range (-20) 20);
                map Expr.sym (oneofl [ "a"; "b"; "c" ]) ]
          else
            let sub = self (n / 2) in
            oneof
              [
                map2 Expr.add sub sub;
                map2 Expr.sub sub sub;
                map2 Expr.mul sub sub;
                map2 Expr.min_ sub sub;
                map2 Expr.max_ sub sub;
                map Expr.int (int_range (-20) 20);
                map Expr.sym (oneofl [ "a"; "b"; "c" ]);
              ])
        (min n 6))

let env_of (a, b, c) s =
  match s with "a" -> Some a | "b" -> Some b | "c" -> Some c | _ -> None

let prop_simplify_preserves_eval =
  QCheck2.Test.make ~count:500 ~name:"simplify preserves evaluation"
    QCheck2.Gen.(tup2 gen_expr (tup3 (int_range (-50) 50) (int_range (-50) 50) (int_range (-50) 50)))
    (fun (ex, env) ->
      Expr.eval (env_of env) ex = Expr.eval (env_of env) (Expr.simplify ex))

let prop_parse_print_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"print/parse round trip"
    gen_expr
    (fun ex ->
      let s = Expr.to_string (Expr.simplify ex) in
      match Parse.expr_opt s with
      | Some back -> Expr.equal back ex
      | None -> false)

let prop_decide_sound =
  QCheck2.Test.make ~count:300 ~name:"decide_cmp is sound"
    QCheck2.Gen.(tup3 gen_expr gen_expr (tup3 (int_range (-9) 9) (int_range (-9) 9) (int_range (-9) 9)))
    (fun (x, y, env) ->
      match Bexpr.decide (Bexpr.lt x y) with
      | Some v -> v = (Expr.eval (env_of env) x < Expr.eval (env_of env) y)
      | None -> true)

let suite =
  ( "symbolic",
    [
      Alcotest.test_case "simplify basics" `Quick test_simplify_basic;
      Alcotest.test_case "div and mod" `Quick test_simplify_div_mod;
      Alcotest.test_case "min/max" `Quick test_min_max;
      Alcotest.test_case "substitution" `Quick test_subst;
      Alcotest.test_case "free symbols" `Quick test_free_syms;
      Alcotest.test_case "eval unbound raises" `Quick test_eval_unbound;
      Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "parse bexpr" `Quick test_parse_bexpr;
      Alcotest.test_case "decide comparisons" `Quick test_decide;
      Alcotest.test_case "simplify not" `Quick test_simplify_not;
      Alcotest.test_case "range volume" `Quick test_range_volume;
      Alcotest.test_case "range union" `Quick test_range_union;
      Alcotest.test_case "range covers/disjoint" `Quick test_range_covers_disjoint;
      Alcotest.test_case "solve simple" `Quick test_solve_simple;
      Alcotest.test_case "solve linear" `Quick test_solve_linear;
      Alcotest.test_case "solve chain" `Quick test_solve_chain;
      Alcotest.test_case "solve nonlinear skipped" `Quick test_solve_nonlinear_skipped;
      Alcotest.test_case "solve negative coefficients" `Quick test_solve_negative_coeff;
      Alcotest.test_case "linear_in decomposition" `Quick test_linear_in;
      Alcotest.test_case "dim_apart" `Quick test_dim_apart;
      Alcotest.test_case "iter_disjoint indices" `Quick test_iter_disjoint_indices;
      Alcotest.test_case "iter_disjoint blocks" `Quick test_iter_disjoint_blocks;
      Alcotest.test_case "range widen" `Quick test_range_widen;
      QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
      QCheck_alcotest.to_alcotest prop_parse_print_roundtrip;
      QCheck_alcotest.to_alcotest prop_decide_sound;
    ] )
