(** Inspect every stage of the DCIR bridge on a tiny function (the Fig 5
    walk-through).

    Run with: [dune exec examples/inspect_pipeline.exe] *)

open Dcir_core
module Pass = Dcir_mlir.Pass

let src =
  {|
double fname(double A[16], double B[16]) {
  return A[0] + B[0];
}
|}

let () =
  Format.printf "== C source ==@.%s@." src;
  let m = Dcir_cfront.Polygeist.compile src in
  Format.printf "== Polygeist-generated MLIR (Fig 5b) ==@.%s@."
    (Dcir_mlir.Printer.module_to_string m);
  ignore (Pass.run_to_fixpoint (Pipelines.control_passes Dcir) m);
  Format.printf "== After control-centric passes ==@.%s@."
    (Dcir_mlir.Printer.module_to_string m);
  let converted = Converter.convert_module m in
  Format.printf "== sdfg dialect (Fig 5c) ==@.%s@."
    (Dcir_mlir.Printer.module_to_string converted);
  let sdfg = Translator.translate_module converted ~entry:"fname" in
  Format.printf "== Translated SDFG (Fig 5d) ==@.%s@."
    (Dcir_sdfg.Printer.to_string sdfg);
  ignore (Dcir_dace_passes.Driver.optimize sdfg);
  Format.printf "== Optimized SDFG ==@.%s@." (Dcir_sdfg.Printer.to_string sdfg);
  (* Execute it. *)
  let args =
    [
      Pipelines.AFloatArr (Array.init 16 float_of_int, [| 16 |]);
      Pipelines.AFloatArr (Array.init 16 (fun i -> 100.0 +. float_of_int i), [| 16 |]);
    ]
  in
  let r = Pipelines.run (CSdfg sdfg) ~entry:"fname" args in
  Format.printf "result: %s (expected 100)@."
    (match r.return_value with
    | Some v -> Dcir_machine.Value.to_string v
    | None -> "-")
