(** The Fig 2 motivating example, stage by stage.

    Run with: [dune exec examples/loop_elision.exe]

    Shows each compilation stage of the DCIR pipeline on the paper's opening
    example: the Polygeist-style MLIR, the control-centric-optimized MLIR,
    the converted sdfg dialect, the trivially-translated SDFG, and the fully
    optimized SDFG — which has no loops left at all. *)

open Dcir_core
module Pass = Dcir_mlir.Pass

let src = (List.hd Dcir_workloads.Case_studies.all).src (* fig2-example *)

let banner title = Format.printf "@.======== %s ========@." title

let () =
  banner "C source (Fig 2a, REPRO sizes)";
  print_string src;

  let m = Dcir_cfront.Polygeist.compile src in
  banner "Polygeist-style MLIR (truncated)";
  let txt = Dcir_mlir.Printer.module_to_string m in
  print_string (String.sub txt 0 (min 1600 (String.length txt)));
  Format.printf "@.... (%d chars total)@." (String.length txt);

  ignore (Pass.run_to_fixpoint (Pipelines.control_passes Dcir) m);
  banner "After control-centric passes (LICM, store forwarding, CSE, DCE)";
  Format.printf "(loops remain: the false dependency through A is invisible \
                 to a control-centric view)@.";

  let converted = Converter.convert_module m in
  banner "sdfg dialect (excerpt)";
  let txt = Dcir_mlir.Printer.module_to_string converted in
  print_string (String.sub txt 0 (min 1600 (String.length txt)));
  Format.printf "@.... (%d chars total)@." (String.length txt);

  let sdfg = Translator.translate_module converted ~entry:"example" in
  banner "Trivially translated SDFG";
  Format.printf "states: %d, containers: %d@."
    (List.length (Dcir_sdfg.Sdfg.states sdfg))
    (Hashtbl.length sdfg.containers);

  ignore (Dcir_dace_passes.Driver.optimize sdfg);
  banner "After the data-centric pipeline";
  print_string (Dcir_sdfg.Printer.to_string sdfg);

  banner "Execution";
  let r = Pipelines.run (CSdfg sdfg) ~entry:"example" [] in
  let baseline = Pipelines.run (Pipelines.compile Gcc ~src ~entry:"example") ~entry:"example" [] in
  Format.printf "dcir:  %8.0f cycles, result = %s@." r.metrics.cycles
    (match r.return_value with
    | Some v -> Dcir_machine.Value.to_string v
    | None -> "-");
  Format.printf "gcc:   %8.0f cycles, result = %s@." baseline.metrics.cycles
    (match baseline.return_value with
    | Some v -> Dcir_machine.Value.to_string v
    | None -> "-");
  Format.printf
    "@.All loops and both allocations were elided; the function reduced to \
     a single constant (paper §1).@."
