(** Loop-invariant code motion.

    Hoists out of [scf.for] bodies:
    - non-trapping pure ops whose operands are all defined outside the loop
      (executing these on a zero-trip path is unobservable);
    - trapping-but-pure ops ([arith.divsi]/[arith.remsi]) only when the loop
      has a {e proven nonzero trip count} — hoisting a division out of a
      loop that may run zero times introduces a div-by-zero trap the
      original program never executed;
    - [memref.load]s with invariant operands, when the loop body contains no
      store to the same memref and no call (conservative aliasing on memref
      SSA identity — sound here because the frontend never creates views),
      again only under a proven nonzero trip count (a hoisted load may be
      out of bounds on the zero-trip path).

    This is the pass that (together with tasklet raising) fixes the syrk
    weakness of the DaCe C frontend: hoisting [alpha * A[i][k]] out of the
    innermost loop (Fig 7). *)

open Dcir_mlir

let run_on_func (f : Ir.func) : bool =
  match f.fbody with
  | None -> false
  | Some body ->
      let changed = ref false in
      let nonzero = Dataflow.nonzero_trip_loops body in
      (* Process innermost-first so multi-level hoisting happens in one
         sweep per fixpoint iteration. *)
      let rec process_region (r : Ir.region) =
        List.iter
          (fun (o : Ir.op) -> List.iter process_region o.regions)
          r.rops;
        (* Hoist from each scf.for at this level. *)
        r.rops <-
          List.concat_map
            (fun (o : Ir.op) ->
              if String.equal o.name "scf.for" then begin
                let loop_body = Scf_d.loop_body o in
                let defined_inside = Hashtbl.create 32 in
                List.iter
                  (fun (v : Ir.value) ->
                    Hashtbl.replace defined_inside v.vid ())
                  (Ir.defined_values loop_body);
                let invariant (v : Ir.value) =
                  not (Hashtbl.mem defined_inside v.vid)
                in
                let stores = Pass_util.written_memrefs loop_body in
                let has_calls = Pass_util.region_has_calls loop_body in
                (* Top-level body ops run once per iteration, so a proven
                   nonzero trip count means they execute at least once and
                   moving them just before the loop is not speculation. *)
                let executes_once = Hashtbl.mem nonzero o.oid in
                let hoisted = ref [] in
                let rec hoist_ops () =
                  let moved = ref false in
                  let keep =
                    List.filter
                      (fun (op : Ir.op) ->
                        let hoistable =
                          List.for_all invariant op.operands
                          && (Pass_util.is_pure op
                             || (Pass_util.is_trapping_pure op
                                && executes_once)
                             || (Pass_util.is_read_only op && executes_once
                                && (not has_calls)
                                &&
                                match Pass_util.read_memref op with
                                | Some mr -> not (Hashtbl.mem stores mr.vid)
                                | None -> false))
                        in
                        if hoistable then begin
                          hoisted := op :: !hoisted;
                          List.iter
                            (fun (v : Ir.value) ->
                              Hashtbl.remove defined_inside v.vid)
                            op.results;
                          moved := true;
                          changed := true;
                          false
                        end
                        else true)
                      loop_body.rops
                  in
                  loop_body.rops <- keep;
                  if !moved then hoist_ops ()
                in
                hoist_ops ();
                List.rev !hoisted @ [ o ]
              end
              else [ o ])
            r.rops
      in
      process_region body;
      !changed

let pass : Pass.t = Pass.per_function "licm" run_on_func
