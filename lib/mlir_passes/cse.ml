(** Common subexpression elimination on pure ops.

    Never-trapping pure ops work scope-wise: a table of available
    expressions keyed by op signature is threaded down into nested regions
    (values from enclosing regions dominate the nested ones), and
    region-local entries are dropped on exit.

    Trapping-but-pure ops ([arith.divsi]/[arith.remsi]) get a stricter
    rule, decided on the {!Dataflow} CFG: two identical trapping ops may
    be merged only when the surviving one's block {e dominates} the
    duplicate's. Same operands mean both trap together or compute the same
    value, and dominance guarantees the surviving op executed (trapped or
    passed) before the duplicate on every path that reaches it. The CFG's
    zero-trip bypass edges make the rule trap-exact for free: an op inside
    a possibly-zero-trip loop body does not dominate the code after the
    loop, and sibling [scf.if] branches never dominate each other — but an
    op in a {e proven-nonzero-trip} loop body does dominate the block
    after the loop, a case the old same-region rule could not see. *)

open Dcir_mlir

let run_on_func (f : Ir.func) : bool =
  match f.fbody with
  | None -> false
  | Some body ->
      let changed = ref false in
      let g = Dataflow.build_cfg body in
      let doms = Dataflow.dominators g in
      let bid_of (o : Ir.op) =
        Hashtbl.find_opt g.Dataflow.block_of_op o.Ir.oid
      in
      (* Never-trapping availability: signature -> canonical results,
         scoped with an undo trail per region. *)
      let table : (string, Ir.value list) Hashtbl.t = Hashtbl.create 64 in
      (* Surviving trapping ops: signature -> (results, block), visited in
         program order. Deliberately unscoped — dominance, not region
         nesting, decides whether an occurrence may be reused. *)
      let traps : (string, (Ir.value list * int) list) Hashtbl.t =
        Hashtbl.create 8
      in
      let rec process_region (r : Ir.region) =
        let added = ref [] in
        let keep =
          List.filter
            (fun (o : Ir.op) ->
              let trapping = Pass_util.is_trapping_pure o in
              let cse_able =
                (Pass_util.is_pure o || trapping) && o.results <> []
              in
              if cse_able then begin
                let sg = Pass_util.signature o in
                let merge_target =
                  if trapping then
                    match (Hashtbl.find_opt traps sg, bid_of o) with
                    | Some entries, Some b ->
                        (* Entries precede [o] in program order, so a
                           dominating entry in the same block is earlier
                           in that block. *)
                        List.find_map
                          (fun (res, wb) ->
                            if Dataflow.dominates doms wb b then Some res
                            else None)
                          entries
                    | _ -> None
                  else Hashtbl.find_opt table sg
                in
                match merge_target with
                | Some results ->
                    (* Replace uses of this op's results everywhere below. *)
                    List.iter2
                      (fun (dup : Ir.value) (orig : Ir.value) ->
                        Ir.replace_uses_in_region body ~from_:dup ~to_:orig)
                      o.results results;
                    changed := true;
                    false
                | None ->
                    (if trapping then
                       match bid_of o with
                       | Some b ->
                           Hashtbl.replace traps sg
                             ((o.results, b)
                             :: Option.value ~default:[]
                                  (Hashtbl.find_opt traps sg))
                       | None -> ()
                     else begin
                       Hashtbl.add table sg o.results;
                       added := sg :: !added
                     end);
                    List.iter process_region o.regions;
                    true
              end
              else begin
                List.iter process_region o.regions;
                true
              end)
            r.rops
        in
        r.rops <- keep;
        List.iter (fun sg -> Hashtbl.remove table sg) !added
      in
      process_region body;
      !changed

let pass : Pass.t = Pass.per_function "cse" run_on_func
