(** Common subexpression elimination on pure ops.

    Works scope-wise: a table of available expressions keyed by op signature
    is threaded down into nested regions (values from enclosing regions
    dominate the nested ones), and region-local entries are dropped on exit.

    Trapping-but-pure ops ([arith.divsi]/[arith.remsi]) get a stricter rule:
    two identical trapping ops may be merged only when the surviving one
    sits {e in the same region} before the duplicate. Same operands mean
    both trap together or compute the same value, and the earlier op in the
    same straight-line region is guaranteed to have executed (trapped or
    passed) before the duplicate — whereas an entry inherited from an
    enclosing region proves dominance but would let a later pass treat the
    merged result as freely placeable, so we keep the conservative
    same-region rule. *)

open Dcir_mlir

(* A table entry: canonical results, plus the region the defining op lives
   in when that op can trap ([None] for never-trapping entries). *)
type entry = { e_results : Ir.value list; e_trap_region : Ir.region option }

let run_on_func (f : Ir.func) : bool =
  match f.fbody with
  | None -> false
  | Some body ->
      let changed = ref false in
      (* signature -> entry. The table is scoped with an undo trail per
         region. *)
      let table : (string, entry) Hashtbl.t = Hashtbl.create 64 in
      let rec process_region (r : Ir.region) =
        let added = ref [] in
        let keep =
          List.filter
            (fun (o : Ir.op) ->
              let cse_able =
                (Pass_util.is_pure o || Pass_util.is_trapping_pure o)
                && o.results <> []
              in
              if cse_able then begin
                let sg = Pass_util.signature o in
                let merge_target =
                  match Hashtbl.find_opt table sg with
                  | Some e when not (Pass_util.is_trapping_pure o) -> Some e
                  | Some ({ e_trap_region = Some tr; _ } as e) when tr == r ->
                      Some e
                  | _ -> None
                in
                match merge_target with
                | Some e ->
                    (* Replace uses of this op's results everywhere below. *)
                    List.iter2
                      (fun (dup : Ir.value) (orig : Ir.value) ->
                        Ir.replace_uses_in_region body ~from_:dup ~to_:orig)
                      o.results e.e_results;
                    changed := true;
                    false
                | None ->
                    (* Trapping duplicates from an enclosing region shadow
                       the old entry so the same-region rule sees the
                       nearest candidate. *)
                    Hashtbl.add table sg
                      {
                        e_results = o.results;
                        e_trap_region =
                          (if Pass_util.is_trapping_pure o then Some r
                           else None);
                      };
                    added := sg :: !added;
                    List.iter process_region o.regions;
                    true
              end
              else begin
                List.iter process_region o.regions;
                true
              end)
            r.rops
        in
        r.rops <- keep;
        List.iter (fun sg -> Hashtbl.remove table sg) !added
      in
      process_region body;
      !changed

let pass : Pass.t = Pass.per_function "cse" run_on_func
