(** Dead code elimination: removes side-effect-free ops whose results are
    never used, iterating to a fixpoint so use-chains collapse. A heap
    allocation whose only remaining user is its [memref.dealloc] is removed
    together with the dealloc — the malloc-elision production compilers
    perform.

    A trap is an observable effect, so an unused [arith.divsi]/[arith.remsi]
    is {e not} dead: deleting it would erase a division-by-zero stop. The
    one exception is an unused trapping op with an identical op (same
    signature) whose block {e dominates} it on the {!Dataflow} CFG — the
    dominating occurrence has already trapped or passed with the same
    operands, so the duplicate's trap is unreachable-or-redundant and it
    may go. Only unmarked occurrences are recorded as witnesses, which
    guarantees the dominating witness itself is never deleted by the same
    rule. *)

open Dcir_mlir

(* Oids of trapping ops with an identical dominating occurrence, decided
   on the {!Dataflow} CFG. The walk visits ops in program order, so a
   recorded witness in the same block is earlier in that block; the CFG's
   zero-trip bypass edges mean an op inside a possibly-zero-trip loop body
   does not witness for the code after the loop, while one inside a
   proven-nonzero-trip body does. Sibling [scf.if] branches never dominate
   each other, so same-signature ops in the two arms stay independent. *)
let redundant_traps (body : Ir.region) : (int, unit) Hashtbl.t =
  let marked : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let g = Dataflow.build_cfg body in
  let doms = Dataflow.dominators g in
  let witnesses : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let rec go (r : Ir.region) =
    List.iter
      (fun (o : Ir.op) ->
        (if Pass_util.is_trapping_pure o then
           match Hashtbl.find_opt g.Dataflow.block_of_op o.Ir.oid with
           | None -> ()
           | Some b ->
               let sg = Pass_util.signature o in
               let ws =
                 Option.value ~default:[] (Hashtbl.find_opt witnesses sg)
               in
               if List.exists (fun w -> Dataflow.dominates doms w b) ws then
                 Hashtbl.replace marked o.oid ()
               else Hashtbl.replace witnesses sg (b :: ws));
        List.iter go o.regions)
      r.rops
  in
  go body;
  marked

let run_on_func (f : Ir.func) : bool =
  match f.fbody with
  | None -> false
  | Some body ->
      let changed = ref false in
      let continue_ = ref true in
      while !continue_ do
        continue_ := false;
        (* Count uses of every value in the whole function. *)
        let uses : (int, int) Hashtbl.t = Hashtbl.create 64 in
        Ir.walk_region body (fun o ->
            List.iter
              (fun (v : Ir.value) ->
                Hashtbl.replace uses v.vid
                  (1 + Option.value ~default:0 (Hashtbl.find_opt uses v.vid)))
              o.operands);
        let used (v : Ir.value) =
          Option.value ~default:0 (Hashtbl.find_opt uses v.vid) > 0
        in
        (* An alloc used only by deallocs is dead: drop both. *)
        let dead_allocs : (int, unit) Hashtbl.t = Hashtbl.create 8 in
        Ir.walk_region body (fun o ->
            match o.name with
            | "memref.alloc" | "memref.alloca" ->
                let res = Ir.result o in
                let non_dealloc_uses = ref 0 in
                Ir.walk_region body (fun u ->
                    if
                      (not (String.equal u.Ir.name "memref.dealloc"))
                      && List.exists (fun v -> v.Ir.vid = res.vid) u.operands
                    then incr non_dealloc_uses);
                if !non_dealloc_uses = 0 then
                  Hashtbl.replace dead_allocs res.vid ()
            | _ -> ());
        let redundant = redundant_traps body in
        let is_dead (o : Ir.op) =
          match o.name with
          | "memref.dealloc" ->
              List.exists
                (fun (v : Ir.value) -> Hashtbl.mem dead_allocs v.vid)
                o.operands
          | _ ->
              (Pass_util.is_removable_if_unused o
              || (Pass_util.is_trapping_pure o && Hashtbl.mem redundant o.oid))
              && o.results <> []
              && not (List.exists used o.results)
        in
        let rec filter_region (r : Ir.region) =
          let before = List.length r.rops in
          r.rops <- List.filter (fun o -> not (is_dead o)) r.rops;
          if List.length r.rops <> before then begin
            changed := true;
            continue_ := true
          end;
          List.iter
            (fun (o : Ir.op) -> List.iter filter_region o.regions)
            r.rops
        in
        filter_region body
      done;
      !changed

let pass : Pass.t = Pass.per_function "dce" run_on_func
