(** Store-to-load forwarding.

    Within one region, a load from [A[idx...]] that follows a store to the
    same memref with the identical index values (and no possibly-aliasing
    write, call, or nested region in between) yields the stored value. This
    is the standard GVN-style memory forwarding production compilers apply;
    on the Fig 2 example it turns [B[j] = A[i]] into [B[j] = 5] after the
    [A[i] = 5] store, enabling the data-centric side to see the false
    dependency. *)

open Dcir_mlir

let access_key (mr : Ir.value) (idxs : Ir.value list) : string =
  Printf.sprintf "%d[%s]" mr.vid
    (String.concat "," (List.map (fun (v : Ir.value) -> string_of_int v.vid) idxs))

(* Two index vectors provably address different elements when some position
   holds distinct constants. Equal vids (or unprovable) means may-alias. *)
let provably_distinct (consts : (int, Dcir_mlir.Attr.t) Hashtbl.t)
    (a : Ir.value list) (b : Ir.value list) : bool =
  List.length a = List.length b
  && List.exists2
       (fun (x : Ir.value) (y : Ir.value) ->
         x.vid <> y.vid
         &&
         match (Pass_util.const_int consts x, Pass_util.const_int consts y)
         with
         | Some cx, Some cy -> cx <> cy
         | _ -> false)
       a b

let run_on_func (f : Ir.func) : bool =
  match f.fbody with
  | None -> false
  | Some body ->
      let changed = ref false in
      let consts = Pass_util.const_map body in
      let rec process_region (r : Ir.region) =
        (* available: access key -> stored value; per-memref key lists
           (accumulated across stores, not rebound) allow invalidating
           exactly the entries a new store may alias. *)
        let available : (string, Ir.value) Hashtbl.t = Hashtbl.create 16 in
        let keys_of_memref : (int, (string * Ir.value list) list) Hashtbl.t =
          Hashtbl.create 8
        in
        let invalidate_all () =
          Hashtbl.reset available;
          Hashtbl.reset keys_of_memref
        in
        List.iter
          (fun (o : Ir.op) ->
            match o.name with
            | "memref.store" ->
                let v, mr, idxs = Memref_d.store_parts o in
                (* Drop only the tracked entries this store may alias:
                   entries at provably different constant indices survive,
                   so multiple elements of one memref stay forwardable at
                   once. *)
                let keys =
                  Option.value ~default:[]
                    (Hashtbl.find_opt keys_of_memref mr.vid)
                in
                let survivors =
                  List.filter
                    (fun (key, kidxs) ->
                      if provably_distinct consts idxs kidxs then true
                      else begin
                        Hashtbl.remove available key;
                        false
                      end)
                    keys
                in
                let key = access_key mr idxs in
                Hashtbl.replace available key v;
                Hashtbl.replace keys_of_memref mr.vid
                  ((key, idxs)
                  :: List.filter (fun (k, _) -> k <> key) survivors)
            | "memref.load" -> (
                let mr, idxs = Memref_d.load_parts o in
                match Hashtbl.find_opt available (access_key mr idxs) with
                | Some v ->
                    Ir.replace_uses_in_region body ~from_:(Ir.result o) ~to_:v;
                    changed := true
                | None -> ())
            | "func.call" | "memref.dealloc" -> invalidate_all ()
            | _ ->
                if o.regions <> [] then begin
                  (* Nested control flow may write anything. *)
                  invalidate_all ();
                  List.iter process_region o.regions
                end)
          r.rops
      in
      process_region body;
      if !changed then ignore (Dce.run_on_func f);
      !changed

let pass : Pass.t = Pass.per_function "store-forward" run_on_func
