(** Lazy code motion (partial redundancy elimination), the
    Knoop–Rüthing–Steffen transformation in its Drechsler–Stadel edge
    formulation, as a client of the generic {!Dataflow} framework.

    Four bit-vector problems over the structured CFG:
    - ANT (anticipated, backward ∩): e is computed on every path onward
      before its operands change;
    - AV (available, forward ∩): e was computed on every path here and not
      killed since;
    - EARLIEST(i,j) = ANTIN[j] ∩ ¬AVOUT[i] ∩ (KILL[i] ∪ ¬ANTOUT[i]): the
      first edges where computing e is both useful and possible;
    - LATER (forward over edges): pushes each insertion as far down as it
      can go without making any path compute e twice.

    INSERT(i,j) = LATER(i,j) ∩ ¬LATERIN[j] and DELETE[b] = ANTLOC[b] ∩
    ¬LATERIN[b] then describe the motion. Because insertions land only on
    down-safe (anticipated) edges, a trapping division or a memory load is
    never executed on a path that did not already execute it — the
    zero-trip bypass edges in the CFG make anticipability stop at every
    possibly-zero-trip loop entry, so loop hoisting happens exactly for
    loops with proven nonzero trips. {!Dataflow.can_speculate} is
    re-checked at realization as a final gate for non-speculable ops.

    A local value-numbering step ({!local_reuse}) runs first, as the
    classic formulation assumes: within one block, a repeated candidate
    expression whose value is still available (for loads: no intervening
    store to the memref, no opaque barrier) reuses the first occurrence.
    This is also where the redundant-load wins on branch-free Polybench
    kernels come from — CSE does not touch memory ops and store-forward
    only forwards stores.

    Realization is deliberately restricted to the phi-free case: an
    expression moves only when it has exactly one insertion edge with a
    structurally feasible splice point that dominates every deleted
    occurrence. Everything else (multi-edge insertions needing a join of
    temporaries) is left in place — sound, just not maximally lazy. *)

open Dcir_mlir
module Events = Dcir_obs.Events
module Json = Dcir_obs.Json
module Bits = Dataflow.Bits

(* An expression: one signature, its prototype op, all occurrences. *)
type expr = {
  x_idx : int;
  x_proto : Ir.op;
  mutable x_occs : (int * Ir.op) list;  (** (bid, op), discovery order *)
}

let is_candidate (o : Ir.op) : bool =
  (match o.Ir.results with [ _ ] -> true | _ -> false)
  && o.Ir.operands <> []
  && (Pass_util.is_pure o || Pass_util.is_trapping_pure o
    || Pass_util.is_read_only o)

(* Local availability: the value-numbering step classic LCM assumes has
   already run. A second occurrence of a candidate expression inside one
   single-block region reuses the first while its value is still
   available: loads are killed by a store to their memref and by opaque
   barriers (calls, deallocs, stream pushes, nested regions); pure and
   trapping candidates cannot be killed intra-region (SSA never redefines
   their operands). A reused trapping op is dominated by its twin in the
   same region — the same contract [Cse]/[Dce] enforce. This is where the
   classic PRE load wins on branch-free kernels come from (e.g. the
   doubled [path] loads in floyd-warshall's compare-then-select): CSE
   skips memory ops entirely and store-forward only forwards stores, so
   nothing else in the pipeline sees them. Replacements rewrite uses in
   place, so a chain (dup load feeding a dup add) collapses in one walk. *)
let local_reuse (body : Ir.region) : (string * int) list =
  let eliminated : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let rec go (r : Ir.region) : unit =
    let avail : (string, Ir.op) Hashtbl.t = Hashtbl.create 16 in
    let kill (pred : Ir.op -> bool) : unit =
      let doomed =
        Hashtbl.fold
          (fun sg (o : Ir.op) acc -> if pred o then sg :: acc else acc)
          avail []
      in
      List.iter (Hashtbl.remove avail) doomed
    in
    let is_load (o : Ir.op) : bool = Pass_util.read_memref o <> None in
    r.Ir.rops <-
      List.filter
        (fun (o : Ir.op) ->
          let kept =
            if not (is_candidate o) then true
            else
              let sg = Pass_util.signature o in
              match Hashtbl.find_opt avail sg with
              | Some orig ->
                  Ir.replace_uses_in_region body ~from_:(Ir.result o)
                    ~to_:(Ir.result orig);
                  Hashtbl.replace eliminated o.Ir.name
                    (1
                    + Option.value ~default:0
                        (Hashtbl.find_opt eliminated o.Ir.name));
                  false
              | None ->
                  Hashtbl.add avail sg o;
                  true
          in
          if kept then begin
            List.iter go o.Ir.regions;
            (match Pass_util.written_memref o with
            | Some mr ->
                kill (fun c ->
                    match Pass_util.read_memref c with
                    | Some m -> m.Ir.vid = mr.Ir.vid
                    | None -> false)
            | None -> ());
            match o.Ir.name with
            | "func.call" | "memref.dealloc" | "sdfg.stream_push" ->
                kill is_load
            | _ -> if o.Ir.regions <> [] then kill is_load
          end;
          kept)
        r.Ir.rops
  in
  go body;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) eliminated [])

(* Insert [v] into [r.rops] before [anchor] ([None] = append). *)
let splice (r : Ir.region) (anchor : Ir.op option) (v : Ir.op) : unit =
  match anchor with
  | None -> r.Ir.rops <- r.Ir.rops @ [ v ]
  | Some a ->
      let rec go = function
        | [] -> [ v ]
        | o :: rest when o.Ir.oid = a.Ir.oid -> v :: o :: rest
        | o :: rest -> o :: go rest
      in
      r.Ir.rops <- go r.Ir.rops

let run_on_func (f : Ir.func) : bool =
  match f.Ir.fbody with
  | None -> false
  | Some body ->
      let local = local_reuse body in
      List.iter
        (fun (name, cnt) ->
          Events.emit ~code:"PASS-LCM"
            [
              ("func", Json.Str f.Ir.fname);
              ("op", Json.Str name);
              ("deletes", Json.Int cnt);
              ("placement", Json.Str "local");
            ])
        local;
      let locally_changed = local <> [] in
      let cfg = Dataflow.build_cfg body in
      let nblocks = Array.length cfg.blocks in
      (* ---- expression universe ---- *)
      let by_sig : (string, expr) Hashtbl.t = Hashtbl.create 64 in
      let exprs = ref [] in
      Array.iter
        (fun (b : Dataflow.block) ->
          List.iter
            (fun (o : Ir.op) ->
              if is_candidate o then begin
                let sg = Pass_util.signature o in
                let e =
                  match Hashtbl.find_opt by_sig sg with
                  | Some e -> e
                  | None ->
                      let e =
                        { x_idx = Hashtbl.length by_sig; x_proto = o;
                          x_occs = [] }
                      in
                      Hashtbl.add by_sig sg e;
                      exprs := e :: !exprs;
                      e
                in
                e.x_occs <- e.x_occs @ [ (b.bid, o) ]
              end)
            b.ops)
        cfg.blocks;
      let exprs = Array.of_list (List.rev !exprs) in
      let n = Array.length exprs in
      if n = 0 then locally_changed
      else begin
        (* ---- per-block local sets ---- *)
        let operand_users : (int, int list) Hashtbl.t = Hashtbl.create 64 in
        let load_users : (int, int list) Hashtbl.t = Hashtbl.create 16 in
        let loads = Bits.create ~full:false n in
        Array.iter
          (fun (e : expr) ->
            List.iter
              (fun (v : Ir.value) ->
                Hashtbl.replace operand_users v.Ir.vid
                  (e.x_idx
                  :: Option.value ~default:[]
                       (Hashtbl.find_opt operand_users v.Ir.vid)))
              e.x_proto.Ir.operands;
            match Pass_util.read_memref e.x_proto with
            | Some mr ->
                Bits.add loads e.x_idx;
                Hashtbl.replace load_users mr.Ir.vid
                  (e.x_idx
                  :: Option.value ~default:[]
                       (Hashtbl.find_opt load_users mr.Ir.vid))
            | None -> ())
          exprs;
        let antloc = Array.init nblocks (fun _ -> Bits.create ~full:false n) in
        let comp = Array.init nblocks (fun _ -> Bits.create ~full:false n) in
        let kill = Array.init nblocks (fun _ -> Bits.create ~full:false n) in
        (* Deletable (pre-kill) occurrences per block. *)
        let antloc_occs : (int, (int * Ir.op) list) Hashtbl.t =
          Hashtbl.create 32
        in
        Array.iter
          (fun (b : Dataflow.block) ->
            let bid = b.Dataflow.bid in
            if bid = cfg.entry then
              (* Synthetic entry: the function boundary defines everything,
                 giving EARLIEST a uniform frontier at function entry. *)
              for i = 0 to n - 1 do
                Bits.add kill.(bid) i
              done
            else begin
              let kill_one i =
                Bits.add kill.(bid) i;
                Bits.remove comp.(bid) i
              in
              let kill_users tbl key =
                List.iter kill_one
                  (Option.value ~default:[] (Hashtbl.find_opt tbl key))
              in
              List.iter
                (fun (o : Ir.op) ->
                  (* Occurrence first: it reads its operands before its own
                     result def (or any store effect) applies. *)
                  (if is_candidate o then
                     let e = Hashtbl.find by_sig (Pass_util.signature o) in
                     if not (Bits.mem kill.(bid) e.x_idx) then begin
                       Bits.add antloc.(bid) e.x_idx;
                       Hashtbl.replace antloc_occs bid
                         ((e.x_idx, o)
                         :: Option.value ~default:[]
                              (Hashtbl.find_opt antloc_occs bid))
                     end;
                     Bits.add comp.(bid) e.x_idx);
                  List.iter
                    (fun (v : Ir.value) -> kill_users operand_users v.Ir.vid)
                    o.Ir.results;
                  (match Pass_util.written_memref o with
                  | Some mr -> kill_users load_users mr.Ir.vid
                  | None -> ());
                  match o.Ir.name with
                  | "func.call" | "memref.dealloc" | "sdfg.stream_push" ->
                      Bits.iter kill_one loads
                  | _ ->
                      (* Unknown region-bearing ops are opaque barriers. *)
                      if o.Ir.regions <> [] then Bits.iter kill_one loads)
                b.ops;
              (* Defs not produced by member ops (region args, control-op
                 results at join/after blocks) also kill. *)
              List.iter (fun vid -> kill_users operand_users vid) b.defs
            end)
          cfg.blocks;
        (* ---- the four dataflow problems ---- *)
        let empty = Bits.create ~full:false n in
        let ant =
          Dataflow.solve cfg ~dir:Backward ~nbits:n ~meet:`Inter
            ~boundary:empty
            ~transfer:(fun b x ->
              let s = Bits.copy x in
              Bits.diff_into s kill.(b);
              Bits.union_into s antloc.(b);
              s)
            ()
        in
        let antout = ant.Dataflow.inb and antin = ant.Dataflow.outb in
        let av =
          Dataflow.solve cfg ~dir:Forward ~nbits:n ~meet:`Inter
            ~boundary:empty
            ~transfer:(fun b x ->
              let s = Bits.copy x in
              Bits.diff_into s kill.(b);
              Bits.union_into s comp.(b);
              s)
            ()
        in
        let avout = av.Dataflow.outb in
        let earliest (i : int) (j : int) : Bits.t =
          let s = Bits.copy antin.(j) in
          Bits.diff_into s avout.(i);
          let guard = Bits.copy kill.(i) in
          let not_antout = Bits.create ~full:true n in
          Bits.diff_into not_antout antout.(i);
          Bits.union_into guard not_antout;
          Bits.inter_into s guard;
          s
        in
        (* LATER via the edge form: OUT[i] = LATERIN[i] ∖ ANTLOC[i], and
           each edge adds its EARLIEST before the ∩-meet at j. *)
        let later =
          Dataflow.solve cfg ~dir:Forward ~nbits:n ~meet:`Inter
            ~boundary:empty
            ~transfer:(fun b x ->
              let s = Bits.copy x in
              Bits.diff_into s antloc.(b);
              s)
            ~edge:(fun i j x ->
              Bits.union_into x (earliest i j);
              x)
            ()
        in
        let laterin = later.Dataflow.inb in
        let later_edge (i : int) (j : int) : Bits.t =
          let s = Bits.copy laterin.(i) in
          Bits.diff_into s antloc.(i);
          Bits.union_into s (earliest i j);
          s
        in
        (* ---- realization (phi-free subset) ---- *)
        let doms = Dataflow.dominators cfg in
        let def_block : (int, int) Hashtbl.t = Hashtbl.create 64 in
        (* vids defined by a block *member* op (as opposed to region args or
           control-op results, which bind before the block's first op). *)
        let member_def : (int, unit) Hashtbl.t = Hashtbl.create 64 in
        Array.iter
          (fun (b : Dataflow.block) ->
            List.iter (fun vid -> Hashtbl.replace def_block vid b.Dataflow.bid)
              b.defs;
            List.iter
              (fun (o : Ir.op) ->
                List.iter
                  (fun (v : Ir.value) -> Hashtbl.replace member_def v.Ir.vid ())
                  o.Ir.results)
              b.ops)
          cfg.blocks;
        let inserts_of (x : int) : (int * int) list =
          let acc = ref [] in
          Array.iter
            (fun (b : Dataflow.block) ->
              let i = b.Dataflow.bid in
              List.iter
                (fun j ->
                  let ins = later_edge i j in
                  Bits.diff_into ins laterin.(j);
                  if Bits.mem ins x then acc := (i, j) :: !acc)
                b.succs)
            cfg.blocks;
          !acc
        in
        let changed = ref false in
        let pending_inserts = ref [] in
        let pending_deletes = ref [] in
        Array.iter
          (fun (e : expr) ->
            let x = e.x_idx in
            let deletes =
              List.concat_map
                (fun (b : Dataflow.block) ->
                  let bid = b.Dataflow.bid in
                  if Bits.mem antloc.(bid) x && not (Bits.mem laterin.(bid) x)
                  then
                    List.filter_map
                      (fun (xi, op) -> if xi = x then Some (bid, op) else None)
                      (Option.value ~default:[]
                         (Hashtbl.find_opt antloc_occs bid))
                  else [])
                (Array.to_list cfg.blocks)
            in
            match (inserts_of x, deletes) with
            | [ (i, j) ], _ :: _ ->
                (* One insertion edge: find its splice point. *)
                let point =
                  if cfg.blocks.(j).preds = [ i ] then
                    Some
                      (`Start, j, cfg.blocks.(j).b_host,
                       cfg.blocks.(j).b_start)
                  else if cfg.blocks.(i).succs = [ j ] then
                    Some (`End, i, cfg.blocks.(i).b_host, cfg.blocks.(i).b_end)
                  else None
                in
                (match point with
                | None -> ()
                | Some (side, ib, host, anchor) ->
                    let dominated_ok =
                      List.for_all
                        (fun (db, _) ->
                          Dataflow.dominates doms ib db
                          && (db <> ib || side = `Start))
                        deletes
                    in
                    let operands_ok =
                      List.for_all
                        (fun (v : Ir.value) ->
                          match Hashtbl.find_opt def_block v.Ir.vid with
                          | None -> true (* function param / module level *)
                          | Some db ->
                              Dataflow.dominates doms db ib
                              && not
                                   (db = ib && side = `Start
                                   && Hashtbl.mem member_def v.Ir.vid))
                        e.x_proto.Ir.operands
                    in
                    let down_safe =
                      Dataflow.can_speculate e.x_proto
                      ||
                      match side with
                      | `Start -> Bits.mem antin.(ib) x
                      | `End -> Bits.mem antout.(ib) x
                    in
                    if dominated_ok && operands_ok && down_safe then begin
                      let fresh =
                        Ir.new_op e.x_proto.Ir.name
                          ~operands:e.x_proto.Ir.operands
                          ~results:
                            [ Ir.new_value ~hint:"lcm"
                                (Ir.result e.x_proto).Ir.vty ]
                          ~attrs:e.x_proto.Ir.attrs
                      in
                      pending_inserts := (host, anchor, fresh) :: !pending_inserts;
                      List.iter
                        (fun (db, (op : Ir.op)) ->
                          pending_deletes :=
                            (cfg.blocks.(db).b_host, op, Ir.result fresh)
                            :: !pending_deletes)
                        deletes;
                      Events.emit ~code:"PASS-LCM"
                        [
                          ("func", Json.Str f.Ir.fname);
                          ("op", Json.Str e.x_proto.Ir.name);
                          ("deletes", Json.Int (List.length deletes));
                          ( "placement",
                            Json.Str
                              (match side with
                              | `Start -> "block-start"
                              | `End -> "block-end") );
                        ];
                      changed := true
                    end)
            | _ -> ())
          exprs;
        (* Insert first (anchors may be deleted ops), then delete. *)
        List.iter
          (fun (host, anchor, v) -> splice host anchor v)
          (List.rev !pending_inserts);
        List.iter
          (fun ((host : Ir.region), (op : Ir.op), repl) ->
            Ir.replace_uses_in_region body ~from_:(Ir.result op) ~to_:repl;
            host.Ir.rops <-
              List.filter (fun (o : Ir.op) -> o.Ir.oid <> op.Ir.oid) host.rops)
          (List.rev !pending_deletes);
        if !changed then ignore (Dce.run_on_func f);
        !changed || locally_changed
      end

let pass : Pass.t = Pass.per_function "lcm" run_on_func
