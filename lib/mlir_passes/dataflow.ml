(** Generic bit-vector dataflow over the scf-structured control-flow graph,
    plus the structural analyses the control-centric passes share.

    Polygeist emits structured control flow only, so the CFG is recovered
    from the region tree: every maximal straight-line run of ops becomes a
    block, an [scf.if] fans out into its two branch subgraphs and rejoins,
    and an [scf.for] contributes a body subgraph with a back edge — and,
    crucially, a {e zero-trip bypass edge} from the block before the loop
    straight to the block after it whenever the loop is not proven to run
    at least once. That single edge is what makes every analysis built on
    this CFG trap-safe by construction: nothing inside a possibly-zero-trip
    body is anticipable before the loop, so lazy code motion can never
    speculate a division or a load across the loop entry.

    The solver is a classic worklist fixpoint, parameterized on direction,
    meet, block transfer, and an optional {e edge} function. The edge form
    is what lets one engine cover both ordinary block problems
    (anticipability, availability, dominators) and lazy code motion's
    LATER recurrence, whose gen set lives on edges rather than blocks. *)

open Dcir_mlir

(* ------------------------------------------------------------------ *)
(* Dense bitsets *)

module Bits = struct
  type t = { n : int; b : Bytes.t }

  let bytes_for n = (n + 7) / 8

  let create ~(full : bool) (n : int) : t =
    { n; b = Bytes.make (bytes_for n) (if full then '\xff' else '\x00') }

  let copy (t : t) : t = { t with b = Bytes.copy t.b }
  let mem (t : t) (i : int) : bool =
    Char.code (Bytes.get t.b (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let add (t : t) (i : int) : unit =
    Bytes.set t.b (i lsr 3)
      (Char.chr (Char.code (Bytes.get t.b (i lsr 3)) lor (1 lsl (i land 7))))

  let remove (t : t) (i : int) : unit =
    Bytes.set t.b (i lsr 3)
      (Char.chr
         (Char.code (Bytes.get t.b (i lsr 3)) land lnot (1 lsl (i land 7))
         land 0xff))

  let zip_into (f : int -> int -> int) (dst : t) (src : t) : unit =
    for i = 0 to Bytes.length dst.b - 1 do
      Bytes.set dst.b i
        (Char.chr
           (f (Char.code (Bytes.get dst.b i)) (Char.code (Bytes.get src.b i))
           land 0xff))
    done

  let inter_into = zip_into ( land )
  let union_into = zip_into ( lor )
  let diff_into = zip_into (fun a b -> a land lnot b)

  (* Trailing garbage bits above [n] never escape: [mem] masks per bit and
     [iter] stops at [n]. Equality must ignore them, so compare bit-wise. *)
  let equal (a : t) (b : t) : bool =
    let r = ref true in
    for i = 0 to a.n - 1 do
      if mem a i <> mem b i then r := false
    done;
    !r

  let iter (f : int -> unit) (t : t) : unit =
    for i = 0 to t.n - 1 do
      if mem t i then f i
    done
end

(* ------------------------------------------------------------------ *)
(* CFG *)

type block = {
  bid : int;
  mutable ops : Ir.op list;
      (** straight-line ops in order; control ops ([scf.if]/[scf.for]) and
          terminators are structural, not members *)
  mutable defs : int list;
      (** vids defined at this block: results of its ops, plus results of a
          control op at the join/after block, plus body region args at the
          body-entry block *)
  mutable succs : int list;
  mutable preds : int list;
  b_host : Ir.region;  (** region holding this block's position *)
  mutable b_start : Ir.op option;
      (** op in [b_host] before which the block begins; [None] = region
          end. Insertion "at block start" splices here. *)
  mutable b_end : Ir.op option;
      (** op in [b_host] right after the block's last straight-line op (the
          control op or terminator that ended it); [None] = region end.
          Insertion "at block end" splices here. *)
}

type cfg = {
  blocks : block array;
  entry : int;  (** synthetic, empty, kill-everything boundary block *)
  exit_ : int;
  block_of_op : (int, int) Hashtbl.t;  (** oid -> bid for block members *)
}

let is_terminator (o : Ir.op) : bool =
  match o.Ir.name with "scf.yield" | "func.return" -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Trip-count analysis.

   A loop has a proven nonzero trip count when [lb < ub] holds on entry:
   - both bounds constant; or
   - constant [lb] and a provable lower bound on [ub] above it, where lower
     bounds flow through [arith.addi]/[arith.maxsi] and through enclosing
     induction variables (inside a loop's body, its IV is at least its own
     lower bound); or
   - the (lb, ub) SSA pair is identical to an enclosing loop's — reaching
     the inner loop means the outer body is executing, so [lb < ub] already
     held. *)

let nonzero_trip_loops (body : Ir.region) : (int, unit) Hashtbl.t =
  let consts = Pass_util.const_map body in
  let defs : (int, Ir.op) Hashtbl.t = Hashtbl.create 64 in
  Ir.walk_region body (fun o ->
      List.iter (fun (v : Ir.value) -> Hashtbl.replace defs v.vid o) o.results);
  let proven : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let iv_lb : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rec lower_bound (v : Ir.value) : int option =
    match Pass_util.const_int consts v with
    | Some c -> Some c
    | None -> (
        match Hashtbl.find_opt iv_lb v.vid with
        | Some c -> Some c
        | None -> (
            match Hashtbl.find_opt defs v.vid with
            | Some { Ir.name = "arith.addi"; operands = [ a; b ]; _ } -> (
                match (lower_bound a, lower_bound b) with
                | Some x, Some y -> Some (x + y)
                | _ -> None)
            | Some { Ir.name = "arith.maxsi"; operands = [ a; b ]; _ } -> (
                match (lower_bound a, lower_bound b) with
                | Some x, Some y -> Some (max x y)
                | Some x, None | None, Some x -> Some x
                | None, None -> None)
            | _ -> None))
  in
  let rec go (r : Ir.region) (enclosing : (int * int) list) =
    List.iter
      (fun (o : Ir.op) ->
        if String.equal o.Ir.name "scf.for" then begin
          let lb, ub, _ = Scf_d.loop_bounds o in
          let nonzero =
            List.mem (lb.Ir.vid, ub.Ir.vid) enclosing
            ||
            match (Pass_util.const_int consts lb, lower_bound ub) with
            | Some l, Some u -> l < u
            | _ -> false
          in
          if nonzero then Hashtbl.replace proven o.oid ();
          (match lower_bound lb with
          | Some l -> Hashtbl.replace iv_lb (Scf_d.loop_iv o).vid l
          | None -> ());
          go (Scf_d.loop_body o) ((lb.Ir.vid, ub.Ir.vid) :: enclosing)
        end
        else List.iter (fun nested -> go nested enclosing) o.Ir.regions)
      r.rops
  in
  go body [];
  proven

(* ------------------------------------------------------------------ *)
(* CFG construction *)

let build_cfg (body : Ir.region) : cfg =
  let nonzero = nonzero_trip_loops body in
  let blocks : block list ref = ref [] in
  let next = ref 0 in
  let block_of_op : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let new_block (host : Ir.region) : block =
    let b =
      { bid = !next; ops = []; defs = []; succs = []; preds = [];
        b_host = host; b_start = None; b_end = None }
    in
    incr next;
    blocks := b :: !blocks;
    b
  in
  let edge (a : block) (b : block) =
    a.succs <- a.succs @ [ b.bid ];
    b.preds <- b.preds @ [ a.bid ]
  in
  (* Build one region's subgraph; [entry_defs] are vids to record at its
     first block (loop body args). Returns (entry, exit) blocks. *)
  let rec build_region (r : Ir.region) (entry_defs : int list) :
      block * block =
    let entry = new_block r in
    entry.defs <- entry_defs;
    (* Blocks created at a split whose start anchor is the next op seen. *)
    let pending_start : block list ref = ref [ entry ] in
    let anchor (o : Ir.op) =
      List.iter (fun b -> b.b_start <- Some o) !pending_start;
      pending_start := []
    in
    let current = ref entry in
    List.iter
      (fun (o : Ir.op) ->
        anchor o;
        match o.Ir.name with
        | "scf.if" ->
            !current.b_end <- Some o;
            let t, e = Scf_d.if_regions o in
            let t_entry, t_exit = build_region t [] in
            let e_entry, e_exit = build_region e [] in
            let join = new_block r in
            join.defs <- List.map (fun (v : Ir.value) -> v.Ir.vid) o.results;
            pending_start := [ join ];
            edge !current t_entry;
            edge !current e_entry;
            edge t_exit join;
            edge e_exit join;
            current := join
        | "scf.for" ->
            !current.b_end <- Some o;
            let pre = !current in
            let bodyr = Scf_d.loop_body o in
            let b_entry, b_exit =
              build_region bodyr
                (List.map (fun (v : Ir.value) -> v.Ir.vid) bodyr.rargs)
            in
            let after = new_block r in
            after.defs <- List.map (fun (v : Ir.value) -> v.Ir.vid) o.results;
            pending_start := [ after ];
            edge pre b_entry;
            edge b_exit b_entry;
            edge b_exit after;
            if not (Hashtbl.mem nonzero o.oid) then edge pre after;
            current := after
        | _ when is_terminator o -> !current.b_end <- Some o
        | _ ->
            (* Any other op — including opaque region-bearing ones — is a
               block member; clients treat unknown region ops as barriers. *)
            !current.ops <- !current.ops @ [ o ];
            !current.defs <-
              !current.defs
              @ List.map (fun (v : Ir.value) -> v.Ir.vid) o.results;
            Hashtbl.replace block_of_op o.oid !current.bid)
      r.rops;
    (entry, !current)
  in
  let real_entry, exit_ = build_region body [] in
  (* Synthetic entry: empty block whose kill set clients take as the full
     universe (the function boundary defines parameters and everything
     else), giving lazy code motion a uniform earliest-insertion frontier
     at function entry. *)
  let s_entry = new_block body in
  s_entry.b_start <- (match body.rops with o :: _ -> Some o | [] -> None);
  s_entry.b_end <- s_entry.b_start;
  edge s_entry real_entry;
  let arr = Array.of_list (List.rev !blocks) in
  Array.sort (fun a b -> compare a.bid b.bid) arr;
  { blocks = arr; entry = s_entry.bid; exit_ = exit_.bid; block_of_op }

(* ------------------------------------------------------------------ *)
(* Worklist solver *)

type direction = Forward | Backward

type solution = { inb : Bits.t array; outb : Bits.t array }
(** [inb]/[outb] are relative to the chosen direction: for [Backward],
    [inb.(b)] is the meet over successors and [outb.(b)] the transferred
    set (i.e. ANTOUT/ANTIN respectively for anticipability). *)

(** [solve cfg ~dir ~nbits ~meet ~boundary ~transfer ?edge ()] runs the
    worklist fixpoint. [boundary] is the in-set of the entry block (exit
    block for [Backward]); interior in-sets start at top (full for
    [`Inter], empty for [`Union]). [edge src dst x] transforms the value
    flowing along one CFG edge before the meet — identity when omitted;
    lazy code motion's LATER recurrence rides on it. The solver terminates
    for any monotone [transfer]/[edge] over this finite lattice. *)
let solve (g : cfg) ~(dir : direction) ~(nbits : int)
    ~(meet : [ `Inter | `Union ]) ~(boundary : Bits.t)
    ~(transfer : int -> Bits.t -> Bits.t)
    ?(edge : (int -> int -> Bits.t -> Bits.t) option) () : solution =
  let n = Array.length g.blocks in
  let boundary_bid = match dir with Forward -> g.entry | Backward -> g.exit_ in
  let sources b =
    match dir with
    | Forward -> g.blocks.(b).preds
    | Backward -> g.blocks.(b).succs
  in
  let sinks b =
    match dir with
    | Forward -> g.blocks.(b).succs
    | Backward -> g.blocks.(b).preds
  in
  let inb =
    Array.init n (fun b ->
        if b = boundary_bid then Bits.copy boundary
        else Bits.create ~full:(meet = `Inter) nbits)
  in
  let outb = Array.init n (fun b -> transfer b inb.(b)) in
  let on_list = Array.make n true in
  let work = Queue.create () in
  Array.iter (fun (b : block) -> Queue.add b.bid work) g.blocks;
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    on_list.(b) <- false;
    if b <> boundary_bid then begin
      let srcs = sources b in
      let acc = Bits.create ~full:(meet = `Inter && srcs <> []) nbits in
      List.iter
        (fun s ->
          let v =
            match edge with
            | Some f -> f s b (Bits.copy outb.(s))
            | None -> outb.(s)
          in
          (match meet with
          | `Inter -> Bits.inter_into acc v
          | `Union -> Bits.union_into acc v))
        srcs;
      inb.(b) <- acc
    end;
    let out' = transfer b inb.(b) in
    if not (Bits.equal out' outb.(b)) then begin
      outb.(b) <- out';
      List.iter
        (fun s ->
          if not on_list.(s) then begin
            on_list.(s) <- true;
            Queue.add s work
          end)
        (sinks b)
    end
  done;
  { inb; outb }

(* ------------------------------------------------------------------ *)
(* Dominators — a two-line client of the solver: DOM[b] = {b} ∪ ⋂ DOM[p]. *)

let dominators (g : cfg) : Bits.t array =
  let n = Array.length g.blocks in
  let boundary = Bits.create ~full:false n in
  Bits.add boundary g.entry;
  let transfer b s =
    let s = Bits.copy s in
    Bits.add s b;
    s
  in
  (solve g ~dir:Forward ~nbits:n ~meet:`Inter ~boundary ~transfer ()).outb

(** [dominates doms a b]: every path from entry to [b] passes through [a]. *)
let dominates (doms : Bits.t array) (a : int) (b : int) : bool =
  Bits.mem doms.(b) a

(* ------------------------------------------------------------------ *)
(* Speculation safety *)

(** May this op be executed on a path where the original program did not
    execute it? Non-trapping pure ops: yes (an extra add is unobservable).
    Trapping ops and loads: no — a division can trap and a load can be out
    of bounds, so they may only be placed where execution is guaranteed
    (down-safe points, or before loops with proven nonzero trips). *)
let can_speculate (o : Ir.op) : bool = Pass_util.is_pure o
