(** Shared analyses for the control-centric passes: purity, memory effects,
    and simple op-signature hashing. *)

open Dcir_mlir

(** Ops that can trap at runtime: integer division and remainder stop
    execution on a zero divisor (defined behaviour in this machine, see the
    interpreter). A trap is an observable effect — these ops must never be
    speculated onto a path that did not already execute them. *)
let is_trapping (o : Ir.op) : bool =
  match o.Ir.name with "arith.divsi" | "arith.remsi" -> true | _ -> false

(** Ops with no side effects, no memory reads, and no possible trap — safe
    to CSE, DCE, hoist, and speculate freely. Floating-point division never
    traps (IEEE semantics: inf/nan), and the math ops are total over floats,
    so only the integer div/rem family is excluded. *)
let is_pure (o : Ir.op) : bool =
  let n = o.Ir.name in
  (not (is_trapping o))
  && ((String.length n > 6 && String.equal (String.sub n 0 6) "arith.")
     || Math_d.is_math_op n
     || String.equal n "memref.dim"
     || String.equal n "sdfg.sym")

(** Deterministic value ops whose only observable effect is a possible trap:
    given equal operands they trap together or compute equal values. They
    may be merged with a dominating identical op, and may move only to
    points where they were already guaranteed to execute. *)
let is_trapping_pure (o : Ir.op) : bool = is_trapping o

(** Ops whose only effect is reading memory — removable when unused,
    hoistable when memory is provably unmodified. *)
let is_read_only (o : Ir.op) : bool =
  String.equal o.Ir.name "memref.load" || String.equal o.Ir.name "sdfg.load"

(** Removable when the results are unused (pure or read-only, plus
    allocations, whose only observable effect here is cost). *)
let is_removable_if_unused (o : Ir.op) : bool =
  is_pure o || is_read_only o
  || String.equal o.Ir.name "memref.alloc"
  || String.equal o.Ir.name "memref.alloca"
  || String.equal o.Ir.name "sdfg.alloc"

(** The memref value written by this op, if any. *)
let written_memref (o : Ir.op) : Ir.value option =
  match o.Ir.name with
  | "memref.store" | "sdfg.store" -> (
      match o.operands with _ :: mr :: _ -> Some mr | _ -> None)
  | _ -> None

let read_memref (o : Ir.op) : Ir.value option =
  match o.Ir.name with
  | "memref.load" | "sdfg.load" -> (
      match o.operands with mr :: _ -> Some mr | _ -> None)
  | _ -> None

(** Does the region (recursively) contain an op that may write memory or has
    unknown effects (calls)? Used as a conservative barrier. *)
let rec region_has_side_effects (r : Ir.region) : bool =
  List.exists
    (fun (o : Ir.op) ->
      (match o.name with
      | "memref.store" | "sdfg.store" | "memref.dealloc" | "func.call"
      | "sdfg.stream_push" ->
          true
      | _ -> false)
      || List.exists region_has_side_effects o.regions)
    r.rops

(** Memrefs written anywhere inside [r] (recursively), as a vid set. *)
let written_memrefs (r : Ir.region) : (int, unit) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  Ir.walk_region r (fun o ->
      match written_memref o with
      | Some mr -> Hashtbl.replace tbl mr.vid ()
      | None -> ());
  tbl

(** Does the region contain any call (unknown effects)? *)
let region_has_calls (r : Ir.region) : bool =
  let found = ref false in
  Ir.walk_region r (fun o ->
      if String.equal o.Ir.name "func.call" then found := true);
  !found

(** Map vid -> constant attribute for every [arith.constant] result in the
    region. Built per function; cheap at our IR sizes. *)
let const_map (body : Ir.region) : (int, Attr.t) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Ir.walk_region body (fun o ->
      match Arith.const_value o with
      | Some a -> Hashtbl.replace tbl (Ir.result o).vid a
      | None -> ());
  tbl

let const_int (tbl : (int, Attr.t) Hashtbl.t) (v : Ir.value) : int option =
  match Hashtbl.find_opt tbl v.vid with
  | Some (Attr.AInt n) -> Some n
  | _ -> None

(** Structural signature for CSE: name + operand ids + attributes. Two pure
    ops with equal signatures compute the same value. *)
let signature (o : Ir.op) : string =
  let attrs =
    List.map (fun (k, a) -> k ^ "=" ^ Fmt.str "%a" Attr.pp a) o.attrs
  in
  Printf.sprintf "%s(%s){%s}" o.name
    (String.concat "," (List.map (fun v -> string_of_int v.Ir.vid) o.operands))
    (String.concat "," attrs)
