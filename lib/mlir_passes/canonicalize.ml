(** Canonicalization: constant folding, algebraic identities, and
    control-flow simplification ([scf.if] with a constant condition is
    spliced; [scf.for] with an empty constant trip count is deleted). *)

open Dcir_mlir

(* Constant lookup shared with the other passes; rebuilt per fixpoint
   iteration (cheap at our IR sizes). *)
let build_const_map = Pass_util.const_map
let const_int = Pass_util.const_int

let const_float (tbl : (int, Attr.t) Hashtbl.t) (v : Ir.value) : float option
    =
  match Hashtbl.find_opt tbl v.vid with
  | Some (Attr.AFloat f) -> Some f
  | _ -> None

(* Result of trying to simplify one op. *)
type action =
  | Keep
  | ReplaceWithConst of Attr.t
  | ReplaceWithValue of Ir.value
  | SpliceRegion of Ir.region  (** inline this region's ops minus terminator *)
  | Delete

let simplify_op (tbl : (int, Attr.t) Hashtbl.t) (o : Ir.op) : action =
  let ci = const_int tbl and cf = const_float tbl in
  let operand n = List.nth o.operands n in
  match o.name with
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.remsi"
  | "arith.maxsi" | "arith.minsi" | "arith.andi" | "arith.ori" | "arith.xori"
    -> (
      let a = operand 0 and b = operand 1 in
      match (o.name, ci a, ci b) with
      | "arith.divsi", _, Some 0 | "arith.remsi", _, Some 0 -> Keep
      | "arith.addi", Some x, Some y -> ReplaceWithConst (AInt (x + y))
      | "arith.subi", Some x, Some y -> ReplaceWithConst (AInt (x - y))
      | "arith.muli", Some x, Some y -> ReplaceWithConst (AInt (x * y))
      | "arith.divsi", Some x, Some y -> ReplaceWithConst (AInt (x / y))
      | "arith.remsi", Some x, Some y -> ReplaceWithConst (AInt (x mod y))
      | "arith.maxsi", Some x, Some y -> ReplaceWithConst (AInt (max x y))
      | "arith.minsi", Some x, Some y -> ReplaceWithConst (AInt (min x y))
      | "arith.andi", Some x, Some y -> ReplaceWithConst (AInt (x land y))
      | "arith.ori", Some x, Some y -> ReplaceWithConst (AInt (x lor y))
      | "arith.xori", Some x, Some y -> ReplaceWithConst (AInt (x lxor y))
      | "arith.addi", Some 0, _ -> ReplaceWithValue b
      | "arith.addi", _, Some 0 -> ReplaceWithValue a
      | "arith.subi", _, Some 0 -> ReplaceWithValue a
      | "arith.muli", Some 1, _ -> ReplaceWithValue b
      | "arith.muli", _, Some 1 -> ReplaceWithValue a
      | "arith.muli", Some 0, _ | "arith.muli", _, Some 0 ->
          ReplaceWithConst (AInt 0)
      | "arith.divsi", _, Some 1 -> ReplaceWithValue a
      | _ -> Keep)
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" -> (
      let a = operand 0 and b = operand 1 in
      match (o.name, cf a, cf b) with
      | "arith.addf", Some x, Some y -> ReplaceWithConst (AFloat (x +. y))
      | "arith.subf", Some x, Some y -> ReplaceWithConst (AFloat (x -. y))
      | "arith.mulf", Some x, Some y -> ReplaceWithConst (AFloat (x *. y))
      | "arith.divf", Some x, Some y -> ReplaceWithConst (AFloat (x /. y))
      (* x+0.0 / x*1.0 are safe even under IEEE (no signed-zero workloads) *)
      | "arith.addf", Some 0.0, _ -> ReplaceWithValue b
      | "arith.addf", _, Some 0.0 -> ReplaceWithValue a
      | "arith.mulf", Some 1.0, _ -> ReplaceWithValue b
      | "arith.mulf", _, Some 1.0 -> ReplaceWithValue a
      | "arith.divf", _, Some 1.0 -> ReplaceWithValue a
      | _ -> Keep)
  | "arith.cmpi" -> (
      match (ci (operand 0), ci (operand 1), Ir.str_attr o "predicate") with
      | Some x, Some y, Some pred ->
          let r =
            match pred with
            | "eq" -> x = y
            | "ne" -> x <> y
            | "slt" | "ult" -> x < y
            | "sle" | "ule" -> x <= y
            | "sgt" | "ugt" -> x > y
            | _ -> x >= y
          in
          ReplaceWithConst (AInt (if r then 1 else 0))
      | _ -> Keep)
  | "arith.select" -> (
      match ci (operand 0) with
      | Some c -> ReplaceWithValue (operand (if c <> 0 then 1 else 2))
      | None -> Keep)
  | "arith.index_cast" -> (
      (* index -> index casts and constant casts fold away. *)
      let a = operand 0 in
      if Types.equal a.vty (Ir.result o).vty then ReplaceWithValue a
      else
        match ci a with
        | Some n -> ReplaceWithConst (AInt n)
        | None -> Keep)
  | "arith.sitofp" -> (
      match ci (operand 0) with
      | Some n -> ReplaceWithConst (AFloat (float_of_int n))
      | None -> Keep)
  | "scf.if" -> (
      match ci (operand 0) with
      | Some c ->
          let then_r, else_r = Scf_d.if_regions o in
          SpliceRegion (if c <> 0 then then_r else else_r)
      | None -> Keep)
  | "scf.for" -> (
      let lb, ub, step = Scf_d.loop_bounds o in
      match (ci lb, ci ub, ci step) with
      | Some l, Some u, Some _ when l >= u ->
          (* Zero-trip loop; loops with results are handled by the caller,
             which must rewire results to the iteration inits. *)
          if o.results = [] then Delete else Keep
      | _ -> Keep)
  | _ -> Keep

let run_on_func (f : Ir.func) : bool =
  match f.fbody with
  | None -> false
  | Some body ->
      let changed = ref false in
      let continue_ = ref true in
      while !continue_ do
        continue_ := false;
        let tbl = build_const_map body in
        let rec process_region (r : Ir.region) =
          let new_ops =
            List.concat_map
              (fun (o : Ir.op) ->
                match simplify_op tbl o with
                | Keep ->
                    (* Zero-trip loops with results: replace results by inits
                       and delete. *)
                    if
                      String.equal o.name "scf.for" && o.results <> []
                      &&
                      let lb, ub, _ = Scf_d.loop_bounds o in
                      match (const_int tbl lb, const_int tbl ub) with
                      | Some l, Some u -> l >= u
                      | _ -> false
                    then begin
                      List.iter2
                        (fun res init ->
                          Ir.replace_uses_in_region body ~from_:res ~to_:init)
                        o.results
                        (Scf_d.loop_iter_inits o);
                      changed := true;
                      continue_ := true;
                      []
                    end
                    else begin
                      List.iter process_region o.regions;
                      [ o ]
                    end
                | ReplaceWithConst a ->
                    let res = Ir.result o in
                    let c = Ir.new_op "arith.constant" ~results:[ Ir.new_value ~hint:"c" res.vty ] ~attrs:[ ("value", a) ] in
                    Ir.replace_uses_in_region body ~from_:res ~to_:(Ir.result c);
                    changed := true;
                    continue_ := true;
                    [ c ]
                | ReplaceWithValue v ->
                    List.iter
                      (fun res -> Ir.replace_uses_in_region body ~from_:res ~to_:v)
                      o.results;
                    changed := true;
                    continue_ := true;
                    []
                | SpliceRegion reg ->
                    changed := true;
                    continue_ := true;
                    (* The region's trailing scf.yield feeds the op's
                       results; remaining ops are spliced in place. *)
                    (match
                       List.find_opt
                         (fun (op : Ir.op) -> String.equal op.name "scf.yield")
                         reg.rops
                     with
                    | Some y ->
                        List.iter2
                          (fun res v ->
                            Ir.replace_uses_in_region body ~from_:res ~to_:v)
                          o.results y.operands
                    | None -> assert (o.results = []));
                    List.filter
                      (fun (op : Ir.op) -> not (String.equal op.name "scf.yield"))
                      reg.rops
                | Delete ->
                    changed := true;
                    continue_ := true;
                    [])
              r.rops
          in
          r.rops <- new_ops
        in
        process_region body
      done;
      (* Constants float to the top of their region: keeps them out of the
         statement sequence (state granularity on the data-centric side) and
         mirrors MLIR's canonical constant placement. *)
      let rec hoist_constants (r : Ir.region) =
        List.iter
          (fun (o : Ir.op) -> List.iter hoist_constants o.regions)
          r.rops;
        let consts, rest =
          List.partition
            (fun (o : Ir.op) -> String.equal o.name "arith.constant")
            r.rops
        in
        if consts <> [] then r.rops <- consts @ rest
      in
      hoist_constants body;
      !changed

let pass : Pass.t = Pass.per_function "canonicalize" run_on_func
