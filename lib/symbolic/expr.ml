(** Symbolic integer expressions.

    This is the reproduction of the role sympy plays inside DaCe: array sizes,
    memlet subsets, loop bounds, and interstate-edge conditions are all
    expressions over named symbols. The engine provides canonicalization
    (so that [N + N] and [2*N] compare equal), substitution, evaluation,
    and decision procedures used by validation and the data-centric passes.

    Convention inherited from DaCe: {b symbols denote non-negative integers}
    (they name array sizes and loop trip counts). Simplifications such as
    [N/N = 1] and sign reasoning in comparisons rely on it; expressions whose
    symbols may be negative must be encoded with explicit subtraction from
    constants. *)

type t =
  | Int of int
  | Sym of string
  | Add of t list  (** n-ary sum; canonical form is flat and sorted *)
  | Mul of t list  (** n-ary product; canonical form is flat and sorted *)
  | Div of t * t  (** floor division *)
  | Mod of t * t
  | Min of t * t
  | Max of t * t

let rec compare_expr (a : t) (b : t) : int =
  let c = Stdlib.compare (rank a) (rank b) in
  if c <> 0 then c else structural a b

and rank = function
  | Int _ -> 0
  | Sym _ -> 1
  | Add _ -> 2
  | Mul _ -> 3
  | Div _ -> 4
  | Mod _ -> 5
  | Min _ -> 6
  | Max _ -> 7

and structural a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Sym x, Sym y -> Stdlib.compare x y
  | Add xs, Add ys | Mul xs, Mul ys -> compare_list xs ys
  | Div (x1, y1), Div (x2, y2)
  | Mod (x1, y1), Mod (x2, y2)
  | Min (x1, y1), Min (x2, y2)
  | Max (x1, y1), Max (x2, y2) ->
      let c = compare_expr x1 x2 in
      if c <> 0 then c else compare_expr y1 y2
  | _ -> 0

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare_expr x y in
      if c <> 0 then c else compare_list xs' ys'

let zero = Int 0
let one = Int 1
let int n = Int n
let sym s = Sym s

(* ------------------------------------------------------------------ *)
(* Canonicalization.

   Sums are normalized to a multiset of terms [coeff * atoms] where [atoms]
   is a sorted list of non-constant factors; products distribute over sums,
   so polynomials reach a canonical sum-of-monomials form. Opaque operators
   (Div, Mod, Min, Max) act as atoms with recursively simplified operands. *)

(* A monomial: integer coefficient times sorted atom list. *)
type monomial = int * t list

let monomial_key (atoms : t list) : t list = atoms

let rec simplify (e : t) : t =
  match e with
  | Int _ | Sym _ -> e
  | Add xs -> simplify_sum (List.map simplify xs)
  | Mul xs -> simplify_product (List.map simplify xs)
  | Div (a, b) -> simplify_div (simplify a) (simplify b)
  | Mod (a, b) -> simplify_mod (simplify a) (simplify b)
  | Min (a, b) -> simplify_min (simplify a) (simplify b)
  | Max (a, b) -> simplify_max (simplify a) (simplify b)

(* Decompose a simplified expression into monomials. *)
and to_monomials (e : t) : monomial list =
  match e with
  | Int 0 -> []
  | Int n -> [ (n, []) ]
  | Add xs -> List.concat_map to_monomials xs
  | Mul xs ->
      let coeff, atoms =
        List.fold_left
          (fun (c, ats) x ->
            match x with Int n -> (c * n, ats) | a -> (c, a :: ats))
          (1, []) xs
      in
      if coeff = 0 then [] else [ (coeff, List.sort compare_expr atoms) ]
  | atom -> [ (1, [ atom ]) ]

and of_monomials (ms : monomial list) : t =
  (* Combine like monomials. *)
  let tbl = Hashtbl.create 8 in
  let keys = ref [] in
  List.iter
    (fun (c, atoms) ->
      let key = monomial_key atoms in
      match Hashtbl.find_opt tbl key with
      | Some r -> r := !r + c
      | None ->
          Hashtbl.add tbl key (ref c);
          keys := key :: !keys)
    ms;
  let terms =
    List.rev !keys
    |> List.filter_map (fun key ->
           let c = !(Hashtbl.find tbl key) in
           if c = 0 then None
           else
             match (c, key) with
             | c, [] -> Some (Int c)
             | 1, [ a ] -> Some a
             | 1, atoms -> Some (Mul atoms)
             | c, atoms -> Some (Mul (Int c :: atoms)))
    |> List.sort compare_expr
    (* Constants read better at the end of a sum: [N*N - 1], not [-1 + N*N]. *)
    |> List.partition (function Int _ -> false | _ -> true)
    |> fun (non_const, const) -> non_const @ const
  in
  match terms with [] -> Int 0 | [ t ] -> t | ts -> Add ts

and simplify_sum (xs : t list) : t =
  of_monomials (List.concat_map to_monomials xs)

and simplify_product (xs : t list) : t =
  (* Distribute products over sums so that polynomials canonicalize. *)
  let mult_mono ((c1, a1) : monomial) ((c2, a2) : monomial) : monomial =
    (c1 * c2, List.sort compare_expr (a1 @ a2))
  in
  let factors = List.map to_monomials xs in
  let product =
    List.fold_left
      (fun acc f -> List.concat_map (fun m -> List.map (mult_mono m) f) acc)
      [ (1, []) ] factors
  in
  of_monomials product

and simplify_div (a : t) (b : t) : t =
  match (a, b) with
  | _, Int 1 -> a
  | Int 0, _ -> Int 0
  | Int x, Int y when y <> 0 ->
      (* floor division *)
      let q = if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1 else x / y in
      Int q
  | a, b when compare_expr a b = 0 -> Int 1 (* symbols are non-negative; a/a=1 when a>0 assumed *)
  | a, Int k when k > 1 -> (
      (* Divide out a common constant factor when exact. *)
      let ms = to_monomials a in
      if ms <> [] && List.for_all (fun (c, _) -> c mod k = 0) ms then
        of_monomials (List.map (fun (c, ats) -> (c / k, ats)) ms)
      else Div (a, Int k))
  | _ -> Div (a, b)

and simplify_mod (a : t) (b : t) : t =
  match (a, b) with
  | _, Int 1 -> Int 0
  | Int 0, _ -> Int 0
  | Int x, Int y when y <> 0 ->
      let m = x mod y in
      Int (if m < 0 then m + abs y else m)
  | a, b when compare_expr a b = 0 -> Int 0
  | a, Int k when k > 1 -> (
      let ms = to_monomials a in
      if ms <> [] && List.for_all (fun (c, _) -> c mod k = 0) ms then Int 0
      else Mod (a, Int k))
  | _ -> Mod (a, b)

and simplify_min (a : t) (b : t) : t =
  match (a, b) with
  | Int x, Int y -> Int (min x y)
  | a, b when compare_expr a b = 0 -> a
  | a, b -> if compare_expr a b <= 0 then Min (a, b) else Min (b, a)

and simplify_max (a : t) (b : t) : t =
  match (a, b) with
  | Int x, Int y -> Int (max x y)
  | a, b when compare_expr a b = 0 -> a
  | a, b -> if compare_expr a b <= 0 then Max (a, b) else Max (b, a)

(* ------------------------------------------------------------------ *)
(* Smart constructors (always return simplified forms). *)

let add a b = simplify (Add [ a; b ])
let add_list xs = simplify (Add xs)
let sub a b = simplify (Add [ a; Mul [ Int (-1); b ] ])
let neg a = simplify (Mul [ Int (-1); a ])
let mul a b = simplify (Mul [ a; b ])
let mul_list xs = simplify (Mul xs)
let div a b = simplify (Div (a, b))
let modulo a b = simplify (Mod (a, b))
let min_ a b = simplify (Min (a, b))
let max_ a b = simplify (Max (a, b))

let equal (a : t) (b : t) : bool = compare_expr (simplify a) (simplify b) = 0
let compare = compare_expr

let is_constant (e : t) : int option =
  match simplify e with Int n -> Some n | _ -> None

(* ------------------------------------------------------------------ *)

let free_syms (e : t) : string list =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Int _ -> acc
    | Sym s -> S.add s acc
    | Add xs | Mul xs -> List.fold_left go acc xs
    | Div (a, b) | Mod (a, b) | Min (a, b) | Max (a, b) -> go (go acc a) b
  in
  S.elements (go S.empty e)

(** [subst lookup e] replaces every symbol [s] for which [lookup s] is
    [Some e'] and re-simplifies. *)
let rec subst (lookup : string -> t option) (e : t) : t =
  let e' =
    match e with
    | Int _ -> e
    | Sym s -> ( match lookup s with Some r -> r | None -> e)
    | Add xs -> Add (List.map (subst lookup) xs)
    | Mul xs -> Mul (List.map (subst lookup) xs)
    | Div (a, b) -> Div (subst lookup a, subst lookup b)
    | Mod (a, b) -> Mod (subst lookup a, subst lookup b)
    | Min (a, b) -> Min (subst lookup a, subst lookup b)
    | Max (a, b) -> Max (subst lookup a, subst lookup b)
  in
  simplify e'

let subst_one (name : string) (value : t) (e : t) : t =
  subst (fun s -> if String.equal s name then Some value else None) e

exception Unbound_symbol of string

(** Concrete evaluation; raises {!Unbound_symbol} when a symbol has no
    binding. Division is floor division, matching {!simplify}. *)
let rec eval (env : string -> int option) (e : t) : int =
  match e with
  | Int n -> n
  | Sym s -> (
      match env s with Some v -> v | None -> raise (Unbound_symbol s))
  | Add xs -> List.fold_left (fun acc x -> acc + eval env x) 0 xs
  | Mul xs -> List.fold_left (fun acc x -> acc * eval env x) 1 xs
  | Div (a, b) ->
      (* Operand evaluation is explicitly left-to-right throughout: [env]
         may have charging side effects (scalar-container reads), and the
         compiled-plan evaluator mirrors this exact order. *)
      let x = eval env a in
      let y = eval env b in
      if y = 0 then invalid_arg "Expr.eval: division by zero"
      else if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1
      else x / y
  | Mod (a, b) ->
      let x = eval env a in
      let y = eval env b in
      if y = 0 then invalid_arg "Expr.eval: modulo by zero"
      else
        let m = x mod y in
        if m < 0 then m + abs y else m
  | Min (a, b) ->
      let x = eval env a in
      let y = eval env b in
      min x y
  | Max (a, b) ->
      let x = eval env a in
      let y = eval env b in
      max x y

(* ------------------------------------------------------------------ *)
(* Printing: conventional infix syntax, parenthesized only when needed. *)

let rec pp (ppf : Format.formatter) (e : t) : unit = pp_prec 0 ppf e

and pp_prec (prec : int) (ppf : Format.formatter) (e : t) : unit =
  match e with
  | Int n -> if n < 0 && prec > 0 then Fmt.pf ppf "(%d)" n else Fmt.pf ppf "%d" n
  | Sym s -> Fmt.string ppf s
  | Add xs ->
      let body ppf () =
        List.iteri
          (fun i x ->
            match x with
            | Int n when i > 0 && n < 0 -> Fmt.pf ppf " - %d" (-n)
            | Mul (Int c :: rest) when i > 0 && c < 0 ->
                Fmt.pf ppf " - %a" (pp_prec 2)
                  (if c = -1 then
                     match rest with [ r ] -> r | rs -> Mul rs
                   else Mul (Int (-c) :: rest))
            | x ->
                if i > 0 then Fmt.pf ppf " + ";
                pp_prec 1 ppf x)
          xs
      in
      if prec > 1 then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Mul xs ->
      let body ppf () =
        List.iteri
          (fun i x ->
            if i > 0 then Fmt.pf ppf "*";
            pp_prec 2 ppf x)
          xs
      in
      if prec > 2 then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Div (a, b) -> Fmt.pf ppf "%a / %a" (pp_prec 2) a (pp_prec 3) b
  | Mod (a, b) -> Fmt.pf ppf "%a %% %a" (pp_prec 2) a (pp_prec 3) b
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" pp a pp b

let to_string (e : t) : string = Fmt.str "%a" pp e
