(** Solving symbolic equation systems.

    §5.1 / §6.1 of the paper: "on every function call, an attempt is made to
    reduce symbols by solving a system of equations". When a function with a
    parameter of size [sym("s_0")] is called with an argument of size [N+1],
    the equation [s_0 = N + 1] binds [s_0]. Systems arise when a callee has
    several parametric sizes tied to caller expressions.

    The solver handles equations that are {e linear in the unknowns}:
    rewriting [lhs - rhs = 0] as [a * x + r = 0] for an unknown [x] whose
    coefficient [a] is a non-zero integer with [r] independent of [x], and
    substituting solved bindings into remaining equations to a fixpoint. *)

type equation = Expr.t * Expr.t

(** [isolate x eq] solves a single equation for [x] if it is linear in [x]
    with exact integer division. *)
let isolate (x : string) ((lhs, rhs) : equation) : Expr.t option =
  let diff = Expr.sub lhs rhs in
  (* Split monomials into those containing x (exactly once, linearly) and
     the rest. *)
  let terms = match diff with Expr.Add xs -> xs | Expr.Int 0 -> [] | e -> [ e ] in
  let exception Nonlinear in
  try
    let coeff = ref 0 in
    let rest = ref [] in
    List.iter
      (fun term ->
        let factors = match term with Expr.Mul fs -> fs | f -> [ f ] in
        let occurrences =
          List.filter (fun f -> List.mem x (Expr.free_syms f)) factors
        in
        match occurrences with
        | [] -> rest := term :: !rest
        | [ Expr.Sym s ] when String.equal s x ->
            let c =
              List.fold_left
                (fun acc f ->
                  match f with
                  | Expr.Int n -> acc * n
                  | Expr.Sym s when String.equal s x -> acc
                  | _ -> raise Nonlinear)
                1 factors
            in
            coeff := !coeff + c
        | _ -> raise Nonlinear)
      terms;
    if !coeff = 0 then None
    else
      let r = Expr.neg (Expr.add_list (List.rev !rest)) in
      if !coeff = 1 then Some r
      else
        (* Require exact division by the coefficient. *)
        let candidate = Expr.div r (Expr.int !coeff) in
        if Expr.equal (Expr.mul candidate (Expr.int !coeff)) r then
          Some candidate
        else None
  with Nonlinear -> None

(** [linear_in x e] decomposes [e] as [c*x + r] with [c] a non-zero integer
    and [r] independent of [x]. [Some (c, r)] certifies that [e] is strictly
    monotone — hence injective — in [x], the property the dependence tester
    needs to prove that distinct loop iterations touch distinct indices.
    [None] means "not provably linear", never "non-linear". *)
let linear_in (x : string) (e : Expr.t) : (int * Expr.t) option =
  let terms = match e with Expr.Add xs -> xs | Expr.Int 0 -> [] | t -> [ t ] in
  let exception Nonlinear in
  try
    let coeff = ref 0 in
    let rest = ref [] in
    List.iter
      (fun term ->
        let factors = match term with Expr.Mul fs -> fs | f -> [ f ] in
        let occurrences =
          List.filter (fun f -> List.mem x (Expr.free_syms f)) factors
        in
        match occurrences with
        | [] -> rest := term :: !rest
        | [ Expr.Sym s ] when String.equal s x ->
            let c =
              List.fold_left
                (fun acc f ->
                  match f with
                  | Expr.Int n -> acc * n
                  | Expr.Sym s when String.equal s x -> acc
                  | _ -> raise Nonlinear)
                1 factors
            in
            coeff := !coeff + c
        | _ -> raise Nonlinear)
      terms;
    if !coeff = 0 then None
    else Some (!coeff, Expr.add_list (List.rev !rest))
  with Nonlinear -> None

(** [solve ~unknowns eqs] returns bindings for as many unknowns as can be
    determined. Solved bindings are substituted into the remaining equations
    and the process iterates to a fixpoint, so chained definitions
    ([s_0 = s_1 + 1], [s_1 = N]) resolve fully. *)
let solve ~(unknowns : string list) (eqs : equation list) :
    (string * Expr.t) list =
  let bindings = Hashtbl.create 8 in
  let lookup s = Hashtbl.find_opt bindings s in
  let remaining = ref unknowns in
  let eqs = ref eqs in
  let progress = ref true in
  while !progress && !remaining <> [] do
    progress := false;
    let still_unknown = ref [] in
    List.iter
      (fun x ->
        let solved =
          List.find_map
            (fun (l, r) ->
              let l = Expr.subst lookup l and r = Expr.subst lookup r in
              match isolate x (l, r) with
              | Some e
                when not (List.exists (fun u -> List.mem u (Expr.free_syms e))
                            !remaining) ->
                  Some e
              | _ -> None)
            !eqs
        in
        match solved with
        | Some e ->
            Hashtbl.replace bindings x e;
            progress := true
        | None -> still_unknown := x :: !still_unknown)
      !remaining;
    remaining := List.rev !still_unknown;
    (* Keep equations substituted for the next round. *)
    eqs := List.map (fun (l, r) -> (Expr.subst lookup l, Expr.subst lookup r)) !eqs
  done;
  List.filter_map
    (fun x -> Option.map (fun e -> (x, e)) (Hashtbl.find_opt bindings x))
    unknowns
