(** Symbolic boolean expressions.

    Interstate edges in an SDFG carry conditions ("take this edge when
    [i < N]"); dead-state elimination needs to decide, symbolically, whether a
    condition is always false. Decisions are three-valued: a comparison of
    two symbolic expressions may be [True], [False], or unknown ([None]). *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Bool of bool
  | Cmp of cmp * Expr.t * Expr.t
  | And of t * t
  | Or of t * t
  | Not of t

let true_ = Bool true
let false_ = Bool false
let cmp op a b = Cmp (op, a, b)
let eq a b = Cmp (Eq, a, b)
let ne a b = Cmp (Ne, a, b)
let lt a b = Cmp (Lt, a, b)
let le a b = Cmp (Le, a, b)
let gt a b = Cmp (Gt, a, b)
let ge a b = Cmp (Ge, a, b)

let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(** Decide a comparison from the sign of the simplified difference [a - b].
    Returns [None] when the sign is not statically known. Only {e constant}
    differences decide — symbols carry no sign assumption here, because loop
    induction symbols legitimately step below zero at descending-loop exits
    (the [j >= 0] guard must stay dynamic). *)
let decide_cmp (op : cmp) (a : Expr.t) (b : Expr.t) : bool option =
  match Expr.sub a b with
  | Expr.Int n -> (
      match op with
      | Eq -> Some (n = 0)
      | Ne -> Some (n <> 0)
      | Lt -> Some (n < 0)
      | Le -> Some (n <= 0)
      | Gt -> Some (n > 0)
      | Ge -> Some (n >= 0))
  | _ -> None

let rec simplify (b : t) : t =
  match b with
  | Bool _ -> b
  | Cmp (op, a, c) -> (
      let a = Expr.simplify a and c = Expr.simplify c in
      match decide_cmp op a c with
      | Some v -> Bool v
      | None -> Cmp (op, a, c))
  | And (x, y) -> (
      match (simplify x, simplify y) with
      | Bool false, _ | _, Bool false -> Bool false
      | Bool true, e | e, Bool true -> e
      | x', y' -> And (x', y'))
  | Or (x, y) -> (
      match (simplify x, simplify y) with
      | Bool true, _ | _, Bool true -> Bool true
      | Bool false, e | e, Bool false -> e
      | x', y' -> Or (x', y'))
  | Not x -> (
      match simplify x with
      | Bool v -> Bool (not v)
      | Cmp (op, a, c) -> Cmp (negate_cmp op, a, c)
      | Not inner -> inner
      | x' -> Not x')

(** Statically-known truth value, or [None]. *)
let decide (b : t) : bool option =
  match simplify b with Bool v -> Some v | _ -> None

let rec subst (lookup : string -> Expr.t option) (b : t) : t =
  match b with
  | Bool _ -> b
  | Cmp (op, a, c) -> Cmp (op, Expr.subst lookup a, Expr.subst lookup c)
  | And (x, y) -> And (subst lookup x, subst lookup y)
  | Or (x, y) -> Or (subst lookup x, subst lookup y)
  | Not x -> Not (subst lookup x)

let rec eval (env : string -> int option) (b : t) : bool =
  match b with
  | Bool v -> v
  | Cmp (op, a, c) -> (
      (* Left-to-right, like {!Expr.eval}: [env] may charge for
         scalar-container reads. *)
      let x = Expr.eval env a in
      let y = Expr.eval env c in
      match op with
      | Eq -> x = y
      | Ne -> x <> y
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y)
  | And (x, y) -> eval env x && eval env y
  | Or (x, y) -> eval env x || eval env y
  | Not x -> not (eval env x)

let rec free_syms (b : t) : string list =
  let module S = Set.Make (String) in
  let collect b =
    match b with
    | Bool _ -> []
    | Cmp (_, a, c) -> Expr.free_syms a @ Expr.free_syms c
    | And (x, y) | Or (x, y) -> free_syms x @ free_syms y
    | Not x -> free_syms x
  in
  S.elements (S.of_list (collect b))

let cmp_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp (ppf : Format.formatter) (b : t) : unit =
  match b with
  | Bool v -> Fmt.bool ppf v
  | Cmp (op, a, c) -> Fmt.pf ppf "%a %s %a" Expr.pp a (cmp_to_string op) Expr.pp c
  | And (x, y) -> Fmt.pf ppf "(%a and %a)" pp x pp y
  | Or (x, y) -> Fmt.pf ppf "(%a or %a)" pp x pp y
  | Not x -> Fmt.pf ppf "not (%a)" pp x

let to_string (b : t) : string = Fmt.str "%a" pp b
