(** Symbolic ranges and subsets — the language of memlets.

    A memlet in an SDFG names a data container and the subset of its elements
    being moved. Subsets are lists of per-dimension ranges
    [{lo; hi; step}] with inclusive bounds, exactly like DaCe's [Range]
    subsets (e.g. [A[0:N, i]] is [[0, N-1, 1]; [i, i, 1]]).

    The operations here back the paper's analyses: number of moved elements
    (volume), bounding-box union (memlet consolidation, §6.2), containment
    (memlet propagation refinement, §5.1) and best-effort disjointness
    (state fusion race checks, §6.1). *)

type dim = { lo : Expr.t; hi : Expr.t; step : Expr.t }

type t = dim list

let dim ?(step = Expr.one) lo hi = { lo; hi; step }

(** A single index [e], i.e. the range [e:e]. *)
let index (e : Expr.t) : dim = { lo = e; hi = e; step = Expr.one }

(** The full range of a dimension of size [size]: [0 : size-1]. *)
let full (size : Expr.t) : dim =
  { lo = Expr.zero; hi = Expr.sub size Expr.one; step = Expr.one }

let of_indices (idxs : Expr.t list) : t = List.map index idxs

let is_index (d : dim) : bool = Expr.equal d.lo d.hi

let as_indices (s : t) : Expr.t list option =
  if List.for_all is_index s then Some (List.map (fun d -> d.lo) s) else None

(** Number of elements covered by one dimension: [(hi - lo) / step + 1]. *)
let dim_size (d : dim) : Expr.t =
  Expr.add (Expr.div (Expr.sub d.hi d.lo) d.step) Expr.one

(** Total number of elements moved by the subset. *)
let volume (s : t) : Expr.t = Expr.mul_list (List.map dim_size s)

let equal_dim (a : dim) (b : dim) : bool =
  Expr.equal a.lo b.lo && Expr.equal a.hi b.hi && Expr.equal a.step b.step

let equal (a : t) (b : t) : bool =
  List.length a = List.length b && List.for_all2 equal_dim a b

(** Bounding-box union; steps collapse to 1 when they differ. This is the
    "data movement common denominator" used by memlet consolidation. *)
let union (a : t) (b : t) : t =
  if List.length a <> List.length b then
    invalid_arg "Range.union: dimensionality mismatch";
  List.map2
    (fun da db ->
      {
        lo = Expr.min_ da.lo db.lo;
        hi = Expr.max_ da.hi db.hi;
        step = (if Expr.equal da.step db.step then da.step else Expr.one);
      })
    a b

(** [covers outer inner]: true when every point of [inner] is provably inside
    the bounding box of [outer]. Three-valued in spirit: [false] means
    "cannot prove containment", not "provably outside". *)
let covers (outer : t) (inner : t) : bool =
  List.length outer = List.length inner
  && List.for_all2
       (fun o i ->
         Bexpr.decide (Bexpr.le o.lo i.lo) = Some true
         && Bexpr.decide (Bexpr.ge o.hi i.hi) = Some true)
       outer inner

(** Best-effort disjointness: provably non-overlapping bounding boxes in at
    least one dimension. [false] means "may overlap". *)
let disjoint (a : t) (b : t) : bool =
  List.length a = List.length b
  && List.exists2
       (fun da db ->
         Bexpr.decide (Bexpr.lt da.hi db.lo) = Some true
         || Bexpr.decide (Bexpr.lt db.hi da.lo) = Some true)
       a b

(* ------------------------------------------------------------------ *)
(* Per-iteration independence — the queries behind the loop→map
   dependence tester. All are three-valued in spirit: [false] means
   "cannot prove", never "provably dependent". *)

(** Provably non-overlapping in one dimension, for all symbol values. *)
let dim_apart (a : dim) (b : dim) : bool =
  Bexpr.decide (Bexpr.lt a.hi b.lo) = Some true
  || Bexpr.decide (Bexpr.lt b.hi a.lo) = Some true

(** [iter_disjoint ~sym a b]: for {e any two distinct} integer values
    [v1 <> v2] of [sym], are [a{sym:=v1}] and [b{sym:=v2}] provably
    disjoint subsets of the same container?

    Per dimension, three sufficient arguments are tried (one suffices):
    - the dimension pair is apart for every value of [sym] ({!dim_apart});
    - both are single indices given by the {e same} expression, linear in
      [sym] with non-zero coefficient — injectivity makes distinct
      iterations hit distinct indices;
    - all four bounds are linear in [sym] with one shared coefficient [c],
      and consecutive iterations already clear each other:
      [|c| + (lo_b - hi_a) >= 1] and [|c| + (lo_a - hi_b) >= 1]. The [sym]
      terms cancel in the differences, so {!Bexpr.decide} can settle them;
      separation only grows with larger iteration distance.

    Steps are ignored (bounding-box conservative). *)
let iter_disjoint ~(sym : string) (a : t) (b : t) : bool =
  List.length a = List.length b
  && List.exists2
       (fun (da : dim) (db : dim) ->
         let uses_sym e = List.mem sym (Expr.free_syms e) in
         if (not (uses_sym da.lo)) && (not (uses_sym da.hi))
            && (not (uses_sym db.lo))
            && not (uses_sym db.hi)
         then dim_apart da db
         else if
           is_index da && is_index db && Expr.equal da.lo db.lo
         then
           match Solve.linear_in sym da.lo with
           | Some (c, _) -> c <> 0
           | None -> false
         else
           match
             ( Solve.linear_in sym da.lo,
               Solve.linear_in sym da.hi,
               Solve.linear_in sym db.lo,
               Solve.linear_in sym db.hi )
           with
           | Some (c1, _), Some (c2, _), Some (c3, _), Some (c4, _)
             when c1 = c2 && c2 = c3 && c3 = c4 ->
               let c = Expr.int (abs c1) in
               let ge1 x y =
                 Bexpr.decide (Bexpr.ge (Expr.add c (Expr.sub x y)) Expr.one)
                 = Some true
               in
               ge1 db.lo da.hi && ge1 da.lo db.hi
           | _ -> false)
       a b

(** [widen ~sym ~lo ~hi s] over-approximates the union of [s{sym:=v}] for
    [v] in [lo..hi] — memlet propagation (§5.1) out of a map scope. Bounds
    linear in [sym] move monotonically, so substituting the extreme
    iteration values bounds them; non-linear bounds fall back to the
    min/max of both substitutions. *)
let widen ~(sym : string) ~(lo : Expr.t) ~(hi : Expr.t) (s : t) : t =
  let at v e = Expr.subst_one sym v e in
  List.map
    (fun d ->
      let wlo, whi =
        match
          (Solve.linear_in sym d.lo, Solve.linear_in sym d.hi)
        with
        | Some (c1, _), Some (c2, _) when c1 > 0 && c2 > 0 ->
            (at lo d.lo, at hi d.hi)
        | Some (c1, _), Some (c2, _) when c1 < 0 && c2 < 0 ->
            (at hi d.lo, at lo d.hi)
        | _ ->
            if
              List.mem sym (Expr.free_syms d.lo)
              || List.mem sym (Expr.free_syms d.hi)
            then
              ( Expr.min_ (at lo d.lo) (at hi d.lo),
                Expr.max_ (at lo d.hi) (at hi d.hi) )
            else (d.lo, d.hi)
      in
      { lo = wlo; hi = whi; step = d.step })
    s

let subst (lookup : string -> Expr.t option) (s : t) : t =
  List.map
    (fun d ->
      {
        lo = Expr.subst lookup d.lo;
        hi = Expr.subst lookup d.hi;
        step = Expr.subst lookup d.step;
      })
    s

let free_syms (s : t) : string list =
  let module S = Set.Make (String) in
  S.elements
    (S.of_list
       (List.concat_map
          (fun d ->
            Expr.free_syms d.lo @ Expr.free_syms d.hi @ Expr.free_syms d.step)
          s))

let pp_dim (ppf : Format.formatter) (d : dim) : unit =
  if is_index d then Expr.pp ppf d.lo
  else if Expr.equal d.step Expr.one then
    Fmt.pf ppf "%a:%a" Expr.pp d.lo Expr.pp d.hi
  else Fmt.pf ppf "%a:%a:%a" Expr.pp d.lo Expr.pp d.hi Expr.pp d.step

let pp (ppf : Format.formatter) (s : t) : unit =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ", ") pp_dim) s

let to_string (s : t) : string = Fmt.str "%a" pp s
