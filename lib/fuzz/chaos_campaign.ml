(** Chaos campaign: differential fuzzing under seeded fault injection.

    Each case generates a program (same generator and per-case seed
    derivation as the plain {!Harness}), computes its unoptimized
    reference output with no chaos armed, then installs a fault plan
    derived from the case seed and compiles the [dcir] pipeline through
    the graceful-degradation ladder. The oracle accepts exactly two
    outcomes:

    - {b correct}: the (possibly degraded) artifact runs and matches the
      reference within floating-point tolerance; or
    - {b diagnosed}: compile or run raised a structured diagnostic — a
      budget exhaustion, a {!Dcir_support.Diagnostics.Error}, a machine
      fault, an interpreter trap, or the injected fault itself.

    A wrong answer or an unstructured exception escaping the ladder fails
    the campaign. Every decision is a pure function of the campaign seed,
    and journal records carry stable classification codes rather than
    raw exception text, so replaying a seed reproduces the incident
    journal byte-for-byte. *)

module Pipelines = Dcir_core.Pipelines
module Diag = Dcir_support.Diagnostics
module Budget = Dcir_resilience.Budget
module Chaos = Dcir_resilience.Chaos
module Journal = Dcir_resilience.Journal
module Json = Dcir_obs.Json

type outcome =
  | Correct  (** artifact ran at the requested tier and matched *)
  | Degraded_correct  (** artifact ran at a lower tier and matched *)
  | Diagnosed of string  (** structured diagnostic (classification code) *)
  | Wrong of string  (** ran but diverged from the reference *)
  | Escaped of string  (** unstructured exception escaped the ladder *)

let outcome_name = function
  | Correct -> "correct"
  | Degraded_correct -> "degraded-correct"
  | Diagnosed _ -> "diagnosed"
  | Wrong _ -> "wrong-answer"
  | Escaped _ -> "escaped"

(** [Wrong] and [Escaped] violate the chaos oracle; everything else is an
    acceptable response to an injected fault. *)
let acceptable = function
  | Correct | Degraded_correct | Diagnosed _ -> true
  | Wrong _ | Escaped _ -> false

type case_result = {
  cr_index : int;
  cr_seed : int;  (** program seed (complete reproducer with the config) *)
  cr_faults : Chaos.fault list;  (** fault kinds the plan armed *)
  cr_outcome : outcome;
}

type report = {
  ch_count : int;
  ch_seed : int;
  ch_cases : case_result list;  (** in generation order *)
  ch_journal : Journal.t;
}

let ok (r : report) : bool =
  List.for_all (fun c -> acceptable c.cr_outcome) r.ch_cases

(* Structured diagnostics: every exception the resilience machinery is
   allowed to answer with. Anything else escaping the ladder is a bug. *)
let diagnosis (e : exn) : string option =
  match e with
  | Budget.Exhausted _ | Diag.Error _ | Chaos.Injected _
  | Dcir_machine.Machine.Fault _ | Dcir_mlir.Interp.Trap _
  | Dcir_sdfg.Interp.Trap _ ->
      Some (Pipelines.classify_exn e)
  | _ -> None

(* The chaos sub-seed must not collide with the program seed (both are
   splitmix64 streams), so fold in a distinct tag. *)
let chaos_seed (campaign_seed : int) (i : int) : int =
  Rng.derive (campaign_seed lxor 0x5eed_c4a0) i

let run_case ~(journal : Journal.t) ~(seed : int) (i : int) : case_result =
  let case = Gen.generate (Rng.derive seed i) in
  (* Reference before any chaos: the baseline must stay pristine. *)
  let reference =
    let m = Dcir_cfront.Polygeist.compile case.Gen.src in
    Pipelines.run (Pipelines.CMlir m) ~entry:case.Gen.entry (case.Gen.args ())
  in
  let plan = Chaos.plan ~seed:(chaos_seed seed i) () in
  Journal.record journal ~kind:"chaos-case"
    [
      ("case", Json.Int i);
      ("case_seed", Json.Int case.Gen.seed);
      ( "faults",
        Json.List
          (List.map (fun f -> Json.Str (Chaos.fault_name f)) plan.Chaos.pl_faults)
      );
      ("checked", Json.Bool plan.Chaos.pl_checked);
    ];
  Chaos.install plan;
  let outcome =
    Fun.protect ~finally:Chaos.clear (fun () ->
        match
          let compiled, report =
            Pipelines.compile_resilient ~checked:plan.Chaos.pl_checked
              Pipelines.Dcir ~src:case.Gen.src ~entry:case.Gen.entry
          in
          let r =
            Pipelines.run ~budget:(Budget.create ()) compiled
              ~entry:case.Gen.entry (case.Gen.args ())
          in
          (report, r)
        with
        | report, r -> (
            match Oracle.divergence reference r with
            | Some msg -> Wrong msg
            | None ->
                if report.Pipelines.res_landed = report.Pipelines.res_requested
                then Correct
                else Degraded_correct)
        | exception e -> (
            match diagnosis e with
            | Some code -> Diagnosed code
            | None -> Escaped (Pipelines.classify_exn e)))
  in
  Journal.record journal ~kind:"case-outcome"
    ([ ("case", Json.Int i); ("outcome", Json.Str (outcome_name outcome)) ]
    @
    match outcome with
    | Diagnosed code | Escaped code -> [ ("code", Json.Str code) ]
    | Correct | Degraded_correct | Wrong _ -> []);
  {
    cr_index = i;
    cr_seed = case.Gen.seed;
    cr_faults = plan.Chaos.pl_faults;
    cr_outcome = outcome;
  }

(** Run the chaos campaign: [count] cases from [seed]. [on_case] fires
    after each verdict (progress output). The returned journal carries
    every incident of the campaign, oldest first, and serializes under
    schema [dcir-incidents/1] with the campaign header. *)
let run ?(on_case : (case_result -> unit) option) ~(count : int) ~(seed : int)
    () : report =
  let journal = Journal.create () in
  Journal.install journal;
  Fun.protect
    ~finally:(fun () ->
      Journal.clear ();
      Chaos.clear ())
    (fun () ->
      let cases = ref [] in
      for i = 0 to count - 1 do
        let cr = run_case ~journal ~seed i in
        (match on_case with Some f -> f cr | None -> ());
        cases := cr :: !cases
      done;
      { ch_count = count; ch_seed = seed; ch_cases = List.rev !cases;
        ch_journal = journal })

let header (r : report) : (string * Json.t) list =
  [ ("campaign", Json.Str "chaos"); ("seed", Json.Int r.ch_seed);
    ("count", Json.Int r.ch_count) ]

let journal_json (r : report) : Json.t =
  Journal.to_json ~header:(header r) r.ch_journal

let write_journal (r : report) (path : string) : unit =
  Journal.write ~header:(header r) r.ch_journal path
