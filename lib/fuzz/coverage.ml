(** Per-construct coverage dashboard ([dcir fuzz --coverage]).

    Runs a seeded campaign of generated programs through the resilient
    [dcir] pipeline (autopar on, chaos armed by default, compile-only)
    with the decision-event stream installed, tags each case with the C
    constructs it exercises (loop shapes, branches, ternaries, libm
    calls, compound assignments, ...), and aggregates the per-case
    decisions — loops certified/refused, rollbacks, breaker trips, tier
    degradations, structured diagnoses — into a per-construct rate table.
    This is the MLIR-Smith-style coverage argument turned into a
    dashboard: which language constructs the optimizer handles, refuses,
    or survives faults on.

    Everything is a pure function of the campaign seed, so the
    accumulated [dcir-events/1] stream is byte-identical across runs —
    the golden-test property for the event substrate. *)

open Dcir_cfront.C_ast
module Pipelines = Dcir_core.Pipelines
module Budget = Dcir_resilience.Budget
module Chaos = Dcir_resilience.Chaos
module Events = Dcir_obs.Events
module Json = Dcir_obs.Json

(* ------------------------------------------------------------------ *)
(* Construct tagging: walk the generated C AST. *)

let rec expr_tags (e : expr) : string list =
  match e with
  | EInt _ | EFloat _ | EVar _ -> []
  | EIndex (b, idxs) -> List.concat_map expr_tags (b :: idxs)
  | EUnop (_, a) -> expr_tags a
  | EBinop (_, a, b) -> expr_tags a @ expr_tags b
  | ECond (c, a, b) ->
      ("ternary" :: expr_tags c) @ expr_tags a @ expr_tags b
  | ECall (_, args) -> "libm-call" :: List.concat_map expr_tags args
  | ECast (_, a) -> "cast" :: expr_tags a
  | EMalloc (_, a) -> "malloc" :: expr_tags a

let rec stmt_tags ~(depth : int) (s : stmt) : string list =
  match s with
  | SDecl (_, _, init) ->
      "local-scalar" :: Option.fold ~none:[] ~some:expr_tags init
  | SAssign (lhs, op, rhs) ->
      let shape =
        match (lhs, op) with
        | EIndex _, OpAssign -> [ "array-store" ]
        | EIndex _, _ -> [ "array-update" ]
        | EVar _, OpAssign -> []
        | EVar _, _ -> [ "scalar-accum" ]
        | _ -> []
      in
      shape @ expr_tags lhs @ expr_tags rhs
  | SExpr e -> expr_tags e
  | SIf (c, t, e) ->
      ("branch" :: (if e = [] then [] else [ "branch-else" ]))
      @ expr_tags c
      @ List.concat_map (stmt_tags ~depth) t
      @ List.concat_map (stmt_tags ~depth) e
  | SFor (hdr, body) ->
      (if hdr.step < 0 then "for-desc" else "for-asc")
      :: ((if depth > 0 then [ "loop-nested" ] else [])
         @ (match hdr.bound with
           | EVar _ | EBinop (_, EVar _, _) | EBinop (_, _, EVar _) ->
               [ "symbolic-bound" ]
           | _ -> [])
         @ expr_tags hdr.init @ expr_tags hdr.bound
         @ List.concat_map (stmt_tags ~depth:(depth + 1)) body)
  | SWhile (c, body) ->
      "while" :: (expr_tags c @ List.concat_map (stmt_tags ~depth) body)
  | SReturn e -> "return-value" :: Option.fold ~none:[] ~some:expr_tags e
  | SFree _ -> [ "free" ]
  | SBlock body -> List.concat_map (stmt_tags ~depth) body

let constructs_of (case : Gen.case) : string list =
  List.concat_map
    (fun (f : func_def) ->
      List.filter_map
        (fun (_, ty) ->
          match ty with
          | TArr (_, dims) when List.length dims >= 2 -> Some "array-2d"
          | _ -> None)
        f.params
      @ List.concat_map (stmt_tags ~depth:0) f.body)
    case.Gen.prog.funcs
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Campaign *)

type row = {
  mutable cases : int;
  mutable certified : int;  (** loops certified parallel *)
  mutable refused : int;  (** loops refused (with witness) *)
  mutable rollbacks : int;
  mutable breaker_opens : int;
  mutable degraded : int;  (** cases landing below the requested tier *)
  mutable diagnosed : int;  (** cases ending in a structured diagnostic *)
}

let new_row () =
  {
    cases = 0;
    certified = 0;
    refused = 0;
    rollbacks = 0;
    breaker_opens = 0;
    degraded = 0;
    diagnosed = 0;
  }

type report = {
  cov_seed : int;
  cov_count : int;
  cov_chaos : bool;
  cov_rows : (string * row) list;  (** sorted by construct name *)
  cov_total : row;
  cov_events : Events.t;  (** the campaign's full decision-event stream *)
}

let run ?(chaos = true) ~(count : int) ~(seed : int) () : report =
  let evs = Events.create () in
  Events.install evs;
  let rows : (string, row) Hashtbl.t = Hashtbl.create 16 in
  let row tag =
    match Hashtbl.find_opt rows tag with
    | Some r -> r
    | None ->
        let r = new_row () in
        Hashtbl.replace rows tag r;
        r
  in
  let total = new_row () in
  Fun.protect
    ~finally:(fun () ->
      Events.clear ();
      Chaos.clear ())
    (fun () ->
      for i = 0 to count - 1 do
        let case = Gen.generate (Rng.derive seed i) in
        let tags = constructs_of case in
        let checked =
          if chaos then begin
            let plan = Chaos.plan ~seed:(Chaos_campaign.chaos_seed seed i) () in
            Events.emit ~code:"CHAOS-CASE"
              [
                ("case", Json.Int i);
                ("case_seed", Json.Int case.Gen.seed);
                ( "faults",
                  Json.List
                    (List.map
                       (fun f -> Json.Str (Chaos.fault_name f))
                       plan.Chaos.pl_faults) );
                ("checked", Json.Bool plan.Chaos.pl_checked);
              ];
            Chaos.install plan;
            plan.Chaos.pl_checked
          end
          else true
        in
        let since = Events.length evs in
        let diagnosed =
          Fun.protect ~finally:Chaos.clear (fun () ->
              match
                Pipelines.compile_resilient ~checked ~autopar:true
                  Pipelines.Dcir ~src:case.Gen.src ~entry:case.Gen.entry
              with
              | _ -> None
              | exception e -> Some (Pipelines.classify_exn e))
        in
        Events.emit ~code:"CHAOS-OUTCOME"
          ([
             ("case", Json.Int i);
             ( "outcome",
               Json.Str
                 (match diagnosed with None -> "compiled" | Some _ -> "diagnosed")
             );
           ]
          @
          match diagnosed with
          | Some code -> [ ("code", Json.Str code) ]
          | None -> []);
        (* Tally this case's decisions from its slice of the stream. *)
        let slice =
          List.filter
            (fun (e : Events.event) -> e.Events.ev_seq >= since)
            (Events.events evs)
        in
        let count_code c =
          List.length
            (List.filter (fun (e : Events.event) -> e.Events.ev_code = c) slice)
        in
        let certified = count_code "APAR-CERT" in
        let refused = count_code "APAR-REFUSE" in
        let rollbacks = count_code "PASS-ROLLBACK" in
        let breaker_opens = count_code "BRK-OPEN" in
        let degraded =
          List.exists
            (fun (e : Events.event) ->
              e.Events.ev_code = "TIER-LAND"
              && Events.str_field e "landed" <> Events.str_field e "requested")
            slice
        in
        let bump (r : row) =
          r.cases <- r.cases + 1;
          r.certified <- r.certified + certified;
          r.refused <- r.refused + refused;
          r.rollbacks <- r.rollbacks + rollbacks;
          r.breaker_opens <- r.breaker_opens + breaker_opens;
          if degraded then r.degraded <- r.degraded + 1;
          if diagnosed <> None then r.diagnosed <- r.diagnosed + 1
        in
        bump total;
        List.iter (fun tag -> bump (row tag)) tags
      done);
  {
    cov_seed = seed;
    cov_count = count;
    cov_chaos = chaos;
    cov_rows =
      Hashtbl.fold (fun tag r acc -> (tag, r) :: acc) rows []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    cov_total = total;
    cov_events = evs;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let events_header (r : report) : (string * Json.t) list =
  [
    ("tool", Json.Str "dcir fuzz --coverage");
    ("seed", Json.Int r.cov_seed);
    ("cases", Json.Int r.cov_count);
    ("chaos", Json.Bool r.cov_chaos);
  ]

let write_events (r : report) (path : string) : unit =
  Events.write ~header:(events_header r) r.cov_events path

let pp (ppf : Format.formatter) (r : report) : unit =
  Format.fprintf ppf
    "coverage: %d case(s), seed %d%s — %d decision event(s)@." r.cov_count
    r.cov_seed
    (if r.cov_chaos then ", chaos armed" else "")
    (Events.length r.cov_events);
  Format.fprintf ppf "  %-16s %6s %9s %8s %9s %8s %9s %10s@." "construct"
    "cases" "certified" "refused" "rollback" "brk-open" "degraded" "diagnosed";
  let line tag (row : row) =
    Format.fprintf ppf "  %-16s %6d %9d %8d %9d %8d %9d %10d@." tag row.cases
      row.certified row.refused row.rollbacks row.breaker_opens row.degraded
      row.diagnosed
  in
  List.iter (fun (tag, row) -> line tag row) r.cov_rows;
  line "TOTAL" r.cov_total
