(** Fuzz campaign driver: generate [count] programs from a campaign seed,
    run each through the differential {!Oracle}, shrink the failures.

    Per-case seeds come from {!Rng.derive}, so case [i] of campaign seed
    [s] is the same program forever — a failure report quoting [(seed,
    index)] or the case seed alone is a complete reproducer. *)

module Obs = Dcir_obs.Obs

type failed_case = {
  case : Gen.case;  (** the generated program as found *)
  failures : Oracle.failure list;
  shrunk : Gen.case;  (** delta-debugged minimal form (= [case] when
                          shrinking is off or found nothing smaller) *)
  shrunk_failures : Oracle.failure list;
}

type report = {
  count : int;
  seed : int;
  checked : bool;
  failed : failed_case list;  (** in generation order *)
}

let ok (r : report) : bool = r.failed = []

(** Run the campaign. [on_case] is called after each oracle verdict (for
    progress output). [~shrink:false] skips delta debugging. *)
let run ?(cfg = Gen.default_cfg) ?(checked = false) ?(shrink = true)
    ?(parallel = false) ?(jobs = 3) ?limits ?reproducer_dir
    ?(on_case : (int -> Gen.case -> Oracle.failure list -> unit) option)
    ~(count : int) ~(seed : int) () : report =
  Obs.with_span ~cat:"fuzz" "fuzz-campaign" (fun () ->
      let failed = ref [] in
      for i = 0 to count - 1 do
        let case = Gen.generate ~cfg (Rng.derive seed i) in
        let failures =
          Oracle.check ~checked ~parallel ~jobs ?limits ?reproducer_dir case
        in
        (match on_case with Some f -> f i case failures | None -> ());
        if failures <> [] then begin
          let shrunk, shrunk_failures =
            if shrink then Shrink.shrink ~checked ~parallel ~jobs case failures
            else (case, failures)
          in
          failed := { case; failures; shrunk; shrunk_failures } :: !failed
        end
      done;
      Obs.set_args
        [
          ("programs", Dcir_obs.Json.Int count);
          ("failures", Dcir_obs.Json.Int (List.length !failed));
        ];
      { count; seed; checked; failed = List.rev !failed })
