(** Serve chaos campaign: multi-tenant fault injection against the
    serving engine.

    Builds a seeded batch of requests spread across several tenants —
    generated programs ({!Gen}), a fraction of poison requests (sources
    the frontend must reject), occasional compile-only requests and
    tight deadlines — arms chaos fault plans per (request, attempt), and
    drives the whole batch through {!Dcir_serve.Engine}. The oracle then
    asserts the three serving invariants:

    - {b no wrong answers}: every successful [run] response matches a
      chaos-free unoptimized reference within floating-point tolerance;
    - {b no escaped exceptions}: the engine answers every request —
      poison, starvation, crashes included — with a structured response;
      nothing propagates out of [Engine.run];
    - {b tenant isolation}: each tenant's responses are byte-identical
      to a solo run of only that tenant's requests under the same
      config — no quota, breaker, deadline or ordering leakage across
      tenants;
    - {b pool determinism}: replaying the same batch across N worker
      domains produces a journal byte-identical (modulo the recorded
      worker count) to the 1-worker run — worker kills, poisoned
      results and budget watchdogs included, scheduling order never
      leaks into the journal.

    Worker faults ([worker-kill], [poison-result]) are armed from a
    seed derivation keyed only by (request id, attempt) — never by
    scheduling order — so the same attempt draws the same fate at any
    worker count. Every decision derives from the campaign seed, so a
    failing seed is a complete reproducer. *)

module Pipelines = Dcir_core.Pipelines
module Budget = Dcir_resilience.Budget
module Chaos = Dcir_resilience.Chaos
module Json = Dcir_obs.Json
module Request = Dcir_serve.Request
module Engine = Dcir_serve.Engine
module Sjournal = Dcir_serve.Sjournal
module Synth = Dcir_serve.Synth

type report = {
  sv_seed : int;
  sv_count : int;  (** requests in the batch *)
  sv_tenants : int;
  sv_workers : int;  (** worker domains in the pooled replay *)
  sv_poison : int;  (** poison requests included *)
  sv_wrong : (string * string) list;  (** request id -> divergence *)
  sv_escaped : string option;  (** exception escaping the engine *)
  sv_isolation : (string * string) list;  (** tenant -> first mismatch *)
  sv_pool : string option;  (** 1-worker vs N-worker journal divergence *)
  sv_engine : Engine.report option;  (** the pooled multi-tenant run *)
}

(** Zero wrong answers, zero escapes, zero cross-tenant leakage, and a
    pooled journal byte-identical to the sequential one. *)
let ok (r : report) : bool =
  r.sv_wrong = [] && r.sv_escaped = None && r.sv_isolation = []
  && r.sv_pool = None

(* Deterministic fold of a request id, for chaos derivation keyed by
   (request, attempt) — position-independent, so a request draws the
   same faults in a multi-tenant batch and a solo rerun. *)
let fold_id (s : string) : int =
  String.fold_left (fun h c -> ((h * 131) + Char.code c) land 0x3FFFFFFF) 7 s

let poison_sources =
  [|
    "int broken(int n) { return m; }" (* sema: undefined variable *);
    "int broken(int n) { n +; }" (* parse error *);
    "double broken(double x) { return broken(x, 1); }" (* arity *);
  |]

(* One request of the batch, tagged: poison, compile-only, or a run
   request remembering its source and entry for the reference oracle. *)
type tag = Poison | Compile_only | Run_case of string * string

let build_request ~(seed : int) ~(tenants : int) (i : int) : Request.t * tag =
  let rng = Rng.make (Rng.derive seed i) in
  let tenant = Printf.sprintf "t%d" (i mod tenants) in
  let id = Printf.sprintf "r%d" i in
  let priority = Rng.int rng 3 in
  if Rng.int rng 8 = 0 then
    (* Poison: the frontend must reject it, terminally and quietly. *)
    let src = poison_sources.(Rng.int rng (Array.length poison_sources)) in
    ( {
        Request.rq_id = id;
        rq_tenant = tenant;
        rq_op = Request.Run;
        rq_source = Request.Inline { src; entry = Some "broken" };
        rq_kind = Pipelines.Dcir;
        rq_tier = Pipelines.O2;
        rq_priority = priority;
        rq_deadline = None;
        rq_retries = None;
        rq_size = 16.0;
      },
      Poison )
  else
    let case = Gen.generate (Rng.derive seed (0x9e37 + i)) in
    let op = if Rng.int rng 5 = 0 then Request.Compile else Request.Run in
    let deadline =
      (* An occasional tight deadline: expires against the tenant's own
         spend, exercising SRV-DEADLINE without breaking determinism. *)
      if Rng.int rng 16 = 0 then Some (1 + Rng.int rng 5000) else None
    in
    ( {
        Request.rq_id = id;
        rq_tenant = tenant;
        rq_op = op;
        rq_source =
          Request.Inline { src = case.Gen.src; entry = Some case.Gen.entry };
        rq_kind = Pipelines.Dcir;
        rq_tier = Pipelines.O2;
        rq_priority = priority;
        rq_deadline = deadline;
        rq_retries = None;
        rq_size = 16.0;
      },
      if op = Request.Run then Run_case (case.Gen.src, case.Gen.entry)
      else Compile_only )

let campaign_config ~(seed : int) ~(count : int) ~(workers : int) :
    Engine.config =
  {
    Engine.default_config with
    Engine.cfg_seed = seed;
    (* Room for the whole batch: shedding is covered by unit tests; the
       campaign's isolation oracle wants every request processed. *)
    cfg_queue = max count 1;
    (* Tight enough that heavy tenants exhaust their quota mid-batch. *)
    cfg_limits =
      { Budget.max_steps = 4_000_000; max_fuel = 6_000; max_allocs = 200_000 };
    cfg_workers = workers;
    cfg_chaos =
      Some
        (fun ~id ~attempt ->
          let k = Rng.derive (seed lxor 0x5e_c4a0) ((fold_id id * 37) + attempt) in
          let base =
            if abs k mod 2 = 0 then Some (Chaos.plan ~seed:k ()) else None
          in
          (* Worker faults draw from their own derivation — still keyed
             only by (id, attempt), so an attempt meets the same fate at
             any worker count. Roughly one attempt in four is killed
             (half pre-compile, half post-compile) and one in eleven has
             its result poisoned. *)
          let wk =
            Rng.derive (seed lxor 0x77_0bb5) ((fold_id id * 53) + attempt)
          in
          let kill_at =
            if abs wk mod 4 = 0 then Some (abs wk mod 2) else None
          in
          let poison = abs wk mod 11 = 3 in
          if kill_at = None && not poison then base
          else
            let p =
              match base with
              | Some p -> p
              | None -> Chaos.no_faults ~seed:k
            in
            Some (Chaos.arm_worker ?kill_at ~poison p));
  }

(* First divergent byte of two journal renderings, with context, for
   the reproducer message. *)
let first_byte_diff (a : string) (b : string) : string =
  let la = String.length a and lb = String.length b in
  let n = min la lb in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  let i = go 0 in
  let ctx s =
    let lo = max 0 (i - 20) in
    let hi = min (String.length s) (i + 20) in
    String.sub s lo (hi - lo)
  in
  Printf.sprintf
    "journals diverge at byte %d (lengths %d vs %d): 1-worker ...%s..., \
     pooled ...%s..."
    i la lb (ctx a) (ctx b)

(** Run the campaign: [count] requests over [tenants] tenants, replayed
    at 1 worker and at [workers] worker domains. *)
let run ?(tenants = 3) ?(workers = 4) ~(count : int) ~(seed : int) () : report
    =
  let workers = max 1 workers in
  let built = List.init count (fun i -> build_request ~seed ~tenants i) in
  let requests = List.map (fun (rq, _) -> Ok rq) built in
  let sources =
    List.filter_map
      (fun ((rq : Request.t), tag) ->
        match tag with
        | Run_case (src, entry) -> Some (rq.Request.rq_id, (src, entry))
        | Poison | Compile_only -> None)
      built
  in
  let poison =
    List.length (List.filter (fun (_, tag) -> tag = Poison) built)
  in
  let config = campaign_config ~seed ~count ~workers:1 in
  match Engine.run ~config requests with
  | exception e ->
      {
        sv_seed = seed;
        sv_count = count;
        sv_tenants = tenants;
        sv_workers = workers;
        sv_poison = poison;
        sv_wrong = [];
        sv_escaped = Some (Pipelines.classify_exn e);
        sv_isolation = [];
        sv_pool = None;
        sv_engine = None;
      }
  | engine_report ->
      (* Wrong answers: every successful run against its chaos-free
         unoptimized reference. *)
      let wrong =
        List.filter_map
          (fun (id, result) ->
            match List.assoc_opt id sources with
            | None -> None
            | Some (src, entry) -> (
                let reference =
                  let m = Dcir_cfront.Polygeist.compile src in
                  Pipelines.run (Pipelines.CMlir m) ~entry
                    (Synth.args src entry ~size:16.0)
                in
                match Oracle.divergence reference result with
                | Some msg -> Some (id, msg)
                | None -> None))
          engine_report.Engine.rp_results
      in
      (* Isolation: each tenant solo, same config and chaos derivation;
         its responses must be byte-identical. *)
      let tenant_names =
        List.init tenants (fun k -> Printf.sprintf "t%d" k)
      in
      let isolation =
        List.filter_map
          (fun tn ->
            let solo =
              List.filter_map
                (fun ((rq : Request.t), _) ->
                  if rq.Request.rq_tenant = tn then Some (Ok rq) else None)
                built
            in
            let solo_report = Engine.run ~config solo in
            let multi_view =
              Sjournal.responses_for_tenant
                engine_report.Engine.rp_responses tn
            in
            let solo_view =
              Sjournal.responses_for_tenant solo_report.Engine.rp_responses
                tn
            in
            if multi_view = solo_view then None
            else
              (* First divergent response pair, for the reproducer. *)
              let rec first_diff i a b =
                match (a, b) with
                | [], [] -> Printf.sprintf "(lists equal up to position %d)" i
                | x :: xs, y :: ys ->
                    if x = y then first_diff (i + 1) xs ys
                    else
                      Printf.sprintf "position %d: multi %s, solo %s" i x y
                | x :: _, [] -> Printf.sprintf "position %d: multi %s, solo (end)" i x
                | [], y :: _ -> Printf.sprintf "position %d: multi (end), solo %s" i y
              in
              Some
                ( tn,
                  Printf.sprintf
                    "responses diverge between multi-tenant (%d) and solo \
                     (%d) runs: %s"
                    (List.length multi_view) (List.length solo_view)
                    (first_diff 0 multi_view solo_view) ))
          tenant_names
      in
      (* Pool determinism: the same batch across [workers] domains must
         render the same journal bytes (the recorded worker count aside,
         which [Engine.replay_json] normalizes away). *)
      let final_report, pool =
        if workers <= 1 then (engine_report, None)
        else
          let pooled_config = campaign_config ~seed ~count ~workers in
          match Engine.run ~config:pooled_config requests with
          | exception e ->
              ( engine_report,
                Some
                  (Printf.sprintf "pooled run escaped: %s"
                     (Pipelines.classify_exn e)) )
          | pooled ->
              let a = Json.to_string (Engine.replay_json engine_report) in
              let b = Json.to_string (Engine.replay_json pooled) in
              if String.equal a b then (pooled, None)
              else (pooled, Some (first_byte_diff a b))
      in
      {
        sv_seed = seed;
        sv_count = count;
        sv_tenants = tenants;
        sv_workers = workers;
        sv_poison = poison;
        sv_wrong = wrong;
        sv_escaped = None;
        sv_isolation = isolation;
        sv_pool = pool;
        sv_engine = Some final_report;
      }

let summary_lines (r : report) : string list =
  let base =
    Printf.sprintf
      "serve chaos: %d requests, %d tenants, %d workers, %d poison, \
       campaign seed %d"
      r.sv_count r.sv_tenants r.sv_workers r.sv_poison r.sv_seed
  in
  let verdict =
    if ok r then
      [
        "zero wrong answers, zero escaped exceptions, zero isolation \
         leaks, pooled journal byte-identical";
      ]
    else
      List.map
        (fun (id, msg) -> Printf.sprintf "WRONG ANSWER %s: %s" id msg)
        r.sv_wrong
      @ (match r.sv_escaped with
        | Some code -> [ Printf.sprintf "ESCAPED EXCEPTION: %s" code ]
        | None -> [])
      @ List.map
          (fun (tn, msg) -> Printf.sprintf "ISOLATION LEAK %s: %s" tn msg)
          r.sv_isolation
      @ (match r.sv_pool with
        | Some msg -> [ Printf.sprintf "POOL DIVERGENCE: %s" msg ]
        | None -> [])
  in
  base :: verdict
