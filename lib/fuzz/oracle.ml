(** Differential oracle: run one generated program through all the
    pipelines — the five compilation pipelines, the bytecode execution
    tier, and (optionally) the auto-parallelizing pipeline — and compare
    against the unoptimized reference.

    The reference is the direct Polygeist lowering executed with no
    optimization at all — the same baseline
    {!Dcir_core.Pipelines.compare_pipelines} uses. A pipeline {e fails} the
    oracle when it either crashes (any exception out of compile or run) or
    diverges (return value or any array output differs from the reference
    beyond floating-point reassociation tolerance, or has a different
    shape). A trapping reference (integer division by zero — reachable
    only under the {!Gen.trap_cfg} grammar) flips the oracle into
    trap-parity mode: every pipeline must then trap with the same kind,
    and an optimized pipeline that runs to completion has erased a trap.

    Crashes caused by the frontend rejecting the program (lex / parse /
    sema / lowering errors) are flagged [f_invalid]: the generator never
    produces such programs, but the shrinker can, and must not count them
    as reproducing a failure. *)

module Pipelines = Dcir_core.Pipelines
module Diag = Dcir_support.Diagnostics
module Value = Dcir_machine.Value
module Budget = Dcir_resilience.Budget

type failure_kind =
  | Crash of string  (** exception out of compile or run *)
  | Divergence of string  (** outputs disagree with the reference *)

type failure = {
  f_pipeline : string;  (** pipeline name, or ["reference"] *)
  f_kind : failure_kind;
  f_invalid : bool;
      (** the crash was the frontend rejecting the program — an invalid
          input, not a pipeline bug *)
}

let failure_str (f : failure) : string =
  match f.f_kind with
  | Crash msg -> Printf.sprintf "%s: crash: %s" f.f_pipeline msg
  | Divergence msg -> Printf.sprintf "%s: divergence: %s" f.f_pipeline msg

let describe_exn (e : exn) : string =
  match e with
  | Diag.Error d -> Diag.to_string d
  | Pipelines.Pipeline_error msg -> "pipeline error: " ^ Diag.one_line msg
  | Failure msg -> "failure: " ^ Diag.one_line msg
  | e -> Printexc.to_string e

(* A frontend rejection means the *program* is invalid, not that a
   pipeline is buggy. The reference path raises the frontend exceptions
   directly; the pipelines wrap them in Diag.Error with phase Frontend. *)
let is_frontend_reject (e : exn) : bool =
  match e with
  | Diag.Error { Diag.phase = Diag.Frontend; _ }
  | Dcir_cfront.C_lexer.Lex_error _
  | Dcir_cfront.C_parser.Parse_error _
  | Dcir_cfront.C_sema.Sema_error _
  | Dcir_cfront.Polygeist.Lower_error _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Trap parity.

   Traps are defined behaviour in this machine: an integer division or
   remainder by zero stops execution, in every dialect — the mini-MLIR
   interpreter and the SDFG tasklet evaluator raise [Trap], the symbolic
   expression evaluator (interstate conditions, memlet subsets) raises
   [Invalid_argument]. When the unoptimized reference traps, a pipeline
   agrees with it by trapping with the same kind; it fails the oracle by
   running to completion (an optimization deleted or bypassed the trap) or
   by trapping with a different kind. Which partial outputs were written
   before the trap is deliberately not part of the contract: passes may
   legally reorder independent work around a trapping op. Division and
   remainder share one kind, since CSE/LCM may legally change which of two
   same-divisor ops fires first. *)

type trap_kind = Div_by_zero

let trap_kind_name = function Div_by_zero -> "division/remainder by zero"

let contains_substring (msg : string) (sub : string) : bool =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

let trap_kind_of_exn (e : exn) : trap_kind option =
  let classify msg =
    if
      contains_substring msg "division by zero"
      || contains_substring msg "remainder by zero"
      || contains_substring msg "modulo by zero"
    then Some Div_by_zero
    else None
  in
  match e with
  | Dcir_mlir.Interp.Trap msg | Dcir_sdfg.Interp.Trap msg
  | Invalid_argument msg ->
      classify msg
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Output comparison (shape-safe; rtol matches compare_pipelines) *)

let rtol = 1e-6

let divergence (reference : Pipelines.run_result) (r : Pipelines.run_result) :
    string option =
  match (r.return_value, reference.return_value) with
  | Some a, Some b when not (Value.close ~rtol a b) ->
      Some
        (Printf.sprintf "return value %s, reference returned %s"
           (Value.to_string a) (Value.to_string b))
  | Some _, None -> Some "returned a value, reference returned none"
  | None, Some _ -> Some "returned no value, reference returned one"
  | _ ->
      let ref_outs = reference.outputs and outs = r.outputs in
      if List.map fst outs <> List.map fst ref_outs then
        Some "array outputs cover different argument positions"
      else
        List.fold_left2
          (fun acc (pos, xs) (_, ys) ->
            match acc with
            | Some _ -> acc
            | None ->
                if Array.length xs <> Array.length ys then
                  Some
                    (Printf.sprintf
                       "output arg %d has %d elements, reference has %d" pos
                       (Array.length xs) (Array.length ys))
                else
                  let bad = ref None in
                  Array.iteri
                    (fun i x ->
                      if !bad = None && not (Value.close ~rtol x ys.(i)) then
                        bad :=
                          Some
                            (Printf.sprintf
                               "output arg %d differs at flat index %d: %s, \
                                reference %s"
                               pos i (Value.to_string x)
                               (Value.to_string ys.(i))))
                    xs;
                  !bad)
          None outs ref_outs

(* ------------------------------------------------------------------ *)

let crash_failure (pipeline : string) (e : exn) : failure =
  { f_pipeline = pipeline; f_kind = Crash (describe_exn e);
    f_invalid = is_frontend_reject e }

(* ------------------------------------------------------------------ *)
(* Sixth pipeline: dcir with loop→map auto-parallelization. Checked two
   ways — the converted program must still agree with the reference (within
   rtol, like any pipeline), and its parallel execution must be
   BIT-IDENTICAL to its own serial execution: same output bits, same trap
   behaviour, same value of every machine metric. *)

let bits_equal (a : Value.t) (b : Value.t) : bool =
  match (a, b) with
  | Value.VFloat x, Value.VFloat y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Value.VInt x, Value.VInt y -> x = y
  | _ -> false

let bitwise_divergence ~(what : string) (a : Pipelines.run_result)
    (b : Pipelines.run_result) : string option =
  if
    not
      (match (a.return_value, b.return_value) with
      | Some x, Some y -> bits_equal x y
      | None, None -> true
      | _ -> false)
  then Some (Printf.sprintf "return value differs between %s" what)
  else if
    not
      (List.length a.outputs = List.length b.outputs
      && List.for_all2
           (fun (i, xs) (j, ys) ->
             i = j
             && Array.length xs = Array.length ys
             && Array.for_all2 bits_equal xs ys)
           a.outputs b.outputs)
  then Some (Printf.sprintf "array outputs differ bitwise between %s" what)
  else if
    not (Dcir_machine.Metrics.equal a.metrics b.metrics)
  then
    Some
      (Printf.sprintf
         "machine metrics differ between %s \
          (%.0f cycles / %d loads vs %.0f cycles / %d loads)"
         what a.metrics.cycles a.metrics.loads b.metrics.cycles
         b.metrics.loads)
  else None

let serial_par_divergence (serial : Pipelines.run_result)
    (par : Pipelines.run_result) : string option =
  bitwise_divergence ~what:"serial and parallel runs" serial par

let autopar_failures ~(checked : bool) ?reproducer_dir ~(jobs : int)
    (case : Gen.case) (ref_r : Pipelines.run_result) : failure list =
  match
    try
      let compiled =
        Pipelines.compile ~checked ?reproducer_dir ~autopar:true
          Pipelines.Dcir ~src:case.src ~entry:case.entry
      in
      let serial = Pipelines.run compiled ~entry:case.entry (case.args ()) in
      let par =
        Pipelines.run ~jobs compiled ~entry:case.entry (case.args ())
      in
      Ok (serial, par)
    with e -> Error e
  with
  | Error e -> [ crash_failure "dcir-autopar" e ]
  | Ok (serial, par) ->
      (match divergence ref_r serial with
      | Some msg ->
          [ { f_pipeline = "dcir-autopar"; f_kind = Divergence msg;
              f_invalid = false } ]
      | None -> [])
      @ (match serial_par_divergence serial par with
        | Some msg ->
            [ { f_pipeline = "dcir-autopar-par"; f_kind = Divergence msg;
                f_invalid = false } ]
        | None -> [])

(* ------------------------------------------------------------------ *)
(* Seventh pipeline: the bytecode execution tier. Checked two ways — the
   bytecode run must still agree with the reference (within rtol, like
   any pipeline), and it must be BIT-IDENTICAL to the compiled-plan tier
   on the same artifact: same output bits, same trap behaviour, same
   value of every machine metric. The tiers only differ in host-side
   dispatch, so any divergence at all is a lowering or VM bug. *)

let bytecode_failures ~(checked : bool) ?reproducer_dir (case : Gen.case)
    (ref_r : Pipelines.run_result) : failure list =
  match
    try
      let compiled =
        Pipelines.compile ~checked ?reproducer_dir Pipelines.Dcir
          ~src:case.src ~entry:case.entry
      in
      let plan =
        Pipelines.run ~interp_mode:`Compiled compiled ~entry:case.entry
          (case.args ())
      in
      let byte =
        Pipelines.run ~interp_mode:`Bytecode compiled ~entry:case.entry
          (case.args ())
      in
      Ok (plan, byte)
    with e -> Error e
  with
  | Error e -> [ crash_failure "dcir-bytecode" e ]
  | Ok (plan, byte) ->
      (match divergence ref_r byte with
      | Some msg ->
          [ { f_pipeline = "dcir-bytecode"; f_kind = Divergence msg;
              f_invalid = false } ]
      | None -> [])
      @ (match
           bitwise_divergence ~what:"plan and bytecode tiers" plan byte
         with
        | Some msg ->
            [ { f_pipeline = "dcir-bytecode-vs-plan";
                f_kind = Divergence msg; f_invalid = false } ]
        | None -> [])

(** Run [case] through the reference and all five pipelines; the empty
    list means every pipeline agreed with the unoptimized reference.
    [~checked] forwards to {!Pipelines.compile} (snapshot / re-verify /
    rollback around every optimization pass). [~parallel] adds the sixth,
    auto-parallelizing pipeline, whose [~jobs]-domain execution must match
    its serial execution bit-for-bit. The seventh pipeline — the bytecode
    execution tier on the dcir artifact — always runs, and must match the
    compiled-plan tier bit-for-bit (outputs, traps, every machine metric).
    [~limits] caps every compile (fuel) and run (steps, allocations) with
    a fresh budget; an exhausted budget surfaces as a crash failure naming
    the exceeded ceiling. *)
let check ?(checked = false) ?(parallel = false) ?(jobs = 3)
    ?(limits = Budget.default) ?reproducer_dir (case : Gen.case) :
    failure list =
  let fresh_budget () = Budget.create ~limits () in
  let reference =
    try
      let m = Dcir_cfront.Polygeist.compile case.src in
      Ok
        (Pipelines.run ~budget:(fresh_budget ()) (Pipelines.CMlir m)
           ~entry:case.entry (case.args ()))
    with e -> Error e
  in
  match reference with
  | Error e -> (
      match trap_kind_of_exn e with
      | None -> [ crash_failure "reference" e ]
      | Some k ->
          (* Trap-parity mode: the reference trapped, so every pipeline
             must trap with the same kind. The serial-vs-parallel
             bit-comparison of the autopar pipeline is skipped here — the
             partial outputs at a trap depend on domain scheduling — but
             the trap itself must still fire. *)
          let must_trap name run =
            match (try Ok (run ()) with e -> Error e) with
            | Ok (_ : Pipelines.run_result) ->
                Some
                  { f_pipeline = name;
                    f_kind =
                      Divergence
                        (Printf.sprintf
                           "ran to completion, reference trapped (%s)"
                           (trap_kind_name k));
                    f_invalid = false }
            | Error e' when trap_kind_of_exn e' = Some k -> None
            | Error e' -> Some (crash_failure name e')
          in
          List.filter_map
            (fun kind ->
              must_trap (Pipelines.kind_name kind) (fun () ->
                  let compiled =
                    Pipelines.compile ~checked ~budget:(fresh_budget ())
                      ?reproducer_dir kind ~src:case.src ~entry:case.entry
                  in
                  Pipelines.run ~budget:(fresh_budget ()) compiled
                    ~entry:case.entry (case.args ())))
            Pipelines.all_kinds
          @ Option.to_list
              (must_trap "dcir-bytecode" (fun () ->
                   let compiled =
                     Pipelines.compile ~checked ?reproducer_dir
                       Pipelines.Dcir ~src:case.src ~entry:case.entry
                   in
                   Pipelines.run ~interp_mode:`Bytecode compiled
                     ~entry:case.entry (case.args ())))
          @
          if parallel then
            Option.to_list
              (must_trap "dcir-autopar" (fun () ->
                   let compiled =
                     Pipelines.compile ~checked ?reproducer_dir ~autopar:true
                       Pipelines.Dcir ~src:case.src ~entry:case.entry
                   in
                   Pipelines.run compiled ~entry:case.entry (case.args ())))
          else [])
  | Ok ref_r ->
      List.filter_map
        (fun kind ->
          let name = Pipelines.kind_name kind in
          match
            try
              let compiled =
                Pipelines.compile ~checked ~budget:(fresh_budget ())
                  ?reproducer_dir kind ~src:case.src ~entry:case.entry
              in
              Ok
                (Pipelines.run ~budget:(fresh_budget ()) compiled
                   ~entry:case.entry (case.args ()))
            with e -> Error e
          with
          | Error e -> Some (crash_failure name e)
          | Ok r -> (
              match divergence ref_r r with
              | Some msg ->
                  Some
                    { f_pipeline = name; f_kind = Divergence msg;
                      f_invalid = false }
              | None -> None))
        Pipelines.all_kinds
      @ bytecode_failures ~checked ?reproducer_dir case ref_r
      @
      if parallel then
        autopar_failures ~checked ?reproducer_dir ~jobs case ref_r
      else []
