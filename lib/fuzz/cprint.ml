(** Render a {!Dcir_cfront.C_ast} program back to C source the repo's own
    lexer/parser accept — the generator and the shrinker both work on ASTs
    and go through the full frontend (lexer, parser, sema, lowering), so
    every fuzz case exercises the real compile path end to end.

    Expressions are parenthesized aggressively; the parser normalizes the
    extra parentheses away. Float literals are forced to contain a ['.'] or
    exponent so they lex as [FLOAT_LIT], not [INT_LIT]. *)

open Dcir_cfront.C_ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | LAnd -> "&&"
  | LOr -> "||"

let assign_str = function
  | OpAssign -> "="
  | OpAddAssign -> "+="
  | OpSubAssign -> "-="
  | OpMulAssign -> "*="
  | OpDivAssign -> "/="

let float_lit (f : float) : string =
  let s = Printf.sprintf "%.17g" (Float.abs f) in
  let s =
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  in
  if f < 0.0 then "(-" ^ s ^ ")" else s

let rec cty_base = function
  | TVoid -> "void"
  | TInt -> "int"
  | TFloat -> "float"
  | TDouble -> "double"
  | TPtr t -> cty_base t ^ "*"
  | TArr (t, _) -> cty_base t

let cty_dims = function
  | TArr (_, dims) ->
      String.concat "" (List.map (fun d -> Printf.sprintf "[%d]" d) dims)
  | _ -> ""

let rec expr_str (e : expr) : string =
  match e with
  | EInt n -> if n < 0 then Printf.sprintf "(-%d)" (-n) else string_of_int n
  | EFloat f -> float_lit f
  | EVar v -> v
  | EIndex (base, idxs) ->
      expr_str base
      ^ String.concat ""
          (List.map (fun i -> "[" ^ expr_str i ^ "]") idxs)
  | EUnop (Neg, e) -> "(-" ^ expr_str e ^ ")"
  | EUnop (Not, e) -> "(!" ^ expr_str e ^ ")"
  | EBinop (op, a, b) ->
      "(" ^ expr_str a ^ " " ^ binop_str op ^ " " ^ expr_str b ^ ")"
  | ECond (c, a, b) ->
      "(" ^ expr_str c ^ " ? " ^ expr_str a ^ " : " ^ expr_str b ^ ")"
  | ECall (name, args) ->
      name ^ "(" ^ String.concat ", " (List.map expr_str args) ^ ")"
  | ECast (ty, e) -> "(" ^ cty_base ty ^ ")" ^ "(" ^ expr_str e ^ ")"
  | EMalloc (elem, count) ->
      Printf.sprintf "(%s*)malloc(%s * sizeof(%s))" (cty_base elem)
        (expr_str count) (cty_base elem)

let rec stmt_lines (indent : string) (s : stmt) : string list =
  match s with
  | SDecl (ty, name, init) ->
      [
        indent ^ cty_base ty ^ " " ^ name ^ cty_dims ty
        ^ (match init with Some e -> " = " ^ expr_str e | None -> "")
        ^ ";";
      ]
  | SAssign (lhs, op, rhs) ->
      [ indent ^ expr_str lhs ^ " " ^ assign_str op ^ " " ^ expr_str rhs ^ ";" ]
  | SExpr e -> [ indent ^ expr_str e ^ ";" ]
  | SIf (c, t, []) ->
      (indent ^ "if (" ^ expr_str c ^ ") {")
      :: block_lines (indent ^ "  ") t
      @ [ indent ^ "}" ]
  | SIf (c, t, f) ->
      (indent ^ "if (" ^ expr_str c ^ ") {")
      :: block_lines (indent ^ "  ") t
      @ [ indent ^ "} else {" ]
      @ block_lines (indent ^ "  ") f
      @ [ indent ^ "}" ]
  | SFor (hdr, body) ->
      let update =
        if hdr.step = 1 then hdr.var ^ "++"
        else if hdr.step = -1 then hdr.var ^ "--"
        else if hdr.step > 0 then Printf.sprintf "%s += %d" hdr.var hdr.step
        else Printf.sprintf "%s -= %d" hdr.var (-hdr.step)
      in
      (indent
      ^ Printf.sprintf "for (int %s = %s; %s %s %s; %s) {" hdr.var
          (expr_str hdr.init) hdr.var (binop_str hdr.cmp) (expr_str hdr.bound)
          update)
      :: block_lines (indent ^ "  ") body
      @ [ indent ^ "}" ]
  | SWhile (c, body) ->
      (indent ^ "while (" ^ expr_str c ^ ") {")
      :: block_lines (indent ^ "  ") body
      @ [ indent ^ "}" ]
  | SReturn None -> [ indent ^ "return;" ]
  | SReturn (Some e) -> [ indent ^ "return " ^ expr_str e ^ ";" ]
  | SFree name -> [ indent ^ "free(" ^ name ^ ");" ]
  | SBlock ss ->
      (indent ^ "{") :: block_lines (indent ^ "  ") ss @ [ indent ^ "}" ]

and block_lines (indent : string) (ss : stmt list) : string list =
  List.concat_map (stmt_lines indent) ss

let func_str (f : func_def) : string =
  let params =
    match f.params with
    | [] -> "void"
    | ps ->
        String.concat ", "
          (List.map
             (fun (name, ty) -> cty_base ty ^ " " ^ name ^ cty_dims ty)
             ps)
  in
  String.concat "\n"
    ((cty_base f.ret ^ " " ^ f.name ^ "(" ^ params ^ ") {")
     :: block_lines "  " f.body
    @ [ "}" ])

let program_str (p : program) : string =
  String.concat "\n\n" (List.map func_str p.funcs) ^ "\n"
