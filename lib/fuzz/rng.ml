(** Deterministic pseudo-random source for the fuzzer: splitmix64.

    Self-contained (no dependency on [Random], whose sequence is not
    guaranteed stable across OCaml releases) so a seed printed in a failure
    report regenerates the identical program forever. *)

type t = { mutable state : int64 }

let make (seed : int) : t = { state = Int64.of_int seed }

let next (t : t) : int64 =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform int in [\[0, bound)]; 0 when [bound <= 0]. *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then 0
  else
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

(** Int in [\[lo, hi]] inclusive. *)
let range (t : t) (lo : int) (hi : int) : int = lo + int t (hi - lo + 1)

let pick (t : t) (xs : 'a list) : 'a = List.nth xs (int t (List.length xs))

(** True once in [n] draws. *)
let one_in (t : t) (n : int) : bool = int t n = 0

(** Uniform float in [\[0, 1)]. *)
let float (t : t) : float =
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

(** A stream independent of [t], keyed by [tag] — used to derive the
    per-case seed from the campaign seed. *)
let derive (seed : int) (tag : int) : int =
  let r = make seed in
  let mix = ref 0 in
  for _ = 0 to 1 do
    mix := Int64.to_int (Int64.shift_right_logical (next r) 2)
  done;
  let r2 = make (!mix lxor (tag * 0x9E3779B9)) in
  Int64.to_int (Int64.shift_right_logical (next r2) 2)
