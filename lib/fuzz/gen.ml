(** Seeded, size-bounded random program generator.

    Emits well-typed programs in the supported C subset — double arrays
    (optionally with a symbolic size parameter [n]), float/int scalar
    parameters, canonical ascending and descending [for] loops, [if]/[else]
    branches, compound assignments, ternaries, casts, and libm calls — i.e.
    exactly the shapes {!Dcir_cfront.Polygeist.compile} accepts and all
    five pipelines must agree on (MLIR-Smith's recipe over our
    [scf]/[arith]/[memref]/[math] core, see PAPERS.md).

    Generated programs are safe by construction:
    - array subscripts are provably in bounds (loop bounds are tied to
      array dimensions; the symbolic bound [n] is bound at run time to the
      smallest array dimension);
    - every floating-point division's denominator is [fabs(e) + 1.0] or a
      nonzero constant; [log]/[sqrt] arguments are forced nonnegative;
    - loops have constant or [n]-bounded trip counts, so every program
      terminates.

    With [cfg.traps] set the generator deliberately abandons two of those
    guarantees — [n] may be bound to 0 (zero-trip loops), constant loop
    ranges may be degenerate, and integer divisions may divide by zero on
    some executions. Traps are defined behaviour (the machine stops with a
    trap in every dialect), so the differential oracle then checks trap
    parity instead of output equality; what it must never see is an
    optimized pipeline trapping where the reference ran clean, which is
    exactly the speculation-bug signal this grammar exists to catch.

    The same seed always regenerates the identical program and argument
    values ({!Rng} is a fixed splitmix64, not [Random]). *)

open Dcir_cfront.C_ast
module Pipelines = Dcir_core.Pipelines

type cfg = {
  max_arrays : int;  (** array parameters (at least 1 is generated) *)
  max_dim : int;  (** upper bound on a static array dimension *)
  max_stmts : int;  (** statements per block (at least 1) *)
  max_depth : int;  (** loop/branch nesting depth *)
  traps : bool;
      (** trap grammar: zero-trip loops (the symbolic bound [n] bound to 0
          at run time, degenerate constant ranges) and integer divisions
          whose divisor can be zero on some executions. Off by default:
          the plain campaigns then keep their historical programs. *)
}

let default_cfg =
  { max_arrays = 3; max_dim = 6; max_stmts = 4; max_depth = 3; traps = false }

(** The trap-hunting campaign configuration: same size bounds, plus the
    zero-trip / zero-divisor productions that make speculation bugs in the
    control-centric passes observable (see ISSUE 8 / MLIR-Smith on
    grammar-coverage gaps). *)
let trap_cfg = { default_cfg with traps = true }

type case = {
  seed : int;
  prog : program;
  src : string;
  entry : string;
  args : unit -> Pipelines.arg list;
      (** deterministic fresh argument values (same per call) *)
}

(* ------------------------------------------------------------------ *)
(* Generator state *)

type gstate = {
  rng : Rng.t;
  cfg : cfg;
  arrays : (string * int list) list;  (** array param name -> dims *)
  n_val : int option;  (** runtime value of the symbolic size [n] *)
  mutable scalars : string list;  (** double scalars in scope *)
  mutable loops : (string * expr * int) list;
      (** in-scope loop var -> (exclusive bound expr, bound value) *)
  mutable fresh : int;
}

let fresh_name (g : gstate) (prefix : string) : string =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s%d" prefix g.fresh

(* ------------------------------------------------------------------ *)
(* Expressions *)

let const_float (g : gstate) : expr =
  (* Small, short-decimal constants keep outputs numerically tame and the
     rendered source readable. *)
  let v = float_of_int (Rng.range g.rng (-20) 20) /. 8.0 in
  EFloat v

(* An index expression provably in [0, d). *)
let index_expr (g : gstate) (d : int) : expr =
  let usable = List.filter (fun (_, _, bv) -> bv <= d) g.loops in
  if usable = [] || Rng.one_in g.rng 4 then EInt (Rng.int g.rng d)
  else
    let v, bound_expr, _ = Rng.pick g.rng usable in
    if Rng.one_in g.rng 3 then
      (* reversed: (bound - 1) - v, still in [0, bound). *)
      EBinop (Sub, EBinop (Sub, bound_expr, EInt 1), EVar v)
    else EVar v

let array_read (g : gstate) : expr option =
  match g.arrays with
  | [] -> None
  | arrays ->
      let name, dims = Rng.pick g.rng arrays in
      Some (EIndex (EVar name, List.map (index_expr g) dims))

let rec int_expr (g : gstate) (depth : int) : expr =
  let atoms =
    [ (fun () -> EInt (Rng.range g.rng 0 7)) ]
    @ List.map (fun (v, _, _) () -> EVar v) g.loops
    @ match g.n_val with Some _ -> [ (fun () -> EVar "n") ] | None -> []
  in
  if depth <= 0 || Rng.one_in g.rng 2 then (Rng.pick g.rng atoms) ()
  else
    let a = int_expr g (depth - 1) and b = int_expr g (depth - 1) in
    match Rng.int g.rng 4 with
    | 0 -> EBinop (Add, a, b)
    | 1 -> EBinop (Sub, a, b)
    | 2 -> EBinop (Mul, a, b)
    | _ -> EBinop (Mod, a, EInt (Rng.range g.rng 2 7))

(* Trap grammar: an integer divisor that is zero on some (but usually not
   all) executions — the symbolic bound [n] (bound to 0 at run time in a
   third of the [traps] programs), or a loop-variable expression that hits
   zero on some iteration. [None] when neither is in scope. *)
let trap_divisor (g : gstate) : expr option =
  let choices =
    (* [n] is weighted: it is the loop-invariant divisor, the one a broken
       LICM/LCM hoists out of an [n]-bounded (possibly zero-trip) loop. *)
    (match g.n_val with
    | Some _ -> [ (fun () -> EVar "n"); (fun () -> EVar "n"); (fun () -> EVar "n") ]
    | None -> [])
    @ List.concat_map
        (fun (v, _, _) ->
          [
            (* zero when the loop reaches v = c *)
            (fun () -> EBinop (Sub, EVar v, EInt (Rng.range g.rng 1 4)));
            (* zero whenever v is a multiple of k *)
            (fun () -> EBinop (Mod, EVar v, EInt (Rng.range g.rng 2 5)));
            (* never zero: exercises must-not-hoist without trapping *)
            (fun () -> EBinop (Add, EVar v, EInt 1));
          ])
        g.loops
  in
  if choices = [] then None else Some ((Rng.pick g.rng choices) ())

(* A dividend that neither is the literal 0 nor syntactically equals the
   divisor: the symbolic dialect folds [0/e -> 0] and [e/e -> 1] (symbols
   are assumed nonnegative there), which would erase at compile time a trap
   the unoptimized reference executes — a semantics gap of the symbolic
   subset, not a pass bug, so the generator stays out of it. *)
let trap_dividend (g : gstate) (divisor : expr) : expr =
  let base =
    match
      (match g.n_val with Some _ -> [ (fun () -> EVar "n") ] | None -> [])
      @ List.map (fun (v, _, _) () -> EVar v) g.loops
    with
    | [] -> EInt (Rng.range g.rng 1 7)
    | vars ->
        if Rng.one_in g.rng 3 then EInt (Rng.range g.rng 1 7)
        else EBinop (Add, (Rng.pick g.rng vars) (), EInt (Rng.range g.rng 1 7))
  in
  if base = divisor then EBinop (Add, base, EInt 1) else base

let cond_expr (g : gstate) (float_operand : gstate -> int -> expr) : expr =
  let cmp = Rng.pick g.rng [ Lt; Le; Gt; Ge; Eq; Ne ] in
  if Rng.one_in g.rng 2 then EBinop (cmp, int_expr g 1, int_expr g 1)
  else
    (* Eq/Ne on derived floats is brittle under reassociation — compare
       with an ordering instead. *)
    let cmp = match cmp with Eq | Ne -> Lt | c -> c in
    EBinop (cmp, float_operand g 1, float_operand g 1)

(* Trap grammar: a possibly-trapping integer division or remainder, as a
   float term. Only {!array_store} splices these in: parameter arrays are
   outputs, so no dialect may discard the computation as dead — a local
   scalar would let the data-centric dead-dataflow pass (which, like DaCe,
   removes every unobservable computation) erase a trap the reference
   executes. *)
let trap_division (g : gstate) : expr option =
  match trap_divisor g with
  | Some d ->
      let op = if Rng.one_in g.rng 3 then Mod else Div in
      Some (ECast (TDouble, EBinop (op, trap_dividend g d, d)))
  | None -> None

let rec float_expr (g : gstate) (depth : int) : expr =
  let atom () =
    let choices =
      [ (fun () -> const_float g) ]
      @ (if g.scalars = [] then []
         else [ (fun () -> EVar (Rng.pick g.rng g.scalars)) ])
      @
      match array_read g with
      | Some e -> [ (fun () -> e); (fun () -> e) ]
      | None -> []
    in
    (Rng.pick g.rng choices) ()
  in
  if depth <= 0 || Rng.one_in g.rng 3 then atom ()
  else
    match Rng.int g.rng 8 with
    | 0 -> EBinop (Add, float_expr g (depth - 1), float_expr g (depth - 1))
    | 1 -> EBinop (Sub, float_expr g (depth - 1), float_expr g (depth - 1))
    | 2 -> EBinop (Mul, float_expr g (depth - 1), float_expr g (depth - 1))
    | 3 ->
        (* Safe division: denominator fabs(e) + 1.0 >= 1. *)
        EBinop
          ( Div,
            float_expr g (depth - 1),
            EBinop
              (Add, ECall ("fabs", [ float_expr g (depth - 1) ]), EFloat 1.0) )
    | 4 -> (
        match Rng.int g.rng 5 with
        | 0 -> ECall ("sin", [ float_expr g (depth - 1) ])
        | 1 -> ECall ("cos", [ float_expr g (depth - 1) ])
        | 2 -> ECall ("tanh", [ float_expr g (depth - 1) ])
        | 3 -> ECall ("sqrt", [ ECall ("fabs", [ float_expr g (depth - 1) ]) ])
        | _ ->
            ECall
              ( "log",
                [
                  EBinop
                    ( Add,
                      ECall ("fabs", [ float_expr g (depth - 1) ]),
                      EFloat 1.0 );
                ] ))
    | 5 -> ECond (cond_expr g float_expr, float_expr g (depth - 1), float_expr g (depth - 1))
    | 6 -> ECast (TDouble, int_expr g 1)
    | _ -> EUnop (Neg, float_expr g (depth - 1))

(* ------------------------------------------------------------------ *)
(* Statements *)

let array_store (g : gstate) : stmt option =
  match g.arrays with
  | [] -> None
  | arrays ->
      let name, dims = Rng.pick g.rng arrays in
      let lhs = EIndex (EVar name, List.map (index_expr g) dims) in
      let op =
        Rng.pick g.rng
          [ OpAssign; OpAssign; OpAddAssign; OpSubAssign; OpMulAssign ]
      in
      let rhs = float_expr g 2 in
      let rhs =
        if g.cfg.traps && Rng.one_in g.rng 2 then
          match trap_division g with
          | Some d -> EBinop (Add, rhs, d)
          | None -> rhs
        else rhs
      in
      Some (SAssign (lhs, op, rhs))

let scalar_assign (g : gstate) : stmt option =
  match g.scalars with
  | [] -> None
  | scalars ->
      let v = Rng.pick g.rng scalars in
      let op = Rng.pick g.rng [ OpAssign; OpAddAssign; OpMulAssign ] in
      Some (SAssign (EVar v, op, float_expr g 2))

(* A canonical for-loop header whose trip space is tied to an array
   dimension (or the symbolic bound n), so body subscripts stay in
   bounds. *)
let loop_header (g : gstate) : for_header * expr * int =
  let bounds =
    List.concat_map (fun (_, dims) -> List.map (fun d -> (EInt d, d)) dims)
      g.arrays
    @
    (* Under the trap grammar [n]-bounded loops are weighted: they are the
       possibly-zero-trip loops a broken pass speculates out of. *)
    match g.n_val with
    | Some nv when g.cfg.traps -> [ (EVar "n", nv); (EVar "n", nv); (EVar "n", nv) ]
    | Some nv -> [ (EVar "n", nv) ]
    | None -> []
  in
  let bound_expr, bound_val =
    (* Trap grammar: degenerate constant ranges — the loop body (and any
       trapping op inside it) must never execute. *)
    if g.cfg.traps && Rng.one_in g.rng 5 then (EInt 0, 0)
    else Rng.pick g.rng bounds
  in
  let var = fresh_name g "i" in
  if Rng.one_in g.rng 3 then
    (* Descending: for (int i = bound-1; i >= 0; i--). *)
    ( {
        var;
        init = EBinop (Sub, bound_expr, EInt 1);
        cmp = Ge;
        bound = EInt 0;
        step = -1;
      },
      bound_expr,
      bound_val )
  else ({ var; init = EInt 0; cmp = Lt; bound = bound_expr; step = 1 }, bound_expr, bound_val)

(* Trap grammar: the hoist bait — an [n]-bounded loop whose body stores an
   accumulation of a loop-invariant division by [n]. With n = 0 at run time
   the reference never executes the division; any pass that speculates it
   above the loop header (LICM without a trip-count proof, an unguarded
   LCM insertion) turns a clean run into a trap. With n > 0 the same shape
   checks that legitimate hoisting preserves values. *)
let trap_bait_loop (g : gstate) : stmt option =
  match (g.arrays, g.n_val) with
  | [], _ | _, None -> None
  | arrays, Some nv ->
      let divisor = EVar "n" in
      let op = if Rng.one_in g.rng 3 then Mod else Div in
      let div =
        ECast (TDouble, EBinop (op, trap_dividend g divisor, divisor))
      in
      let var = fresh_name g "i" in
      let saved_loops = g.loops in
      g.loops <- (var, EVar "n", nv) :: g.loops;
      let name, dims = Rng.pick g.rng arrays in
      let lhs = EIndex (EVar name, List.map (index_expr g) dims) in
      let body = [ SAssign (lhs, OpAddAssign, EBinop (Add, float_expr g 1, div)) ] in
      g.loops <- saved_loops;
      Some
        (SFor ({ var; init = EInt 0; cmp = Lt; bound = EVar "n"; step = 1 }, body))

let rec gen_stmt (g : gstate) (depth : int) : stmt option =
  if g.cfg.traps && g.n_val <> None && Rng.one_in g.rng 8 then
    trap_bait_loop g
  else
  let roll = Rng.int g.rng 10 in
  if roll < 3 then array_store g
  else if roll < 5 then scalar_assign g
  else if roll < 6 then begin
    let name = fresh_name g "t" in
    let s = SDecl (TDouble, name, Some (float_expr g 2)) in
    g.scalars <- name :: g.scalars;
    Some s
  end
  else if roll < 8 && depth < g.cfg.max_depth then begin
    let hdr, bound_expr, bound_val = loop_header g in
    let saved_loops = g.loops and saved_scalars = g.scalars in
    g.loops <- (hdr.var, bound_expr, bound_val) :: g.loops;
    let body = gen_block g (depth + 1) in
    g.loops <- saved_loops;
    g.scalars <- saved_scalars;
    Some (SFor (hdr, body))
  end
  else if depth < g.cfg.max_depth then begin
    let cond = cond_expr g float_expr in
    let saved = g.scalars in
    let then_ = gen_block g (depth + 1) in
    g.scalars <- saved;
    let else_ = if Rng.one_in g.rng 2 then [] else gen_block g (depth + 1) in
    g.scalars <- saved;
    Some (SIf (cond, then_, else_))
  end
  else array_store g

and gen_block (g : gstate) (depth : int) : stmt list =
  let n = 1 + Rng.int g.rng g.cfg.max_stmts in
  let stmts = List.filter_map (fun _ -> gen_stmt g depth) (List.init n Fun.id) in
  if stmts <> [] then stmts
  else
    match array_store g with
    | Some s -> [ s ]
    | None -> [ SDecl (TDouble, fresh_name g "t", Some (const_float g)) ]

(* Nested loops writing an accumulation into every element of [arr] — a
   guaranteed observable effect so no generated program is vacuous. *)
let sink_loops (g : gstate) ((arr, dims) : string * int list) : stmt =
  let rec build (dims : int list) (idxs : expr list) : stmt =
    match dims with
    | [] -> assert false
    | [ d ] ->
        let var = fresh_name g "s" in
        let lhs = EIndex (EVar arr, List.rev (EVar var :: idxs)) in
        SFor
          ( { var; init = EInt 0; cmp = Lt; bound = EInt d; step = 1 },
            [ SAssign (lhs, OpAddAssign, float_expr g 1) ] )
    | d :: rest ->
        let var = fresh_name g "s" in
        SFor
          ( { var; init = EInt 0; cmp = Lt; bound = EInt d; step = 1 },
            [ build rest (EVar var :: idxs) ] )
  in
  build dims []

(* ------------------------------------------------------------------ *)
(* Whole programs *)

let generate ?(cfg = default_cfg) (seed : int) : case =
  let rng = Rng.make seed in
  (* Parameters. *)
  let n_arrays = 1 + Rng.int rng cfg.max_arrays in
  let arrays =
    List.init n_arrays (fun i ->
        let name = String.make 1 (Char.chr (Char.code 'A' + i)) in
        let rank = if Rng.one_in rng 2 then 2 else 1 in
        let dims = List.init rank (fun _ -> Rng.range rng 2 cfg.max_dim) in
        (name, dims))
  in
  let min_dim =
    List.fold_left
      (fun acc (_, dims) -> List.fold_left min acc dims)
      max_int arrays
  in
  let with_n = Rng.one_in rng 2 in
  let n_val =
    if not with_n then None
      (* Trap grammar: a third of the [n]-programs bind n = 0 at run time,
         so every n-bounded loop is zero-trip and every division by [n]
         would trap — but only if something actually executes it. *)
    else if cfg.traps && Rng.one_in rng 2 then Some 0
    else Some min_dim
  in
  let n_fscalars = Rng.int rng 3 in
  let fscalar_names = [ "alpha"; "beta" ] in
  let fscalars =
    List.init n_fscalars (fun i ->
        (List.nth fscalar_names i, float_of_int (Rng.range rng (-8) 12) /. 4.0))
  in
  let params =
    List.map (fun (name, dims) -> (name, TArr (TDouble, dims))) arrays
    @ (if with_n then [ ("n", TInt) ] else [])
    @ List.map (fun (name, _) -> (name, TDouble)) fscalars
  in
  (* Body. *)
  let g =
    {
      rng;
      cfg;
      arrays;
      n_val;
      scalars = List.map fst fscalars;
      loops = [];
      fresh = 0;
    }
  in
  let body = gen_block g 0 @ [ sink_loops g (List.hd arrays) ] in
  (* Optionally return an accumulator (return must be the final
     statement of the function in this subset). *)
  let ret, body =
    if g.scalars <> [] && Rng.one_in g.rng 3 then
      (TDouble, body @ [ SReturn (Some (EVar (List.hd g.scalars))) ])
    else (TVoid, body)
  in
  let entry = "kernel" in
  let prog = { funcs = [ { name = entry; ret; params; body } ] } in
  let args () =
    List.map
      (fun (name, dims) ->
        let elems = List.fold_left ( * ) 1 dims in
        let key0 = Hashtbl.hash (seed, name) land 0xFFFFFF in
        Pipelines.AFloatArr
          ( Array.init elems (fun i ->
                let x = ((key0 + i) * 1103515245) + 12345 in
                float_of_int (x land 0x3FFFFFFF) /. 1073741824.0),
            Array.of_list dims ) )
      arrays
    @ (match n_val with Some nv -> [ Pipelines.AInt nv ] | None -> [])
    @ List.map (fun (_, v) -> Pipelines.AFloat v) fscalars
  in
  { seed; prog; src = Cprint.program_str prog; entry; args }
