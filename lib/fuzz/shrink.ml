(** Greedy delta-debugging shrinker for failing fuzz cases.

    Works on the entry function's statement list: candidate reductions are
    (a) dropping one statement, (b) replacing a [for] / [if] / block with
    its body (hoisting), and (c) the same reductions applied inside nested
    bodies. The first candidate that still reproduces the failure is
    accepted and shrinking restarts from it; every acceptance strictly
    shrinks the AST, so the loop terminates (a budget bounds the number of
    oracle runs regardless).

    A shrunk program can become invalid (e.g. dropping a declaration whose
    variable is still used) — the frontend then rejects it, which the
    oracle flags [f_invalid]. Such candidates do {e not} count as
    reproducing unless the original failure was itself a frontend
    rejection. *)

module C = Dcir_cfront.C_ast

let set_nth (ss : 'a list) (i : int) (x : 'a) : 'a list =
  List.mapi (fun j s -> if j = i then x else s) ss

let splice_nth (ss : C.stmt list) (i : int) (body : C.stmt list) :
    C.stmt list =
  List.concat (List.mapi (fun j s -> if j = i then body else [ s ]) ss)

(* All one-step reductions of a statement list, most aggressive first. *)
let rec candidates (ss : C.stmt list) : C.stmt list list =
  let removals = List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) ss) ss in
  let hoists =
    List.concat
      (List.mapi
         (fun i s ->
           match s with
           | C.SFor (_, b) | C.SBlock b -> [ splice_nth ss i b ]
           | C.SIf (_, t, f) -> [ splice_nth ss i t; splice_nth ss i f ]
           | _ -> [])
         ss)
  in
  let nested =
    List.concat
      (List.mapi
         (fun i s ->
           match s with
           | C.SFor (h, b) ->
               List.map (fun b' -> set_nth ss i (C.SFor (h, b'))) (candidates b)
           | C.SIf (c, t, f) ->
               List.map (fun t' -> set_nth ss i (C.SIf (c, t', f)))
                 (candidates t)
               @ List.map (fun f' -> set_nth ss i (C.SIf (c, t, f')))
                   (candidates f)
           | C.SBlock b ->
               List.map (fun b' -> set_nth ss i (C.SBlock b')) (candidates b)
           | _ -> [])
         ss)
  in
  removals @ hoists @ nested

(* Rebuild the case around a reduced entry body; parameters (and therefore
   the argument builder) are untouched. *)
let rebuild (case : Gen.case) (body : C.stmt list) : Gen.case =
  match case.prog.funcs with
  | [] -> case
  | f :: rest ->
      let prog = { C.funcs = { f with C.body } :: rest } in
      { case with prog; src = Cprint.program_str prog }

(** Shrink [case], which failed with [orig], to a smaller case that still
    fails. Returns the smallest case found and its failures (the input
    itself if nothing smaller reproduces). [max_attempts] bounds the
    number of oracle runs. *)
let shrink ?(max_attempts = 300) ?(checked = false) ?(parallel = false)
    ?(jobs = 3) (case : Gen.case) (orig : Oracle.failure list) :
    Gen.case * Oracle.failure list =
  let invalid_counts = List.exists (fun f -> f.Oracle.f_invalid) orig in
  let attempts = ref 0 in
  let reproduces (c : Gen.case) : Oracle.failure list option =
    incr attempts;
    match Oracle.check ~checked ~parallel ~jobs c with
    | [] -> None
    | fails
      when (not invalid_counts)
           && List.for_all (fun f -> f.Oracle.f_invalid) fails -> None
    | fails -> Some fails
  in
  let rec go (c : Gen.case) (fails : Oracle.failure list) :
      Gen.case * Oracle.failure list =
    let body =
      match c.Gen.prog.funcs with [] -> [] | f :: _ -> f.C.body
    in
    let rec first = function
      | [] -> (c, fails)
      | body' :: rest ->
          if !attempts >= max_attempts then (c, fails)
          else
            let c' = rebuild c body' in
            (match reproduces c' with
            | Some fails' -> go c' fails'
            | None -> first rest)
    in
    if !attempts >= max_attempts then (c, fails) else first (candidates body)
  in
  go case orig
