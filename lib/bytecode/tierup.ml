(** Deterministic tier-up policy: interpret → plan → bytecode.

    In [`Adaptive] mode every run of an SDFG consults this registry,
    keyed by the program's content digest. A program is promoted to the
    bytecode tier either {e statically} — a saturating bottom-up cost
    estimate in the style of Manticore's [ast-cost.sml] says the program
    is heavy enough that lowering pays for itself on the first run — or
    {e dynamically}, once the cumulative cycles attributed to the digest
    by {!Dcir_obs.Obs.Profile} cross a threshold. Promotion is sticky
    for the registry's lifetime.

    Everything here is a pure function of (program, prior runs in this
    process): no wall-clock, no randomness. Both promotion triggers emit
    a [TIER-UP] event and every adaptive run emits [EXEC-TIER] (from
    [Pipelines]), so two processes replaying the same request sequence
    produce byte-identical event streams — the property the serve
    determinism tests pin down. [Pipelines] resets the registry whenever
    it resets its artifact caches. *)

module Sdfg = Dcir_sdfg.Sdfg
module Expr = Dcir_symbolic.Expr
module Range = Dcir_symbolic.Range
module Events = Dcir_obs.Events
module Json = Dcir_obs.Json
module Profile = Dcir_obs.Obs.Profile

type entry = {
  mutable cycles : float;  (** cumulative observed cycles across runs *)
  mutable runs : int;
  mutable promoted : bool;
}

let registry : (string, entry) Hashtbl.t = Hashtbl.create 32

let reset () : unit = Hashtbl.reset registry

(** Static-cost promotion threshold: programs estimated at or above this
    weight skip the plan tier entirely. *)
let static_threshold = 200

(** Dynamic promotion threshold on cumulative observed cycles. *)
let cycle_threshold = 100_000.0

let entry_of (digest : string) : entry =
  match Hashtbl.find_opt registry digest with
  | Some e -> e
  | None ->
      let e = { cycles = 0.0; runs = 0; promoted = false } in
      Hashtbl.replace registry digest e;
      e

let short (d : string) : string =
  if String.length d > 12 then String.sub d 0 12 else d

(* -- static cost estimate (ast-cost.sml style) ----------------------- *)

let cost_cap = 1_000_000

(* Constant-bound trip counts contribute up to 64 iterations; symbolic
   bounds get a fixed default so the estimate stays input-independent. *)
let est_trips (r : Range.dim) : int =
  match (r.lo, r.hi, r.step) with
  | Expr.Int lo, Expr.Int hi, Expr.Int step when step > 0 ->
      if hi < lo then 0 else min 64 (((hi - lo) / step) + 1)
  | _ -> 16

let rec graph_cost (g : Sdfg.graph) : int =
  List.fold_left
    (fun acc (n : Sdfg.node) ->
      let c =
        match n.kind with
        | Sdfg.Access _ -> 1
        | Sdfg.TaskletN t -> (
            match t.code with
            | Sdfg.Native assigns -> 2 + List.length assigns
            | Sdfg.Opaque _ -> 8)
        | Sdfg.MapN mn ->
            let trips =
              List.fold_left
                (fun acc r -> min cost_cap (acc * max 1 (est_trips r)))
                1 mn.m_ranges
            in
            2 + min cost_cap (graph_cost mn.m_body * trips)
      in
      min cost_cap (acc + c))
    0 (Sdfg.nodes g)

(** Saturating weight of a whole SDFG — roughly "dispatched operations
    per execution", the quantity bytecode lowering amortizes. *)
let static_cost (sdfg : Sdfg.t) : int =
  List.fold_left
    (fun acc (s : Sdfg.state) -> min cost_cap (acc + graph_cost s.s_graph))
    0 (Sdfg.states sdfg)

(* -- policy ----------------------------------------------------------- *)

(** [decide ~digest sdfg] — the tier for this run, with the reason that
    the [EXEC-TIER] event records. Promotes (and emits [TIER-UP]) when
    the static estimate clears the threshold. *)
let decide ~(digest : string) (sdfg : Sdfg.t) : [ `Bytecode | `Plan ] * string
    =
  let e = entry_of digest in
  if e.promoted then (`Bytecode, "profile-hot")
  else
    let cost = static_cost sdfg in
    if cost >= static_threshold then begin
      e.promoted <- true;
      Events.emit ~code:"TIER-UP"
        [
          ("digest", Json.Str (short digest));
          ("trigger", Json.Str "static");
          ("cost", Json.Int cost);
        ];
      (`Bytecode, "static-hot")
    end
    else (`Plan, "cold")

(** [observe ~digest ?profile ~cycles ()] — account one finished run.
    Crossing the cumulative-cycle threshold promotes the digest and
    emits [TIER-UP] with the hottest state when a profile is present. *)
let observe ~(digest : string) ?profile ~(cycles : float) () : unit =
  let e = entry_of digest in
  e.runs <- e.runs + 1;
  e.cycles <- e.cycles +. cycles;
  if (not e.promoted) && e.cycles >= cycle_threshold then begin
    e.promoted <- true;
    let hot =
      match (profile : Profile.t option) with
      | Some p -> (
          match Profile.entries p ~kind:"state" with
          | (name, _) :: _ -> name
          | [] -> "")
      | None -> ""
    in
    Events.emit ~code:"TIER-UP"
      ([
         ("digest", Json.Str (short digest));
         ("trigger", Json.Str "profile");
         ("runs", Json.Int e.runs);
         ("cycles", Json.Int (int_of_float e.cycles));
       ]
      @ if hot = "" then [] else [ ("hot_state", Json.Str hot) ])
  end
