(** The bytecode dispatch loop — one [while] over a flat code array.

    Every instruction drives the same {!Dcir_machine.Machine} charge
    helpers as the tree walker and the compiled plans, in the same
    order, so outputs, traps and machine metrics are bit-identical
    across all three tiers (the fuzz oracle and
    [test/test_interp_plans.ml] enforce this). What disappears is pure
    interpretation overhead: per-tasklet slot-array allocation, index
    lists, closure-tree dispatch, and the interstate edge scan.

    Certified parallel maps delegate to {!Interp.exec_par_chunks} — the
    chunked schedule, forked machines and deterministic metric merge are
    shared with the compiled tier; only the chunk bodies execute as
    bytecode. *)

open Dcir_machine
module Interp = Dcir_sdfg.Interp
module Sdfg = Dcir_sdfg.Sdfg
module Expr = Dcir_symbolic.Expr
open Isa

(* Per-frame (buffer, dims) cache: the first touch goes through
   [Interp.buffer_of] (which may lazily allocate a transient, with the
   tree walker's exact charge suppression); later touches skip the
   hashtable. Buffer bindings never change within a run, so the cache
   is sound; parallel chunk bodies get fresh frames. *)
let cached (rt : Interp.runtime) (fr : frame) (slot : int) (name : string) :
    Machine.buffer * int array =
  match fr.bufs.(slot) with
  | Some bd -> bd
  | None ->
      let buf = Interp.buffer_of rt name in
      let dims =
        match Hashtbl.find_opt rt.dims name with
        | Some d -> d
        | None -> Interp.trap "no dims for container '%s'" name
      in
      let bd = (buf, dims) in
      fr.bufs.(slot) <- Some bd;
      bd

let rank_trap (name : string) (n : int) (rank : int) : unit =
  Interp.trap "container '%s': %d indices for rank %d" name n rank

(* Evaluate a single-element subset and linearize it with [linearize]'s
   exact charge sequence (rank trap first, one Int_alu per dimension
   past the first), without allocating an index list. *)
let load_linear (rt : Interp.runtime) (fr : frame) ~(data : string)
    ~(cslot : int) (idxs : iexpr array) : Machine.buffer * int =
  match Array.length idxs with
  | 0 ->
      let buf, dims = cached rt fr cslot data in
      if Array.length dims <> 0 then rank_trap data 0 (Array.length dims);
      (buf, 0)
  | 1 ->
      let i0 = Interp.ceval idxs.(0) rt in
      let buf, dims = cached rt fr cslot data in
      if Array.length dims <> 1 then rank_trap data 1 (Array.length dims);
      (buf, i0)
  | 2 ->
      let i0 = Interp.ceval idxs.(0) rt in
      let i1 = Interp.ceval idxs.(1) rt in
      let buf, dims = cached rt fr cslot data in
      if Array.length dims <> 2 then rank_trap data 2 (Array.length dims);
      Machine.charge_op rt.machine Cost.Int_alu;
      (buf, (i0 * dims.(1)) + i1)
  | n ->
      let tmp = Array.make n 0 in
      for k = 0 to n - 1 do
        tmp.(k) <- Interp.ceval idxs.(k) rt
      done;
      let buf, dims = cached rt fr cslot data in
      if Array.length dims <> n then rank_trap data n (Array.length dims);
      let lin = ref tmp.(0) in
      for k = 1 to n - 1 do
        Machine.charge_op rt.machine Cost.Int_alu;
        lin := (!lin * dims.(k)) + tmp.(k)
      done;
      (buf, !lin)

let do_store (rt : Interp.runtime) (buf : Machine.buffer) (lin : int)
    (wcr : Sdfg.wcr option) (v : Value.t) : unit =
  match wcr with
  | None -> Machine.store rt.machine buf lin v
  | Some w ->
      let old_v = Machine.load rt.machine buf lin in
      Machine.store rt.machine buf lin (Interp.apply_wcr rt w old_v v)

let rec exec (rt : Interp.runtime) (p : program) : unit =
  let fr = make_frame p in
  let code = p.p_code in
  let m = rt.machine in
  let pc = ref 0 in
  let halted = ref false in
  while not !halted do
    let ip = !pc in
    pc := ip + 1;
    match code.(ip) with
    | Halt -> halted := true
    | Jmp t -> pc := t
    | Step -> Interp.charge_step rt
    | Reraise e -> raise e
    | TrapNow msg -> raise (Interp.Trap msg)
    (* -- state machine --------------------------------------------- *)
    | StateSnap { slot } -> fr.snaps.(slot) <- Interp.metric_snap rt
    | StateRec { slot; label } ->
        Interp.profile_record rt fr.snaps.(slot) ~kind:"state" ~name:label
    | AllocState { c; shape } ->
        if c.alloc_in_loop || not (Hashtbl.mem rt.alloc_charged c.cname)
        then begin
          Hashtbl.replace rt.alloc_charged c.cname ();
          let bytes =
            List.fold_left
              (fun acc cd -> acc * max 1 (Interp.ceval cd rt))
              1 shape
            * Sdfg.elem_bytes c
          in
          let pages = (bytes + 4095) / 4096 in
          Machine.charge m
            (m.cfg.malloc_cost
            +. (m.cfg.malloc_per_page *. float_of_int pages)
            +. if c.alloc_in_loop then m.cfg.free_cost else 0.0);
          (Machine.metrics m).heap_allocs <- (Machine.metrics m).heap_allocs + 1
        end
    | ChargeBranch -> Machine.charge_op m Cost.Branch
    | EdgeCond { cond; src; dst; if_false } ->
        let taken =
          match cond rt with
          | v -> v
          | exception Expr.Unbound_symbol sym ->
              Interp.trap "condition on edge %s->%s reads unbound symbol '%s'"
                src dst sym
        in
        if not taken then pc := if_false
    | EdgeAssigns { base; items } ->
        let n = Array.length items in
        for j = 0 to n - 1 do
          Machine.charge_op m Cost.Int_alu;
          fr.ints.(base + j) <- Interp.ceval (snd items.(j)) rt
        done;
        for j = 0 to n - 1 do
          Hashtbl.replace rt.symbols (fst items.(j)) fr.ints.(base + j)
        done
    (* -- serial map loops ------------------------------------------ *)
    | EvalRange { lo; hi; step; r } ->
        let l, h, s = Interp.eval_crange rt r in
        fr.ints.(lo) <- l;
        fr.ints.(hi) <- h;
        fr.ints.(step) <- s
    | SaveSym { slot; sym } ->
        fr.saves.(slot) <- Hashtbl.find_opt rt.symbols sym
    | RestoreSym { slot; sym } -> (
        match fr.saves.(slot) with
        | Some v -> Hashtbl.replace rt.symbols sym v
        | None -> Hashtbl.remove rt.symbols sym)
    | LoopInit { iv; lo } -> fr.ints.(iv) <- fr.ints.(lo)
    | LoopHead { iv; hi; exit_ } ->
        if fr.ints.(iv) > fr.ints.(hi) then pc := exit_
    | LoopIter { sym; iv } ->
        Machine.charge_op m Cost.Int_alu;
        Machine.charge_op m Cost.Branch;
        Hashtbl.replace rt.symbols sym fr.ints.(iv)
    | LoopNext { iv; step; head } ->
        fr.ints.(iv) <- fr.ints.(iv) + fr.ints.(step);
        pc := head
    (* -- certified parallel maps ----------------------------------- *)
    | ParMap { cert; params; ranges; body } ->
        let dims = List.map (Interp.eval_crange rt) ranges in
        Interp.exec_par_chunks rt cert ~params ~dims ~body:(fun crt ->
            exec crt body)
    (* -- memlet copies --------------------------------------------- *)
    | CopyND cc -> Interp.exec_ccopy rt cc
    | Copy1 { src; sslot; dst; dslot; wcr; sr; dr } ->
        let sbuf, sdims = cached rt fr sslot src in
        let dbuf, ddims = cached rt fr dslot dst in
        let slo, shi, sstep = Interp.eval_crange rt sr in
        let dlo, dhi, dstep = Interp.eval_crange rt dr in
        if slo = shi && dlo = dhi then begin
          if Array.length sdims <> 1 then rank_trap src 1 (Array.length sdims);
          let v = Machine.load m sbuf slo in
          if Array.length ddims <> 1 then rank_trap dst 1 (Array.length ddims);
          do_store rt dbuf dlo wcr v
        end
        else begin
          let i = ref slo and k = ref 0 in
          while !i <= shi do
            if Array.length sdims <> 1 then
              rank_trap src 1 (Array.length sdims);
            let v = Machine.load m sbuf !i in
            if Array.length ddims <> 1 then
              rank_trap dst 1 (Array.length ddims);
            do_store rt dbuf (dlo + (!k * dstep)) wcr v;
            i := !i + sstep;
            incr k
          done
        end
    | Copy0 { src; sslot; dst; dslot; wcr } ->
        let sbuf, sdims = cached rt fr sslot src in
        let dbuf, ddims = cached rt fr dslot dst in
        if Array.length sdims <> 0 then rank_trap src 0 (Array.length sdims);
        let v = Machine.load m sbuf 0 in
        if Array.length ddims <> 0 then rank_trap dst 0 (Array.length ddims);
        do_store rt dbuf 0 wcr v
    (* -- tasklets -------------------------------------------------- *)
    | TaskSnap { slot } -> fr.snaps.(slot) <- Interp.metric_snap rt
    | TaskRec { slot; name } ->
        Interp.profile_record rt fr.snaps.(slot) ~kind:"tasklet" ~name
    | LoadIdx { dst; data; cslot; idxs } ->
        let buf, lin = load_linear rt fr ~data ~cslot idxs in
        fr.vals.(dst) <- Machine.load m buf lin
    | LoadLast { dst; key; tname } -> (
        match Hashtbl.find_opt rt.last_outputs key with
        | Some v -> fr.vals.(dst) <- v
        | None ->
            Interp.trap "tasklet '%s': value edge source %s not yet executed"
              tname key)
    | Eval { dst; f } -> fr.vals.(dst) <- f rt fr.vals
    | Bin { dst; op; a; b } ->
        fr.vals.(dst) <- Interp.apply_binop m op fr.vals.(a) fr.vals.(b)
    | DivT { dst; a; b } -> (
        match (fr.vals.(a), fr.vals.(b)) with
        | Value.VInt x, Value.VInt y ->
            Machine.charge_op m Cost.Int_div;
            if y = 0 then Interp.trap "division by zero in tasklet"
            else fr.vals.(dst) <- Value.VInt (x / y)
        | va, vb -> fr.vals.(dst) <- Interp.apply_binop m Texpr.BDiv va vb)
    | RemT { dst; a; b } -> (
        match (fr.vals.(a), fr.vals.(b)) with
        | Value.VInt x, Value.VInt y ->
            Machine.charge_op m Cost.Int_div;
            if y = 0 then Interp.trap "modulo by zero in tasklet"
            else fr.vals.(dst) <- Value.VInt (x mod y)
        | va, vb -> fr.vals.(dst) <- Interp.apply_binop m Texpr.BMod va vb)
    | SetOut { key; src } ->
        Hashtbl.replace rt.last_outputs key fr.vals.(src)
    | StoreIdx { src; data; cslot; wcr; idxs } ->
        let buf, lin = load_linear rt fr ~data ~cslot idxs in
        do_store rt buf lin wcr fr.vals.(src)
    | FusedBin { dst; op; a; b; key; data; cslot; wcr; idxs } ->
        let v = Interp.apply_binop m op fr.vals.(a) fr.vals.(b) in
        fr.vals.(dst) <- v;
        Hashtbl.replace rt.last_outputs key v;
        let buf, lin = load_linear rt fr ~data ~cslot idxs in
        do_store rt buf lin wcr v
    | CallOpaque { tname; overhead; modul; entry; nid; syms; args; keys; obase }
      ->
        Machine.charge m overhead;
        let sym_args =
          List.map
            (fun s ->
              match Interp.sym_env rt s with
              | Some v -> Dcir_mlir.Interp.Scalar (Value.VInt v)
              | None ->
                  Interp.trap "opaque tasklet '%s': unbound symbol '%s'" tname
                    s)
            syms
        in
        let margs =
          List.map
            (fun (a : oarg) ->
              match a with
              | OScalar i -> Dcir_mlir.Interp.Scalar fr.vals.(i)
              | OArray data ->
                  Dcir_mlir.Interp.Buf
                    { buf = Interp.buffer_of rt data; dims = Interp.dims_of rt data }
              | OUnbound conn ->
                  Interp.trap "opaque tasklet '%s': unbound connector '%s'"
                    tname conn)
            (Array.to_list args)
        in
        let prep =
          match Hashtbl.find_opt rt.prepared nid with
          | Some p -> p
          | None ->
              let p =
                Dcir_mlir.Interp.prepare ?profile:rt.profile
                  ~machine:rt.machine modul ~entry
              in
              Hashtbl.replace rt.prepared nid p;
              p
        in
        let results = Dcir_mlir.Interp.run_prepared prep (sym_args @ margs) in
        let vals =
          Array.of_list
            (List.map2 (fun _ v -> v) (Array.to_list keys) results)
        in
        Array.blit vals 0 fr.vals obase (Array.length vals)
  done

(** [run p ~buffers ~symbols] executes a lowered program; mirrors
    {!Interp.run}'s runtime construction, argument binding, missing-
    buffer validation and return-value logic exactly. *)
let run ?(machine : Machine.t option)
    ?(profile : Dcir_obs.Obs.Profile.t option) ?(jobs : int = 1)
    (p : program) ~(buffers : (string * Machine.buffer * int array) list)
    ~(symbols : (string * int) list) () : Interp.result =
  let machine = match machine with Some m -> m | None -> Machine.create () in
  let rt =
    {
      Interp.machine;
      sdfg = p.p_sdfg;
      buffers = Hashtbl.create 32;
      dims = Hashtbl.create 32;
      symbols = Hashtbl.create 32;
      topo_cache = Hashtbl.create 32;
      alloc_charged = Hashtbl.create 16;
      last_outputs = Hashtbl.create 32;
      budget = Machine.budget machine;
      profile;
      prepared = Hashtbl.create 8;
      jobs = max 1 jobs;
    }
  in
  List.iter (fun (s, v) -> Hashtbl.replace rt.Interp.symbols s v) symbols;
  List.iter
    (fun (name, buf, dims) ->
      Hashtbl.replace rt.Interp.buffers name buf;
      Hashtbl.replace rt.Interp.dims name dims)
    buffers;
  Hashtbl.iter
    (fun name (c : Sdfg.container) ->
      if (not c.transient) && not (Hashtbl.mem rt.Interp.buffers name) then
        Interp.trap "missing buffer for argument '%s'" name)
    p.p_sdfg.containers;
  exec rt p;
  let return_value =
    match (p.p_sdfg.return_scalar, p.p_sdfg.return_expr) with
    | Some name, _ -> Some (Machine.peek (Interp.buffer_of rt name) 0)
    | None, Some e -> Some (Value.VInt (Interp.eval_expr rt e))
    | None, None -> None
  in
  { Interp.return_value; machine }
