(** Lowering from SDFGs to flat bytecode programs.

    Structurally this mirrors {!Dcir_sdfg.Interp}'s plan compiler
    ([compile_state] / [compile_graph] / [compile_tasklet]) — the same
    walks, in the same order, producing the same closures for symbolic
    expressions and general tasklet bodies — but emits a single flat
    code array with preallocated frame slots instead of a closure tree:

    - tasklet connector slots and assignment results get fixed indices
      in the frame's value array (no per-execution [Array.make]);
    - serial map nests flatten into register loops ([LoopInit] /
      [LoopHead] / [LoopIter] / [LoopNext]);
    - interstate conditions are pre-evaluated into branch targets: each
      state's edge tests chain via [if_false] pcs and taken edges [Jmp]
      straight to the destination state's entry pc.

    States lower eagerly. The compiled tier compiles states lazily, so
    a malformed state (e.g. a cyclic dataflow graph) only raises when
    first executed; to keep failure timing identical, each state is
    probed with [Interp.compile_state] first and a failing state's
    entry points become [Reraise] instructions carrying the probe's
    exception — executed exactly where the lazy compile would have
    raised. *)

module Interp = Dcir_sdfg.Interp
module Sdfg = Dcir_sdfg.Sdfg
module Texpr = Dcir_sdfg.Texpr
module Range = Dcir_symbolic.Range
open Isa

(* ------------------------------------------------------------------ *)
(* Code builder: reversed instruction list + patch thunks resolved once
   every pc is known. *)

type builder = {
  mutable rev : instr list;
  mutable len : int;
  mutable patches : (int * (unit -> instr)) list;
  mutable nvals : int;
  mutable nints : int;
  mutable nsaves : int;
  mutable nsnaps : int;
  cslots : (string, int) Hashtbl.t;
  mutable ncslots : int;
}

let new_builder () : builder =
  {
    rev = [];
    len = 0;
    patches = [];
    nvals = 0;
    nints = 0;
    nsaves = 0;
    nsnaps = 0;
    cslots = Hashtbl.create 16;
    ncslots = 0;
  }

let emit (b : builder) (i : instr) : int =
  let pc = b.len in
  b.rev <- i :: b.rev;
  b.len <- pc + 1;
  pc

(* Reserve a pc whose instruction is computed after layout. *)
let emit_patch (b : builder) (f : unit -> instr) : int =
  let pc = emit b Halt in
  b.patches <- (pc, f) :: b.patches;
  pc

let alloc_val (b : builder) : int =
  let s = b.nvals in
  b.nvals <- s + 1;
  s

let alloc_vals (b : builder) (n : int) : int =
  let s = b.nvals in
  b.nvals <- s + n;
  s

let alloc_int (b : builder) : int =
  let s = b.nints in
  b.nints <- s + 1;
  s

let alloc_ints (b : builder) (n : int) : int =
  let s = b.nints in
  b.nints <- s + n;
  s

let alloc_save (b : builder) : int =
  let s = b.nsaves in
  b.nsaves <- s + 1;
  s

let alloc_snap (b : builder) : int =
  let s = b.nsnaps in
  b.nsnaps <- s + 1;
  s

(* One frame-cached (buffer, dims) slot per container name per program. *)
let cslot (b : builder) (name : string) : int =
  match Hashtbl.find_opt b.cslots name with
  | Some s -> s
  | None ->
      let s = b.ncslots in
      b.ncslots <- s + 1;
      Hashtbl.replace b.cslots name s;
      s

let finish (b : builder) (sdfg : Sdfg.t) : program =
  let code = Array.of_list (List.rev b.rev) in
  List.iter (fun (pc, f) -> code.(pc) <- f ()) b.patches;
  {
    p_sdfg = sdfg;
    p_code = code;
    p_nvals = b.nvals;
    p_nints = b.nints;
    p_nsaves = b.nsaves;
    p_nsnaps = b.nsnaps;
    p_ncslots = b.ncslots;
  }

(* ------------------------------------------------------------------ *)
(* Tasklets. Mirrors [Interp.compile_tasklet]: bindings accumulate in
   in-edge order, List.assoc picks the first occurrence, shadowed
   scalar fills still execute (and charge). The binding environment
   holds absolute frame-slot indices, so [Interp.compile_texpr] bodies
   evaluate directly over the frame's value array. *)

let lower_index_exprs (subset : Range.t) : iexpr array =
  Array.of_list
    (List.map (fun (d : Range.dim) -> Interp.compile_expr d.lo) subset)

let lower_tasklet (b : builder) (g : Sdfg.graph) (n : Sdfg.node)
    (t : Sdfg.tasklet) : unit =
  let snap = alloc_snap b in
  ignore (emit b (TaskSnap { slot = snap }));
  let array_conns = Interp.tasklet_array_conns t in
  let benv = ref [] in
  List.iter
    (fun (e : Sdfg.edge) ->
      match (e.e_dst_conn, e.e_memlet) with
      | Some conn, Some m ->
          if List.mem conn array_conns then
            benv := (conn, Interp.CBArray m.data) :: !benv
          else begin
            let slot = alloc_val b in
            let i =
              if List.for_all Range.is_index m.subset then
                LoadIdx
                  {
                    dst = slot;
                    data = m.data;
                    cslot = cslot b m.data;
                    idxs = lower_index_exprs m.subset;
                  }
              else
                TrapNow
                  (Printf.sprintf
                     "tasklet '%s': scalar connector '%s' with non-index \
                      subset %s"
                     t.tname conn
                     (Range.to_string m.subset))
            in
            ignore (emit b i);
            benv := (conn, Interp.CBScalar slot) :: !benv
          end
      | Some conn, None -> (
          match e.e_src_conn with
          | Some src_conn ->
              let key = Printf.sprintf "%d:%s" e.e_src src_conn in
              let slot = alloc_val b in
              ignore (emit b (LoadLast { dst = slot; key; tname = t.tname }));
              benv := (conn, Interp.CBScalar slot) :: !benv
          | None -> ())
      | _ -> ())
    (Sdfg.node_in_edges g n);
  let benv = List.rev !benv in
  (* Body: assignment results land in a contiguous frame region so the
     writes can index them like the plan's output-value array. *)
  let body_instrs, outnames, obase =
    match t.code with
    | Sdfg.Native assigns ->
        let nouts = List.length assigns in
        let obase = alloc_vals b nouts in
        let instrs =
          List.mapi
            (fun i (_, e) ->
              let dst = obase + i in
              match e with
              | Texpr.TBin (op, Texpr.TIn ca, Texpr.TIn cb) -> (
                  match (List.assoc_opt ca benv, List.assoc_opt cb benv) with
                  | Some (Interp.CBScalar a), Some (Interp.CBScalar bb) -> (
                      match op with
                      | Texpr.BDiv -> DivT { dst; a; b = bb }
                      | Texpr.BMod -> RemT { dst; a; b = bb }
                      | _ -> Bin { dst; op; a; b = bb })
                  | _ -> Eval { dst; f = Interp.compile_texpr benv e })
              | _ -> Eval { dst; f = Interp.compile_texpr benv e })
            assigns
        in
        (instrs, List.map fst assigns, obase)
    | Sdfg.Opaque f ->
        let modul = Dcir_mlir.Ir.new_module () in
        modul.funcs <- [ f ];
        let nouts = List.length t.t_outputs in
        let obase = alloc_vals b nouts in
        let keys =
          Array.of_list
            (List.map (fun c -> Printf.sprintf "%d:%s" n.nid c) t.t_outputs)
        in
        let args =
          Array.of_list
            (List.map
               (fun conn ->
                 match List.assoc_opt conn benv with
                 | Some (Interp.CBScalar i) -> OScalar i
                 | Some (Interp.CBArray data) -> OArray data
                 | None -> OUnbound conn)
               t.t_inputs)
        in
        ( [
            CallOpaque
              {
                tname = t.tname;
                overhead = t.t_overhead;
                modul;
                entry = f.Dcir_mlir.Ir.fname;
                nid = n.nid;
                syms = t.t_syms;
                args;
                keys;
                obase;
              };
          ],
          t.t_outputs,
          obase )
  in
  let outkeys =
    List.map (fun c -> Printf.sprintf "%d:%s" n.nid c) outnames
  in
  let setouts =
    List.mapi (fun i key -> SetOut { key; src = obase + i }) outkeys
  in
  (* Writes, per out-edge in edge order; [compile_write] semantics. *)
  let rec index_of i conn = function
    | [] -> None
    | x :: _ when String.equal x conn -> Some i
    | _ :: r -> index_of (i + 1) conn r
  in
  let writes =
    List.filter_map
      (fun (e : Sdfg.edge) ->
        match (e.e_src_conn, e.e_memlet) with
        | Some conn, Some m ->
            Some
              (match index_of 0 conn outnames with
              | None ->
                  TrapNow
                    (Printf.sprintf
                       "no value computed for output connector '%s'" conn)
              | Some i ->
                  if List.for_all Range.is_index m.subset then
                    StoreIdx
                      {
                        src = obase + i;
                        data = m.data;
                        cslot = cslot b m.data;
                        wcr = m.wcr;
                        idxs = lower_index_exprs m.subset;
                      }
                  else
                    TrapNow
                      (Printf.sprintf
                         "write memlet must be a single element (%s)" m.data))
        | _ -> None)
      (Sdfg.node_out_edges g n)
  in
  (* Peephole: a single two-operand assignment with a single indexed
     write fuses into one load-op-store dispatch. Same effects, same
     order (result slot, then last_outputs, then the store). *)
  let fuse_parts = function
    | Bin { dst; op; a; b } -> Some (dst, op, a, b)
    | DivT { dst; a; b } -> Some (dst, Texpr.BDiv, a, b)
    | RemT { dst; a; b } -> Some (dst, Texpr.BMod, a, b)
    | _ -> None
  in
  (match (body_instrs, setouts, writes) with
  | ( [ bi ],
      [ SetOut { key; src } ],
      [ StoreIdx { src = wsrc; data; cslot = cs; wcr; idxs } ] )
    when (match fuse_parts bi with
         | Some (dst, _, _, _) -> src = dst && wsrc = dst
         | None -> false) ->
      let dst, op, a, bb =
        match fuse_parts bi with Some p -> p | None -> assert false
      in
      ignore
        (emit b (FusedBin { dst; op; a; b = bb; key; data; cslot = cs; wcr; idxs }))
  | _ ->
      List.iter (fun i -> ignore (emit b i)) body_instrs;
      List.iter (fun i -> ignore (emit b i)) setouts;
      List.iter (fun i -> ignore (emit b i)) writes);
  ignore (emit b (TaskRec { slot = snap; name = t.tname }))

(* ------------------------------------------------------------------ *)
(* Graphs: one [Step] at entry (exec_cgraph's budget charge), then the
   nodes in topological order. *)

let rec lower_graph (b : builder) (sdfg : Sdfg.t) (g : Sdfg.graph) : unit =
  ignore (emit b Step);
  List.iter
    (fun (n : Sdfg.node) ->
      match n.kind with
      | Sdfg.Access _ ->
          List.iter
            (fun (e : Sdfg.edge) ->
              match ((Sdfg.node_by_id g e.e_dst).kind, e.e_memlet) with
              | Sdfg.Access dst_name, Some m ->
                  let dst_subset =
                    match m.other with
                    | Some o -> o
                    | None -> m.subset (* same-region copy *)
                  in
                  lower_copy b ~src:m.data ~dst:dst_name ~wcr:m.wcr
                    ~src_subset:m.subset ~dst_subset
              | _ -> ())
            (Sdfg.node_out_edges g n)
      | Sdfg.TaskletN t -> lower_tasklet b g n t
      | Sdfg.MapN mn -> lower_map b sdfg mn)
    (Sdfg.topo_order g)

and lower_copy (b : builder) ~(src : string) ~(dst : string)
    ~(wcr : Sdfg.wcr option) ~(src_subset : Range.t) ~(dst_subset : Range.t) :
    unit =
  let i =
    match (src_subset, dst_subset) with
    | [], [] ->
        Copy0 { src; sslot = cslot b src; dst; dslot = cslot b dst; wcr }
    | [ sd ], [ dd ] ->
        Copy1
          {
            src;
            sslot = cslot b src;
            dst;
            dslot = cslot b dst;
            wcr;
            sr = Interp.compile_range_dim sd;
            dr = Interp.compile_range_dim dd;
          }
    | _ ->
        CopyND
          {
            Interp.cc_src = src;
            cc_dst = dst;
            cc_wcr = wcr;
            cc_src_dims = List.map Interp.compile_range_dim src_subset;
            cc_dst_dims = List.map Interp.compile_range_dim dst_subset;
          }
  in
  ignore (emit b i)

and lower_map (b : builder) (sdfg : Sdfg.t) (mn : Sdfg.map_node) : unit =
  match mn.m_par with
  | Some cert when mn.m_params <> [] ->
      let body = lower_body sdfg mn.m_body in
      ignore
        (emit b
           (ParMap
              {
                cert;
                params = mn.m_params;
                ranges = List.map Interp.compile_range_dim mn.m_ranges;
                body;
              }))
  | Some _ | None ->
      (* Serial nest: all range bounds evaluate up front (lo, hi, step
         per range, in range order), then the saved symbol bindings, then
         the register loops. A params/ranges arity mismatch traps at the
         depth where the walk diverges — outer loops still run. *)
      let nranges = List.length mn.m_ranges in
      let nparams = List.length mn.m_params in
      let regs =
        List.map
          (fun rd ->
            let lo = alloc_int b and hi = alloc_int b and step = alloc_int b in
            ignore
              (emit b
                 (EvalRange { lo; hi; step; r = Interp.compile_range_dim rd }));
            (lo, hi, step))
          mn.m_ranges
      in
      let saves =
        List.map
          (fun p ->
            let slot = alloc_save b in
            ignore (emit b (SaveSym { slot; sym = p }));
            (p, slot))
          mn.m_params
      in
      let depth = min nparams nranges in
      let rec nest k params regs =
        if k = depth then
          if nparams <> nranges then
            ignore (emit b (TrapNow "map params/ranges mismatch"))
          else lower_graph b sdfg mn.m_body
        else
          match (params, regs) with
          | p :: ps, (lo, hi, step) :: rs ->
              let iv = alloc_int b in
              ignore (emit b (LoopInit { iv; lo }));
              let head = b.len in
              let exit_ref = ref (-1) in
              ignore
                (emit_patch b (fun () ->
                     LoopHead { iv; hi; exit_ = !exit_ref }));
              ignore (emit b (LoopIter { sym = p; iv }));
              nest (k + 1) ps rs;
              ignore (emit b (LoopNext { iv; step; head }));
              exit_ref := b.len
          | _ -> assert false
      in
      nest 0 mn.m_params regs;
      List.iter
        (fun (p, slot) -> ignore (emit b (RestoreSym { slot; sym = p })))
        saves

and lower_body (sdfg : Sdfg.t) (g : Sdfg.graph) : program =
  let b = new_builder () in
  lower_graph b sdfg g;
  ignore (emit b Halt);
  finish b sdfg

(* ------------------------------------------------------------------ *)
(* States and the flattened interstate machine. *)

let lower_state (b : builder) (sdfg : Sdfg.t) (s : Sdfg.state)
    ~(state_pc : (string, int) Hashtbl.t)
    ~(failed : (string, exn) Hashtbl.t) : unit =
  ignore (emit b Step);
  let snap = alloc_snap b in
  ignore (emit b (StateSnap { slot = snap }));
  (* Allocation-charge candidates in container-table iteration order
     (same Hashtbl.iter as the tree walker and [compile_state]). *)
  let allocs = ref [] in
  Hashtbl.iter
    (fun _ (c : Sdfg.container) ->
      if c.alloc_state = Some s.s_label && c.storage = Sdfg.Heap then
        allocs := (c, List.map Interp.compile_expr c.shape) :: !allocs)
    sdfg.containers;
  List.iter
    (fun (c, shape) -> ignore (emit b (AllocState { c; shape })))
    (List.rev !allocs);
  lower_graph b sdfg s.s_graph;
  let outs = Sdfg.out_edges sdfg s.s_label in
  if List.length outs > 1 then ignore (emit b ChargeBranch);
  (* Transition tail shared by every taken edge and the fallthrough:
     run_compiled resolves the next state (which may raise for a
     malformed destination) before recording the profile entry, so the
     [Reraise] slot precedes [StateRec]. *)
  let emit_tail (dst : string option) : unit =
    (match dst with
    | Some d when Hashtbl.mem failed d || not (Hashtbl.mem state_pc d) ->
        (* patched below once all states are laid out *)
        ignore
          (emit_patch b (fun () ->
               match Hashtbl.find_opt failed d with
               | Some e -> Reraise e
               | None -> StateRec { slot = snap; label = s.s_label }))
    | _ -> ignore (emit b (StateRec { slot = snap; label = s.s_label })));
    match dst with
    | None -> ignore (emit b Halt)
    | Some d ->
        ignore
          (emit_patch b (fun () ->
               if Hashtbl.mem failed d then Halt (* unreachable *)
               else
                 match Hashtbl.find_opt state_pc d with
                 | Some pc -> Jmp pc
                 | None -> Halt (* missing destination state *)))
  in
  List.iter
    (fun (e : Sdfg.istate_edge) ->
      let skip = ref (-1) in
      let cond = Interp.compile_bexpr e.ie_cond in
      ignore
        (emit_patch b (fun () ->
             EdgeCond
               { cond; src = e.ie_src; dst = e.ie_dst; if_false = !skip }));
      (match e.ie_assign with
      | [] -> ()
      | assigns ->
          let items =
            Array.of_list
              (List.map
                 (fun (sym, ex) -> (sym, Interp.compile_expr ex))
                 assigns)
          in
          let base = alloc_ints b (Array.length items) in
          ignore (emit b (EdgeAssigns { base; items })));
      emit_tail (Some e.ie_dst);
      skip := b.len)
    outs;
  emit_tail None

(* The StateRec-vs-Reraise choice above keys off [failed] and
   [state_pc], which are only complete after every state has been laid
   out — hence the always-patch form for edges to unknown-at-emit-time
   destinations. Edges to already-laid-out healthy states still go
   through the patch list, which is resolved in [finish]. *)

let lower (sdfg : Sdfg.t) : program =
  let b = new_builder () in
  let state_pc : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let failed : (string, exn) Hashtbl.t = Hashtbl.create 4 in
  (* Probe every state with the plan compiler so a lowering failure
     carries exactly the exception lazy compilation would raise. *)
  List.iter
    (fun (s : Sdfg.state) ->
      match Interp.compile_state sdfg s with
      | (_ : Interp.cstate) -> ()
      | exception e -> Hashtbl.replace failed s.s_label e)
    (Sdfg.states sdfg);
  let entry_ref = ref (-1) in
  ignore (emit_patch b (fun () -> Jmp !entry_ref));
  List.iter
    (fun (s : Sdfg.state) ->
      if not (Hashtbl.mem failed s.s_label) then begin
        Hashtbl.replace state_pc s.s_label b.len;
        lower_state b sdfg s ~state_pc ~failed
      end)
    (Sdfg.states sdfg);
  (* Entry: run_compiled looks up the start state before its loop — a
     missing start halts without charging a step; a failed one raises
     before anything else. *)
  let halt_pc = emit b Halt in
  (entry_ref :=
     match Hashtbl.find_opt failed sdfg.start_state with
     | Some _ -> halt_pc (* overridden below *)
     | None -> (
         match Hashtbl.find_opt state_pc sdfg.start_state with
         | Some pc -> pc
         | None -> halt_pc));
  let p = finish b sdfg in
  (match Hashtbl.find_opt failed sdfg.start_state with
  | Some e -> p.p_code.(0) <- Reraise e
  | None -> ());
  p
