(** The flat-bytecode instruction set — the third execution tier.

    A program is a single [instr array] executed by one dispatch loop
    ({!Vm}); all operands are integer indices into a preallocated
    {!frame}. Where the compiled closure plans ({!Dcir_sdfg.Interp})
    allocate a fresh slot array per tasklet execution and an index list
    per memlet access, the bytecode tier indexes fixed registers:

    - [vals]  — tasklet connector slots and assignment results;
    - [ints]  — loop induction variables, range bounds, interstate
      assignment staging;
    - [saves] — saved symbol bindings around serial map loops;
    - [snaps] — metric snapshots for profile attribution;
    - [bufs]  — per-container (buffer, dims) pairs resolved once per
      frame, eliminating repeated hashtable lookups on the hot path.

    Interstate control flow is pre-resolved into branch targets: every
    [EdgeCond] carries the pc of the next alternative and every taken
    edge ends in a [Jmp] to the destination state's entry pc, so the
    state machine runs without hashtable lookups or list scans.

    Bit-identity contract: instructions drive the same {!Machine}
    charge helpers in the same order as the tree walker and the
    compiled plans, so outputs, traps and every machine metric agree
    across all three tiers. Symbolic index expressions and tasklet
    bodies that do not fit a specialized opcode reuse the plan
    compiler's closures ([Interp.compile_expr] / [Interp.compile_texpr])
    unchanged — exactness by construction, with the specialized forms
    ([Copy1], [Bin], [DivT], [FusedBin]) reserved for shapes whose
    charge sequence is statically known. *)

open Dcir_machine
module Interp = Dcir_sdfg.Interp
module Sdfg = Dcir_sdfg.Sdfg
module Texpr = Dcir_sdfg.Texpr

type iexpr = Interp.runtime -> int
(** compiled symbolic expression; raises [Expr.Unbound_symbol] *)

type crange = iexpr * iexpr * iexpr  (** (lo, hi, step) *)

type instr =
  (* -- control ----------------------------------------------------- *)
  | Halt
  | Jmp of int
  | Step  (** one budget step: state transition or graph execution *)
  | Reraise of exn
      (** deferred lowering failure — fires where lazy per-state plan
          compilation would have raised *)
  | TrapNow of string  (** precomputed always-trap (non-index subsets, …) *)
  (* -- state machine ----------------------------------------------- *)
  | StateSnap of { slot : int }
  | StateRec of { slot : int; label : string }
  | AllocState of { c : Sdfg.container; shape : iexpr list }
      (** per-state heap allocation charge (mirrors [exec_cstate]) *)
  | ChargeBranch
  | EdgeCond of {
      cond : Interp.runtime -> bool;
      src : string;
      dst : string;
      if_false : int;  (** pc of the next alternative edge / fallthrough *)
    }
  | EdgeAssigns of { base : int; items : (string * iexpr) array }
      (** evaluate all RHS with pre-assignment values (staged in
          [ints.(base+i)]), then commit *)
  (* -- serial map loops -------------------------------------------- *)
  | EvalRange of { lo : int; hi : int; step : int; r : crange }
  | SaveSym of { slot : int; sym : string }
  | RestoreSym of { slot : int; sym : string }
  | LoopInit of { iv : int; lo : int }
  | LoopHead of { iv : int; hi : int; exit_ : int }
  | LoopIter of { sym : string; iv : int }
      (** per-iteration charge (Int_alu + Branch) and symbol binding *)
  | LoopNext of { iv : int; step : int; head : int }
  (* -- certified parallel maps ------------------------------------- *)
  | ParMap of {
      cert : Sdfg.par_cert;
      params : string list;
      ranges : crange list;
      body : program;
    }
  (* -- memlet copies ------------------------------------------------ *)
  | CopyND of Interp.ccopy  (** general fallback: plan-compiled copy *)
  | Copy1 of {
      src : string;
      sslot : int;
      dst : string;
      dslot : int;
      wcr : Sdfg.wcr option;
      sr : crange;
      dr : crange;
    }  (** specialized contiguous rank-1 → rank-1 copy *)
  | Copy0 of {
      src : string;
      sslot : int;
      dst : string;
      dslot : int;
      wcr : Sdfg.wcr option;
    }  (** scalar → scalar copy *)
  (* -- tasklets ------------------------------------------------------ *)
  | TaskSnap of { slot : int }
  | TaskRec of { slot : int; name : string }
  | LoadIdx of { dst : int; data : string; cslot : int; idxs : iexpr array }
      (** fill one connector slot from a single-element subset *)
  | LoadLast of { dst : int; key : string; tname : string }
      (** fill from a direct tasklet-to-tasklet value edge *)
  | Eval of { dst : int; f : Interp.runtime -> Value.t array -> Value.t }
      (** general tasklet assignment: plan-compiled body over [vals] *)
  | Bin of { dst : int; op : Texpr.binop; a : int; b : int }
  | DivT of { dst : int; a : int; b : int }
      (** explicit trap-carrying division *)
  | RemT of { dst : int; a : int; b : int }
      (** explicit trap-carrying remainder *)
  | SetOut of { key : string; src : int }
  | StoreIdx of {
      src : int;
      data : string;
      cslot : int;
      wcr : Sdfg.wcr option;
      idxs : iexpr array;
    }
  | FusedBin of {
      dst : int;
      op : Texpr.binop;
      a : int;
      b : int;
      key : string;
      data : string;
      cslot : int;
      wcr : Sdfg.wcr option;
      idxs : iexpr array;
    }  (** fused load-op-store tail: [Bin] + [SetOut] + [StoreIdx] *)
  | CallOpaque of {
      tname : string;
      overhead : float;
      modul : Dcir_mlir.Ir.modul;
      entry : string;
      nid : int;
      syms : string list;
      args : oarg array;
      keys : string array;
      obase : int;
    }

and oarg = OScalar of int | OArray of string | OUnbound of string

and program = {
  p_sdfg : Sdfg.t;
  p_code : instr array;
  p_nvals : int;
  p_nints : int;
  p_nsaves : int;
  p_nsnaps : int;
  p_ncslots : int;
}

(** Preallocated activation frame: sized once at [Vm.exec] entry, reused
    for the whole run (nested [ParMap] bodies get their own). *)
type frame = {
  vals : Value.t array;
  ints : int array;
  saves : int option array;
  snaps : (float * int * int) option array;
  bufs : (Machine.buffer * int array) option array;
}

let make_frame (p : program) : frame =
  {
    vals = Array.make (max 1 p.p_nvals) (Value.VInt 0);
    ints = Array.make (max 1 p.p_nints) 0;
    saves = Array.make (max 1 p.p_nsaves) None;
    snaps = Array.make (max 1 p.p_nsnaps) None;
    bufs = Array.make (max 1 p.p_ncslots) None;
  }

let opcode_name : instr -> string = function
  | Halt -> "halt"
  | Jmp _ -> "jmp"
  | Step -> "step"
  | Reraise _ -> "reraise"
  | TrapNow _ -> "trap"
  | StateSnap _ -> "state.snap"
  | StateRec _ -> "state.rec"
  | AllocState _ -> "state.alloc"
  | ChargeBranch -> "charge.branch"
  | EdgeCond _ -> "edge.cond"
  | EdgeAssigns _ -> "edge.assign"
  | EvalRange _ -> "range"
  | SaveSym _ -> "sym.save"
  | RestoreSym _ -> "sym.restore"
  | LoopInit _ -> "loop.init"
  | LoopHead _ -> "loop.head"
  | LoopIter _ -> "loop.iter"
  | LoopNext _ -> "loop.next"
  | ParMap _ -> "par.map"
  | CopyND _ -> "copy.nd"
  | Copy1 _ -> "copy.1d"
  | Copy0 _ -> "copy.0d"
  | TaskSnap _ -> "task.snap"
  | TaskRec _ -> "task.rec"
  | LoadIdx _ -> "load.idx"
  | LoadLast _ -> "load.last"
  | Eval _ -> "eval"
  | Bin _ -> "bin"
  | DivT _ -> "div.t"
  | RemT _ -> "rem.t"
  | SetOut _ -> "set.out"
  | StoreIdx _ -> "store.idx"
  | FusedBin _ -> "fused.bin"
  | CallOpaque _ -> "call.opaque"

(** Static instruction count including nested [ParMap] bodies — the
    size reported on cache events. *)
let rec size (p : program) : int =
  Array.fold_left
    (fun acc i ->
      acc + match i with ParMap { body; _ } -> 1 + size body | _ -> 1)
    0 p.p_code
