(** Within-state element forwarding — the data-centric counterpart of
    store-to-load forwarding, part of redundant-copy removal (§6.2).

    After fusion, a state often writes [C[s]] and immediately reads the same
    element ([c[i] = a[i]] fused with [b[i] = scalar * c[i]]). When the
    state contains exactly one write to [C[s]] (a tasklet output, no WCR)
    and a dependency path orders that write before the reader, the reader's
    memlet is replaced by a direct value edge — one memory round-trip per
    element disappears. *)

open Dcir_sdfg
open Dcir_symbolic

(* Is there a path src -> dst (any edges)? *)
let reachable (g : Sdfg.graph) (src : int) (dst : int) : bool =
  let visited = Hashtbl.create 16 in
  let rec dfs n =
    n = dst
    || (not (Hashtbl.mem visited n))
       && begin
            Hashtbl.replace visited n ();
            List.exists
              (fun (e : Sdfg.edge) -> e.e_src = n && dfs e.e_dst)
              (Sdfg.edges g)
          end
  in
  dfs src

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  List.iter
    (fun (st : Sdfg.state) ->
      let g = st.s_graph in
      (* Tasklet writes per (container, subset-string). *)
      let writes =
        List.filter_map
          (fun (e : Sdfg.edge) ->
            match
              ((Sdfg.node_by_id g e.e_src).kind,
               (Sdfg.node_by_id g e.e_dst).kind,
               e.e_src_conn, e.e_memlet)
            with
            | Sdfg.TaskletN _, Sdfg.Access _, Some conn, Some m
              when m.wcr = None && List.for_all Range.is_index m.subset ->
                Some (m.data, Range.to_string m.subset, e.e_src, conn, e)
            | _ -> None)
          (Sdfg.edges g)
      in
      (* Containers with more than one write (any kind, any subset) in this
         state are unsafe to forward: a second write may alias the element
         between the matched write and the read. *)
      let write_counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (e : Sdfg.edge) ->
          match ((Sdfg.node_by_id g e.e_dst).kind, e.e_memlet) with
          | Sdfg.Access n, Some _ ->
              Hashtbl.replace write_counts n
                (1 + Option.value ~default:0 (Hashtbl.find_opt write_counts n))
          | _ -> ())
        (Sdfg.edges g);
      let reader_edges =
        List.filter
          (fun (e : Sdfg.edge) ->
            match
              ((Sdfg.node_by_id g e.e_src).kind,
               (Sdfg.node_by_id g e.e_dst).kind,
               e.e_dst_conn, e.e_memlet)
            with
            | Sdfg.Access _, Sdfg.TaskletN _, Some _, Some m -> m.wcr = None
            | _ -> false)
          (Sdfg.edges g)
      in
      List.iter
        (fun (re : Sdfg.edge) ->
          match re.e_memlet with
          | Some m when List.for_all Range.is_index m.subset ->
              let key = Range.to_string m.subset in
              let matching =
                List.filter
                  (fun (data, wkey, _, _, _) ->
                    String.equal data m.data && String.equal wkey key)
                  writes
              in
              (match matching with
              | [ (_, _, writer_nid, wconn, _) ]
                when Hashtbl.find_opt write_counts m.data = Some 1
                     && writer_nid <> re.e_dst
                     && reachable g writer_nid re.e_dst
                     && not (reachable g re.e_dst writer_nid) ->
                  (* Unique ordered write: forward the value directly. *)
                  Sdfg.set_edges g @@
                    List.map
                      (fun (x : Sdfg.edge) ->
                        if x == re then
                          {
                            x with
                            e_src = writer_nid;
                            e_src_conn = Some wconn;
                            e_memlet = None;
                          }
                        else x)
                      (Sdfg.edges g);
                  changed := true
              | _ -> ())
          | _ -> ())
        reader_edges;
      Graph_util.prune_isolated_access g)
    (Sdfg.states sdfg);
  !changed
