(** Update detection — the AugAssignToWCR transformation (§6.1).

    A tasklet that reads [A[s]], combines it with an associative binary
    operation, and writes the result back to the same [A[s]] becomes an
    {e update}: the read edge disappears and the write memlet carries a
    write-conflict-resolution function. Distinguishing updates from writes
    enables parallelization-safe reductions and wait-free operations (and,
    here, later local-storage promotion of accumulators). *)

open Dcir_sdfg

let assoc_wcr : Texpr.binop -> Sdfg.wcr option = function
  | Texpr.BAdd -> Some Sdfg.WcrSum
  | Texpr.BMul -> Some Sdfg.WcrProd
  | Texpr.BMax -> Some Sdfg.WcrMax
  | Texpr.BMin -> Some Sdfg.WcrMin
  | Texpr.BSub | Texpr.BDiv | Texpr.BMod -> None

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let rec process_graph (g : Sdfg.graph) =
    List.iter
      (fun (n : Sdfg.node) ->
        match n.kind with
        | Sdfg.MapN mn -> process_graph mn.m_body
        | Sdfg.TaskletN ({ code = Native [ (out, expr) ]; _ } as t) -> (
            (* The output may feed exactly one memlet write and nothing
               else: a value edge to another tasklet carries the full
               pre-update expression, which the rewrite would destroy.
               Pure ordering (connector-less) edges are fine. *)
            let all_outs = Sdfg.node_out_edges g n in
            let outs =
              List.filter (fun (e : Sdfg.edge) -> e.e_memlet <> None) all_outs
            in
            let has_value_consumer =
              List.exists
                (fun (e : Sdfg.edge) ->
                  e.e_memlet = None && e.e_src_conn <> None)
                all_outs
            in
            if has_value_consumer then ()
            else
            let ins = Sdfg.node_in_edges g n in
            match outs with
            | [ oe ] -> (
                match oe.e_memlet with
                | Some om when om.wcr = None -> (
                    (* The rewrite moves the read of [A[s]] from its own
                       scheduling point to the write's: the runtime applies
                       [A[s] = wcr (A[s], value)] when the update commits.
                       Any other write to [A] in this graph could be ordered
                       into that window (e.g. [b=a[i]; a[i]=x; a[i]=a[i]+b]
                       after load forwarding), so the pattern is only an
                       update when the tasklet's write is the sole write to
                       the container here. *)
                    let other_writer =
                      List.exists
                        (fun (x : Sdfg.edge) ->
                          (x != oe) && x.e_memlet <> None
                          &&
                          match (Sdfg.node_by_id g x.e_dst).kind with
                          | Sdfg.Access c -> String.equal c om.data
                          | _ -> false)
                        (Sdfg.edges g)
                      || List.exists
                           (fun (x : Sdfg.node) ->
                             match x.kind with
                             | Sdfg.MapN mn ->
                                 List.mem om.data
                                   (Sdfg.written_containers mn.m_body)
                             | _ -> false)
                           (Sdfg.nodes g)
                    in
                    if other_writer then ()
                    else
                    (* Find a read of the same container+subset feeding a
                       top-level associative op — either directly, or through
                       one intermediate scalar copy (the converter's
                       load-into-scalar pattern). *)
                    let reads_target (ie : Sdfg.edge) : bool =
                      match (ie.e_dst_conn, ie.e_memlet) with
                      | Some _, Some im when im.wcr = None ->
                          (String.equal im.data om.data
                          && Dcir_symbolic.Range.equal im.subset om.subset)
                          || im.subset = []
                             && (match
                                   Graph_util.writer_edges g im.data
                                 with
                                | [ (_, we) ] -> (
                                    match
                                      ((Sdfg.node_by_id g we.e_src).kind,
                                       we.e_memlet)
                                    with
                                    | Sdfg.Access src, Some wm ->
                                        String.equal src om.data
                                        && String.equal wm.data om.data
                                        && Dcir_symbolic.Range.equal wm.subset
                                             om.subset
                                    | _ -> false)
                                | _ -> false)
                      | _ -> false
                    in
                    let matching_in = List.find_opt reads_target ins in
                    match matching_in with
                    | Some ie -> (
                        let conn = Option.get ie.e_dst_conn in
                        let rest =
                          match expr with
                          | Texpr.TBin (op, Texpr.TIn c, rhs)
                            when String.equal c conn
                                 && not (List.mem conn (Texpr.free_inputs rhs))
                            ->
                              Option.map (fun w -> (w, rhs)) (assoc_wcr op)
                          | Texpr.TBin (op, lhs, Texpr.TIn c)
                            when String.equal c conn
                                 && not (List.mem conn (Texpr.free_inputs lhs))
                            ->
                              Option.map (fun w -> (w, lhs)) (assoc_wcr op)
                          | _ -> None
                        in
                        match rest with
                        | Some (w, rhs) ->
                            let t' =
                              {
                                t with
                                t_inputs =
                                  List.filter
                                    (fun c -> not (String.equal c conn))
                                    t.t_inputs;
                                code = Sdfg.Native [ (out, rhs) ];
                              }
                            in
                            Sdfg.set_nodes g @@
                              List.map
                                (fun (x : Sdfg.node) ->
                                  if x.nid = n.nid then
                                    { x with kind = Sdfg.TaskletN t' }
                                  else x)
                                (Sdfg.nodes g);
                            oe.e_memlet <- Some { om with wcr = Some w };
                            Sdfg.set_edges g @@
                              List.filter (fun (x : Sdfg.edge) -> x != ie)
                                (Sdfg.edges g);
                            Graph_util.prune_isolated_access g;
                            changed := true
                        | None -> ())
                    | None -> ())
                | _ -> ())
            | _ -> ())
        | _ -> ())
      (Sdfg.nodes g)
  in
  List.iter (fun (st : Sdfg.state) -> process_graph st.s_graph) (Sdfg.states sdfg);
  !changed
