(** Memory-reducing loop fusion (§6.3).

    Fuses adjacent state-machine loops with identical symbolic ranges when
    every access to a container shared by both bodies is the {e same}
    single-element subset per iteration (after renaming the second loop's
    induction symbol). Together with scalar forwarding and dead dataflow
    elimination this shrinks intermediate arrays that are written in one
    loop and read in the next — the transformation that removes Mish's
    intermediate tensors and fuses the bandwidth benchmark's passes. *)

open Dcir_sdfg
open Dcir_symbolic

let rec bexpr_equal (a : Bexpr.t) (b : Bexpr.t) : bool =
  match (a, b) with
  | Bexpr.Bool x, Bexpr.Bool y -> x = y
  | Bexpr.Cmp (o1, a1, b1), Bexpr.Cmp (o2, a2, b2) ->
      o1 = o2 && Expr.equal a1 a2 && Expr.equal b1 b2
  | Bexpr.And (x1, y1), Bexpr.And (x2, y2)
  | Bexpr.Or (x1, y1), Bexpr.Or (x2, y2) ->
      bexpr_equal x1 x2 && bexpr_equal y1 y2
  | Bexpr.Not x, Bexpr.Not y -> bexpr_equal x y
  | _ -> false

(* Rename a symbol inside one graph (subsets + tasklet code + declared
   tasklet symbols + map ranges). [t_syms] must be renamed for both tasklet
   kinds: the interpreter binds those names against the interstate-edge
   environment at run time, and the old induction symbol is no longer
   assigned after fusion. Opaque bodies bind symbols positionally through
   [t_syms], but any residual [sdfg.sym] expression attributes are rewritten
   too so the graph's free-symbol accounting stays truthful. *)
let rename_sym_in_graph (g : Sdfg.graph) ~(from_ : string) ~(to_ : string) :
    unit =
  let lookup s = if String.equal s from_ then Some (Expr.sym to_) else None in
  let rename_name s = if String.equal s from_ then to_ else s in
  let rec go (g : Sdfg.graph) =
    List.iter
      (fun (e : Sdfg.edge) ->
        match e.e_memlet with
        | Some m ->
            e.e_memlet <-
              Some
                {
                  m with
                  subset = Range.subst lookup m.subset;
                  other = Option.map (Range.subst lookup) m.other;
                }
        | None -> ())
      (Sdfg.edges g);
    Sdfg.set_nodes g @@
      List.map
        (fun (n : Sdfg.node) ->
          match n.kind with
          | Sdfg.TaskletN ({ code = Native assigns; _ } as t) ->
              {
                n with
                kind =
                  Sdfg.TaskletN
                    {
                      t with
                      t_syms = List.map rename_name t.t_syms;
                      code =
                        Sdfg.Native
                          (List.map
                             (fun (o, e) -> (o, Texpr.subst_syms lookup e))
                             assigns);
                    };
              }
          | Sdfg.TaskletN ({ code = Opaque f; _ } as t) ->
              (match f.Dcir_mlir.Ir.fbody with
              | Some r ->
                  Dcir_mlir.Ir.walk_region r (fun o ->
                      match Dcir_mlir.Sdfg_d.sym_expr o with
                      | Some e ->
                          Dcir_mlir.Ir.set_attr o Dcir_mlir.Sdfg_d.k_expr
                            (Dcir_mlir.Attr.AExpr (Expr.subst lookup e))
                      | None -> ())
              | None -> ());
              {
                n with
                kind =
                  Sdfg.TaskletN
                    { t with t_syms = List.map rename_name t.t_syms };
              }
          | Sdfg.MapN mn ->
              mn.m_ranges <- Range.subst lookup mn.m_ranges;
              go mn.m_body;
              n
          | _ -> n)
        (Sdfg.nodes g)
  in
  go g

(* All memlet subsets on container [c] in a graph. *)
let subsets_of (g : Sdfg.graph) (c : string) : Range.t list =
  List.filter_map
    (fun (e : Sdfg.edge) ->
      match e.e_memlet with
      | Some m when String.equal m.data c -> Some m.subset
      | Some m when m.other <> None -> (
          match (Sdfg.node_by_id g e.e_dst).kind with
          | Sdfg.Access n when String.equal n c -> m.other
          | _ -> None)
      | _ -> None)
    (Sdfg.edges g)

let can_fuse (sdfg : Sdfg.t) (l1 : Loop_analysis.loop)
    (l2 : Loop_analysis.loop) (b1 : Sdfg.state) (b2 : Sdfg.state) : bool =
  let syms = Graph_util.true_symbols sdfg in
  let rename s = Expr.subst_one l2.sym (Expr.sym l1.sym) s in
  let rename_range (r : Range.t) =
    List.map
      (fun (d : Range.dim) ->
        { Range.lo = rename d.lo; hi = rename d.hi; step = rename d.step })
      r
  in
  Expr.equal l1.init l2.init
  && Expr.equal l1.step l2.step
  && bexpr_equal l1.cond
       (match l2.cond with
       | Bexpr.Cmp (op, a, b) -> Bexpr.Cmp (op, rename a, rename b)
       | c -> c)
  &&
  let module S = Set.Make (String) in
  let touched g = S.of_list (Sdfg.read_containers g @ Sdfg.written_containers g) in
  let shared = S.inter (touched b1.s_graph) (touched b2.s_graph) in
  let written c =
    List.mem c (Sdfg.written_containers b1.s_graph)
    || List.mem c (Sdfg.written_containers b2.s_graph)
  in
  S.for_all
    (fun c ->
      let s1 = subsets_of b1.s_graph c in
      let s2 = List.map rename_range (subsets_of b2.s_graph c) in
      match s1 @ s2 with
      | [] -> true
      | first :: rest ->
          List.for_all Range.is_index first
          && Graph_util.subset_analyzable syms first
          && List.for_all (fun s -> Range.equal s first) rest
          (* If either loop writes the container, the common subset must
             vary with the iteration: a loop-invariant element written in
             the first loop and read in the second sees partial sums after
             fusion. *)
          && ((not (written c)) || List.mem l1.sym (Range.free_syms first)))
    shared

(* Merge b2's graph into b1 with sequencing edges (same discipline as state
   fusion). *)
let merge_bodies (b1 : Sdfg.state) (b2 : Sdfg.state) : unit =
  let g1 = b1.s_graph and g2 = b2.s_graph in
  let module S = Set.Make (String) in
  let touched g = S.of_list (Sdfg.read_containers g @ Sdfg.written_containers g) in
  let common = S.inter (touched g1) (touched g2) in
  let writes1 = S.of_list (Sdfg.written_containers g1) in
  let writes2 = S.of_list (Sdfg.written_containers g2) in
  let deps =
    S.fold
      (fun c acc ->
        if (not (S.mem c writes1)) && not (S.mem c writes2) then acc
        else
          List.concat_map
            (fun ((n1, r1) : Sdfg.node * _) ->
              List.filter_map
                (fun ((n2, r2) : Sdfg.node * _) ->
                  if r1 = `Read && r2 = `Read then None else Some (n1.nid, n2.nid))
                (Graph_util.event_nodes g2 c))
            (Graph_util.event_nodes g1 c)
          @ acc)
      common []
  in
  Sdfg.set_nodes g1 @@ (Sdfg.nodes g1) @ (Sdfg.nodes g2);
  Sdfg.set_edges g1 @@ (Sdfg.edges g1) @ (Sdfg.edges g2);
  List.iter
    (fun (a, b) ->
      if a <> b then
        Sdfg.set_edges g1 @@
          (Sdfg.edges g1)
          @ [ { Sdfg.e_src = a; e_src_conn = None; e_dst = b; e_dst_conn = None;
                e_memlet = None } ])
    deps

(* Normalization: a state sitting between a loop's exit and the next
   construct moves above the loop when it is independent of it (disjoint
   containers, no use of the induction symbol). This exposes adjacent-loop
   pairs separated by e.g. an accumulator initialization. *)
let hoist_independent_state (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let loops = Loop_analysis.find_loops sdfg in
  List.iter
    (fun (l : Loop_analysis.loop) ->
      if !changed then ()
      else
        match Sdfg.find_state sdfg l.exit_state with
        | Some x
          when (Sdfg.nodes x.s_graph) <> []
               && List.length (Sdfg.in_edges sdfg x.s_label) = 1
               && List.length (Sdfg.out_edges sdfg x.s_label) = 1 -> (
            let out = List.hd (Sdfg.out_edges sdfg x.s_label) in
            let body_states =
              List.filter
                (fun (s : Sdfg.state) -> List.mem s.s_label l.body)
                (Sdfg.states sdfg)
            in
            let body_containers =
              List.concat_map
                (fun (s : Sdfg.state) ->
                  Sdfg.read_containers s.s_graph
                  @ Sdfg.written_containers s.s_graph)
                body_states
            in
            let x_containers =
              Sdfg.read_containers x.s_graph @ Sdfg.written_containers x.s_graph
            in
            let independent =
              out.ie_cond = Bexpr.Bool true
              && List.for_all
                   (fun c -> not (List.mem c body_containers))
                   x_containers
              && (not (List.mem l.sym (Sdfg.graph_free_syms x.s_graph)))
              && (* keep allocation-charge states in place *)
              not
                (Hashtbl.fold
                   (fun _ (c : Sdfg.container) acc ->
                     acc || c.alloc_state = Some x.s_label)
                   sdfg.containers false)
            in
            if independent then begin
              (* P --ea--> G ... G --ex--> X --out--> H   becomes
                 P --ea'--> X --[ea assigns]--> G ... G --ex+out assigns--> H *)
              let entry = l.entry_edge in
              let entry_assigns = entry.ie_assign in
              Sdfg.set_istate_edges sdfg @@
                List.filter_map
                  (fun (e : Sdfg.istate_edge) ->
                    if e == entry then
                      Some { e with ie_dst = x.s_label; ie_assign = [] }
                    else if e == l.exit_edge then
                      Some { e with ie_dst = out.ie_dst;
                             ie_assign = e.ie_assign @ out.ie_assign }
                    else if e == out then None
                    else Some e)
                  (Sdfg.istate_edges sdfg);
              Sdfg.add_istate_edge sdfg ~assign:entry_assigns ~src:x.s_label
                ~dst:l.guard ();
              changed := true
            end)
        | _ -> ())
    loops;
  !changed

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    if hoist_independent_state sdfg then begin
      changed := true;
      progress := true
    end;
    let loops = Loop_analysis.find_loops sdfg in
    let adjacent =
      List.concat_map
        (fun (l1 : Loop_analysis.loop) ->
          List.filter_map
            (fun (l2 : Loop_analysis.loop) ->
              (* Adjacent either directly (l1's exit edge is l2's entry) or
                 through one empty pass-through state. *)
              if l1.exit_edge == l2.entry_edge then Some (l1, l2, None)
              else if
                String.equal l1.exit_state l2.entry_edge.ie_src
                && (match Sdfg.find_state sdfg l1.exit_state with
                   | Some s ->
                       (Sdfg.nodes s.s_graph) = []
                       && List.length (Sdfg.out_edges sdfg s.s_label) = 1
                       && List.length (Sdfg.in_edges sdfg s.s_label) = 1
                   | None -> false)
              then Some (l1, l2, Some l1.exit_state)
              else None)
            loops)
        loops
    in
    let candidate =
      List.find_opt
        (fun ((l1, l2, _) : Loop_analysis.loop * Loop_analysis.loop * _) ->
          match
            (Loop_analysis.single_state_body sdfg l1,
             Loop_analysis.single_state_body sdfg l2)
          with
          | Some b1, Some b2 -> can_fuse sdfg l1 l2 b1 b2
          | _ -> false)
        adjacent
    in
    match candidate with
    | Some (l1, l2, intermediate) ->
        let b1 = Option.get (Loop_analysis.single_state_body sdfg l1) in
        let b2 = Option.get (Loop_analysis.single_state_body sdfg l2) in
        rename_sym_in_graph b2.s_graph ~from_:l2.sym ~to_:l1.sym;
        merge_bodies b1 b2;
        (* Rewire: l1's back edge stays; l1's exit edge jumps to l2's exit
           target; l2's structure (guard, body, intermediate state) and its
           edges disappear. *)
        let removed_states =
          (match intermediate with Some x -> [ x ] | None -> [])
          @ [ l2.guard; b2.s_label ]
        in
        let new_exit = l2.exit_edge.ie_dst in
        (* Assignments riding on the removed edges (other loops'
           initializations, promoted scalars) must survive: fold them onto
           the surviving exit edge with sequential-merge semantics (an
           appended right-hand side reading an already-assigned symbol gets
           that expression inlined). The fused induction symbol's own
           updates are dropped. *)
        let drop_sym = List.filter (fun (sym, _) -> not (String.equal sym l2.sym)) in
        let seq_merge base extra =
          List.fold_left
            (fun acc (sym, ex) ->
              if List.mem_assoc sym acc then acc
              else
                let ex' = Expr.subst (fun sy -> List.assoc_opt sy acc) ex in
                acc @ [ (sym, ex') ])
            base extra
        in
        let exit_assigns =
          let base = drop_sym l1.exit_edge.ie_assign in
          let from_entry =
            if l1.exit_edge == l2.entry_edge then []
            else drop_sym l2.entry_edge.ie_assign
          in
          seq_merge (seq_merge base from_entry) (drop_sym l2.exit_edge.ie_assign)
        in
        Sdfg.set_states sdfg @@
          List.filter
            (fun (s : Sdfg.state) -> not (List.mem s.s_label removed_states))
            (Sdfg.states sdfg);
        Sdfg.set_istate_edges sdfg @@
          List.filter_map
            (fun (e : Sdfg.istate_edge) ->
              if e == l1.exit_edge then
                Some { e with ie_dst = new_exit; ie_assign = exit_assigns }
              else if
                List.mem e.ie_src removed_states
                || List.mem e.ie_dst removed_states
              then None
              else Some e)
            (Sdfg.istate_edges sdfg);
        changed := true;
        progress := true
    | None -> ()
  done;
  !changed
