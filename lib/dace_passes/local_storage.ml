(** Local-storage promotion of loop-invariant array references — the
    SDFG-side analogue of register promotion (part of the §6.3 memory
    scheduling optimizations, and what DaCe needs to keep accumulators like
    [C[i,j]] out of memory in the innermost loop).

    For a sequential loop whose (single-state) body accesses a container
    only through one loop-invariant single-element subset, the element is
    copied into a register transient before the loop, every body access is
    redirected to the register, and the value is written back after the
    loop. Applies to both native and opaque tasklet bodies (the rewrite is
    at the memlet level, not inside tasklet code). *)

open Dcir_sdfg
open Dcir_symbolic

let counter = ref 0

(* All edges in [g] whose memlet touches [c] (as data or copy dst). *)
let touching_edges (g : Sdfg.graph) (c : string) : Sdfg.edge list =
  List.filter
    (fun (e : Sdfg.edge) ->
      match e.e_memlet with
      | Some m ->
          String.equal m.data c
          || (match (Sdfg.node_by_id g e.e_dst).kind with
             | Sdfg.Access n -> String.equal n c && m.other <> None
             | _ -> false)
      | None -> false)
    (Sdfg.edges g)

(* One promotion per call; [run] iterates because each splice invalidates
   the loop analysis (edges are replaced functionally). *)
let promote_one (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let loops = Loop_analysis.find_loops sdfg in
  List.iter
    (fun (l : Loop_analysis.loop) ->
      (* Symbols in scope at this loop's position: argument symbols and the
         induction symbols of enclosing loops — not arbitrary edge-assigned
         symbols, which may be unbound when the pre/post states run. *)
      let syms : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter (fun s -> Hashtbl.replace syms s ()) sdfg.arg_symbols;
      List.iter
        (fun (outer : Loop_analysis.loop) ->
          if List.mem l.guard outer.body then
            Hashtbl.replace syms outer.sym ())
        loops;
      if !changed then ()
      else
      match Loop_analysis.single_state_body sdfg l with
      | None -> ()
      | Some body ->
          let g = body.s_graph in
          (* Skip bodies containing maps (subset reasoning would need the
             map params). *)
          let has_map =
            List.exists
              (fun (n : Sdfg.node) ->
                match n.kind with Sdfg.MapN _ -> true | _ -> false)
              (Sdfg.nodes g)
          in
          if not has_map then begin
            let module S = Set.Make (String) in
            let candidates =
              S.elements
                (S.of_list
                   (Sdfg.read_containers g @ Sdfg.written_containers g))
              |> List.filter (fun c ->
                     match Hashtbl.find_opt sdfg.containers c with
                     | Some cont ->
                         (not (Sdfg.is_scalar cont))
                         && cont.storage <> Sdfg.Register
                     | None -> false)
            in
            List.iter
              (fun cname ->
                if !changed then ()
                else
                let edges = touching_edges g cname in
                let subsets =
                  List.filter_map
                    (fun (e : Sdfg.edge) ->
                      match e.e_memlet with
                      | Some m when String.equal m.data cname -> Some m.subset
                      | Some m -> m.other
                      | None -> None)
                    edges
                in
                match subsets with
                | first :: rest
                  when List.for_all Range.is_index first
                       && Graph_util.subset_analyzable syms first
                       && (not (List.mem l.sym (Range.free_syms first)))
                       && List.for_all (fun s -> Range.equal s first) rest
                       && List.exists
                            (fun (e : Sdfg.edge) ->
                              (* only promote read-modify-write patterns *)
                              match (Sdfg.node_by_id g e.e_dst).kind with
                              | Sdfg.Access n -> String.equal n cname
                              | _ -> false)
                            edges ->
                    incr counter;
                    let reg = Sdfg.fresh_name sdfg "_ls" in
                    let cont = Sdfg.container sdfg cname in
                    ignore
                      (Sdfg.add_container sdfg ~transient:true
                         ~storage:Sdfg.Register ~dtype:cont.dtype ~shape:[]
                         reg);
                    (* Redirect body accesses. *)
                    List.iter
                      (fun (e : Sdfg.edge) ->
                        match e.e_memlet with
                        | Some m when String.equal m.data cname ->
                            e.e_memlet <-
                              Some { m with data = reg; subset = [] }
                        | Some m -> e.e_memlet <- Some { m with other = Some [] }
                        | None -> ())
                      edges;
                    (* Rename the access nodes of cname to reg. *)
                    Sdfg.set_nodes g @@
                      List.map
                        (fun (n : Sdfg.node) ->
                          match n.kind with
                          | Sdfg.Access c when String.equal c cname ->
                              { n with kind = Sdfg.Access reg }
                          | _ -> n)
                        (Sdfg.nodes g);
                    (* Preload state before the loop. *)
                    let pre = Sdfg.add_state sdfg (Sdfg.fresh_name sdfg "ls_pre") in
                    let src = Sdfg.add_node pre.s_graph (Sdfg.Access cname) in
                    let dst = Sdfg.add_node pre.s_graph (Sdfg.Access reg) in
                    ignore
                      (Sdfg.add_edge pre.s_graph
                         ~memlet:
                           { Sdfg.data = cname; subset = first; wcr = None;
                             other = Some [] }
                         src dst);
                    (* Poststore state after the loop. *)
                    let post =
                      Sdfg.add_state sdfg (Sdfg.fresh_name sdfg "ls_post")
                    in
                    let src2 = Sdfg.add_node post.s_graph (Sdfg.Access reg) in
                    let dst2 = Sdfg.add_node post.s_graph (Sdfg.Access cname) in
                    ignore
                      (Sdfg.add_edge post.s_graph
                         ~memlet:
                           { Sdfg.data = reg; subset = []; wcr = None;
                             other = Some first }
                         src2 dst2);
                    (* Splice: entry edge now targets the preload state, the
                       exit edge targets the poststore. The loop-entry
                       assignments (e.g. [i := 0]) move to the pre->guard
                       edge so the guard keeps its loop shape for later
                       analyses; [first] never references them (checked by
                       the in-scope symbol test above). *)
                    let old_entry_dst = l.entry_edge.ie_dst in
                    let old_exit_dst = l.exit_edge.ie_dst in
                    let entry_assigns = l.entry_edge.ie_assign in
                    (* Exit-edge assignments (e.g. an enclosing loop's
                       induction increment after fusion) must fire *after*
                       the write-back, or the store subset would be
                       evaluated with post-increment symbol values. *)
                    let exit_assigns = l.exit_edge.ie_assign in
                    Sdfg.set_istate_edges sdfg @@
                      List.map
                        (fun (e : Sdfg.istate_edge) ->
                          if e == l.entry_edge then
                            { e with ie_dst = pre.s_label; ie_assign = [] }
                          else if e == l.exit_edge then
                            { e with ie_dst = post.s_label; ie_assign = [] }
                          else e)
                        (Sdfg.istate_edges sdfg);
                    Sdfg.add_istate_edge sdfg ~assign:entry_assigns
                      ~src:pre.s_label ~dst:old_entry_dst ();
                    Sdfg.add_istate_edge sdfg ~assign:exit_assigns
                      ~src:post.s_label ~dst:old_exit_dst ();
                    changed := true
                | _ -> ())
              candidates
          end)
    loops;
  !changed

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let rounds = ref 0 in
  while promote_one sdfg && !rounds < 200 do
    incr rounds;
    changed := true
  done;
  !changed
