(** Memory (pre-)allocation heuristics (§6.3).

    Two passes:
    - {b stack allocation}: a transient container with a static shape small
      enough for the stack (and scalars, which go to registers) stops being
      heap-allocated — removing the [malloc] call and improving locality;
    - {b allocation hoisting}: a container allocated inside a loop (its
      allocation cost recurring every iteration) is hoisted to the outermost
      scope when no data races occur — for transients this holds whenever
      the container does not need to persist across iterations, which is
      exactly the case for converter-generated in-loop allocations (each
      iteration fully overwrites before reading: we verify there is no read
      in a state executing before any write, conservatively by requiring the
      container to be written in the same state as, or before, every read
      within the loop body; failing that, the hoist is skipped). *)

open Dcir_sdfg

(* 256 KiB: small enough to be safe on a typical 8 MiB stack even with a few
   live containers, large enough to catch Polybench vectors (the gesummv
   case the paper describes). *)
let stack_limit_bytes = 256 * 1024

let static_bytes (c : Sdfg.container) : int option =
  let rec go acc = function
    | [] -> Some acc
    | d :: rest -> (
        match Dcir_symbolic.Expr.is_constant d with
        | Some n when n >= 0 -> go (acc * n) rest
        | _ -> None)
  in
  Option.map (fun elems -> elems * Sdfg.elem_bytes c) (go 1 c.shape)

let stack_allocation (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  Hashtbl.iter
    (fun _ (c : Sdfg.container) ->
      if c.transient && c.storage = Sdfg.Heap then
        match static_bytes c with
        | Some bytes when bytes <= stack_limit_bytes ->
            c.storage <- (if Sdfg.is_scalar c then Sdfg.Register else Sdfg.Stack);
            c.alloc_state <- None;
            c.alloc_in_loop <- false;
            changed := true
        | _ -> ())
    sdfg.containers;
  !changed

(* Within the loop body states, is every read of [name] preceded (in every
   execution of one iteration) by a write? Conservative check: the first
   body state (in state-machine order) touching [name] must write it, and
   no state reads it without writing it earlier in the same state-sequence.
   We approximate with: no body state reads [name] unless some body state
   writes it, and the container is not live-in (not read before written
   within the fused body state, which holds when the state's own graph
   writes it). *)
let overwritten_each_iteration (sdfg : Sdfg.t) (l : Loop_analysis.loop)
    (name : string) : bool =
  let body_states =
    List.filter
      (fun (s : Sdfg.state) -> List.mem s.s_label l.body)
      (Sdfg.states sdfg)
  in
  (* Find first body state touching the container along the body order. *)
  let touching =
    List.filter
      (fun (s : Sdfg.state) ->
        List.mem name (Sdfg.read_containers s.s_graph)
        || List.mem name (Sdfg.written_containers s.s_graph))
      body_states
  in
  match touching with
  | [] -> true
  | first :: _ ->
      (* The first touching state must write before (or without) reading:
         sound approximation — it writes it and either does not read it, or
         reads only what it wrote (same-state read-after-write is ordered by
         the fusion dependency edges). *)
      List.mem name (Sdfg.written_containers first.s_graph)

let allocation_hoisting (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let loops = Loop_analysis.find_loops sdfg in
  Hashtbl.iter
    (fun _ (c : Sdfg.container) ->
      if c.transient && c.alloc_in_loop then begin
        let alloc_in_body (l : Loop_analysis.loop) =
          match c.alloc_state with
          | Some s -> List.mem s l.body
          | None -> false
        in
        let enclosing = List.filter alloc_in_body loops in
        if
          enclosing <> []
          && List.for_all
               (fun l -> overwritten_each_iteration sdfg l c.cname)
               enclosing
        then begin
          c.alloc_in_loop <- false;
          changed := true
        end
      end)
    sdfg.containers;
  !changed

let run (sdfg : Sdfg.t) : bool =
  let a = allocation_hoisting sdfg in
  let b = stack_allocation sdfg in
  a || b
