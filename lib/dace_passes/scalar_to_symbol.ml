(** Scalar-to-symbol promotion (§6.1, ④).

    Elevates scalar containers into symbolic expressions when they can be
    represented as such and do not change during their lifetime:

    - {b read-only scalar parameters} become argument symbols;
    - {b write-once scalars} whose defining tasklet is symbolically
      expressible become symbols assigned on the interstate edges leaving
      the defining state.

    This is the pass that turns converter-generated pseudo-symbol subsets
    ([_arg0[_const]]) into genuinely analyzable symbolic subsets; symbol
    propagation then simplifies them further ([_arg0[0]], Fig 5's ④→⑤).

    Must run before state fusion: promotion assumes a scalar's readers live
    in states strictly after its defining state, which holds for the
    converter's one-op-per-state output. *)

open Dcir_sdfg
open Dcir_symbolic

let log_src = Logs.Src.create "dcir.dace.s2s"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* The source scalar container feeding each input connector of a tasklet
   node, when every such input is a rank-0 read. *)
let scalar_input_sources (g : Sdfg.graph) (n : Sdfg.node) :
    (string * string) list option =
  let ins = Sdfg.node_in_edges g n in
  let sources =
    List.map
      (fun (e : Sdfg.edge) ->
        match (e.e_dst_conn, e.e_memlet) with
        | Some conn, Some m when m.subset = [] -> Some (conn, m.data)
        | _ -> None)
      ins
  in
  if List.for_all Option.is_some sources then
    Some (List.map Option.get sources)
  else None

(* Rewrite a reader tasklet so connector [conn] becomes the symbol [name]. *)
let replace_input_with_symbol (t : Sdfg.tasklet) (conn : string)
    (name : string) : Sdfg.tasklet option =
  match t.code with
  | Sdfg.Opaque _ -> None
  | Sdfg.Native assigns ->
      Some
        {
          t with
          t_inputs = List.filter (fun c -> not (String.equal c conn)) t.t_inputs;
          code =
            Sdfg.Native
              (List.map
                 (fun (out, e) -> (out, Texpr.subst_input conn (Texpr.TSym name) e))
                 assigns);
        }

(* Replace the tasklet record inside a node (nodes are immutable records;
   rebuild the node list). *)
let swap_tasklet (g : Sdfg.graph) (nid : int) (t : Sdfg.tasklet) : unit =
  Sdfg.set_nodes g @@
    List.map
      (fun (n : Sdfg.node) ->
        if n.nid = nid then { n with kind = Sdfg.TaskletN t } else n)
      (Sdfg.nodes g)

(* Can every reader of [name] be rewritten? Readers are either tasklet
   inputs (native only) or copy sources; copies stay (they just read the
   value through memory) — only rank-0 tasklet inputs need rewriting. *)
let rewire_readers (sdfg : Sdfg.t) (name : string) : bool =
  let readers = Graph_util.all_reader_edges sdfg name in
  let plan =
    List.map
      (fun ((_, g, e) : Sdfg.state * Sdfg.graph * Sdfg.edge) ->
        let dst = Sdfg.node_by_id g e.e_dst in
        match (dst.kind, e.e_dst_conn) with
        | Sdfg.TaskletN t, Some conn -> (
            match replace_input_with_symbol t conn name with
            | Some _ -> Some (`Swap (g, e, dst.nid, conn))
            | None -> None)
        | Sdfg.Access _, _ ->
            (* Copy out of the scalar: keep as a symbol-materializing
               tasklet? Simpler: leave the copy; the scalar keeps existing.
               Promotion with remaining copies is still correct only if the
               container also keeps its value — so reject. *)
            None
        | _ -> None)
      readers
  in
  if List.for_all Option.is_some plan then begin
    List.iter
      (function
        | Some (`Swap (g, e, nid, conn)) ->
            (* Re-read the node's current tasklet: one tasklet may read the
               scalar through several connectors (e.g. [n + n]), and each
               swap must build on the previous one, not on the original. *)
            (match (Sdfg.node_by_id g nid).kind with
            | Sdfg.TaskletN t -> (
                match replace_input_with_symbol t conn name with
                | Some t' -> swap_tasklet g nid t'
                | None -> ())
            | _ -> ());
            Sdfg.set_edges g @@
              List.filter (fun (x : Sdfg.edge) -> x != e) (Sdfg.edges g)
        | None -> ())
      plan;
    (* Removing a reader edge can leave the scalar's access node isolated
       in that reader's graph; prune it there and then, or the graph keeps
       an access node for a container about to be deleted. *)
    let pruned : Sdfg.graph list ref = ref [] in
    List.iter
      (function
        | Some (`Swap (g, _, _, _)) ->
            if not (List.memq g !pruned) then begin
              pruned := g :: !pruned;
              Graph_util.prune_isolated_access g
            end
        | None -> ())
      plan;
    true
  end
  else false

(* Remove an access node's incoming writer edge and the node if isolated. *)
let remove_writer (g : Sdfg.graph) (e : Sdfg.edge) : unit =
  Sdfg.set_edges g @@ List.filter (fun (x : Sdfg.edge) -> x != e) (Sdfg.edges g)

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    let referenced = Graph_util.symbolically_referenced sdfg in
    ignore referenced;
    let containers =
      Hashtbl.fold (fun _ c acc -> c :: acc) sdfg.containers []
      |> List.sort (fun (a : Sdfg.container) b -> compare a.cname b.cname)
    in
    List.iter
      (fun (c : Sdfg.container) ->
        if Sdfg.is_scalar c && c.dtype = Sdfg.DInt then begin
          let name = c.cname in
          let writers = Graph_util.all_writer_edges sdfg name in
          match writers with
          | [] when not c.transient ->
              (* Read-only scalar parameter -> argument symbol. *)
              if rewire_readers sdfg name then begin
                Sdfg.remove_container sdfg name;
                sdfg.arg_symbols <- sdfg.arg_symbols @ [ name ];
                (match sdfg.return_scalar with
                | Some r when String.equal r name ->
                    sdfg.return_scalar <- None;
                    sdfg.return_expr <- Some (Expr.sym name)
                | _ -> ());
                List.iter
                  (fun (st : Sdfg.state) ->
                    Graph_util.prune_isolated_access st.s_graph)
                  (Sdfg.states sdfg);
                Log.debug (fun f -> f "promoted parameter %s to symbol" name);
                changed := true;
                progress := true
              end
          | [ (st, g, e) ] when c.transient -> (
              (* Write-once transient: promotable if the writer is a native
                 tasklet with a symbolically-expressible value. *)
              let src = Sdfg.node_by_id g e.e_src in
              let value_expr =
                match (src.kind, e.e_src_conn) with
                | Sdfg.TaskletN { code = Native assigns; _ }, Some conn -> (
                    match List.assoc_opt conn assigns with
                    | Some texpr -> (
                        (* Inline rank-0 scalar inputs as pseudo-symbols. *)
                        match scalar_input_sources g src with
                        | Some sources ->
                            let inlined =
                              List.fold_left
                                (fun acc (cn, data) ->
                                  Texpr.subst_input cn (Texpr.TSym data) acc)
                                texpr sources
                            in
                            Texpr.to_expr inlined
                        | None -> None)
                    | None -> None)
                | Sdfg.Access other, None -> (
                    (* Copy from another scalar container. *)
                    match e.e_memlet with
                    | Some m when m.subset = [] && String.equal m.data other ->
                        Some (Expr.sym other)
                    | _ -> None)
                | _ -> None
              in
              match value_expr with
              | Some ex when e.e_memlet <> None
                             && (match e.e_memlet with
                                | Some m -> m.wcr = None
                                | None -> false)
                             && Sdfg.out_edges sdfg st.s_label <> [] ->
                  (* The write must only count scalar readers we can rewire
                     (pseudo-symbol readers are fine: the name becomes a true
                     symbol). *)
                  if rewire_readers sdfg name then begin
                    (* Delete the defining tasklet (if it only feeds this),
                       its input edges, and the access node. *)
                    let tasklet_feeds_only_this =
                      match src.kind with
                      | Sdfg.TaskletN _ ->
                          List.length (Sdfg.node_out_edges g src) = 1
                      | _ -> false
                    in
                    remove_writer g e;
                    if tasklet_feeds_only_this then
                      Graph_util.remove_nodes g [ src.nid ];
                    Graph_util.prune_isolated_access g;
                    Sdfg.remove_container sdfg name;
                    (* Assignment fires when leaving the defining state;
                       inline any assignments already on those edges so
                       simultaneous-assignment semantics stay correct. *)
                    List.iter
                      (fun (oe : Sdfg.istate_edge) ->
                        let ex' =
                          Expr.subst
                            (fun s -> List.assoc_opt s oe.ie_assign)
                            ex
                        in
                        oe.ie_assign <- oe.ie_assign @ [ (name, ex') ])
                      (Sdfg.out_edges sdfg st.s_label);
                    (match sdfg.return_scalar with
                    | Some r when String.equal r name ->
                        sdfg.return_scalar <- None;
                        sdfg.return_expr <- Some (Expr.sym name)
                    | _ -> ());
                    Log.debug (fun f ->
                        f "promoted scalar %s := %s" name (Expr.to_string ex));
                    changed := true;
                    progress := true
                  end
              | _ -> ())
          | _ -> ()
        end)
      containers
  done;
  !changed
