(** Shared queries over SDFG graphs used by the data-centric passes. *)

open Dcir_sdfg
open Dcir_symbolic

(** True symbols: bound by the caller or assigned on interstate edges.
    Everything else appearing in expressions is a scalar-container
    pseudo-symbol whose value changes over time — subsets mentioning those
    are not yet analyzable (§5.1's "set equal to the outer region"). *)
let true_symbols (sdfg : Sdfg.t) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace tbl s ()) sdfg.arg_symbols;
  List.iter
    (fun (e : Sdfg.istate_edge) ->
      List.iter (fun (s, _) -> Hashtbl.replace tbl s ()) e.ie_assign)
    (Sdfg.istate_edges sdfg);
  tbl

let expr_analyzable (syms : (string, unit) Hashtbl.t) (e : Expr.t) : bool =
  List.for_all (fun s -> Hashtbl.mem syms s) (Expr.free_syms e)

let subset_analyzable (syms : (string, unit) Hashtbl.t) (r : Range.t) : bool =
  List.for_all (fun s -> Hashtbl.mem syms s) (Range.free_syms r)

(** Every name a graph reads {e symbolically} — in memlet subsets, map
    ranges, native tasklet expressions, or declared tasklet symbol reads
    (recursively through map bodies). Before scalar-to-symbol promotion
    these may be scalar-container pseudo-symbols, which the interpreter
    resolves by loading the container at evaluation time — so a state
    writing such a container must stay strictly ordered before any state
    reading it symbolically. *)
let rec symbol_reads (g : Sdfg.graph) : string list =
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  let add ss = List.iter (fun s -> acc := S.add s !acc) ss in
  let add_range (r : Range.t) = add (Range.free_syms r) in
  let rec texpr (e : Texpr.t) =
    match e with
    | Texpr.TSym s -> acc := S.add s !acc
    | Texpr.TFloat _ | TInt _ | TIn _ -> ()
    | Texpr.TIndex (_, idxs) -> List.iter texpr idxs
    | Texpr.TBin (_, a, b) | TCmp (_, a, b) -> texpr a; texpr b
    | Texpr.TSelect (a, b, c) -> texpr a; texpr b; texpr c
    | Texpr.TUn (_, a) -> texpr a
    | Texpr.TCall (_, args) -> List.iter texpr args
  in
  List.iter
    (fun (e : Sdfg.edge) ->
      match e.e_memlet with
      | Some m ->
          add_range m.subset;
          Option.iter add_range m.other
      | None -> ())
    (Sdfg.edges g);
  List.iter
    (fun (n : Sdfg.node) ->
      match n.kind with
      | Sdfg.Access _ -> ()
      | Sdfg.TaskletN t -> (
          add t.t_syms;
          match t.code with
          | Sdfg.Native code -> List.iter (fun (_, e) -> texpr e) code
          | Sdfg.Opaque _ -> ())
      | Sdfg.MapN mn ->
          add_range mn.m_ranges;
          add (symbol_reads mn.m_body))
    (Sdfg.nodes g);
  S.elements !acc

(** Edges writing into access nodes of [name] in graph [g] (recursively,
    maps included), with the graph they live in. *)
let rec writer_edges (g : Sdfg.graph) (name : string) :
    (Sdfg.graph * Sdfg.edge) list =
  let here =
    List.filter
      (fun (e : Sdfg.edge) ->
        match ((Sdfg.node_by_id g e.e_dst).kind, e.e_memlet) with
        | Sdfg.Access n, Some m ->
            String.equal n name
            && (String.equal m.data name || m.other <> None)
        | _ -> false)
      (Sdfg.edges g)
    |> List.map (fun e -> (g, e))
  in
  here
  @ List.concat_map
      (fun (n : Sdfg.node) ->
        match n.kind with
        | Sdfg.MapN mn -> writer_edges mn.m_body name
        | _ -> [])
      (Sdfg.nodes g)

(** Edges reading from access nodes of [name] (recursively). *)
let rec reader_edges (g : Sdfg.graph) (name : string) :
    (Sdfg.graph * Sdfg.edge) list =
  let here =
    List.filter
      (fun (e : Sdfg.edge) ->
        match ((Sdfg.node_by_id g e.e_src).kind, e.e_memlet) with
        | Sdfg.Access n, Some m -> String.equal n name && String.equal m.data name
        | _ -> false)
      (Sdfg.edges g)
    |> List.map (fun e -> (g, e))
  in
  here
  @ List.concat_map
      (fun (n : Sdfg.node) ->
        match n.kind with
        | Sdfg.MapN mn -> reader_edges mn.m_body name
        | _ -> [])
      (Sdfg.nodes g)

let all_writer_edges (sdfg : Sdfg.t) (name : string) :
    (Sdfg.state * Sdfg.graph * Sdfg.edge) list =
  List.concat_map
    (fun (st : Sdfg.state) ->
      List.map (fun (g, e) -> (st, g, e)) (writer_edges st.s_graph name))
    (Sdfg.states sdfg)

let all_reader_edges (sdfg : Sdfg.t) (name : string) :
    (Sdfg.state * Sdfg.graph * Sdfg.edge) list =
  List.concat_map
    (fun (st : Sdfg.state) ->
      List.map (fun (g, e) -> (st, g, e)) (reader_edges st.s_graph name))
    (Sdfg.states sdfg)

(** Container names referenced as pseudo-symbols anywhere (subsets, tasklet
    code, conditions, assignments, shapes): these cannot be removed or
    forwarded until promoted. *)
let symbolically_referenced (sdfg : Sdfg.t) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s -> if Hashtbl.mem sdfg.containers s then Hashtbl.replace tbl s ())
    (Sdfg.free_syms sdfg);
  tbl

(** Remove nodes by id and every edge touching them. *)
let remove_nodes (g : Sdfg.graph) (ids : int list) : unit =
  Sdfg.set_nodes g @@ List.filter (fun (n : Sdfg.node) -> not (List.mem n.nid ids)) (Sdfg.nodes g);
  Sdfg.set_edges g @@
    List.filter
      (fun (e : Sdfg.edge) ->
        (not (List.mem e.e_src ids)) && not (List.mem e.e_dst ids))
      (Sdfg.edges g)

(** Drop access nodes with no remaining edges. *)
let prune_isolated_access (g : Sdfg.graph) : unit =
  let touched = Hashtbl.create 16 in
  List.iter
    (fun (e : Sdfg.edge) ->
      Hashtbl.replace touched e.e_src ();
      Hashtbl.replace touched e.e_dst ())
    (Sdfg.edges g);
  Sdfg.set_nodes g @@
    List.filter
      (fun (n : Sdfg.node) ->
        match n.kind with
        | Sdfg.Access _ -> Hashtbl.mem touched n.nid
        | _ -> true)
      (Sdfg.nodes g)

(** Event nodes touching container [name]: nodes whose execution actually
    moves [name]'s data (tasklets with a memlet on it, access nodes sourcing
    a copy of/into it, maps containing such an event). Used by state fusion
    to sequence conflicting accesses. *)
let rec event_nodes (g : Sdfg.graph) (name : string) :
    (Sdfg.node * [ `Read | `Write ]) list =
  List.concat_map
    (fun (e : Sdfg.edge) ->
      match e.e_memlet with
      | None -> []
      | Some m ->
          let src = Sdfg.node_by_id g e.e_src
          and dst = Sdfg.node_by_id g e.e_dst in
          let acc = ref [] in
          (match (src.kind, dst.kind) with
          | Sdfg.Access a, Sdfg.Access b ->
              (* Copy: event at the source access node. *)
              if String.equal a name then acc := (src, `Read) :: !acc;
              if String.equal b name then acc := (src, `Write) :: !acc;
              ignore m
          | Sdfg.Access a, _ ->
              if String.equal a name && String.equal m.data name then
                acc := (dst, `Read) :: !acc
          | _, Sdfg.Access b ->
              if String.equal b name && String.equal m.data name then
                acc := (src, `Write) :: !acc
          | _ -> ());
          !acc)
    (Sdfg.edges g)
  @ List.concat_map
      (fun (n : Sdfg.node) ->
        match n.kind with
        | Sdfg.MapN mn ->
            let inner = event_nodes mn.m_body name in
            List.map (fun (_, rw) -> (n, rw)) inner
        | _ -> [])
      (Sdfg.nodes g)

(** Remove every access node of [name] from [g], bridging dependency
    ordering: each predecessor of a removed node gets a dep edge to each of
    its successors. Used after a container is eliminated while ordering
    edges through its access nodes still matter. *)
let remove_access_nodes_of (g : Sdfg.graph) (name : string) : unit =
  let victims =
    List.filter
      (fun (n : Sdfg.node) ->
        match n.kind with
        | Sdfg.Access c -> String.equal c name
        | _ -> false)
      (Sdfg.nodes g)
  in
  List.iter
    (fun (v : Sdfg.node) ->
      let preds = Sdfg.node_in_edges g v in
      let succs = Sdfg.node_out_edges g v in
      let bridges =
        List.concat_map
          (fun (p : Sdfg.edge) ->
            List.filter_map
              (fun (q : Sdfg.edge) ->
                if p.e_src <> q.e_dst then Some (p.e_src, q.e_dst) else None)
              succs)
          preds
      in
      Sdfg.set_edges g @@
        List.filter
          (fun (e : Sdfg.edge) -> e.e_src <> v.nid && e.e_dst <> v.nid)
          (Sdfg.edges g);
      List.iter
        (fun (a, b) ->
          if
            not
              (List.exists
                 (fun (e : Sdfg.edge) ->
                   e.e_src = a && e.e_dst = b && e.e_memlet = None)
                 (Sdfg.edges g))
          then
            Sdfg.set_edges g @@
              (Sdfg.edges g)
              @ [ { Sdfg.e_src = a; e_src_conn = None; e_dst = b;
                    e_dst_conn = None; e_memlet = None } ])
        bridges;
      Sdfg.set_nodes g @@
        List.filter (fun (n : Sdfg.node) -> n.nid <> v.nid) (Sdfg.nodes g))
    victims
