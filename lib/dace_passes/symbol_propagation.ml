(** Symbol propagation (§6.1, ⑤) — the symbolic analogue of constant
    propagation.

    A symbol assigned on exactly one interstate edge is replaced by its
    (simplified) value everywhere: memlet subsets, tasklet code, interstate
    conditions and assignments, container shapes, map ranges, and the return
    expression. Iterates to a fixpoint so chains ([_const := 0],
    [idx := _const + 1]) collapse fully, turning [_arg0[_const]] into
    [_arg0[0]] as in Fig 5.

    Safety: single-static-assignment provenance (the converter produces one
    assignment site per promoted SSA scalar, and uses are always reached
    after the assignment within the same iteration), so substituting the RHS
    at use sites preserves values even when the edge re-executes in a loop.
    Symbols assigned on multiple edges (loop induction variables,
    loop-carried state) are never propagated. *)

open Dcir_sdfg
open Dcir_symbolic

let subst_everywhere (sdfg : Sdfg.t) (lookup : string -> Expr.t option) : unit
    =
  let subst_range r = Range.subst lookup r in
  let rec subst_graph (g : Sdfg.graph) =
    List.iter
      (fun (e : Sdfg.edge) ->
        match e.e_memlet with
        | Some m ->
            e.e_memlet <-
              Some
                {
                  m with
                  subset = subst_range m.subset;
                  other = Option.map subst_range m.other;
                }
        | None -> ())
      (Sdfg.edges g);
    Sdfg.set_nodes g @@
      List.map
        (fun (n : Sdfg.node) ->
          match n.kind with
          | Sdfg.TaskletN ({ code = Native assigns; _ } as t) ->
              {
                n with
                kind =
                  Sdfg.TaskletN
                    {
                      t with
                      code =
                        Sdfg.Native
                          (List.map
                             (fun (o, e) -> (o, Texpr.subst_syms lookup e))
                             assigns);
                    };
              }
          | Sdfg.MapN mn ->
              mn.m_ranges <- subst_range mn.m_ranges;
              subst_graph mn.m_body;
              n
          | _ -> n)
        (Sdfg.nodes g)
  in
  List.iter (fun (st : Sdfg.state) -> subst_graph st.s_graph) (Sdfg.states sdfg);
  List.iter
    (fun (e : Sdfg.istate_edge) ->
      e.ie_cond <- Bexpr.simplify (Bexpr.subst lookup e.ie_cond);
      e.ie_assign <-
        List.map (fun (s, ex) -> (s, Expr.subst lookup ex)) e.ie_assign)
    (Sdfg.istate_edges sdfg);
  Hashtbl.iter
    (fun _ (c : Sdfg.container) ->
      c.shape <- List.map (Expr.subst lookup) c.shape)
    sdfg.containers;
  sdfg.return_expr <- Option.map (Expr.subst lookup) sdfg.return_expr

(* mutable shape: containers' shape field must be mutable. *)

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < 20 do
    incr rounds;
    progress := false;
    (* Count assignments per symbol. *)
    let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let rhs : (string, Expr.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (e : Sdfg.istate_edge) ->
        List.iter
          (fun (s, ex) ->
            Hashtbl.replace counts s
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts s));
            Hashtbl.replace rhs s ex)
          e.ie_assign)
      (Sdfg.istate_edges sdfg);
    (* Propagatable: assigned exactly once, not self-referential, and the
       RHS does not mention a multiply-assigned symbol... unless provenance
       guarantees same-iteration use (converter output); we accept RHS
       symbols that are single-assigned, argument symbols, or loop
       variables, rejecting only direct self-reference. *)
    let single s = Hashtbl.find_opt counts s = Some 1 in
    let candidates =
      Hashtbl.fold
        (fun s ex acc ->
          if single s && not (List.mem s (Expr.free_syms ex)) then
            (s, ex) :: acc
          else acc)
        rhs []
    in
    if candidates <> [] then begin
      let lookup name = List.assoc_opt name candidates in
      (* Resolve candidate RHSs against each other to a bounded depth so
         chains collapse in one substitution round. *)
      let rec resolve depth e =
        if depth = 0 then e
        else
          let e' = Expr.subst lookup e in
          if Expr.equal e' e then e else resolve (depth - 1) e'
      in
      let resolved = List.map (fun (s, e) -> (s, resolve 8 e)) candidates in
      let lookup name = List.assoc_opt name resolved in
      subst_everywhere sdfg lookup;
      (* Drop the now-dead assignments (their symbols are no longer read —
         unless still referenced, e.g. cyclic chains kept above). *)
      let still_used = Sdfg.free_syms sdfg in
      List.iter
        (fun (e : Sdfg.istate_edge) ->
          let before = List.length e.ie_assign in
          e.ie_assign <-
            List.filter
              (fun (s, _) ->
                (not (List.mem_assoc s resolved)) || List.mem s still_used)
              e.ie_assign;
          if List.length e.ie_assign <> before then changed := true)
        (Sdfg.istate_edges sdfg);
      changed := true;
      progress := true
    end
  done;
  !changed
