(** Dead dataflow elimination (§6.2, second half of the extended DCE).

    Computes a {e usefulness} fixpoint over containers and dataflow nodes:

    - useful containers: non-transients (outputs), the return value, and
      containers read symbolically (conditions, subsets, shapes);
    - a node is useful when it writes a useful container (directly or
      through a value edge into a useful node);
    - everything a useful node reads is useful.

    All writes into useless containers and all useless computations are
    removed, iterating to a fixpoint. Self-sustaining cycles ([A[j] = A[i]]
    with [A] never otherwise read — the Fig 2 pattern) are dead because
    usefulness is a least fixpoint. Containers left with no accesses are
    dropped entirely, removing their allocations; the count feeds the §7.3
    "63 arrays and scalars eliminated" statistic. *)

open Dcir_sdfg

let eliminated_counter = ref 0

(* Usefulness analysis over one SDFG. *)
let compute_useful (sdfg : Sdfg.t) : (string, unit) Hashtbl.t =
  let useful : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let referenced = Graph_util.symbolically_referenced sdfg in
  Hashtbl.iter
    (fun name (c : Sdfg.container) ->
      if not c.transient then Hashtbl.replace useful name ())
    sdfg.containers;
  Hashtbl.iter (fun name () -> Hashtbl.replace useful name ()) referenced;
  (match sdfg.return_scalar with
  | Some r -> Hashtbl.replace useful r ()
  | None -> ());
  (* Node-level usefulness per graph, re-evaluated to a global fixpoint. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let mark name =
      if not (Hashtbl.mem useful name) then begin
        Hashtbl.replace useful name ();
        changed := true
      end
    in
    let rec process (g : Sdfg.graph) =
      (* Per-graph node usefulness fixpoint (value-edge chains). *)
      let node_useful : (int, unit) Hashtbl.t = Hashtbl.create 16 in
      let local_changed = ref true in
      while !local_changed do
        local_changed := false;
        List.iter
          (fun (e : Sdfg.edge) ->
            let dst = Sdfg.node_by_id g e.e_dst in
            let writes_useful =
              match (dst.kind, e.e_memlet) with
              | Sdfg.Access n, Some _ -> Hashtbl.mem useful n
              | _, None -> (
                  (* value or dependency edge: usefulness flows from a
                     useful consumer node only for value edges *)
                  match e.e_dst_conn with
                  | Some _ -> Hashtbl.mem node_useful dst.nid
                  | None -> false)
              | _ -> false
            in
            if writes_useful && not (Hashtbl.mem node_useful e.e_src) then begin
              Hashtbl.replace node_useful e.e_src ();
              local_changed := true
            end)
          (Sdfg.edges g);
        (* Maps: useful if their body writes a useful container. *)
        List.iter
          (fun (n : Sdfg.node) ->
            match n.kind with
            | Sdfg.MapN mn
              when (not (Hashtbl.mem node_useful n.nid))
                   && List.exists (Hashtbl.mem useful)
                        (Sdfg.written_containers mn.m_body) ->
                Hashtbl.replace node_useful n.nid ();
                local_changed := true
            | _ -> ())
          (Sdfg.nodes g)
      done;
      (* Everything a useful node reads is a useful container. *)
      List.iter
        (fun (e : Sdfg.edge) ->
          match ((Sdfg.node_by_id g e.e_src).kind, e.e_memlet) with
          | Sdfg.Access n, Some _ when Hashtbl.mem node_useful e.e_dst ->
              mark n
          | _ -> ())
        (Sdfg.edges g);
      (* Copies into useful containers read their source. *)
      List.iter
        (fun (e : Sdfg.edge) ->
          match
            ((Sdfg.node_by_id g e.e_src).kind, (Sdfg.node_by_id g e.e_dst).kind,
             e.e_memlet)
          with
          | Sdfg.Access src, Sdfg.Access dst, Some _
            when Hashtbl.mem useful dst ->
              mark src
          | _ -> ())
        (Sdfg.edges g);
      List.iter
        (fun (n : Sdfg.node) ->
          match n.kind with
          | Sdfg.MapN mn ->
              if List.exists (Hashtbl.mem useful) (Sdfg.written_containers mn.m_body)
              then
                List.iter mark (Sdfg.read_containers mn.m_body);
              process mn.m_body
          | _ -> ())
        (Sdfg.nodes g)
    in
    List.iter (fun (st : Sdfg.state) -> process st.s_graph) (Sdfg.states sdfg)
  done;
  useful

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    let useful = compute_useful sdfg in
    (* Remove writes into useless containers, then useless computations. *)
    let rec clean (g : Sdfg.graph) =
      let dead_write (e : Sdfg.edge) : bool =
        match ((Sdfg.node_by_id g e.e_dst).kind, e.e_memlet) with
        | Sdfg.Access name, Some _ -> not (Hashtbl.mem useful name)
        | _ -> false
      in
      let before = List.length (Sdfg.edges g) in
      Sdfg.set_edges g @@ List.filter (fun e -> not (dead_write e)) (Sdfg.edges g);
      if List.length (Sdfg.edges g) <> before then begin
        changed := true;
        progress := true
      end;
      List.iter
        (fun (n : Sdfg.node) ->
          match n.kind with Sdfg.MapN mn -> clean mn.m_body | _ -> ())
        (Sdfg.nodes g);
      (* Remove tasklets with no outputs and maps with no effect. *)
      let continue_ = ref true in
      while !continue_ do
        continue_ := false;
        let dead_nodes =
          List.filter
            (fun (n : Sdfg.node) ->
              match n.kind with
              | Sdfg.TaskletN _ -> Sdfg.node_out_edges g n = []
              | Sdfg.MapN mn -> Sdfg.written_containers mn.m_body = []
              | Sdfg.Access _ -> false)
            (Sdfg.nodes g)
        in
        if dead_nodes <> [] then begin
          Graph_util.remove_nodes g
            (List.map (fun (n : Sdfg.node) -> n.nid) dead_nodes);
          changed := true;
          progress := true;
          continue_ := true
        end
      done;
      Graph_util.prune_isolated_access g
    in
    List.iter (fun (st : Sdfg.state) -> clean st.s_graph) (Sdfg.states sdfg);
    (* Containers with no accesses at all disappear. *)
    let referenced = Graph_util.symbolically_referenced sdfg in
    let to_remove =
      Hashtbl.fold
        (fun name (c : Sdfg.container) acc ->
          if
            c.transient
            && (not (Hashtbl.mem referenced name))
            && sdfg.return_scalar <> Some name
            && Graph_util.all_reader_edges sdfg name = []
            && Graph_util.all_writer_edges sdfg name = []
          then name :: acc
          else acc)
        sdfg.containers []
    in
    List.iter
      (fun name ->
        Sdfg.remove_container sdfg name;
        (* Drop leftover access nodes (kept alive by dependency edges),
           bridging their ordering edges. *)
        List.iter
          (fun (st : Sdfg.state) ->
            let rec clean_nodes (g : Sdfg.graph) =
              Graph_util.remove_access_nodes_of g name;
              List.iter
                (fun (n : Sdfg.node) ->
                  match n.kind with
                  | Sdfg.MapN mn -> clean_nodes mn.m_body
                  | _ -> ())
                (Sdfg.nodes g)
            in
            clean_nodes st.s_graph)
          (Sdfg.states sdfg);
        incr eliminated_counter;
        changed := true;
        progress := true)
      to_remove
  done;
  !changed
