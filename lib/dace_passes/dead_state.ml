(** Dead state elimination (§6.2, first half of the extended DCE).

    Uses propagated symbols to decide edge conditions: edges whose condition
    is provably false are deleted, then states unreachable from the start
    state are removed (together with their interstate edges). Empty states
    with a single unconditional successor are short-circuited. *)

open Dcir_sdfg
open Dcir_symbolic

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  (* Drop provably-false edges. *)
  let before = List.length (Sdfg.istate_edges sdfg) in
  Sdfg.set_istate_edges sdfg @@
    List.filter
      (fun (e : Sdfg.istate_edge) ->
        Bexpr.decide e.ie_cond <> Some false)
      (Sdfg.istate_edges sdfg);
  if List.length (Sdfg.istate_edges sdfg) <> before then changed := true;
  (* Remove unreachable states. *)
  let labels = List.map (fun (s : Sdfg.state) -> s.s_label) (Sdfg.states sdfg) in
  let index_of = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index_of l i) labels;
  let n = List.length labels in
  if n > 0 then begin
    let dg =
      Dcir_support.Digraph.create ~n
        (List.filter_map
           (fun (e : Sdfg.istate_edge) ->
             match
               (Hashtbl.find_opt index_of e.ie_src,
                Hashtbl.find_opt index_of e.ie_dst)
             with
             | Some a, Some b -> Some (a, b)
             | _ -> None)
           (Sdfg.istate_edges sdfg))
    in
    let start =
      Option.value ~default:0 (Hashtbl.find_opt index_of sdfg.start_state)
    in
    let reachable = Dcir_support.Digraph.reachable dg ~roots:[ start ] in
    let dead =
      List.filteri (fun i _ -> not reachable.(i)) labels
    in
    if dead <> [] then begin
      changed := true;
      Sdfg.set_states sdfg @@
        List.filter
          (fun (s : Sdfg.state) -> not (List.mem s.s_label dead))
          (Sdfg.states sdfg);
      Sdfg.set_istate_edges sdfg @@
        List.filter
          (fun (e : Sdfg.istate_edge) ->
            (not (List.mem e.ie_src dead)) && not (List.mem e.ie_dst dead))
          (Sdfg.istate_edges sdfg)
    end
  end;
  (* Short-circuit empty pass-through states: empty graph, exactly one
     unconditional assignment-free out-edge, at least one in-edge, not the
     start state, no alloc charge attached. *)
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let charged = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ (c : Sdfg.container) ->
        match c.alloc_state with
        | Some s -> Hashtbl.replace charged s ()
        | None -> ())
      sdfg.containers;
    let removable =
      List.find_opt
        (fun (s : Sdfg.state) ->
          (Sdfg.nodes s.s_graph) = []
          && (not (String.equal s.s_label sdfg.start_state))
          && (not (Hashtbl.mem charged s.s_label))
          &&
          match Sdfg.out_edges sdfg s.s_label with
          | [ o ] ->
              o.ie_cond = Bexpr.Bool true && o.ie_assign = []
              && (not (String.equal o.ie_dst s.s_label))
              && Sdfg.in_edges sdfg s.s_label <> []
          | _ -> false)
        (Sdfg.states sdfg)
    in
    match removable with
    | Some s ->
        let out = List.hd (Sdfg.out_edges sdfg s.s_label) in
        Sdfg.set_istate_edges sdfg @@
          List.filter_map
            (fun (e : Sdfg.istate_edge) ->
              if e == out then None
              else if String.equal e.ie_dst s.s_label then
                Some { e with ie_dst = out.ie_dst }
              else Some e)
            (Sdfg.istate_edges sdfg);
        Sdfg.set_states sdfg @@
          List.filter (fun (x : Sdfg.state) -> not (x == s)) (Sdfg.states sdfg);
        changed := true;
        continue_ := true
    | None -> ()
  done;
  !changed
