(** Structural detection of guard-pattern loops in the SDFG state machine.

    The converter (and the DaCe C frontend baseline) emit loops as:

    {v
         pred --[i := init]--> guard
         guard --[cond]-->  body...  --[i := i + step]--> guard
         guard --[!cond]--> exit
    v}

    Several data-centric passes need this structure back: allocation
    hoisting, memory-reducing loop fusion, local-storage promotion, and
    invariant loop collapsing. Loops are re-detected on demand (never cached)
    so passes cannot observe stale structure. *)

open Dcir_symbolic
open Dcir_sdfg

type loop = {
  guard : string;
  body : string list;  (** states strictly inside the loop (excl. guard) *)
  exit_state : string;
  sym : string;  (** induction symbol *)
  init : Expr.t;  (** from the entry edge assignment *)
  step : Expr.t;  (** from the back edge: i := i + step *)
  cond : Bexpr.t;  (** continue condition on the guard->body edge *)
  entry_edge : Sdfg.istate_edge;  (** into guard, carries the init *)
  back_edge : Sdfg.istate_edge;
  continue_edge : Sdfg.istate_edge;
  exit_edge : Sdfg.istate_edge;
}

(* Extract `i := i + step` form. *)
let step_of (sym : string) (assigns : (string * Expr.t) list) : Expr.t option =
  match List.assoc_opt sym assigns with
  | Some rhs ->
      let step = Expr.sub rhs (Expr.sym sym) in
      if List.mem sym (Expr.free_syms step) then None else Some step
  | None -> None

(** Detect all guard-pattern loops. *)
let find_loops (sdfg : Sdfg.t) : loop list =
  let labels = List.map (fun (s : Sdfg.state) -> s.s_label) (Sdfg.states sdfg) in
  let index_of = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace index_of l i) labels;
  let idx l = Hashtbl.find_opt index_of l in
  let n = List.length labels in
  let dg =
    Dcir_support.Digraph.create ~n
      (List.filter_map
         (fun (e : Sdfg.istate_edge) ->
           match (idx e.ie_src, idx e.ie_dst) with
           | Some a, Some b -> Some (a, b)
           | _ -> None)
         (Sdfg.istate_edges sdfg))
  in
  let start =
    match idx sdfg.start_state with Some i -> i | None -> 0
  in
  let doms = Dcir_support.Digraph.idom dg ~root:start in
  let dominates a b =
    (* a dominates b *)
    let rec up x = if x = a then true else if x = doms.(x) || doms.(x) = -1 then false else up doms.(x) in
    if doms.(b) = -1 then false else up b
  in
  let label_arr = Array.of_list labels in
  List.filter_map
    (fun (back : Sdfg.istate_edge) ->
      match (idx back.ie_src, idx back.ie_dst) with
      | Some latch, Some guard_i when dominates guard_i latch -> (
          let guard = label_arr.(guard_i) in
          let outs = Sdfg.out_edges sdfg guard in
          match outs with
          | [ e1; e2 ] -> (
              (* One edge continues into the loop (reaches the latch without
                 passing through guard), the other exits. *)
              let reaches_latch (e : Sdfg.istate_edge) =
                match idx e.ie_dst with
                | None -> false
                | Some d ->
                    if d = latch then true
                    else
                      (* BFS avoiding guard *)
                      let visited = Array.make n false in
                      let q = Queue.create () in
                      Queue.add d q;
                      let found = ref false in
                      while not (Queue.is_empty q) do
                        let x = Queue.pop q in
                        if (not visited.(x)) && x <> guard_i then begin
                          visited.(x) <- true;
                          if x = latch then found := true
                          else
                            List.iter (fun y -> Queue.add y q)
                              (Dcir_support.Digraph.succ dg x)
                        end
                      done;
                      !found
              in
              let cont, exit_e =
                if reaches_latch e1 then (e1, e2)
                else if reaches_latch e2 then (e2, e1)
                else (e1, e2)
              in
              if not (reaches_latch cont) then None
              else
                (* Induction symbol: assigned on the back edge as i := i+c. *)
                let sym_candidates =
                  List.filter_map
                    (fun (s, _) ->
                      match step_of s back.ie_assign with
                      | Some st -> Some (s, st)
                      | None -> None)
                    back.ie_assign
                in
                match sym_candidates with
                | (sym, step) :: _ -> (
                    (* Entry edges: into guard, not the back edge, assigning
                       sym. *)
                    let entries =
                      List.filter
                        (fun (e : Sdfg.istate_edge) ->
                          String.equal e.ie_dst guard
                          && not (e == back)
                          && List.mem_assoc sym e.ie_assign)
                        (Sdfg.istate_edges sdfg)
                    in
                    match entries with
                    | [ entry ] ->
                        let init = List.assoc sym entry.ie_assign in
                        (* Body: states dominated by guard that can reach the
                           latch without leaving through exit. *)
                        let body =
                          List.init n Fun.id
                          |> List.filter
                            (fun i ->
                              i <> guard_i && doms.(i) <> -1
                              && dominates guard_i i
                              &&
                              (* can reach latch avoiding guard *)
                              let visited = Array.make n false in
                              let q = Queue.create () in
                              Queue.add i q;
                              let found = ref false in
                              while not (Queue.is_empty q) do
                                let x = Queue.pop q in
                                if (not visited.(x)) && x <> guard_i then begin
                                  visited.(x) <- true;
                                  if x = latch then found := true
                                  else
                                    List.iter (fun y -> Queue.add y q)
                                      (Dcir_support.Digraph.succ dg x)
                                end
                              done;
                              !found)
                          |> List.map (fun i -> label_arr.(i))
                        in
                        Some
                          {
                            guard;
                            body;
                            exit_state = exit_e.ie_dst;
                            sym;
                            init;
                            step;
                            cond = cont.ie_cond;
                            entry_edge = entry;
                            back_edge = back;
                            continue_edge = cont;
                            exit_edge = exit_e;
                          }
                    | _ -> None)
                | [] -> None)
          | _ -> None)
      | _ -> None)
    (Sdfg.istate_edges sdfg)

(** Symbolic trip count of a loop, when derivable: requires condition
    [i < ub] (or [i <= ub]) and positive constant step, or the descending
    forms. *)
let trip_count (l : loop) : Expr.t option =
  match (l.cond, Expr.is_constant l.step) with
  | Bexpr.Cmp (op, Expr.Sym s, ub), Some c
    when String.equal s l.sym && c <> 0 -> (
      match (op, c > 0) with
      | Bexpr.Lt, true ->
          Some (Expr.div (Expr.add (Expr.sub ub l.init) (Expr.int (c - 1))) (Expr.int c))
      | Bexpr.Le, true ->
          Some (Expr.div (Expr.add (Expr.sub ub l.init) (Expr.int c)) (Expr.int c))
      | Bexpr.Gt, false ->
          let c = -c in
          Some (Expr.div (Expr.add (Expr.sub l.init ub) (Expr.int (c - 1))) (Expr.int c))
      | Bexpr.Ge, false ->
          let c = -c in
          Some (Expr.div (Expr.add (Expr.sub l.init ub) (Expr.int c)) (Expr.int c))
      | _ -> None)
  | _ -> None

(** Loops whose body is exactly one state, keyed for fusion. *)
let single_state_body (sdfg : Sdfg.t) (l : loop) : Sdfg.state option =
  match l.body with
  | [ b ] -> Sdfg.find_state sdfg b
  | _ -> None
