(** Redundant scalar elimination (part of the paper's Array Elimination,
    §6.2): recovers direct dataflow from the converter's
    one-scalar-per-SSA-value output.

    Within a fused state, a transient scalar that is written exactly once
    and only read within the same state disappears:

    - written by a tasklet output → readers get {e direct value edges} from
      that output connector (pure SSA dataflow, no memory traffic);
    - written by a copy from another container's element → readers read that
      element directly (the copy's memlet moves to the reader).

    Scalars referenced as pseudo-symbols anywhere (unpromoted indices) are
    left untouched; scalar-to-symbol owns those. *)

open Dcir_sdfg

(* Ordering dependencies anchored on the scalar's access nodes must survive
   its removal: re-anchor every pure-dependency edge incident to an access
   node of [name] onto [targets] — the event nodes that now perform the
   forwarded movements (one per reader, so a dep ordering one reader does
   not constrain the others: anchoring them all on a single shared node can
   close a cycle through that node's other edges). A dep into a victim
   fans out to deps into every target; a dep out of a victim fans out from
   every target, preserving transitive ordering through the removed node. *)
let reanchor_deps (g : Sdfg.graph) (name : string) (targets : int list) : unit
    =
  let victim (nid : int) =
    match (Sdfg.node_by_id g nid).kind with
    | Sdfg.Access c -> String.equal c name
    | _ -> false
  in
  (* A pure dep edge carries neither a memlet nor connectors — a memlet-less
     edge WITH connectors is an SSA value edge and must not be touched. *)
  let is_dep (e : Sdfg.edge) =
    e.e_memlet = None && e.e_src_conn = None && e.e_dst_conn = None
  in
  Sdfg.set_edges g @@
    List.concat_map
      (fun (e : Sdfg.edge) ->
        if not (is_dep e) then [ e ]
        else
          let src_v = victim e.e_src and dst_v = victim e.e_dst in
          if not (src_v || dst_v) then [ e ]
          else if src_v && dst_v then []
          else if dst_v then
            List.filter_map
              (fun t -> if t = e.e_src then None else Some { e with e_dst = t })
              targets
          else
            List.filter_map
              (fun t -> if t = e.e_dst then None else Some { e with e_src = t })
              targets)
      (Sdfg.edges g);
  (* Fan-out can duplicate dep edges; keep one of each. *)
  let seen = Hashtbl.create 16 in
  Sdfg.set_edges g @@
    List.filter
      (fun (e : Sdfg.edge) ->
        if not (is_dep e) then true
        else if Hashtbl.mem seen (e.e_src, e.e_dst) then false
        else begin
          Hashtbl.replace seen (e.e_src, e.e_dst) ();
          true
        end)
      (Sdfg.edges g)

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    let referenced = Graph_util.symbolically_referenced sdfg in
    let scalars =
      Hashtbl.fold
        (fun name (c : Sdfg.container) acc ->
          if
            c.transient && Sdfg.is_scalar c
            && not (Hashtbl.mem referenced name)
            && sdfg.return_scalar <> Some name
          then name :: acc
          else acc)
        sdfg.containers []
      |> List.sort compare
    in
    List.iter
      (fun name ->
        match
          (Graph_util.all_writer_edges sdfg name,
           Graph_util.all_reader_edges sdfg name)
        with
        | [ (wst, wg, we) ], readers
          when List.for_all
                 (fun ((rst, rg, _) : Sdfg.state * Sdfg.graph * Sdfg.edge) ->
                   rst == wst && rg == wg)
                 readers -> (
            let g = wg in
            (* The rewrite below is list-functional on [(Sdfg.nodes g)]/[(Sdfg.edges g)]
               (records are replaced, never mutated in place), so these two
               references are a full snapshot: forwarding that would close
               an ordering cycle is rolled back and the scalar kept. *)
            let nodes0 = (Sdfg.nodes g) and edges0 = (Sdfg.edges g) in
            let commit_if_acyclic () : bool =
              match Sdfg.topo_order g with
              | _ -> true
              | exception Invalid_argument _ ->
                  Sdfg.set_nodes g @@ nodes0;
                  Sdfg.set_edges g @@ edges0;
                  false
            in
            let src = Sdfg.node_by_id g we.e_src in
            match (src.kind, we.e_src_conn, we.e_memlet) with
            | Sdfg.TaskletN _, Some out_conn, Some m when m.wcr = None ->
                (* Tasklet-defined: value edges to every reader. The event
                   node of each forwarded movement: the writer tasklet for a
                   direct write into an access node, the consuming node for
                   a value edge. *)
                let events = ref [] in
                List.iter
                  (fun ((_, _, re) : Sdfg.state * Sdfg.graph * Sdfg.edge) ->
                    Sdfg.set_edges g @@
                      List.map
                        (fun (x : Sdfg.edge) ->
                          if x == re then
                            match (Sdfg.node_by_id g x.e_dst).kind with
                            | Sdfg.Access dst_name ->
                                (* Old copy scalar->dst becomes a direct
                                   tasklet write into dst. *)
                                let dst_subset =
                                  match x.e_memlet with
                                  | Some { other = Some o; _ } -> o
                                  | _ -> []
                                in
                                events := src.nid :: !events;
                                {
                                  x with
                                  e_src = src.nid;
                                  e_src_conn = Some out_conn;
                                  e_memlet =
                                    Some
                                      {
                                        Sdfg.data = dst_name;
                                        subset = dst_subset;
                                        wcr =
                                          (match x.e_memlet with
                                          | Some xm -> xm.wcr
                                          | None -> None);
                                        other = None;
                                      };
                                }
                            | _ ->
                                events := x.e_dst :: !events;
                                {
                                  x with
                                  e_src = src.nid;
                                  e_src_conn = Some out_conn;
                                  e_memlet = None;
                                }
                          else x)
                        (Sdfg.edges g))
                  readers;
                Sdfg.set_edges g @@ List.filter (fun (x : Sdfg.edge) -> x != we) (Sdfg.edges g);
                reanchor_deps g name
                  (if !events = [] then [ src.nid ] else !events);
                Graph_util.remove_access_nodes_of g name;
                Graph_util.prune_isolated_access g;
                if commit_if_acyclic () then begin
                  Sdfg.remove_container sdfg name;
                  changed := true;
                  progress := true
                end
            | Sdfg.Access _, None, Some m
              when m.wcr = None
                   && (not (String.equal m.data name))
                   (* forward loads only when the source container is not
                      written in this state: the reader would otherwise
                      observe a later value than the original copy did *)
                   && not (List.mem m.data (Sdfg.written_containers g)) ->
                let forward_subset = m.subset in
                let src_access = we.e_src in
                let events = ref [] in
                List.iter
                  (fun ((_, _, re) : Sdfg.state * Sdfg.graph * Sdfg.edge) ->
                    (* A copy-reader's movement event is its (new) source
                       access node. Give each one a private source node: the
                       shared one also feeds the other readers, so ordering
                       deps re-anchored onto it could close a cycle (e.g.
                       two sequenced writes of the same element, the first
                       computed from this scalar). *)
                    let new_src, event =
                      match (Sdfg.node_by_id g re.e_dst).kind with
                      | Sdfg.Access _ ->
                          let n = Sdfg.add_node g (Sdfg.Access m.data) in
                          (n.nid, n.nid)
                      | _ -> (src_access, re.e_dst)
                    in
                    events := event :: !events;
                    Sdfg.set_edges g @@
                      List.map
                        (fun (x : Sdfg.edge) ->
                          if x == re then
                            {
                              x with
                              e_src = new_src;
                              e_memlet =
                                Some
                                  {
                                    Sdfg.data = m.data;
                                    subset = forward_subset;
                                    wcr =
                                      (match x.e_memlet with
                                      | Some xm -> xm.wcr
                                      | None -> None);
                                    other =
                                      (match
                                         ( (Sdfg.node_by_id g x.e_dst).kind,
                                           x.e_memlet )
                                       with
                                      | Sdfg.Access _, Some xm ->
                                          (* reader was itself a copy out of
                                             the scalar: preserve its
                                             destination subset *)
                                          (match xm.other with
                                          | Some o -> Some o
                                          | None -> Some xm.subset)
                                      | _ -> None);
                                  };
                            }
                          else x)
                        (Sdfg.edges g))
                  readers;
                Sdfg.set_edges g @@ List.filter (fun (x : Sdfg.edge) -> x != we) (Sdfg.edges g);
                reanchor_deps g name
                  (if !events = [] then [ src_access ] else !events);
                Graph_util.remove_access_nodes_of g name;
                Graph_util.prune_isolated_access g;
                (* Dep edges are node-granular, so re-anchoring one that
                   really ordered a single movement constrains every reader;
                   when that over-approximation closes a cycle, keeping the
                   scalar is the only sound choice. *)
                if commit_if_acyclic () then begin
                  Sdfg.remove_container sdfg name;
                  changed := true;
                  progress := true
                end
            | _ -> ())
        | _ -> ())
      scalars
  done;
  !changed
