(** Pass pipeline drivers mirroring the paper's stages (§6).

    - {!inference}: scalar-to-symbol promotion, symbol propagation, update
      (WCR) detection — recovers analyzable symbolic dataflow (§6.1);
    - {!simplify}: the idempotent simplification fixpoint — state fusion,
      scalar forwarding, plus re-running inference as containers disappear
      (the DaCe [sdfg.simplify()] equivalent, "-O1 in compilers");
    - {!reduce_data_movement} (-O1): extended DCE (dead states, dead
      dataflow), array elimination, memlet consolidation (§6.2);
    - {!memory_scheduling} (-O2): allocation hoisting + stack allocation,
      memory-reducing loop fusion, local-storage promotion, invariant loop
      collapsing / write narrowing (§6.3).

    {!optimize} runs the full data-centric pipeline and returns populated
    {!stats}: fixpoint round counts, per-pass application counts, and the
    states/edges/containers deltas the passes achieved. Every stage, round,
    and pass application also records a {!Dcir_obs.Obs} span (wall time +
    changed flag) when telemetry collection is enabled. *)

module Obs = Dcir_obs.Obs
module Json = Dcir_obs.Json

let log_src =
  Logs.Src.create "dcir.dace.driver" ~doc:"data-centric pass driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  rounds : int;
      (** fixpoint rounds executed across all stages, including each
          stage's final no-progress round *)
  applications : (string * int) list;
      (** pass name -> number of applications that changed the SDFG, in
          pipeline order (every pass listed, 0 when it never fired) *)
  states_before : int;
  states_after : int;
  edges_before : int;
  edges_after : int;
  containers_before : int;
  containers_after : int;
  eliminated_containers : int;
      (** containers removed outright or demoted to register scalars *)
}

let sdfg_counts (sdfg : Dcir_sdfg.Sdfg.t) : int * int * int =
  ( List.length sdfg.states,
    List.length sdfg.istate_edges,
    Hashtbl.length sdfg.containers )

(* Per-pass application accumulator shared by the stages of one optimize
   run. *)
type accum = { apps : (string, int) Hashtbl.t; mutable total_rounds : int }

let run_one ?(accum : accum option)
    ((name, p) : string * (Dcir_sdfg.Sdfg.t -> bool))
    (sdfg : Dcir_sdfg.Sdfg.t) : bool =
  let c =
    if not (Obs.enabled ()) then p sdfg
    else
      Obs.with_span ~cat:"dace-pass" name (fun () ->
          let c = p sdfg in
          Obs.set_args [ ("changed", Json.Bool c) ];
          c)
  in
  if c then (
    Log.debug (fun f -> f "pass %s: changed" name);
    match accum with
    | Some a ->
        Hashtbl.replace a.apps name
          (1 + Option.value ~default:0 (Hashtbl.find_opt a.apps name))
    | None -> ());
  c

let fixpoint ?(max_rounds = 30) ?(accum : accum option)
    (passes : (string * (Dcir_sdfg.Sdfg.t -> bool)) list)
    (sdfg : Dcir_sdfg.Sdfg.t) : bool =
  let changed = ref false in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < max_rounds do
    incr rounds;
    (match accum with Some a -> a.total_rounds <- a.total_rounds + 1 | None -> ());
    progress :=
      Obs.with_span ~cat:"dace-fixpoint"
        (Printf.sprintf "round %d" !rounds)
        (fun () ->
          List.fold_left
            (fun any pass -> run_one ?accum pass sdfg || any)
            false passes);
    Log.debug (fun f ->
        f "fixpoint round %d: %s" !rounds
          (if !progress then "progress" else "stable"));
    if !progress then changed := true
  done;
  !changed

let inference : (string * (Dcir_sdfg.Sdfg.t -> bool)) list =
  [
    ("scalar-to-symbol", Scalar_to_symbol.run);
    ("symbol-propagation", Symbol_propagation.run);
    ("wcr-detection", Wcr_detect.run);
  ]

let simplify_passes : (string * (Dcir_sdfg.Sdfg.t -> bool)) list =
  inference
  @ [
      ("state-fusion", State_fusion.run);
      ("scalar-forwarding", Scalar_forwarding.run);
      ("element-forwarding", Element_forwarding.run);
      ("dead-state", Dead_state.run);
    ]

let o1_passes : (string * (Dcir_sdfg.Sdfg.t -> bool)) list =
  [
    ("dead-dataflow", Dead_dataflow.run);
    ("memlet-consolidation", Memlet_consolidation.run);
  ]

let o2_passes : (string * (Dcir_sdfg.Sdfg.t -> bool)) list =
  [
    ("alloc-opt", Alloc_opt.run);
    ("loop-fusion", Loop_fusion.run);
    ("shrink-to-scalar", Shrink_scalar.run);
    ("local-storage", Local_storage.run);
    ("invariant-collapse", Invariant_collapse.run);
  ]

let all_pass_names : string list =
  List.map fst (simplify_passes @ o1_passes @ o2_passes)

(** DaCe's [sdfg.simplify()]: inference + fusion to a fixpoint. *)
let simplify (sdfg : Dcir_sdfg.Sdfg.t) : bool = fixpoint simplify_passes sdfg

(* Containers removed outright plus arrays demoted to register scalars —
   both stop existing in memory. *)
let eliminated_containers () : int =
  !Dead_dataflow.eliminated_counter + !Shrink_scalar.counter

let reset_counters () : unit =
  Dead_dataflow.eliminated_counter := 0;
  Shrink_scalar.counter := 0

(** Full pipeline: simplify, then -O1 data movement reduction, then -O2
    memory scheduling, re-simplifying after each stage (passes expose new
    opportunities to each other). [disable] names passes to skip — the
    ablation hook used by the benchmark harness. Returns the populated
    statistics of this run. *)
let optimize ?(o1 = true) ?(o2 = true) ?(disable = [])
    (sdfg : Dcir_sdfg.Sdfg.t) : stats =
  let keep passes =
    List.filter (fun (n, _) -> not (List.mem n disable)) passes
  in
  let states_before, edges_before, containers_before = sdfg_counts sdfg in
  let eliminated0 = eliminated_containers () in
  let accum = { apps = Hashtbl.create 16; total_rounds = 0 } in
  let stage name passes =
    ignore
      (Obs.with_span ~cat:"dace-stage" name (fun () ->
           let s0, e0, c0 = sdfg_counts sdfg in
           let changed = fixpoint ~accum (keep passes) sdfg in
           let s1, e1, c1 = sdfg_counts sdfg in
           Obs.set_args
             [
               ("changed", Json.Bool changed);
               ("states", Json.Str (Printf.sprintf "%d->%d" s0 s1));
               ("edges", Json.Str (Printf.sprintf "%d->%d" e0 e1));
               ("containers", Json.Str (Printf.sprintf "%d->%d" c0 c1));
             ];
           Log.info (fun f ->
               f "stage %s: states %d->%d, edges %d->%d, containers %d->%d"
                 name s0 s1 e0 e1 c0 c1);
           changed))
  in
  stage "simplify" simplify_passes;
  if o1 then stage "reduce-data-movement" (simplify_passes @ o1_passes);
  if o2 then
    stage "memory-scheduling" (simplify_passes @ o1_passes @ o2_passes);
  let states_after, edges_after, containers_after = sdfg_counts sdfg in
  {
    rounds = accum.total_rounds;
    applications =
      List.map
        (fun n ->
          (n, Option.value ~default:0 (Hashtbl.find_opt accum.apps n)))
        all_pass_names;
    states_before;
    states_after;
    edges_before;
    edges_after;
    containers_before;
    containers_after;
    eliminated_containers = eliminated_containers () - eliminated0;
  }
