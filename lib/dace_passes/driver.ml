(** Pass pipeline drivers mirroring the paper's stages (§6).

    - {!inference}: scalar-to-symbol promotion, symbol propagation, update
      (WCR) detection — recovers analyzable symbolic dataflow (§6.1);
    - {!simplify}: the idempotent simplification fixpoint — state fusion,
      scalar forwarding, plus re-running inference as containers disappear
      (the DaCe [sdfg.simplify()] equivalent, "-O1 in compilers");
    - {!reduce_data_movement} (-O1): extended DCE (dead states, dead
      dataflow), array elimination, memlet consolidation (§6.2);
    - {!memory_scheduling} (-O2): allocation hoisting + stack allocation,
      memory-reducing loop fusion, local-storage promotion, invariant loop
      collapsing / write narrowing (§6.3).

    {!optimize} runs the full data-centric pipeline and returns populated
    {!stats}: fixpoint round counts, per-pass application counts, and the
    states/edges/containers deltas the passes achieved. Every stage, round,
    and pass application also records a {!Dcir_obs.Obs} span (wall time +
    changed flag) when telemetry collection is enabled.

    {b Checked execution} ([~checked:true]): before each pass the SDFG is
    snapshotted ({!Dcir_sdfg.Sdfg.copy}); after it,
    {!Dcir_sdfg.Validate.errors} re-checks the graph. If the pass raised or
    left the SDFG invalid, it is rolled back, the incident is recorded (a
    [dace.pass.rollbacks] {!Obs.Counter} plus a [rollback] span and a
    {!Dcir_support.Diagnostics.incident} in [stats.incidents]), a
    crash-reproducer file (pre-pass SDFG + the failing pass name) is
    written, and the pass's circuit breaker trips — open for a cooldown of
    fixpoint rounds, probationally re-admitted afterwards, re-closed after
    clean applications ({!Dcir_resilience.Breaker}). *)

module Obs = Dcir_obs.Obs
module Json = Dcir_obs.Json
module Diag = Dcir_support.Diagnostics
module Budget = Dcir_resilience.Budget
module Breaker = Dcir_resilience.Breaker
module Chaos = Dcir_resilience.Chaos
module Journal = Dcir_resilience.Journal
module Events = Dcir_obs.Events
module Om = Dcir_obs.Metrics

let log_src =
  Logs.Src.create "dcir.dace.driver" ~doc:"data-centric pass driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  rounds : int;
      (** fixpoint rounds executed across all stages, including each
          stage's final no-progress round *)
  applications : (string * int) list;
      (** pass name -> number of applications that changed the SDFG, in
          pipeline order (every pass listed, 0 when it never fired) *)
  states_before : int;
  states_after : int;
  edges_before : int;
  edges_after : int;
  containers_before : int;
  containers_after : int;
  eliminated_containers : int;
      (** containers removed outright or demoted to register scalars *)
  incidents : Diag.incident list;
      (** checked-mode rollbacks, chronological ([[]] when unchecked or
          when every pass behaved) *)
}

let sdfg_counts (sdfg : Dcir_sdfg.Sdfg.t) : int * int * int =
  ( List.length (Dcir_sdfg.Sdfg.states sdfg),
    List.length (Dcir_sdfg.Sdfg.istate_edges sdfg),
    Hashtbl.length sdfg.containers )

(* Per-pass application accumulator shared by the stages of one optimize
   run; also collects checked-mode incidents and breaker state across
   stages (session-scoped: one accum = one breaker lifetime). *)
type accum = {
  apps : (string, int) Hashtbl.t;
  mutable total_rounds : int;
  mutable incidents : Diag.incident list;  (** reverse chronological *)
  breaker : Breaker.t;
}

let new_accum () : accum =
  {
    apps = Hashtbl.create 16;
    total_rounds = 0;
    incidents = [];
    breaker = Breaker.create ();
  }

(* Chaos corruption for the data-centric IR: an access node naming a
   container that does not exist — {!Dcir_sdfg.Validate} rejects it, so
   checked execution rolls it back and unchecked pipelines catch it at
   the next validation phase. *)
let corrupt_sdfg (sdfg : Dcir_sdfg.Sdfg.t) : unit =
  match Dcir_sdfg.Sdfg.states sdfg with
  | s :: _ ->
      ignore
        (Dcir_sdfg.Sdfg.add_node s.s_graph
           (Dcir_sdfg.Sdfg.Access "__chaos_bogus__"))
  | [] -> ()

let run_one ?(accum : accum option)
    ((name, p) : string * (Dcir_sdfg.Sdfg.t -> bool))
    (sdfg : Dcir_sdfg.Sdfg.t) : bool =
  let inject = Chaos.tick_pass () in
  (match inject with
  | `Crash ->
      Journal.note ~kind:"chaos-injected"
        [ ("fault", Json.Str "pass-crash"); ("pass", Json.Str name) ];
      raise (Chaos.Injected (Chaos.Pass_crash, name))
  | `Ok | `Corrupt -> ());
  let c =
    if not (Obs.enabled ()) then p sdfg
    else
      Obs.with_span ~cat:"dace-pass" name (fun () ->
          let c = p sdfg in
          Obs.set_args [ ("changed", Json.Bool c) ];
          c)
  in
  (match inject with
  | `Corrupt ->
      corrupt_sdfg sdfg;
      Journal.note ~kind:"chaos-injected"
        [ ("fault", Json.Str "corrupt-rewrite"); ("pass", Json.Str name) ]
  | `Ok | `Crash -> ());
  if c then (
    Log.debug (fun f -> f "pass %s: changed" name);
    match accum with
    | Some a ->
        Hashtbl.replace a.apps name
          (1 + Option.value ~default:0 (Hashtbl.find_opt a.apps name))
    | None -> ());
  c

(* Run one pass under checked execution: snapshot the SDFG, run the pass,
   re-validate. On a crash or a validation failure, roll back to the
   snapshot and report the incident (the caller disables the pass). *)
let run_one_checked ?(accum : accum option) ~(round : int)
    ~(reproducer_dir : string)
    ((name, _) as pass : string * (Dcir_sdfg.Sdfg.t -> bool))
    (sdfg : Dcir_sdfg.Sdfg.t) : bool * Diag.incident option =
  let snapshot = Dcir_sdfg.Sdfg.copy sdfg in
  let outcome =
    match run_one ?accum pass sdfg with
    | changed -> (
        match Dcir_sdfg.Validate.errors sdfg with
        | [] -> Ok changed
        | errs ->
            Error
              (String.concat "\n"
                 (List.map
                    (fun d -> Fmt.str "%a" Dcir_sdfg.Validate.pp_diagnostic d)
                    errs)))
    | exception exn -> Error ("pass raised: " ^ Printexc.to_string exn)
  in
  match outcome with
  | Ok changed -> (changed, None)
  | Error reason ->
      Dcir_sdfg.Sdfg.restore ~into:sdfg snapshot;
      Journal.note ~kind:"pass-rollback"
        [
          ("domain", Json.Str "data");
          ("pass", Json.Str name);
          ("round", Json.Int round);
          ("reason", Json.Str reason);
        ];
      let reproducer =
        Dcir_mlir.Pass.write_reproducer ~ext:".sdfg" ~dir:reproducer_dir
          ~prefix:"dcir-repro-dace" ~pass_name:name ~reason
          (Dcir_sdfg.Printer.to_string sdfg)
      in
      Dcir_mlir.Pass.record_rollback ~counter:"dace.pass.rollbacks"
        ~pass_name:name ~reason reproducer;
      Log.err (fun f ->
          f "pass %s failed validation and was rolled back: %s" name reason);
      (false, Some { Diag.in_pass = name; in_round = round; reason; reproducer })

(** Iterate [passes] to a fixpoint. With [~checked:true], every pass runs
    under snapshot/validate/rollback; a failing pass trips its breaker in
    [accum.breaker] (persistently, when the same [accum] is shared across
    stages) and its incident is recorded in [accum.incidents]. [budget]
    charges one unit of optimization fuel per pass application. *)
let fixpoint ?(max_rounds = 30) ?(accum : accum option)
    ?(budget : Budget.t option) ?(checked = false)
    ?(reproducer_dir = Filename.get_temp_dir_name ())
    (passes : (string * (Dcir_sdfg.Sdfg.t -> bool)) list)
    (sdfg : Dcir_sdfg.Sdfg.t) : bool =
  (* Checked mode needs somewhere to record incidents/breaker state even
     when the caller did not supply an accumulator. *)
  let acc = match accum with Some a -> a | None -> new_accum () in
  let changed = ref false in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < max_rounds do
    incr rounds;
    acc.total_rounds <- acc.total_rounds + 1;
    progress :=
      Obs.with_span ~cat:"dace-fixpoint"
        (Printf.sprintf "round %d" !rounds)
        (fun () ->
          List.fold_left
            (fun any ((name, _) as pass) ->
              if not (Breaker.admits acc.breaker name) then begin
                if Events.active () then
                  Events.emit ~code:"PASS-SKIP"
                    [
                      ("domain", Json.Str "data");
                      ("pass", Json.Str name);
                      ("round", Json.Int !rounds);
                      ("breaker", Json.Str (Breaker.state_name acc.breaker name));
                      ( "failures",
                        Json.Int (Breaker.failure_count acc.breaker name) );
                    ];
                any
              end
              else begin
                Option.iter Budget.burn_fuel budget;
                let c =
                  if not checked then run_one ~accum:acc pass sdfg
                  else begin
                    let c, incident =
                      run_one_checked ~accum:acc ~round:!rounds ~reproducer_dir
                        pass sdfg
                    in
                    (match incident with
                    | Some i ->
                        acc.incidents <- i :: acc.incidents;
                        Breaker.record_failure acc.breaker name
                    | None -> Breaker.record_success acc.breaker name);
                    c
                  end
                in
                if Events.active () then
                  Events.emit ~code:"PASS-ADMIT"
                    [
                      ("domain", Json.Str "data");
                      ("pass", Json.Str name);
                      ("round", Json.Int !rounds);
                      ("changed", Json.Bool c);
                    ];
                c || any
              end)
            false passes);
    Breaker.end_round acc.breaker;
    Log.debug (fun f ->
        f "fixpoint round %d: %s" !rounds
          (if !progress then "progress" else "stable"));
    if !progress then changed := true
  done;
  !changed

(* Rounds-to-convergence distribution per full data-centric [optimize]
   (total across its stages' fixpoints). *)
let rounds_hist =
  Om.Histogram.make "dace.fixpoint.rounds"
    ~edges:[| 3.; 6.; 9.; 15.; 24.; 40. |]

let inference : (string * (Dcir_sdfg.Sdfg.t -> bool)) list =
  [
    ("scalar-to-symbol", Scalar_to_symbol.run);
    ("symbol-propagation", Symbol_propagation.run);
    ("wcr-detection", Wcr_detect.run);
  ]

let simplify_passes : (string * (Dcir_sdfg.Sdfg.t -> bool)) list =
  inference
  @ [
      ("state-fusion", State_fusion.run);
      ("scalar-forwarding", Scalar_forwarding.run);
      ("element-forwarding", Element_forwarding.run);
      ("dead-state", Dead_state.run);
    ]

let o1_passes : (string * (Dcir_sdfg.Sdfg.t -> bool)) list =
  [
    ("dead-dataflow", Dead_dataflow.run);
    ("memlet-consolidation", Memlet_consolidation.run);
  ]

let o2_passes : (string * (Dcir_sdfg.Sdfg.t -> bool)) list =
  [
    ("alloc-opt", Alloc_opt.run);
    ("loop-fusion", Loop_fusion.run);
    ("shrink-to-scalar", Shrink_scalar.run);
    ("local-storage", Local_storage.run);
    ("invariant-collapse", Invariant_collapse.run);
  ]

let all_pass_names : string list =
  List.map fst (simplify_passes @ o1_passes @ o2_passes)

(** DaCe's [sdfg.simplify()]: inference + fusion to a fixpoint. *)
let simplify (sdfg : Dcir_sdfg.Sdfg.t) : bool = fixpoint simplify_passes sdfg

(* Containers removed outright plus arrays demoted to register scalars —
   both stop existing in memory. *)
let eliminated_containers () : int =
  !Dead_dataflow.eliminated_counter + !Shrink_scalar.counter

let reset_counters () : unit =
  Dead_dataflow.eliminated_counter := 0;
  Shrink_scalar.counter := 0

(** Full pipeline: simplify, then -O1 data movement reduction, then -O2
    memory scheduling, re-simplifying after each stage (passes expose new
    opportunities to each other). [disable] names passes to skip — the
    ablation hook used by the benchmark harness. Returns the populated
    statistics of this run. *)
let optimize ?(o1 = true) ?(o2 = true) ?(disable = []) ?(checked = false)
    ?(budget : Budget.t option) ?reproducer_dir (sdfg : Dcir_sdfg.Sdfg.t) :
    stats =
  let keep passes =
    List.filter (fun (n, _) -> not (List.mem n disable)) passes
  in
  let states_before, edges_before, containers_before = sdfg_counts sdfg in
  let eliminated0 = eliminated_containers () in
  let accum = new_accum () in
  let stage name passes =
    ignore
      (Obs.with_span ~cat:"dace-stage" name (fun () ->
           let s0, e0, c0 = sdfg_counts sdfg in
           let changed =
             fixpoint ~accum ?budget ~checked ?reproducer_dir (keep passes)
               sdfg
           in
           let s1, e1, c1 = sdfg_counts sdfg in
           Obs.set_args
             [
               ("changed", Json.Bool changed);
               ("states", Json.Str (Printf.sprintf "%d->%d" s0 s1));
               ("edges", Json.Str (Printf.sprintf "%d->%d" e0 e1));
               ("containers", Json.Str (Printf.sprintf "%d->%d" c0 c1));
             ];
           Log.info (fun f ->
               f "stage %s: states %d->%d, edges %d->%d, containers %d->%d"
                 name s0 s1 e0 e1 c0 c1);
           changed))
  in
  stage "simplify" simplify_passes;
  if o1 then stage "reduce-data-movement" (simplify_passes @ o1_passes);
  if o2 then
    stage "memory-scheduling" (simplify_passes @ o1_passes @ o2_passes);
  let states_after, edges_after, containers_after = sdfg_counts sdfg in
  Om.Histogram.observe rounds_hist (float_of_int accum.total_rounds);
  {
    rounds = accum.total_rounds;
    applications =
      List.map
        (fun n ->
          (n, Option.value ~default:0 (Hashtbl.find_opt accum.apps n)))
        all_pass_names;
    states_before;
    states_after;
    edges_before;
    edges_after;
    containers_before;
    containers_after;
    eliminated_containers = eliminated_containers () - eliminated0;
    incidents = List.rev accum.incidents;
  }
