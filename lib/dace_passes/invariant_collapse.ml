(** Loop-invariant state machine collapsing and dead-write range narrowing —
    the symbolic-analysis extensions of array elimination (§6.2) that the
    motivating example (Fig 2) exercises.

    {b Invariant collapse}: a loop whose body does not depend on the
    induction symbol, carries no state across iterations (no container both
    read and written, no WCR, no recurring allocation), and provably runs at
    least once, performs the same idempotent writes every iteration — it is
    replaced by a single execution of its body.

    {b Write narrowing}: when a transient container's reads are confined to
    a statically-known bounding box, a loop that only writes that container
    element-wise at [C[i]] can shrink its iteration range to the box —
    writes outside it land in elements that are provably never read. *)

open Dcir_sdfg
open Dcir_symbolic

(* Symbols referenced by the body: graphs plus intra-body edges. *)
let body_free_syms (sdfg : Sdfg.t) (l : Loop_analysis.loop) : string list =
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  let add xs = List.iter (fun s -> acc := S.add s !acc) xs in
  List.iter
    (fun (st : Sdfg.state) ->
      if List.mem st.s_label l.body then add (Sdfg.graph_free_syms st.s_graph))
    (Sdfg.states sdfg);
  List.iter
    (fun (e : Sdfg.istate_edge) ->
      if
        List.mem e.ie_src l.body && List.mem e.ie_dst l.body
        && not (e == l.back_edge)
      then begin
        add (Bexpr.free_syms e.ie_cond);
        List.iter (fun (_, ex) -> add (Expr.free_syms ex)) e.ie_assign
      end)
    (Sdfg.istate_edges sdfg);
  S.elements !acc

let body_states (sdfg : Sdfg.t) (l : Loop_analysis.loop) : Sdfg.state list =
  List.filter (fun (s : Sdfg.state) -> List.mem s.s_label l.body) (Sdfg.states sdfg)

let has_carried_state (sdfg : Sdfg.t) (l : Loop_analysis.loop) : bool =
  let states = body_states sdfg l in
  let reads =
    List.concat_map (fun (s : Sdfg.state) -> Sdfg.read_containers s.s_graph) states
  in
  let writes =
    List.concat_map
      (fun (s : Sdfg.state) -> Sdfg.written_containers s.s_graph)
      states
  in
  List.exists (fun c -> List.mem c writes) reads

let has_wcr_or_recurring_alloc (sdfg : Sdfg.t) (l : Loop_analysis.loop) : bool
    =
  let wcr = ref false in
  List.iter
    (fun (s : Sdfg.state) ->
      let rec go (g : Sdfg.graph) =
        List.iter
          (fun (e : Sdfg.edge) ->
            match e.e_memlet with
            | Some m when m.wcr <> None -> wcr := true
            | _ -> ())
          (Sdfg.edges g);
        List.iter
          (fun (n : Sdfg.node) ->
            match n.kind with Sdfg.MapN mn -> go mn.m_body | _ -> ())
          (Sdfg.nodes g)
      in
      go s.s_graph)
    (body_states sdfg l);
  !wcr
  || Hashtbl.fold
       (fun _ (c : Sdfg.container) acc ->
         acc
         || (c.alloc_in_loop
            && match c.alloc_state with
               | Some s -> List.mem s l.body
               | None -> false))
       sdfg.containers false

(* Provably at least one iteration: condition holds at i = init. *)
let runs_at_least_once (l : Loop_analysis.loop) : bool =
  let cond0 =
    Bexpr.subst
      (fun s -> if String.equal s l.sym then Some l.init else None)
      l.cond
  in
  Bexpr.decide cond0 = Some true

let collapse (sdfg : Sdfg.t) (l : Loop_analysis.loop) : unit =
  (* entry -> body_entry directly (keep assignments: the induction symbol
     may still appear in leftover metadata; it is unused by the body). *)
  let body_entry = l.continue_edge.ie_dst in
  let exit_dst = l.exit_edge.ie_dst in
  let latch = l.back_edge.ie_src in
  Sdfg.set_istate_edges sdfg @@
    List.filter_map
      (fun (e : Sdfg.istate_edge) ->
        if e == l.entry_edge then Some { e with ie_dst = body_entry }
        else if e == l.back_edge then
          (* The induction increment is dropped, but assignments the exit
             edge carried (e.g. the next loop's init after fusion) still
             fire when leaving the loop. *)
          Some
            {
              e with
              ie_src = latch;
              ie_dst = exit_dst;
              ie_assign = l.exit_edge.ie_assign;
            }
        else if e == l.continue_edge || e == l.exit_edge then None
        else Some e)
      (Sdfg.istate_edges sdfg);
  Sdfg.set_states sdfg @@
    List.filter
      (fun (s : Sdfg.state) -> not (String.equal s.s_label l.guard))
      (Sdfg.states sdfg)

let collapse_invariant_loops (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    let loops = Loop_analysis.find_loops sdfg in
    let candidate =
      List.find_opt
        (fun (l : Loop_analysis.loop) ->
          l.body <> []
          && (not (List.mem l.sym (body_free_syms sdfg l)))
          && (not (has_carried_state sdfg l))
          && (not (has_wcr_or_recurring_alloc sdfg l))
          && runs_at_least_once l
          (* Exit-edge assignments survive the collapse verbatim, so they
             must not read the induction symbol (whose final value the
             collapsed form no longer computes). *)
          && List.for_all
               (fun (_, ex) -> not (List.mem l.sym (Expr.free_syms ex)))
               l.exit_edge.ie_assign
          (* No nested loop may use l.sym either (covered by free syms);
             nested guards live in l.body so their conditions are checked. *))
        loops
    in
    match candidate with
    | Some l ->
        collapse sdfg l;
        changed := true;
        progress := true
    | None -> ()
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Write narrowing *)

let narrow_writes (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  (* Read bounding boxes must be static: only caller-bound argument symbols
     (and constants) qualify — loop-variant symbols do not describe a box. *)
  let syms : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace syms s ()) sdfg.arg_symbols;
  let loops = Loop_analysis.find_loops sdfg in
  List.iter
    (fun (l : Loop_analysis.loop) ->
      match Loop_analysis.single_state_body sdfg l with
      | None -> ()
      | Some body -> (
          let writes = Sdfg.written_containers body.s_graph in
          match writes with
          | [ c ] -> (
              match Hashtbl.find_opt sdfg.containers c with
              | Some cont
                when cont.transient
                     && (not (List.mem c (Sdfg.read_containers body.s_graph)))
                     && List.length cont.shape = 1 -> (
                  (* Every write subset must be exactly [l.sym]; every read
                     of c anywhere must have a static bounding box. *)
                  let writer_subsets =
                    Graph_util.writer_edges body.s_graph c
                    |> List.filter_map (fun ((_, e) : _ * Sdfg.edge) ->
                           match e.e_memlet with
                           | Some m when String.equal m.data c -> Some m.subset
                           | Some m -> m.other
                           | None -> None)
                  in
                  let identity_writes =
                    writer_subsets <> []
                    && List.for_all
                         (fun (s : Range.t) ->
                           match s with
                           | [ d ] ->
                               Range.is_index d
                               && Expr.equal d.lo (Expr.sym l.sym)
                           | _ -> false)
                         writer_subsets
                  in
                  let readers = Graph_util.all_reader_edges sdfg c in
                  let read_boxes =
                    List.map
                      (fun ((_, _, e) : _ * _ * Sdfg.edge) ->
                        match e.e_memlet with
                        | Some m when Graph_util.subset_analyzable syms m.subset
                          ->
                            Some m.subset
                        | _ -> None)
                      readers
                  in
                  match (identity_writes, read_boxes) with
                  | true, boxes
                    when readers <> [] && List.for_all Option.is_some boxes ->
                      let boxes = List.map Option.get boxes in
                      let union =
                        List.fold_left Range.union (List.hd boxes)
                          (List.tl boxes)
                      in
                      (match union with
                      | [ d ] -> (
                          (* New range: [max(init, lo), min(bound, hi+1)). *)
                          match l.cond with
                          | Bexpr.Cmp (Bexpr.Lt, Expr.Sym s, ub)
                            when String.equal s l.sym
                                 && Expr.is_constant l.step = Some 1 ->
                              let new_init = Expr.max_ l.init d.lo in
                              let new_ub =
                                Expr.min_ ub (Expr.add d.hi Expr.one)
                              in
                              if
                                (not (Expr.equal new_init l.init))
                                || not (Expr.equal new_ub ub)
                              then begin
                                l.entry_edge.ie_assign <-
                                  List.map
                                    (fun (sym, e) ->
                                      if String.equal sym l.sym then
                                        (sym, new_init)
                                      else (sym, e))
                                    l.entry_edge.ie_assign;
                                l.continue_edge.ie_cond <-
                                  Bexpr.lt (Expr.sym l.sym) new_ub;
                                l.exit_edge.ie_cond <-
                                  Bexpr.ge (Expr.sym l.sym) new_ub;
                                changed := true
                              end
                          | _ -> ())
                      | _ -> ())
                  | _ -> ())
              | _ -> ())
          | _ -> ()))
    loops;
  !changed

let run (sdfg : Sdfg.t) : bool =
  let a = narrow_writes sdfg in
  let b = collapse_invariant_loops sdfg in
  a || b
