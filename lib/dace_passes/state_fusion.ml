(** State fusion — the core of SDFG simplification (§6.1).

    Two states connected by a single unconditional, assignment-free edge
    (where the first has exactly one successor and the second exactly one
    predecessor) merge into one dataflow graph. Conflicting accesses to the
    same container are sequenced by dependency edges between the {e event
    nodes} (the nodes whose execution actually performs the data movement),
    so the merged graph stays race-free — the paper's "data dependencies can
    be expressed in one acyclic graph without introducing data races".

    Fusing the converter's one-op-per-state output repeatedly enlarges pure
    dataflow regions, as in Fig 5d → §6.1. *)

open Dcir_sdfg

(* Fusion sequences conflicting accesses through dependency edges between
   event NODES — it cannot order a write against a *symbolic* read (a
   scalar-container pseudo-symbol inside a memlet subset, map range, or
   tasklet expression), because those reads happen at evaluation sites,
   not at nodes. Until scalar-to-symbol promotes such scalars, a state
   writing one must not be fused with a state reading it symbolically:
   the state boundary is the only thing ordering them. *)
let symbol_order_safe (s1 : Sdfg.state) (s2 : Sdfg.state) : bool =
  let module S = Set.Make (String) in
  let writes g = S.of_list (Sdfg.written_containers g) in
  let sym_reads g = S.of_list (Graph_util.symbol_reads g) in
  S.disjoint (writes s1.s_graph) (sym_reads s2.s_graph)
  && S.disjoint (writes s2.s_graph) (sym_reads s1.s_graph)

let fusable (sdfg : Sdfg.t) (e : Sdfg.istate_edge) : bool =
  e.ie_cond = Dcir_symbolic.Bexpr.Bool true
  && e.ie_assign = []
  && (not (String.equal e.ie_src e.ie_dst))
  && List.length (Sdfg.out_edges sdfg e.ie_src) = 1
  && List.length (Sdfg.in_edges sdfg e.ie_dst) = 1
  && symbol_order_safe
       (Option.get (Sdfg.find_state sdfg e.ie_src))
       (Option.get (Sdfg.find_state sdfg e.ie_dst))

let fuse_pair (sdfg : Sdfg.t) (e : Sdfg.istate_edge) : unit =
  let s1 = Option.get (Sdfg.find_state sdfg e.ie_src) in
  let s2 = Option.get (Sdfg.find_state sdfg e.ie_dst) in
  let g1 = s1.s_graph and g2 = s2.s_graph in
  (* Containers touched in both states need sequencing edges. *)
  let touched g =
    let module S = Set.Make (String) in
    S.of_list (Sdfg.read_containers g @ Sdfg.written_containers g)
  in
  let module S = Set.Make (String) in
  let common = S.inter (touched g1) (touched g2) in
  let writes1 = S.of_list (Sdfg.written_containers g1) in
  let writes2 = S.of_list (Sdfg.written_containers g2) in
  let dep_edges =
    S.fold
      (fun c acc ->
        (* read-read needs no ordering *)
        if (not (S.mem c writes1)) && not (S.mem c writes2) then acc
        else
          let ev1 = Graph_util.event_nodes g1 c in
          let ev2 = Graph_util.event_nodes g2 c in
          List.concat_map
            (fun ((n1, rw1) : Sdfg.node * _) ->
              List.filter_map
                (fun ((n2, rw2) : Sdfg.node * _) ->
                  if rw1 = `Read && rw2 = `Read then None
                  else Some (n1.nid, n2.nid))
                ev2)
            ev1
          @ acc)
      common []
  in
  (* Merge. *)
  Sdfg.set_nodes g1 @@ (Sdfg.nodes g1) @ (Sdfg.nodes g2);
  Sdfg.set_edges g1 @@ (Sdfg.edges g1) @ (Sdfg.edges g2);
  List.iter
    (fun (a, b) ->
      if a <> b
         && not
              (List.exists
                 (fun (x : Sdfg.edge) ->
                   x.e_src = a && x.e_dst = b && x.e_memlet = None)
                 (Sdfg.edges g1))
      then
        Sdfg.set_edges g1 @@
          (Sdfg.edges g1)
          @ [ { e_src = a; e_src_conn = None; e_dst = b; e_dst_conn = None;
                e_memlet = None } ])
    dep_edges;
  (* Rewire the state machine: s2's outgoing edges now leave s1. *)
  Sdfg.set_istate_edges sdfg @@
    List.filter_map
      (fun (x : Sdfg.istate_edge) ->
        if x == e then None
        else if String.equal x.ie_src s2.s_label then
          Some { x with ie_src = s1.s_label }
        else if String.equal x.ie_dst s2.s_label then
          Some { x with ie_dst = s1.s_label }
        else Some x)
      (Sdfg.istate_edges sdfg);
  Sdfg.set_states sdfg @@
    List.filter (fun (s : Sdfg.state) -> not (s == s2)) (Sdfg.states sdfg);
  (* Move alloc-state ownership to the fused state. *)
  Hashtbl.iter
    (fun _ (c : Sdfg.container) ->
      if c.alloc_state = Some s2.s_label then c.alloc_state <- Some s1.s_label)
    sdfg.containers

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    match List.find_opt (fusable sdfg) (Sdfg.istate_edges sdfg) with
    | Some e ->
        fuse_pair sdfg e;
        changed := true;
        progress := true
    | None -> ()
  done;
  !changed
