(** Memlet consolidation (§6.2): unions memlets that refer to the same
    container within the same scope into a bounding-box memlet — the "data
    movement common denominator" for a stencil reading [A[i]] and [A[i+1]].

    The consolidation applies to {e map} external edges (where several
    per-element edges from the surrounding scope can merge into one) — for
    plain tasklet inputs the individual element memlets are the actual
    movement and stay. The pass therefore primarily serves analyses
    (volume estimates, fusion legality) and the map-based tests; it also
    dedups exactly-equal memlets between the same endpoints. *)

open Dcir_sdfg
open Dcir_symbolic

let run (sdfg : Sdfg.t) : bool =
  let changed = ref false in
  let rec process (g : Sdfg.graph) =
    (* Dedup identical parallel memlet edges (same endpoints, connectors,
       data, equal subsets). *)
    let rec dedup (seen : Sdfg.edge list) = function
      | [] -> List.rev seen
      | (e : Sdfg.edge) :: rest ->
          let duplicate =
            List.exists
              (fun (x : Sdfg.edge) ->
                x.e_src = e.e_src && x.e_dst = e.e_dst
                && x.e_src_conn = e.e_src_conn && x.e_dst_conn = e.e_dst_conn
                &&
                match (x.e_memlet, e.e_memlet) with
                | Some a, Some b ->
                    String.equal a.data b.data
                    && Range.equal a.subset b.subset
                    && a.wcr = b.wcr
                | None, None -> true
                | _ -> false)
              seen
          in
          if duplicate then begin
            changed := true;
            dedup seen rest
          end
          else dedup (e :: seen) rest
    in
    Sdfg.set_edges g @@ dedup [] (Sdfg.edges g);
    (* Union map-node external input memlets per container. *)
    List.iter
      (fun (n : Sdfg.node) ->
        match n.kind with
        | Sdfg.MapN mn ->
            process mn.m_body;
            let ins = Sdfg.node_in_edges g n in
            let groups : (string, Sdfg.edge list) Hashtbl.t = Hashtbl.create 8 in
            List.iter
              (fun (e : Sdfg.edge) ->
                match e.e_memlet with
                | Some m when m.wcr = None && e.e_dst_conn = None ->
                    Hashtbl.replace groups m.data
                      (e :: Option.value ~default:[] (Hashtbl.find_opt groups m.data))
                | _ -> ())
              ins;
            Hashtbl.iter
              (fun _ (edges : Sdfg.edge list) ->
                match edges with
                | (first : Sdfg.edge) :: (_ :: _ as rest) ->
                    let union_subset =
                      List.fold_left
                        (fun acc (e : Sdfg.edge) ->
                          match e.e_memlet with
                          | Some m -> Range.union acc m.subset
                          | None -> acc)
                        (match first.Sdfg.e_memlet with
                        | Some m -> m.subset
                        | None -> [])
                        rest
                    in
                    (match first.Sdfg.e_memlet with
                    | Some m ->
                        first.Sdfg.e_memlet <- Some { m with subset = union_subset }
                    | None -> ());
                    Sdfg.set_edges g @@
                      List.filter
                        (fun (x : Sdfg.edge) ->
                          not (List.memq x rest))
                        (Sdfg.edges g);
                    changed := true
                | _ -> ())
              groups
        | _ -> ())
      (Sdfg.nodes g)
  in
  List.iter (fun (st : Sdfg.state) -> process st.s_graph) (Sdfg.states sdfg);
  !changed
