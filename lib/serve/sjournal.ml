(** Serve response journal (JSON schema [dcir-serve-journal/1]).

    The journal is the serving engine's complete, replayable decision
    record: one sequenced entry per admission-control and scheduling
    decision ([SRV-*] codes, the same closed catalogue registered in
    {!Dcir_obs.Events}), the per-request responses in completion order,
    and a summary with per-code counts and the plan-cache telemetry
    delta. No timestamps, no ordering dependent on other tenants'
    internals: the same request file under the same seed and
    configuration produces a byte-identical journal (enforced by a [cmp]
    rule under [dune runtest]), and [validate_report.exe] gates the
    schema — contiguous sequence numbers, catalogued codes, every
    rejection carrying its tenant and reason. *)

module Json = Dcir_obs.Json
module Events = Dcir_obs.Events

type entry = {
  sj_seq : int;
  sj_code : string;  (** an [SRV-*] code from the events catalogue *)
  sj_fields : (string * Json.t) list;
}

type t = { mutable rev_entries : entry list; mutable next_seq : int }

let create () : t = { rev_entries = []; next_seq = 0 }
let length (t : t) : int = t.next_seq
let entries (t : t) : entry list = List.rev t.rev_entries

(** Append an entry and mirror it onto the ambient event stream (so
    [--events] traces interleave serve decisions with compiler
    decisions). *)
let record (t : t) ~(code : string) (fields : (string * Json.t) list) : unit =
  t.rev_entries <-
    { sj_seq = t.next_seq; sj_code = code; sj_fields = fields }
    :: t.rev_entries;
  t.next_seq <- t.next_seq + 1;
  Events.emit ~code fields

let count_code (t : t) (code : string) : int =
  List.length (List.filter (fun e -> e.sj_code = code) (entries t))

(* ---- responses --------------------------------------------------- *)

type status = Done | Rejected | Failed

let status_name = function
  | Done -> "ok"
  | Rejected -> "rejected"
  | Failed -> "failed"

type response = {
  rs_id : string;
  rs_tenant : string;
  rs_status : status;
  rs_code : string;  (** ["ok"], or the stable rejection/failure code *)
  rs_tier : string option;  (** tier the artifact landed at *)
  rs_attempts : int;  (** attempts consumed (0 = never attempted) *)
  rs_cycles : float option;  (** machine metrics, run requests only *)
  rs_loads : int option;
  rs_stores : int option;
  rs_return : string option;  (** printed return value, run requests *)
  rs_digest : string option;  (** artifact digest, compile requests *)
}

let response_json (r : response) : Json.t =
  let opt name f = function Some v -> [ (name, f v) ] | None -> [] in
  Json.Obj
    ([
       ("id", Json.Str r.rs_id);
       ("tenant", Json.Str r.rs_tenant);
       ("status", Json.Str (status_name r.rs_status));
       ("code", Json.Str r.rs_code);
       ("attempts", Json.Int r.rs_attempts);
     ]
    @ opt "tier" (fun s -> Json.Str s) r.rs_tier
    @ opt "cycles" (fun c -> Json.Float c) r.rs_cycles
    @ opt "loads" (fun n -> Json.Int n) r.rs_loads
    @ opt "stores" (fun n -> Json.Int n) r.rs_stores
    @ opt "return" (fun s -> Json.Str s) r.rs_return
    @ opt "digest" (fun s -> Json.Str s) r.rs_digest)

let entry_json (e : entry) : Json.t =
  Json.Obj
    (("seq", Json.Int e.sj_seq) :: ("code", Json.Str e.sj_code) :: e.sj_fields)

(* ---- document ---------------------------------------------------- *)

let count_status (responses : response list) (s : status) : int =
  List.length (List.filter (fun r -> r.rs_status = s) responses)

(** The [dcir-serve-journal/1] document. [config] fields are spliced
    into the header (queue capacity, breaker thresholds, ...);
    [plan_cache] is the store telemetry delta for this serve run. *)
let to_json ~(seed : int) ~(config : (string * Json.t) list)
    ~(responses : response list) ~(plan_cache : (string * Json.t) list)
    (t : t) : Json.t =
  let codes =
    (* Per-code counts over the codes that actually occur, sorted. *)
    List.sort_uniq compare (List.map (fun e -> e.sj_code) (entries t))
    |> List.map (fun c -> (c, Json.Int (count_code t c)))
  in
  Json.Obj
    [
      ("schema", Json.Str "dcir-serve-journal/1");
      ("seed", Json.Int seed);
      ("config", Json.Obj config);
      ("entries", Json.List (List.map entry_json (entries t)));
      ("responses", Json.List (List.map response_json responses));
      ( "summary",
        Json.Obj
          [
            ("requests", Json.Int (List.length responses));
            ("ok", Json.Int (count_status responses Done));
            ("rejected", Json.Int (count_status responses Rejected));
            ("failed", Json.Int (count_status responses Failed));
            ("retries", Json.Int (count_code t "SRV-RETRY"));
            ("shed", Json.Int (count_code t "SRV-SHED"));
            ("codes", Json.Obj codes);
            ("plan_cache", Json.Obj plan_cache);
          ] );
    ]

let to_string ~seed ~config ~responses ~plan_cache (t : t) : string =
  Json.to_string (to_json ~seed ~config ~responses ~plan_cache t)

(* Atomic (temp file + rename): a serve process killed mid-write must
   never leave a torn journal where a previous good one stood. *)
let write ~seed ~config ~responses ~plan_cache (t : t) (path : string) : unit =
  Dcir_support.Atomic_io.write path (fun oc ->
      output_string oc (to_string ~seed ~config ~responses ~plan_cache t);
      output_char oc '\n')

(** A tenant's responses, rendered — the unit of the isolation oracle:
    this list must be byte-identical between a multi-tenant run and a
    solo run of the same tenant's requests. *)
let responses_for_tenant (responses : response list) (tenant : string) :
    string list =
  List.filter (fun r -> r.rs_tenant = tenant) responses
  |> List.map (fun r -> Json.to_string (response_json r))
