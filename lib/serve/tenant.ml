(** Per-tenant serve state: quota accounting and backpressure.

    Each tenant owns a resource quota ({!Dcir_resilience.Budget.limits}
    spread across all of its requests) and a circuit breaker
    ({!Dcir_resilience.Breaker} keyed by the tenant name) that converts
    repeated terminal failures into fast [SRV-REJECT]s until a cooldown
    and probation clear.

    Isolation invariant: everything here is a function of the tenant's
    {e own} request stream — spend, breaker rounds, deadline clocks. No
    field advances because of another tenant's traffic, which is what
    makes a tenant's responses byte-identical between a multi-tenant run
    and a solo run of the same requests (the [dcir fuzz --serve] oracle
    checks exactly that). *)

module Budget = Dcir_resilience.Budget
module Breaker = Dcir_resilience.Breaker

type t = {
  tn_name : string;
  tn_limits : Budget.limits;  (** quota across all requests *)
  tn_breaker : Breaker.t;  (** single entry, keyed by [tn_name] *)
  mutable tn_steps : int;  (** interpreter steps spent so far *)
  mutable tn_fuel : int;  (** optimization fuel spent so far *)
  mutable tn_allocs : int;  (** machine allocations so far *)
}

let create ~(name : string) ~(limits : Budget.limits)
    ~(breaker : Breaker.config) : t =
  {
    tn_name = name;
    tn_limits = limits;
    tn_breaker = Breaker.create ~config:breaker ();
    tn_steps = 0;
    tn_fuel = 0;
    tn_allocs = 0;
  }

(** Quota left, clamped at zero — the ceilings for the next attempt's
    budget. *)
let remaining (t : t) : Budget.limits =
  {
    Budget.max_steps = max 0 (t.tn_limits.Budget.max_steps - t.tn_steps);
    max_fuel = max 0 (t.tn_limits.Budget.max_fuel - t.tn_fuel);
    max_allocs = max 0 (t.tn_limits.Budget.max_allocs - t.tn_allocs);
  }

let exhausted (t : t) : bool =
  let r = remaining t in
  r.Budget.max_steps = 0 || r.Budget.max_fuel = 0 || r.Budget.max_allocs = 0

(** Fold an attempt's spend into the tenant's account. *)
let charge (t : t) (b : Budget.t) : unit =
  t.tn_steps <- t.tn_steps + b.Budget.steps;
  t.tn_fuel <- t.tn_fuel + b.Budget.fuel;
  t.tn_allocs <- t.tn_allocs + b.Budget.allocs

(** The tenant's deadline clock: total budget units it has consumed.
    Deadlines are measured against this — a pure function of the
    tenant's own history, never of wall time or other tenants. *)
let spend (t : t) : int = t.tn_steps + t.tn_fuel + t.tn_allocs

(* ---- breaker ----------------------------------------------------- *)

let admits (t : t) : bool = Breaker.admits t.tn_breaker t.tn_name
let breaker_state (t : t) : string = Breaker.state_name t.tn_breaker t.tn_name

(** Record a terminal request outcome and advance the tenant's breaker
    round; returns [(before, after)] breaker states so the engine can
    journal [SRV-BRK-*] transitions. Retried (non-terminal) attempts are
    not recorded: with [trip_after = 1] a breaker that counted every
    attempt would open mid-retry and starve its own escalator. *)
let record_outcome (t : t) ~(ok : bool) : string * string =
  let before = breaker_state t in
  (if ok then Breaker.record_success t.tn_breaker t.tn_name
   else Breaker.record_failure t.tn_breaker t.tn_name);
  Breaker.end_round t.tn_breaker;
  (before, breaker_state t)

(** Advance the round without an attempt outcome (fast rejections also
    age an open breaker toward probation — otherwise a tripped tenant
    could never recover). *)
let age (t : t) : string * string =
  let before = breaker_state t in
  Breaker.end_round t.tn_breaker;
  (before, breaker_state t)
