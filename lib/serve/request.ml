(** Serve request parsing (JSON schema [dcir-serve-requests/1]).

    A request file is a batch: either a top-level object
    [{"schema": "dcir-serve-requests/1", "requests": [...]}] or a bare
    JSON list of request objects. Each request object names a tenant and
    an operation over a program source:

    {v
    { "id": "r1", "tenant": "acme", "op": "run",
      "source": { "inline": "int f(int n) { ... }", "entry": "f" },
      "tier": "O2", "priority": 1, "deadline": 50000,
      "retries": 2, "size": 16 }
    v}

    [source] is either [{"inline": <C source>, "entry": <name>}] or
    [{"workload": <name>}] (a workload from the built-in suites). Only
    [tenant] and [source] are required; everything else defaults.

    Parsing is total: a malformed request never raises — it becomes a
    {!rejected} carrying whatever id/tenant could be salvaged plus a
    stable reason, which the engine turns into an [SRV-REJECT] at
    admission. Deterministic ids ([r<index>]) are minted for requests
    that omit one, so journals stay byte-reproducible. *)

module Json = Dcir_obs.Json
module Pipelines = Dcir_core.Pipelines

type op = Compile | Run

let op_name = function Compile -> "compile" | Run -> "run"

type source =
  | Inline of { src : string; entry : string option }
      (** C source text; [entry] defaults to the first function *)
  | Workload of string  (** a named workload from the built-in suites *)

type t = {
  rq_id : string;
  rq_tenant : string;
  rq_op : op;
  rq_source : source;
  rq_kind : Pipelines.kind;  (** pipeline; default [Dcir] *)
  rq_tier : Pipelines.tier;  (** requested tier; default [O2] *)
  rq_priority : int;  (** shed policy rank; default 0, higher survives *)
  rq_deadline : int option;
      (** budget-step deadline against the tenant's own spend *)
  rq_retries : int option;  (** [None] = engine default *)
  rq_size : float;  (** scalar-int argument value for synthetic args *)
}

(** A request that failed validation: rejected at admission with a
    stable reason, under whatever identity could be recovered. *)
type rejected = { rej_id : string; rej_tenant : string; rej_reason : string }

(* ------------------------------------------------------------------ *)
(* Parsing *)

let str_member key j = Option.bind (Json.member key j) Json.to_str

let int_member key j =
  match Json.member key j with Some (Json.Int n) -> Some n | _ -> None

let float_member key j =
  match Json.member key j with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | _ -> None

let tier_of_string = function
  | "O2" -> Some Pipelines.O2
  | "O1" -> Some Pipelines.O1
  | "O0" -> Some Pipelines.O0
  | "unoptimized" | "unopt" -> Some Pipelines.Unopt
  | _ -> None

let kind_of_string = function
  | "dcir" -> Some Pipelines.Dcir
  | "dace" -> Some Pipelines.Dace
  | "mlir" -> Some Pipelines.Mlir
  | "gcc" -> Some Pipelines.Gcc
  | "clang" -> Some Pipelines.Clang
  | _ -> None

(** [of_json ~index j] — parse one request object; [Error] carries the
    salvaged identity and a stable [malformed: ...] reason. *)
let of_json ~(index : int) (j : Json.t) : (t, rejected) result =
  let id =
    match str_member "id" j with
    | Some s when s <> "" -> s
    | _ -> Printf.sprintf "r%d" index
  in
  let tenant = Option.value (str_member "tenant" j) ~default:"" in
  let fail reason =
    Error
      {
        rej_id = id;
        rej_tenant = (if tenant = "" then "unknown" else tenant);
        rej_reason = "malformed: " ^ reason;
      }
  in
  match j with
  | Json.Obj _ ->
      if tenant = "" then fail "missing tenant"
      else
        let op =
          match str_member "op" j with
          | None | Some "run" -> Ok Run
          | Some "compile" -> Ok Compile
          | Some other -> Error ("unknown op " ^ other)
        in
        let source =
          match Json.member "source" j with
          | None -> Error "missing source"
          | Some s -> (
              match (str_member "inline" s, str_member "workload" s) with
              | Some src, None ->
                  Ok (Inline { src; entry = str_member "entry" s })
              | None, Some w -> Ok (Workload w)
              | Some _, Some _ -> Error "source has both inline and workload"
              | None, None -> Error "source needs inline or workload")
        in
        let tier =
          match str_member "tier" j with
          | None -> Ok Pipelines.O2
          | Some s -> (
              match tier_of_string s with
              | Some t -> Ok t
              | None -> Error ("unknown tier " ^ s))
        in
        let kind =
          match str_member "pipeline" j with
          | None -> Ok Pipelines.Dcir
          | Some s -> (
              match kind_of_string s with
              | Some k -> Ok k
              | None -> Error ("unknown pipeline " ^ s))
        in
        (match (op, source, tier, kind) with
        | Ok op, Ok source, Ok tier, Ok kind ->
            Ok
              {
                rq_id = id;
                rq_tenant = tenant;
                rq_op = op;
                rq_source = source;
                rq_kind = kind;
                rq_tier = tier;
                rq_priority = Option.value (int_member "priority" j) ~default:0;
                rq_deadline = int_member "deadline" j;
                rq_retries = int_member "retries" j;
                rq_size = Option.value (float_member "size" j) ~default:16.0;
              }
        | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _
        | _, _, _, Error e ->
            fail e)
  | _ -> fail "request is not an object"

(** [of_batch_json j] — the request list of a batch document (top-level
    object with a [requests] member, or a bare list). *)
let of_batch_json (j : Json.t) : ((t, rejected) result list, string) result =
  let items =
    match j with
    | Json.List items -> Ok items
    | Json.Obj _ -> (
        (match str_member "schema" j with
        | Some s when s <> "dcir-serve-requests/1" ->
            Error (Printf.sprintf "unknown request schema %s" s)
        | _ -> Ok ())
        |> function
        | Error e -> Error e
        | Ok () -> (
            match Option.bind (Json.member "requests" j) Json.to_list with
            | Some items -> Ok items
            | None -> Error "batch object has no requests list"))
    | _ -> Error "request document must be a list or a batch object"
  in
  Result.map (List.mapi (fun i item -> of_json ~index:i item)) items

(** Parse a full request document from its text. *)
let parse (text : string) : ((t, rejected) result list, string) result =
  match Json.parse text with
  | Error e -> Error ("request file: " ^ e)
  | Ok j -> of_batch_json j
