(** The serving engine: deterministic batch request processing.

    [run] takes a parsed request batch and drives every request through
    admission control, the bounded queue, and the resilient compilation
    pipeline, producing a {!Sjournal} response journal. The engine is a
    pure function of (requests, config, seed): no wall clocks, no host
    randomness — deadlines are budget-step clocks, backoff is queue
    position, breaker cooldown is round counts — so the same batch under
    the same config yields a byte-identical journal.

    Request lifecycle:

    - {b admission}: malformed requests and unknown workloads are
      rejected ([SRV-REJECT]); the rest enter the bounded queue
      ([SRV-ADMIT]), shedding deterministically when full ([SRV-SHED],
      lowest priority then oldest — the incoming request included).
    - {b dequeue checks}: an open tenant breaker rejects fast
      ([SRV-REJECT] reason [breaker-open], aging the breaker toward
      probation); an exhausted tenant quota rejects ([quota-exhausted]);
      an expired budget-step deadline fails the request
      ([SRV-DEADLINE]).
    - {b attempt}: one degradation-ladder rung
      ({!Dcir_core.Pipelines.compile_resilient} with [floor = tier]),
      plus execution for [run] requests, all charged to a budget carved
      from the tenant's remaining quota. Chaos faults, if configured,
      are armed per (request, attempt) — never from global state, so
      tenant histories stay independent.
    - {b outcome}: success journals [SRV-DONE] and feeds the tenant
      breaker a success; a retryable failure re-enters the queue at the
      next ladder tier with exponential-backoff insertion depth
      ([SRV-RETRY]); a terminal failure journals [SRV-FAIL] and feeds
      the breaker (frontend rejections — poison requests — are never
      retried). Breaker transitions surface as [SRV-BRK-*] entries. *)

module Json = Dcir_obs.Json
module Pipelines = Dcir_core.Pipelines
module Budget = Dcir_resilience.Budget
module Breaker = Dcir_resilience.Breaker
module Chaos = Dcir_resilience.Chaos
module Diag = Dcir_support.Diagnostics

type config = {
  cfg_seed : int;  (** recorded in the journal header *)
  cfg_queue : int;  (** admission queue capacity *)
  cfg_plan_cache : int;  (** artifact store capacity (0 disables) *)
  cfg_limits : Budget.limits;  (** per-tenant quota across requests *)
  cfg_breaker : Breaker.config;  (** per-tenant breaker thresholds *)
  cfg_retries : int;  (** default retry bound per request *)
  cfg_deadline : int option;  (** default budget-step deadline *)
  cfg_chaos : (id:string -> attempt:int -> Chaos.plan option) option;
      (** fault plans keyed by (request, attempt) — deterministic and
          position-independent, preserving tenant isolation *)
  cfg_interp : Pipelines.interp_mode;
      (** execution tier for run requests; [`Adaptive] journals each
          tier choice as [EXEC-TIER] events and stays deterministic —
          the tier-up registry is reset with the artifact stores, so the
          same request sequence replays byte-identically *)
  cfg_workers : int;
      (** worker domains; 1 = in-process sequential drain. Any N
          produces the same journal entries, responses and store
          telemetry as N = 1 — the worker count itself is recorded in
          the config header so journals are self-describing.
          [`Adaptive] interp mode forces the sequential drain (the
          tier-up registry is commit-order state). *)
  cfg_watchdog : int option;
      (** budget-step watchdog: caps any single attempt's step spend
          below the tenant's remaining quota, so one runaway request
          cannot monopolize a worker. Deterministic — a step count, not
          a wall clock; a tripped watchdog journals
          [SRV-WORKER-WATCHDOG] and re-enters the retry ladder. *)
}

let default_config : config =
  {
    cfg_seed = 0;
    cfg_queue = 64;
    cfg_plan_cache = Pipelines.default_plan_cache_capacity;
    cfg_limits = Budget.default;
    cfg_breaker = Breaker.default_config;
    cfg_retries = 2;
    cfg_deadline = None;
    cfg_chaos = None;
    cfg_interp = `Compiled;
    cfg_workers = 1;
    cfg_watchdog = None;
  }

let config_fields (c : config) : (string * Json.t) list =
  [
    ("queue", Json.Int c.cfg_queue);
    ("plan_cache", Json.Int c.cfg_plan_cache);
    ("tenant_steps", Json.Int c.cfg_limits.Budget.max_steps);
    ("tenant_fuel", Json.Int c.cfg_limits.Budget.max_fuel);
    ("tenant_allocs", Json.Int c.cfg_limits.Budget.max_allocs);
    ("trip_after", Json.Int c.cfg_breaker.Breaker.trip_after);
    ("cooldown", Json.Int c.cfg_breaker.Breaker.cooldown_rounds);
    ("probation", Json.Int c.cfg_breaker.Breaker.probation_successes);
    ("retries", Json.Int c.cfg_retries);
    ( "deadline",
      match c.cfg_deadline with Some d -> Json.Int d | None -> Json.Null );
    ( "interp",
      Json.Str
        (match c.cfg_interp with
        | `Tree -> "tree"
        | `Compiled -> "compiled"
        | `Bytecode -> "bytecode"
        | `Adaptive -> "adaptive") );
    ("workers", Json.Int c.cfg_workers);
    ( "watchdog",
      match c.cfg_watchdog with Some w -> Json.Int w | None -> Json.Null );
  ]

type report = {
  rp_seed : int;
  rp_config : (string * Json.t) list;
  rp_journal : Sjournal.t;
  rp_responses : Sjournal.response list;  (** completion order *)
  rp_results : (string * Pipelines.run_result) list;
      (** request id -> in-memory result for successful [run] requests —
          not serialized; the chaos campaign's correctness oracle *)
  rp_plan_cache : (string * Json.t) list;  (** store telemetry delta *)
  rp_placements : (string * int * int) list;
      (** (request id, attempt, worker domain) per pool execution,
          sorted — not serialized (domain choice is scheduling, not a
          decision); the crash-isolation tests' retry-placement oracle *)
  rp_coalesced : int;
      (** same-digest compilations coalesced by the pool (0 sequential) *)
}

let to_json (r : report) : Json.t =
  Sjournal.to_json ~seed:r.rp_seed ~config:r.rp_config
    ~responses:r.rp_responses ~plan_cache:r.rp_plan_cache r.rp_journal

(** [to_json] minus the self-describing ["workers"] config field: the
    engine's determinism contract is that every worker count produces
    this document byte-identically. *)
let replay_json (r : report) : Json.t =
  Sjournal.to_json ~seed:r.rp_seed
    ~config:(List.remove_assoc "workers" r.rp_config)
    ~responses:r.rp_responses ~plan_cache:r.rp_plan_cache r.rp_journal

let write (r : report) (path : string) : unit =
  Sjournal.write ~seed:r.rp_seed ~config:r.rp_config
    ~responses:r.rp_responses ~plan_cache:r.rp_plan_cache r.rp_journal path

(* ---- internals --------------------------------------------------- *)

(* One queued unit of work; [jb_tier] escalates down the ladder across
   retries, [jb_attempts] counts attempts consumed. *)
type job = {
  jb_rq : Request.t;
  jb_src : string;
  jb_entry : string option;  (* None: derive from source at attempt time *)
  jb_args : (unit -> Pipelines.arg list) option;  (* workload-provided *)
  mutable jb_tier : Pipelines.tier;
  mutable jb_attempts : int;
}

let workloads : Dcir_workloads.Workload.t list Lazy.t =
  lazy Dcir_workloads.(Polybench.all @ Case_studies.all)

let find_workload (name : string) : Dcir_workloads.Workload.t option =
  List.find_opt
    (fun (w : Dcir_workloads.Workload.t) -> w.name = name)
    (Lazy.force workloads)

let pc_counts () : int * int * int =
  let get k =
    match List.assoc_opt k (Pipelines.plan_cache_stats ()) with
    | Some (Json.Int n) -> n
    | _ -> 0
  in
  (get "hits", get "misses", get "evictions")

let artifact_digest : Pipelines.compiled -> string = function
  | Pipelines.CSdfg sdfg -> Pipelines.digest_of_sdfg sdfg
  | Pipelines.CMlir m ->
      Dcir_support.Digest.of_string
        (Dcir_support.Digest.canonical (Dcir_mlir.Printer.module_to_string m))

(* Frontend rejections — poison requests — are never retried: the input
   is invalid, and no amount of tier degradation or backoff changes
   that. The raw exceptions appear when the parser/sema rejects before
   the pipeline wraps them in a [Diag.Error]. *)
let is_frontend_error : exn -> bool = function
  | Diag.Error { phase = Diag.Frontend; _ }
  | Dcir_cfront.C_lexer.Lex_error _
  | Dcir_cfront.C_parser.Parse_error _
  | Dcir_cfront.C_sema.Sema_error _
  | Dcir_cfront.Polygeist.Lower_error _ ->
      true
  | _ -> false

(* Everything one dequeue step decides, as data: the journal entries it
   would record (in order), the response it would return, whether it
   re-enters the retry queue, and the artifact-store traffic it captured.
   Computing the step this way lets a worker domain run it speculatively
   while the supervisor — or the sequential drain, which shares the same
   commit function — applies the effects in commit order. *)
type step_fx = {
  fx_entries : (string * (string * Json.t) list) list;
  fx_response : Sjournal.response option;
  fx_result : Pipelines.run_result option;
  fx_retry : (string * Json.t) list option;
      (* [SRV-RETRY] fields minus the backoff depth, which only the
         commit-time queue can compute *)
  fx_warm : Pipelines.warm list;
}

(* A compilation shared by same-source requests within one pool batch:
   the artifact, its resilience report, and the budget spend of the
   compile — waiters are charged the recorded spend ("as if compiled"),
   so quotas and deadlines advance exactly as without coalescing. *)
type coalesced = {
  co_compiled : Pipelines.compiled;
  co_report : Pipelines.resilience_report;
  co_steps : int;
  co_fuel : int;
  co_allocs : int;
}

let run ?(config = default_config) (requests : (Request.t, Request.rejected) result list)
    : report =
  (* A fresh, empty store of the configured capacity: cache hits and
     misses are part of the journal's determinism contract, so the run
     must not inherit plans from earlier in the process. *)
  Pipelines.set_plan_cache_capacity config.cfg_plan_cache;
  let pc_hits0, pc_misses0, pc_evictions0 = pc_counts () in
  let journal = Sjournal.create () in
  let tenants : (string, Tenant.t) Hashtbl.t = Hashtbl.create 8 in
  let tenant_of (name : string) : Tenant.t =
    match Hashtbl.find_opt tenants name with
    | Some t -> t
    | None ->
        let t =
          Tenant.create ~name ~limits:config.cfg_limits
            ~breaker:config.cfg_breaker
        in
        Hashtbl.replace tenants name t;
        t
  in
  let queue : job Admission.t = Admission.create ~capacity:config.cfg_queue in
  let rev_responses : Sjournal.response list ref = ref [] in
  let results : (string * Pipelines.run_result) list ref = ref [] in
  let respond (r : Sjournal.response) : unit =
    rev_responses := r :: !rev_responses
  in
  let mk_reject ~id ~tenant ~code ~attempts : Sjournal.response =
    {
      Sjournal.rs_id = id;
      rs_tenant = tenant;
      rs_status = Sjournal.Rejected;
      rs_code = code;
      rs_tier = None;
      rs_attempts = attempts;
      rs_cycles = None;
      rs_loads = None;
      rs_stores = None;
      rs_return = None;
      rs_digest = None;
    }
  in
  let mk_failed ~id ~tenant ~code ~attempts : Sjournal.response =
    { (mk_reject ~id ~tenant ~code ~attempts) with rs_status = Sjournal.Failed }
  in
  let reject_response ~id ~tenant ~code ~attempts =
    respond (mk_reject ~id ~tenant ~code ~attempts)
  in

  (* ---- admission phase ------------------------------------------- *)
  List.iter
    (fun parsed ->
      match parsed with
      | Error { Request.rej_id; rej_tenant; rej_reason } ->
          Sjournal.record journal ~code:"SRV-REJECT"
            [
              ("id", Json.Str rej_id);
              ("tenant", Json.Str rej_tenant);
              ("reason", Json.Str rej_reason);
            ];
          reject_response ~id:rej_id ~tenant:rej_tenant ~code:rej_reason
            ~attempts:0
      | Ok rq -> (
          let mk_job ~src ~entry ~args =
            {
              jb_rq = rq;
              jb_src = src;
              jb_entry = entry;
              jb_args = args;
              jb_tier = rq.Request.rq_tier;
              jb_attempts = 0;
            }
          in
          let job =
            match rq.Request.rq_source with
            | Request.Inline { src; entry } ->
                Ok (mk_job ~src ~entry ~args:None)
            | Request.Workload name -> (
                match find_workload name with
                | Some w ->
                    Ok
                      (mk_job ~src:w.src ~entry:(Some w.entry)
                         ~args:(Some w.args))
                | None -> Error ("unknown-workload: " ^ name))
          in
          match job with
          | Error reason ->
              Sjournal.record journal ~code:"SRV-REJECT"
                [
                  ("id", Json.Str rq.Request.rq_id);
                  ("tenant", Json.Str rq.Request.rq_tenant);
                  ("reason", Json.Str reason);
                ];
              reject_response ~id:rq.Request.rq_id
                ~tenant:rq.Request.rq_tenant ~code:reason ~attempts:0
          | Ok job -> (
              let shed (victim : job Admission.entry) =
                let v = victim.Admission.qe_item.jb_rq in
                Sjournal.record journal ~code:"SRV-SHED"
                  [
                    ("id", Json.Str v.Request.rq_id);
                    ("tenant", Json.Str v.Request.rq_tenant);
                    ("reason", Json.Str "queue-full");
                    ("priority", Json.Int victim.Admission.qe_priority);
                  ];
                reject_response ~id:v.Request.rq_id
                  ~tenant:v.Request.rq_tenant ~code:"shed:queue-full"
                  ~attempts:victim.Admission.qe_item.jb_attempts
              in
              let admitted () =
                Sjournal.record journal ~code:"SRV-ADMIT"
                  [
                    ("id", Json.Str rq.Request.rq_id);
                    ("tenant", Json.Str rq.Request.rq_tenant);
                    ("op", Json.Str (Request.op_name rq.Request.rq_op));
                    ("tier", Json.Str (Pipelines.tier_name rq.Request.rq_tier));
                    ("priority", Json.Int rq.Request.rq_priority);
                  ]
              in
              match
                Admission.admit queue ~priority:rq.Request.rq_priority job
              with
              | Admission.Admitted -> admitted ()
              | Admission.Shed_incoming ->
                  Sjournal.record journal ~code:"SRV-SHED"
                    [
                      ("id", Json.Str rq.Request.rq_id);
                      ("tenant", Json.Str rq.Request.rq_tenant);
                      ("reason", Json.Str "queue-full");
                      ("priority", Json.Int rq.Request.rq_priority);
                    ];
                  reject_response ~id:rq.Request.rq_id
                    ~tenant:rq.Request.rq_tenant ~code:"shed:queue-full"
                    ~attempts:0
              | Admission.Shed victim ->
                  shed victim;
                  admitted ())))
    requests;

  (* ---- drain phase ------------------------------------------------ *)
  (* [`Adaptive] keeps the sequential drain: the tier-up registry is
     commit-order global state that workers cannot run ahead of. *)
  let use_pool = config.cfg_workers > 1 && config.cfg_interp <> `Adaptive in
  let memo_mutex = Mutex.create () in
  let memo : (string, coalesced) Hashtbl.t = Hashtbl.create 16 in
  let coalesced_count = Atomic.make 0 in
  (* The degradation-ladder compile for one attempt; in pool mode,
     chaos-free compiles of the same (kind, tier, entry, source) are
     coalesced: the first worker to finish records the artifact and its
     budget spend, and later attempts whose budget ceilings admit that
     spend reuse it, charged as if they had compiled it themselves. A
     recorded compile must be clean (no ladder degradations): a degraded
     trajectory depends on the ceiling it hit, so it is never shared. *)
  let compile_attempt ~(coalesce : bool) (job : job) ~(kind : Pipelines.kind)
      ~(entry_name : string) (budget : Budget.t) :
      Pipelines.compiled * Pipelines.resilience_report =
    let plain () =
      Pipelines.compile_resilient ~tier:job.jb_tier ~floor:job.jb_tier ~budget
        kind ~src:job.jb_src ~entry:entry_name
    in
    if not coalesce then plain ()
    else begin
      let key =
        String.concat "\x00"
          [
            Pipelines.kind_name kind;
            Pipelines.tier_name job.jb_tier;
            entry_name;
            job.jb_src;
          ]
      in
      let cached = Mutex.protect memo_mutex (fun () -> Hashtbl.find_opt memo key) in
      match cached with
      | Some c
        when c.co_steps <= budget.Budget.limits.Budget.max_steps
             && c.co_fuel <= budget.Budget.limits.Budget.max_fuel
             && c.co_allocs <= budget.Budget.limits.Budget.max_allocs ->
          Atomic.incr coalesced_count;
          budget.Budget.steps <- c.co_steps;
          budget.Budget.fuel <- c.co_fuel;
          budget.Budget.allocs <- c.co_allocs;
          (c.co_compiled, c.co_report)
      | _ ->
          let compiled, report = plain () in
          if report.Pipelines.res_degradations = [] then
            Mutex.protect memo_mutex (fun () ->
                if not (Hashtbl.mem memo key) then
                  Hashtbl.replace memo key
                    {
                      co_compiled = compiled;
                      co_report = report;
                      co_steps = budget.Budget.steps;
                      co_fuel = budget.Budget.fuel;
                      co_allocs = budget.Budget.allocs;
                    });
          (compiled, report)
    end
  in
  (* One dequeue step as an effect record. Mutates only the entry's job
     and its tenant — the pool's one-in-flight-per-tenant dispatch rule
     makes that safe on a worker domain, because every earlier step of
     the tenant is already committed. [capture] (pool workers) runs the
     artifact stores in private-capture mode; the supervisor replays the
     captured traffic in commit order. *)
  let process_step ~(capture : bool) (entry : job Admission.entry) : step_fx =
    let job = entry.Admission.qe_item in
    let rq = job.jb_rq in
    let id = rq.Request.rq_id and tn_name = rq.Request.rq_tenant in
    let tenant = tenant_of tn_name in
    let rev_entries : (string * (string * Json.t) list) list ref = ref [] in
    let add code fields = rev_entries := (code, fields) :: !rev_entries in
    (* Surface a breaker transition as its SRV-BRK-* journal entry. *)
    let breaker_transition (before : string) (after : string) : unit =
      if before <> after then
        let code =
          match after with
          | "open" -> "SRV-BRK-OPEN"
          | "probation" -> "SRV-BRK-PROBATION"
          | _ -> "SRV-BRK-CLOSE"
        in
        add code
          [
            ("tenant", Json.Str tn_name);
            ("from", Json.Str before);
            ("to", Json.Str after);
          ]
    in
    let fin ?response ?result ?retry ?(warm = []) () : step_fx =
      {
        fx_entries = List.rev !rev_entries;
        fx_response = response;
        fx_result = result;
        fx_retry = retry;
        fx_warm = warm;
      }
    in
    let deadline =
      match rq.Request.rq_deadline with
      | Some d -> Some d
      | None -> config.cfg_deadline
    in
    if not (Tenant.admits tenant) then begin
      add "SRV-REJECT"
        [
          ("id", Json.Str id);
          ("tenant", Json.Str tn_name);
          ("reason", Json.Str "breaker-open");
        ];
      let response =
        mk_reject ~id ~tenant:tn_name ~code:"breaker-open"
          ~attempts:job.jb_attempts
      in
      (* Fast rejections still age the breaker, else the tenant never
         reaches probation. *)
      let before, after = Tenant.age tenant in
      breaker_transition before after;
      fin ~response ()
    end
    else if Tenant.exhausted tenant then begin
      add "SRV-REJECT"
        [
          ("id", Json.Str id);
          ("tenant", Json.Str tn_name);
          ("reason", Json.Str "quota-exhausted");
        ];
      fin
        ~response:
          (mk_reject ~id ~tenant:tn_name ~code:"quota-exhausted"
             ~attempts:job.jb_attempts)
        ()
    end
    else
      match deadline with
      | Some d when Tenant.spend tenant > d ->
          add "SRV-DEADLINE"
            [
              ("id", Json.Str id);
              ("tenant", Json.Str tn_name);
              ("reason", Json.Str "deadline-expired");
              ("deadline", Json.Int d);
              ("spend", Json.Int (Tenant.spend tenant));
            ];
          fin
            ~response:
              (mk_failed ~id ~tenant:tn_name ~code:"deadline-expired"
                 ~attempts:job.jb_attempts)
            ()
      | _ -> (
          job.jb_attempts <- job.jb_attempts + 1;
          let armed_plan =
            match config.cfg_chaos with
            | None -> None
            | Some f -> f ~id ~attempt:job.jb_attempts
          in
          (match armed_plan with Some p -> Chaos.install p | None -> ());
          (* Arm before carving the budget: fuel starvation applies to
             this attempt's ceiling. The watchdog clamps the step
             ceiling below the tenant's remaining quota, bounding any
             single attempt's progress deterministically. *)
          let limits = Tenant.remaining tenant in
          let fuel = Chaos.fuel_limit ~default:limits.Budget.max_fuel in
          let steps_cap, watchdog_bound =
            match config.cfg_watchdog with
            | Some w when w < limits.Budget.max_steps -> (w, true)
            | _ -> (limits.Budget.max_steps, false)
          in
          let budget =
            Budget.create
              ~limits:
                { Budget.max_steps = steps_cap; max_fuel = fuel;
                  max_allocs = limits.Budget.max_allocs }
              ()
          in
          if capture then Pipelines.begin_private_capture ();
          let outcome =
            match
              Fun.protect
                ~finally:(fun () ->
                  if Option.is_some armed_plan then Chaos.clear ())
                (fun () ->
                  (match Chaos.worker_kill_at () with
                  | Some 0 ->
                      raise (Chaos.Injected (Chaos.Worker_kill, "pre-compile"))
                  | _ -> ());
                  let entry_name =
                    match job.jb_entry with
                    | Some e -> e
                    | None -> (
                        match Synth.default_entry job.jb_src with
                        | Some e -> e
                        | None ->
                            raise
                              (Diag.Error
                                 {
                                   Diag.code = "E-NO-ENTRY";
                                   phase = Diag.Frontend;
                                   message = "source defines no function";
                                 }))
                  in
                  let compiled, report =
                    compile_attempt
                      ~coalesce:(capture && Option.is_none armed_plan)
                      job ~kind:rq.Request.rq_kind ~entry_name budget
                  in
                  (match Chaos.worker_kill_at () with
                  | Some n when n > 0 ->
                      raise (Chaos.Injected (Chaos.Worker_kill, "post-compile"))
                  | _ -> ());
                  match rq.Request.rq_op with
                  | Request.Compile ->
                      (* Warm the plan store: the artifact digest is the
                         store key, so a later run of the same program
                         hits. Invisible to the tenant — the compile was
                         already paid for above either way. *)
                      (match compiled with
                      | Pipelines.CSdfg sdfg -> ignore (Pipelines.plan_for sdfg)
                      | Pipelines.CMlir _ -> ());
                      (report, None, Some (artifact_digest compiled))
                  | Request.Run ->
                      let args =
                        match job.jb_args with
                        | Some f -> f ()
                        | None ->
                            Synth.args job.jb_src entry_name
                              ~size:rq.Request.rq_size
                      in
                      let result =
                        Pipelines.run ~budget ~interp_mode:config.cfg_interp
                          compiled ~entry:entry_name args
                      in
                      (report, Some result, None))
            with
            | v -> Ok v
            | exception e -> Error e
          in
          let warm = if capture then Pipelines.end_private_capture () else [] in
          Tenant.charge tenant budget;
          (* A poisoned attempt reports success with a corrupted result
             envelope; the commit path discards it and retries, exactly
             like a crash. *)
          let outcome =
            match outcome with
            | Ok _
              when (match armed_plan with
                   | Some p -> p.Chaos.poison
                   | None -> false) ->
                add "SRV-WORKER-POISON"
                  [
                    ("id", Json.Str id);
                    ("tenant", Json.Str tn_name);
                    ("attempt", Json.Int job.jb_attempts);
                  ];
                Error (Chaos.Injected (Chaos.Poison_result, "result-envelope"))
            | o -> o
          in
          match outcome with
          | Ok (report, result, digest) ->
              let landed = Pipelines.tier_name report.Pipelines.res_landed in
              add "SRV-DONE"
                ([
                   ("id", Json.Str id);
                   ("tenant", Json.Str tn_name);
                   ("tier", Json.Str landed);
                   ("attempts", Json.Int job.jb_attempts);
                 ]
                @
                (* Which execution tier actually ran (run requests only) —
                   under [`Adaptive] this is the journaled tier choice. *)
                match result with
                | Some r -> [ ("exec", Json.Str r.Pipelines.exec_tier) ]
                | None -> []);
              let before, after = Tenant.record_outcome tenant ~ok:true in
              breaker_transition before after;
              fin
                ~response:
                  {
                    Sjournal.rs_id = id;
                    rs_tenant = tn_name;
                    rs_status = Sjournal.Done;
                    rs_code = "ok";
                    rs_tier = Some landed;
                    rs_attempts = job.jb_attempts;
                    rs_cycles =
                      Option.map
                        (fun (r : Pipelines.run_result) ->
                          r.Pipelines.metrics.Dcir_machine.Metrics.cycles)
                        result;
                    rs_loads =
                      Option.map
                        (fun (r : Pipelines.run_result) ->
                          r.Pipelines.metrics.Dcir_machine.Metrics.loads)
                        result;
                    rs_stores =
                      Option.map
                        (fun (r : Pipelines.run_result) ->
                          r.Pipelines.metrics.Dcir_machine.Metrics.stores)
                        result;
                    rs_return =
                      Option.bind result (fun (r : Pipelines.run_result) ->
                          Option.map Dcir_machine.Value.to_string
                            r.Pipelines.return_value);
                    rs_digest = digest;
                  }
                ?result ~warm ()
          | Error e ->
              (* Worker-incident attribution precedes the retry/fail
                 record, so every injected kill and tripped watchdog is
                 traceable to its request and attempt. *)
              (match e with
              | Chaos.Injected (Chaos.Worker_kill, site) ->
                  add "SRV-WORKER-KILL"
                    [
                      ("id", Json.Str id);
                      ("tenant", Json.Str tn_name);
                      ("attempt", Json.Int job.jb_attempts);
                      ("site", Json.Str site);
                    ]
              | Budget.Exhausted (Budget.Steps, _) when watchdog_bound ->
                  add "SRV-WORKER-WATCHDOG"
                    [
                      ("id", Json.Str id);
                      ("tenant", Json.Str tn_name);
                      ("attempt", Json.Int job.jb_attempts);
                      ("limit", Json.Int steps_cap);
                    ]
              | _ -> ());
              let code = Pipelines.classify_exn e in
              let retries =
                match rq.Request.rq_retries with
                | Some r -> r
                | None -> config.cfg_retries
              in
              if (not (is_frontend_error e)) && job.jb_attempts <= retries
              then begin
                let next =
                  match Pipelines.next_tier job.jb_tier with
                  | Some t -> t
                  | None -> job.jb_tier
                in
                job.jb_tier <- next;
                fin
                  ~retry:
                    [
                      ("id", Json.Str id);
                      ("tenant", Json.Str tn_name);
                      ("reason", Json.Str code);
                      ("tier", Json.Str (Pipelines.tier_name next));
                      ("attempt", Json.Int job.jb_attempts);
                    ]
                  ~warm ()
              end
              else begin
                add "SRV-FAIL"
                  [
                    ("id", Json.Str id);
                    ("tenant", Json.Str tn_name);
                    ("reason", Json.Str code);
                    ("attempts", Json.Int job.jb_attempts);
                  ];
                let before, after = Tenant.record_outcome tenant ~ok:false in
                breaker_transition before after;
                fin
                  ~response:
                    (mk_failed ~id ~tenant:tn_name ~code
                       ~attempts:job.jb_attempts)
                  ~warm ()
              end)
  in
  (* Apply one step's effects: replay captured store traffic, append the
     journal entries, re-insert on retry (the backoff depth is a
     function of the committed queue, so only commit can compute it),
     then the result and response. Both drains share this function — the
     journal is the same bytes either way. *)
  let commit (entry : job Admission.entry) (fx : step_fx) : unit =
    List.iter Pipelines.replay_warm fx.fx_warm;
    List.iter
      (fun (code, fields) -> Sjournal.record journal ~code fields)
      fx.fx_entries;
    (match fx.fx_retry with
    | Some fields ->
        let job = entry.Admission.qe_item in
        let tn = job.jb_rq.Request.rq_tenant in
        let depth =
          Admission.reinsert queue entry ~attempt:job.jb_attempts
            ~same:(fun (j : job) -> j.jb_rq.Request.rq_tenant = tn)
        in
        Sjournal.record journal ~code:"SRV-RETRY"
          (fields @ [ ("depth", Json.Int depth) ])
    | None -> ());
    (match fx.fx_result with
    | Some r ->
        results := (entry.Admission.qe_item.jb_rq.Request.rq_id, r) :: !results
    | None -> ());
    match fx.fx_response with Some r -> respond r | None -> ()
  in
  let placements : (string * int * int) list ref = ref [] in
  let placements_mutex = Mutex.create () in
  if use_pool then begin
    (* Pre-create every tenant on the supervisor: worker domains only
       read the table. *)
    List.iter
      (fun (e : job Admission.entry) ->
        ignore (tenant_of e.Admission.qe_item.jb_rq.Request.rq_tenant))
      queue.Admission.entries;
    Pool.drain ~workers:config.cfg_workers ~queue
      ~group_of:(fun (j : job) -> j.jb_rq.Request.rq_tenant)
      ~exec:(fun ~domain entry ->
        let fx = process_step ~capture:true entry in
        Mutex.protect placements_mutex (fun () ->
            placements :=
              ( entry.Admission.qe_item.jb_rq.Request.rq_id,
                entry.Admission.qe_item.jb_attempts,
                domain )
              :: !placements);
        fx)
      ~crash:(fun entry e ->
        (* Defensive: [process_step] catches attempt failures itself, so
           this only fires if the step machinery raises. Journal the
           incident and fail the request terminally rather than losing
           the batch. *)
        let job = entry.Admission.qe_item in
        let id = job.jb_rq.Request.rq_id
        and tn = job.jb_rq.Request.rq_tenant in
        let code = Pipelines.classify_exn e in
        {
          fx_entries =
            [
              ( "SRV-WORKER-CRASH",
                [
                  ("id", Json.Str id);
                  ("tenant", Json.Str tn);
                  ("attempt", Json.Int job.jb_attempts);
                  ("reason", Json.Str code);
                ] );
            ];
          fx_response =
            Some
              (mk_failed ~id ~tenant:tn ~code:("worker-crash:" ^ code)
                 ~attempts:job.jb_attempts);
          fx_result = None;
          fx_retry = None;
          fx_warm = [];
        })
      ~commit:(fun entry fx ->
        commit entry fx;
        Option.is_some fx.fx_retry)
  end
  else begin
    let rec drain () =
      match Admission.pop queue with
      | None -> ()
      | Some entry ->
          commit entry (process_step ~capture:false entry);
          drain ()
    in
    drain ()
  end;
  let pc_hits1, pc_misses1, pc_evictions1 = pc_counts () in
  let size =
    match List.assoc_opt "size" (Pipelines.plan_cache_stats ()) with
    | Some (Json.Int n) -> Json.Int n
    | _ -> Json.Int 0
  in
  {
    rp_seed = config.cfg_seed;
    rp_config = config_fields config;
    rp_journal = journal;
    rp_responses = List.rev !rev_responses;
    rp_results = List.rev !results;
    rp_plan_cache =
      [
        ("hits", Json.Int (pc_hits1 - pc_hits0));
        ("misses", Json.Int (pc_misses1 - pc_misses0));
        ("evictions", Json.Int (pc_evictions1 - pc_evictions0));
        ("size", size);
      ];
    rp_placements = List.sort compare !placements;
    rp_coalesced = Atomic.get coalesced_count;
  }
