(** The serving engine: deterministic batch request processing.

    [run] takes a parsed request batch and drives every request through
    admission control, the bounded queue, and the resilient compilation
    pipeline, producing a {!Sjournal} response journal. The engine is a
    pure function of (requests, config, seed): no wall clocks, no host
    randomness — deadlines are budget-step clocks, backoff is queue
    position, breaker cooldown is round counts — so the same batch under
    the same config yields a byte-identical journal.

    Request lifecycle:

    - {b admission}: malformed requests and unknown workloads are
      rejected ([SRV-REJECT]); the rest enter the bounded queue
      ([SRV-ADMIT]), shedding deterministically when full ([SRV-SHED],
      lowest priority then oldest — the incoming request included).
    - {b dequeue checks}: an open tenant breaker rejects fast
      ([SRV-REJECT] reason [breaker-open], aging the breaker toward
      probation); an exhausted tenant quota rejects ([quota-exhausted]);
      an expired budget-step deadline fails the request
      ([SRV-DEADLINE]).
    - {b attempt}: one degradation-ladder rung
      ({!Dcir_core.Pipelines.compile_resilient} with [floor = tier]),
      plus execution for [run] requests, all charged to a budget carved
      from the tenant's remaining quota. Chaos faults, if configured,
      are armed per (request, attempt) — never from global state, so
      tenant histories stay independent.
    - {b outcome}: success journals [SRV-DONE] and feeds the tenant
      breaker a success; a retryable failure re-enters the queue at the
      next ladder tier with exponential-backoff insertion depth
      ([SRV-RETRY]); a terminal failure journals [SRV-FAIL] and feeds
      the breaker (frontend rejections — poison requests — are never
      retried). Breaker transitions surface as [SRV-BRK-*] entries. *)

module Json = Dcir_obs.Json
module Pipelines = Dcir_core.Pipelines
module Budget = Dcir_resilience.Budget
module Breaker = Dcir_resilience.Breaker
module Chaos = Dcir_resilience.Chaos
module Diag = Dcir_support.Diagnostics

type config = {
  cfg_seed : int;  (** recorded in the journal header *)
  cfg_queue : int;  (** admission queue capacity *)
  cfg_plan_cache : int;  (** artifact store capacity (0 disables) *)
  cfg_limits : Budget.limits;  (** per-tenant quota across requests *)
  cfg_breaker : Breaker.config;  (** per-tenant breaker thresholds *)
  cfg_retries : int;  (** default retry bound per request *)
  cfg_deadline : int option;  (** default budget-step deadline *)
  cfg_chaos : (id:string -> attempt:int -> Chaos.plan option) option;
      (** fault plans keyed by (request, attempt) — deterministic and
          position-independent, preserving tenant isolation *)
  cfg_interp : Pipelines.interp_mode;
      (** execution tier for run requests; [`Adaptive] journals each
          tier choice as [EXEC-TIER] events and stays deterministic —
          the tier-up registry is reset with the artifact stores, so the
          same request sequence replays byte-identically *)
}

let default_config : config =
  {
    cfg_seed = 0;
    cfg_queue = 64;
    cfg_plan_cache = Pipelines.default_plan_cache_capacity;
    cfg_limits = Budget.default;
    cfg_breaker = Breaker.default_config;
    cfg_retries = 2;
    cfg_deadline = None;
    cfg_chaos = None;
    cfg_interp = `Compiled;
  }

let config_fields (c : config) : (string * Json.t) list =
  [
    ("queue", Json.Int c.cfg_queue);
    ("plan_cache", Json.Int c.cfg_plan_cache);
    ("tenant_steps", Json.Int c.cfg_limits.Budget.max_steps);
    ("tenant_fuel", Json.Int c.cfg_limits.Budget.max_fuel);
    ("tenant_allocs", Json.Int c.cfg_limits.Budget.max_allocs);
    ("trip_after", Json.Int c.cfg_breaker.Breaker.trip_after);
    ("cooldown", Json.Int c.cfg_breaker.Breaker.cooldown_rounds);
    ("probation", Json.Int c.cfg_breaker.Breaker.probation_successes);
    ("retries", Json.Int c.cfg_retries);
    ( "deadline",
      match c.cfg_deadline with Some d -> Json.Int d | None -> Json.Null );
    ( "interp",
      Json.Str
        (match c.cfg_interp with
        | `Tree -> "tree"
        | `Compiled -> "compiled"
        | `Bytecode -> "bytecode"
        | `Adaptive -> "adaptive") );
  ]

type report = {
  rp_seed : int;
  rp_config : (string * Json.t) list;
  rp_journal : Sjournal.t;
  rp_responses : Sjournal.response list;  (** completion order *)
  rp_results : (string * Pipelines.run_result) list;
      (** request id -> in-memory result for successful [run] requests —
          not serialized; the chaos campaign's correctness oracle *)
  rp_plan_cache : (string * Json.t) list;  (** store telemetry delta *)
}

let to_json (r : report) : Json.t =
  Sjournal.to_json ~seed:r.rp_seed ~config:r.rp_config
    ~responses:r.rp_responses ~plan_cache:r.rp_plan_cache r.rp_journal

let write (r : report) (path : string) : unit =
  Sjournal.write ~seed:r.rp_seed ~config:r.rp_config
    ~responses:r.rp_responses ~plan_cache:r.rp_plan_cache r.rp_journal path

(* ---- internals --------------------------------------------------- *)

(* One queued unit of work; [jb_tier] escalates down the ladder across
   retries, [jb_attempts] counts attempts consumed. *)
type job = {
  jb_rq : Request.t;
  jb_src : string;
  jb_entry : string option;  (* None: derive from source at attempt time *)
  jb_args : (unit -> Pipelines.arg list) option;  (* workload-provided *)
  mutable jb_tier : Pipelines.tier;
  mutable jb_attempts : int;
}

let workloads : Dcir_workloads.Workload.t list Lazy.t =
  lazy Dcir_workloads.(Polybench.all @ Case_studies.all)

let find_workload (name : string) : Dcir_workloads.Workload.t option =
  List.find_opt
    (fun (w : Dcir_workloads.Workload.t) -> w.name = name)
    (Lazy.force workloads)

let pc_counts () : int * int * int =
  let get k =
    match List.assoc_opt k (Pipelines.plan_cache_stats ()) with
    | Some (Json.Int n) -> n
    | _ -> 0
  in
  (get "hits", get "misses", get "evictions")

let artifact_digest : Pipelines.compiled -> string = function
  | Pipelines.CSdfg sdfg -> Pipelines.digest_of_sdfg sdfg
  | Pipelines.CMlir m ->
      Dcir_support.Digest.of_string
        (Dcir_support.Digest.canonical (Dcir_mlir.Printer.module_to_string m))

(* Frontend rejections — poison requests — are never retried: the input
   is invalid, and no amount of tier degradation or backoff changes
   that. The raw exceptions appear when the parser/sema rejects before
   the pipeline wraps them in a [Diag.Error]. *)
let is_frontend_error : exn -> bool = function
  | Diag.Error { phase = Diag.Frontend; _ }
  | Dcir_cfront.C_lexer.Lex_error _
  | Dcir_cfront.C_parser.Parse_error _
  | Dcir_cfront.C_sema.Sema_error _
  | Dcir_cfront.Polygeist.Lower_error _ ->
      true
  | _ -> false

let run ?(config = default_config) (requests : (Request.t, Request.rejected) result list)
    : report =
  (* A fresh, empty store of the configured capacity: cache hits and
     misses are part of the journal's determinism contract, so the run
     must not inherit plans from earlier in the process. *)
  Pipelines.set_plan_cache_capacity config.cfg_plan_cache;
  let pc_hits0, pc_misses0, pc_evictions0 = pc_counts () in
  let journal = Sjournal.create () in
  let tenants : (string, Tenant.t) Hashtbl.t = Hashtbl.create 8 in
  let tenant_of (name : string) : Tenant.t =
    match Hashtbl.find_opt tenants name with
    | Some t -> t
    | None ->
        let t =
          Tenant.create ~name ~limits:config.cfg_limits
            ~breaker:config.cfg_breaker
        in
        Hashtbl.replace tenants name t;
        t
  in
  let queue : job Admission.t = Admission.create ~capacity:config.cfg_queue in
  let rev_responses : Sjournal.response list ref = ref [] in
  let results : (string * Pipelines.run_result) list ref = ref [] in
  let respond (r : Sjournal.response) : unit =
    rev_responses := r :: !rev_responses
  in
  let reject_response ~id ~tenant ~code ~attempts =
    respond
      {
        Sjournal.rs_id = id;
        rs_tenant = tenant;
        rs_status = Sjournal.Rejected;
        rs_code = code;
        rs_tier = None;
        rs_attempts = attempts;
        rs_cycles = None;
        rs_loads = None;
        rs_stores = None;
        rs_return = None;
        rs_digest = None;
      }
  in
  (* Surface a breaker transition as its SRV-BRK-* journal entry. *)
  let journal_breaker_transition (tn : Tenant.t) (before : string)
      (after : string) : unit =
    if before <> after then
      let code =
        match after with
        | "open" -> "SRV-BRK-OPEN"
        | "probation" -> "SRV-BRK-PROBATION"
        | _ -> "SRV-BRK-CLOSE"
      in
      Sjournal.record journal ~code
        [
          ("tenant", Json.Str tn.Tenant.tn_name);
          ("from", Json.Str before);
          ("to", Json.Str after);
        ]
  in

  (* ---- admission phase ------------------------------------------- *)
  List.iter
    (fun parsed ->
      match parsed with
      | Error { Request.rej_id; rej_tenant; rej_reason } ->
          Sjournal.record journal ~code:"SRV-REJECT"
            [
              ("id", Json.Str rej_id);
              ("tenant", Json.Str rej_tenant);
              ("reason", Json.Str rej_reason);
            ];
          reject_response ~id:rej_id ~tenant:rej_tenant ~code:rej_reason
            ~attempts:0
      | Ok rq -> (
          let mk_job ~src ~entry ~args =
            {
              jb_rq = rq;
              jb_src = src;
              jb_entry = entry;
              jb_args = args;
              jb_tier = rq.Request.rq_tier;
              jb_attempts = 0;
            }
          in
          let job =
            match rq.Request.rq_source with
            | Request.Inline { src; entry } ->
                Ok (mk_job ~src ~entry ~args:None)
            | Request.Workload name -> (
                match find_workload name with
                | Some w ->
                    Ok
                      (mk_job ~src:w.src ~entry:(Some w.entry)
                         ~args:(Some w.args))
                | None -> Error ("unknown-workload: " ^ name))
          in
          match job with
          | Error reason ->
              Sjournal.record journal ~code:"SRV-REJECT"
                [
                  ("id", Json.Str rq.Request.rq_id);
                  ("tenant", Json.Str rq.Request.rq_tenant);
                  ("reason", Json.Str reason);
                ];
              reject_response ~id:rq.Request.rq_id
                ~tenant:rq.Request.rq_tenant ~code:reason ~attempts:0
          | Ok job -> (
              let shed (victim : job Admission.entry) =
                let v = victim.Admission.qe_item.jb_rq in
                Sjournal.record journal ~code:"SRV-SHED"
                  [
                    ("id", Json.Str v.Request.rq_id);
                    ("tenant", Json.Str v.Request.rq_tenant);
                    ("reason", Json.Str "queue-full");
                    ("priority", Json.Int victim.Admission.qe_priority);
                  ];
                reject_response ~id:v.Request.rq_id
                  ~tenant:v.Request.rq_tenant ~code:"shed:queue-full"
                  ~attempts:victim.Admission.qe_item.jb_attempts
              in
              let admitted () =
                Sjournal.record journal ~code:"SRV-ADMIT"
                  [
                    ("id", Json.Str rq.Request.rq_id);
                    ("tenant", Json.Str rq.Request.rq_tenant);
                    ("op", Json.Str (Request.op_name rq.Request.rq_op));
                    ("tier", Json.Str (Pipelines.tier_name rq.Request.rq_tier));
                    ("priority", Json.Int rq.Request.rq_priority);
                  ]
              in
              match
                Admission.admit queue ~priority:rq.Request.rq_priority job
              with
              | Admission.Admitted -> admitted ()
              | Admission.Shed_incoming ->
                  Sjournal.record journal ~code:"SRV-SHED"
                    [
                      ("id", Json.Str rq.Request.rq_id);
                      ("tenant", Json.Str rq.Request.rq_tenant);
                      ("reason", Json.Str "queue-full");
                      ("priority", Json.Int rq.Request.rq_priority);
                    ];
                  reject_response ~id:rq.Request.rq_id
                    ~tenant:rq.Request.rq_tenant ~code:"shed:queue-full"
                    ~attempts:0
              | Admission.Shed victim ->
                  shed victim;
                  admitted ())))
    requests;

  (* ---- drain phase ------------------------------------------------ *)
  let process (entry : job Admission.entry) : unit =
    let job = entry.Admission.qe_item in
    let rq = job.jb_rq in
    let id = rq.Request.rq_id and tn_name = rq.Request.rq_tenant in
    let tenant = tenant_of tn_name in
    let deadline =
      match rq.Request.rq_deadline with
      | Some d -> Some d
      | None -> config.cfg_deadline
    in
    if not (Tenant.admits tenant) then begin
      Sjournal.record journal ~code:"SRV-REJECT"
        [
          ("id", Json.Str id);
          ("tenant", Json.Str tn_name);
          ("reason", Json.Str "breaker-open");
        ];
      reject_response ~id ~tenant:tn_name ~code:"breaker-open"
        ~attempts:job.jb_attempts;
      (* Fast rejections still age the breaker, else the tenant never
         reaches probation. *)
      let before, after = Tenant.age tenant in
      journal_breaker_transition tenant before after
    end
    else if Tenant.exhausted tenant then begin
      Sjournal.record journal ~code:"SRV-REJECT"
        [
          ("id", Json.Str id);
          ("tenant", Json.Str tn_name);
          ("reason", Json.Str "quota-exhausted");
        ];
      reject_response ~id ~tenant:tn_name ~code:"quota-exhausted"
        ~attempts:job.jb_attempts
    end
    else
      match deadline with
      | Some d when Tenant.spend tenant > d ->
          Sjournal.record journal ~code:"SRV-DEADLINE"
            [
              ("id", Json.Str id);
              ("tenant", Json.Str tn_name);
              ("reason", Json.Str "deadline-expired");
              ("deadline", Json.Int d);
              ("spend", Json.Int (Tenant.spend tenant));
            ];
          respond
            {
              Sjournal.rs_id = id;
              rs_tenant = tn_name;
              rs_status = Sjournal.Failed;
              rs_code = "deadline-expired";
              rs_tier = None;
              rs_attempts = job.jb_attempts;
              rs_cycles = None;
              rs_loads = None;
              rs_stores = None;
              rs_return = None;
              rs_digest = None;
            }
      | _ -> (
          job.jb_attempts <- job.jb_attempts + 1;
          let armed =
            match config.cfg_chaos with
            | None -> false
            | Some f -> (
                match f ~id ~attempt:job.jb_attempts with
                | Some plan ->
                    Chaos.install plan;
                    true
                | None -> false)
          in
          (* Arm before carving the budget: fuel starvation applies to
             this attempt's ceiling. *)
          let limits = Tenant.remaining tenant in
          let fuel = Chaos.fuel_limit ~default:limits.Budget.max_fuel in
          let budget =
            Budget.create ~limits:{ limits with Budget.max_fuel = fuel } ()
          in
          let outcome =
            match
              Fun.protect
                ~finally:(fun () -> if armed then Chaos.clear ())
                (fun () ->
                  let entry_name =
                    match job.jb_entry with
                    | Some e -> e
                    | None -> (
                        match Synth.default_entry job.jb_src with
                        | Some e -> e
                        | None ->
                            raise
                              (Diag.Error
                                 {
                                   Diag.code = "E-NO-ENTRY";
                                   phase = Diag.Frontend;
                                   message = "source defines no function";
                                 }))
                  in
                  let compiled, report =
                    Pipelines.compile_resilient ~tier:job.jb_tier
                      ~floor:job.jb_tier ~budget rq.Request.rq_kind
                      ~src:job.jb_src ~entry:entry_name
                  in
                  match rq.Request.rq_op with
                  | Request.Compile ->
                      (* Warm the plan store: the artifact digest is the
                         store key, so a later run of the same program
                         hits. Invisible to the tenant — the compile was
                         already paid for above either way. *)
                      (match compiled with
                      | Pipelines.CSdfg sdfg -> ignore (Pipelines.plan_for sdfg)
                      | Pipelines.CMlir _ -> ());
                      (report, None, Some (artifact_digest compiled))
                  | Request.Run ->
                      let args =
                        match job.jb_args with
                        | Some f -> f ()
                        | None ->
                            Synth.args job.jb_src entry_name
                              ~size:rq.Request.rq_size
                      in
                      let result =
                        Pipelines.run ~budget
                          ~interp_mode:config.cfg_interp compiled
                          ~entry:entry_name args
                      in
                      (report, Some result, None))
            with
            | v -> Ok v
            | exception e -> Error e
          in
          Tenant.charge tenant budget;
          match outcome with
          | Ok (report, result, digest) ->
              let landed =
                Pipelines.tier_name report.Pipelines.res_landed
              in
              Sjournal.record journal ~code:"SRV-DONE"
                ([
                   ("id", Json.Str id);
                   ("tenant", Json.Str tn_name);
                   ("tier", Json.Str landed);
                   ("attempts", Json.Int job.jb_attempts);
                 ]
                @
                (* Which execution tier actually ran (run requests only) —
                   under [`Adaptive] this is the journaled tier choice. *)
                match result with
                | Some r -> [ ("exec", Json.Str r.Pipelines.exec_tier) ]
                | None -> []);
              let before, after = Tenant.record_outcome tenant ~ok:true in
              journal_breaker_transition tenant before after;
              (match result with
              | Some r -> results := (id, r) :: !results
              | None -> ());
              respond
                {
                  Sjournal.rs_id = id;
                  rs_tenant = tn_name;
                  rs_status = Sjournal.Done;
                  rs_code = "ok";
                  rs_tier = Some landed;
                  rs_attempts = job.jb_attempts;
                  rs_cycles =
                    Option.map
                      (fun (r : Pipelines.run_result) ->
                        r.Pipelines.metrics.Dcir_machine.Metrics.cycles)
                      result;
                  rs_loads =
                    Option.map
                      (fun (r : Pipelines.run_result) ->
                        r.Pipelines.metrics.Dcir_machine.Metrics.loads)
                      result;
                  rs_stores =
                    Option.map
                      (fun (r : Pipelines.run_result) ->
                        r.Pipelines.metrics.Dcir_machine.Metrics.stores)
                      result;
                  rs_return =
                    Option.bind result (fun (r : Pipelines.run_result) ->
                        Option.map Dcir_machine.Value.to_string
                          r.Pipelines.return_value);
                  rs_digest = digest;
                }
          | Error e ->
              let code = Pipelines.classify_exn e in
              let retries =
                match rq.Request.rq_retries with
                | Some r -> r
                | None -> config.cfg_retries
              in
              if (not (is_frontend_error e)) && job.jb_attempts <= retries
              then begin
                let next =
                  match Pipelines.next_tier job.jb_tier with
                  | Some t -> t
                  | None -> job.jb_tier
                in
                job.jb_tier <- next;
                let depth =
                  Admission.reinsert queue entry ~attempt:job.jb_attempts
                    ~same:(fun (j : job) ->
                      j.jb_rq.Request.rq_tenant = tn_name)
                in
                Sjournal.record journal ~code:"SRV-RETRY"
                  [
                    ("id", Json.Str id);
                    ("tenant", Json.Str tn_name);
                    ("reason", Json.Str code);
                    ("tier", Json.Str (Pipelines.tier_name next));
                    ("attempt", Json.Int job.jb_attempts);
                    ("depth", Json.Int depth);
                  ]
              end
              else begin
                Sjournal.record journal ~code:"SRV-FAIL"
                  [
                    ("id", Json.Str id);
                    ("tenant", Json.Str tn_name);
                    ("reason", Json.Str code);
                    ("attempts", Json.Int job.jb_attempts);
                  ];
                let before, after = Tenant.record_outcome tenant ~ok:false in
                journal_breaker_transition tenant before after;
                respond
                  {
                    Sjournal.rs_id = id;
                    rs_tenant = tn_name;
                    rs_status = Sjournal.Failed;
                    rs_code = code;
                    rs_tier = None;
                    rs_attempts = job.jb_attempts;
                    rs_cycles = None;
                    rs_loads = None;
                    rs_stores = None;
                    rs_return = None;
                    rs_digest = None;
                  }
              end)
  in
  let rec drain () =
    match Admission.pop queue with
    | None -> ()
    | Some entry ->
        process entry;
        drain ()
  in
  drain ();
  let pc_hits1, pc_misses1, pc_evictions1 = pc_counts () in
  let size =
    match List.assoc_opt "size" (Pipelines.plan_cache_stats ()) with
    | Some (Json.Int n) -> Json.Int n
    | _ -> Json.Int 0
  in
  {
    rp_seed = config.cfg_seed;
    rp_config = config_fields config;
    rp_journal = journal;
    rp_responses = List.rev !rev_responses;
    rp_results = List.rev !results;
    rp_plan_cache =
      [
        ("hits", Json.Int (pc_hits1 - pc_hits0));
        ("misses", Json.Int (pc_misses1 - pc_misses0));
        ("evictions", Json.Int (pc_evictions1 - pc_evictions0));
        ("size", size);
      ];
  }
