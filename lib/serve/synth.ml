(** Synthetic argument construction from a C signature.

    Shared by [dcir run], [dcir bench] and the serve engine: array
    parameters get deterministic pseudo-random buffers (the
    {!Dcir_workloads.Workload.frand} pattern), scalar ints take the
    request's [size], floats a fixed constant — the same inputs on every
    machine, which is what keeps serve journals byte-reproducible. *)

module C_ast = Dcir_cfront.C_ast
module Pipelines = Dcir_core.Pipelines

(** [args src entry ~size] — one synthetic argument per parameter of
    [entry] in [src]. Raises [Not_found] when [entry] is not defined and
    frontend diagnostics when [src] does not parse — callers classify
    both as request failures. *)
let args (src : string) (entry : string) ~(size : float) :
    Pipelines.arg list =
  let prog = Dcir_cfront.C_sema.check (Dcir_cfront.C_parser.parse_program src) in
  let f = List.find (fun (f : C_ast.func_def) -> f.name = entry) prog.funcs in
  List.map
    (fun ((_, ty) : string * C_ast.cty) ->
      match ty with
      | C_ast.TArr (elem, dims) ->
          let elems = List.fold_left ( * ) 1 dims in
          if C_ast.is_float_ty elem then
            Pipelines.AFloatArr
              ( Array.init elems (fun i -> Dcir_workloads.Workload.frand i),
                Array.of_list dims )
          else
            Pipelines.AIntArr
              (Array.init elems (fun i -> (i * 7) mod 13), Array.of_list dims)
      | C_ast.TPtr elem ->
          if C_ast.is_float_ty elem then
            Pipelines.AFloatArr
              (Array.init 256 (fun i -> Dcir_workloads.Workload.frand i), [| 256 |])
          else Pipelines.AIntArr (Array.init 256 (fun i -> i mod 13), [| 256 |])
      | C_ast.TInt -> Pipelines.AInt (int_of_float size)
      | C_ast.TFloat | C_ast.TDouble -> Pipelines.AFloat 1.5
      | C_ast.TVoid -> Pipelines.AInt 0)
    f.params

(** First function name of [src], for requests that omit [entry]. Raises
    frontend diagnostics on unparsable source. *)
let default_entry (src : string) : string option =
  let prog = Dcir_cfront.C_sema.check (Dcir_cfront.C_parser.parse_program src) in
  match prog.funcs with f :: _ -> Some f.C_ast.name | [] -> None
