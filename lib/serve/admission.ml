(** Bounded admission queue with deterministic shedding and backoff.

    The queue holds at most [capacity] entries. When a request arrives
    at a full queue, the shed victim is chosen deterministically:
    lowest priority first, oldest admission ordinal breaking ties — and
    the incoming request itself is a candidate, so a low-priority
    arrival at a full queue of higher-priority work is shed on the spot.

    Retries re-enter the queue at a position computed from the attempt
    number (deterministic exponential backoff expressed as insertion
    depth, not wall time): attempt [k] re-inserts behind [2^k] queued
    entries {e of the same group} (same tenant, in the serve engine) —
    or at the very back when the group has fewer queued — so repeated
    failures drift backwards and give other traffic a turn. Counting
    same-group entries only keeps a tenant's internal ordering a
    function of its own history: a tenant's responses are byte-identical
    whether or not other tenants share the queue. *)

type 'a entry = {
  qe_order : int;  (** admission ordinal (age; smaller = older) *)
  qe_priority : int;
  qe_item : 'a;
}

type 'a t = {
  capacity : int;
  mutable entries : 'a entry list;  (** front of queue first *)
  mutable next_order : int;
}

let create ~(capacity : int) : 'a t =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  { capacity; entries = []; next_order = 0 }

let length (t : 'a t) : int = List.length t.entries
let capacity (t : 'a t) : int = t.capacity

type 'a admit_outcome =
  | Admitted
  | Shed_incoming  (** the incoming request itself was the victim *)
  | Shed of 'a entry  (** a queued entry was shed to make room *)

(* The shed victim among [candidates]: minimum priority, then oldest. *)
let victim_of (candidates : 'a entry list) : 'a entry =
  match candidates with
  | [] -> invalid_arg "Admission.victim_of: no candidates"
  | first :: rest ->
      List.fold_left
        (fun best e ->
          if
            e.qe_priority < best.qe_priority
            || (e.qe_priority = best.qe_priority && e.qe_order < best.qe_order)
          then e
          else best)
        first rest

(** [admit t ~priority item] — append to the back, shedding first if
    full. *)
let admit (t : 'a t) ~(priority : int) (item : 'a) : 'a admit_outcome =
  let entry = { qe_order = t.next_order; qe_priority = priority; qe_item = item } in
  t.next_order <- t.next_order + 1;
  if List.length t.entries < t.capacity then begin
    t.entries <- t.entries @ [ entry ];
    Admitted
  end
  else
    let victim = victim_of (entry :: t.entries) in
    if victim == entry then Shed_incoming
    else begin
      t.entries <-
        List.filter (fun e -> e != victim) t.entries @ [ entry ];
      Shed victim
    end

let pop (t : 'a t) : 'a entry option =
  match t.entries with
  | [] -> None
  | e :: rest ->
      t.entries <- rest;
      Some e

(** [reinsert t entry ~attempt ~same] — backoff re-insertion for retry
    number [attempt] (1-based): the entry re-enters immediately behind
    the [2^attempt]-th queued entry satisfying [same] (its own tenant's
    traffic), or at the very back when fewer such entries are queued.
    The entry keeps its original admission ordinal (its age for future
    shed decisions). Returns the number of same-group entries skipped.
    Re-insertion never sheds: the entry just popped, so the queue has
    room. *)
let reinsert (t : 'a t) (entry : 'a entry) ~(attempt : int)
    ~(same : 'a -> bool) : int =
  let target = 1 lsl min attempt 20 in
  let group = List.filter (fun e -> same e.qe_item) t.entries in
  if List.length group < target then begin
    t.entries <- t.entries @ [ entry ];
    List.length group
  end
  else begin
    let rec insert passed = function
      | rest when passed = target -> entry :: rest
      | [] -> [ entry ]
      | e :: rest ->
          e :: insert (if same e.qe_item then passed + 1 else passed) rest
    in
    t.entries <- insert 0 t.entries;
    target
  end
