(** Supervised multi-domain worker pool for the serving engine.

    The pool splits one dequeue-and-process loop into two roles without
    changing what it computes:

    - {b workers} (OCaml 5 domains) execute steps speculatively: each
      takes a queued entry, runs the engine's pure step function in
      isolation (own budget and chaos stream, domain-local ambient
      state) and hands back an effect record;
    - the {b supervisor} (the calling domain) owns every piece of
      committed state — the admission queue, the journal, the response
      list, the artifact stores — and applies effect records strictly in
      queue pop order, exactly the order the sequential engine commits.

    Dispatch rule: an entry may run ahead of its commit slot iff it is
    the {e first} unclaimed entry of its group (tenant) in the queue and
    its group has no step already in flight. One in-flight step per
    group means every tenant-local decision (quota, breaker, backoff)
    reads exactly the state it would have read sequentially, because all
    earlier steps of that group are already committed; steps of
    different groups never read each other's state. Backoff re-insertion
    keeps a retried entry behind its group's queue front
    ({!Admission.reinsert} skips at least two same-group entries), so a
    claim is never invalidated by a retry.

    Crash isolation: an exception escaping a worker's step is caught on
    the worker, converted by the caller-provided [crash] handler into an
    ordinary effect record, and committed like any other result — one
    poisoned entry can never take down the batch. A retried entry is
    re-dispatched with its previous domain excluded, so a fault tied to
    one worker's state cannot chase the entry across attempts. *)

(* One speculative execution of one queued entry. [epoch] counts
   dispatches of the same admission ordinal (retries re-enter the queue
   and run again), keeping result keys unique across attempts. *)
type 'a task = {
  t_key : int * int;  (* admission ordinal, dispatch epoch *)
  t_entry : 'a Admission.entry;
  t_exclude : int option;  (* domain banned for this dispatch *)
}

(** [drain ~workers ~queue ~group_of ~exec ~crash ~commit] processes the
    queue to empty. [exec ~domain entry] runs one step on a worker
    domain; [crash entry exn] converts an escaped exception into an
    effect record; [commit entry fx] applies a record on the supervisor
    (journal, responses, re-insertion) and returns [true] when the entry
    re-entered the queue. Commit order is queue pop order — the
    sequential engine's order — regardless of completion order. *)
let drain (type fx) ~(workers : int) ~(queue : 'a Admission.t)
    ~(group_of : 'a -> string) ~(exec : domain:int -> 'a Admission.entry -> fx)
    ~(crash : 'a Admission.entry -> exn -> fx)
    ~(commit : 'a Admission.entry -> fx -> bool) : unit =
  let m = Mutex.create () in
  let work_cv = Condition.create () in
  let done_cv = Condition.create () in
  let pending : 'a task list ref = ref [] in
  let results : (int * int, fx) Hashtbl.t = Hashtbl.create 32 in
  let ran_on : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  (* admission ordinal -> epoch of the in-flight dispatch *)
  let claimed : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let epochs : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let busy : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let last_domain : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let stop = ref false in

  (* m held. *)
  let claim (e : 'a Admission.entry) : unit =
    let order = e.Admission.qe_order in
    let ep = Option.value ~default:0 (Hashtbl.find_opt epochs order) in
    Hashtbl.replace epochs order (ep + 1);
    Hashtbl.replace claimed order ep;
    Hashtbl.replace busy (group_of e.Admission.qe_item) ();
    let exclude =
      if workers > 1 then Hashtbl.find_opt last_domain order else None
    in
    pending := !pending @ [ { t_key = (order, ep); t_entry = e; t_exclude = exclude } ];
    Condition.broadcast work_cv
  in
  (* m held. Claim every entry allowed to run ahead: front-to-back, the
     first unclaimed entry of each not-in-flight group. *)
  let dispatch () : unit =
    List.iter
      (fun (e : 'a Admission.entry) ->
        let g = group_of e.Admission.qe_item in
        if (not (Hashtbl.mem claimed e.Admission.qe_order))
           && not (Hashtbl.mem busy g)
        then claim e)
      queue.Admission.entries
  in

  let rec worker (d : int) : unit =
    Mutex.lock m;
    let rec take () =
      if !stop then None
      else
        match
          List.find_opt
            (fun t -> workers <= 1 || t.t_exclude <> Some d)
            !pending
        with
        | Some t ->
            pending := List.filter (fun u -> u != t) !pending;
            Some t
        | None ->
            Condition.wait work_cv m;
            take ()
    in
    match take () with
    | None -> Mutex.unlock m
    | Some t ->
        Mutex.unlock m;
        let fx =
          try exec ~domain:d t.t_entry with e -> crash t.t_entry e
        in
        Mutex.lock m;
        Hashtbl.replace results t.t_key fx;
        Hashtbl.replace ran_on t.t_key d;
        Condition.broadcast done_cv;
        Mutex.unlock m;
        worker d
  in
  let domains =
    Array.init workers (fun d -> Domain.spawn (fun () -> worker d))
  in
  let supervise () =
    let rec loop () =
      Mutex.lock m;
      dispatch ();
      Mutex.unlock m;
      match Admission.pop queue with
      | None -> ()
      | Some e ->
          let order = e.Admission.qe_order in
          let g = group_of e.Admission.qe_item in
          Mutex.lock m;
          (* The queue front is claimed by the dispatch above (its group
             cannot be in flight: every earlier entry is committed).
             Claim defensively all the same. *)
          if not (Hashtbl.mem claimed order) then claim e;
          let key = (order, Hashtbl.find claimed order) in
          while not (Hashtbl.mem results key) do
            Condition.wait done_cv m
          done;
          let fx = Hashtbl.find results key in
          Hashtbl.remove results key;
          Hashtbl.replace last_domain order (Hashtbl.find ran_on key);
          Hashtbl.remove ran_on key;
          Hashtbl.remove claimed order;
          Hashtbl.remove busy g;
          Mutex.unlock m;
          let retried = commit e fx in
          if not retried then begin
            Mutex.lock m;
            Hashtbl.remove last_domain order;
            Hashtbl.remove epochs order;
            Mutex.unlock m
          end;
          loop ()
    in
    loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock m;
      stop := true;
      Condition.broadcast work_cv;
      Mutex.unlock m;
      Array.iter Domain.join domains)
    supervise
