(** Minimal JSON tree, emitter, and parser — just enough for the telemetry
    sinks (Chrome [trace_event] files, bench reports) and for tests to
    validate that emitted files are well-formed, without an external
    dependency.

    Emission notes: non-finite floats have no JSON representation and are
    emitted as [null]; floats that hold integral values print without an
    exponent so traces stay readable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission *)

let escape_string (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let rec emit (b : Buffer.t) (j : t) : unit =
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string b (float_repr f)
      else Buffer.add_string b "null"
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape_string s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          emit b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape_string k);
          Buffer.add_string b "\":";
          emit b v)
        kvs;
      Buffer.add_char b '}'

let to_string (j : t) : string =
  let b = Buffer.create 256 in
  emit b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek (c : cursor) : char option =
  if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance (c : cursor) : unit = c.pos <- c.pos + 1

let skip_ws (c : cursor) : unit =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance c
  done

let expect (c : cursor) (ch : char) : unit =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "at %d: expected '%c', found '%c'" c.pos ch x
  | None -> parse_error "at %d: expected '%c', found end of input" c.pos ch

let expect_lit (c : cursor) (lit : string) : unit =
  String.iter (fun ch -> expect c ch) lit

let parse_string_body (c : cursor) : string =
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some '/' -> Buffer.add_char b '/'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'u' ->
            if c.pos + 4 >= String.length c.src then
              parse_error "truncated \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> parse_error "bad \\u escape '%s'" hex
            in
            (match Uchar.of_int code with
            | u -> Buffer.add_utf_8_uchar b u
            | exception Invalid_argument _ -> Buffer.add_char b '?');
            c.pos <- c.pos + 4
        | Some x -> parse_error "bad escape '\\%c'" x
        | None -> parse_error "unterminated escape");
        advance c;
        go ()
    | Some x ->
        Buffer.add_char b x;
        advance c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number (c : cursor) : t =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some x -> is_num_char x | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> parse_error "at %d: bad number '%s'" start s)

let rec parse_value (c : cursor) : t =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then (
        advance c;
        Obj [])
      else
        let rec members acc =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> parse_error "at %d: expected ',' or '}'" c.pos
        in
        Obj (members [])
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then (
        advance c;
        List [])
      else
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elems (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> parse_error "at %d: expected ',' or ']'" c.pos
        in
        List (elems [])
  | Some 't' ->
      expect_lit c "true";
      Bool true
  | Some 'f' ->
      expect_lit c "false";
      Bool false
  | Some 'n' ->
      expect_lit c "null";
      Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some x -> parse_error "at %d: unexpected character '%c'" c.pos x

let parse (s : string) : (t, string) result =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Parse_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member (key : string) (j : t) : t option =
  match j with Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_list (j : t) : t list option =
  match j with List xs -> Some xs | _ -> None

let to_str (j : t) : string option = match j with Str s -> Some s | _ -> None
