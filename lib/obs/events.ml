(** Structured decision-event stream (JSON schema [dcir-events/1]).

    Every consequential decision the compiler makes — pass admitted or
    skipped, loop certified or refused, breaker tripped, tier degraded,
    plan cached — is recorded as one event: a stable upper-case code, a
    monotonically increasing sequence number, and a flat field list. No
    timestamps, no heap addresses, no absolute paths: two runs with the
    same inputs and seed must produce byte-identical streams, which is
    what lets us golden-test provenance and diff it across commits.

    Emission follows the ambient-install pattern of
    [Dcir_resilience.Journal]: sites call {!emit} unconditionally; it is
    a no-op unless a stream is {!install}ed. [Journal] forwards its
    incident notes onto the installed stream, so a single stream carries
    both layers. *)

type event = {
  ev_seq : int;
  ev_code : string;
  ev_fields : (string * Json.t) list;
}

type t = { mutable rev_events : event list; mutable next_seq : int }

let create () : t = { rev_events = []; next_seq = 0 }
let length (t : t) : int = t.next_seq
let events (t : t) : event list = List.rev t.rev_events

(** The closed catalogue of event codes, with one-line meanings.
    [validate_report.exe] rejects streams containing codes outside this
    list, so additions here are schema changes. *)
let catalogue : (string * string) list =
  [
    ("PHASE", "compilation/execution phase boundary");
    ("TIER-TRY", "degradation ladder: attempting an optimization tier");
    ("TIER-FAIL", "degradation ladder: tier abandoned (code + detail)");
    ("TIER-LAND", "degradation ladder: tier that produced the artifact");
    ("PASS-ADMIT", "pass driver: pass ran (changed flag, domain, round)");
    ("PASS-SKIP", "pass driver: pass skipped by an open circuit breaker");
    ("PASS-ROLLBACK", "checked pass application failed and was rolled back");
    ("PASS-LCM", "lazy code motion: one realized motion (op, placement, deletes)");
    ("BRK-OPEN", "circuit breaker opened for a pass");
    ("BRK-PROBATION", "circuit breaker moved to probation");
    ("BRK-CLOSE", "circuit breaker closed after a clean probe");
    ("APAR-CERT", "autopar: loop certified parallel (map conversion)");
    ("APAR-REFUSE", "autopar: loop refused, with the conflict witness");
    ("BUDGET-SPEND", "resource budget spent by a phase (fuel/steps/allocs)");
    ("PLAN-HIT", "execution plan cache hit");
    ("PLAN-MISS", "execution plan cache miss (plan compiled)");
    ("PLAN-EVICT", "execution plan cache eviction (LRU bound)");
    ("EXEC-MODE", "interpreter mode chosen for a run (tree/compiled, jobs)");
    ("TIER-UP", "adaptive tier: program promoted to the bytecode tier");
    ("EXEC-TIER", "adaptive tier: execution tier chosen for one run");
    ("CHAOS-INJECT", "chaos harness injected a fault");
    ("CHAOS-CASE", "chaos campaign: generated case summary");
    ("CHAOS-OUTCOME", "chaos campaign: per-case verdict");
    ("NOTE", "uncategorized incident-journal note");
    (* Serving engine (dcir serve) — mirrored from the response journal
       (schema dcir-serve-journal/1, see Dcir_serve.Sjournal). *)
    ("SRV-ADMIT", "serve: request admitted to the queue");
    ("SRV-REJECT", "serve: request rejected fast (breaker/quota/malformed)");
    ("SRV-SHED", "serve: request shed from a full admission queue");
    ("SRV-DEADLINE", "serve: request expired its budget-step deadline");
    ("SRV-RETRY", "serve: failed attempt re-queued at a lower tier");
    ("SRV-DONE", "serve: request completed");
    ("SRV-FAIL", "serve: request failed terminally");
    ("SRV-BRK-OPEN", "serve: per-tenant breaker opened");
    ("SRV-BRK-PROBATION", "serve: per-tenant breaker moved to probation");
    ("SRV-BRK-CLOSE", "serve: per-tenant breaker re-closed");
    ("SRV-WORKER-KILL", "serve: worker killed mid-attempt by a chaos fault");
    ("SRV-WORKER-POISON", "serve: worker result failed supervisor validation");
    ("SRV-WORKER-WATCHDOG", "serve: attempt stopped by the budget-step watchdog");
    ("SRV-WORKER-CRASH", "serve: worker raised outside the attempt path");
  ]

let is_known (code : string) : bool = List.mem_assoc code catalogue

let record (t : t) ~(code : string) (fields : (string * Json.t) list) : unit =
  t.rev_events <-
    { ev_seq = t.next_seq; ev_code = code; ev_fields = fields }
    :: t.rev_events;
  t.next_seq <- t.next_seq + 1

(* Ambient stream, [Journal]-style: decision sites emit without plumbing a
   handle through every signature. Domain-local: a serve worker domain
   sees no installed stream, so its speculative emissions are dropped and
   the supervisor replays the decisions it commits — the stream stays a
   deterministic function of commit order, not of scheduling. *)
let ambient : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install (t : t) : unit = Domain.DLS.set ambient (Some t)
let clear () : unit = Domain.DLS.set ambient None
let active () : bool = Option.is_some (Domain.DLS.get ambient)

let emit ~(code : string) (fields : (string * Json.t) list) : unit =
  match Domain.DLS.get ambient with
  | Some t -> record t ~code fields
  | None -> ()

let event_json (e : event) : Json.t =
  Json.Obj
    (("seq", Json.Int e.ev_seq) :: ("code", Json.Str e.ev_code) :: e.ev_fields)

(** [to_json ?header t] — the [dcir-events/1] document. [header] fields
    (tool, seed, entry, ...) are spliced in after the schema tag; keep
    them deterministic. *)
let to_json ?(header : (string * Json.t) list = []) (t : t) : Json.t =
  Json.Obj
    (("schema", Json.Str "dcir-events/1")
    :: (header
       @ [
           ("count", Json.Int (length t));
           ("events", Json.List (List.map event_json (events t)));
         ]))

let to_string ?header (t : t) : string = Json.to_string (to_json ?header t)

let write ?header (t : t) (path : string) : unit =
  Dcir_support.Atomic_io.write path (fun oc ->
      output_string oc (to_string ?header t);
      output_char oc '\n')

(* Field accessors used by renderers and tests. *)
let field (e : event) (key : string) : Json.t option =
  List.assoc_opt key e.ev_fields

let str_field ?(default = "") (e : event) (key : string) : string =
  match field e key with Some (Json.Str s) -> s | _ -> default

let int_field ?(default = 0) (e : event) (key : string) : int =
  match field e key with Some (Json.Int n) -> n | _ -> default

let with_code (t : t) (code : string) : event list =
  List.filter (fun e -> e.ev_code = code) (events t)
