(** Always-on metrics registry: named counters, gauges, and fixed-bucket
    histograms.

    Unlike spans ({!Obs.with_span}), which are gated behind [Obs.enable],
    metrics are cheap enough (an int/float store) to update
    unconditionally, and every value fed to them in this codebase is
    {e deterministic} — counted decisions (plan-cache hits, fixpoint
    rounds, fuel spent), never wall clocks — so a metrics snapshot is
    byte-reproducible for a given command and seed.

    One registry per process, keyed by name; [make] is find-or-create, so
    any module can name a metric without coordinating ownership.
    {!Obs.reset} zeroes all values (registrations survive — held handles
    stay live). *)

type kind = KCounter | KGauge | KHistogram

type metric = {
  m_name : string;
  m_kind : kind;
  mutable m_value : float;  (** counter / gauge value *)
  m_edges : float array;  (** histogram upper bucket edges, ascending *)
  m_counts : int array;  (** per-bucket counts; last slot = overflow *)
  mutable m_total : int;  (** histogram observations *)
  mutable m_sum : float;  (** sum of observed values *)
}

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

(* Registration can race when library code first touches a metric from a
   worker domain; the lock covers structural table mutation only — field
   updates on a handle stay lock-free (all journaled values are written
   from the single supervisor/CLI domain). *)
let registry_mutex = Mutex.create ()

let find_or_create (name : string) (kind : kind) ~(edges : float array) :
    metric =
  Mutex.protect registry_mutex @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m ->
      if m.m_kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %S already registered with another kind"
             name);
      m
  | None ->
      let m =
        {
          m_name = name;
          m_kind = kind;
          m_value = 0.0;
          m_edges = edges;
          m_counts = Array.make (Array.length edges + 1) 0;
          m_total = 0;
          m_sum = 0.0;
        }
      in
      Hashtbl.replace registry name m;
      m

module Counter = struct
  type t = metric

  let make (name : string) : t = find_or_create name KCounter ~edges:[||]
  let incr ?(by = 1) (c : t) : unit = c.m_value <- c.m_value +. float_of_int by
  let value (c : t) : int = int_of_float c.m_value
  let name (c : t) : string = c.m_name
end

module Gauge = struct
  type t = metric

  let make (name : string) : t = find_or_create name KGauge ~edges:[||]
  let set (g : t) (v : int) : unit = g.m_value <- float_of_int v
  let value (g : t) : int = int_of_float g.m_value
  let name (g : t) : string = g.m_name
end

module Histogram = struct
  type t = metric

  (** [make name ~edges] — [edges] are the inclusive upper bounds of each
      bucket, strictly ascending; an observation [v] lands in the first
      bucket with [v <= edge], or in the implicit overflow bucket past the
      last edge. *)
  let make (name : string) ~(edges : float array) : t =
    if Array.length edges = 0 then
      invalid_arg "Metrics.Histogram.make: empty bucket edges";
    Array.iteri
      (fun i e ->
        if i > 0 && not (edges.(i - 1) < e) then
          invalid_arg "Metrics.Histogram.make: edges must ascend strictly")
      edges;
    find_or_create name KHistogram ~edges

  let observe (h : t) (v : float) : unit =
    h.m_total <- h.m_total + 1;
    h.m_sum <- h.m_sum +. v;
    let n = Array.length h.m_edges in
    let rec idx i = if i >= n || v <= h.m_edges.(i) then i else idx (i + 1) in
    let i = idx 0 in
    h.m_counts.(i) <- h.m_counts.(i) + 1

  let edges (h : t) : float array = Array.copy h.m_edges

  (** Per-bucket counts; the final entry is the overflow bucket. *)
  let counts (h : t) : int array = Array.copy h.m_counts

  let total (h : t) : int = h.m_total
  let sum (h : t) : float = h.m_sum
  let name (h : t) : string = h.m_name
end

(** Zero every value; registrations (and handles held by callers) stay
    valid. Called by {!Obs.reset}. *)
let reset_all () : unit =
  Mutex.protect registry_mutex @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      m.m_value <- 0.0;
      Array.fill m.m_counts 0 (Array.length m.m_counts) 0;
      m.m_total <- 0;
      m.m_sum <- 0.0)
    registry

let sorted (kind : kind) : metric list =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold
        (fun _ m acc -> if m.m_kind = kind then m :: acc else acc)
        registry [])
  |> List.sort (fun a b -> compare a.m_name b.m_name)

(** Deterministic snapshot: all metrics, grouped by kind, sorted by name. *)
let to_json () : Json.t =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map
             (fun m -> (m.m_name, Json.Int (int_of_float m.m_value)))
             (sorted KCounter)) );
      ( "gauges",
        Json.Obj
          (List.map
             (fun m -> (m.m_name, Json.Int (int_of_float m.m_value)))
             (sorted KGauge)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun m ->
               ( m.m_name,
                 Json.Obj
                   [
                     ( "edges",
                       Json.List
                         (Array.to_list
                            (Array.map (fun e -> Json.Float e) m.m_edges)) );
                     ( "counts",
                       Json.List
                         (Array.to_list
                            (Array.map (fun c -> Json.Int c) m.m_counts)) );
                     ("total", Json.Int m.m_total);
                     ("sum", Json.Float m.m_sum);
                   ] ))
             (sorted KHistogram)) );
    ]

let pp (ppf : Format.formatter) () : unit =
  List.iter
    (fun (m : metric) ->
      Format.fprintf ppf "%-32s %d@." m.m_name (int_of_float m.m_value))
    (sorted KCounter @ sorted KGauge);
  List.iter
    (fun (m : metric) ->
      Format.fprintf ppf "%-32s total=%d sum=%.0f buckets=[%s]@." m.m_name
        m.m_total m.m_sum
        (String.concat "; "
           (Array.to_list (Array.map string_of_int m.m_counts))))
    (sorted KHistogram)
