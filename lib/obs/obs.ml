(** Structured pipeline telemetry — the observability substrate threaded
    through the pass drivers and interpreters.

    Three facilities:

    - {b Spans}: nested wall-clock scopes ([with_span]) recording name,
      category, duration, and arbitrary key/value args. Two sinks: a pretty
      tree report ([pp_report], the [-mlir-timing] role) and Chrome
      [trace_event] JSON ([write_trace], loadable in [about:tracing] /
      Perfetto).
    - {b Counters}: named monotonic counters ([Counter]) for pass statistics
      that outlive any single span.
    - {b Profiles}: runtime metric attribution ([Profile]) — cycles / loads /
      stores per SDFG state, tasklet, or MLIR function, filled in by the
      interpreters and rendered as a hot-spot table.

    Collection is {e disabled by default}: every hook is a cheap no-op until
    [enable] is called, so instrumented code pays nothing in normal runs.
    Timing uses [Unix.gettimeofday] (microsecond resolution wall clock — the
    finest-grained clock available without external packages; pass
    transforms run for micro- to milliseconds, well above its resolution). *)

let now_s () : float = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Spans *)

type span = {
  sp_name : string;
  sp_cat : string;
  sp_start : float;  (** seconds since epoch *)
  mutable sp_end : float;
  mutable sp_args : (string * Json.t) list;
  sp_tid : int;  (** trace lane; 1 = the coordinating domain *)
  mutable sp_children : span list;  (** reverse chronological while open *)
}

let span_name (sp : span) : string = sp.sp_name
let span_children (sp : span) : span list = List.rev sp.sp_children
let span_duration_ms (sp : span) : float = (sp.sp_end -. sp.sp_start) *. 1e3

type collector = {
  mutable enabled : bool;
  mutable stack : span list;  (** innermost open span first *)
  mutable finished : span list;  (** completed top-level spans, reverse *)
  mutable epoch : float;  (** trace time origin *)
}

let st : collector = { enabled = false; stack = []; finished = []; epoch = 0.0 }

let enabled () : bool = st.enabled

let reset_spans () : unit =
  st.stack <- [];
  st.finished <- [];
  st.epoch <- now_s ()

let enable () : unit =
  st.enabled <- true;
  if st.epoch = 0.0 then st.epoch <- now_s ()

let disable () : unit = st.enabled <- false

(** Run [f] inside a named scope. When collection is disabled this is
    exactly [f ()]. The span is closed (and recorded) even if [f] raises. *)
let with_span ?(cat : string = "") ?(args : (string * Json.t) list = [])
    (name : string) (f : unit -> 'a) : 'a =
  if not st.enabled then f ()
  else begin
    let sp =
      {
        sp_name = name;
        sp_cat = cat;
        sp_start = now_s ();
        sp_end = 0.0;
        sp_args = args;
        sp_tid = 1;
        sp_children = [];
      }
    in
    st.stack <- sp :: st.stack;
    let finish () =
      sp.sp_end <- now_s ();
      (match st.stack with
      | top :: rest when top == sp -> st.stack <- rest
      | _ -> st.stack <- List.filter (fun s -> not (s == sp)) st.stack);
      match st.stack with
      | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
      | [] -> st.finished <- sp :: st.finished
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(** Attach args to the innermost open span (no-op when disabled or when no
    span is open) — for results only known once the scope's work is done. *)
let set_args (kvs : (string * Json.t) list) : unit =
  if st.enabled then
    match st.stack with
    | sp :: _ -> sp.sp_args <- sp.sp_args @ kvs
    | [] -> ()

(** Record an already-measured scope as a child of the innermost open span
    (or as a root). For work measured off the collector's domain — e.g.
    parallel map chunks timed on worker domains and registered by the
    coordinating domain after the join, with a per-worker [tid] so the
    Chrome trace renders one lane per domain. *)
let add_complete ?(cat = "") ?(args : (string * Json.t) list = []) ?(tid = 1)
    ~(start_s : float) ~(end_s : float) (name : string) : unit =
  if st.enabled then begin
    let sp =
      {
        sp_name = name;
        sp_cat = cat;
        sp_start = start_s;
        sp_end = end_s;
        sp_args = args;
        sp_tid = tid;
        sp_children = [];
      }
    in
    match st.stack with
    | parent :: _ -> parent.sp_children <- sp :: parent.sp_children
    | [] -> st.finished <- sp :: st.finished
  end

(** Completed top-level spans, oldest first. *)
let roots () : span list = List.rev st.finished

(* ------------------------------------------------------------------ *)
(* Pretty tree report *)

let pp_span_args (ppf : Format.formatter) (args : (string * Json.t) list) :
    unit =
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%s" k (Json.to_string v))
    args

let pp_report (ppf : Format.formatter) () : unit =
  let line label sp =
    Format.fprintf ppf "%-44s %9.3f ms%a@." label (span_duration_ms sp)
      pp_span_args sp.sp_args
  in
  let rec pp_children prefix kids =
    let n = List.length kids in
    List.iteri
      (fun i c ->
        let is_last = i = n - 1 in
        let connector = if is_last then "`- " else "|- " in
        line (prefix ^ connector ^ c.sp_name) c;
        pp_children (prefix ^ if is_last then "   " else "|  ")
          (span_children c))
      kids
  in
  match roots () with
  | [] -> Format.fprintf ppf "(no telemetry collected)@."
  | rs ->
      List.iter
        (fun sp ->
          line sp.sp_name sp;
          pp_children "" (span_children sp))
        rs

(* ------------------------------------------------------------------ *)
(* Chrome trace_event sink *)

let rec span_events (sp : span) : Json.t list =
  let micros t = (t -. st.epoch) *. 1e6 in
  let ev =
    Json.Obj
      [
        ("name", Json.Str sp.sp_name);
        ("cat", Json.Str (if sp.sp_cat = "" then "dcir" else sp.sp_cat));
        ("ph", Json.Str "X");
        ("ts", Json.Float (micros sp.sp_start));
        ("dur", Json.Float ((sp.sp_end -. sp.sp_start) *. 1e6));
        ("pid", Json.Int 1);
        ("tid", Json.Int sp.sp_tid);
        ("args", Json.Obj sp.sp_args);
      ]
  in
  ev :: List.concat_map span_events (span_children sp)

let trace_json () : Json.t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.concat_map span_events (roots ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let trace_to_string () : string = Json.to_string (trace_json ())

let write_trace (path : string) : unit =
  let oc = open_out path in
  output_string oc (trace_to_string ());
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Counters *)

module Counter = struct
  type t = { c_name : string; mutable c_value : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16
  let order : string list ref = ref []

  (** Find or create the counter named [name] (one instance per name). *)
  let make (name : string) : t =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_value = 0 } in
        Hashtbl.replace registry name c;
        order := name :: !order;
        c

  let name (c : t) : string = c.c_name
  let value (c : t) : int = c.c_value
  let incr ?(by = 1) (c : t) : unit = c.c_value <- c.c_value + by
  let set (c : t) (v : int) : unit = c.c_value <- v

  let reset_all () : unit =
    Hashtbl.iter (fun _ c -> c.c_value <- 0) registry

  (** All counters in creation order. *)
  let all () : (string * int) list =
    List.rev_map
      (fun n -> (n, (Hashtbl.find registry n).c_value))
      !order
end

(** Restore a fully fresh collector: span state cleared, the trace epoch
    re-anchored, and every counter and metric value zeroed (registrations
    — and handles held by callers — survive). Without the counter/epoch
    part, telemetry from one [compile_resilient] ladder tier would leak
    into the next. *)
let reset () : unit =
  reset_spans ();
  Counter.reset_all ();
  Metrics.reset_all ()

(** Trace time origin (seconds since Unix epoch); re-anchored by [reset]. *)
let epoch_s () : float = st.epoch

(* ------------------------------------------------------------------ *)
(* Runtime profiles *)

module Profile = struct
  type entry = {
    mutable hits : int;
    mutable cycles : float;
    mutable loads : int;
    mutable stores : int;
  }

  type t = { tbl : (string * string, entry) Hashtbl.t }
  (** keyed by (kind, name): e.g. ("state", "S3"), ("tasklet", "t12"),
      ("func", "gemm") *)

  let create () : t = { tbl = Hashtbl.create 32 }

  let record ?(hits = 1) (p : t) ~(kind : string) ~(name : string)
      ~(cycles : float) ~(loads : int) ~(stores : int) : unit =
    match Hashtbl.find_opt p.tbl (kind, name) with
    | Some e ->
        e.hits <- e.hits + hits;
        e.cycles <- e.cycles +. cycles;
        e.loads <- e.loads + loads;
        e.stores <- e.stores + stores
    | None ->
        Hashtbl.replace p.tbl (kind, name) { hits; cycles; loads; stores }

  let kinds (p : t) : string list =
    Hashtbl.fold
      (fun (kind, _) _ acc -> if List.mem kind acc then acc else kind :: acc)
      p.tbl []
    |> List.sort compare

  (** Entries of one kind, hottest (most cycles) first. *)
  let entries (p : t) ~(kind : string) : (string * entry) list =
    Hashtbl.fold
      (fun (k, name) e acc -> if k = kind then (name, e) :: acc else acc)
      p.tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b.cycles a.cycles)

  let total_cycles (p : t) ~(kind : string) : float =
    List.fold_left (fun acc (_, e) -> acc +. e.cycles) 0.0 (entries p ~kind)

  (** Hot-spot table per kind. For kinds whose scopes partition execution
      (SDFG states) the %% column sums to 100; nested kinds (MLIR functions,
      tasklets inside states) report inclusive time. *)
  let pp (ppf : Format.formatter) (p : t) : unit =
    List.iter
      (fun kind ->
        let total = total_cycles p ~kind in
        Format.fprintf ppf "%s attribution (%.0f cycles total):@." kind total;
        Format.fprintf ppf "  %-24s %10s %14s %7s %12s %12s@." kind "hits"
          "cycles" "%" "loads" "stores";
        List.iter
          (fun (name, e) ->
            Format.fprintf ppf "  %-24s %10d %14.0f %6.1f%% %12d %12d@." name
              e.hits e.cycles
              (if total > 0.0 then 100.0 *. e.cycles /. total else 0.0)
              e.loads e.stores)
          (entries p ~kind))
      (kinds p)
end
