(** Deterministic resource budgets.

    Every phase of the pipeline is governed by counted resources rather
    than wall clocks: interpreter steps (one per executed op / closure),
    optimization fuel (one unit per pass application), and machine-model
    allocations. Counting is deterministic, so a budget that trips on one
    machine trips at exactly the same point everywhere — which is what
    makes exhaustion testable and chaos campaigns reproducible.

    Exhaustion raises the structured {!Exhausted} exception naming the
    resource and its ceiling; callers map it to an [E-BUDGET-*]
    diagnostic (CLI) or a degradation-ladder retry (pipelines). *)

type kind = Steps | Fuel | Allocs

let kind_name = function
  | Steps -> "interpreter-step"
  | Fuel -> "optimization-fuel"
  | Allocs -> "allocation"

let kind_code = function
  | Steps -> "E-BUDGET-STEPS"
  | Fuel -> "E-BUDGET-FUEL"
  | Allocs -> "E-BUDGET-ALLOCS"

let kind_flag = function
  | Steps -> "--max-steps"
  | Fuel -> "--max-fuel"
  | Allocs -> "--max-allocs"

type limits = { max_steps : int; max_fuel : int; max_allocs : int }

(* [max_steps] matches the historical hard-coded SDFG interpreter trap;
   the other two are sized so no legitimate workload in the repo gets
   near them while still bounding pathological inputs. *)
let default = { max_steps = 200_000_000; max_fuel = 1_000_000; max_allocs = 10_000_000 }

type t = {
  limits : limits;
  mutable steps : int;
  mutable fuel : int;
  mutable allocs : int;
}

exception Exhausted of kind * int

let () =
  Printexc.register_printer (function
    | Exhausted (k, limit) ->
        Some
          (Printf.sprintf "Budget.Exhausted(%s budget, limit %d)" (kind_name k)
             limit)
    | _ -> None)

let message (k : kind) (limit : int) : string =
  Printf.sprintf "%s budget exhausted (limit %d; raise with %s)" (kind_name k)
    limit (kind_flag k)

let create ?(limits = default) () : t = { limits; steps = 0; fuel = 0; allocs = 0 }

(* Fresh counters under the same ceilings: parallel map chunks each count
   from zero (mirroring the executor's fixed-schedule determinism) and
   are folded back with {!merge_steps} when the chunk settles. *)
let fork (b : t) : t = create ~limits:b.limits ()

let step (b : t) : unit =
  b.steps <- b.steps + 1;
  if b.steps > b.limits.max_steps then
    raise (Exhausted (Steps, b.limits.max_steps))

let burn_fuel (b : t) : unit =
  b.fuel <- b.fuel + 1;
  if b.fuel > b.limits.max_fuel then raise (Exhausted (Fuel, b.limits.max_fuel))

let alloc (b : t) : unit =
  b.allocs <- b.allocs + 1;
  if b.allocs > b.limits.max_allocs then
    raise (Exhausted (Allocs, b.limits.max_allocs))

(* Add a settled chunk's step count without re-checking the ceiling: the
   serial semantics only check at the next charge site, and the merge
   must not trap at a point the serial run would not. *)
let merge_steps ~(into : t) (from : t) : unit =
  into.steps <- into.steps + from.steps
