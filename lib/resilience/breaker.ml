(** Per-pass circuit breaker shared by both pass drivers.

    Replaces the permanent-disable hashtables from checked execution:
    a pass that fails (rolled-back rewrite, crash) trips its breaker
    [Open] after [trip_after] incidents; after [cooldown_rounds] fixpoint
    rounds the breaker re-admits the pass on [Probation], and
    [probation_successes] clean applications re-close it. A failure
    during probation re-opens immediately. State is session-scoped — a
    breaker instance lives as long as its owner (one compilation, one
    fuzz case, one accumulated driver run) and is never persisted. *)

type config = {
  trip_after : int;  (** consecutive failures before opening *)
  cooldown_rounds : int;  (** fixpoint rounds spent open before probation *)
  probation_successes : int;  (** clean applications before re-closing *)
}

let default_config = { trip_after = 1; cooldown_rounds = 2; probation_successes = 2 }

(** Build a config by overriding individual thresholds; defaults are the
    historical constants in {!default_config}. [dcir serve] exposes these
    as [--trip-after] / [--cooldown] / [--probation] flags for its
    per-tenant breakers. Thresholds must be at least 1. *)
let make_config ?(trip_after = default_config.trip_after)
    ?(cooldown_rounds = default_config.cooldown_rounds)
    ?(probation_successes = default_config.probation_successes) () : config =
  if trip_after < 1 || cooldown_rounds < 1 || probation_successes < 1 then
    invalid_arg "Breaker.make_config: thresholds must be >= 1";
  { trip_after; cooldown_rounds; probation_successes }

type phase =
  | Closed
  | Open of int  (** rounds spent open so far *)
  | Probation of int  (** clean applications so far *)

type entry = { mutable phase : phase; mutable consecutive : int; mutable failures : int }

type t = { config : config; entries : (string, entry) Hashtbl.t; mutable round : int }

let create ?(config = default_config) () : t =
  { config; entries = Hashtbl.create 8; round = 0 }

let entry (b : t) (pass : string) : entry =
  match Hashtbl.find_opt b.entries pass with
  | Some e -> e
  | None ->
      let e = { phase = Closed; consecutive = 0; failures = 0 } in
      Hashtbl.replace b.entries pass e;
      e

let state_name (b : t) (pass : string) : string =
  match (entry b pass).phase with
  | Closed -> "closed"
  | Open _ -> "open"
  | Probation _ -> "probation"

(** Total failures recorded against [pass] so far this session. *)
let failure_count (b : t) (pass : string) : int = (entry b pass).failures

(** May this pass run right now? Open breakers reject; probation admits. *)
let admits (b : t) (pass : string) : bool =
  match (entry b pass).phase with Open _ -> false | Closed | Probation _ -> true

let transition (b : t) (pass : string) (e : entry) (next : phase) ~(why : string)
    : unit =
  e.phase <- next;
  let kind =
    match next with
    | Closed -> "breaker-close"
    | Open _ -> "breaker-open"
    | Probation _ -> "breaker-probation"
  in
  Journal.note ~kind
    [
      ("pass", Dcir_obs.Json.Str pass);
      ("round", Dcir_obs.Json.Int b.round);
      ("detail", Dcir_obs.Json.Str why);
    ]

let record_failure (b : t) (pass : string) : unit =
  let e = entry b pass in
  e.failures <- e.failures + 1;
  e.consecutive <- e.consecutive + 1;
  match e.phase with
  | Probation _ ->
      transition b pass e (Open 0) ~why:"failed during probation"
  | Closed when e.consecutive >= b.config.trip_after ->
      transition b pass e (Open 0)
        ~why:
          (Printf.sprintf "tripped after %d incident%s" e.consecutive
             (if e.consecutive = 1 then "" else "s"))
  | Closed | Open _ -> ()

let record_success (b : t) (pass : string) : unit =
  let e = entry b pass in
  e.consecutive <- 0;
  match e.phase with
  | Probation n ->
      if n + 1 >= b.config.probation_successes then
        transition b pass e Closed
          ~why:
            (Printf.sprintf "re-closed after %d clean application%s" (n + 1)
               (if n + 1 = 1 then "" else "s"))
      else e.phase <- Probation (n + 1)
  | Closed | Open _ -> ()

(** Advance one fixpoint round: open breakers age toward probation. *)
let end_round (b : t) : unit =
  b.round <- b.round + 1;
  Hashtbl.iter
    (fun pass e ->
      match e.phase with
      | Open r ->
          if r + 1 >= b.config.cooldown_rounds then
            transition b pass e (Probation 0)
              ~why:
                (Printf.sprintf "probation after %d cooldown round%s" (r + 1)
                   (if r + 1 = 1 then "" else "s"))
          else e.phase <- Open (r + 1)
      | Closed | Probation _ -> ())
    b.entries

let total_failures (b : t) : int =
  Hashtbl.fold (fun _ e acc -> acc + e.failures) b.entries 0
