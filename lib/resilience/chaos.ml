(** Seeded deterministic fault injection.

    A chaos {!plan} is derived from a seed and names concrete fault
    sites: "crash the Nth pass application", "corrupt the IR after the
    Nth pass application", "starve optimization fuel to F units", "fail
    machine allocation #K". Plans are installed ambiently for the
    duration of one case; instrumented code (pass drivers, the machine
    model, the degradation ladder) consults the plan at each site. All
    decisions are pure functions of the plan plus deterministic site
    counters, so a campaign replayed with the same seed injects exactly
    the same faults at exactly the same points.

    Crash and corrupt sites fire at most once per installed plan: after a
    fault fires, retries at lower optimization tiers see a clean pipeline
    past that site, which is precisely the recovery the degradation
    ladder is supposed to deliver. *)

type fault =
  | Pass_crash
  | Corrupt_rewrite
  | Fuel_starvation
  | Alloc_failure
  | Worker_kill  (** kill the serve worker mid-attempt *)
  | Poison_result  (** worker reports success with a corrupted result *)

let fault_name = function
  | Pass_crash -> "pass-crash"
  | Corrupt_rewrite -> "corrupt-rewrite"
  | Fuel_starvation -> "fuel-starvation"
  | Alloc_failure -> "alloc-failure"
  | Worker_kill -> "worker-kill"
  | Poison_result -> "poison-result"

(* The kinds [plan] derives from a seed. Worker faults are armed
   separately (see {!arm_worker}) so that extending the fault vocabulary
   never perturbs the RNG draw sequence of existing campaigns. *)
let all_faults = [ Pass_crash; Corrupt_rewrite; Fuel_starvation; Alloc_failure ]

exception Injected of fault * string

let () =
  Printexc.register_printer (function
    | Injected (f, site) ->
        Some (Printf.sprintf "Chaos.Injected(%s at %s)" (fault_name f) site)
    | _ -> None)

(* Private splitmix64 stream — resilience sits below lib/fuzz in the
   dependency order, so it cannot reuse Dcir_fuzz.Rng. *)
module Rng = struct
  type t = { mutable state : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let make (seed : int) : t = { state = Int64.of_int seed }

  let next (t : t) : int64 =
    t.state <- Int64.add t.state golden;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int (t : t) (bound : int) : int =
    Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

  let bool (t : t) : bool = int t 2 = 0
end

type plan = {
  pl_seed : int;
  pl_faults : fault list;  (** fault kinds armed by this plan *)
  crash_at : int option;  (** pass-application index that raises *)
  corrupt_at : int option;  (** pass-application index whose result is corrupted *)
  starved_fuel : int option;  (** fuel ceiling override *)
  fail_alloc : int option;  (** machine allocation ordinal that faults *)
  pl_checked : bool;  (** exercise checked (rollback) or unchecked (ladder) recovery *)
  kill_at : int option;
      (** worker-kill site: [Some 0] kills before the compile, any other
          value kills after the compile but before the result is
          reported *)
  poison : bool;  (** corrupt the reported result of a successful attempt *)
}

(** Derive a plan from [seed]: one or two armed fault kinds with small
    site indices, biased so every kind appears often across a campaign. *)
let plan ~(seed : int) () : plan =
  let rng = Rng.make seed in
  let primary = List.nth all_faults (Rng.int rng 4) in
  let faults =
    if Rng.int rng 3 = 0 then
      let secondary = List.nth all_faults (Rng.int rng 4) in
      if secondary = primary then [ primary ] else [ primary; secondary ]
    else [ primary ]
  in
  let site ~has bound = if has then Some (Rng.int rng bound) else None in
  {
    pl_seed = seed;
    pl_faults = faults;
    crash_at = site ~has:(List.mem Pass_crash faults) 24;
    corrupt_at = site ~has:(List.mem Corrupt_rewrite faults) 24;
    starved_fuel = site ~has:(List.mem Fuel_starvation faults) 12;
    fail_alloc =
      (match site ~has:(List.mem Alloc_failure faults) 10 with
      | Some k -> Some (k + 1) (* allocation ordinals are 1-based *)
      | None -> None);
    pl_checked = Rng.bool rng;
    kill_at = None;
    poison = false;
  }

(** A plan that injects nothing — the base for worker-only fault plans. *)
let no_faults ~(seed : int) : plan =
  {
    pl_seed = seed;
    pl_faults = [];
    crash_at = None;
    corrupt_at = None;
    starved_fuel = None;
    fail_alloc = None;
    pl_checked = false;
    kill_at = None;
    poison = false;
  }

(** Arm worker faults on top of an existing plan. Worker faults live in
    their own plan fields (never in the seeded draw sequence of {!plan}),
    so campaigns that predate them replay byte-identically. *)
let arm_worker ?(kill_at : int option) ?(poison = false) (p : plan) : plan =
  let faults =
    (if kill_at <> None then [ Worker_kill ] else [])
    @ (if poison then [ Poison_result ] else [])
    @ p.pl_faults
  in
  { p with pl_faults = faults; kill_at; poison }

(* Ambient installation with per-install site counters. *)
type armed = {
  arm_plan : plan;
  mutable pass_tick : int;
  mutable crash_fired : bool;
  mutable corrupt_fired : bool;
}

(* Domain-local, so each serve worker domain arms and consults its own
   plan: a fault injected into one worker's attempt can never leak into a
   sibling domain's compile. Single-domain callers see the old ambient
   semantics unchanged. *)
let ambient : armed option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let install (p : plan) : unit =
  Domain.DLS.set ambient
    (Some { arm_plan = p; pass_tick = 0; crash_fired = false; corrupt_fired = false })

let clear () : unit = Domain.DLS.set ambient None

let active () : plan option =
  Option.map (fun a -> a.arm_plan) (Domain.DLS.get ambient)

(** Consult the plan at a pass-application site. Advances the site
    counter; returns the action the caller must take. *)
let tick_pass () : [ `Ok | `Crash | `Corrupt ] =
  match Domain.DLS.get ambient with
  | None -> `Ok
  | Some a ->
      let i = a.pass_tick in
      a.pass_tick <- i + 1;
      if (not a.crash_fired) && a.arm_plan.crash_at = Some i then (
        a.crash_fired <- true;
        `Crash)
      else if (not a.corrupt_fired) && a.arm_plan.corrupt_at = Some i then (
        a.corrupt_fired <- true;
        `Corrupt)
      else `Ok

(** Fuel ceiling for the next compile attempt: starved if armed. *)
let fuel_limit ~(default : int) : int =
  match Domain.DLS.get ambient with
  | Some { arm_plan = { starved_fuel = Some f; _ }; _ } -> min f default
  | _ -> default

(** Allocation ordinal (1-based) that must fault, if armed. *)
let alloc_failure_at () : int option =
  match Domain.DLS.get ambient with
  | Some { arm_plan = { fail_alloc; _ }; _ } -> fail_alloc
  | None -> None

(** Armed worker-kill site, if any ([Some 0] = before compile). *)
let worker_kill_at () : int option =
  match Domain.DLS.get ambient with
  | Some { arm_plan = { kill_at; _ }; _ } -> kill_at
  | None -> None

(** Whether the current plan poisons a successful result. *)
let poison_armed () : bool =
  match Domain.DLS.get ambient with
  | Some { arm_plan = { poison; _ }; _ } -> poison
  | None -> false
