(** Incident journal (schema [dcir-incidents/1]).

    A journal collects structured incident records — pass rollbacks,
    circuit-breaker transitions, budget exhaustions, injected faults,
    tier degradations, chaos case outcomes — and serializes them through
    the in-repo JSON emitter. Records carry sequence numbers instead of
    timestamps and never embed randomized paths, so a campaign replayed
    with the same seed produces a byte-identical journal.

    Producers report through the ambient {!note} hook, which is a no-op
    unless a journal is {!install}ed; the drivers and the resilience
    machinery stay journal-agnostic.

    Every record is also forwarded onto the ambient decision-event stream
    ([Dcir_obs.Events]) under the corresponding stable event code, so a
    single [dcir-events/1] stream carries incidents and ordinary
    optimization decisions in one causal order. The journal's own schema
    and byte-for-byte determinism are unchanged by the forwarding. *)

module Json = Dcir_obs.Json
module Events = Dcir_obs.Events

type entry = { seq : int; kind : string; fields : (string * Json.t) list }

type t = { mutable entries : entry list (* reversed *); mutable next_seq : int }

let create () : t = { entries = []; next_seq = 0 }

(* Journal kind -> decision-event code. [None] suppresses forwarding:
   "degraded" is covered by the richer TIER-LAND event emitted directly by
   the degradation ladder. *)
let event_code_of_kind : string -> string option = function
  | "pass-rollback" -> Some "PASS-ROLLBACK"
  | "breaker-open" -> Some "BRK-OPEN"
  | "breaker-probation" -> Some "BRK-PROBATION"
  | "breaker-close" -> Some "BRK-CLOSE"
  | "chaos-injected" -> Some "CHAOS-INJECT"
  | "tier-failed" -> Some "TIER-FAIL"
  | "chaos-case" -> Some "CHAOS-CASE"
  | "case-outcome" -> Some "CHAOS-OUTCOME"
  | "degraded" -> None
  | _ -> Some "NOTE"

let forward (kind : string) (fields : (string * Json.t) list) : unit =
  match event_code_of_kind kind with
  | Some code -> Events.emit ~code fields
  | None -> ()

let record (j : t) ~(kind : string) (fields : (string * Json.t) list) : unit =
  forward kind fields;
  j.entries <- { seq = j.next_seq; kind; fields } :: j.entries;
  j.next_seq <- j.next_seq + 1

let length (j : t) : int = j.next_seq

(* Ambient journal: one per chaos campaign / CLI invocation. Domain-local
   so serve worker domains (which run compiles speculatively) never write
   into the supervisor's journal out of commit order. *)
let ambient : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let install (j : t) : unit = Domain.DLS.set ambient (Some j)
let clear () : unit = Domain.DLS.set ambient None

(* Even without an installed journal, notes still reach an installed event
   stream — [dcir explain] sees breaker/rollback incidents without
   arming a journal. *)
let note ~(kind : string) (fields : (string * Json.t) list) : unit =
  match Domain.DLS.get ambient with
  | None -> forward kind fields
  | Some j -> record j ~kind fields

let entry_json (e : entry) : Json.t =
  Json.Obj (("seq", Json.Int e.seq) :: ("kind", Json.Str e.kind) :: e.fields)

(* Per-kind counts, sorted by kind name for deterministic output. *)
let summary (j : t) : Json.t =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (e : entry) ->
      Hashtbl.replace counts e.kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts e.kind)))
    j.entries;
  let kinds = Hashtbl.fold (fun k n acc -> (k, Json.Int n) :: acc) counts [] in
  Json.Obj (List.sort (fun (a, _) (b, _) -> compare a b) kinds)

let to_json ?(header = []) (j : t) : Json.t =
  Json.Obj
    ([ ("schema", Json.Str "dcir-incidents/1") ]
    @ header
    @ [
        ("incidents", Json.List (List.rev_map entry_json j.entries));
        ("summary", summary j);
      ])

let write ?header (j : t) (path : string) : unit =
  Dcir_support.Atomic_io.write path (fun oc ->
      output_string oc (Json.to_string (to_json ?header j));
      output_char oc '\n')
