(** The MLIR-to-SDFG translator (§5.2 of the paper).

    Two passes over an sdfg-dialect function:
    1. collect symbol, container, and scope metadata ([sdfg.alloc] ops,
       state labels, the function's size symbols);
    2. create and connect the graph: per state, loads/stores become access
       nodes and memlet-carrying edges, tasklets become tasklet nodes.

    Tasklet {e raising}: each MLIR tasklet region is parsed into the native
    tasklet language ({!Dcir_sdfg.Texpr}) when it consists of arithmetic,
    math calls, [sdfg.sym] and element loads — enabling data-centric
    analysis and inlined code generation. Regions with control flow or other
    unsupported ops are kept as {e MLIR tasklets} ([Opaque]), compiled as
    separate units with a per-invocation overhead. *)

open Dcir_mlir
open Dcir_sdfg
open Dcir_symbolic

exception Translation_error of string

let err fmt = Fmt.kstr (fun m -> raise (Translation_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Tasklet raising *)

(* Try to express a tasklet region as native code. Region args map to input
   connectors in order. *)
let raise_tasklet_region (region : Ir.region) ~(conn_names : string list) :
    Texpr.code option =
  let conn_of_arg : (int, string) Hashtbl.t = Hashtbl.create 8 in
  (try
     List.iter2
       (fun (a : Ir.value) c -> Hashtbl.replace conn_of_arg a.vid c)
       region.rargs conn_names
   with Invalid_argument _ -> ());
  let exprs : (int, Texpr.t) Hashtbl.t = Hashtbl.create 16 in
  let lookup (v : Ir.value) : Texpr.t option =
    match Hashtbl.find_opt exprs v.vid with
    | Some e -> Some e
    | None -> (
        match Hashtbl.find_opt conn_of_arg v.vid with
        | Some c -> Some (Texpr.TIn c)
        | None -> None)
  in
  let exception Unraisable in
  let get v = match lookup v with Some e -> e | None -> raise Unraisable in
  try
    let result = ref None in
    List.iter
      (fun (o : Ir.op) ->
        let bind e = Hashtbl.replace exprs (Ir.result o).vid e in
        match o.name with
        | "arith.constant" -> (
            match Ir.attr o "value" with
            | Some (Attr.AInt n) -> bind (Texpr.TInt n)
            | Some (Attr.AFloat f) -> bind (Texpr.TFloat f)
            | _ -> raise Unraisable)
        | "sdfg.sym" -> (
            match Sdfg_d.sym_expr o with
            | Some e -> bind (Texpr.of_expr e)
            | None -> raise Unraisable)
        | "arith.addi" | "arith.addf" ->
            bind (Texpr.TBin (Texpr.BAdd, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.subi" | "arith.subf" ->
            bind (Texpr.TBin (Texpr.BSub, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.muli" | "arith.mulf" ->
            bind (Texpr.TBin (Texpr.BMul, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.divsi" | "arith.divf" ->
            bind (Texpr.TBin (Texpr.BDiv, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.remsi" ->
            bind (Texpr.TBin (Texpr.BMod, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.maxsi" | "arith.maxf" ->
            bind (Texpr.TBin (Texpr.BMax, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.minsi" | "arith.minf" ->
            bind (Texpr.TBin (Texpr.BMin, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.andi" ->
            (* On i1 values, logical and = min; good enough for raised code. *)
            bind (Texpr.TBin (Texpr.BMin, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.ori" ->
            bind (Texpr.TBin (Texpr.BMax, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.xori" ->
            (* i1 xor: |a - b| *)
            bind
              (Texpr.TCmp (Texpr.CNe, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.negf" -> bind (Texpr.TUn (`Neg, get (List.hd o.operands)))
        | "arith.cmpi" | "arith.cmpf" ->
            let pred = Option.value ~default:"eq" (Ir.str_attr o "predicate") in
            let op =
              match pred with
              | "eq" | "oeq" | "ueq" -> Texpr.CEq
              | "ne" | "one" | "une" -> Texpr.CNe
              | "slt" | "ult" | "olt" -> Texpr.CLt
              | "sle" | "ule" | "ole" -> Texpr.CLe
              | "sgt" | "ugt" | "ogt" -> Texpr.CGt
              | "sge" | "uge" | "oge" -> Texpr.CGe
              | _ -> raise Unraisable
            in
            bind (Texpr.TCmp (op, get (List.nth o.operands 0), get (List.nth o.operands 1)))
        | "arith.select" ->
            bind
              (Texpr.TSelect
                 ( get (List.nth o.operands 0),
                   get (List.nth o.operands 1),
                   get (List.nth o.operands 2) ))
        | "arith.sitofp" -> bind (Texpr.TUn (`ToFloat, get (List.hd o.operands)))
        | "arith.fptosi" -> bind (Texpr.TUn (`ToInt, get (List.hd o.operands)))
        | "arith.index_cast" | "arith.extf" | "arith.truncf" ->
            bind (get (List.hd o.operands))
        | "math.powf" ->
            bind
              (Texpr.TCall
                 ("pow", [ get (List.nth o.operands 0); get (List.nth o.operands 1) ]))
        | name when Math_d.is_math_op name ->
            let f =
              match name with
              | "math.exp" -> "exp"
              | "math.log" -> "log"
              | "math.sqrt" -> "sqrt"
              | "math.tanh" -> "tanh"
              | "math.absf" -> "fabs"
              | "math.sin" -> "sin"
              | "math.cos" -> "cos"
              | _ -> raise Unraisable
            in
            bind (Texpr.TCall (f, [ get (List.hd o.operands) ]))
        | "memref.load" ->
            (* Element access into a memref argument: indirect index. *)
            let mr, idxs = Memref_d.load_parts o in
            let conn =
              match Hashtbl.find_opt conn_of_arg mr.vid with
              | Some c -> c
              | None -> raise Unraisable
            in
            bind (Texpr.TIndex (conn, List.map get idxs))
        | "sdfg.return" ->
            result :=
              Some (List.mapi (fun i v -> (Printf.sprintf "_out%d" i, get v)) o.operands)
        | _ -> raise Unraisable)
      region.rops;
    !result
  with Unraisable -> None

(* Fallback: wrap the region as a standalone function (MLIR tasklet). *)
let opaque_of_region (name : string) (region : Ir.region)
    (result_tys : Types.t list) : Ir.func =
  let cloned, _ = Ir.clone_region Ir.IntMap.empty region in
  (* Replace the trailing sdfg.return with func.return. *)
  let rec fix = function
    | [] -> []
    | [ (last : Ir.op) ] when String.equal last.name "sdfg.return" ->
        [ Ir.new_op "func.return" ~operands:last.operands ]
    | o :: rest -> o :: fix rest
  in
  cloned.rops <- fix cloned.rops;
  {
    Ir.fname = name;
    fparams = cloned.rargs;
    fret = result_tys;
    fbody = Some cloned;
    fattrs = [];
  }

(* ------------------------------------------------------------------ *)
(* Translation *)

type tctx = {
  sdfg : Sdfg.t;
  containers_by_vid : (int, string) Hashtbl.t;
  mutable tasklet_count : int;
}

let dim_to_expr (d : Types.dim) : Expr.t =
  match d with
  | Types.Static n -> Expr.int n
  | Types.SymDim e -> e
  | Types.Dynamic -> err "untranslated dynamic dimension"

(* Pass 1: containers and metadata. *)
let collect_alloc (ctx : tctx) (o : Ir.op) : unit =
  let res = Ir.result o in
  let name =
    Option.value ~default:"" (Ir.str_attr o Sdfg_d.k_container)
  in
  let transient =
    match Ir.attr o Sdfg_d.k_transient with
    | Some (Attr.ABool b) -> b
    | _ -> true
  in
  let storage =
    match Ir.str_attr o "storage" with
    | Some "heap" -> Sdfg.Heap
    | Some "stack" -> Sdfg.Stack
    | Some "register" -> Sdfg.Register
    | _ -> if Types.dims res.vty = [] then Sdfg.Register else Sdfg.Heap
  in
  let dtype =
    if Types.is_float (Types.elem_type res.vty) then Sdfg.DFloat else Sdfg.DInt
  in
  let shape = List.map dim_to_expr (Types.dims res.vty) in
  let alloc_in_loop =
    match Ir.attr o "alloc_in_loop" with Some (Attr.ABool b) -> b | _ -> false
  in
  let c =
    Sdfg.add_container ctx.sdfg ~transient ~storage ~alloc_in_loop ~dtype
      ~shape name
  in
  (match Ir.str_attr o "alloc_state" with
  | Some s -> c.alloc_state <- Some s
  | None -> ());
  Hashtbl.replace ctx.containers_by_vid res.vid name

(* Pass 2: one state's dataflow. *)
let translate_state (ctx : tctx) (label : string) (region : Ir.region) : unit
    =
  let st = Sdfg.add_state ctx.sdfg label in
  let g = st.s_graph in
  (* Per-container read/write access nodes within this state. Reads and
     writes use separate nodes so the graph stays acyclic for
     read-modify-write patterns. *)
  let read_nodes : (string, Sdfg.node) Hashtbl.t = Hashtbl.create 8 in
  let write_nodes : (string, Sdfg.node) Hashtbl.t = Hashtbl.create 8 in
  (* Hazard ordering between *event* nodes (the nodes whose visit performs
     the movement: tasklets and copy-source access nodes), in op order:
     write-after-read, read-after-write and write-after-write on the same
     container get dependency edges. *)
  let last_writer : (string, Sdfg.node) Hashtbl.t = Hashtbl.create 8 in
  let readers_since : (string, Sdfg.node list) Hashtbl.t = Hashtbl.create 8 in
  let dep_edge (a : Sdfg.node) (b : Sdfg.node) =
    if a.nid <> b.nid
       && not
            (List.exists
               (fun (e : Sdfg.edge) ->
                 e.e_src = a.nid && e.e_dst = b.nid)
               (Sdfg.edges g))
    then ignore (Sdfg.add_edge g a b)
  in
  let note_read (c : string) (n : Sdfg.node) =
    (match Hashtbl.find_opt last_writer c with
    | Some w -> dep_edge w n
    | None -> ());
    Hashtbl.replace readers_since c
      (n :: Option.value ~default:[] (Hashtbl.find_opt readers_since c))
  in
  let note_write (c : string) (n : Sdfg.node) =
    (match Hashtbl.find_opt last_writer c with
    | Some w -> dep_edge w n
    | None -> ());
    List.iter (fun r -> dep_edge r n)
      (Option.value ~default:[] (Hashtbl.find_opt readers_since c));
    Hashtbl.replace last_writer c n;
    Hashtbl.replace readers_since c []
  in
  let read_node name =
    match Hashtbl.find_opt read_nodes name with
    | Some n -> n
    | None ->
        let n = Sdfg.add_node g (Sdfg.Access name) in
        Hashtbl.replace read_nodes name n;
        n
  in
  let write_node name =
    match Hashtbl.find_opt write_nodes name with
    | Some n -> n
    | None ->
        let n = Sdfg.add_node g (Sdfg.Access name) in
        Hashtbl.replace write_nodes name n;
        n
  in
  (* Values produced inside the state: load results and tasklet results. *)
  let sources : (int, [ `Load of string * Range.t | `TaskletOut of Sdfg.node * string ]) Hashtbl.t =
    Hashtbl.create 16
  in
  let container_of (v : Ir.value) : string =
    match Hashtbl.find_opt ctx.containers_by_vid v.vid with
    | Some n -> n
    | None -> err "state %s: value %s is not a container" label (Dcir_mlir.Printer.value_name v)
  in
  List.iter
    (fun (o : Ir.op) ->
      match o.name with
      | "sdfg.load" ->
          let arr = List.hd o.operands in
          let subset =
            match Ir.attr o Sdfg_d.k_subset with
            | Some (Attr.ARange r) -> r
            | _ -> []
          in
          Hashtbl.replace sources (Ir.result o).vid
            (`Load (container_of arr, subset))
      | "sdfg.tasklet" ->
          ctx.tasklet_count <- ctx.tasklet_count + 1;
          let tname = Printf.sprintf "t%d" ctx.tasklet_count in
          let region_t = List.hd o.regions in
          let conn_names =
            List.mapi (fun i _ -> Printf.sprintf "_in%d" i) o.operands
          in
          let out_names =
            List.mapi (fun i _ -> Printf.sprintf "_out%d" i) o.results
          in
          let code =
            match raise_tasklet_region region_t ~conn_names with
            | Some assigns -> Sdfg.Native assigns
            | None ->
                Sdfg.Opaque
                  (opaque_of_region
                     (Printf.sprintf "%s_%s" ctx.sdfg.name tname)
                     region_t
                     (List.map (fun (r : Ir.value) -> r.vty) o.results))
          in
          let overhead = match code with Sdfg.Opaque _ -> 20.0 | _ -> 0.0 in
          let t =
            {
              Sdfg.tname;
              t_inputs = conn_names;
              t_outputs = out_names;
              t_syms = [];
              code;
              t_overhead = overhead;
            }
          in
          let tn = Sdfg.add_node g (Sdfg.TaskletN t) in
          (* Wire inputs. *)
          List.iteri
            (fun i (v : Ir.value) ->
              let conn = Printf.sprintf "_in%d" i in
              match Hashtbl.find_opt sources v.vid with
              | Some (`Load (data, subset)) ->
                  ignore
                    (Sdfg.add_edge g ~dst_conn:conn
                       ~memlet:{ Sdfg.data; subset; wcr = None; other = None }
                       (read_node data) tn);
                  note_read data tn
              | Some (`TaskletOut (src_node, src_conn)) ->
                  (* Direct tasklet-to-tasklet chaining via a scalar is not
                     generated by the converter; route conservatively. *)
                  ignore
                    (Sdfg.add_edge g ~src_conn ~dst_conn:conn src_node tn)
              | None -> (
                  (* Whole-container operand (indirect access). *)
                  match Hashtbl.find_opt ctx.containers_by_vid v.vid with
                  | Some data ->
                      let c = Sdfg.container ctx.sdfg data in
                      let subset = List.map Range.full c.shape in
                      ignore
                        (Sdfg.add_edge g ~dst_conn:conn
                           ~memlet:{ Sdfg.data; subset; wcr = None; other = None }
                           (read_node data) tn);
                      note_read data tn
                  | None ->
                      err "state %s: tasklet operand %s has no source" label
                        (Dcir_mlir.Printer.value_name v)))
            o.operands;
          List.iteri
            (fun i (r : Ir.value) ->
              Hashtbl.replace sources r.vid
                (`TaskletOut (tn, Printf.sprintf "_out%d" i)))
            o.results
      | "sdfg.store" ->
          let v = List.hd o.operands in
          let arr = List.nth o.operands 1 in
          let data = container_of arr in
          let subset =
            match Ir.attr o Sdfg_d.k_subset with
            | Some (Attr.ARange r) -> r
            | _ -> []
          in
          let wcr = Option.bind (Ir.str_attr o Sdfg_d.k_wcr) Sdfg.wcr_of_string in
          let memlet = { Sdfg.data; subset; wcr; other = None } in
          (match Hashtbl.find_opt sources v.vid with
          | Some (`TaskletOut (tn, conn)) ->
              ignore (Sdfg.add_edge g ~src_conn:conn ~memlet tn (write_node data));
              note_write data tn
          | Some (`Load (src_data, src_subset)) ->
              (* load+store = copy edge between access nodes; the memlet
                 carries both subsets. The event node is the copy source. *)
              let src_node = read_node src_data in
              ignore
                (Sdfg.add_edge g
                   ~memlet:
                     { Sdfg.data = src_data; subset = src_subset; wcr;
                       other = Some subset }
                   src_node
                   (write_node data));
              note_read src_data src_node;
              note_write data src_node
          | None -> err "state %s: store of unknown value" label)
      | name -> err "state %s: unexpected op %s in state body" label name)
    region.rops;
  ignore write_nodes

(** Translate one sdfg-dialect function into an SDFG. *)
let translate_func (f : Ir.func) : Sdfg.t =
  let body =
    match f.fbody with Some b -> b | None -> err "external function"
  in
  let sdfg = Sdfg.create f.fname in
  let ctx =
    { sdfg; containers_by_vid = Hashtbl.create 32; tasklet_count = 0 }
  in
  (* Pass 1: metadata. *)
  List.iter
    (fun (o : Ir.op) ->
      if String.equal o.Ir.name "sdfg.alloc" then collect_alloc ctx o)
    body.rops;
  (match List.assoc_opt "sdfg.params" f.fattrs with
  | Some (Attr.AList l) ->
      sdfg.param_order <-
        List.filter_map (function Attr.AStr s -> Some s | _ -> None) l
  | _ -> ());
  (match List.assoc_opt "sdfg.symbols" f.fattrs with
  | Some (Attr.AList l) ->
      sdfg.arg_symbols <-
        List.filter_map (function Attr.AStr s -> Some s | _ -> None) l
  | _ -> ());
  (* Pass 2: graph. *)
  List.iter
    (fun (o : Ir.op) ->
      match o.Ir.name with
      | "sdfg.alloc" -> ()
      | "sdfg.state" ->
          let label =
            Option.value ~default:"" (Ir.str_attr o Sdfg_d.k_state_id)
          in
          translate_state ctx label (List.hd o.regions)
      | "sdfg.edge" -> (
          match Sdfg_d.edge_parts o with
          | Some (src, dst, cond, assigns) ->
              Sdfg.add_istate_edge sdfg ~cond ~assign:assigns ~src ~dst ()
          | None -> err "malformed sdfg.edge")
      | name -> err "unexpected top-level op %s in converted function" name)
    body.rops;
  (match List.assoc_opt "sdfg.return_scalar" f.fattrs with
  | Some (Attr.AStr name) -> sdfg.return_scalar <- Some name
  | _ -> ());
  (match List.assoc_opt "sdfg.return_expr" f.fattrs with
  | Some (Attr.AExpr e) -> sdfg.return_expr <- Some e
  | _ -> ());
  sdfg

(** Translate the first converted function of a module. *)
let translate_module (m : Ir.modul) ~(entry : string) : Sdfg.t =
  match Ir.find_func m entry with
  | Some f when List.mem_assoc "sdfg.converted" f.fattrs -> translate_func f
  | Some _ -> err "function @%s was not converted to the sdfg dialect" entry
  | None -> err "no function @%s" entry
