(** The DaCe C frontend baseline (§2.2, §7.2; Calotoiu et al. [6]).

    Translates the C subset {e directly} to an SDFG, without any
    control-centric optimization:

    - every assignment statement becomes one state holding a single
      {e opaque C tasklet} — an indivisible unit whose body is the whole
      right-hand side. Memlets are recovered by symbolic analysis of the
      index expressions, but the computation itself cannot be inspected or
      split, which is exactly why this baseline misses the syrk hoisting
      opportunity (Fig 7): [alpha * A[i][k]] is recomputed in every
      iteration of the innermost loop;
    - loops become guard-pattern state loops; descending loops keep their
      direction (no scf-style inversion — the semantic information the
      Polygeist path loses, §7.2);
    - local arrays are stack transients, [malloc] results heap transients.

    The resulting SDFG runs through the same data-centric pipeline as DCIR. *)

open Dcir_cfront.C_ast
open Dcir_sdfg
open Dcir_symbolic
module C_sema = Dcir_cfront.C_sema
module C_parser = Dcir_cfront.C_parser
module Ir = Dcir_mlir.Ir
module Types = Dcir_mlir.Types

exception Frontend_error of string

let err fmt = Fmt.kstr (fun m -> raise (Frontend_error m)) fmt

type binding =
  | VSym of string  (** loop induction symbol *)
  | VScalar of string  (** scalar container *)
  | VArray of string  (** array/pointer container *)

type fctx = {
  sdfg : Sdfg.t;
  mutable env : (string * binding) list;
  mutable tail : string;
  mutable loop_depth : int;
  gen : Dcir_support.Id_gen.t;
}

let fresh_label ctx prefix = Dcir_support.Id_gen.fresh ctx.gen prefix

let seq_state (ctx : fctx) (prefix : string) : Sdfg.state =
  let st = Sdfg.add_state ctx.sdfg (fresh_label ctx prefix) in
  Sdfg.add_istate_edge ctx.sdfg ~src:ctx.tail ~dst:st.s_label ();
  ctx.tail <- st.s_label;
  st

let lookup ctx name =
  match List.assoc_opt name ctx.env with
  | Some b -> b
  | None -> err "unbound variable '%s'" name

let dtype_of_cty (t : cty) : Sdfg.dtype =
  if is_float_ty (elem_cty t) then Sdfg.DFloat else Sdfg.DInt

(* ------------------------------------------------------------------ *)
(* Index expressions -> symbolic expressions *)

let rec index_expr (ctx : fctx) (e : expr) : Expr.t =
  match e with
  | EInt n -> Expr.int n
  | EVar v -> (
      match lookup ctx v with
      | VSym s -> Expr.sym s
      | VScalar c -> Expr.sym c (* pseudo-symbol; promoted later *)
      | VArray _ -> err "array '%s' used as index" v)
  | EBinop (Add, a, b) -> Expr.add (index_expr ctx a) (index_expr ctx b)
  | EBinop (Sub, a, b) -> Expr.sub (index_expr ctx a) (index_expr ctx b)
  | EBinop (Mul, a, b) -> Expr.mul (index_expr ctx a) (index_expr ctx b)
  | EBinop (Div, a, b) -> Expr.div (index_expr ctx a) (index_expr ctx b)
  | EBinop (Mod, a, b) -> Expr.modulo (index_expr ctx a) (index_expr ctx b)
  | EUnop (Neg, a) -> Expr.neg (index_expr ctx a)
  | _ -> err "unsupported index expression"

(* ------------------------------------------------------------------ *)
(* Opaque tasklet construction for one statement *)

(* Scan an expression for its inputs: array element reads, scalar variable
   reads, and the loop symbols used as values. The expression is rewritten
   so each input becomes a fresh variable the tasklet body receives. *)
type stmt_inputs = {
  mutable elems : (string * string * Range.t * bool) list;
      (** synthetic var, container, subset, is_float *)
  mutable scalars : (string * string * bool) list;
      (** synthetic var, container, is_float *)
  mutable syms : (string * string) list;  (** synthetic var, symbol *)
}

let rec scan_expr (ctx : fctx) (acc : stmt_inputs) (e : expr) : expr =
  match e with
  | EInt _ | EFloat _ -> e
  | EVar v -> (
      match lookup ctx v with
      | VSym s ->
          let key = "_sym_" ^ s in
          if not (List.mem_assoc key acc.syms) then
            acc.syms <- acc.syms @ [ (key, s) ];
          EVar key
      | VScalar c ->
          let key = "_scl_" ^ c in
          if not (List.exists (fun (k, _, _) -> String.equal k key) acc.scalars)
          then begin
            let is_float =
              match Hashtbl.find_opt ctx.sdfg.containers c with
              | Some k -> k.dtype = Sdfg.DFloat
              | None -> false
            in
            acc.scalars <- acc.scalars @ [ (key, c, is_float) ]
          end;
          EVar key
      | VArray _ -> err "array '%s' used as a value" v)
  | EIndex (EVar a, idxs) -> (
      match lookup ctx a with
      | VArray container ->
          let subset = Range.of_indices (List.map (index_expr ctx) idxs) in
          let key = Printf.sprintf "_el%d" (List.length acc.elems) in
          let is_float =
            match Hashtbl.find_opt ctx.sdfg.containers container with
            | Some k -> k.dtype = Sdfg.DFloat
            | None -> true
          in
          acc.elems <- acc.elems @ [ (key, container, subset, is_float) ];
          EVar key
      | _ -> err "cannot index scalar '%s'" a)
  | EIndex _ -> err "array base must be a variable"
  | EUnop (op, a) -> EUnop (op, scan_expr ctx acc a)
  | EBinop (op, a, b) -> EBinop (op, scan_expr ctx acc a, scan_expr ctx acc b)
  | ECond (c, a, b) ->
      ECond (scan_expr ctx acc c, scan_expr ctx acc a, scan_expr ctx acc b)
  | ECall (f, args) -> ECall (f, List.map (scan_expr ctx acc) args)
  | ECast (t, a) -> ECast (t, scan_expr ctx acc a)
  | EMalloc _ -> err "malloc must appear in a declaration"

let empty_prog : program = { funcs = [] }

(* Build the opaque tasklet body: a standalone MLIR function computing the
   rewritten expression from scalar parameters. *)
(* Atomic: concurrent serve-worker compiles must never mint the same
   serial inside one module; the digest canonicalizer renumbers the
   serials, so artifact digests stay independent of compile order. *)
let body_counter = Atomic.make 0

let build_opaque_body (inputs : stmt_inputs) (value_cty : cty) (e : expr) :
    Ir.func =
  let body_serial = Atomic.fetch_and_add body_counter 1 + 1 in
  let param_of_cty (t : cty) =
    if is_float_ty t then Types.F64 else Types.Index
  in
  let params =
    List.map (fun (k, _) -> (k, Types.Index)) inputs.syms
    @ List.map
        (fun (k, _, _, f) -> (k, if f then Types.F64 else Types.Index))
        inputs.elems
    @ List.map
        (fun (k, _, f) -> (k, if f then Types.F64 else Types.Index))
        inputs.scalars
  in
  ignore param_of_cty;
  let param_vals =
    List.map (fun (n, t) -> Ir.new_value ~hint:n t) params
  in
  let pctx =
    {
      Dcir_cfront.Polygeist.prog = empty_prog;
      modul = Ir.new_module ();
      env =
        List.map2
          (fun (n, _) v -> (n, Dcir_cfront.Polygeist.Iv v))
          params param_vals;
      ops = [];
    }
  in
  let result = Dcir_cfront.Polygeist.lower_expr pctx e in
  let result =
    if is_float_ty value_cty then Dcir_cfront.Polygeist.to_f64 pctx result
    else Dcir_cfront.Polygeist.to_index pctx result
  in
  let ops = List.rev pctx.ops @ [ Ir.new_op "func.return" ~operands:[ result ] ] in
  {
    Ir.fname = Printf.sprintf "c_tasklet_%d" body_serial;
    fparams = param_vals;
    fret = [ (if is_float_ty value_cty then Types.F64 else Types.Index) ];
    fbody = Some (Ir.new_region ~args:param_vals ~ops ());
    fattrs = [];
  }

let tasklet_counter = Atomic.make 0

(* Emit one statement-state: an opaque tasklet computing [rhs] (already
   scanned) writing to [target]. *)
let emit_statement (ctx : fctx) (inputs : stmt_inputs) (value_cty : cty)
    (rhs : expr) ~(target : string) ~(subset : Range.t)
    ~(wcr : Sdfg.wcr option) : unit =
  let st = seq_state ctx "stmt" in
  let g = st.s_graph in
  let tasklet_serial = Atomic.fetch_and_add tasklet_counter 1 + 1 in
  let elem_conns = List.map (fun (k, _, _, _) -> k) inputs.elems in
  let scalar_conns = List.map (fun (k, _, _) -> k) inputs.scalars in
  let t =
    {
      Sdfg.tname = Printf.sprintf "c%d" tasklet_serial;
      t_inputs = elem_conns @ scalar_conns;
      t_outputs = [ "_out" ];
      t_syms = List.map snd inputs.syms;
      code = Sdfg.Opaque (build_opaque_body inputs value_cty rhs);
      t_overhead = 0.0 (* inlined by DaCe's code generator *);
    }
  in
  let tn = Sdfg.add_node g (Sdfg.TaskletN t) in
  let read_nodes = Hashtbl.create 4 in
  let read_node c =
    match Hashtbl.find_opt read_nodes c with
    | Some n -> n
    | None ->
        let n = Sdfg.add_node g (Sdfg.Access c) in
        Hashtbl.replace read_nodes c n;
        n
  in
  List.iter
    (fun (conn, container, subset, _) ->
      ignore
        (Sdfg.add_edge g ~dst_conn:conn
           ~memlet:{ Sdfg.data = container; subset; wcr = None; other = None }
           (read_node container) tn))
    inputs.elems;
  List.iter
    (fun (conn, container, _) ->
      ignore
        (Sdfg.add_edge g ~dst_conn:conn
           ~memlet:{ Sdfg.data = container; subset = []; wcr = None; other = None }
           (read_node container) tn))
    inputs.scalars;
  let wn = Sdfg.add_node g (Sdfg.Access target) in
  ignore
    (Sdfg.add_edge g ~src_conn:"_out"
       ~memlet:{ Sdfg.data = target; subset; wcr; other = None }
       tn wn);
  (* Order the write after reads of the same container. *)
  (match Hashtbl.find_opt read_nodes target with
  | Some rn -> ignore (Sdfg.add_edge g rn wn)
  | None -> ())

(* The value type of an expression (float vs int) using sema typing against
   an environment snapshot; approximated from structure. *)
let rec value_cty (ctx : fctx) (e : expr) : cty =
  match e with
  | EFloat _ -> TDouble
  | EInt _ -> TInt
  | ECall _ -> TDouble
  | EVar v -> (
      match lookup ctx v with
      | VSym _ -> TInt
      | VScalar c | VArray c -> (
          match Hashtbl.find_opt ctx.sdfg.containers c with
          | Some k -> if k.dtype = Sdfg.DFloat then TDouble else TInt
          | None -> TInt))
  | EIndex (base, _) -> value_cty ctx base
  | EUnop (Not, _) -> TInt
  | EUnop (Neg, a) -> value_cty ctx a
  | EBinop ((Lt | Le | Gt | Ge | Eq | Ne | LAnd | LOr | Mod), _, _) -> TInt
  | EBinop (_, a, b) ->
      if
        is_float_ty (value_cty ctx a) || is_float_ty (value_cty ctx b)
      then TDouble
      else TInt
  | ECond (_, a, b) ->
      if is_float_ty (value_cty ctx a) || is_float_ty (value_cty ctx b) then
        TDouble
      else TInt
  | ECast (t, _) -> t
  | EMalloc (t, _) -> TPtr t

(* ------------------------------------------------------------------ *)
(* Statements *)

let rec lower_stmt (ctx : fctx) (s : stmt) : unit =
  match s with
  | SDecl (ty, name, init) -> (
      match ty with
      | TInt | TFloat | TDouble ->
          let cname = Sdfg.fresh_name ctx.sdfg ("c_" ^ name) in
          ignore
            (Sdfg.add_container ctx.sdfg ~transient:true
               ~storage:Sdfg.Register ~dtype:(dtype_of_cty ty) ~shape:[] cname);
          ctx.env <- (name, VScalar cname) :: ctx.env;
          Option.iter
            (fun e -> lower_stmt ctx (SAssign (EVar name, OpAssign, e)))
            init
      | TArr (elem, dims) ->
          let cname = Sdfg.fresh_name ctx.sdfg ("c_" ^ name) in
          ignore
            (Sdfg.add_container ctx.sdfg ~transient:true ~storage:Sdfg.Stack
               ~dtype:(dtype_of_cty elem)
               ~shape:(List.map Expr.int dims) cname);
          ctx.env <- (name, VArray cname) :: ctx.env
      | TPtr _ -> (
          match init with
          | Some (EMalloc (elem, count)) ->
              let cname = Sdfg.fresh_name ctx.sdfg ("c_" ^ name) in
              let size = index_expr ctx count in
              let c =
                Sdfg.add_container ctx.sdfg ~transient:true ~storage:Sdfg.Heap
                  ~alloc_in_loop:(ctx.loop_depth > 0)
                  ~dtype:(dtype_of_cty elem) ~shape:[ size ] cname
              in
              (* Allocation charge point. *)
              let st = seq_state ctx "alloc" in
              c.alloc_state <- Some st.s_label;
              ctx.env <- (name, VArray cname) :: ctx.env
          | _ -> err "pointer '%s' must be initialized with malloc" name)
      | TVoid -> err "void declaration")
  | SAssign (lhs, op, rhs) -> (
      let inputs = { elems = []; scalars = []; syms = [] } in
      let rhs_cty = value_cty ctx rhs in
      let compound_combine scanned_lhs scanned_rhs =
        match op with
        | OpAssign -> scanned_rhs
        | OpAddAssign -> EBinop (Add, scanned_lhs, scanned_rhs)
        | OpSubAssign -> EBinop (Sub, scanned_lhs, scanned_rhs)
        | OpMulAssign -> EBinop (Mul, scanned_lhs, scanned_rhs)
        | OpDivAssign -> EBinop (Div, scanned_lhs, scanned_rhs)
      in
      match lhs with
      | EVar name -> (
          match lookup ctx name with
          | VScalar cname ->
              let target_cty = value_cty ctx lhs in
              let scanned_rhs = scan_expr ctx inputs rhs in
              let body =
                if op = OpAssign then scanned_rhs
                else compound_combine (scan_expr ctx inputs lhs) scanned_rhs
              in
              ignore rhs_cty;
              emit_statement ctx inputs target_cty body ~target:cname
                ~subset:[] ~wcr:None
          | _ -> err "unsupported assignment to '%s'" name)
      | EIndex (EVar name, idxs) -> (
          match lookup ctx name with
          | VArray cname ->
              let subset = Range.of_indices (List.map (index_expr ctx) idxs) in
              let target_cty = value_cty ctx lhs in
              let scanned_rhs = scan_expr ctx inputs rhs in
              let body =
                if op = OpAssign then scanned_rhs
                else compound_combine (scan_expr ctx inputs lhs) scanned_rhs
              in
              emit_statement ctx inputs target_cty body ~target:cname ~subset
                ~wcr:None
          | _ -> err "cannot index '%s'" name)
      | _ -> err "unsupported assignment target")
  | SExpr _ -> err "expression statements are not supported by this frontend"
  | SIf (cond, then_s, else_s) ->
      (* Condition into an int scalar, then branch on it. *)
      let cname = Sdfg.fresh_name ctx.sdfg "c_cond" in
      ignore
        (Sdfg.add_container ctx.sdfg ~transient:true ~storage:Sdfg.Register
           ~dtype:Sdfg.DInt ~shape:[] cname);
      let inputs = { elems = []; scalars = []; syms = [] } in
      let scanned = scan_expr ctx inputs cond in
      let as_bool = ECond (scanned, EInt 1, EInt 0) in
      emit_statement ctx inputs TInt as_bool ~target:cname ~subset:[] ~wcr:None;
      let fork = ctx.tail in
      let saved_env = ctx.env in
      let then_entry = Sdfg.add_state ctx.sdfg (fresh_label ctx "then") in
      Sdfg.add_istate_edge ctx.sdfg
        ~cond:(Bexpr.ne (Expr.sym cname) Expr.zero)
        ~src:fork ~dst:then_entry.s_label ();
      ctx.tail <- then_entry.s_label;
      List.iter (lower_stmt ctx) then_s;
      ctx.env <- saved_env;
      let join = Sdfg.add_state ctx.sdfg (fresh_label ctx "endif") in
      Sdfg.add_istate_edge ctx.sdfg ~src:ctx.tail ~dst:join.s_label ();
      let else_entry = Sdfg.add_state ctx.sdfg (fresh_label ctx "else") in
      Sdfg.add_istate_edge ctx.sdfg
        ~cond:(Bexpr.eq (Expr.sym cname) Expr.zero)
        ~src:fork ~dst:else_entry.s_label ();
      ctx.tail <- else_entry.s_label;
      List.iter (lower_stmt ctx) else_s;
      ctx.env <- saved_env;
      Sdfg.add_istate_edge ctx.sdfg ~src:ctx.tail ~dst:join.s_label ();
      ctx.tail <- join.s_label
  | SFor (hdr, body) ->
      let sym = Dcir_support.Id_gen.fresh ctx.gen hdr.var in
      let init = index_expr ctx hdr.init in
      let bound = index_expr ctx hdr.bound in
      let cond =
        match hdr.cmp with
        | Lt -> Bexpr.lt (Expr.sym sym) bound
        | Le -> Bexpr.le (Expr.sym sym) bound
        | Gt -> Bexpr.gt (Expr.sym sym) bound
        | Ge -> Bexpr.ge (Expr.sym sym) bound
        | _ -> err "invalid loop comparison"
      in
      let guard = Sdfg.add_state ctx.sdfg (fresh_label ctx "guard") in
      Sdfg.add_istate_edge ctx.sdfg ~assign:[ (sym, init) ] ~src:ctx.tail
        ~dst:guard.s_label ();
      let body_entry = Sdfg.add_state ctx.sdfg (fresh_label ctx "body") in
      Sdfg.add_istate_edge ctx.sdfg ~cond ~src:guard.s_label
        ~dst:body_entry.s_label ();
      let saved_env = ctx.env in
      ctx.env <- (hdr.var, VSym sym) :: ctx.env;
      ctx.tail <- body_entry.s_label;
      ctx.loop_depth <- ctx.loop_depth + 1;
      List.iter (lower_stmt ctx) body;
      ctx.loop_depth <- ctx.loop_depth - 1;
      ctx.env <- saved_env;
      Sdfg.add_istate_edge ctx.sdfg
        ~assign:[ (sym, Expr.add (Expr.sym sym) (Expr.int hdr.step)) ]
        ~src:ctx.tail ~dst:guard.s_label ();
      let exit_s = Sdfg.add_state ctx.sdfg (fresh_label ctx "endfor") in
      Sdfg.add_istate_edge ctx.sdfg
        ~cond:(Bexpr.simplify (Bexpr.Not cond))
        ~src:guard.s_label ~dst:exit_s.s_label ();
      ctx.tail <- exit_s.s_label
  | SWhile _ -> err "while loops are outside the supported subset"
  | SReturn _ -> err "return must be the final statement"
  | SFree _ -> () (* implicit lifetime *)
  | SBlock ss ->
      let saved = ctx.env in
      List.iter (lower_stmt ctx) ss;
      ctx.env <- saved

(* ------------------------------------------------------------------ *)

(** Translate one C function directly to an SDFG. *)
let compile_func (f : func_def) : Sdfg.t =
  let sdfg = Sdfg.create f.name in
  let ctx =
    {
      sdfg;
      env = [];
      tail = "";
      loop_depth = 0;
      gen = Dcir_support.Id_gen.create ();
    }
  in
  (* Parameters. *)
  List.iter
    (fun (pname, pty) ->
      let cname = "_" ^ pname in
      match pty with
      | TArr (elem, dims) ->
          ignore
            (Sdfg.add_container sdfg ~transient:false ~storage:Sdfg.Heap
               ~dtype:(dtype_of_cty elem)
               ~shape:(List.map Expr.int dims) cname);
          ctx.env <- (pname, VArray cname) :: ctx.env
      | TPtr elem ->
          let s = Dcir_support.Id_gen.fresh ctx.gen "s" in
          sdfg.arg_symbols <- sdfg.arg_symbols @ [ s ];
          ignore
            (Sdfg.add_container sdfg ~transient:false ~storage:Sdfg.Heap
               ~dtype:(dtype_of_cty elem)
               ~shape:[ Expr.sym s ] cname);
          ctx.env <- (pname, VArray cname) :: ctx.env
      | TInt | TFloat | TDouble ->
          ignore
            (Sdfg.add_container sdfg ~transient:false ~storage:Sdfg.Register
               ~dtype:(dtype_of_cty pty) ~shape:[] cname);
          ctx.env <- (pname, VScalar cname) :: ctx.env
      | TVoid -> err "unsupported parameter type")
    f.params;
  sdfg.param_order <- List.map (fun (p, _) -> "_" ^ p) f.params;
  let entry = Sdfg.add_state sdfg "init" in
  ctx.tail <- entry.s_label;
  (* Body with trailing return. *)
  let rec go = function
    | [] -> ()
    | [ SReturn None ] -> ()
    | [ SReturn (Some e) ] -> (
        match e with
        | EVar v when (match lookup ctx v with VScalar _ -> true | _ -> false)
          -> (
            match lookup ctx v with
            | VScalar c -> sdfg.return_scalar <- Some c
            | _ -> ())
        | e ->
            let rname = Sdfg.fresh_name sdfg "c_ret" in
            ignore
              (Sdfg.add_container sdfg ~transient:true ~storage:Sdfg.Register
                 ~dtype:(dtype_of_cty (value_cty ctx e)) ~shape:[] rname);
            ctx.env <- ("__ret", VScalar rname) :: ctx.env;
            lower_stmt ctx (SAssign (EVar "__ret", OpAssign, e));
            sdfg.return_scalar <- Some rname)
    | s :: rest ->
        lower_stmt ctx s;
        go rest
  in
  go f.body;
  sdfg

(** Parse, check, and translate; [entry] selects the function. *)
let compile (src : string) ~(entry : string) : Sdfg.t =
  let prog = C_sema.check (C_parser.parse_program src) in
  match List.find_opt (fun f -> String.equal f.name entry) prog.funcs with
  | Some f -> compile_func f
  | None -> err "no function '%s'" entry
