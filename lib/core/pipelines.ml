(** The five compiler products of the evaluation (§7.1), as pass pipelines
    over the shared substrates:

    - [Gcc], [Clang]: production-compiler proxies — full control-centric
      optimization on the MLIR form (mem2reg, canonicalize, CSE, DCE,
      inlining, LICM, adjacent-loop fusion, register promotion; Clang
      additionally forwards stores to loads across straight-line code);
    - [Mlir]: the Polygeist + mlir-opt pipeline — control-centric passes
      only, {e without} loop fusion or register promotion (the
      memref-conservatism gap §7.2 measures);
    - [Dace]: the DaCe C frontend baseline — no control-centric passes,
      opaque per-statement tasklets, full data-centric pipeline;
    - [Dcir]: the paper's contribution — the MLIR pipeline, then conversion
      to the sdfg dialect, translation to the SDFG IR, and the full
      data-centric pipeline.

    All products execute on the same simulated machine; an optional
    cost-model override selects the ICC/SLEEF vector-math variant (§7.3). *)

open Dcir_mlir
open Dcir_machine
module P = Dcir_mlir_passes
module Sdfg = Dcir_sdfg.Sdfg
module Obs = Dcir_obs.Obs
module Json = Dcir_obs.Json
module Events = Dcir_obs.Events
module Om = Dcir_obs.Metrics
module Budget = Dcir_resilience.Budget
module Chaos = Dcir_resilience.Chaos
module Journal = Dcir_resilience.Journal

type kind = Gcc | Clang | Mlir | Dace | Dcir

let kind_name = function
  | Gcc -> "gcc"
  | Clang -> "clang"
  | Mlir -> "mlir"
  | Dace -> "dace"
  | Dcir -> "dcir"

let all_kinds = [ Gcc; Clang; Mlir; Dace; Dcir ]

type compiled =
  | CMlir of Ir.modul
  | CSdfg of Sdfg.t

exception Pipeline_error of string

module Diag = Dcir_support.Diagnostics

(* ------------------------------------------------------------------ *)
(* Compilation *)

let base_passes : Pass.t list =
  [ P.Mem2reg.pass; P.Canonicalize.pass; P.Cse.pass; P.Dce.pass ]

let control_passes (kind : kind) : Pass.t list =
  match kind with
  | Gcc ->
      base_passes
      @ [
          P.Inline.pass; P.Licm.pass; P.Lcm.pass; P.Loop_fusion.pass;
          P.Reg_promote.pass;
        ]
  | Clang ->
      base_passes
      @ [
          P.Inline.pass; P.Licm.pass; P.Store_forward.pass; P.Lcm.pass;
          P.Loop_fusion.pass; P.Reg_promote.pass;
        ]
  | Mlir ->
      (* loop-invariant code motion, DCE, CSE, inlining (§4) — no fusion,
         register promotion, or PRE at the memref level: the paper's
         MLIR proxy is deliberately the weakest control pipeline. *)
      base_passes @ [ P.Inline.pass; P.Licm.pass; P.Store_forward.pass ]
  | Dcir ->
      base_passes
      @ [ P.Inline.pass; P.Licm.pass; P.Store_forward.pass; P.Lcm.pass ]
  | Dace -> []

(* ------------------------------------------------------------------ *)
(* Optimization tiers — the rungs of the graceful-degradation ladder. *)

type tier = O2 | O1 | O0 | Unopt

let tier_name = function
  | O2 -> "O2"
  | O1 -> "O1"
  | O0 -> "O0"
  | Unopt -> "unoptimized"

let next_tier = function
  | O2 -> Some O1
  | O1 -> Some O0
  | O0 -> Some Unopt
  | Unopt -> None

(* Higher rank = more optimization. *)
let tier_rank = function O2 -> 3 | O1 -> 2 | O0 -> 1 | Unopt -> 0

(* Control-centric pass set at each tier: [O2] is the pipeline's full
   set, [O1] keeps only the base simplifications, below that nothing
   runs. *)
let control_passes_at (tier : tier) (kind : kind) : Pass.t list =
  match tier with
  | O2 -> control_passes kind
  | O1 -> ( match kind with Dace -> [] | _ -> base_passes)
  | O0 | Unopt -> []

(* Data-centric stage selection: [O2] = full pipeline, [O1] drops memory
   scheduling, [O0] keeps only simplify, [Unopt] runs no passes at all. *)
let dace_levels_at (tier : tier) : bool * bool * bool =
  (* (run_at_all, o1, o2) *)
  match tier with
  | O2 -> (true, true, true)
  | O1 -> (true, true, false)
  | O0 -> (true, false, false)
  | Unopt -> (false, false, false)

(* Compile phases, each recording an {!Obs} span (no-ops when telemetry is
   disabled) so `--timing`/`--trace` show where compile time goes, and a
   PHASE decision event when a stream is installed. Each phase translates
   its subsystem's ad-hoc exceptions into a structured {!Diag.Error}
   carrying a stable code and the phase name, so the CLI (and the fuzz
   oracle) can render one-line diagnostics with meaningful exit codes
   instead of backtraces. *)

let phase_span (name : string) (f : unit -> 'a) : 'a =
  Events.emit ~code:"PHASE" [ ("name", Json.Str name) ];
  Obs.with_span ~cat:"phase" name f

(* Charge-back accounting: when a budget and an event stream are both
   live, report the fuel a phase consumed as a BUDGET-SPEND event — also
   on the exhaustion path, where the spend is exactly what tripped the
   ladder. *)
let with_fuel_spend ?(budget : Budget.t option) (phase : string)
    (f : unit -> 'a) : 'a =
  match budget with
  | Some b when Events.active () ->
      let fuel0 = b.Budget.fuel in
      Fun.protect
        ~finally:(fun () ->
          Events.emit ~code:"BUDGET-SPEND"
            [
              ("phase", Json.Str phase);
              ("resource", Json.Str "fuel");
              ("spent", Json.Int (b.Budget.fuel - fuel0));
            ])
        f
  | _ -> f ()

let frontend_phase (src : string) : Ir.modul =
  phase_span "c-frontend" (fun () ->
      try Dcir_cfront.Polygeist.compile src with
      | Dcir_cfront.C_lexer.Lex_error msg ->
          Diag.fail ~code:"E-LEX" ~phase:Diag.Frontend "%s" msg
      | Dcir_cfront.C_parser.Parse_error msg ->
          Diag.fail ~code:"E-PARSE" ~phase:Diag.Frontend "%s" msg
      | Dcir_cfront.C_sema.Sema_error msg ->
          Diag.fail ~code:"E-SEMA" ~phase:Diag.Frontend "%s" msg
      | Dcir_cfront.Polygeist.Lower_error msg ->
          Diag.fail ~code:"E-LOWER" ~phase:Diag.Frontend "%s" msg)

let control_phase ?(checked = false) ?budget ?reproducer_dir
    ~(passes : Pass.t list) (m : Ir.modul) : unit =
  phase_span "control-passes" (fun () ->
      let _, (st : Pass.pipeline_stats) =
        Pass.run_to_fixpoint_stats ~checked ?budget ?reproducer_dir passes m
      in
      Obs.set_args
        (("rounds", Json.Int st.rounds)
        ::
        (if st.incidents = [] then []
         else [ ("rollbacks", Json.Int (List.length st.incidents)) ])))

let verify_phase (m : Ir.modul) : unit =
  phase_span "verify" (fun () ->
      try Verifier.verify_exn m
      with Failure msg -> Diag.fail ~code:"E-VERIFY" ~phase:Diag.Verify "%s" msg)

(** Conflict report of the most recent auto-parallelizing compile — one
    entry per loop inspected by {!Dcir_autopar.Loop_to_map.parallelize}.
    [None] until a [~autopar:true] compile runs. *)
let last_autopar_report : Dcir_autopar.Loop_to_map.report option ref =
  ref None

let autopar_phase (sdfg : Sdfg.t) : unit =
  phase_span "autopar" (fun () ->
      let report = Dcir_autopar.Loop_to_map.parallelize sdfg in
      last_autopar_report := Some report;
      let converted =
        List.length
          (List.filter
             (fun (e : Dcir_autopar.Loop_to_map.entry) ->
               match e.en_outcome with
               | Dcir_autopar.Loop_to_map.Converted _ -> true
               | Dcir_autopar.Loop_to_map.Rejected _ -> false)
             report)
      in
      Obs.set_args
        [
          ("loops", Json.Int (List.length report));
          ("converted", Json.Int converted);
        ];
      match Dcir_sdfg.Validate.errors sdfg with
      | [] -> ()
      | errs ->
          Diag.fail ~code:"E-AUTOPAR-VERIFY" ~phase:Diag.DataOpt "%s"
            (String.concat "; "
               (List.map
                  (fun (d : Dcir_sdfg.Validate.diagnostic) -> d.message)
                  errs)))

let dace_phase ?(checked = false) ?budget ?reproducer_dir ?(o1 = true)
    ?(o2 = true) ~(disable : string list) (sdfg : Sdfg.t) : unit =
  phase_span "dace-optimize" (fun () ->
      let (st : Dcir_dace_passes.Driver.stats) =
        Dcir_dace_passes.Driver.optimize ~o1 ~o2 ~disable ~checked ?budget
          ?reproducer_dir sdfg
      in
      Obs.set_args
        ([
           ("rounds", Json.Int st.rounds);
           ("eliminated_containers", Json.Int st.eliminated_containers);
         ]
        @
        if st.incidents = [] then []
        else [ ("rollbacks", Json.Int (List.length st.incidents)) ]))

(** Compile [src] under pipeline [kind]. [~checked] runs every optimization
    pass (control-centric and data-centric) under snapshot / re-verify /
    rollback — see {!Dcir_mlir.Pass} and {!Dcir_dace_passes.Driver};
    [reproducer_dir] overrides where crash reproducers land. [~autopar]
    additionally runs the loop→map auto-parallelizer on SDFG products
    (Dace/Dcir) after data-centric optimization, leaving the conflict
    report in {!last_autopar_report}; it is off by default so the standard
    pipelines are unchanged.

    [tier] selects the optimization level ({!O2}, the default, is the
    full pipeline); [budget] charges optimization fuel for every pass
    application; [validate] re-validates SDFG products after data-centric
    optimization (an [E-VALIDATE] diagnostic instead of latent
    corruption — the degradation ladder always sets it). *)
let compile ?(optimize_sdfg = true) ?(disable = []) ?(checked = false)
    ?(autopar = false) ?budget ?(tier = O2) ?(validate = false)
    ?reproducer_dir (kind : kind) ~(src : string) ~(entry : string) :
    compiled =
  let run_all, dace_o1, dace_o2 = dace_levels_at tier in
  let control m =
    (* [disable] names passes by pname on both sides of the bridge: a name
       matching a control pass drops it here, anything else is forwarded to
       the data-centric driver below. *)
    match
      List.filter
        (fun (p : Pass.t) -> not (List.mem p.Pass.pname disable))
        (control_passes_at tier kind)
    with
    | [] -> ()
    | passes ->
        with_fuel_spend ?budget "control-passes" (fun () ->
            control_phase ~checked ?budget ?reproducer_dir ~passes m)
  in
  let dace_opt sdfg =
    if optimize_sdfg && run_all then
      with_fuel_spend ?budget "dace-optimize" (fun () ->
          dace_phase ~checked ?budget ?reproducer_dir ~o1:dace_o1 ~o2:dace_o2
            ~disable sdfg);
    if autopar then autopar_phase sdfg;
    if validate then
      match Dcir_sdfg.Validate.errors sdfg with
      | [] -> ()
      | errs ->
          Diag.fail ~code:"E-VALIDATE" ~phase:Diag.Validate "%s"
            (String.concat "; "
               (List.map
                  (fun (d : Dcir_sdfg.Validate.diagnostic) -> d.message)
                  errs))
  in
  Obs.with_span ~cat:"pipeline"
    ("compile:" ^ kind_name kind)
    (fun () ->
      match kind with
      | Gcc | Clang | Mlir ->
          let m = frontend_phase src in
          control m;
          verify_phase m;
          CMlir m
      | Dace ->
          let sdfg =
            phase_span "dace-frontend" (fun () ->
                try Dace_frontend.compile src ~entry with
                | Dace_frontend.Frontend_error msg ->
                    Diag.fail ~code:"E-DACE-FRONTEND" ~phase:Diag.Frontend
                      "%s" msg
                | Dcir_cfront.C_lexer.Lex_error msg ->
                    Diag.fail ~code:"E-LEX" ~phase:Diag.Frontend "%s" msg
                | Dcir_cfront.C_parser.Parse_error msg ->
                    Diag.fail ~code:"E-PARSE" ~phase:Diag.Frontend "%s" msg
                | Dcir_cfront.C_sema.Sema_error msg ->
                    Diag.fail ~code:"E-SEMA" ~phase:Diag.Frontend "%s" msg)
          in
          dace_opt sdfg;
          CSdfg sdfg
      | Dcir ->
          let m = frontend_phase src in
          control m;
          verify_phase m;
          let converted =
            phase_span "convert" (fun () ->
                try Converter.convert_module m
                with Converter.Conversion_error msg ->
                  Diag.fail ~code:"E-CONVERT" ~phase:Diag.Convert "%s" msg)
          in
          let sdfg =
            phase_span "translate" (fun () ->
                try Translator.translate_module converted ~entry
                with Translator.Translation_error msg ->
                  Diag.fail ~code:"E-TRANSLATE" ~phase:Diag.Translate "%s" msg)
          in
          dace_opt sdfg;
          CSdfg sdfg)

(* ------------------------------------------------------------------ *)
(* Graceful degradation: retry failed compiles down the tier ladder. *)

type degradation = {
  deg_tier : tier;  (** the tier that failed *)
  deg_code : string;  (** stable classification (diagnostic/budget code) *)
  deg_detail : string;  (** human-readable reason *)
}

type resilience_report = {
  res_requested : tier;
  res_landed : tier;
  res_degradations : degradation list;  (** chronological, [[]] = clean *)
  res_dropped : string list;
      (** optimization work dropped relative to the request: control pass
          names and data-centric stage names *)
}

let dace_stage_names (t : tier) (kind : kind) : string list =
  match kind with
  | Dace | Dcir -> (
      match t with
      | O2 -> [ "simplify"; "reduce-data-movement"; "memory-scheduling" ]
      | O1 -> [ "simplify"; "reduce-data-movement" ]
      | O0 -> [ "simplify" ]
      | Unopt -> [])
  | Gcc | Clang | Mlir -> []

let dropped_between ~(requested : tier) ~(landed : tier) (kind : kind) :
    string list =
  let control t =
    List.map (fun (p : Pass.t) -> p.Pass.pname) (control_passes_at t kind)
  in
  let keep_control = control landed and keep_stages = dace_stage_names landed kind in
  List.filter (fun p -> not (List.mem p keep_control)) (control requested)
  @ List.filter
      (fun s -> not (List.mem s keep_stages))
      (dace_stage_names requested kind)

(* Stable classification of a compile failure — diagnostic codes, budget
   codes, chaos fault names. Journal entries use only this (raw messages
   can embed globally-allocated SSA ids, which would break journal
   byte-reproducibility). *)
let classify_exn (e : exn) : string =
  match e with
  | Budget.Exhausted (k, _) -> Budget.kind_code k
  | Diag.Error d -> d.code
  | Chaos.Injected (f, _) -> "chaos:" ^ Chaos.fault_name f
  | Machine.Fault _ -> "E-FAULT"
  | Failure _ -> "E-FAILURE"
  | e -> "E-EXN:" ^ Printexc.exn_slot_name e

let describe_exn (e : exn) : string =
  match e with Diag.Error d -> Diag.to_string d | e -> Printexc.to_string e

(** Compile with the graceful-degradation ladder: attempt [tier] (default
    {!O2}); when a pass exhausts its fuel, fails verification, or
    crashes, retry one tier lower (O2 → O1 → O0 → unoptimized), always
    returning a runnable artifact plus the report of what was dropped and
    why. Each attempt restarts from a fresh frontend module under a fresh
    fuel budget built from [limits]. Frontend rejections (invalid input)
    are not degradable and re-raise; so does a failure of the final
    unoptimized rung (nothing is left to drop).

    [floor] (default {!Unopt}) bounds the ladder from below: the
    degradation stops — re-raising the failure — rather than attempt a
    tier below it. [~floor] equal to [~tier] makes a single-rung ladder,
    which is how [dcir serve] distributes the ladder across its retry
    queue: each attempt runs exactly one tier, and the serve-side
    escalator re-queues the request at the next tier with backoff.

    [budget], when given, is charged instead of a fresh per-rung budget
    built from [limits] — the caller reads the spend off it afterwards
    (serve uses this for cross-request tenant accounting) and is then
    responsible for applying {!Chaos.fuel_limit} itself. *)
let compile_resilient ?(tier = O2) ?(floor = Unopt) ?(limits = Budget.default)
    ?budget ?(checked = false) ?(autopar = false) ?(disable = [])
    ?reproducer_dir (kind : kind) ~(src : string) ~(entry : string) :
    compiled * resilience_report =
  let rec attempt (t : tier) (degs : degradation list) =
    let budget =
      match budget with
      | Some b -> b
      | None ->
          let fuel = Chaos.fuel_limit ~default:limits.Budget.max_fuel in
          Budget.create ~limits:{ limits with Budget.max_fuel = fuel } ()
    in
    Events.emit ~code:"TIER-TRY"
      [
        ("pipeline", Json.Str (kind_name kind));
        ("tier", Json.Str (tier_name t));
      ];
    match
      compile ~disable ~checked
        ~autopar:(autopar && t <> Unopt)
        ~budget ~tier:t ~validate:true ?reproducer_dir kind ~src ~entry
    with
    | compiled ->
        let report =
          {
            res_requested = tier;
            res_landed = t;
            res_degradations = List.rev degs;
            res_dropped = dropped_between ~requested:tier ~landed:t kind;
          }
        in
        Events.emit ~code:"TIER-LAND"
          [
            ("pipeline", Json.Str (kind_name kind));
            ("requested", Json.Str (tier_name tier));
            ("landed", Json.Str (tier_name t));
            ("degradations", Json.Int (List.length report.res_degradations));
            ("dropped", Json.Int (List.length report.res_dropped));
          ];
        if degs <> [] then
          Journal.note ~kind:"degraded"
            [
              ("pipeline", Json.Str (kind_name kind));
              ("requested", Json.Str (tier_name tier));
              ("landed", Json.Str (tier_name t));
              ("dropped", Json.Int (List.length report.res_dropped));
            ];
        (compiled, report)
    | exception (Diag.Error { phase = Diag.Frontend; _ } as e) -> raise e
    | exception e -> (
        let code = classify_exn e in
        Journal.note ~kind:"tier-failed"
          [
            ("pipeline", Json.Str (kind_name kind));
            ("tier", Json.Str (tier_name t));
            ("reason", Json.Str code);
          ];
        let deg = { deg_tier = t; deg_code = code; deg_detail = describe_exn e } in
        match next_tier t with
        | Some t' when tier_rank t' >= tier_rank floor ->
            attempt t' (deg :: degs)
        | Some _ | None -> raise e)
  in
  attempt tier []

(** One line per ladder event, for CLI degradation reports. *)
let resilience_report_lines (r : resilience_report) : string list =
  if r.res_degradations = [] then []
  else
    List.map
      (fun d ->
        Printf.sprintf "degraded: tier %s failed (%s): %s" (tier_name d.deg_tier)
          d.deg_code d.deg_detail)
      r.res_degradations
    @ [
        Printf.sprintf "landed at tier %s; dropped: %s" (tier_name r.res_landed)
          (match r.res_dropped with
          | [] -> "(nothing)"
          | l -> String.concat ", " l);
      ]

(* ------------------------------------------------------------------ *)
(* Execution *)

type arg =
  | AFloatArr of float array * int array  (** data, dims *)
  | AIntArr of int array * int array
  | AInt of int
  | AFloat of float

type run_result = {
  return_value : Value.t option;
  outputs : (int * Value.t array) list;
      (** arg position -> final contents, for array args *)
  metrics : Metrics.t;
  exec_tier : string;
      (** the tier that actually executed: "tree", "plan" or "bytecode" —
          for [`Adaptive] runs, the {!Dcir_bytecode.Tierup} decision *)
}

let reset_metrics (m : Metrics.t) : unit =
  m.cycles <- 0.0;
  m.loads <- 0;
  m.stores <- 0;
  m.bytes_loaded <- 0;
  m.bytes_stored <- 0;
  m.int_ops <- 0;
  m.fp_ops <- 0;
  m.math_calls <- 0;
  m.branches <- 0;
  m.heap_allocs <- 0;
  m.heap_frees <- 0;
  m.heap_bytes <- 0;
  m.stack_allocs <- 0;
  m.l1_misses <- 0;
  m.l2_misses <- 0;
  m.l3_misses <- 0;
  m.l1_accesses <- 0

(* Materialize argument buffers (uncharged: the harness owns them, like
   Polybench's pre-allocated arrays). *)
let make_buffers (machine : Machine.t) (args : arg list) :
    (arg * Machine.buffer option) list =
  let bufs =
    List.map
      (fun a ->
        match a with
        | AFloatArr (data, _) ->
            let b =
              Machine.alloc machine ~storage:Machine.Heap
                ~elems:(Array.length data) ~elem_bytes:8
                ~zero_init:(Value.VFloat 0.0)
            in
            Array.iteri (fun i v -> Machine.poke b i (Value.VFloat v)) data;
            (a, Some b)
        | AIntArr (data, _) ->
            let b =
              Machine.alloc machine ~storage:Machine.Heap
                ~elems:(Array.length data) ~elem_bytes:8
                ~zero_init:(Value.VInt 0)
            in
            Array.iteri (fun i v -> Machine.poke b i (Value.VInt v)) data;
            (a, Some b)
        | AInt _ | AFloat _ -> (a, None))
      args
  in
  reset_metrics (Machine.metrics machine);
  bufs

let snapshot_outputs (bufs : (arg * Machine.buffer option) list) :
    (int * Value.t array) list =
  List.mapi (fun i (_, b) -> (i, b)) bufs
  |> List.filter_map (fun (i, b) ->
         Option.map (fun buf -> (i, Machine.snapshot buf)) b)

(** Interpreter execution strategy, for both IRs: [`Compiled] (default)
    builds one-time execution plans (closure arrays / per-state compiled
    programs); [`Tree] walks the IR directly; [`Bytecode] lowers SDFG
    products one level further, to the flat register VM of
    {!Dcir_bytecode}; [`Adaptive] picks plan vs bytecode per program via
    the deterministic {!Dcir_bytecode.Tierup} policy (interpret → plan →
    bytecode laddering), journaling the choice as [EXEC-TIER] events.
    Outputs, traps and machine metrics are bit-identical across all
    modes — they differ only in host-side wall-clock. MLIR products have
    no bytecode lowering; [`Bytecode]/[`Adaptive] fall back to the
    compiled closure interpreter there. *)
type interp_mode = [ `Tree | `Compiled | `Bytecode | `Adaptive ]

(* Compiled SDFG plans are reusable across runs — bench repetitions, and
   (the compile-once/run-many payoff of the shared representation) across
   independent requests of a serving session. The store is
   content-addressed: plans are keyed by a digest of the printed program
   ({!Dcir_support.Digest} over {!Dcir_sdfg.Printer}), so two
   structurally identical SDFGs — e.g. the same source submitted by two
   tenants — share one compiled plan. Sharded buckets + LRU eviction
   with a configurable capacity live in {!Dcir_support.Cstore}. *)

module Cstore = Dcir_support.Cstore
module Cdigest = Dcir_support.Digest

let default_plan_cache_capacity = 16

let plan_store : Dcir_sdfg.Interp.plan Cstore.t ref =
  ref (Cstore.create ~capacity:default_plan_cache_capacity ())

(* Printing a large SDFG on every lookup would tax the hot bench path, so
   digests are memoized by physical identity (the old cache's key),
   bounded like the store itself. A mutated SDFG keeps its stale digest —
   exactly the staleness contract of the identity-keyed cache this store
   replaces; passes never mutate an SDFG after compilation. *)
let digest_memo : (Sdfg.t * string) list ref = ref []
let digest_memo_cap = 32

let digest_of_sdfg (sdfg : Sdfg.t) : string =
  match
    List.find_opt (fun (s, _) -> s == sdfg) !digest_memo
  with
  | Some (_, d) -> d
  | None ->
      (* Canonicalize before hashing: printed node ids come from a
         process-global counter, so the raw text depends on compilation
         history; the digest must be a pure function of structure. *)
      let d =
        Cdigest.of_string
          (Cdigest.canonical (Dcir_sdfg.Printer.to_string sdfg))
      in
      digest_memo :=
        (sdfg, d)
        :: (if List.length !digest_memo >= digest_memo_cap then
              List.filteri (fun i _ -> i < digest_memo_cap - 1) !digest_memo
            else !digest_memo);
      d

(* Cache telemetry: always-on counters (surfaced by `dcir bench --json`
   and the `dcir serve` journal) plus per-lookup decision events. *)
let pc_hits = Om.Counter.make "plan_cache.hits"
let pc_misses = Om.Counter.make "plan_cache.misses"
let pc_evictions = Om.Counter.make "plan_cache.evictions"
let pc_size = Om.Gauge.make "plan_cache.size"

(* Bytecode programs live in a second content-addressed store under the
   same digests, so a serve session can hold both artifacts for a hot
   program (the adaptive policy may run it at either tier over its
   lifetime). Cache events share the PLAN-* codes, distinguished by an
   ["artifact"] field. *)
let program_store : Dcir_bytecode.Isa.program Cstore.t ref =
  ref (Cstore.create ~capacity:default_plan_cache_capacity ())

let bc_hits = Om.Counter.make "bytecode_cache.hits"
let bc_misses = Om.Counter.make "bytecode_cache.misses"
let bc_evictions = Om.Counter.make "bytecode_cache.evictions"
let bc_size = Om.Gauge.make "bytecode_cache.size"

(** Resize the artifact stores (used by [dcir serve --plan-cache]); drops
    every cached plan and bytecode program, and resets the tier-up
    registry. Capacity 0 disables caching entirely. *)
let set_plan_cache_capacity ?shards (capacity : int) : unit =
  plan_store := Cstore.create ?shards ~capacity ();
  program_store := Cstore.create ?shards ~capacity ();
  Dcir_bytecode.Tierup.reset ();
  digest_memo := [];
  Om.Gauge.set pc_size 0;
  Om.Gauge.set bc_size 0

(** Drop all cached artifacts, digest memos and tier-up state without
    changing capacity. *)
let reset_plan_cache () : unit =
  Cstore.clear !plan_store;
  Cstore.clear !program_store;
  Dcir_bytecode.Tierup.reset ();
  digest_memo := [];
  Om.Gauge.set pc_size 0;
  Om.Gauge.set bc_size 0

let plan_cache_stats () : (string * Json.t) list =
  [
    ("hits", Json.Int (Om.Counter.value pc_hits));
    ("misses", Json.Int (Om.Counter.value pc_misses));
    ("evictions", Json.Int (Om.Counter.value pc_evictions));
    ("size", Json.Int (Om.Gauge.value pc_size));
  ]

(* --- Private artifact capture (multi-domain serving) ----------------
   The plan/bytecode stores and their counters are committed journal
   state: hits, misses and evictions must be a pure function of request
   commit order, never of worker scheduling. A serve worker domain
   therefore runs with capture enabled: {!plan_for}/{!program_for}
   compile privately (no store lookup, no counters, no events) and log a
   {!warm} op; at commit time the supervisor calls {!replay_warm} in
   commit order, which re-enters the normal store path with the
   precompiled artifact in hand — replicating the exact hit/miss/evict
   sequence of the sequential engine without recompiling. *)

type warm =
  | Warm_plan of Sdfg.t * Dcir_sdfg.Interp.plan
  | Warm_program of Sdfg.t * Dcir_bytecode.Isa.program

let private_capture : warm list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(** Start capturing store traffic on this domain. *)
let begin_private_capture () : unit =
  Domain.DLS.set private_capture (Some (ref []))

(** Stop capturing; returns the warm ops in program order. *)
let end_private_capture () : warm list =
  match Domain.DLS.get private_capture with
  | None -> []
  | Some acc ->
      Domain.DLS.set private_capture None;
      List.rev !acc

(** The compiled plan for [sdfg], through the content-addressed store: a
    hit may return a plan compiled from a {e different} (but
    print-identical) SDFG — callers execute [plan.pl_sdfg], which the
    cached-vs-fresh differential test pins to bit-identical outputs and
    machine metrics. [precompiled] (supervisor replay) supplies the
    artifact to store on a miss instead of compiling. *)
let plan_for ?(precompiled : Dcir_sdfg.Interp.plan option) (sdfg : Sdfg.t) :
    Dcir_sdfg.Interp.plan =
  match Domain.DLS.get private_capture with
  | Some acc ->
      let p =
        match precompiled with
        | Some p -> p
        | None -> Dcir_sdfg.Interp.compile_plan sdfg
      in
      acc := Warm_plan (sdfg, p) :: !acc;
      p
  | None -> (
      let key = digest_of_sdfg sdfg in
      match Cstore.find !plan_store key with
      | Some p ->
          Om.Counter.incr pc_hits;
          Events.emit ~code:"PLAN-HIT"
            [ ("size", Json.Int (Cstore.length !plan_store)) ];
          p
      | None ->
          Om.Counter.incr pc_misses;
          let p =
            match precompiled with
            | Some p -> p
            | None -> Dcir_sdfg.Interp.compile_plan sdfg
          in
          let evicted = Cstore.add !plan_store key p in
          List.iter
            (fun _ ->
              Om.Counter.incr pc_evictions;
              Events.emit ~code:"PLAN-EVICT"
                [ ("size", Json.Int (Cstore.length !plan_store)) ])
            evicted;
          Om.Gauge.set pc_size (Cstore.length !plan_store);
          Events.emit ~code:"PLAN-MISS"
            [ ("size", Json.Int (Cstore.length !plan_store)) ];
          p)

(** The lowered bytecode program for [sdfg], through the second
    content-addressed store — same hit semantics as {!plan_for}: callers
    execute [program.p_sdfg]. *)
let program_for ?(precompiled : Dcir_bytecode.Isa.program option)
    (sdfg : Sdfg.t) : Dcir_bytecode.Isa.program =
  match Domain.DLS.get private_capture with
  | Some acc ->
      let p =
        match precompiled with
        | Some p -> p
        | None -> Dcir_bytecode.Lower.lower sdfg
      in
      acc := Warm_program (sdfg, p) :: !acc;
      p
  | None -> (
      let key = digest_of_sdfg sdfg in
      match Cstore.find !program_store key with
      | Some p ->
          Om.Counter.incr bc_hits;
          Events.emit ~code:"PLAN-HIT"
            [
              ("artifact", Json.Str "bytecode");
              ("size", Json.Int (Cstore.length !program_store));
            ];
          p
      | None ->
          Om.Counter.incr bc_misses;
          let p =
            match precompiled with
            | Some p -> p
            | None -> Dcir_bytecode.Lower.lower sdfg
          in
          let evicted = Cstore.add !program_store key p in
          List.iter
            (fun _ ->
              Om.Counter.incr bc_evictions;
              Events.emit ~code:"PLAN-EVICT"
                [
                  ("artifact", Json.Str "bytecode");
                  ("size", Json.Int (Cstore.length !program_store));
                ])
            evicted;
          Om.Gauge.set bc_size (Cstore.length !program_store);
          Events.emit ~code:"PLAN-MISS"
            [
              ("artifact", Json.Str "bytecode");
              ("size", Json.Int (Cstore.length !program_store));
              ("instrs", Json.Int (Dcir_bytecode.Isa.size p));
            ];
          p)

(** Replay one captured warm op through the normal store path (commit
    order), reusing the worker's compiled artifact on a miss. *)
let replay_warm (w : warm) : unit =
  match w with
  | Warm_plan (sdfg, p) -> ignore (plan_for ~precompiled:p sdfg)
  | Warm_program (sdfg, p) -> ignore (program_for ~precompiled:p sdfg)

let run ?(cfg = Cost.default) ?(budget : Budget.t option)
    ?(profile : Obs.Profile.t option)
    ?(interp_mode : interp_mode = `Compiled) ?(jobs = 1)
    (compiled : compiled) ~(entry : string) (args : arg list) : run_result =
  Events.emit ~code:"EXEC-MODE"
    [
      ( "mode",
        Json.Str
          (match interp_mode with
          | `Tree -> "tree"
          | `Compiled -> "compiled"
          | `Bytecode -> "bytecode"
          | `Adaptive -> "adaptive") );
      ("ir", Json.Str (match compiled with CMlir _ -> "mlir" | CSdfg _ -> "sdfg"));
      ("jobs", Json.Int jobs);
    ];
  let emit_run_spend () =
    match budget with
    | Some b when Events.active () ->
        Events.emit ~code:"BUDGET-SPEND"
          [
            ("phase", Json.Str "execute");
            ("resource", Json.Str "steps");
            ("spent", Json.Int b.Budget.steps);
          ];
        Events.emit ~code:"BUDGET-SPEND"
          [
            ("phase", Json.Str "execute");
            ("resource", Json.Str "allocs");
            ("spent", Json.Int b.Budget.allocs);
          ]
    | _ -> ()
  in
  let machine = Machine.create ~cfg ?budget () in
  let bufs = make_buffers machine args in
  let result =
  match compiled with
  | CMlir m ->
      let rt_args =
        List.mapi
          (fun i (a, b) ->
            match (a, b) with
            | AFloatArr (_, dims), Some buf | AIntArr (_, dims), Some buf ->
                Interp.Buf { buf; dims }
            | AInt n, None -> Interp.Scalar (Value.VInt n)
            | AFloat f, None -> Interp.Scalar (Value.VFloat f)
            | (AFloatArr _ | AIntArr _), None ->
                raise
                  (Pipeline_error
                     (Printf.sprintf
                        "argument %d of @%s: array argument was not \
                         materialized into a buffer (expected an array \
                         buffer)"
                        i entry))
            | (AInt _ | AFloat _), Some _ ->
                raise
                  (Pipeline_error
                     (Printf.sprintf
                        "argument %d of @%s: scalar argument carries an \
                         array buffer (expected a plain int/float scalar)"
                        i entry)))
          bufs
      in
      (* MLIR products have no bytecode lowering — the register VM is an
         SDFG-side tier; bytecode/adaptive requests run the compiled
         closure interpreter here. *)
      let mode =
        match interp_mode with
        | `Tree -> Interp.Tree
        | `Compiled | `Bytecode | `Adaptive -> Interp.Compiled
      in
      let results, _ = Interp.run ~machine ?profile ~mode m ~entry rt_args in
      {
        return_value = (match results with v :: _ -> Some v | [] -> None);
        outputs = snapshot_outputs bufs;
        metrics = Machine.metrics machine;
        exec_tier = (match mode with Interp.Tree -> "tree" | _ -> "plan");
      }
  | CSdfg fresh_sdfg ->
      (* Resolve the execution artifact first: a content-addressed store
         hit may substitute a print-identical SDFG compiled earlier, and
         all argument binding below must target the SDFG the artifact
         closes over. Tree mode always walks the SDFG it was handed. *)
      let tier =
        match interp_mode with
        | `Tree -> `TreeT
        | `Compiled -> `PlanT (plan_for fresh_sdfg)
        | `Bytecode -> `ByteT (program_for fresh_sdfg)
        | `Adaptive -> (
            let digest = digest_of_sdfg fresh_sdfg in
            let choice, reason =
              Dcir_bytecode.Tierup.decide ~digest fresh_sdfg
            in
            Events.emit ~code:"EXEC-TIER"
              [
                ( "tier",
                  Json.Str
                    (match choice with
                    | `Bytecode -> "bytecode"
                    | `Plan -> "plan") );
                ("reason", Json.Str reason);
                ("digest", Json.Str (Dcir_bytecode.Tierup.short digest));
              ];
            match choice with
            | `Bytecode -> `ByteT (program_for fresh_sdfg)
            | `Plan -> `PlanT (plan_for fresh_sdfg))
      in
      let sdfg =
        match tier with
        | `TreeT -> fresh_sdfg
        | `PlanT p -> p.Dcir_sdfg.Interp.pl_sdfg
        | `ByteT prog -> prog.Dcir_bytecode.Isa.p_sdfg
      in
      if List.length sdfg.param_order <> List.length args then
        raise
          (Pipeline_error
             (Printf.sprintf "@%s expects %d arguments, got %d" entry
                (List.length sdfg.param_order)
                (List.length args)));
      let buffers = ref [] in
      let symbols = ref [] in
      let pos = ref (-1) in
      List.iter2
        (fun pname (a, b) ->
          incr pos;
          match (a, b) with
          | (AFloatArr (_, dims) | AIntArr (_, dims)), Some buf ->
              if Hashtbl.mem sdfg.containers pname then begin
                buffers := (pname, buf, dims) :: !buffers;
                (* Bind free size symbols from the concrete dims. *)
                let c = Sdfg.container sdfg pname in
                List.iteri
                  (fun i dim_expr ->
                    match dim_expr with
                    | Dcir_symbolic.Expr.Sym s
                      when not (List.mem_assoc s !symbols) ->
                        symbols := (s, dims.(i)) :: !symbols
                    | _ -> ())
                  c.shape
              end
          | AInt n, None ->
              if Hashtbl.mem sdfg.containers pname then begin
                let buf =
                  Machine.alloc machine ~storage:Machine.Register ~elems:1
                    ~elem_bytes:8 ~zero_init:(Value.VInt n)
                in
                Machine.poke buf 0 (Value.VInt n);
                buffers := (pname, buf, [||]) :: !buffers
              end;
              symbols := (pname, n) :: !symbols
          | AFloat f, None ->
              if Hashtbl.mem sdfg.containers pname then begin
                let buf =
                  Machine.alloc machine ~storage:Machine.Register ~elems:1
                    ~elem_bytes:8 ~zero_init:(Value.VFloat f)
                in
                Machine.poke buf 0 (Value.VFloat f);
                buffers := (pname, buf, [||]) :: !buffers
              end
          | (AFloatArr _ | AIntArr _), None ->
              raise
                (Pipeline_error
                   (Printf.sprintf
                      "argument %d ('%s') of @%s: array argument was not \
                       materialized into a buffer (expected an array \
                       buffer)"
                      !pos pname entry))
          | (AInt _ | AFloat _), Some _ ->
              raise
                (Pipeline_error
                   (Printf.sprintf
                      "argument %d ('%s') of @%s: scalar argument carries \
                       an array buffer (expected a plain int/float scalar)"
                      !pos pname entry)))
        sdfg.param_order bufs;
      let res =
        match tier with
        | `TreeT ->
            Dcir_sdfg.Interp.run ~machine ?profile ~jobs
              ~mode:Dcir_sdfg.Interp.Tree sdfg ~buffers:!buffers
              ~symbols:!symbols ()
        | `PlanT plan ->
            Dcir_sdfg.Interp.run ~machine ?profile ~jobs
              ~mode:Dcir_sdfg.Interp.Compiled ~plan sdfg
              ~buffers:!buffers ~symbols:!symbols ()
        | `ByteT prog ->
            Dcir_bytecode.Vm.run ~machine ?profile ~jobs prog
              ~buffers:!buffers ~symbols:!symbols ()
      in
      (match interp_mode with
      | `Adaptive ->
          Dcir_bytecode.Tierup.observe
            ~digest:(digest_of_sdfg fresh_sdfg)
            ?profile
            ~cycles:(Machine.metrics machine).cycles ()
      | _ -> ());
      {
        return_value = res.return_value;
        outputs = snapshot_outputs bufs;
        metrics = Machine.metrics machine;
        exec_tier =
          (match tier with
          | `TreeT -> "tree"
          | `PlanT _ -> "plan"
          | `ByteT _ -> "bytecode");
      }
  in
  emit_run_spend ();
  result

(* ------------------------------------------------------------------ *)
(* Whole-benchmark helper: compile once, run, verify against a reference. *)

type measurement = {
  pipeline : string;
  cycles : float;
  metrics : Metrics.t;
  correct : bool;
  profile : Obs.Profile.t option;
      (** runtime attribution, when requested via [with_profile] *)
  landed_tier : string option;
      (** the tier the degradation ladder landed at, in [~degrade] runs *)
}

(** Machine-readable form of one measurement — the schema `dcir bench
    --json` and `bench/main.exe --json` reports are built from. *)
let measurement_json (m : measurement) : Json.t =
  Json.Obj
    ([
      ("name", Json.Str m.pipeline);
      ("cycles", Json.Float m.cycles);
      ("loads", Json.Int m.metrics.loads);
      ("stores", Json.Int m.metrics.stores);
      ("bytes_moved", Json.Int (Metrics.bytes_moved m.metrics));
      ("heap_allocs", Json.Int m.metrics.heap_allocs);
      ("heap_bytes", Json.Int m.metrics.heap_bytes);
      ("l1_misses", Json.Int m.metrics.l1_misses);
      ("l2_misses", Json.Int m.metrics.l2_misses);
      ("l3_misses", Json.Int m.metrics.l3_misses);
      ("correct", Json.Bool m.correct);
    ]
    @ match m.landed_tier with
      | Some t -> [ ("tier", Json.Str t) ]
      | None -> [])

(** Run a workload through every pipeline; correctness is checked against
    the unoptimized MLIR interpretation (return value and array outputs,
    within floating-point reassociation tolerance). [with_profile] collects
    runtime attribution for each pipeline into [measurement.profile]. *)
let compare_pipelines ?(kinds = all_kinds) ?(cfg = Cost.default)
    ?(with_profile = false) ?(interp_mode : interp_mode = `Compiled)
    ?(limits = Budget.default) ?(degrade = false) ~(src : string)
    ~(entry : string) (args : arg list) : measurement list =
  let fresh_budget () = Budget.create ~limits () in
  (* Reference: direct lowering, no optimization at all. *)
  let reference =
    Obs.with_span ~cat:"run" "run:reference" (fun () ->
        let m = Dcir_cfront.Polygeist.compile src in
        run ~cfg ~budget:(fresh_budget ()) ~interp_mode (CMlir m) ~entry args)
  in
  (* Shape-safe: an optimized pipeline that produces outputs of a different
     shape than the reference must report [correct = false], never crash
     the harness ([List.for_all2]/[Array.for_all2] raise on length
     mismatch). *)
  let close_arrays (a : (int * Value.t array) list)
      (b : (int * Value.t array) list) : bool =
    List.length a = List.length b
    && List.for_all2
         (fun (i, x) (j, y) ->
           i = j
           && Array.length x = Array.length y
           && Array.for_all2 (fun u v -> Value.close ~rtol:1e-6 u v) x y)
         a b
  in
  List.map
    (fun kind ->
      let compiled, landed_tier =
        if degrade then
          let c, report = compile_resilient ~limits kind ~src ~entry in
          (c, Some (tier_name report.res_landed))
        else (compile ~budget:(fresh_budget ()) kind ~src ~entry, None)
      in
      let profile = if with_profile then Some (Obs.Profile.create ()) else None in
      let r =
        Obs.with_span ~cat:"run"
          ("run:" ^ kind_name kind)
          (fun () ->
            run ~cfg ~budget:(fresh_budget ()) ?profile ~interp_mode compiled
              ~entry args)
      in
      let correct =
        (match (r.return_value, reference.return_value) with
        | Some a, Some b -> Value.close ~rtol:1e-6 a b
        | None, None -> true
        | _ -> false)
        && close_arrays r.outputs reference.outputs
      in
      {
        pipeline = kind_name kind;
        cycles = r.metrics.cycles;
        metrics = r.metrics;
        correct;
        profile;
        landed_tier;
      })
    kinds
