(** [dcir explain]: decision provenance for one program.

    Compiles (and optionally executes) a program with the decision-event
    stream armed, then renders the stream as a human-readable causal
    narrative: which phases ran, which passes fired or were skipped (and
    by which breaker state), which loops the auto-parallelizer certified
    or refused (with the conflict witness), which tier the degradation
    ladder landed at, and what each phase cost in budgeted resources.
    Every line that explains a decision carries the stable event code in
    brackets, so narratives can be grepped and diffed across commits.

    The underlying stream is exposed ({!events}, {!write_events}) in the
    [dcir-events/1] schema; for a fixed input it is byte-identical across
    runs — the golden-test property. *)

module Obs = Dcir_obs.Obs
module Json = Dcir_obs.Json
module Events = Dcir_obs.Events
module Budget = Dcir_resilience.Budget

type t = {
  ex_kind : Pipelines.kind;
  ex_entry : string;
  ex_events : Events.t;
  ex_report : Pipelines.resilience_report option;
      (** [None] when even the unoptimized rung failed *)
  ex_error : string option;  (** classified compile failure *)
  ex_run_error : string option;  (** classified execution failure *)
}

let events (x : t) : Events.t = x.ex_events

(** Compile [src] through the degradation ladder (checked passes, autopar
    on — the full decision surface) with a fresh event stream installed;
    when [run] is set, also execute the artifact. Failures are captured
    into the narrative instead of escaping. *)
let explain ?(tier = Pipelines.O2) ?(limits = Budget.default)
    ?(checked = true) ?(run = true) ?(jobs = 1)
    ?(interp : Pipelines.interp_mode = `Compiled) (kind : Pipelines.kind)
    ~(src : string) ~(entry : string) ~(args : unit -> Pipelines.arg list) ()
    : t =
  let evs = Events.create () in
  Events.install evs;
  Fun.protect ~finally:Events.clear (fun () ->
      match
        Pipelines.compile_resilient ~tier ~limits ~checked ~autopar:true kind
          ~src ~entry
      with
      | compiled, report ->
          let run_error =
            if not run then None
            else begin
              Events.emit ~code:"PHASE" [ ("name", Json.Str "execute") ];
              match
                Pipelines.run ~budget:(Budget.create ~limits ()) ~jobs
                  ~interp_mode:interp compiled ~entry (args ())
              with
              | _ -> None
              | exception e ->
                  Some
                    (Pipelines.classify_exn e ^ ": " ^ Pipelines.describe_exn e)
            end
          in
          {
            ex_kind = kind;
            ex_entry = entry;
            ex_events = evs;
            ex_report = Some report;
            ex_error = None;
            ex_run_error = run_error;
          }
      | exception e ->
          {
            ex_kind = kind;
            ex_entry = entry;
            ex_events = evs;
            ex_report = None;
            ex_error =
              Some (Pipelines.classify_exn e ^ ": " ^ Pipelines.describe_exn e);
            ex_run_error = None;
          })

(* ------------------------------------------------------------------ *)
(* Rendering *)

let events_header (x : t) : (string * Json.t) list =
  [
    ("tool", Json.Str "dcir explain");
    ("pipeline", Json.Str (Pipelines.kind_name x.ex_kind));
    ("entry", Json.Str x.ex_entry);
  ]

let events_json (x : t) : Json.t =
  Events.to_json ~header:(events_header x) x.ex_events

let write_events (x : t) (path : string) : unit =
  Events.write ~header:(events_header x) x.ex_events path

(* PASS-ADMIT events are too numerous to narrate one per line; aggregate
   them per phase/tier section into "pass X: N run(s), M changed". *)
type admit_agg = {
  mutable agg_order : string list;  (* reversed *)
  agg_counts : (string, int * int) Hashtbl.t;
}

let new_agg () = { agg_order = []; agg_counts = Hashtbl.create 8 }

let agg_admit (a : admit_agg) (pass : string) (changed : bool) : unit =
  let runs, chg =
    Option.value ~default:(0, 0) (Hashtbl.find_opt a.agg_counts pass)
  in
  if runs = 0 then a.agg_order <- pass :: a.agg_order;
  Hashtbl.replace a.agg_counts pass
    (runs + 1, if changed then chg + 1 else chg)

let flush_agg (ppf : Format.formatter) (a : admit_agg) : unit =
  List.iter
    (fun pass ->
      let runs, chg = Hashtbl.find a.agg_counts pass in
      Format.fprintf ppf "    pass %-22s %d run(s), %d changed@." pass runs chg)
    (List.rev a.agg_order);
  a.agg_order <- [];
  Hashtbl.reset a.agg_counts

let pp (ppf : Format.formatter) (x : t) : unit =
  Format.fprintf ppf "explain: @%s via %s pipeline — %d decision event(s)@."
    x.ex_entry
    (Pipelines.kind_name x.ex_kind)
    (Events.length x.ex_events);
  (match x.ex_report with
  | Some r when r.Pipelines.res_landed = r.Pipelines.res_requested ->
      Format.fprintf ppf "tier: %s (no degradation)@."
        (Pipelines.tier_name r.Pipelines.res_landed)
  | Some r ->
      Format.fprintf ppf "tier: requested %s, landed %s@."
        (Pipelines.tier_name r.Pipelines.res_requested)
        (Pipelines.tier_name r.Pipelines.res_landed)
  | None -> ());
  (match x.ex_error with
  | Some e -> Format.fprintf ppf "compile failed: %s@." e
  | None -> ());
  let agg = new_agg () in
  let flush () = flush_agg ppf agg in
  List.iter
    (fun (e : Events.event) ->
      let s k = Events.str_field e k in
      let i k = Events.int_field e k in
      match e.Events.ev_code with
      | "TIER-TRY" ->
          flush ();
          Format.fprintf ppf "-- [TIER-TRY] attempting tier %s (%s) --@."
            (s "tier") (s "pipeline")
      | "PHASE" ->
          flush ();
          Format.fprintf ppf "  phase %s:@." (s "name")
      | "PASS-ADMIT" ->
          agg_admit agg (s "pass")
            (Events.field e "changed" = Some (Json.Bool true))
      | "PASS-LCM" ->
          flush ();
          if s "placement" = "local" then
            Format.fprintf ppf
              "    [PASS-LCM] %s: %d locally redundant %s occurrence(s) \
               reused@."
              (s "func") (i "deletes") (s "op")
          else
            Format.fprintf ppf
              "    [PASS-LCM] %s: moved %s to a %s insertion, %d \
               occurrence(s) deleted@."
              (s "func") (s "op") (s "placement") (i "deletes")
      | "PASS-SKIP" ->
          flush ();
          Format.fprintf ppf
            "    [PASS-SKIP] %s pass %s skipped: breaker %s after %d \
             failure(s)@."
            (s "domain") (s "pass") (s "breaker") (i "failures")
      | "PASS-ROLLBACK" ->
          flush ();
          Format.fprintf ppf
            "    [PASS-ROLLBACK] %s pass %s rolled back (round %d): %s@."
            (s "domain") (s "pass") (i "round") (s "reason")
      | "BRK-OPEN" ->
          flush ();
          Format.fprintf ppf "    [BRK-OPEN] breaker opened for %s: %s@."
            (s "pass") (s "detail")
      | "BRK-PROBATION" ->
          flush ();
          Format.fprintf ppf "    [BRK-PROBATION] %s re-admitted: %s@."
            (s "pass") (s "detail")
      | "BRK-CLOSE" ->
          flush ();
          Format.fprintf ppf "    [BRK-CLOSE] breaker closed for %s: %s@."
            (s "pass") (s "detail")
      | "APAR-CERT" ->
          flush ();
          Format.fprintf ppf
            "    [APAR-CERT] loop '%s' (sym %s): parallel — map state '%s' \
             [%s]@."
            (s "loop") (s "sym") (s "state") (s "classes")
      | "APAR-REFUSE" ->
          flush ();
          Format.fprintf ppf
            "    [APAR-REFUSE] loop '%s' (sym %s): not parallelized — %s@."
            (s "loop") (s "sym") (s "witness")
      | "BUDGET-SPEND" ->
          flush ();
          Format.fprintf ppf "    [BUDGET-SPEND] %s: %d %s@." (s "phase")
            (i "spent") (s "resource")
      | "TIER-FAIL" ->
          flush ();
          Format.fprintf ppf "  [TIER-FAIL] tier %s abandoned: %s@." (s "tier")
            (s "reason")
      | "TIER-LAND" ->
          flush ();
          if s "landed" = s "requested" then
            Format.fprintf ppf "  [TIER-LAND] landed at tier %s@." (s "landed")
          else
            Format.fprintf ppf
              "  [TIER-LAND] landed at tier %s (requested %s, dropped %d \
               optimization(s))@."
              (s "landed") (s "requested") (i "dropped")
      | "PLAN-HIT" ->
          flush ();
          let what =
            if s "artifact" = "bytecode" then "bytecode program"
            else "execution plan"
          in
          Format.fprintf ppf "    [PLAN-HIT] %s reused (cache size %d)@." what
            (i "size")
      | "PLAN-MISS" ->
          flush ();
          if s "artifact" = "bytecode" then
            Format.fprintf ppf
              "    [PLAN-MISS] bytecode program lowered, %d instruction(s) \
               (cache size %d)@."
              (i "instrs") (i "size")
          else
            Format.fprintf ppf
              "    [PLAN-MISS] execution plan compiled (cache size %d)@."
              (i "size")
      | "PLAN-EVICT" ->
          flush ();
          let what =
            if s "artifact" = "bytecode" then "bytecode program"
            else "plan"
          in
          Format.fprintf ppf
            "    [PLAN-EVICT] oldest %s evicted (cache size %d)@." what
            (i "size")
      | "TIER-UP" ->
          flush ();
          if s "trigger" = "static" then
            Format.fprintf ppf
              "    [TIER-UP] program %s promoted to bytecode: static cost \
               %d over threshold@."
              (s "digest") (i "cost")
          else
            Format.fprintf ppf
              "    [TIER-UP] program %s promoted to bytecode: %d cumulative \
               cycle(s) over %d run(s)%s@."
              (s "digest") (i "cycles") (i "runs")
              (match s "hot_state" with
              | "" -> ""
              | hs -> Printf.sprintf " (hottest state '%s')" hs)
      | "EXEC-TIER" ->
          flush ();
          Format.fprintf ppf
            "    [EXEC-TIER] program %s runs at the %s tier (%s)@."
            (s "digest") (s "tier") (s "reason")
      | "EXEC-MODE" ->
          flush ();
          Format.fprintf ppf
            "    [EXEC-MODE] %s interpreter, %s plans, %d job(s)@." (s "ir")
            (s "mode") (i "jobs")
      | "CHAOS-INJECT" ->
          flush ();
          Format.fprintf ppf "    [CHAOS-INJECT] injected fault: %s@."
            (s "fault")
      | _ -> ())
    (Events.events x.ex_events);
  flush ();
  (match x.ex_run_error with
  | Some e -> Format.fprintf ppf "execution failed: %s@." e
  | None -> ());
  (* Decision totals, computed from the stream itself. *)
  let count code = List.length (Events.with_code x.ex_events code) in
  Format.fprintf ppf
    "summary: %d loop(s) certified, %d refused; %d rollback(s); plan cache \
     %d hit(s) / %d miss(es) / %d eviction(s)@."
    (count "APAR-CERT") (count "APAR-REFUSE") (count "PASS-ROLLBACK")
    (count "PLAN-HIT") (count "PLAN-MISS") (count "PLAN-EVICT")

let to_string (x : t) : string = Format.asprintf "%a" pp x
