(** MLIR interpreter over the simulated machine.

    Executes the core dialects ([func], [scf], [arith], [math], [memref])
    against {!Dcir_machine.Machine}, charging the cost model for every
    operation and memory access. This is how "compiled binaries" run in this
    reproduction: each compiler proxy optimizes the IR with its own pass set
    and then executes here, so cycle counts reflect exactly the work its IR
    still performs.

    Semantics notes:
    - [arith.divsi]/[remsi] truncate toward zero (C semantics, matching what
      Polygeist emits for C division);
    - integer widths are not modeled (OCaml [int] everywhere) — the C subset
      used by the benchmarks never relies on wraparound. *)

open Dcir_machine

type bufinfo = { buf : Machine.buffer; dims : int array }
type rtval = Scalar of Value.t | Buf of bufinfo

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

(** Control outcome of one compiled op (see the compiled layer below). *)
type kctrl =
  | KContinue
  | KReturn of Value.t list  (** [func.return] reached *)
  | KYield of rtval list  (** [scf.yield] reached *)

type cfunc = {
  cf_func : Ir.func;
  cf_body : (unit -> kctrl) array;
  cf_rargs : Ir.value list;
}

type env = {
  machine : Machine.t;
  budget : Dcir_resilience.Budget.t;
      (** the machine's budget, cached; charged one step per executed op
          in both tree and compiled modes so the two trap identically *)
  modul : Ir.modul;
  bindings : (int, rtval) Hashtbl.t;  (** vid -> runtime value *)
  mutable call_depth : int;
  profile : Dcir_obs.Obs.Profile.t option;
      (** when set, per-function inclusive cycles/loads/stores *)
  cfuncs : (string, cfunc) Hashtbl.t;
      (** compiled-mode cache: function name -> compiled body *)
}

let bind (env : env) (v : Ir.value) (rv : rtval) : unit =
  Hashtbl.replace env.bindings v.vid rv

let lookup (env : env) (v : Ir.value) : rtval =
  match Hashtbl.find_opt env.bindings v.vid with
  | Some rv -> rv
  | None -> trap "unbound SSA value %s" (Printer.value_name v)

let scalar (env : env) (v : Ir.value) : Value.t =
  match lookup env v with
  | Scalar s -> s
  | Buf _ -> trap "expected scalar, got memref (%s)" (Printer.value_name v)

let int_of (env : env) (v : Ir.value) : int = Value.as_int (scalar env v)
let float_of (env : env) (v : Ir.value) : float = Value.as_float (scalar env v)

let buffer (env : env) (v : Ir.value) : bufinfo =
  match lookup env v with
  | Buf b -> b
  | Scalar _ -> trap "expected memref, got scalar (%s)" (Printer.value_name v)

(* Row-major linearization; charges (ndims-1) fused index ops, matching what
   compiled addressing would execute. *)
let linearize (env : env) (b : bufinfo) (indices : int list) : int =
  let n = Array.length b.dims in
  if List.length indices <> n then
    trap "index count %d does not match rank %d" (List.length indices) n;
  let lin = ref 0 in
  List.iteri
    (fun k idx ->
      if k > 0 then Machine.charge_op env.machine Int_alu;
      lin := (!lin * b.dims.(k)) + idx)
    indices;
  !lin

let zero_of (ty : Types.t) : Value.t =
  if Types.is_float ty then Value.VFloat 0.0 else Value.VInt 0

(* ------------------------------------------------------------------ *)
(* arith evaluation *)

let eval_cmpi (pred : string) (x : int) (y : int) : bool =
  match pred with
  | "eq" -> x = y
  | "ne" -> x <> y
  | "slt" | "ult" -> x < y
  | "sle" | "ule" -> x <= y
  | "sgt" | "ugt" -> x > y
  | "sge" | "uge" -> x >= y
  | p -> trap "unknown cmpi predicate %s" p

let eval_cmpf (pred : string) (x : float) (y : float) : bool =
  match pred with
  | "oeq" | "ueq" -> x = y
  | "one" | "une" -> x <> y
  | "olt" | "ult" -> x < y
  | "ole" | "ule" -> x <= y
  | "ogt" | "ugt" -> x > y
  | "oge" | "uge" -> x >= y
  | p -> trap "unknown cmpf predicate %s" p

(* ------------------------------------------------------------------ *)

let rec exec_ops (env : env) (ops : Ir.op list) : Value.t list option =
  (* Returns [Some vals] when a terminator produced function results. *)
  match ops with
  | [] -> None
  | o :: rest -> (
      Dcir_resilience.Budget.step env.budget;
      match exec_op env o with
      | `Return vals -> Some vals
      | `Continue -> exec_ops env rest)

and exec_op (env : env) (o : Ir.op) : [ `Return of Value.t list | `Continue ]
    =
  let m = env.machine in
  let charge_class () =
    match Arith.cost_class o.name with
    | Some c -> Machine.charge_op m c
    | None -> (
        match Math_d.cost_class o.name with
        | Some c -> Machine.charge_op m c
        | None -> ())
  in
  match o.name with
  | "func.return" -> `Return (List.map (scalar_or_unit env) o.operands)
  | "arith.constant" ->
      (match Ir.attr o "value" with
      | Some (Attr.AInt n) -> bind env (Ir.result o) (Scalar (VInt n))
      | Some (Attr.AFloat f) -> bind env (Ir.result o) (Scalar (VFloat f))
      | _ -> trap "arith.constant without value attr");
      `Continue
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.remsi"
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.maxsi" | "arith.minsi"
    ->
      charge_class ();
      let x = int_of env (List.nth o.operands 0)
      and y = int_of env (List.nth o.operands 1) in
      let r =
        match o.name with
        | "arith.addi" -> x + y
        | "arith.subi" -> x - y
        | "arith.muli" -> x * y
        | "arith.divsi" ->
            if y = 0 then trap "integer division by zero" else x / y
        | "arith.remsi" ->
            if y = 0 then trap "integer remainder by zero" else x mod y
        | "arith.andi" -> x land y
        | "arith.ori" -> x lor y
        | "arith.xori" -> x lxor y
        | "arith.maxsi" -> max x y
        | _ -> min x y
      in
      bind env (Ir.result o) (Scalar (VInt r));
      `Continue
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maxf"
  | "arith.minf" ->
      charge_class ();
      let x = float_of env (List.nth o.operands 0)
      and y = float_of env (List.nth o.operands 1) in
      let r =
        match o.name with
        | "arith.addf" -> x +. y
        | "arith.subf" -> x -. y
        | "arith.mulf" -> x *. y
        | "arith.divf" -> x /. y
        | "arith.maxf" -> Float.max x y
        | _ -> Float.min x y
      in
      bind env (Ir.result o) (Scalar (VFloat r));
      `Continue
  | "arith.negf" ->
      charge_class ();
      bind env (Ir.result o)
        (Scalar (VFloat (-.float_of env (List.hd o.operands))));
      `Continue
  | "arith.cmpi" ->
      charge_class ();
      let pred = Option.value ~default:"eq" (Ir.str_attr o "predicate") in
      let x = int_of env (List.nth o.operands 0)
      and y = int_of env (List.nth o.operands 1) in
      bind env (Ir.result o) (Scalar (Value.of_bool (eval_cmpi pred x y)));
      `Continue
  | "arith.cmpf" ->
      charge_class ();
      let pred = Option.value ~default:"oeq" (Ir.str_attr o "predicate") in
      let x = float_of env (List.nth o.operands 0)
      and y = float_of env (List.nth o.operands 1) in
      bind env (Ir.result o) (Scalar (Value.of_bool (eval_cmpf pred x y)));
      `Continue
  | "arith.select" ->
      charge_class ();
      let c = int_of env (List.nth o.operands 0) in
      let v = lookup env (List.nth o.operands (if c <> 0 then 1 else 2)) in
      bind env (Ir.result o) v;
      `Continue
  | "arith.index_cast" ->
      charge_class ();
      bind env (Ir.result o) (lookup env (List.hd o.operands));
      `Continue
  | "arith.sitofp" ->
      charge_class ();
      bind env (Ir.result o)
        (Scalar (VFloat (float_of_int (int_of env (List.hd o.operands)))));
      `Continue
  | "arith.fptosi" ->
      charge_class ();
      let f = float_of env (List.hd o.operands) in
      let n =
        (* Truncation toward zero; NaN/out-of-range traps (matching the
           SDFG interpreter's ToInt). *)
        try Value.int_of_float_trunc f
        with Invalid_argument msg -> trap "%s" msg
      in
      bind env (Ir.result o) (Scalar (VInt n));
      `Continue
  | "arith.extf" | "arith.truncf" ->
      charge_class ();
      bind env (Ir.result o) (lookup env (List.hd o.operands));
      `Continue
  | name when Math_d.is_math_op name ->
      charge_class ();
      let args = List.map (float_of env) o.operands in
      bind env (Ir.result o) (Scalar (VFloat (Math_d.eval name args)));
      `Continue
  | "memref.alloc" | "memref.alloca" ->
      let res = Ir.result o in
      let elem = Types.elem_type res.vty in
      let dyn = ref (List.map (int_of env) o.operands) in
      let dims =
        List.map
          (function
            | Types.Static n -> n
            | Types.Dynamic -> (
                match !dyn with
                | d :: rest ->
                    dyn := rest;
                    d
                | [] -> trap "memref.alloc: missing dynamic size")
            | Types.SymDim _ -> trap "memref.alloc: symbolic dim at runtime")
          (Types.dims res.vty)
      in
      let elems = List.fold_left ( * ) 1 dims in
      let storage =
        if String.equal o.name "memref.alloc" then Machine.Heap
        else Machine.Stack
      in
      let buf =
        Machine.alloc m ~storage ~elems ~elem_bytes:(Types.byte_width elem)
          ~zero_init:(zero_of elem)
      in
      bind env res (Buf { buf; dims = Array.of_list dims });
      `Continue
  | "memref.dealloc" ->
      let b = buffer env (List.hd o.operands) in
      Machine.free m b.buf;
      `Continue
  | "memref.load" ->
      let mr, idxs = Memref_d.load_parts o in
      let b = buffer env mr in
      let lin = linearize env b (List.map (int_of env) idxs) in
      bind env (Ir.result o) (Scalar (Machine.load m b.buf lin));
      `Continue
  | "memref.store" ->
      let v, mr, idxs = Memref_d.store_parts o in
      let b = buffer env mr in
      let lin = linearize env b (List.map (int_of env) idxs) in
      Machine.store m b.buf lin (scalar env v);
      `Continue
  | "memref.dim" ->
      let b = buffer env (List.hd o.operands) in
      let k = Option.value ~default:0 (Ir.int_attr o "index") in
      if k < 0 || k >= Array.length b.dims then trap "memref.dim out of range";
      bind env (Ir.result o) (Scalar (VInt b.dims.(k)));
      `Continue
  | "scf.for" ->
      let lb, ub, step = Scf_d.loop_bounds o in
      let lbv = int_of env lb
      and ubv = int_of env ub
      and stepv = int_of env step in
      if stepv <= 0 then trap "scf.for: non-positive step %d" stepv;
      let body = Scf_d.loop_body o in
      let iv, carried_args =
        match body.rargs with
        | iv :: rest -> (iv, rest)
        | [] -> trap "scf.for: missing induction variable"
      in
      let carried = ref (List.map (lookup env) (Scf_d.loop_iter_inits o)) in
      let i = ref lbv in
      while !i < ubv do
        (* Loop control: induction increment + compare&branch. *)
        Machine.charge_op m Int_alu;
        Machine.charge_op m Branch;
        bind env iv (Scalar (VInt !i));
        List.iter2 (fun arg v -> bind env arg v) carried_args !carried;
        (match exec_region_with_yield env body.rops with
        | Some vals -> carried := vals
        | None -> if carried_args <> [] then trap "scf.for: missing yield");
        i := !i + stepv
      done;
      List.iter2 (fun res v -> bind env res v) o.results !carried;
      `Continue
  | "scf.if" ->
      Machine.charge_op m Branch;
      let c = int_of env (List.hd o.operands) in
      let then_r, else_r = Scf_d.if_regions o in
      let chosen = if c <> 0 then then_r else else_r in
      (match exec_region_with_yield env chosen.rops with
      | Some vals -> List.iter2 (fun res v -> bind env res v) o.results vals
      | None ->
          if o.results <> [] then trap "scf.if: branch yielded no values");
      `Continue
  | "scf.yield" -> trap "scf.yield outside structured execution"
  | "func.call" -> (
      let callee = Option.value ~default:"" (Func_d.callee o) in
      match Ir.find_func env.modul callee with
      | None -> trap "call to unknown function @%s" callee
      | Some f ->
          (* Call overhead: frame setup + argument moves. *)
          Machine.charge m 20.0;
          List.iter (fun _ -> Machine.charge_op m Move) o.operands;
          let args = List.map (lookup env) o.operands in
          let results = call_func env f args in
          List.iter2 (fun res v -> bind env res (Scalar v)) o.results results;
          `Continue)
  | name -> trap "interpreter: unsupported operation %s" name

(* Execute ops until an scf.yield; return its operand values. *)
and exec_region_with_yield (env : env) (ops : Ir.op list) :
    rtval list option =
  let rec go = function
    | [] -> None
    | o :: rest ->
        Dcir_resilience.Budget.step env.budget;
        if String.equal o.Ir.name "scf.yield" then
          Some (List.map (lookup env) o.operands)
        else (
          (match exec_op env o with
          | `Return _ -> trap "func.return inside structured control flow"
          | `Continue -> ());
          go rest)
  in
  go ops

and scalar_or_unit (env : env) (v : Ir.value) : Value.t =
  match lookup env v with
  | Scalar s -> s
  | Buf _ -> trap "returning a memref from a function is not supported"

and call_func (env : env) (f : Ir.func) (args : rtval list) : Value.t list =
  if env.call_depth > 256 then trap "call depth exceeded";
  match f.fbody with
  | None -> trap "call to external function @%s" f.fname
  | Some r ->
      if List.length r.rargs <> List.length args then
        trap "@%s: argument count mismatch" f.fname;
      env.call_depth <- env.call_depth + 1;
      List.iter2 (fun p a -> bind env p a) r.rargs args;
      let snap =
        match env.profile with
        | None -> None
        | Some _ ->
            let mt = Machine.metrics env.machine in
            Some (mt.cycles, mt.loads, mt.stores)
      in
      let result = exec_ops env r.rops in
      (match (env.profile, snap) with
      | Some p, Some (c0, l0, s0) ->
          let mt = Machine.metrics env.machine in
          Dcir_obs.Obs.Profile.record p ~kind:"func" ~name:f.fname
            ~cycles:(mt.cycles -. c0) ~loads:(mt.loads - l0)
            ~stores:(mt.stores - s0)
      | _ -> ());
      env.call_depth <- env.call_depth - 1;
      (match result with Some vals -> vals | None -> [])

(* ------------------------------------------------------------------ *)
(* Compiled execution: each function body is translated once per [env]
   into an array of OCaml closures (operands, attributes, cost classes and
   nested regions all pre-resolved), then replayed. The charge/memory
   sequence is kept exactly identical to the tree-walking [exec_op] above,
   so machine metrics are bit-for-bit the same in both modes. *)

type mode = Tree | Compiled

(* Run a compiled op sequence until a terminator produces control.
   Charges one budget step per executed closure — the compiled-mode twin
   of the per-op charge in [exec_ops]/[exec_region_with_yield]. *)
let run_seq (env : env) (ops : (unit -> kctrl) array) : kctrl =
  let n = Array.length ops in
  let budget = env.budget in
  let rec go i =
    if i = n then KContinue
    else begin
      Dcir_resilience.Budget.step budget;
      match ops.(i) () with KContinue -> go (i + 1) | c -> c
    end
  in
  go 0

let rec compile_op (env : env) ~(structured : bool) (o : Ir.op) :
    unit -> kctrl =
  let m = env.machine in
  let charge_class =
    match Arith.cost_class o.name with
    | Some c -> fun () -> Machine.charge_op m c
    | None -> (
        match Math_d.cost_class o.name with
        | Some c -> fun () -> Machine.charge_op m c
        | None -> fun () -> ())
  in
  match o.name with
  | "func.return" ->
      if structured then fun () ->
        trap "func.return inside structured control flow"
      else
        let operands = o.operands in
        fun () -> KReturn (List.map (scalar_or_unit env) operands)
  | "scf.yield" ->
      if structured then
        let operands = o.operands in
        fun () -> KYield (List.map (lookup env) operands)
      else fun () -> trap "scf.yield outside structured execution"
  | "arith.constant" -> (
      let res = Ir.result o in
      match Ir.attr o "value" with
      | Some (Attr.AInt n) ->
          let v = Scalar (VInt n) in
          fun () ->
            bind env res v;
            KContinue
      | Some (Attr.AFloat f) ->
          let v = Scalar (VFloat f) in
          fun () ->
            bind env res v;
            KContinue
      | _ -> fun () -> trap "arith.constant without value attr")
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.remsi"
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.maxsi" | "arith.minsi"
    ->
      let x_v = List.nth o.operands 0 and y_v = List.nth o.operands 1 in
      let res = Ir.result o in
      let f : int -> int -> int =
        match o.name with
        | "arith.addi" -> ( + )
        | "arith.subi" -> ( - )
        | "arith.muli" -> ( * )
        | "arith.divsi" ->
            fun x y ->
              if y = 0 then trap "integer division by zero" else x / y
        | "arith.remsi" ->
            fun x y ->
              if y = 0 then trap "integer remainder by zero" else x mod y
        | "arith.andi" -> ( land )
        | "arith.ori" -> ( lor )
        | "arith.xori" -> ( lxor )
        | "arith.maxsi" -> max
        | _ -> min
      in
      fun () ->
        charge_class ();
        let x = int_of env x_v in
        let y = int_of env y_v in
        bind env res (Scalar (VInt (f x y)));
        KContinue
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maxf"
  | "arith.minf" ->
      let x_v = List.nth o.operands 0 and y_v = List.nth o.operands 1 in
      let res = Ir.result o in
      let f : float -> float -> float =
        match o.name with
        | "arith.addf" -> ( +. )
        | "arith.subf" -> ( -. )
        | "arith.mulf" -> ( *. )
        | "arith.divf" -> ( /. )
        | "arith.maxf" -> Float.max
        | _ -> Float.min
      in
      fun () ->
        charge_class ();
        let x = float_of env x_v in
        let y = float_of env y_v in
        bind env res (Scalar (VFloat (f x y)));
        KContinue
  | "arith.negf" ->
      let x_v = List.hd o.operands in
      let res = Ir.result o in
      fun () ->
        charge_class ();
        bind env res (Scalar (VFloat (-.float_of env x_v)));
        KContinue
  | "arith.cmpi" ->
      let pred = Option.value ~default:"eq" (Ir.str_attr o "predicate") in
      let x_v = List.nth o.operands 0 and y_v = List.nth o.operands 1 in
      let res = Ir.result o in
      fun () ->
        charge_class ();
        let x = int_of env x_v in
        let y = int_of env y_v in
        bind env res (Scalar (Value.of_bool (eval_cmpi pred x y)));
        KContinue
  | "arith.cmpf" ->
      let pred = Option.value ~default:"oeq" (Ir.str_attr o "predicate") in
      let x_v = List.nth o.operands 0 and y_v = List.nth o.operands 1 in
      let res = Ir.result o in
      fun () ->
        charge_class ();
        let x = float_of env x_v in
        let y = float_of env y_v in
        bind env res (Scalar (Value.of_bool (eval_cmpf pred x y)));
        KContinue
  | "arith.select" ->
      let c_v = List.nth o.operands 0 in
      let t_v = List.nth o.operands 1 in
      let f_v = List.nth o.operands 2 in
      let res = Ir.result o in
      fun () ->
        charge_class ();
        let c = int_of env c_v in
        bind env res (lookup env (if c <> 0 then t_v else f_v));
        KContinue
  | "arith.index_cast" | "arith.extf" | "arith.truncf" ->
      let x_v = List.hd o.operands in
      let res = Ir.result o in
      fun () ->
        charge_class ();
        bind env res (lookup env x_v);
        KContinue
  | "arith.sitofp" ->
      let x_v = List.hd o.operands in
      let res = Ir.result o in
      fun () ->
        charge_class ();
        bind env res (Scalar (VFloat (float_of_int (int_of env x_v))));
        KContinue
  | "arith.fptosi" ->
      let x_v = List.hd o.operands in
      let res = Ir.result o in
      fun () ->
        charge_class ();
        let f = float_of env x_v in
        let n =
          try Value.int_of_float_trunc f
          with Invalid_argument msg -> trap "%s" msg
        in
        bind env res (Scalar (VInt n));
        KContinue
  | name when Math_d.is_math_op name ->
      let operands = o.operands in
      let res = Ir.result o in
      fun () ->
        charge_class ();
        let args = List.map (float_of env) operands in
        bind env res (Scalar (VFloat (Math_d.eval name args)));
        KContinue
  | "memref.alloc" | "memref.alloca" ->
      let res = Ir.result o in
      let elem = Types.elem_type res.vty in
      let dim_tmpl = Types.dims res.vty in
      let operands = o.operands in
      let storage =
        if String.equal o.name "memref.alloc" then Machine.Heap
        else Machine.Stack
      in
      let elem_bytes = Types.byte_width elem in
      let zero = zero_of elem in
      fun () ->
        let dyn = ref (List.map (int_of env) operands) in
        let dims =
          List.map
            (function
              | Types.Static n -> n
              | Types.Dynamic -> (
                  match !dyn with
                  | d :: rest ->
                      dyn := rest;
                      d
                  | [] -> trap "memref.alloc: missing dynamic size")
              | Types.SymDim _ -> trap "memref.alloc: symbolic dim at runtime")
            dim_tmpl
        in
        let elems = List.fold_left ( * ) 1 dims in
        let buf =
          Machine.alloc m ~storage ~elems ~elem_bytes ~zero_init:zero
        in
        bind env res (Buf { buf; dims = Array.of_list dims });
        KContinue
  | "memref.dealloc" ->
      let x_v = List.hd o.operands in
      fun () ->
        let b = buffer env x_v in
        Machine.free m b.buf;
        KContinue
  | "memref.load" ->
      let mr, idxs = Memref_d.load_parts o in
      let res = Ir.result o in
      fun () ->
        let b = buffer env mr in
        let lin = linearize env b (List.map (int_of env) idxs) in
        bind env res (Scalar (Machine.load m b.buf lin));
        KContinue
  | "memref.store" ->
      let v, mr, idxs = Memref_d.store_parts o in
      fun () ->
        let b = buffer env mr in
        let lin = linearize env b (List.map (int_of env) idxs) in
        Machine.store m b.buf lin (scalar env v);
        KContinue
  | "memref.dim" ->
      let x_v = List.hd o.operands in
      let k = Option.value ~default:0 (Ir.int_attr o "index") in
      let res = Ir.result o in
      fun () ->
        let b = buffer env x_v in
        if k < 0 || k >= Array.length b.dims then
          trap "memref.dim out of range";
        bind env res (Scalar (VInt b.dims.(k)));
        KContinue
  | "scf.for" ->
      let lb, ub, step = Scf_d.loop_bounds o in
      let body = Scf_d.loop_body o in
      let iv, carried_args =
        match body.rargs with
        | iv :: rest -> (iv, rest)
        | [] -> trap "scf.for: missing induction variable"
      in
      let inits = Scf_d.loop_iter_inits o in
      let results = o.results in
      let cbody = compile_ops env ~structured:true body.rops in
      fun () ->
        let lbv = int_of env lb in
        let ubv = int_of env ub in
        let stepv = int_of env step in
        if stepv <= 0 then trap "scf.for: non-positive step %d" stepv;
        let carried = ref (List.map (lookup env) inits) in
        let i = ref lbv in
        while !i < ubv do
          Machine.charge_op m Int_alu;
          Machine.charge_op m Branch;
          bind env iv (Scalar (VInt !i));
          List.iter2 (fun arg v -> bind env arg v) carried_args !carried;
          (match run_seq env cbody with
          | KYield vals -> carried := vals
          | KContinue ->
              if carried_args <> [] then trap "scf.for: missing yield"
          | KReturn _ -> assert false (* func.return compiles to a trap *));
          i := !i + stepv
        done;
        List.iter2 (fun res v -> bind env res v) results !carried;
        KContinue
  | "scf.if" ->
      let c_v = List.hd o.operands in
      let then_r, else_r = Scf_d.if_regions o in
      let cthen = compile_ops env ~structured:true then_r.rops in
      let celse = compile_ops env ~structured:true else_r.rops in
      let results = o.results in
      fun () ->
        Machine.charge_op m Branch;
        let c = int_of env c_v in
        let chosen = if c <> 0 then cthen else celse in
        (match run_seq env chosen with
        | KYield vals -> List.iter2 (fun res v -> bind env res v) results vals
        | KContinue ->
            if results <> [] then trap "scf.if: branch yielded no values"
        | KReturn _ -> assert false);
        KContinue
  | "func.call" ->
      let callee = Option.value ~default:"" (Func_d.callee o) in
      let operands = o.operands in
      let results = o.results in
      fun () -> (
        (* Resolved per call, like the tree walker; the compiled body is
           memoized in [env.cfuncs] (lazily, so recursion terminates). *)
        match Ir.find_func env.modul callee with
        | None -> trap "call to unknown function @%s" callee
        | Some f ->
            Machine.charge m 20.0;
            List.iter (fun _ -> Machine.charge_op m Move) operands;
            let args = List.map (lookup env) operands in
            let rets = call_cfunc env (get_cfunc env f) args in
            List.iter2 (fun res v -> bind env res (Scalar v)) results rets;
            KContinue)
  | name -> fun () -> trap "interpreter: unsupported operation %s" name

and compile_ops (env : env) ~(structured : bool) (ops : Ir.op list) :
    (unit -> kctrl) array =
  Array.of_list (List.map (compile_op env ~structured) ops)

and get_cfunc (env : env) (f : Ir.func) : cfunc =
  match Hashtbl.find_opt env.cfuncs f.fname with
  | Some cf -> cf
  | None ->
      let cf =
        match f.fbody with
        | None ->
            { cf_func = f; cf_body = [||]; cf_rargs = [] }
            (* external: trapped at call time, like the tree walker *)
        | Some r ->
            {
              cf_func = f;
              cf_body = compile_ops env ~structured:false r.rops;
              cf_rargs = r.rargs;
            }
      in
      Hashtbl.replace env.cfuncs f.fname cf;
      cf

(* Mirrors [call_func] exactly: depth check, argument binding, profile
   snapshot/record. *)
and call_cfunc (env : env) (cf : cfunc) (args : rtval list) : Value.t list =
  if env.call_depth > 256 then trap "call depth exceeded";
  match cf.cf_func.fbody with
  | None -> trap "call to external function @%s" cf.cf_func.fname
  | Some _ ->
      if List.length cf.cf_rargs <> List.length args then
        trap "@%s: argument count mismatch" cf.cf_func.fname;
      env.call_depth <- env.call_depth + 1;
      List.iter2 (fun p a -> bind env p a) cf.cf_rargs args;
      let snap =
        match env.profile with
        | None -> None
        | Some _ ->
            let mt = Machine.metrics env.machine in
            Some (mt.cycles, mt.loads, mt.stores)
      in
      let result =
        match run_seq env cf.cf_body with
        | KReturn vals -> Some vals
        | KContinue -> None
        | KYield _ -> assert false (* scf.yield compiles to a trap here *)
      in
      (match (env.profile, snap) with
      | Some p, Some (c0, l0, s0) ->
          let mt = Machine.metrics env.machine in
          Dcir_obs.Obs.Profile.record p ~kind:"func" ~name:cf.cf_func.fname
            ~cycles:(mt.cycles -. c0) ~loads:(mt.loads - l0)
            ~stores:(mt.stores - s0)
      | _ -> ());
      env.call_depth <- env.call_depth - 1;
      (match result with Some vals -> vals | None -> [])

(* ------------------------------------------------------------------ *)

(** A persistent execution context for repeated invocations of one entry
    function — used by the SDFG interpreter's compiled plans so opaque
    tasklets compile their MLIR body once per run instead of once per
    invocation. Bindings are reused across invocations; this is safe
    because SSA dominance guarantees every value read is rebound first. *)
type prepared = { p_env : env; p_entry : Ir.func }

let prepare ?(profile : Dcir_obs.Obs.Profile.t option)
    ~(machine : Machine.t) (m : Ir.modul) ~(entry : string) : prepared =
  match Ir.find_func m entry with
  | None -> trap "entry function @%s not found" entry
  | Some f ->
      {
        p_env =
          {
            machine;
            budget = Machine.budget machine;
            modul = m;
            bindings = Hashtbl.create 256;
            call_depth = 0;
            profile;
            cfuncs = Hashtbl.create 8;
          };
        p_entry = f;
      }

let run_prepared (p : prepared) (args : rtval list) : Value.t list =
  call_cfunc p.p_env (get_cfunc p.p_env p.p_entry) args

(** [run ?machine ?profile ?mode m ~entry args] executes function [entry] of
    module [m]. Returns the function results and the machine (with metrics).
    [profile] accumulates per-function inclusive cycles/loads/stores
    attribution (a callee's work is also counted in its callers).
    [mode] selects tree-walking or compiled execution (the default); both
    charge the machine identically. *)
let run ?(machine : Machine.t option)
    ?(profile : Dcir_obs.Obs.Profile.t option) ?(mode : mode = Compiled)
    (m : Ir.modul) ~(entry : string) (args : rtval list) :
    Value.t list * Machine.t =
  let machine = match machine with Some x -> x | None -> Machine.create () in
  match Ir.find_func m entry with
  | None -> trap "entry function @%s not found" entry
  | Some f ->
      let env =
        {
          machine;
          budget = Machine.budget machine;
          modul = m;
          bindings = Hashtbl.create 256;
          call_depth = 0;
          profile;
          cfuncs = Hashtbl.create 8;
        }
      in
      let results =
        match mode with
        | Tree -> call_func env f args
        | Compiled -> call_cfunc env (get_cfunc env f) args
      in
      (results, machine)
