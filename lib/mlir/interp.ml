(** MLIR interpreter over the simulated machine.

    Executes the core dialects ([func], [scf], [arith], [math], [memref])
    against {!Dcir_machine.Machine}, charging the cost model for every
    operation and memory access. This is how "compiled binaries" run in this
    reproduction: each compiler proxy optimizes the IR with its own pass set
    and then executes here, so cycle counts reflect exactly the work its IR
    still performs.

    Semantics notes:
    - [arith.divsi]/[remsi] truncate toward zero (C semantics, matching what
      Polygeist emits for C division);
    - integer widths are not modeled (OCaml [int] everywhere) — the C subset
      used by the benchmarks never relies on wraparound. *)

open Dcir_machine

type bufinfo = { buf : Machine.buffer; dims : int array }
type rtval = Scalar of Value.t | Buf of bufinfo

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

type env = {
  machine : Machine.t;
  modul : Ir.modul;
  bindings : (int, rtval) Hashtbl.t;  (** vid -> runtime value *)
  mutable call_depth : int;
  profile : Dcir_obs.Obs.Profile.t option;
      (** when set, per-function inclusive cycles/loads/stores *)
}

let bind (env : env) (v : Ir.value) (rv : rtval) : unit =
  Hashtbl.replace env.bindings v.vid rv

let lookup (env : env) (v : Ir.value) : rtval =
  match Hashtbl.find_opt env.bindings v.vid with
  | Some rv -> rv
  | None -> trap "unbound SSA value %s" (Printer.value_name v)

let scalar (env : env) (v : Ir.value) : Value.t =
  match lookup env v with
  | Scalar s -> s
  | Buf _ -> trap "expected scalar, got memref (%s)" (Printer.value_name v)

let int_of (env : env) (v : Ir.value) : int = Value.as_int (scalar env v)
let float_of (env : env) (v : Ir.value) : float = Value.as_float (scalar env v)

let buffer (env : env) (v : Ir.value) : bufinfo =
  match lookup env v with
  | Buf b -> b
  | Scalar _ -> trap "expected memref, got scalar (%s)" (Printer.value_name v)

(* Row-major linearization; charges (ndims-1) fused index ops, matching what
   compiled addressing would execute. *)
let linearize (env : env) (b : bufinfo) (indices : int list) : int =
  let n = Array.length b.dims in
  if List.length indices <> n then
    trap "index count %d does not match rank %d" (List.length indices) n;
  let lin = ref 0 in
  List.iteri
    (fun k idx ->
      if k > 0 then Machine.charge_op env.machine Int_alu;
      lin := (!lin * b.dims.(k)) + idx)
    indices;
  !lin

let zero_of (ty : Types.t) : Value.t =
  if Types.is_float ty then Value.VFloat 0.0 else Value.VInt 0

(* ------------------------------------------------------------------ *)
(* arith evaluation *)

let eval_cmpi (pred : string) (x : int) (y : int) : bool =
  match pred with
  | "eq" -> x = y
  | "ne" -> x <> y
  | "slt" | "ult" -> x < y
  | "sle" | "ule" -> x <= y
  | "sgt" | "ugt" -> x > y
  | "sge" | "uge" -> x >= y
  | p -> trap "unknown cmpi predicate %s" p

let eval_cmpf (pred : string) (x : float) (y : float) : bool =
  match pred with
  | "oeq" | "ueq" -> x = y
  | "one" | "une" -> x <> y
  | "olt" | "ult" -> x < y
  | "ole" | "ule" -> x <= y
  | "ogt" | "ugt" -> x > y
  | "oge" | "uge" -> x >= y
  | p -> trap "unknown cmpf predicate %s" p

(* ------------------------------------------------------------------ *)

let rec exec_ops (env : env) (ops : Ir.op list) : Value.t list option =
  (* Returns [Some vals] when a terminator produced function results. *)
  match ops with
  | [] -> None
  | o :: rest -> (
      match exec_op env o with
      | `Return vals -> Some vals
      | `Continue -> exec_ops env rest)

and exec_op (env : env) (o : Ir.op) : [ `Return of Value.t list | `Continue ]
    =
  let m = env.machine in
  let charge_class () =
    match Arith.cost_class o.name with
    | Some c -> Machine.charge_op m c
    | None -> (
        match Math_d.cost_class o.name with
        | Some c -> Machine.charge_op m c
        | None -> ())
  in
  match o.name with
  | "func.return" -> `Return (List.map (scalar_or_unit env) o.operands)
  | "arith.constant" ->
      (match Ir.attr o "value" with
      | Some (Attr.AInt n) -> bind env (Ir.result o) (Scalar (VInt n))
      | Some (Attr.AFloat f) -> bind env (Ir.result o) (Scalar (VFloat f))
      | _ -> trap "arith.constant without value attr");
      `Continue
  | "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.remsi"
  | "arith.andi" | "arith.ori" | "arith.xori" | "arith.maxsi" | "arith.minsi"
    ->
      charge_class ();
      let x = int_of env (List.nth o.operands 0)
      and y = int_of env (List.nth o.operands 1) in
      let r =
        match o.name with
        | "arith.addi" -> x + y
        | "arith.subi" -> x - y
        | "arith.muli" -> x * y
        | "arith.divsi" ->
            if y = 0 then trap "integer division by zero" else x / y
        | "arith.remsi" ->
            if y = 0 then trap "integer remainder by zero" else x mod y
        | "arith.andi" -> x land y
        | "arith.ori" -> x lor y
        | "arith.xori" -> x lxor y
        | "arith.maxsi" -> max x y
        | _ -> min x y
      in
      bind env (Ir.result o) (Scalar (VInt r));
      `Continue
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maxf"
  | "arith.minf" ->
      charge_class ();
      let x = float_of env (List.nth o.operands 0)
      and y = float_of env (List.nth o.operands 1) in
      let r =
        match o.name with
        | "arith.addf" -> x +. y
        | "arith.subf" -> x -. y
        | "arith.mulf" -> x *. y
        | "arith.divf" -> x /. y
        | "arith.maxf" -> Float.max x y
        | _ -> Float.min x y
      in
      bind env (Ir.result o) (Scalar (VFloat r));
      `Continue
  | "arith.negf" ->
      charge_class ();
      bind env (Ir.result o)
        (Scalar (VFloat (-.float_of env (List.hd o.operands))));
      `Continue
  | "arith.cmpi" ->
      charge_class ();
      let pred = Option.value ~default:"eq" (Ir.str_attr o "predicate") in
      let x = int_of env (List.nth o.operands 0)
      and y = int_of env (List.nth o.operands 1) in
      bind env (Ir.result o) (Scalar (Value.of_bool (eval_cmpi pred x y)));
      `Continue
  | "arith.cmpf" ->
      charge_class ();
      let pred = Option.value ~default:"oeq" (Ir.str_attr o "predicate") in
      let x = float_of env (List.nth o.operands 0)
      and y = float_of env (List.nth o.operands 1) in
      bind env (Ir.result o) (Scalar (Value.of_bool (eval_cmpf pred x y)));
      `Continue
  | "arith.select" ->
      charge_class ();
      let c = int_of env (List.nth o.operands 0) in
      let v = lookup env (List.nth o.operands (if c <> 0 then 1 else 2)) in
      bind env (Ir.result o) v;
      `Continue
  | "arith.index_cast" ->
      charge_class ();
      bind env (Ir.result o) (lookup env (List.hd o.operands));
      `Continue
  | "arith.sitofp" ->
      charge_class ();
      bind env (Ir.result o)
        (Scalar (VFloat (float_of_int (int_of env (List.hd o.operands)))));
      `Continue
  | "arith.fptosi" ->
      charge_class ();
      bind env (Ir.result o)
        (Scalar (VInt (int_of_float (float_of env (List.hd o.operands)))));
      `Continue
  | "arith.extf" | "arith.truncf" ->
      charge_class ();
      bind env (Ir.result o) (lookup env (List.hd o.operands));
      `Continue
  | name when Math_d.is_math_op name ->
      charge_class ();
      let args = List.map (float_of env) o.operands in
      bind env (Ir.result o) (Scalar (VFloat (Math_d.eval name args)));
      `Continue
  | "memref.alloc" | "memref.alloca" ->
      let res = Ir.result o in
      let elem = Types.elem_type res.vty in
      let dyn = ref (List.map (int_of env) o.operands) in
      let dims =
        List.map
          (function
            | Types.Static n -> n
            | Types.Dynamic -> (
                match !dyn with
                | d :: rest ->
                    dyn := rest;
                    d
                | [] -> trap "memref.alloc: missing dynamic size")
            | Types.SymDim _ -> trap "memref.alloc: symbolic dim at runtime")
          (Types.dims res.vty)
      in
      let elems = List.fold_left ( * ) 1 dims in
      let storage =
        if String.equal o.name "memref.alloc" then Machine.Heap
        else Machine.Stack
      in
      let buf =
        Machine.alloc m ~storage ~elems ~elem_bytes:(Types.byte_width elem)
          ~zero_init:(zero_of elem)
      in
      bind env res (Buf { buf; dims = Array.of_list dims });
      `Continue
  | "memref.dealloc" ->
      let b = buffer env (List.hd o.operands) in
      Machine.free m b.buf;
      `Continue
  | "memref.load" ->
      let mr, idxs = Memref_d.load_parts o in
      let b = buffer env mr in
      let lin = linearize env b (List.map (int_of env) idxs) in
      bind env (Ir.result o) (Scalar (Machine.load m b.buf lin));
      `Continue
  | "memref.store" ->
      let v, mr, idxs = Memref_d.store_parts o in
      let b = buffer env mr in
      let lin = linearize env b (List.map (int_of env) idxs) in
      Machine.store m b.buf lin (scalar env v);
      `Continue
  | "memref.dim" ->
      let b = buffer env (List.hd o.operands) in
      let k = Option.value ~default:0 (Ir.int_attr o "index") in
      if k < 0 || k >= Array.length b.dims then trap "memref.dim out of range";
      bind env (Ir.result o) (Scalar (VInt b.dims.(k)));
      `Continue
  | "scf.for" ->
      let lb, ub, step = Scf_d.loop_bounds o in
      let lbv = int_of env lb
      and ubv = int_of env ub
      and stepv = int_of env step in
      if stepv <= 0 then trap "scf.for: non-positive step %d" stepv;
      let body = Scf_d.loop_body o in
      let iv, carried_args =
        match body.rargs with
        | iv :: rest -> (iv, rest)
        | [] -> trap "scf.for: missing induction variable"
      in
      let carried = ref (List.map (lookup env) (Scf_d.loop_iter_inits o)) in
      let i = ref lbv in
      while !i < ubv do
        (* Loop control: induction increment + compare&branch. *)
        Machine.charge_op m Int_alu;
        Machine.charge_op m Branch;
        bind env iv (Scalar (VInt !i));
        List.iter2 (fun arg v -> bind env arg v) carried_args !carried;
        (match exec_region_with_yield env body.rops with
        | Some vals -> carried := vals
        | None -> if carried_args <> [] then trap "scf.for: missing yield");
        i := !i + stepv
      done;
      List.iter2 (fun res v -> bind env res v) o.results !carried;
      `Continue
  | "scf.if" ->
      Machine.charge_op m Branch;
      let c = int_of env (List.hd o.operands) in
      let then_r, else_r = Scf_d.if_regions o in
      let chosen = if c <> 0 then then_r else else_r in
      (match exec_region_with_yield env chosen.rops with
      | Some vals -> List.iter2 (fun res v -> bind env res v) o.results vals
      | None ->
          if o.results <> [] then trap "scf.if: branch yielded no values");
      `Continue
  | "scf.yield" -> trap "scf.yield outside structured execution"
  | "func.call" -> (
      let callee = Option.value ~default:"" (Func_d.callee o) in
      match Ir.find_func env.modul callee with
      | None -> trap "call to unknown function @%s" callee
      | Some f ->
          (* Call overhead: frame setup + argument moves. *)
          Machine.charge m 20.0;
          List.iter (fun _ -> Machine.charge_op m Move) o.operands;
          let args = List.map (lookup env) o.operands in
          let results = call_func env f args in
          List.iter2 (fun res v -> bind env res (Scalar v)) o.results results;
          `Continue)
  | name -> trap "interpreter: unsupported operation %s" name

(* Execute ops until an scf.yield; return its operand values. *)
and exec_region_with_yield (env : env) (ops : Ir.op list) :
    rtval list option =
  let rec go = function
    | [] -> None
    | o :: rest ->
        if String.equal o.Ir.name "scf.yield" then
          Some (List.map (lookup env) o.operands)
        else (
          (match exec_op env o with
          | `Return _ -> trap "func.return inside structured control flow"
          | `Continue -> ());
          go rest)
  in
  go ops

and scalar_or_unit (env : env) (v : Ir.value) : Value.t =
  match lookup env v with
  | Scalar s -> s
  | Buf _ -> trap "returning a memref from a function is not supported"

and call_func (env : env) (f : Ir.func) (args : rtval list) : Value.t list =
  if env.call_depth > 256 then trap "call depth exceeded";
  match f.fbody with
  | None -> trap "call to external function @%s" f.fname
  | Some r ->
      if List.length r.rargs <> List.length args then
        trap "@%s: argument count mismatch" f.fname;
      env.call_depth <- env.call_depth + 1;
      List.iter2 (fun p a -> bind env p a) r.rargs args;
      let snap =
        match env.profile with
        | None -> None
        | Some _ ->
            let mt = Machine.metrics env.machine in
            Some (mt.cycles, mt.loads, mt.stores)
      in
      let result = exec_ops env r.rops in
      (match (env.profile, snap) with
      | Some p, Some (c0, l0, s0) ->
          let mt = Machine.metrics env.machine in
          Dcir_obs.Obs.Profile.record p ~kind:"func" ~name:f.fname
            ~cycles:(mt.cycles -. c0) ~loads:(mt.loads - l0)
            ~stores:(mt.stores - s0)
      | _ -> ());
      env.call_depth <- env.call_depth - 1;
      (match result with Some vals -> vals | None -> [])

(* ------------------------------------------------------------------ *)

(** [run ?machine ?profile m ~entry args] executes function [entry] of
    module [m]. Returns the function results and the machine (with metrics).
    [profile] accumulates per-function inclusive cycles/loads/stores
    attribution (a callee's work is also counted in its callers). *)
let run ?(machine : Machine.t option)
    ?(profile : Dcir_obs.Obs.Profile.t option) (m : Ir.modul)
    ~(entry : string) (args : rtval list) : Value.t list * Machine.t =
  let machine = match machine with Some x -> x | None -> Machine.create () in
  match Ir.find_func m entry with
  | None -> trap "entry function @%s not found" entry
  | Some f ->
      let env =
        {
          machine;
          modul = m;
          bindings = Hashtbl.create 256;
          call_depth = 0;
          profile;
        }
      in
      let results = call_func env f args in
      (results, machine)
