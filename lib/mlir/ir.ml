(** Core IR structure: SSA values, operations, regions, functions, modules.

    Faithful to MLIR's essentials — ops carry a dialect-qualified name,
    operands/results, attributes, and nested regions — with one deliberate
    simplification: every region has exactly one block (with arguments).
    Polygeist emits structured control flow ([scf]), so multi-block CFGs
    never arise in this pipeline; branching is expressed by [scf.if]/[scf.for]
    regions, exactly as in the paper's input dialects. *)

type value = {
  vid : int;
  mutable vty : Types.t;
  mutable hint : string;  (** printer name hint, e.g. "arg0" *)
}

type op = {
  oid : int;
  mutable name : string;  (** dialect-qualified, e.g. "arith.addi" *)
  mutable operands : value list;
  mutable results : value list;
  mutable attrs : (string * Attr.t) list;
  mutable regions : region list;
}

and region = { mutable rargs : value list; mutable rops : op list }

type func = {
  fname : string;
  mutable fparams : value list;
  mutable fret : Types.t list;
  mutable fbody : region option;  (** [None] = external declaration *)
  mutable fattrs : (string * Attr.t) list;
}

type modul = { mutable funcs : func list; gen : Dcir_support.Id_gen.t }

(* ------------------------------------------------------------------ *)
(* Creation context *)

type ctx = { mutable next_vid : int; mutable next_oid : int }

let ctx_create () : ctx = { next_vid = 0; next_oid = 0 }

(* A single global context keeps ids unique across modules; ids only need to
   be distinct, not dense. *)
let global_ctx : ctx = ctx_create ()

let new_value ?(hint = "") (ty : Types.t) : value =
  let v = { vid = global_ctx.next_vid; vty = ty; hint } in
  global_ctx.next_vid <- global_ctx.next_vid + 1;
  v

let new_op ?(operands = []) ?(results = []) ?(attrs = []) ?(regions = [])
    (name : string) : op =
  let o =
    { oid = global_ctx.next_oid; name; operands; results; attrs; regions }
  in
  global_ctx.next_oid <- global_ctx.next_oid + 1;
  o

let new_region ?(args = []) ?(ops = []) () : region = { rargs = args; rops = ops }

let new_module () : modul = { funcs = []; gen = Dcir_support.Id_gen.create () }

let find_func (m : modul) (name : string) : func option =
  List.find_opt (fun f -> String.equal f.fname name) m.funcs

(* ------------------------------------------------------------------ *)
(* Attribute access *)

let attr (o : op) (key : string) : Attr.t option = List.assoc_opt key o.attrs

let set_attr (o : op) (key : string) (v : Attr.t) : unit =
  o.attrs <- (key, v) :: List.remove_assoc key o.attrs

let remove_attr (o : op) (key : string) : unit =
  o.attrs <- List.remove_assoc key o.attrs

let int_attr (o : op) (key : string) : int option =
  Option.bind (attr o key) Attr.as_int

let str_attr (o : op) (key : string) : string option =
  Option.bind (attr o key) Attr.as_str

let result (o : op) : value =
  match o.results with
  | [ v ] -> v
  | _ -> invalid_arg (Printf.sprintf "Ir.result: op %s has %d results" o.name
                        (List.length o.results))

(* ------------------------------------------------------------------ *)
(* Traversal *)

(** Pre-order walk over all ops in a region, recursing into nested regions. *)
let rec walk_region (r : region) (f : op -> unit) : unit =
  List.iter
    (fun o ->
      f o;
      List.iter (fun nested -> walk_region nested f) o.regions)
    r.rops

let walk_func (fn : func) (f : op -> unit) : unit =
  match fn.fbody with None -> () | Some r -> walk_region r f

let walk_module (m : modul) (f : op -> unit) : unit =
  List.iter (fun fn -> walk_func fn f) m.funcs

(** Post-order walk (children before the op itself). *)
let rec walk_region_post (r : region) (f : op -> unit) : unit =
  List.iter
    (fun o ->
      List.iter (fun nested -> walk_region_post nested f) o.regions;
      f o)
    r.rops

(* ------------------------------------------------------------------ *)
(* Use replacement *)

let replace_in_op (o : op) ~(from_ : value) ~(to_ : value) : unit =
  o.operands <-
    List.map (fun v -> if v.vid = from_.vid then to_ else v) o.operands

(** Replace all uses of [from_] with [to_] inside [r] (including nested
    regions). Definitions (results, region args) are left untouched. *)
let replace_uses_in_region (r : region) ~(from_ : value) ~(to_ : value) : unit
    =
  walk_region r (fun o -> replace_in_op o ~from_ ~to_)

let replace_uses_in_func (fn : func) ~(from_ : value) ~(to_ : value) : unit =
  match fn.fbody with
  | None -> ()
  | Some r -> replace_uses_in_region r ~from_ ~to_

(** Count uses of [v] within region [r]. *)
let count_uses (r : region) (v : value) : int =
  let n = ref 0 in
  walk_region r (fun o ->
      List.iter (fun u -> if u.vid = v.vid then incr n) o.operands);
  !n

(* ------------------------------------------------------------------ *)
(* Cloning (inlining, loop transforms) *)

module IntMap = Map.Make (Int)

type value_map = value IntMap.t

let map_value (vm : value_map) (v : value) : value =
  match IntMap.find_opt v.vid vm with Some v' -> v' | None -> v

(** Deep-clone an op, producing fresh result values and region arguments;
    [vm] maps old vids to replacement values and is threaded through so that
    intra-clone references resolve to the cloned values. Returns the cloned
    op and the extended map. *)
let rec clone_op (vm : value_map) (o : op) : op * value_map =
  let operands = List.map (map_value vm) o.operands in
  let results = List.map (fun v -> new_value ~hint:v.hint v.vty) o.results in
  let vm =
    List.fold_left2
      (fun acc old fresh -> IntMap.add old.vid fresh acc)
      vm o.results results
  in
  let regions, vm =
    List.fold_left
      (fun (rs, vm) r ->
        let r', vm' = clone_region vm r in
        (r' :: rs, vm'))
      ([], vm) o.regions
  in
  ( new_op ~operands ~results ~attrs:o.attrs ~regions:(List.rev regions) o.name,
    vm )

and clone_region (vm : value_map) (r : region) : region * value_map =
  let args = List.map (fun v -> new_value ~hint:v.hint v.vty) r.rargs in
  let vm =
    List.fold_left2
      (fun acc old fresh -> IntMap.add old.vid fresh acc)
      vm r.rargs args
  in
  let ops, vm =
    List.fold_left
      (fun (os, vm) o ->
        let o', vm' = clone_op vm o in
        (o' :: os, vm'))
      ([], vm) r.rops
  in
  (new_region ~args ~ops:(List.rev ops) (), vm)

(** Deep-clone a function. The body region is cloned with fresh values;
    [fparams] are remapped through the clone so they stay identical to the
    body region's arguments (the invariant the builders establish). *)
let clone_func (f : func) : func =
  match f.fbody with
  | None ->
      {
        fname = f.fname;
        fparams = List.map (fun v -> new_value ~hint:v.hint v.vty) f.fparams;
        fret = f.fret;
        fbody = None;
        fattrs = f.fattrs;
      }
  | Some r ->
      let r', vm = clone_region IntMap.empty r in
      {
        fname = f.fname;
        fparams = List.map (map_value vm) f.fparams;
        fret = f.fret;
        fbody = Some r';
        fattrs = f.fattrs;
      }

(** Deep-clone a module — the snapshot primitive of checked pass execution
    ({!Pass.run_to_fixpoint_stats} with [~checked]). The id generator is
    shared: ids only need to stay unique, and a restored snapshot must keep
    drawing fresh ones. *)
let clone_module (m : modul) : modul =
  { funcs = List.map clone_func m.funcs; gen = m.gen }

(** Overwrite [dst] with the contents of snapshot [src] — the rollback half
    of checked execution. *)
let restore_module ~(into : modul) (src : modul) : unit =
  into.funcs <- src.funcs

(* ------------------------------------------------------------------ *)
(* Queries *)

(** All values defined inside [r]: region args and op results, recursively. *)
let defined_values (r : region) : value list =
  let acc = ref [] in
  let rec go r =
    acc := r.rargs @ !acc;
    List.iter
      (fun o ->
        acc := o.results @ !acc;
        List.iter go o.regions)
      r.rops
  in
  go r;
  !acc

(** Values used inside [r] but defined outside — the capture set. An op such
    as [sdfg.tasklet] is IsolatedFromAbove precisely when this is empty. *)
let free_values (r : region) : value list =
  let defined = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace defined v.vid ()) (defined_values r);
  let seen = Hashtbl.create 16 in
  let free = ref [] in
  walk_region r (fun o ->
      List.iter
        (fun v ->
          if (not (Hashtbl.mem defined v.vid)) && not (Hashtbl.mem seen v.vid)
          then begin
            Hashtbl.replace seen v.vid ();
            free := v :: !free
          end)
        o.operands);
  List.rev !free

(** The op (within this exact region's top level or nested) defining [v], if
    any. *)
let defining_op (r : region) (v : value) : op option =
  let found = ref None in
  walk_region r (fun o ->
      if !found = None && List.exists (fun res -> res.vid = v.vid) o.results
      then found := Some o);
  !found
