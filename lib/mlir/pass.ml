(** Pass management: named module transforms with logging and fixpoint
    drivers, the homogenized pass infrastructure role MLIR plays in the
    paper's pipeline.

    Every pass execution is instrumented through {!Dcir_obs.Obs}: when
    collection is enabled, each pass records a span with its wall time,
    whether it changed the IR, and the module op-count delta; each fixpoint
    round gets its own nesting span (the [-mlir-timing] role). Fixpoint
    drivers also report structured statistics — per-pass change counts and
    the number of rounds — through {!pipeline_stats}. *)

module Obs = Dcir_obs.Obs
module Json = Dcir_obs.Json

let log_src = Logs.Src.create "dcir.mlir.pass" ~doc:"MLIR pass manager"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  pname : string;
  run : Ir.modul -> bool;  (** returns whether the IR changed *)
}

let make (pname : string) (run : Ir.modul -> bool) : t = { pname; run }

let count_ops (m : Ir.modul) : int =
  let n = ref 0 in
  Ir.walk_module m (fun _ -> incr n);
  !n

(* Run one pass, recording a telemetry span (wall time, changed flag,
   op-count delta) when collection is enabled. *)
let run_one (p : t) (m : Ir.modul) : bool =
  let c =
    if not (Obs.enabled ()) then p.run m
    else
      Obs.with_span ~cat:"mlir-pass" p.pname (fun () ->
          let before = count_ops m in
          let c = p.run m in
          Obs.set_args
            [
              ("changed", Json.Bool c);
              ("ops_before", Json.Int before);
              ("ops_after", Json.Int (count_ops m));
            ];
          c)
  in
  Log.debug (fun f ->
      f "pass %s: %s" p.pname (if c then "changed" else "no change"));
  c

(** Run passes in order; returns whether any changed the IR. *)
let run_pipeline (passes : t list) (m : Ir.modul) : bool =
  List.fold_left (fun changed p -> run_one p m || changed) false passes

type pipeline_stats = {
  rounds : int;  (** fixpoint iterations executed, including the final
                     no-progress round that confirms convergence *)
  applications : (string * int) list;
      (** pass name -> number of runs that changed the IR, pipeline order *)
}

(** Like {!run_to_fixpoint}, additionally reporting per-pass change counts
    and the round count. *)
let run_to_fixpoint_stats ?(max_iters = 20) (passes : t list) (m : Ir.modul) :
    bool * pipeline_stats =
  let apps = Hashtbl.create (List.length passes) in
  let bump name =
    Hashtbl.replace apps name (1 + Option.value ~default:0 (Hashtbl.find_opt apps name))
  in
  let changed_once = ref false in
  let continue_ = ref true in
  let iters = ref 0 in
  while !continue_ && !iters < max_iters do
    incr iters;
    let c =
      Obs.with_span ~cat:"mlir-fixpoint"
        (Printf.sprintf "round %d" !iters)
        (fun () ->
          List.fold_left
            (fun changed p ->
              let c = run_one p m in
              if c then bump p.pname;
              changed || c)
            false passes)
    in
    Log.debug (fun f ->
        f "fixpoint round %d: %s" !iters (if c then "progress" else "stable"));
    changed_once := !changed_once || c;
    continue_ := c
  done;
  ( !changed_once,
    {
      rounds = !iters;
      applications =
        List.map
          (fun p ->
            (p.pname, Option.value ~default:0 (Hashtbl.find_opt apps p.pname)))
          passes;
    } )

(** Repeat the pipeline until no pass reports a change (bounded to avoid
    divergence from a buggy pass). *)
let run_to_fixpoint ?(max_iters = 20) (passes : t list) (m : Ir.modul) : bool
    =
  fst (run_to_fixpoint_stats ~max_iters passes m)

(** Lift a per-function transform to a module pass. *)
let per_function (pname : string) (run_fn : Ir.func -> bool) : t =
  make pname (fun m ->
      List.fold_left (fun acc f -> run_fn f || acc) false m.funcs)
