(** Pass management: named module transforms with logging and fixpoint
    drivers, the homogenized pass infrastructure role MLIR plays in the
    paper's pipeline.

    Every pass execution is instrumented through {!Dcir_obs.Obs}: when
    collection is enabled, each pass records a span with its wall time,
    whether it changed the IR, and the module op-count delta; each fixpoint
    round gets its own nesting span (the [-mlir-timing] role). Fixpoint
    drivers also report structured statistics — per-pass change counts and
    the number of rounds — through {!pipeline_stats}.

    {b Checked execution} ([~checked:true]): before each pass the module is
    snapshotted ({!Ir.clone_module}); after it, {!Verifier.verify_module}
    re-checks the IR. If the pass raised or left the IR invalid, the module
    is rolled back to the snapshot, the incident is recorded (an
    [mlir.pass.rollbacks] {!Obs.Counter} plus a [rollback] span and a
    {!Dcir_support.Diagnostics.incident} in the stats), a crash-reproducer
    file (pre-pass IR + the single-pass pipeline that triggers the fault,
    MLIR-style) is written, and the pass's circuit breaker trips: it stays
    open for a cooldown of fixpoint rounds, is then probationally
    re-admitted, and re-closes only after clean applications
    ({!Dcir_resilience.Breaker}) — degraded output beats a crash. *)

module Obs = Dcir_obs.Obs
module Json = Dcir_obs.Json
module Diag = Dcir_support.Diagnostics
module Budget = Dcir_resilience.Budget
module Breaker = Dcir_resilience.Breaker
module Events = Dcir_obs.Events
module Om = Dcir_obs.Metrics
module Chaos = Dcir_resilience.Chaos
module Journal = Dcir_resilience.Journal

let log_src = Logs.Src.create "dcir.mlir.pass" ~doc:"MLIR pass manager"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  pname : string;
  run : Ir.modul -> bool;  (** returns whether the IR changed *)
}

let make (pname : string) (run : Ir.modul -> bool) : t = { pname; run }

let count_ops (m : Ir.modul) : int =
  let n = ref 0 in
  Ir.walk_module m (fun _ -> incr n);
  !n

(* Chaos corruption: prepend an op whose operand is a fresh value no op
   ever defines — a use-before-def the verifier's dominance check is
   guaranteed to reject. This is the "rewrite that produces invalid IR"
   fault: checked execution must roll it back, unchecked pipelines must
   catch it at the next verification phase. *)
let corrupt_module (m : Ir.modul) : unit =
  match
    List.find_opt (fun (f : Ir.func) -> f.Ir.fbody <> None) m.Ir.funcs
  with
  | Some { fbody = Some r; _ } ->
      let ghost = Ir.new_value ~hint:"chaos" Types.I64 in
      let res = Ir.new_value ~hint:"chaos" Types.I64 in
      let bogus =
        Ir.new_op ~operands:[ ghost; ghost ] ~results:[ res ] "arith.addi"
      in
      r.rops <- bogus :: r.rops
  | _ -> ()

(* Run one pass, recording a telemetry span (wall time, changed flag,
   op-count delta) when collection is enabled. Consults the ambient chaos
   plan: a crash site raises {!Chaos.Injected} in place of the pass; a
   corrupt site runs the pass and then invalidates its output. *)
let run_one (p : t) (m : Ir.modul) : bool =
  let inject = Chaos.tick_pass () in
  (match inject with
  | `Crash ->
      Journal.note ~kind:"chaos-injected"
        [ ("fault", Json.Str "pass-crash"); ("pass", Json.Str p.pname) ];
      raise (Chaos.Injected (Chaos.Pass_crash, p.pname))
  | `Ok | `Corrupt -> ());
  let c =
    if not (Obs.enabled ()) then p.run m
    else
      Obs.with_span ~cat:"mlir-pass" p.pname (fun () ->
          let before = count_ops m in
          let c = p.run m in
          Obs.set_args
            [
              ("changed", Json.Bool c);
              ("ops_before", Json.Int before);
              ("ops_after", Json.Int (count_ops m));
            ];
          c)
  in
  (match inject with
  | `Corrupt ->
      corrupt_module m;
      Journal.note ~kind:"chaos-injected"
        [ ("fault", Json.Str "corrupt-rewrite"); ("pass", Json.Str p.pname) ]
  | `Ok | `Crash -> ());
  Log.debug (fun f ->
      f "pass %s: %s" p.pname (if c then "changed" else "no change"));
  c

(** Run passes in order; returns whether any changed the IR. *)
let run_pipeline (passes : t list) (m : Ir.modul) : bool =
  List.fold_left (fun changed p -> run_one p m || changed) false passes

(* ------------------------------------------------------------------ *)
(* Checked execution *)

let sanitize_name (s : string) : string =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '-')
    s

(* Crash reproducer, MLIR-style: the pre-pass IR plus the (single-pass)
   pipeline that triggers the fault. Returns the path, or [None] when the
   directory is not writable — reproducers are best-effort and must never
   turn a recovered failure back into a crash. *)
let write_reproducer ?(ext = ".mlir") ~(dir : string) ~(prefix : string)
    ~(pass_name : string) ~(reason : string) (ir_text : string) :
    string option =
  try
    let path =
      Filename.temp_file ~temp_dir:dir
        (Printf.sprintf "%s-%s-" prefix (sanitize_name pass_name))
        ext
    in
    let oc = open_out path in
    Printf.fprintf oc "// dcir crash reproducer\n// failed pass: %s\n" pass_name;
    List.iter
      (fun line -> Printf.fprintf oc "// reason: %s\n" line)
      (String.split_on_char '\n' reason);
    Printf.fprintf oc "// configuration: pass-pipeline='%s'\n%s" pass_name
      ir_text;
    close_out oc;
    Some path
  with Sys_error _ -> None

let record_rollback ~(counter : string) ~(pass_name : string)
    ~(reason : string) (reproducer : string option) : unit =
  Obs.Counter.incr (Obs.Counter.make counter);
  if Obs.enabled () then
    Obs.with_span ~cat:"rollback" ("rollback:" ^ pass_name) (fun () ->
        Obs.set_args
          ([ ("reason", Json.Str reason) ]
          @
          match reproducer with
          | Some p -> [ ("reproducer", Json.Str p) ]
          | None -> []))

(* Run one pass under checked execution: snapshot, run, re-verify. On a
   crash or a verification failure, roll back and report the incident. *)
let run_one_checked ~(round : int) ~(reproducer_dir : string) (p : t)
    (m : Ir.modul) : bool * Diag.incident option =
  let snapshot = Ir.clone_module m in
  let outcome =
    match run_one p m with
    | changed -> (
        match
          List.filter
            (fun (d : Verifier.diagnostic) -> d.severity = `Error)
            (Verifier.verify_module m)
        with
        | [] -> Ok changed
        | errs ->
            (* The stable summary avoids SSA value names (globally
               allocated ids), keeping journals byte-reproducible. *)
            Error
              ( String.concat "\n"
                  (List.map
                     (fun d -> Fmt.str "%a" Verifier.pp_diagnostic d)
                     errs),
                Printf.sprintf "verification failed (%d error%s)"
                  (List.length errs)
                  (if List.length errs = 1 then "" else "s") ))
    | exception exn ->
        let s = "pass raised: " ^ Printexc.to_string exn in
        Error (s, s)
  in
  match outcome with
  | Ok changed -> (changed, None)
  | Error (reason, stable) ->
      Ir.restore_module ~into:m snapshot;
      Journal.note ~kind:"pass-rollback"
        [
          ("domain", Json.Str "control");
          ("pass", Json.Str p.pname);
          ("round", Json.Int round);
          ("reason", Json.Str stable);
        ];
      let reproducer =
        write_reproducer ~dir:reproducer_dir ~prefix:"dcir-repro"
          ~pass_name:p.pname ~reason
          (Printer.module_to_string m)
      in
      record_rollback ~counter:"mlir.pass.rollbacks" ~pass_name:p.pname
        ~reason reproducer;
      Log.err (fun f ->
          f "pass %s failed verification and was rolled back: %s" p.pname
            reason);
      (false, Some { Diag.in_pass = p.pname; in_round = round; reason; reproducer })

type pipeline_stats = {
  rounds : int;  (** fixpoint iterations executed, including the final
                     no-progress round that confirms convergence *)
  applications : (string * int) list;
      (** pass name -> number of runs that changed the IR, pipeline order *)
  incidents : Diag.incident list;
      (** checked-mode rollbacks, chronological ([[]] when unchecked or
          when every pass behaved) *)
}

(** Like {!run_to_fixpoint}, additionally reporting per-pass change counts
    and the round count. With [~checked:true], every pass runs under
    snapshot/verify/rollback (see the module doc); a pass that fails trips
    its circuit [breaker] — open for a cooldown, then probationally
    re-admitted — and is reported in [stats.incidents]. [budget] charges
    one unit of optimization fuel per pass application; [breaker] defaults
    to a fresh (session-scoped) instance but callers may share one across
    fixpoint runs. [reproducer_dir] is where crash reproducers are written
    (default: the system temp directory). *)
(* Rounds-to-convergence distribution across every control-side fixpoint
   run in the process (one observation per run). *)
let rounds_hist =
  Om.Histogram.make "mlir.fixpoint.rounds" ~edges:[| 1.; 2.; 3.; 5.; 8.; 13. |]

let run_to_fixpoint_stats ?(max_iters = 20) ?(checked = false)
    ?(budget : Budget.t option) ?(breaker : Breaker.t option)
    ?(reproducer_dir = Filename.get_temp_dir_name ()) (passes : t list)
    (m : Ir.modul) : bool * pipeline_stats =
  let breaker = match breaker with Some b -> b | None -> Breaker.create () in
  let apps = Hashtbl.create (List.length passes) in
  let bump name =
    Hashtbl.replace apps name (1 + Option.value ~default:0 (Hashtbl.find_opt apps name))
  in
  let incidents = ref [] in
  let changed_once = ref false in
  let continue_ = ref true in
  let iters = ref 0 in
  while !continue_ && !iters < max_iters do
    incr iters;
    let c =
      Obs.with_span ~cat:"mlir-fixpoint"
        (Printf.sprintf "round %d" !iters)
        (fun () ->
          List.fold_left
            (fun changed p ->
              if not (Breaker.admits breaker p.pname) then begin
                if Events.active () then
                  Events.emit ~code:"PASS-SKIP"
                    [
                      ("domain", Json.Str "control");
                      ("pass", Json.Str p.pname);
                      ("round", Json.Int !iters);
                      ("breaker", Json.Str (Breaker.state_name breaker p.pname));
                      ( "failures",
                        Json.Int (Breaker.failure_count breaker p.pname) );
                    ];
                changed
              end
              else begin
                Option.iter Budget.burn_fuel budget;
                let c =
                  if not checked then run_one p m
                  else begin
                    let c, incident =
                      run_one_checked ~round:!iters ~reproducer_dir p m
                    in
                    (match incident with
                    | Some i ->
                        incidents := i :: !incidents;
                        Breaker.record_failure breaker p.pname
                    | None -> Breaker.record_success breaker p.pname);
                    c
                  end
                in
                if Events.active () then
                  Events.emit ~code:"PASS-ADMIT"
                    [
                      ("domain", Json.Str "control");
                      ("pass", Json.Str p.pname);
                      ("round", Json.Int !iters);
                      ("changed", Json.Bool c);
                    ];
                if c then bump p.pname;
                changed || c
              end)
            false passes)
    in
    Breaker.end_round breaker;
    Log.debug (fun f ->
        f "fixpoint round %d: %s" !iters (if c then "progress" else "stable"));
    changed_once := !changed_once || c;
    continue_ := c
  done;
  Om.Histogram.observe rounds_hist (float_of_int !iters);
  ( !changed_once,
    {
      rounds = !iters;
      applications =
        List.map
          (fun p ->
            (p.pname, Option.value ~default:0 (Hashtbl.find_opt apps p.pname)))
          passes;
      incidents = List.rev !incidents;
    } )

(** Repeat the pipeline until no pass reports a change (bounded to avoid
    divergence from a buggy pass). *)
let run_to_fixpoint ?(max_iters = 20) ?(checked = false) ?reproducer_dir
    (passes : t list) (m : Ir.modul) : bool =
  fst (run_to_fixpoint_stats ~max_iters ~checked ?reproducer_dir passes m)

(** Lift a per-function transform to a module pass. *)
let per_function (pname : string) (run_fn : Ir.func -> bool) : t =
  make pname (fun m ->
      List.fold_left (fun acc f -> run_fn f || acc) false m.funcs)
