(** Textual dump of an SDFG — the debugging/teaching view used by examples
    and the CLI ([dcir compile --emit sdfg]). *)

open Dcir_symbolic

let pp_dtype ppf = function
  | Sdfg.DInt -> Fmt.string ppf "int"
  | Sdfg.DFloat -> Fmt.string ppf "float"

let pp_storage ppf = function
  | Sdfg.Heap -> Fmt.string ppf "heap"
  | Sdfg.Stack -> Fmt.string ppf "stack"
  | Sdfg.Register -> Fmt.string ppf "register"

let pp_container ppf (c : Sdfg.container) =
  Fmt.pf ppf "%s%s: %a%a @@%a%s" c.cname
    (if c.transient then " (transient)" else "")
    pp_dtype c.dtype
    (fun ppf shape ->
      if shape <> [] then
        Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ", ") Expr.pp) shape)
    c.shape pp_storage c.storage
    (if c.alloc_in_loop then " (alloc in loop)" else "")

let pp_memlet ppf (m : Sdfg.memlet) =
  Fmt.pf ppf "%s%a%s" m.data Range.pp m.subset
    (match m.wcr with
    | Some w -> " (wcr: " ^ Sdfg.wcr_to_string w ^ ")"
    | None -> "")

let node_label (n : Sdfg.node) : string =
  match n.kind with
  | Sdfg.Access name -> Printf.sprintf "access(%s)#%d" name n.nid
  | Sdfg.TaskletN t -> Printf.sprintf "tasklet(%s)#%d" t.tname n.nid
  | Sdfg.MapN mn ->
      Printf.sprintf "map[%s]#%d" (String.concat "," mn.m_params) n.nid

let rec pp_graph ?(indent = "  ") ppf (g : Sdfg.graph) =
  List.iter
    (fun (n : Sdfg.node) ->
      match n.kind with
      | Sdfg.TaskletN { code = Native assigns; _ } ->
          Fmt.pf ppf "%s%s:@." indent (node_label n);
          List.iter
            (fun (out, e) ->
              Fmt.pf ppf "%s    %s = %a@." indent out Texpr.pp e)
            assigns
      | Sdfg.TaskletN { code = Opaque f; _ } ->
          (* Print the full unit body: the printed SDFG is the content
             store's identity, so two tasklets may look alike only when
             they compute the same thing — the serial-numbered unit name
             alone says nothing about semantics. *)
          Fmt.pf ppf "%s%s: <opaque unit @%s>@." indent (node_label n)
            f.Dcir_mlir.Ir.fname;
          List.iter
            (fun line -> Fmt.pf ppf "%s    | %s@." indent line)
            (String.split_on_char '\n'
               (String.trim (Dcir_mlir.Printer.func_to_string f)))
      | Sdfg.MapN mn ->
          Fmt.pf ppf "%s%s ranges %a:@." indent (node_label n) Range.pp
            mn.m_ranges;
          pp_graph ~indent:(indent ^ "  ") ppf mn.m_body
      | Sdfg.Access _ -> ())
    (Sdfg.nodes g);
  List.iter
    (fun (e : Sdfg.edge) ->
      let conn = function Some c -> ":" ^ c | None -> "" in
      Fmt.pf ppf "%s%s%s -> %s%s%s@." indent
        (node_label (Sdfg.node_by_id g e.e_src))
        (conn e.e_src_conn)
        (node_label (Sdfg.node_by_id g e.e_dst))
        (conn e.e_dst_conn)
        (match e.e_memlet with
        | Some m -> Fmt.str "  [%a]" pp_memlet m
        | None -> "  [dep]"))
    (Sdfg.edges g)

let pp ppf (sdfg : Sdfg.t) =
  Fmt.pf ppf "sdfg %s (args: %s; symbols: %s)@." sdfg.name
    (String.concat ", " (Sdfg.arg_order sdfg))
    (String.concat ", " sdfg.arg_symbols);
  let containers =
    Hashtbl.fold (fun _ c acc -> c :: acc) sdfg.containers []
    |> List.sort (fun (a : Sdfg.container) b -> compare a.cname b.cname)
  in
  List.iter (fun c -> Fmt.pf ppf "  container %a@." pp_container c) containers;
  List.iter
    (fun (s : Sdfg.state) ->
      Fmt.pf ppf "  state %s%s:@." s.s_label
        (if String.equal s.s_label sdfg.start_state then " (start)" else "");
      pp_graph ~indent:"    " ppf s.s_graph)
    (Sdfg.states sdfg);
  List.iter
    (fun (e : Sdfg.istate_edge) ->
      Fmt.pf ppf "  edge %s -> %s" e.ie_src e.ie_dst;
      (match e.ie_cond with
      | Bexpr.Bool true -> ()
      | c -> Fmt.pf ppf " if (%a)" Bexpr.pp c);
      if e.ie_assign <> [] then
        Fmt.pf ppf " {%a}"
          (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (s, ex) ->
               Fmt.pf ppf "%s = %a" s Expr.pp ex))
          e.ie_assign;
      Fmt.pf ppf "@.")
    (Sdfg.istate_edges sdfg);
  (match (sdfg.return_scalar, sdfg.return_expr) with
  | Some c, _ -> Fmt.pf ppf "  return %s@." c
  | None, Some e -> Fmt.pf ppf "  return %a@." Expr.pp e
  | None, None -> ())

let to_string (sdfg : Sdfg.t) : string = Fmt.str "%a" pp sdfg
