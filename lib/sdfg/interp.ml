(** SDFG interpreter over the simulated machine.

    Executes the state machine: run a state's dataflow graph in topological
    order, then take the first outgoing interstate edge whose condition
    holds, applying its symbol assignments. Cost conventions deliberately
    mirror {!Dcir_mlir.Interp} so cross-pipeline cycle comparisons are fair:

    - memory traffic goes through the same {!Dcir_machine.Machine};
    - scalar containers default to [Register] storage (DaCe code-generates
      them as C++ locals), costing a [Move] per access — like post-mem2reg
      SSA values on the MLIR side;
    - a conditional state transition costs one [Branch]; unconditional
      transitions are free (fall-through in generated code); an interstate
      assignment costs one [Int_alu];
    - opaque tasklets (MLIR/C units) pay a per-invocation call overhead and
      execute through the MLIR interpreter — the separate-translation-unit
      cost §5.2 describes. *)

open Dcir_symbolic
open Dcir_machine

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

type runtime = {
  machine : Machine.t;
  sdfg : Sdfg.t;
  buffers : (string, Machine.buffer) Hashtbl.t;
  dims : (string, int array) Hashtbl.t;
  symbols : (string, int) Hashtbl.t;
  topo_cache : (int, Sdfg.node list) Hashtbl.t;
      (** keyed by the nid of the first node; per-graph order cache *)
  alloc_charged : (string, unit) Hashtbl.t;
  last_outputs : (string, Value.t) Hashtbl.t;
      (** "nid:conn" -> value of the most recent execution, for direct
          tasklet-to-tasklet value edges created by scalar elimination *)
  mutable steps : int;
  profile : Dcir_obs.Obs.Profile.t option;
      (** when set, cycles/loads/stores attribution per state (partitioning
          total execution) and per tasklet (inclusive) *)
}

let metric_snap (rt : runtime) : (float * int * int) option =
  match rt.profile with
  | None -> None
  | Some _ ->
      let mt = Machine.metrics rt.machine in
      Some (mt.cycles, mt.loads, mt.stores)

let profile_record (rt : runtime) (snap : (float * int * int) option)
    ~(kind : string) ~(name : string) : unit =
  match (rt.profile, snap) with
  | Some p, Some (c0, l0, s0) ->
      let mt = Machine.metrics rt.machine in
      Dcir_obs.Obs.Profile.record p ~kind ~name ~cycles:(mt.cycles -. c0)
        ~loads:(mt.loads - l0) ~stores:(mt.stores - s0)
  | _ -> ()

let sym_env (rt : runtime) : string -> int option =
  fun s ->
    match Hashtbl.find_opt rt.symbols s with
    | Some v -> Some v
    | None -> (
        (* Interstate conditions may read scalar containers directly
           (data-dependent control flow before symbol promotion). *)
        match Hashtbl.find_opt rt.buffers s with
        | Some b when b.size = 1 ->
            Machine.charge_op rt.machine Move;
            Some (Value.as_int (Machine.peek b 0))
        | _ -> None)

let eval_expr (rt : runtime) (e : Expr.t) : int =
  match Expr.eval (sym_env rt) e with
  | v -> v
  | exception Expr.Unbound_symbol s -> trap "unbound symbol '%s'" s

let eval_range_dim (rt : runtime) (d : Range.dim) : int * int * int =
  (eval_expr rt d.lo, eval_expr rt d.hi, eval_expr rt d.step)

let storage_of : Sdfg.storage -> Machine.storage = function
  | Sdfg.Heap -> Machine.Heap
  | Sdfg.Stack -> Machine.Stack
  | Sdfg.Register -> Machine.Register

let zero_of (c : Sdfg.container) : Value.t =
  match c.dtype with Sdfg.DInt -> Value.VInt 0 | Sdfg.DFloat -> Value.VFloat 0.0

(* Forward declaration: set below, after lazy allocation is defined. *)
let dims_ref : (runtime -> string -> int array) ref =
  ref (fun _ _ -> assert false)

(* Linearize an index tuple; mirrors Mlir.Interp cost (one Int_alu per extra
   dimension). *)
let linearize (rt : runtime) (name : string) (indices : int list) : int =
  let dims = !dims_ref rt name in
  if List.length indices <> Array.length dims then
    trap "container '%s': %d indices for rank %d" name (List.length indices)
      (Array.length dims);
  let lin = ref 0 in
  List.iteri
    (fun k idx ->
      if k > 0 then Machine.charge_op rt.machine Int_alu;
      lin := (!lin * dims.(k)) + idx)
    indices;
  !lin

(* Transients are allocated lazily at first access: their symbolic sizes may
   reference scalar containers whose values only exist once execution reaches
   the allocation point (e.g. malloc sizes flowing through scalars). *)
let rec buffer_of (rt : runtime) (name : string) : Machine.buffer =
  match Hashtbl.find_opt rt.buffers name with
  | Some b -> b
  | None -> (
      match Hashtbl.find_opt rt.sdfg.containers name with
      | Some c when c.transient ->
          let dims = Array.of_list (List.map (eval_expr rt) c.shape) in
          let elems = Array.fold_left ( * ) 1 dims in
          let charge_alloc = (not c.alloc_in_loop) && c.alloc_state = None in
          let saved = (Machine.metrics rt.machine).cycles in
          let saved_allocs = (Machine.metrics rt.machine).heap_allocs in
          let b =
            Machine.alloc rt.machine ~storage:(storage_of c.storage) ~elems
              ~elem_bytes:(Sdfg.elem_bytes c) ~zero_init:(zero_of c)
          in
          if not charge_alloc then begin
            (* Recurring cost is charged per execution of the allocating
               state instead. *)
            (Machine.metrics rt.machine).cycles <- saved;
            (Machine.metrics rt.machine).heap_allocs <- saved_allocs
          end;
          Hashtbl.replace rt.buffers name b;
          Hashtbl.replace rt.dims name dims;
          b
      | Some _ -> trap "argument container '%s' has no buffer" name
      | None -> trap "container '%s' does not exist" name)

and dims_of (rt : runtime) (name : string) : int array =
  ignore (buffer_of rt name);
  match Hashtbl.find_opt rt.dims name with
  | Some d -> d
  | None -> trap "no dims for container '%s'" name

let () = dims_ref := dims_of

let read_element (rt : runtime) (m : Sdfg.memlet) (indices : int list) :
    Value.t =
  Machine.load rt.machine (buffer_of rt m.data) (linearize rt m.data indices)

let apply_wcr (rt : runtime) (w : Sdfg.wcr) (old_v : Value.t) (v : Value.t) :
    Value.t =
  let is_f = Value.is_float old_v || Value.is_float v in
  let charge_cls : Cost.op_class = if is_f then Fp_add else Int_alu in
  Machine.charge_op rt.machine charge_cls;
  match (w, is_f) with
  | Sdfg.WcrSum, true -> Value.VFloat (Value.as_float old_v +. Value.as_float v)
  | Sdfg.WcrSum, false -> Value.VInt (Value.as_int old_v + Value.as_int v)
  | Sdfg.WcrProd, true -> Value.VFloat (Value.as_float old_v *. Value.as_float v)
  | Sdfg.WcrProd, false -> Value.VInt (Value.as_int old_v * Value.as_int v)
  | Sdfg.WcrMax, true -> Value.VFloat (Float.max (Value.as_float old_v) (Value.as_float v))
  | Sdfg.WcrMax, false -> Value.VInt (max (Value.as_int old_v) (Value.as_int v))
  | Sdfg.WcrMin, true -> Value.VFloat (Float.min (Value.as_float old_v) (Value.as_float v))
  | Sdfg.WcrMin, false -> Value.VInt (min (Value.as_int old_v) (Value.as_int v))

let write_element (rt : runtime) (m : Sdfg.memlet) (indices : int list)
    (v : Value.t) : unit =
  let buf = buffer_of rt m.data in
  let lin = linearize rt m.data indices in
  match m.wcr with
  | None -> Machine.store rt.machine buf lin v
  | Some w ->
      let old_v = Machine.load rt.machine buf lin in
      Machine.store rt.machine buf lin (apply_wcr rt w old_v v)

(* Evaluate the concrete index tuple of a single-element subset. *)
let subset_indices (rt : runtime) (s : Range.t) : int list option =
  if List.for_all Range.is_index s then
    Some (List.map (fun (d : Range.dim) -> eval_expr rt d.lo) s)
  else None

(* ------------------------------------------------------------------ *)
(* Tasklet evaluation *)

type conn_value =
  | CScalar of Value.t
  | CArray of string  (** whole-container binding for indirect access *)

let rec eval_texpr (rt : runtime) (env : (string * conn_value) list)
    (e : Texpr.t) : Value.t =
  let m = rt.machine in
  match e with
  | Texpr.TFloat f -> VFloat f
  | Texpr.TInt n -> VInt n
  | Texpr.TSym s -> (
      match sym_env rt s with
      | Some v -> VInt v
      | None -> trap "tasklet references unbound symbol '%s'" s)
  | Texpr.TIn c -> (
      match List.assoc_opt c env with
      | Some (CScalar v) -> v
      | Some (CArray _) -> trap "connector '%s' is an array, not a scalar" c
      | None -> trap "unbound input connector '%s'" c)
  | Texpr.TIndex (c, idxs) -> (
      match List.assoc_opt c env with
      | Some (CArray data) ->
          let indices =
            List.map (fun i -> Value.as_int (eval_texpr rt env i)) idxs
          in
          Machine.load m (buffer_of rt data) (linearize rt data indices)
      | Some (CScalar _) -> trap "connector '%s' is scalar; cannot index" c
      | None -> trap "unbound input connector '%s'" c)
  | Texpr.TBin (op, a, b) -> (
      let va = eval_texpr rt env a and vb = eval_texpr rt env b in
      let is_f = Value.is_float va || Value.is_float vb in
      (match (op, is_f) with
      | (Texpr.BAdd | Texpr.BSub | Texpr.BMin | Texpr.BMax), true ->
          Machine.charge_op m Fp_add
      | Texpr.BMul, true -> Machine.charge_op m Fp_mul
      | Texpr.BDiv, true -> Machine.charge_op m Fp_div
      | (Texpr.BAdd | Texpr.BSub | Texpr.BMin | Texpr.BMax), false ->
          Machine.charge_op m Int_alu
      | Texpr.BMul, false -> Machine.charge_op m Int_mul
      | (Texpr.BDiv | Texpr.BMod), false -> Machine.charge_op m Int_div
      | Texpr.BMod, true -> Machine.charge_op m Fp_div);
      if is_f then
        let x = Value.as_float va and y = Value.as_float vb in
        VFloat
          (match op with
          | Texpr.BAdd -> x +. y
          | Texpr.BSub -> x -. y
          | Texpr.BMul -> x *. y
          | Texpr.BDiv -> x /. y
          | Texpr.BMod -> Float.rem x y
          | Texpr.BMin -> Float.min x y
          | Texpr.BMax -> Float.max x y)
      else
        let x = Value.as_int va and y = Value.as_int vb in
        VInt
          (match op with
          | Texpr.BAdd -> x + y
          | Texpr.BSub -> x - y
          | Texpr.BMul -> x * y
          | Texpr.BDiv ->
              if y = 0 then trap "division by zero in tasklet" else x / y
          | Texpr.BMod ->
              if y = 0 then trap "modulo by zero in tasklet" else x mod y
          | Texpr.BMin -> min x y
          | Texpr.BMax -> max x y))
  | Texpr.TCmp (op, a, b) ->
      let va = eval_texpr rt env a and vb = eval_texpr rt env b in
      Machine.charge_op m Int_alu;
      let r =
        if Value.is_float va || Value.is_float vb then
          let x = Value.as_float va and y = Value.as_float vb in
          match op with
          | Texpr.CEq -> x = y
          | Texpr.CNe -> x <> y
          | Texpr.CLt -> x < y
          | Texpr.CLe -> x <= y
          | Texpr.CGt -> x > y
          | Texpr.CGe -> x >= y
        else
          let x = Value.as_int va and y = Value.as_int vb in
          match op with
          | Texpr.CEq -> x = y
          | Texpr.CNe -> x <> y
          | Texpr.CLt -> x < y
          | Texpr.CLe -> x <= y
          | Texpr.CGt -> x > y
          | Texpr.CGe -> x >= y
      in
      Value.of_bool r
  | Texpr.TSelect (c, a, b) ->
      Machine.charge_op m Int_alu;
      if Value.as_bool (eval_texpr rt env c) then eval_texpr rt env a
      else eval_texpr rt env b
  | Texpr.TUn (`Neg, a) -> (
      match eval_texpr rt env a with
      | VFloat f ->
          Machine.charge_op m Fp_add;
          VFloat (-.f)
      | VInt n ->
          Machine.charge_op m Int_alu;
          VInt (-n))
  | Texpr.TUn (`Not, a) ->
      Machine.charge_op m Int_alu;
      Value.of_bool (not (Value.as_bool (eval_texpr rt env a)))
  | Texpr.TUn (`ToFloat, a) ->
      Machine.charge_op m Move;
      VFloat (Value.as_float (eval_texpr rt env a))
  | Texpr.TUn (`ToInt, a) ->
      Machine.charge_op m Move;
      VInt
        (match eval_texpr rt env a with
        | VFloat f -> int_of_float f
        | VInt n -> n)
  | Texpr.TCall (fname, args) ->
      let vargs = List.map (fun a -> Value.as_float (eval_texpr rt env a)) args in
      (match fname with
      | "sqrt" -> Machine.charge_op m Fp_sqrt
      | _ -> Machine.charge_op m Math_call);
      VFloat
        (match (fname, vargs) with
        | "exp", [ x ] -> Stdlib.exp x
        | "log", [ x ] -> Stdlib.log x
        | "sqrt", [ x ] -> Stdlib.sqrt x
        | "tanh", [ x ] -> Stdlib.tanh x
        | "fabs", [ x ] -> Stdlib.abs_float x
        | "sin", [ x ] -> Stdlib.sin x
        | "cos", [ x ] -> Stdlib.cos x
        | "pow", [ x; y ] -> Stdlib.( ** ) x y
        | _ -> trap "unknown math call '%s'" fname)

(* ------------------------------------------------------------------ *)
(* Node execution *)

let topo_of (rt : runtime) (g : Sdfg.graph) : Sdfg.node list =
  match g.nodes with
  | [] -> []
  | first :: _ -> (
      match Hashtbl.find_opt rt.topo_cache first.nid with
      | Some order when List.length order = List.length g.nodes -> order
      | _ ->
          let order = Sdfg.topo_order g in
          Hashtbl.replace rt.topo_cache first.nid order;
          order)

let rec exec_graph (rt : runtime) (g : Sdfg.graph) : unit =
  rt.steps <- rt.steps + 1;
  if rt.steps > 200_000_000 then trap "execution step limit exceeded";
  List.iter
    (fun (n : Sdfg.node) ->
      match n.kind with
      | Sdfg.Access _ -> exec_access_copies rt g n
      | Sdfg.TaskletN t -> exec_tasklet rt g n t
      | Sdfg.MapN mn -> exec_map rt mn)
    (topo_of rt g)

(* Copies: Access -> Access edges with a memlet move subset-many elements. *)
and exec_access_copies (rt : runtime) (g : Sdfg.graph) (n : Sdfg.node) : unit =
  List.iter
    (fun (e : Sdfg.edge) ->
      match ((Sdfg.node_by_id g e.e_dst).kind, e.e_memlet) with
      | Sdfg.Access dst_name, Some m ->
          let src_buf = buffer_of rt m.data in
          let dst_buf = buffer_of rt dst_name in
          let dst_subset =
            match m.other with
            | Some o -> o
            | None -> m.subset (* same-region copy *)
          in
          let write_one dst_indices v =
            let lin = linearize rt dst_name dst_indices in
            match m.wcr with
            | None -> Machine.store rt.machine dst_buf lin v
            | Some w ->
                let old_v = Machine.load rt.machine dst_buf lin in
                Machine.store rt.machine dst_buf lin (apply_wcr rt w old_v v)
          in
          let src_dims = List.map (eval_range_dim rt) m.subset in
          let dst_dims = List.map (eval_range_dim rt) dst_subset in
          let single ds = List.for_all (fun (lo, hi, _) -> lo = hi) ds in
          if single src_dims && single dst_dims then begin
            (* Element or scalar copy — the common converter-generated case;
               subset ranks may differ (array element <-> scalar). *)
            let src_idx = List.map (fun (lo, _, _) -> lo) src_dims in
            let dst_idx = List.map (fun (lo, _, _) -> lo) dst_dims in
            let v =
              Machine.load rt.machine src_buf (linearize rt m.data src_idx)
            in
            write_one dst_idx v
          end
          else begin
            (* Region copy: iterate the source subset row-major and map
               offsets into the destination subset. *)
            if List.length src_dims <> List.length dst_dims then
              trap "copy %s -> %s: subset rank mismatch" m.data dst_name;
            let rec iter src_prefix dst_prefix = function
              | [] ->
                  let v =
                    Machine.load rt.machine src_buf
                      (linearize rt m.data (List.rev src_prefix))
                  in
                  write_one (List.rev dst_prefix) v
              | ((lo, hi, step), (dlo, _, dstep)) :: rest ->
                  let i = ref lo and k = ref 0 in
                  while !i <= hi do
                    iter (!i :: src_prefix) ((dlo + (!k * dstep)) :: dst_prefix) rest;
                    i := !i + step;
                    incr k
                  done
            in
            iter [] [] (List.combine src_dims dst_dims)
          end
      | _ -> ())
    (Sdfg.node_out_edges g n)

and exec_tasklet (rt : runtime) (g : Sdfg.graph) (n : Sdfg.node)
    (t : Sdfg.tasklet) : unit =
  match rt.profile with
  | None -> exec_tasklet_body rt g n t
  | Some _ ->
      let snap = metric_snap rt in
      exec_tasklet_body rt g n t;
      profile_record rt snap ~kind:"tasklet" ~name:t.tname

and exec_tasklet_body (rt : runtime) (g : Sdfg.graph) (n : Sdfg.node)
    (t : Sdfg.tasklet) : unit =
  (* A connector is array-valued when the code indexes into it (native) or
     the corresponding parameter is a memref (opaque). *)
  let array_conns =
    match t.code with
    | Sdfg.Native assigns ->
        let rec collect acc (e : Texpr.t) =
          match e with
          | Texpr.TIndex (c, idxs) -> List.fold_left collect (c :: acc) idxs
          | Texpr.TBin (_, a, b) | Texpr.TCmp (_, a, b) ->
              collect (collect acc a) b
          | Texpr.TSelect (a, b, c) -> collect (collect (collect acc a) b) c
          | Texpr.TUn (_, a) -> collect acc a
          | Texpr.TCall (_, args) -> List.fold_left collect acc args
          | Texpr.TFloat _ | Texpr.TInt _ | Texpr.TIn _ | Texpr.TSym _ -> acc
        in
        List.fold_left (fun acc (_, e) -> collect acc e) [] assigns
    | Sdfg.Opaque f ->
        (* fparams = symbol args first, then input connectors. *)
        let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
        let conn_params = drop (List.length t.t_syms) f.Dcir_mlir.Ir.fparams in
        List.filter_map
          (fun (conn, (p : Dcir_mlir.Ir.value)) ->
            match p.vty with
            | Dcir_mlir.Types.MemRef _ -> Some conn
            | _ -> None)
          (try List.combine t.t_inputs conn_params with Invalid_argument _ -> [])
  in
  let env =
    List.filter_map
      (fun (e : Sdfg.edge) ->
        match (e.e_dst_conn, e.e_memlet) with
        | Some conn, Some m ->
            if List.mem conn array_conns then Some (conn, CArray m.data)
            else (
              match subset_indices rt m.subset with
              | Some idxs -> Some (conn, CScalar (read_element rt m idxs))
              | None ->
                  trap "tasklet '%s': scalar connector '%s' with non-index \
                        subset %s"
                    t.tname conn (Range.to_string m.subset))
        | Some conn, None -> (
            (* Direct value edge from another tasklet's output. *)
            match e.e_src_conn with
            | Some src_conn -> (
                let key = Printf.sprintf "%d:%s" e.e_src src_conn in
                match Hashtbl.find_opt rt.last_outputs key with
                | Some v -> Some (conn, CScalar v)
                | None ->
                    trap "tasklet '%s': value edge source %s not yet executed"
                      t.tname key)
            | None -> None)
        | _ -> None)
      (Sdfg.node_in_edges g n)
  in
  match t.code with
  | Sdfg.Native assigns ->
      let outs =
        List.map (fun (out, expr) -> (out, eval_texpr rt env expr)) assigns
      in
      write_outputs rt g n outs
  | Sdfg.Opaque f ->
      (* Run via the MLIR interpreter on the same machine; separately
         compiled units additionally pay their per-invocation overhead. *)
      Machine.charge rt.machine t.t_overhead;
      let modul = Dcir_mlir.Ir.new_module () in
      modul.funcs <- [ f ];
      let sym_args =
        List.map
          (fun s ->
            match sym_env rt s with
            | Some v -> Dcir_mlir.Interp.Scalar (Value.VInt v)
            | None -> trap "opaque tasklet '%s': unbound symbol '%s'" t.tname s)
          t.t_syms
      in
      let args =
        List.map
          (fun (conn : string) ->
            match List.assoc_opt conn env with
            | Some (CScalar v) -> Dcir_mlir.Interp.Scalar v
            | Some (CArray data) ->
                Dcir_mlir.Interp.Buf
                  { buf = buffer_of rt data; dims = dims_of rt data }
            | None -> trap "opaque tasklet '%s': unbound connector '%s'" t.tname conn)
          t.t_inputs
      in
      let results, _ =
        Dcir_mlir.Interp.run ~machine:rt.machine ?profile:rt.profile modul
          ~entry:f.Dcir_mlir.Ir.fname (sym_args @ args)
      in
      let outs = List.map2 (fun c v -> (c, v)) t.t_outputs results in
      write_outputs rt g n outs

and write_outputs (rt : runtime) (g : Sdfg.graph) (n : Sdfg.node)
    (outs : (string * Value.t) list) : unit =
  List.iter
    (fun (conn, v) ->
      Hashtbl.replace rt.last_outputs (Printf.sprintf "%d:%s" n.nid conn) v)
    outs;
  List.iter
    (fun (e : Sdfg.edge) ->
      match (e.e_src_conn, e.e_memlet) with
      | Some conn, Some m -> (
          match List.assoc_opt conn outs with
          | Some v -> (
              match subset_indices rt m.subset with
              | Some idxs -> write_element rt m idxs v
              | None -> trap "write memlet must be a single element (%s)" m.data)
          | None -> trap "no value computed for output connector '%s'" conn)
      | _ -> ())
    (Sdfg.node_out_edges g n)

and exec_map (rt : runtime) (mn : Sdfg.map_node) : unit =
  let dims = List.map (eval_range_dim rt) mn.m_ranges in
  let saved =
    List.map (fun p -> (p, Hashtbl.find_opt rt.symbols p)) mn.m_params
  in
  let rec iter params dims =
    match (params, dims) with
    | [], [] -> exec_graph rt mn.m_body
    | p :: ps, (lo, hi, step) :: ds ->
        let i = ref lo in
        while !i <= hi do
          Machine.charge_op rt.machine Int_alu;
          Machine.charge_op rt.machine Branch;
          Hashtbl.replace rt.symbols p !i;
          iter ps ds;
          i := !i + step
        done
    | _ -> trap "map params/ranges mismatch"
  in
  iter mn.m_params dims;
  List.iter
    (fun (p, old) ->
      match old with
      | Some v -> Hashtbl.replace rt.symbols p v
      | None -> Hashtbl.remove rt.symbols p)
    saved

(* ------------------------------------------------------------------ *)
(* State machine execution *)

let exec_state (rt : runtime) (s : Sdfg.state) : unit =
  (* Allocation cost is charged when execution reaches the container's
     allocation state: once for top-level allocations, on every execution
     while [alloc_in_loop] holds (until the §6.3 hoisting pass clears it). *)
  Hashtbl.iter
    (fun _ (c : Sdfg.container) ->
      if
        c.alloc_state = Some s.s_label
        && c.storage = Sdfg.Heap
        && (c.alloc_in_loop || not (Hashtbl.mem rt.alloc_charged c.cname))
      then begin
        Hashtbl.replace rt.alloc_charged c.cname ();
        let bytes =
          List.fold_left (fun acc d -> acc * max 1 (eval_expr rt d)) 1 c.shape
          * Sdfg.elem_bytes c
        in
        let pages = (bytes + 4095) / 4096 in
        Machine.charge rt.machine
          (rt.machine.cfg.malloc_cost
          +. (rt.machine.cfg.malloc_per_page *. float_of_int pages)
          +. if c.alloc_in_loop then rt.machine.cfg.free_cost else 0.0);
        (Machine.metrics rt.machine).heap_allocs <-
          (Machine.metrics rt.machine).heap_allocs + 1
      end)
    rt.sdfg.containers;
  exec_graph rt s.s_graph

type result = {
  return_value : Value.t option;
  machine : Machine.t;
}

(** [run sdfg ~machine ~buffers ~symbols] executes the SDFG. [buffers] must
    provide every non-transient container; [symbols] binds [arg_symbols]
    (sizes and promoted scalar parameters). [profile] attributes
    cycles/loads/stores per state — including the state's outgoing
    transition costs, so the per-state entries partition the run's total —
    and per tasklet (inclusive). *)
let run ?(machine : Machine.t option)
    ?(profile : Dcir_obs.Obs.Profile.t option) (sdfg : Sdfg.t)
    ~(buffers : (string * Machine.buffer * int array) list)
    ~(symbols : (string * int) list) () : result =
  let machine = match machine with Some m -> m | None -> Machine.create () in
  let rt =
    {
      machine;
      sdfg;
      buffers = Hashtbl.create 32;
      dims = Hashtbl.create 32;
      symbols = Hashtbl.create 32;
      topo_cache = Hashtbl.create 32;
      alloc_charged = Hashtbl.create 16;
      last_outputs = Hashtbl.create 32;
      steps = 0;
      profile;
    }
  in
  List.iter (fun (s, v) -> Hashtbl.replace rt.symbols s v) symbols;
  List.iter
    (fun (name, buf, dims) ->
      Hashtbl.replace rt.buffers name buf;
      Hashtbl.replace rt.dims name dims)
    buffers;
  (* Argument buffers must all be present; transients allocate lazily at
     first access (see [buffer_of]). *)
  Hashtbl.iter
    (fun name (c : Sdfg.container) ->
      if (not c.transient) && not (Hashtbl.mem rt.buffers name) then
        trap "missing buffer for argument '%s'" name)
    sdfg.containers;
  (* Walk the state machine. *)
  let cur = ref (Sdfg.find_state sdfg sdfg.start_state) in
  let transitions = ref 0 in
  while !cur <> None do
    incr transitions;
    if !transitions > 100_000_000 then trap "state machine did not terminate";
    let s = Option.get !cur in
    let snap = metric_snap rt in
    exec_state rt s;
    let outs = Sdfg.out_edges sdfg s.s_label in
    if List.length outs > 1 then Machine.charge_op machine Branch;
    let taken =
      List.find_opt
        (fun (e : Sdfg.istate_edge) ->
          match Bexpr.eval (sym_env rt) e.ie_cond with
          | v -> v
          | exception Expr.Unbound_symbol sym ->
              trap "condition on edge %s->%s reads unbound symbol '%s'"
                e.ie_src e.ie_dst sym)
        outs
    in
    let next =
      match taken with
      | None -> None
      | Some e ->
          (* Evaluate all RHS with pre-assignment values, then commit. *)
          let values =
            List.map (fun (sym, ex) ->
                Machine.charge_op machine Int_alu;
                (sym, eval_expr rt ex))
              e.ie_assign
          in
          List.iter (fun (sym, v) -> Hashtbl.replace rt.symbols sym v) values;
          Sdfg.find_state sdfg e.ie_dst
    in
    profile_record rt snap ~kind:"state" ~name:s.s_label;
    cur := next
  done;
  let return_value =
    match (sdfg.return_scalar, sdfg.return_expr) with
    | Some name, _ -> Some (Machine.peek (buffer_of rt name) 0)
    | None, Some e -> Some (Value.VInt (eval_expr rt e))
    | None, None -> None
  in
  { return_value; machine }
