(** SDFG interpreter over the simulated machine.

    Executes the state machine: run a state's dataflow graph in topological
    order, then take the first outgoing interstate edge whose condition
    holds, applying its symbol assignments. Cost conventions deliberately
    mirror {!Dcir_mlir.Interp} so cross-pipeline cycle comparisons are fair:

    - memory traffic goes through the same {!Dcir_machine.Machine};
    - scalar containers default to [Register] storage (DaCe code-generates
      them as C++ locals), costing a [Move] per access — like post-mem2reg
      SSA values on the MLIR side;
    - a conditional state transition costs one [Branch]; unconditional
      transitions are free (fall-through in generated code); an interstate
      assignment costs one [Int_alu];
    - opaque tasklets (MLIR/C units) pay a per-invocation call overhead and
      execute through the MLIR interpreter — the separate-translation-unit
      cost §5.2 describes. *)

open Dcir_symbolic
open Dcir_machine

exception Trap of string

let trap fmt = Fmt.kstr (fun s -> raise (Trap s)) fmt

type runtime = {
  machine : Machine.t;
  sdfg : Sdfg.t;
  buffers : (string, Machine.buffer) Hashtbl.t;
  dims : (string, int array) Hashtbl.t;
  symbols : (string, int) Hashtbl.t;
  topo_cache : (int, Sdfg.node list) Hashtbl.t;
      (** keyed by the nid of the first node; per-graph order cache *)
  alloc_charged : (string, unit) Hashtbl.t;
  last_outputs : (string, Value.t) Hashtbl.t;
      (** "nid:conn" -> value of the most recent execution, for direct
          tasklet-to-tasklet value edges created by scalar elimination *)
  budget : Dcir_resilience.Budget.t;
      (** the machine's budget, cached; every executed graph and state
          transition charges one step against it *)
  profile : Dcir_obs.Obs.Profile.t option;
      (** when set, cycles/loads/stores attribution per state (partitioning
          total execution) and per tasklet (inclusive) *)
  prepared : (int, Dcir_mlir.Interp.prepared) Hashtbl.t;
      (** compiled mode: per-node prepared MLIR contexts for opaque
          tasklets, so their bodies compile once per run *)
  jobs : int;
      (** worker domains for certified parallel maps; 1 = run the chunked
          schedule on the calling domain (bit-identical either way) *)
}

(* The single budget-charged step helper — replaces the two hard-coded
   200M-step checks that previously guarded [exec_graph] and
   [exec_cgraph], and the 100M transition counters in both state-machine
   walks. Exhaustion raises [Budget.Exhausted] instead of a trap. *)
let charge_step (rt : runtime) : unit = Dcir_resilience.Budget.step rt.budget

let metric_snap (rt : runtime) : (float * int * int) option =
  match rt.profile with
  | None -> None
  | Some _ ->
      let mt = Machine.metrics rt.machine in
      Some (mt.cycles, mt.loads, mt.stores)

let profile_record (rt : runtime) (snap : (float * int * int) option)
    ~(kind : string) ~(name : string) : unit =
  match (rt.profile, snap) with
  | Some p, Some (c0, l0, s0) ->
      let mt = Machine.metrics rt.machine in
      Dcir_obs.Obs.Profile.record p ~kind ~name ~cycles:(mt.cycles -. c0)
        ~loads:(mt.loads - l0) ~stores:(mt.stores - s0)
  | _ -> ()

let sym_env (rt : runtime) : string -> int option =
  fun s ->
    match Hashtbl.find_opt rt.symbols s with
    | Some v -> Some v
    | None -> (
        (* Interstate conditions may read scalar containers directly
           (data-dependent control flow before symbol promotion). *)
        match Hashtbl.find_opt rt.buffers s with
        | Some b when b.size = 1 ->
            (* A real load: the read must hit the cache model and the
               loads counter, not bypass them via [peek]. *)
            Machine.charge_op rt.machine Move;
            Some (Value.as_int (Machine.load rt.machine b 0))
        | _ -> None)

let eval_expr (rt : runtime) (e : Expr.t) : int =
  match Expr.eval (sym_env rt) e with
  | v -> v
  | exception Expr.Unbound_symbol s -> trap "unbound symbol '%s'" s

(* Evaluation order is deliberately explicit (lo, hi, step) so the compiled
   plan layer can mirror the charge sequence exactly. *)
let eval_range_dim (rt : runtime) (d : Range.dim) : int * int * int =
  let lo = eval_expr rt d.lo in
  let hi = eval_expr rt d.hi in
  let step = eval_expr rt d.step in
  (lo, hi, step)

let storage_of : Sdfg.storage -> Machine.storage = function
  | Sdfg.Heap -> Machine.Heap
  | Sdfg.Stack -> Machine.Stack
  | Sdfg.Register -> Machine.Register

let zero_of (c : Sdfg.container) : Value.t =
  match c.dtype with Sdfg.DInt -> Value.VInt 0 | Sdfg.DFloat -> Value.VFloat 0.0

(* Forward declaration: set below, after lazy allocation is defined. *)
let dims_ref : (runtime -> string -> int array) ref =
  ref (fun _ _ -> assert false)

(* Linearize an index tuple; mirrors Mlir.Interp cost (one Int_alu per extra
   dimension). *)
let linearize (rt : runtime) (name : string) (indices : int list) : int =
  let dims = !dims_ref rt name in
  if List.length indices <> Array.length dims then
    trap "container '%s': %d indices for rank %d" name (List.length indices)
      (Array.length dims);
  let lin = ref 0 in
  List.iteri
    (fun k idx ->
      if k > 0 then Machine.charge_op rt.machine Int_alu;
      lin := (!lin * dims.(k)) + idx)
    indices;
  !lin

(* Transients are allocated lazily at first access: their symbolic sizes may
   reference scalar containers whose values only exist once execution reaches
   the allocation point (e.g. malloc sizes flowing through scalars). *)
let rec buffer_of (rt : runtime) (name : string) : Machine.buffer =
  match Hashtbl.find_opt rt.buffers name with
  | Some b -> b
  | None -> (
      match Hashtbl.find_opt rt.sdfg.containers name with
      | Some c when c.transient ->
          let dims = Array.of_list (List.map (eval_expr rt) c.shape) in
          let elems = Array.fold_left ( * ) 1 dims in
          let charge_alloc = (not c.alloc_in_loop) && c.alloc_state = None in
          let saved = (Machine.metrics rt.machine).cycles in
          let saved_allocs = (Machine.metrics rt.machine).heap_allocs in
          let b =
            Machine.alloc rt.machine ~storage:(storage_of c.storage) ~elems
              ~elem_bytes:(Sdfg.elem_bytes c) ~zero_init:(zero_of c)
          in
          if not charge_alloc then begin
            (* Recurring cost is charged per execution of the allocating
               state instead. *)
            (Machine.metrics rt.machine).cycles <- saved;
            (Machine.metrics rt.machine).heap_allocs <- saved_allocs
          end;
          Hashtbl.replace rt.buffers name b;
          Hashtbl.replace rt.dims name dims;
          b
      | Some _ -> trap "argument container '%s' has no buffer" name
      | None -> trap "container '%s' does not exist" name)

and dims_of (rt : runtime) (name : string) : int array =
  ignore (buffer_of rt name);
  match Hashtbl.find_opt rt.dims name with
  | Some d -> d
  | None -> trap "no dims for container '%s'" name

let () = dims_ref := dims_of

let read_element (rt : runtime) (m : Sdfg.memlet) (indices : int list) :
    Value.t =
  (* Linearization (which materializes the buffer and charges index
     arithmetic) precedes the load, in that order. *)
  let lin = linearize rt m.data indices in
  Machine.load rt.machine (buffer_of rt m.data) lin

let apply_wcr (rt : runtime) (w : Sdfg.wcr) (old_v : Value.t) (v : Value.t) :
    Value.t =
  let is_f = Value.is_float old_v || Value.is_float v in
  let charge_cls : Cost.op_class = if is_f then Fp_add else Int_alu in
  Machine.charge_op rt.machine charge_cls;
  match (w, is_f) with
  | Sdfg.WcrSum, true -> Value.VFloat (Value.as_float old_v +. Value.as_float v)
  | Sdfg.WcrSum, false -> Value.VInt (Value.as_int old_v + Value.as_int v)
  | Sdfg.WcrProd, true -> Value.VFloat (Value.as_float old_v *. Value.as_float v)
  | Sdfg.WcrProd, false -> Value.VInt (Value.as_int old_v * Value.as_int v)
  | Sdfg.WcrMax, true -> Value.VFloat (Float.max (Value.as_float old_v) (Value.as_float v))
  | Sdfg.WcrMax, false -> Value.VInt (max (Value.as_int old_v) (Value.as_int v))
  | Sdfg.WcrMin, true -> Value.VFloat (Float.min (Value.as_float old_v) (Value.as_float v))
  | Sdfg.WcrMin, false -> Value.VInt (min (Value.as_int old_v) (Value.as_int v))

let write_element (rt : runtime) (m : Sdfg.memlet) (indices : int list)
    (v : Value.t) : unit =
  let buf = buffer_of rt m.data in
  let lin = linearize rt m.data indices in
  match m.wcr with
  | None -> Machine.store rt.machine buf lin v
  | Some w ->
      let old_v = Machine.load rt.machine buf lin in
      Machine.store rt.machine buf lin (apply_wcr rt w old_v v)

(* Evaluate the concrete index tuple of a single-element subset. *)
let subset_indices (rt : runtime) (s : Range.t) : int list option =
  if List.for_all Range.is_index s then
    Some (List.map (fun (d : Range.dim) -> eval_expr rt d.lo) s)
  else None

(* ------------------------------------------------------------------ *)
(* Tasklet evaluation *)

type conn_value =
  | CScalar of Value.t
  | CArray of string  (** whole-container binding for indirect access *)

(* Charge-and-compute helpers shared by the tree walker and the compiled
   plans, so both modes are bit-identical by construction. Operands are
   already evaluated (left-to-right) when these run. *)

let apply_binop (m : Machine.t) (op : Texpr.binop) (va : Value.t)
    (vb : Value.t) : Value.t =
  let is_f = Value.is_float va || Value.is_float vb in
  (match (op, is_f) with
  | (Texpr.BAdd | Texpr.BSub | Texpr.BMin | Texpr.BMax), true ->
      Machine.charge_op m Fp_add
  | Texpr.BMul, true -> Machine.charge_op m Fp_mul
  | Texpr.BDiv, true -> Machine.charge_op m Fp_div
  | (Texpr.BAdd | Texpr.BSub | Texpr.BMin | Texpr.BMax), false ->
      Machine.charge_op m Int_alu
  | Texpr.BMul, false -> Machine.charge_op m Int_mul
  | (Texpr.BDiv | Texpr.BMod), false -> Machine.charge_op m Int_div
  | Texpr.BMod, true -> Machine.charge_op m Fp_div);
  if is_f then
    let x = Value.as_float va and y = Value.as_float vb in
    VFloat
      (match op with
      | Texpr.BAdd -> x +. y
      | Texpr.BSub -> x -. y
      | Texpr.BMul -> x *. y
      | Texpr.BDiv -> x /. y
      | Texpr.BMod -> Float.rem x y
      | Texpr.BMin -> Float.min x y
      | Texpr.BMax -> Float.max x y)
  else
    let x = Value.as_int va and y = Value.as_int vb in
    VInt
      (match op with
      | Texpr.BAdd -> x + y
      | Texpr.BSub -> x - y
      | Texpr.BMul -> x * y
      | Texpr.BDiv ->
          if y = 0 then trap "division by zero in tasklet" else x / y
      | Texpr.BMod ->
          if y = 0 then trap "modulo by zero in tasklet" else x mod y
      | Texpr.BMin -> min x y
      | Texpr.BMax -> max x y)

let apply_cmpop (m : Machine.t) (op : Texpr.cmpop) (va : Value.t)
    (vb : Value.t) : Value.t =
  Machine.charge_op m Int_alu;
  let r =
    if Value.is_float va || Value.is_float vb then
      let x = Value.as_float va and y = Value.as_float vb in
      match op with
      | Texpr.CEq -> x = y
      | Texpr.CNe -> x <> y
      | Texpr.CLt -> x < y
      | Texpr.CLe -> x <= y
      | Texpr.CGt -> x > y
      | Texpr.CGe -> x >= y
    else
      let x = Value.as_int va and y = Value.as_int vb in
      match op with
      | Texpr.CEq -> x = y
      | Texpr.CNe -> x <> y
      | Texpr.CLt -> x < y
      | Texpr.CLe -> x <= y
      | Texpr.CGt -> x > y
      | Texpr.CGe -> x >= y
  in
  Value.of_bool r

let apply_call (m : Machine.t) (fname : string) (vargs : float list) : Value.t
    =
  (match fname with
  | "sqrt" -> Machine.charge_op m Fp_sqrt
  | _ -> Machine.charge_op m Math_call);
  VFloat
    (match (fname, vargs) with
    | "exp", [ x ] -> Stdlib.exp x
    | "log", [ x ] -> Stdlib.log x
    | "sqrt", [ x ] -> Stdlib.sqrt x
    | "tanh", [ x ] -> Stdlib.tanh x
    | "fabs", [ x ] -> Stdlib.abs_float x
    | "sin", [ x ] -> Stdlib.sin x
    | "cos", [ x ] -> Stdlib.cos x
    | "pow", [ x; y ] -> Stdlib.( ** ) x y
    | _ -> trap "unknown math call '%s'" fname)

let apply_toint (v : Value.t) : Value.t =
  VInt
    (match v with
    | VFloat f -> (
        (* Truncation toward zero; NaN/out-of-range traps instead of the
           silent 0 that [int_of_float] produces (matching the MLIR
           interpreter's arith.fptosi). *)
        try Value.int_of_float_trunc f
        with Invalid_argument msg -> trap "%s" msg)
    | VInt n -> n)

let rec eval_texpr (rt : runtime) (env : (string * conn_value) list)
    (e : Texpr.t) : Value.t =
  let m = rt.machine in
  match e with
  | Texpr.TFloat f -> VFloat f
  | Texpr.TInt n -> VInt n
  | Texpr.TSym s -> (
      match sym_env rt s with
      | Some v -> VInt v
      | None -> trap "tasklet references unbound symbol '%s'" s)
  | Texpr.TIn c -> (
      match List.assoc_opt c env with
      | Some (CScalar v) -> v
      | Some (CArray _) -> trap "connector '%s' is an array, not a scalar" c
      | None -> trap "unbound input connector '%s'" c)
  | Texpr.TIndex (c, idxs) -> (
      match List.assoc_opt c env with
      | Some (CArray data) ->
          let indices =
            List.map (fun i -> Value.as_int (eval_texpr rt env i)) idxs
          in
          let lin = linearize rt data indices in
          Machine.load m (buffer_of rt data) lin
      | Some (CScalar _) -> trap "connector '%s' is scalar; cannot index" c
      | None -> trap "unbound input connector '%s'" c)
  | Texpr.TBin (op, a, b) ->
      let va = eval_texpr rt env a in
      let vb = eval_texpr rt env b in
      apply_binop m op va vb
  | Texpr.TCmp (op, a, b) ->
      let va = eval_texpr rt env a in
      let vb = eval_texpr rt env b in
      apply_cmpop m op va vb
  | Texpr.TSelect (c, a, b) ->
      Machine.charge_op m Int_alu;
      if Value.as_bool (eval_texpr rt env c) then eval_texpr rt env a
      else eval_texpr rt env b
  | Texpr.TUn (`Neg, a) -> (
      match eval_texpr rt env a with
      | VFloat f ->
          Machine.charge_op m Fp_add;
          VFloat (-.f)
      | VInt n ->
          Machine.charge_op m Int_alu;
          VInt (-n))
  | Texpr.TUn (`Not, a) ->
      Machine.charge_op m Int_alu;
      Value.of_bool (not (Value.as_bool (eval_texpr rt env a)))
  | Texpr.TUn (`ToFloat, a) ->
      Machine.charge_op m Move;
      VFloat (Value.as_float (eval_texpr rt env a))
  | Texpr.TUn (`ToInt, a) ->
      Machine.charge_op m Move;
      apply_toint (eval_texpr rt env a)
  | Texpr.TCall (fname, args) ->
      let vargs = List.map (fun a -> Value.as_float (eval_texpr rt env a)) args in
      apply_call m fname vargs

(* ------------------------------------------------------------------ *)
(* Node execution *)

let topo_of (rt : runtime) (g : Sdfg.graph) : Sdfg.node list =
  match (Sdfg.nodes g) with
  | [] -> []
  | first :: _ -> (
      match Hashtbl.find_opt rt.topo_cache first.nid with
      | Some order when List.length order = List.length (Sdfg.nodes g) -> order
      | _ ->
          let order = Sdfg.topo_order g in
          Hashtbl.replace rt.topo_cache first.nid order;
          order)

(* ------------------------------------------------------------------ *)
(* Parallel (certified) map execution.

   A map carrying a [par_cert] executes with a {e chunked schedule}: the
   first dimension splits into a fixed number of chunks that depends only
   on the trip count — never on [rt.jobs] — and each chunk runs on a forked
   machine ({!Machine.fork}: cold caches, zeroed metrics, shared address
   cursors). Shared containers are materialized on the master before the
   fork so disjoint writes land in the common buffers; reduction containers
   are swapped for identity-initialized per-chunk accumulators; private
   transients re-allocate per chunk at identical addresses. Chunk metrics,
   accumulators and the step count merge back in chunk index order, and the
   lowest-index failing chunk's exception is re-raised — so outputs, traps
   and every machine metric are bit-identical at any worker count. *)

let par_chunk_count = 8

(* Flush staged node/edge lists and warm the topo cache for [g] and any
   nested map bodies, so worker domains only ever read the graph. *)
let rec force_topo (rt : runtime) (g : Sdfg.graph) : unit =
  ignore (topo_of rt g);
  ignore (Sdfg.edges g);
  List.iter
    (fun (n : Sdfg.node) ->
      match n.kind with
      | Sdfg.MapN mn -> force_topo rt mn.m_body
      | Sdfg.Access _ | Sdfg.TaskletN _ -> ())
    (Sdfg.nodes g)

let wcr_identity (dtype : Sdfg.dtype) (w : Sdfg.wcr) : Value.t =
  match (dtype, w) with
  | Sdfg.DFloat, Sdfg.WcrSum -> Value.VFloat 0.0
  | Sdfg.DFloat, Sdfg.WcrProd -> Value.VFloat 1.0
  | Sdfg.DFloat, Sdfg.WcrMax -> Value.VFloat neg_infinity
  | Sdfg.DFloat, Sdfg.WcrMin -> Value.VFloat infinity
  | Sdfg.DInt, Sdfg.WcrSum -> Value.VInt 0
  | Sdfg.DInt, Sdfg.WcrProd -> Value.VInt 1
  | Sdfg.DInt, Sdfg.WcrMax -> Value.VInt min_int
  | Sdfg.DInt, Sdfg.WcrMin -> Value.VInt max_int

(* Uncharged WCR combine — the master-side merge of a chunk accumulator is
   a scheduling artifact, not program work; mirrors [apply_wcr]'s value
   semantics exactly. *)
let combine_wcr (w : Sdfg.wcr) (a : Value.t) (b : Value.t) : Value.t =
  let is_f = Value.is_float a || Value.is_float b in
  match (w, is_f) with
  | Sdfg.WcrSum, true -> Value.VFloat (Value.as_float a +. Value.as_float b)
  | Sdfg.WcrSum, false -> Value.VInt (Value.as_int a + Value.as_int b)
  | Sdfg.WcrProd, true -> Value.VFloat (Value.as_float a *. Value.as_float b)
  | Sdfg.WcrProd, false -> Value.VInt (Value.as_int a * Value.as_int b)
  | Sdfg.WcrMax, true ->
      Value.VFloat (Float.max (Value.as_float a) (Value.as_float b))
  | Sdfg.WcrMax, false -> Value.VInt (max (Value.as_int a) (Value.as_int b))
  | Sdfg.WcrMin, true ->
      Value.VFloat (Float.min (Value.as_float a) (Value.as_float b))
  | Sdfg.WcrMin, false -> Value.VInt (min (Value.as_int a) (Value.as_int b))

let exec_par_chunks (rt : runtime) (cert : Sdfg.par_cert)
    ~(params : string list) ~(dims : (int * int * int) list)
    ~(body : runtime -> unit) : unit =
  let p0, ps, (lo, hi, step), ds =
    match (params, dims) with
    | p0 :: ps, d0 :: ds -> (p0, ps, d0, ds)
    | _ -> trap "map params/ranges mismatch"
  in
  if step <= 0 then trap "parallel map requires a positive step (got %d)" step;
  let n_iters = if hi < lo then 0 else ((hi - lo) / step) + 1 in
  if n_iters > 0 then begin
    (* Materialize shared containers on the master, in certificate order,
       before any fork — lazy-allocation charges must land on the master
       machine exactly once. *)
    List.iter
      (fun (nm, cl) ->
        match cl with
        | Sdfg.ParPrivate -> ()
        | Sdfg.ParReadOnly | Sdfg.ParDisjoint | Sdfg.ParReduction _ ->
            ignore (buffer_of rt nm))
      cert.pc_classes;
    let privates =
      List.filter_map
        (fun (nm, cl) ->
          match cl with Sdfg.ParPrivate -> Some nm | _ -> None)
        cert.pc_classes
    in
    let reductions =
      List.filter_map
        (fun (nm, cl) ->
          match cl with Sdfg.ParReduction w -> Some (nm, w) | _ -> None)
        cert.pc_classes
    in
    let k = min par_chunk_count n_iters in
    let base = n_iters / k and rem = n_iters mod k in
    let chunk_range c =
      let start = (c * base) + min c rem in
      let len = base + if c < rem then 1 else 0 in
      (lo + (start * step), lo + ((start + len - 1) * step))
    in
    (* All chunk runtimes are built upfront on the calling domain, in chunk
       order, from identical fork state. *)
    let mk_chunk () =
      let buffers = Hashtbl.copy rt.buffers in
      let cdims = Hashtbl.copy rt.dims in
      List.iter
        (fun nm ->
          Hashtbl.remove buffers nm;
          Hashtbl.remove cdims nm)
        privates;
      (* The forked machine carries fresh budget counters (same limits),
         preserving the old per-chunk [steps = 0] semantics: a chunk's
         charges are independent of which worker runs it. *)
      let cmachine = Machine.fork rt.machine in
      let crt =
        {
          rt with
          machine = cmachine;
          budget = Machine.budget cmachine;
          buffers;
          dims = cdims;
          symbols = Hashtbl.copy rt.symbols;
          topo_cache = Hashtbl.copy rt.topo_cache;
          alloc_charged = Hashtbl.copy rt.alloc_charged;
          last_outputs = Hashtbl.copy rt.last_outputs;
          profile = None;
          prepared = Hashtbl.create 8;
          jobs = 1;
        }
      in
      let accus =
        List.map
          (fun (nm, w) ->
            let shared = Hashtbl.find rt.buffers nm in
            let dtype =
              match Hashtbl.find_opt rt.sdfg.containers nm with
              | Some c -> c.dtype
              | None -> Sdfg.DFloat
            in
            let accu =
              Machine.alloc crt.machine ~storage:shared.storage
                ~elems:shared.size ~elem_bytes:shared.elem_bytes
                ~zero_init:(wcr_identity dtype w)
            in
            Hashtbl.replace crt.buffers nm accu;
            (nm, w, accu))
          reductions
      in
      (crt, accus)
    in
    let chunks = Array.init k (fun _ -> mk_chunk ()) in
    let failures : exn option array = Array.make k None in
    (* Per-chunk timing for `--trace`: workers write only into their own
       slots of these plain arrays (the shared Obs collector is not
       touched off the master domain); the master registers the spans
       after the join, with one trace lane (tid) per worker domain. *)
    let obs_on = Dcir_obs.Obs.enabled () in
    let chunk_t0 = Array.make k 0.0 in
    let chunk_t1 = Array.make k 0.0 in
    let chunk_lane = Array.make k 0 in
    let run_chunk ?(worker = 0) c =
      let crt, _ = chunks.(c) in
      let clo, chi = chunk_range c in
      if obs_on then begin
        chunk_lane.(c) <- worker;
        chunk_t0.(c) <- Unix.gettimeofday ()
      end;
      (* The loop nest below replicates the serial map walker's charge
         sequence per iteration, on the chunk's machine. *)
      let rec iter prms dims =
        match (prms, dims) with
        | [], [] -> body crt
        | p :: prest, (l, h, st) :: drest ->
            let i = ref l in
            while !i <= h do
              Machine.charge_op crt.machine Int_alu;
              Machine.charge_op crt.machine Branch;
              Hashtbl.replace crt.symbols p !i;
              iter prest drest;
              i := !i + st
            done
        | _ -> trap "map params/ranges mismatch"
      in
      (match iter (p0 :: ps) ((clo, chi, step) :: ds) with
      | () -> ()
      | exception e -> failures.(c) <- Some e);
      if obs_on then chunk_t1.(c) <- Unix.gettimeofday ()
    in
    let merge c =
      let crt, accus = chunks.(c) in
      List.iter
        (fun (nm, w, (accu : Machine.buffer)) ->
          let shared = Hashtbl.find rt.buffers nm in
          for x = 0 to shared.size - 1 do
            Machine.poke shared x
              (combine_wcr w (Machine.peek shared x) (Machine.peek accu x))
          done)
        accus;
      Metrics.add_into
        ~into:(Machine.metrics rt.machine)
        (Machine.metrics crt.machine);
      Dcir_resilience.Budget.merge_steps ~into:rt.budget crt.budget
    in
    let settle c =
      match failures.(c) with None -> merge c | Some e -> raise e
    in
    let parallel = rt.jobs > 1 && k > 1 in
    (* Spans are registered before [settle] so a failing chunk still
       leaves its lane in the trace. Serial execution stays on lane 1
       (the master); workers get lanes 2..nd+1. *)
    let record_chunk_spans () =
      if obs_on then
        for c = 0 to k - 1 do
          let clo, chi = chunk_range c in
          Dcir_obs.Obs.add_complete ~cat:"par-map"
            ~tid:(if parallel then chunk_lane.(c) + 2 else 1)
            ~args:
              [
                ("chunk", Dcir_obs.Json.Int c);
                ("lo", Dcir_obs.Json.Int clo);
                ("hi", Dcir_obs.Json.Int chi);
              ]
            ~start_s:chunk_t0.(c) ~end_s:chunk_t1.(c)
            (Printf.sprintf "map-chunk %d" c)
        done
    in
    if not parallel then begin
      for c = 0 to k - 1 do
        run_chunk c
      done;
      record_chunk_spans ();
      for c = 0 to k - 1 do
        settle c
      done
    end
    else begin
      let nd = min rt.jobs k in
      let doms =
        Array.init nd (fun d ->
            Domain.spawn (fun () ->
                let c = ref d in
                while !c < k do
                  run_chunk ~worker:d !c;
                  c := !c + nd
                done))
      in
      Array.iter Domain.join doms;
      record_chunk_spans ();
      for c = 0 to k - 1 do
        settle c
      done
    end
  end

let rec exec_graph (rt : runtime) (g : Sdfg.graph) : unit =
  charge_step rt;
  List.iter
    (fun (n : Sdfg.node) ->
      match n.kind with
      | Sdfg.Access _ -> exec_access_copies rt g n
      | Sdfg.TaskletN t -> exec_tasklet rt g n t
      | Sdfg.MapN mn -> exec_map rt mn)
    (topo_of rt g)

(* Copies: Access -> Access edges with a memlet move subset-many elements. *)
and exec_access_copies (rt : runtime) (g : Sdfg.graph) (n : Sdfg.node) : unit =
  List.iter
    (fun (e : Sdfg.edge) ->
      match ((Sdfg.node_by_id g e.e_dst).kind, e.e_memlet) with
      | Sdfg.Access dst_name, Some m ->
          let src_buf = buffer_of rt m.data in
          let dst_buf = buffer_of rt dst_name in
          let dst_subset =
            match m.other with
            | Some o -> o
            | None -> m.subset (* same-region copy *)
          in
          let write_one dst_indices v =
            let lin = linearize rt dst_name dst_indices in
            match m.wcr with
            | None -> Machine.store rt.machine dst_buf lin v
            | Some w ->
                let old_v = Machine.load rt.machine dst_buf lin in
                Machine.store rt.machine dst_buf lin (apply_wcr rt w old_v v)
          in
          let src_dims = List.map (eval_range_dim rt) m.subset in
          let dst_dims = List.map (eval_range_dim rt) dst_subset in
          let single ds = List.for_all (fun (lo, hi, _) -> lo = hi) ds in
          if single src_dims && single dst_dims then begin
            (* Element or scalar copy — the common converter-generated case;
               subset ranks may differ (array element <-> scalar). *)
            let src_idx = List.map (fun (lo, _, _) -> lo) src_dims in
            let dst_idx = List.map (fun (lo, _, _) -> lo) dst_dims in
            let v =
              Machine.load rt.machine src_buf (linearize rt m.data src_idx)
            in
            write_one dst_idx v
          end
          else begin
            (* Region copy: iterate the source subset row-major and map
               offsets into the destination subset. *)
            if List.length src_dims <> List.length dst_dims then
              trap "copy %s -> %s: subset rank mismatch" m.data dst_name;
            let rec iter src_prefix dst_prefix = function
              | [] ->
                  let v =
                    Machine.load rt.machine src_buf
                      (linearize rt m.data (List.rev src_prefix))
                  in
                  write_one (List.rev dst_prefix) v
              | ((lo, hi, step), (dlo, _, dstep)) :: rest ->
                  let i = ref lo and k = ref 0 in
                  while !i <= hi do
                    iter (!i :: src_prefix) ((dlo + (!k * dstep)) :: dst_prefix) rest;
                    i := !i + step;
                    incr k
                  done
            in
            iter [] [] (List.combine src_dims dst_dims)
          end
      | _ -> ())
    (Sdfg.node_out_edges g n)

and exec_tasklet (rt : runtime) (g : Sdfg.graph) (n : Sdfg.node)
    (t : Sdfg.tasklet) : unit =
  match rt.profile with
  | None -> exec_tasklet_body rt g n t
  | Some _ ->
      let snap = metric_snap rt in
      exec_tasklet_body rt g n t;
      profile_record rt snap ~kind:"tasklet" ~name:t.tname

(* A connector is array-valued when the code indexes into it (native) or
   the corresponding parameter is a memref (opaque). Static per tasklet —
   the compiled plans resolve it once. *)
and tasklet_array_conns (t : Sdfg.tasklet) : string list =
  match t.code with
  | Sdfg.Native assigns ->
      let rec collect acc (e : Texpr.t) =
        match e with
        | Texpr.TIndex (c, idxs) -> List.fold_left collect (c :: acc) idxs
        | Texpr.TBin (_, a, b) | Texpr.TCmp (_, a, b) ->
            collect (collect acc a) b
        | Texpr.TSelect (a, b, c) -> collect (collect (collect acc a) b) c
        | Texpr.TUn (_, a) -> collect acc a
        | Texpr.TCall (_, args) -> List.fold_left collect acc args
        | Texpr.TFloat _ | Texpr.TInt _ | Texpr.TIn _ | Texpr.TSym _ -> acc
      in
      List.fold_left (fun acc (_, e) -> collect acc e) [] assigns
  | Sdfg.Opaque f ->
      (* fparams = symbol args first, then input connectors. *)
      let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: r -> drop (n - 1) r in
      let conn_params = drop (List.length t.t_syms) f.Dcir_mlir.Ir.fparams in
      List.filter_map
        (fun (conn, (p : Dcir_mlir.Ir.value)) ->
          match p.vty with
          | Dcir_mlir.Types.MemRef _ -> Some conn
          | _ -> None)
        (try List.combine t.t_inputs conn_params with Invalid_argument _ -> [])

and exec_tasklet_body (rt : runtime) (g : Sdfg.graph) (n : Sdfg.node)
    (t : Sdfg.tasklet) : unit =
  let array_conns = tasklet_array_conns t in
  let env =
    List.filter_map
      (fun (e : Sdfg.edge) ->
        match (e.e_dst_conn, e.e_memlet) with
        | Some conn, Some m ->
            if List.mem conn array_conns then Some (conn, CArray m.data)
            else (
              match subset_indices rt m.subset with
              | Some idxs -> Some (conn, CScalar (read_element rt m idxs))
              | None ->
                  trap "tasklet '%s': scalar connector '%s' with non-index \
                        subset %s"
                    t.tname conn (Range.to_string m.subset))
        | Some conn, None -> (
            (* Direct value edge from another tasklet's output. *)
            match e.e_src_conn with
            | Some src_conn -> (
                let key = Printf.sprintf "%d:%s" e.e_src src_conn in
                match Hashtbl.find_opt rt.last_outputs key with
                | Some v -> Some (conn, CScalar v)
                | None ->
                    trap "tasklet '%s': value edge source %s not yet executed"
                      t.tname key)
            | None -> None)
        | _ -> None)
      (Sdfg.node_in_edges g n)
  in
  match t.code with
  | Sdfg.Native assigns ->
      let outs =
        List.map (fun (out, expr) -> (out, eval_texpr rt env expr)) assigns
      in
      write_outputs rt g n outs
  | Sdfg.Opaque f ->
      (* Run via the MLIR interpreter on the same machine; separately
         compiled units additionally pay their per-invocation overhead. *)
      Machine.charge rt.machine t.t_overhead;
      let modul = Dcir_mlir.Ir.new_module () in
      modul.funcs <- [ f ];
      let sym_args =
        List.map
          (fun s ->
            match sym_env rt s with
            | Some v -> Dcir_mlir.Interp.Scalar (Value.VInt v)
            | None -> trap "opaque tasklet '%s': unbound symbol '%s'" t.tname s)
          t.t_syms
      in
      let args =
        List.map
          (fun (conn : string) ->
            match List.assoc_opt conn env with
            | Some (CScalar v) -> Dcir_mlir.Interp.Scalar v
            | Some (CArray data) ->
                Dcir_mlir.Interp.Buf
                  { buf = buffer_of rt data; dims = dims_of rt data }
            | None -> trap "opaque tasklet '%s': unbound connector '%s'" t.tname conn)
          t.t_inputs
      in
      let results, _ =
        Dcir_mlir.Interp.run ~machine:rt.machine ?profile:rt.profile
          ~mode:Dcir_mlir.Interp.Tree modul ~entry:f.Dcir_mlir.Ir.fname
          (sym_args @ args)
      in
      let outs = List.map2 (fun c v -> (c, v)) t.t_outputs results in
      write_outputs rt g n outs

and write_outputs (rt : runtime) (g : Sdfg.graph) (n : Sdfg.node)
    (outs : (string * Value.t) list) : unit =
  List.iter
    (fun (conn, v) ->
      Hashtbl.replace rt.last_outputs (Printf.sprintf "%d:%s" n.nid conn) v)
    outs;
  List.iter
    (fun (e : Sdfg.edge) ->
      match (e.e_src_conn, e.e_memlet) with
      | Some conn, Some m -> (
          match List.assoc_opt conn outs with
          | Some v -> (
              match subset_indices rt m.subset with
              | Some idxs -> write_element rt m idxs v
              | None -> trap "write memlet must be a single element (%s)" m.data)
          | None -> trap "no value computed for output connector '%s'" conn)
      | _ -> ())
    (Sdfg.node_out_edges g n)

and exec_map (rt : runtime) (mn : Sdfg.map_node) : unit =
  match mn.m_par with
  | Some cert when mn.m_params <> [] ->
      let dims = List.map (eval_range_dim rt) mn.m_ranges in
      force_topo rt mn.m_body;
      exec_par_chunks rt cert ~params:mn.m_params ~dims
        ~body:(fun crt -> exec_graph crt mn.m_body)
  | Some _ | None -> exec_map_serial rt mn

and exec_map_serial (rt : runtime) (mn : Sdfg.map_node) : unit =
  let dims = List.map (eval_range_dim rt) mn.m_ranges in
  let saved =
    List.map (fun p -> (p, Hashtbl.find_opt rt.symbols p)) mn.m_params
  in
  let rec iter params dims =
    match (params, dims) with
    | [], [] -> exec_graph rt mn.m_body
    | p :: ps, (lo, hi, step) :: ds ->
        let i = ref lo in
        while !i <= hi do
          Machine.charge_op rt.machine Int_alu;
          Machine.charge_op rt.machine Branch;
          Hashtbl.replace rt.symbols p !i;
          iter ps ds;
          i := !i + step
        done
    | _ -> trap "map params/ranges mismatch"
  in
  iter mn.m_params dims;
  List.iter
    (fun (p, old) ->
      match old with
      | Some v -> Hashtbl.replace rt.symbols p v
      | None -> Hashtbl.remove rt.symbols p)
    saved

(* ------------------------------------------------------------------ *)
(* State machine execution *)

let exec_state (rt : runtime) (s : Sdfg.state) : unit =
  (* Allocation cost is charged when execution reaches the container's
     allocation state: once for top-level allocations, on every execution
     while [alloc_in_loop] holds (until the §6.3 hoisting pass clears it). *)
  Hashtbl.iter
    (fun _ (c : Sdfg.container) ->
      if
        c.alloc_state = Some s.s_label
        && c.storage = Sdfg.Heap
        && (c.alloc_in_loop || not (Hashtbl.mem rt.alloc_charged c.cname))
      then begin
        Hashtbl.replace rt.alloc_charged c.cname ();
        let bytes =
          List.fold_left (fun acc d -> acc * max 1 (eval_expr rt d)) 1 c.shape
          * Sdfg.elem_bytes c
        in
        let pages = (bytes + 4095) / 4096 in
        Machine.charge rt.machine
          (rt.machine.cfg.malloc_cost
          +. (rt.machine.cfg.malloc_per_page *. float_of_int pages)
          +. if c.alloc_in_loop then rt.machine.cfg.free_cost else 0.0);
        (Machine.metrics rt.machine).heap_allocs <-
          (Machine.metrics rt.machine).heap_allocs + 1
      end)
    rt.sdfg.containers;
  exec_graph rt s.s_graph

(* Tree-mode state machine walk. *)
let run_tree (rt : runtime) : unit =
  let machine = rt.machine in
  let sdfg = rt.sdfg in
  let cur = ref (Sdfg.find_state sdfg sdfg.start_state) in
  while !cur <> None do
    (* each interstate transition is one budget step — the hang guard *)
    charge_step rt;
    let s = Option.get !cur in
    let snap = metric_snap rt in
    exec_state rt s;
    let outs = Sdfg.out_edges sdfg s.s_label in
    if List.length outs > 1 then Machine.charge_op machine Branch;
    let taken =
      List.find_opt
        (fun (e : Sdfg.istate_edge) ->
          match Bexpr.eval (sym_env rt) e.ie_cond with
          | v -> v
          | exception Expr.Unbound_symbol sym ->
              trap "condition on edge %s->%s reads unbound symbol '%s'"
                e.ie_src e.ie_dst sym)
        outs
    in
    let next =
      match taken with
      | None -> None
      | Some e ->
          (* Evaluate all RHS with pre-assignment values, then commit. *)
          let values =
            List.map (fun (sym, ex) ->
                Machine.charge_op machine Int_alu;
                (sym, eval_expr rt ex))
              e.ie_assign
          in
          List.iter (fun (sym, v) -> Hashtbl.replace rt.symbols sym v) values;
          Sdfg.find_state sdfg e.ie_dst
    in
    profile_record rt snap ~kind:"state" ~name:s.s_label;
    cur := next
  done

(* ------------------------------------------------------------------ *)
(* Compiled execution plans.

   Each state is compiled once — on its first execution — into closures
   with everything static pre-resolved: topological order, tasklet
   expressions (connector lookups become array-slot reads), memlet subset
   indices, interstate conditions and assignments, and the per-state
   allocation-charge candidates. The closures drive the {e same} machine
   helpers ([linearize], [buffer_of], [apply_binop], …) in the same order
   as the tree walker, so charged cycles, loads, stores and allocation
   addresses are bit-for-bit identical; only the interpretation overhead
   (tree dispatch, assoc-list scans, repeated topo sorts) disappears. *)

type mode = Tree | Compiled

(* Compiled symbolic expression; mirrors Expr.eval's left-to-right
   evaluation (the symbol environment may charge for scalar-container
   reads) and raises Expr.Unbound_symbol like the interpreter. *)
let rec compile_expr (e : Expr.t) : runtime -> int =
  match e with
  | Expr.Int n -> fun _ -> n
  | Expr.Sym s -> (
      fun rt ->
        match sym_env rt s with
        | Some v -> v
        | None -> raise (Expr.Unbound_symbol s))
  | Expr.Add xs ->
      let cs = List.map compile_expr xs in
      fun rt -> List.fold_left (fun acc c -> acc + c rt) 0 cs
  | Expr.Mul xs ->
      let cs = List.map compile_expr xs in
      fun rt -> List.fold_left (fun acc c -> acc * c rt) 1 cs
  | Expr.Div (a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      fun rt ->
        let x = ca rt in
        let y = cb rt in
        if y = 0 then invalid_arg "Expr.eval: division by zero"
        else if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1
        else x / y
  | Expr.Mod (a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      fun rt ->
        let x = ca rt in
        let y = cb rt in
        if y = 0 then invalid_arg "Expr.eval: modulo by zero"
        else
          let m = x mod y in
          if m < 0 then m + abs y else m
  | Expr.Min (a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      fun rt ->
        let x = ca rt in
        let y = cb rt in
        min x y
  | Expr.Max (a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      fun rt ->
        let x = ca rt in
        let y = cb rt in
        max x y

(* Wrapper matching [eval_expr]'s trap. *)
let ceval (c : runtime -> int) (rt : runtime) : int =
  match c rt with
  | v -> v
  | exception Expr.Unbound_symbol s -> trap "unbound symbol '%s'" s

let compile_bexpr (b : Bexpr.t) : runtime -> bool =
  let rec go (b : Bexpr.t) : runtime -> bool =
    match b with
    | Bexpr.Bool v -> fun _ -> v
    | Bexpr.Cmp (op, a, c) ->
        let ca = compile_expr a and cc = compile_expr c in
        let f : int -> int -> bool =
          match op with
          | Bexpr.Eq -> ( = )
          | Bexpr.Ne -> ( <> )
          | Bexpr.Lt -> ( < )
          | Bexpr.Le -> ( <= )
          | Bexpr.Gt -> ( > )
          | Bexpr.Ge -> ( >= )
        in
        fun rt ->
          let x = ca rt in
          let y = cc rt in
          f x y
    | Bexpr.And (x, y) ->
        let cx = go x and cy = go y in
        fun rt -> cx rt && cy rt
    | Bexpr.Or (x, y) ->
        let cx = go x and cy = go y in
        fun rt -> cx rt || cy rt
    | Bexpr.Not x ->
        let cx = go x in
        fun rt -> not (cx rt)
  in
  go b

let compile_range_dim (d : Range.dim) :
    (runtime -> int) * (runtime -> int) * (runtime -> int) =
  (compile_expr d.lo, compile_expr d.hi, compile_expr d.step)

(* Evaluation order (lo, hi, step) mirrors [eval_range_dim]. *)
let eval_crange (rt : runtime)
    ((clo, chi, cstep) : (runtime -> int) * (runtime -> int) * (runtime -> int))
    : int * int * int =
  let lo = ceval clo rt in
  let hi = ceval chi rt in
  let step = ceval cstep rt in
  (lo, hi, step)

(* Compile-time connector binding: scalars become slots in a per-tasklet
   value array; array bindings resolve to their container statically. *)
type cbind = CBScalar of int | CBArray of string

(* Compiled tasklet expression over the slot array. Mirrors [eval_texpr]
   arm by arm (same charge points, same traps, same evaluation order). *)
let rec compile_texpr (benv : (string * cbind) list) (e : Texpr.t) :
    runtime -> Value.t array -> Value.t =
  match e with
  | Texpr.TFloat f ->
      let v = Value.VFloat f in
      fun _ _ -> v
  | Texpr.TInt n ->
      let v = Value.VInt n in
      fun _ _ -> v
  | Texpr.TSym s -> (
      fun rt _ ->
        match sym_env rt s with
        | Some v -> VInt v
        | None -> trap "tasklet references unbound symbol '%s'" s)
  | Texpr.TIn c -> (
      match List.assoc_opt c benv with
      | Some (CBScalar i) -> fun _ slots -> slots.(i)
      | Some (CBArray _) ->
          fun _ _ -> trap "connector '%s' is an array, not a scalar" c
      | None -> fun _ _ -> trap "unbound input connector '%s'" c)
  | Texpr.TIndex (c, idxs) -> (
      match List.assoc_opt c benv with
      | Some (CBArray data) ->
          let cidxs = List.map (compile_texpr benv) idxs in
          fun rt slots ->
            let indices =
              List.map (fun ci -> Value.as_int (ci rt slots)) cidxs
            in
            let lin = linearize rt data indices in
            Machine.load rt.machine (buffer_of rt data) lin
      | Some (CBScalar _) ->
          fun _ _ -> trap "connector '%s' is scalar; cannot index" c
      | None -> fun _ _ -> trap "unbound input connector '%s'" c)
  | Texpr.TBin (op, a, b) ->
      let ca = compile_texpr benv a and cb = compile_texpr benv b in
      fun rt slots ->
        let va = ca rt slots in
        let vb = cb rt slots in
        apply_binop rt.machine op va vb
  | Texpr.TCmp (op, a, b) ->
      let ca = compile_texpr benv a and cb = compile_texpr benv b in
      fun rt slots ->
        let va = ca rt slots in
        let vb = cb rt slots in
        apply_cmpop rt.machine op va vb
  | Texpr.TSelect (c, a, b) ->
      let cc = compile_texpr benv c in
      let ca = compile_texpr benv a in
      let cb = compile_texpr benv b in
      fun rt slots ->
        Machine.charge_op rt.machine Int_alu;
        if Value.as_bool (cc rt slots) then ca rt slots else cb rt slots
  | Texpr.TUn (`Neg, a) -> (
      let ca = compile_texpr benv a in
      fun rt slots ->
        match ca rt slots with
        | VFloat f ->
            Machine.charge_op rt.machine Fp_add;
            VFloat (-.f)
        | VInt n ->
            Machine.charge_op rt.machine Int_alu;
            VInt (-n))
  | Texpr.TUn (`Not, a) ->
      let ca = compile_texpr benv a in
      fun rt slots ->
        Machine.charge_op rt.machine Int_alu;
        Value.of_bool (not (Value.as_bool (ca rt slots)))
  | Texpr.TUn (`ToFloat, a) ->
      let ca = compile_texpr benv a in
      fun rt slots ->
        Machine.charge_op rt.machine Move;
        VFloat (Value.as_float (ca rt slots))
  | Texpr.TUn (`ToInt, a) ->
      let ca = compile_texpr benv a in
      fun rt slots ->
        Machine.charge_op rt.machine Move;
        apply_toint (ca rt slots)
  | Texpr.TCall (fname, args) ->
      let cargs = List.map (compile_texpr benv) args in
      fun rt slots ->
        let vargs = List.map (fun c -> Value.as_float (c rt slots)) cargs in
        apply_call rt.machine fname vargs

type crange = (runtime -> int) * (runtime -> int) * (runtime -> int)

type cnode =
  | CCopies of ccopy list  (** Access node's outgoing copies, in edge order *)
  | CTasklet of ctask
  | CMap of cmap

and ccopy = {
  cc_src : string;
  cc_dst : string;
  cc_wcr : Sdfg.wcr option;
  cc_src_dims : crange list;
  cc_dst_dims : crange list;
}

and ctask = {
  ct_tname : string;
  ct_fills : (runtime -> Value.t) array;
      (** scalar connector slots, in in-edge order *)
  ct_body : cbody;
  ct_outkeys : string array;  (** last_outputs keys, in output order *)
  ct_writes : (runtime -> Value.t array -> unit) array;
      (** per out-edge, in edge order; indexes the output value array *)
}

and cbody =
  | CNative of (runtime -> Value.t array -> Value.t) array
  | COpaque of copaque

and copaque = {
  co_tname : string;
  co_overhead : float;
  co_modul : Dcir_mlir.Ir.modul;
  co_entry : string;
  co_nid : int;  (** prepared-context cache key *)
  co_syms : string list;
  co_args : coarg list;  (** per input connector, in [t_inputs] order *)
}

and coarg = COScalar of int | COArray of string | COUnbound of string

and cmap = {
  cm_params : string list;
  cm_ranges : crange list;
  cm_body : cgraph;
  cm_par : Sdfg.par_cert option;
}

and cgraph = cnode array

type cedge = {
  ce_src : string;
  ce_dst : string;
  ce_cond : runtime -> bool;  (** raises Expr.Unbound_symbol *)
  ce_assign : (string * (runtime -> int)) list;
}

type cstate = {
  cs_label : string;
  cs_allocs : (Sdfg.container * (runtime -> int) list) list;
      (** heap containers charged at this state, in container-table order *)
  cs_graph : cgraph;
  cs_branch : bool;  (** more than one outgoing interstate edge *)
  cs_edges : cedge list;
}

(** A compiled plan. Closures take the runtime as an argument, so one plan
    is reusable across runs of the same (un-mutated) SDFG; states compile
    lazily on first execution. *)
type plan = {
  pl_sdfg : Sdfg.t;
  pl_states : (string, cstate) Hashtbl.t;
}

let compile_plan (sdfg : Sdfg.t) : plan =
  { pl_sdfg = sdfg; pl_states = Hashtbl.create 16 }

(* Compiled write of one output value (write_element order: buffer, then
   linearize, then store). All validation traps fire at execution time,
   never at compile time, so failure timing matches the tree walker. *)
let compile_write (outnames : string list) (conn : string) (m : Sdfg.memlet)
    : runtime -> Value.t array -> unit =
  let rec index_of i = function
    | [] -> None
    | x :: _ when String.equal x conn -> Some i
    | _ :: r -> index_of (i + 1) r
  in
  match index_of 0 outnames with
  | None -> fun _ _ -> trap "no value computed for output connector '%s'" conn
  | Some i ->
      if List.for_all Range.is_index m.subset then
        let cidxs =
          List.map (fun (d : Range.dim) -> compile_expr d.lo) m.subset
        in
        fun rt vals ->
          let indices = List.map (fun c -> ceval c rt) cidxs in
          let buf = buffer_of rt m.data in
          let lin = linearize rt m.data indices in
          let v = vals.(i) in
          (match m.wcr with
          | None -> Machine.store rt.machine buf lin v
          | Some w ->
              let old_v = Machine.load rt.machine buf lin in
              Machine.store rt.machine buf lin (apply_wcr rt w old_v v))
      else fun _ _ -> trap "write memlet must be a single element (%s)" m.data

let compile_tasklet (g : Sdfg.graph) (n : Sdfg.node) (t : Sdfg.tasklet) :
    ctask =
  let array_conns = tasklet_array_conns t in
  (* Bindings accumulate in in-edge order; List.assoc picks the first
     occurrence, like the tree walker's env. Every scalar fill still
     executes (and charges) even for shadowed duplicates. *)
  let fills = ref [] in
  let benv = ref [] in
  let nslots = ref 0 in
  List.iter
    (fun (e : Sdfg.edge) ->
      match (e.e_dst_conn, e.e_memlet) with
      | Some conn, Some m ->
          if List.mem conn array_conns then
            benv := (conn, CBArray m.data) :: !benv
          else begin
            let i = !nslots in
            incr nslots;
            let fill =
              if List.for_all Range.is_index m.subset then
                let cidxs =
                  List.map (fun (d : Range.dim) -> compile_expr d.lo) m.subset
                in
                fun rt ->
                  (* read_element order: linearize, then load. *)
                  let indices = List.map (fun c -> ceval c rt) cidxs in
                  let lin = linearize rt m.data indices in
                  Machine.load rt.machine (buffer_of rt m.data) lin
              else
                let subset_s = Range.to_string m.subset in
                fun _ ->
                  trap
                    "tasklet '%s': scalar connector '%s' with non-index \
                     subset %s"
                    t.tname conn subset_s
            in
            fills := fill :: !fills;
            benv := (conn, CBScalar i) :: !benv
          end
      | Some conn, None -> (
          match e.e_src_conn with
          | Some src_conn ->
              let key = Printf.sprintf "%d:%s" e.e_src src_conn in
              let i = !nslots in
              incr nslots;
              fills :=
                (fun rt ->
                  match Hashtbl.find_opt rt.last_outputs key with
                  | Some v -> v
                  | None ->
                      trap
                        "tasklet '%s': value edge source %s not yet executed"
                        t.tname key)
                :: !fills;
              benv := (conn, CBScalar i) :: !benv
          | None -> ())
      | _ -> ())
    (Sdfg.node_in_edges g n);
  let benv = List.rev !benv in
  let fills = Array.of_list (List.rev !fills) in
  let body, outnames =
    match t.code with
    | Sdfg.Native assigns ->
        ( CNative
            (Array.of_list
               (List.map (fun (_, e) -> compile_texpr benv e) assigns)),
          List.map fst assigns )
    | Sdfg.Opaque f ->
        let modul = Dcir_mlir.Ir.new_module () in
        modul.funcs <- [ f ];
        ( COpaque
            {
              co_tname = t.tname;
              co_overhead = t.t_overhead;
              co_modul = modul;
              co_entry = f.Dcir_mlir.Ir.fname;
              co_nid = n.nid;
              co_syms = t.t_syms;
              co_args =
                List.map
                  (fun conn ->
                    match List.assoc_opt conn benv with
                    | Some (CBScalar i) -> COScalar i
                    | Some (CBArray data) -> COArray data
                    | None -> COUnbound conn)
                  t.t_inputs;
            },
          t.t_outputs )
  in
  let outkeys =
    Array.of_list
      (List.map (fun c -> Printf.sprintf "%d:%s" n.nid c) outnames)
  in
  let writes =
    Array.of_list
      (List.filter_map
         (fun (e : Sdfg.edge) ->
           match (e.e_src_conn, e.e_memlet) with
           | Some conn, Some m -> Some (compile_write outnames conn m)
           | _ -> None)
         (Sdfg.node_out_edges g n))
  in
  { ct_tname = t.tname; ct_fills = fills; ct_body = body; ct_outkeys = outkeys; ct_writes = writes }

let rec compile_graph (g : Sdfg.graph) : cgraph =
  Array.of_list
    (List.map
       (fun (n : Sdfg.node) ->
         match n.kind with
         | Sdfg.Access _ ->
             CCopies
               (List.filter_map
                  (fun (e : Sdfg.edge) ->
                    match ((Sdfg.node_by_id g e.e_dst).kind, e.e_memlet) with
                    | Sdfg.Access dst_name, Some m ->
                        let dst_subset =
                          match m.other with
                          | Some o -> o
                          | None -> m.subset (* same-region copy *)
                        in
                        Some
                          {
                            cc_src = m.data;
                            cc_dst = dst_name;
                            cc_wcr = m.wcr;
                            cc_src_dims =
                              List.map compile_range_dim m.subset;
                            cc_dst_dims =
                              List.map compile_range_dim dst_subset;
                          }
                    | _ -> None)
                  (Sdfg.node_out_edges g n))
         | Sdfg.TaskletN t -> CTasklet (compile_tasklet g n t)
         | Sdfg.MapN mn ->
             CMap
               {
                 cm_params = mn.m_params;
                 cm_ranges = List.map compile_range_dim mn.m_ranges;
                 cm_body = compile_graph mn.m_body;
                 cm_par = mn.m_par;
               })
       (Sdfg.topo_order g))

let compile_state (sdfg : Sdfg.t) (s : Sdfg.state) : cstate =
  (* Allocation-charge candidates in container-table iteration order, so
     charge order matches the tree walker's Hashtbl.iter. *)
  let allocs = ref [] in
  Hashtbl.iter
    (fun _ (c : Sdfg.container) ->
      if c.alloc_state = Some s.s_label && c.storage = Sdfg.Heap then
        allocs := (c, List.map compile_expr c.shape) :: !allocs)
    sdfg.containers;
  let outs = Sdfg.out_edges sdfg s.s_label in
  {
    cs_label = s.s_label;
    cs_allocs = List.rev !allocs;
    cs_graph = compile_graph s.s_graph;
    cs_branch = List.length outs > 1;
    cs_edges =
      List.map
        (fun (e : Sdfg.istate_edge) ->
          {
            ce_src = e.ie_src;
            ce_dst = e.ie_dst;
            ce_cond = compile_bexpr e.ie_cond;
            ce_assign =
              List.map (fun (sym, ex) -> (sym, compile_expr ex)) e.ie_assign;
          })
        outs;
  }

let plan_state (pl : plan) (label : string) : cstate option =
  match Hashtbl.find_opt pl.pl_states label with
  | Some cs -> Some cs
  | None -> (
      match Sdfg.find_state pl.pl_sdfg label with
      | None -> None
      | Some s ->
          let cs = compile_state pl.pl_sdfg s in
          Hashtbl.replace pl.pl_states label cs;
          Some cs)

(* ------------------------------------------------------------------ *)
(* Compiled execution. Mirrors exec_graph / exec_access_copies /
   exec_tasklet / exec_map / exec_state step for step. *)

let exec_ccopy (rt : runtime) (cc : ccopy) : unit =
  let src_buf = buffer_of rt cc.cc_src in
  let dst_buf = buffer_of rt cc.cc_dst in
  let write_one dst_indices v =
    let lin = linearize rt cc.cc_dst dst_indices in
    match cc.cc_wcr with
    | None -> Machine.store rt.machine dst_buf lin v
    | Some w ->
        let old_v = Machine.load rt.machine dst_buf lin in
        Machine.store rt.machine dst_buf lin (apply_wcr rt w old_v v)
  in
  let src_dims = List.map (eval_crange rt) cc.cc_src_dims in
  let dst_dims = List.map (eval_crange rt) cc.cc_dst_dims in
  let single ds = List.for_all (fun (lo, hi, _) -> lo = hi) ds in
  if single src_dims && single dst_dims then begin
    let src_idx = List.map (fun (lo, _, _) -> lo) src_dims in
    let dst_idx = List.map (fun (lo, _, _) -> lo) dst_dims in
    let v = Machine.load rt.machine src_buf (linearize rt cc.cc_src src_idx) in
    write_one dst_idx v
  end
  else begin
    if List.length src_dims <> List.length dst_dims then
      trap "copy %s -> %s: subset rank mismatch" cc.cc_src cc.cc_dst;
    let rec iter src_prefix dst_prefix = function
      | [] ->
          let v =
            Machine.load rt.machine src_buf
              (linearize rt cc.cc_src (List.rev src_prefix))
          in
          write_one (List.rev dst_prefix) v
      | ((lo, hi, step), (dlo, _, dstep)) :: rest ->
          let i = ref lo and k = ref 0 in
          while !i <= hi do
            iter (!i :: src_prefix) ((dlo + (!k * dstep)) :: dst_prefix) rest;
            i := !i + step;
            incr k
          done
    in
    iter [] [] (List.combine src_dims dst_dims)
  end

let rec exec_cgraph (rt : runtime) (g : cgraph) : unit =
  charge_step rt;
  Array.iter
    (fun (cn : cnode) ->
      match cn with
      | CCopies copies -> List.iter (exec_ccopy rt) copies
      | CTasklet ct -> exec_ctask rt ct
      | CMap cm -> exec_cmap rt cm)
    g

and exec_ctask (rt : runtime) (ct : ctask) : unit =
  match rt.profile with
  | None -> exec_ctask_body rt ct
  | Some _ ->
      let snap = metric_snap rt in
      exec_ctask_body rt ct;
      profile_record rt snap ~kind:"tasklet" ~name:ct.ct_tname

and exec_ctask_body (rt : runtime) (ct : ctask) : unit =
  let nfills = Array.length ct.ct_fills in
  let slots = Array.make nfills (Value.VInt 0) in
  for i = 0 to nfills - 1 do
    slots.(i) <- ct.ct_fills.(i) rt
  done;
  let vals =
    match ct.ct_body with
    | CNative assigns ->
        let n = Array.length assigns in
        let vals = Array.make n (Value.VInt 0) in
        for i = 0 to n - 1 do
          vals.(i) <- assigns.(i) rt slots
        done;
        vals
    | COpaque co ->
        Machine.charge rt.machine co.co_overhead;
        let sym_args =
          List.map
            (fun s ->
              match sym_env rt s with
              | Some v -> Dcir_mlir.Interp.Scalar (Value.VInt v)
              | None ->
                  trap "opaque tasklet '%s': unbound symbol '%s'" co.co_tname s)
            co.co_syms
        in
        let args =
          List.map
            (fun (a : coarg) ->
              match a with
              | COScalar i -> Dcir_mlir.Interp.Scalar slots.(i)
              | COArray data ->
                  Dcir_mlir.Interp.Buf
                    { buf = buffer_of rt data; dims = dims_of rt data }
              | COUnbound conn ->
                  trap "opaque tasklet '%s': unbound connector '%s'"
                    co.co_tname conn)
            co.co_args
        in
        let prep =
          match Hashtbl.find_opt rt.prepared co.co_nid with
          | Some p -> p
          | None ->
              let p =
                Dcir_mlir.Interp.prepare ?profile:rt.profile
                  ~machine:rt.machine co.co_modul ~entry:co.co_entry
              in
              Hashtbl.replace rt.prepared co.co_nid p;
              p
        in
        let results = Dcir_mlir.Interp.run_prepared prep (sym_args @ args) in
        Array.of_list
          (List.map2 (fun _ v -> v) (Array.to_list ct.ct_outkeys) results)
  in
  Array.iteri
    (fun i key -> Hashtbl.replace rt.last_outputs key vals.(i))
    ct.ct_outkeys;
  Array.iter (fun w -> w rt vals) ct.ct_writes

and exec_cmap (rt : runtime) (cm : cmap) : unit =
  match cm.cm_par with
  | Some cert when cm.cm_params <> [] ->
      let dims = List.map (eval_crange rt) cm.cm_ranges in
      exec_par_chunks rt cert ~params:cm.cm_params ~dims
        ~body:(fun crt -> exec_cgraph crt cm.cm_body)
  | Some _ | None -> exec_cmap_serial rt cm

and exec_cmap_serial (rt : runtime) (cm : cmap) : unit =
  let dims = List.map (eval_crange rt) cm.cm_ranges in
  let saved =
    List.map (fun p -> (p, Hashtbl.find_opt rt.symbols p)) cm.cm_params
  in
  let rec iter params dims =
    match (params, dims) with
    | [], [] -> exec_cgraph rt cm.cm_body
    | p :: ps, (lo, hi, step) :: ds ->
        let i = ref lo in
        while !i <= hi do
          Machine.charge_op rt.machine Int_alu;
          Machine.charge_op rt.machine Branch;
          Hashtbl.replace rt.symbols p !i;
          iter ps ds;
          i := !i + step
        done
    | _ -> trap "map params/ranges mismatch"
  in
  iter cm.cm_params dims;
  List.iter
    (fun (p, old) ->
      match old with
      | Some v -> Hashtbl.replace rt.symbols p v
      | None -> Hashtbl.remove rt.symbols p)
    saved

let exec_cstate (rt : runtime) (cs : cstate) : unit =
  List.iter
    (fun ((c : Sdfg.container), cshape) ->
      if c.alloc_in_loop || not (Hashtbl.mem rt.alloc_charged c.cname) then begin
        Hashtbl.replace rt.alloc_charged c.cname ();
        let bytes =
          List.fold_left (fun acc cd -> acc * max 1 (ceval cd rt)) 1 cshape
          * Sdfg.elem_bytes c
        in
        let pages = (bytes + 4095) / 4096 in
        Machine.charge rt.machine
          (rt.machine.cfg.malloc_cost
          +. (rt.machine.cfg.malloc_per_page *. float_of_int pages)
          +. if c.alloc_in_loop then rt.machine.cfg.free_cost else 0.0);
        (Machine.metrics rt.machine).heap_allocs <-
          (Machine.metrics rt.machine).heap_allocs + 1
      end)
    cs.cs_allocs;
  exec_cgraph rt cs.cs_graph

let run_compiled (rt : runtime) (pl : plan) : unit =
  let machine = rt.machine in
  let cur = ref (plan_state pl rt.sdfg.start_state) in
  while !cur <> None do
    (* each interstate transition is one budget step — the hang guard *)
    charge_step rt;
    let cs = Option.get !cur in
    let snap = metric_snap rt in
    exec_cstate rt cs;
    if cs.cs_branch then Machine.charge_op machine Branch;
    let taken =
      List.find_opt
        (fun (e : cedge) ->
          match e.ce_cond rt with
          | v -> v
          | exception Expr.Unbound_symbol sym ->
              trap "condition on edge %s->%s reads unbound symbol '%s'"
                e.ce_src e.ce_dst sym)
        cs.cs_edges
    in
    let next =
      match taken with
      | None -> None
      | Some e ->
          (* Evaluate all RHS with pre-assignment values, then commit. *)
          let values =
            List.map
              (fun (sym, cex) ->
                Machine.charge_op machine Int_alu;
                (sym, ceval cex rt))
              e.ce_assign
          in
          List.iter (fun (sym, v) -> Hashtbl.replace rt.symbols sym v) values;
          plan_state pl e.ce_dst
    in
    profile_record rt snap ~kind:"state" ~name:cs.cs_label;
    cur := next
  done

(* ------------------------------------------------------------------ *)

type result = {
  return_value : Value.t option;
  machine : Machine.t;
}

(** [run sdfg ~machine ~buffers ~symbols] executes the SDFG. [buffers] must
    provide every non-transient container; [symbols] binds [arg_symbols]
    (sizes and promoted scalar parameters). [profile] attributes
    cycles/loads/stores per state — including the state's outgoing
    transition costs, so the per-state entries partition the run's total —
    and per tasklet (inclusive). [mode] selects tree-walking or compiled
    execution plans (the default); both charge the machine identically.
    [plan] supplies a pre-compiled (or cached, reusable across runs) plan
    for this SDFG; ignored in tree mode. *)
let run ?(machine : Machine.t option)
    ?(profile : Dcir_obs.Obs.Profile.t option) ?(mode : mode = Compiled)
    ?(plan : plan option) ?(jobs : int = 1) (sdfg : Sdfg.t)
    ~(buffers : (string * Machine.buffer * int array) list)
    ~(symbols : (string * int) list) () : result =
  let machine = match machine with Some m -> m | None -> Machine.create () in
  let rt =
    {
      machine;
      sdfg;
      buffers = Hashtbl.create 32;
      dims = Hashtbl.create 32;
      symbols = Hashtbl.create 32;
      topo_cache = Hashtbl.create 32;
      alloc_charged = Hashtbl.create 16;
      last_outputs = Hashtbl.create 32;
      budget = Machine.budget machine;
      profile;
      prepared = Hashtbl.create 8;
      jobs = max 1 jobs;
    }
  in
  List.iter (fun (s, v) -> Hashtbl.replace rt.symbols s v) symbols;
  List.iter
    (fun (name, buf, dims) ->
      Hashtbl.replace rt.buffers name buf;
      Hashtbl.replace rt.dims name dims)
    buffers;
  (* Argument buffers must all be present; transients allocate lazily at
     first access (see [buffer_of]). *)
  Hashtbl.iter
    (fun name (c : Sdfg.container) ->
      if (not c.transient) && not (Hashtbl.mem rt.buffers name) then
        trap "missing buffer for argument '%s'" name)
    sdfg.containers;
  (match mode with
  | Tree -> run_tree rt
  | Compiled ->
      let pl =
        match plan with
        | Some p when p.pl_sdfg == sdfg -> p
        | _ -> compile_plan sdfg
      in
      run_compiled rt pl);
  let return_value =
    match (sdfg.return_scalar, sdfg.return_expr) with
    | Some name, _ -> Some (Machine.peek (buffer_of rt name) 0)
    | None, Some e -> Some (Value.VInt (eval_expr rt e))
    | None, None -> None
  in
  { return_value; machine }
