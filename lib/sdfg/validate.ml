(** SDFG validation, including the paper's parametric size verification
    (Fig 3): with symbolic shapes, copies between containers of sizes [N]
    and [M] are rejected at compile time unless the sizes are provably
    equal, and provably out-of-bounds subsets are flagged. *)

open Dcir_symbolic

type diagnostic = { severity : [ `Error | `Warning ]; message : string }

let error fmt = Fmt.kstr (fun m -> { severity = `Error; message = m }) fmt
let warning fmt = Fmt.kstr (fun m -> { severity = `Warning; message = m }) fmt

let pp_diagnostic ppf (d : diagnostic) =
  Fmt.pf ppf "%s: %s"
    (match d.severity with `Error -> "error" | `Warning -> "warning")
    d.message

let check_memlet (sdfg : Sdfg.t) ~(where : string) (m : Sdfg.memlet) :
    diagnostic list =
  match Hashtbl.find_opt sdfg.containers m.data with
  | None -> [ error "%s: memlet references unknown container '%s'" where m.data ]
  | Some c ->
      let rank = List.length c.shape in
      if List.length m.subset <> rank then
        [
          error "%s: memlet %s%s has rank %d but container has rank %d" where
            m.data (Range.to_string m.subset) (List.length m.subset) rank;
        ]
      else
        List.concat
          (List.map2
             (fun (d : Range.dim) (size : Expr.t) ->
               let oob =
                 Bexpr.decide (Bexpr.lt d.lo Expr.zero) = Some true
                 || Bexpr.decide (Bexpr.ge d.hi size) = Some true
               in
               if oob then
                 [
                   error
                     "%s: subset %s of '%s' is out of bounds for size %s"
                     where (Range.to_string m.subset) m.data
                     (Expr.to_string size);
                 ]
               else [])
             m.subset c.shape)

(* Copy edges (Access -> Access) must move provably size-matching regions —
   the Fig 3 property. *)
let check_copy (sdfg : Sdfg.t) ~(where : string) (src : string) (dst : string)
    (m : Sdfg.memlet) : diagnostic list =
  match
    (Hashtbl.find_opt sdfg.containers src, Hashtbl.find_opt sdfg.containers dst)
  with
  | Some src_c, Some dst_c ->
      let moved = Range.volume m.subset in
      let dst_cap = Expr.mul_list dst_c.shape in
      ignore src_c;
      if Bexpr.decide (Bexpr.le moved dst_cap) = Some true then []
      else if Bexpr.decide (Bexpr.gt moved dst_cap) = Some true then
        [
          error
            "%s: copy of %s elements from '%s' cannot fit destination '%s' \
             of size %s"
            where (Expr.to_string moved) src dst (Expr.to_string dst_cap);
        ]
      else
        [
          error
            "%s: cannot prove copy size %s from '%s' fits destination '%s' \
             of size %s"
            where (Expr.to_string moved) src dst (Expr.to_string dst_cap);
        ]
  | _ -> []

let rec check_graph (sdfg : Sdfg.t) ~(where : string) (g : Sdfg.graph) :
    diagnostic list =
  let diags = ref [] in
  let push d = diags := !diags @ d in
  (* Acyclicity. *)
  (try ignore (Sdfg.topo_order g)
   with Invalid_argument _ ->
     push [ error "%s: dataflow graph has a cycle" where ]);
  (* Edge endpoints and memlets. *)
  List.iter
    (fun (e : Sdfg.edge) ->
      let src = Sdfg.node_by_id g e.e_src and dst = Sdfg.node_by_id g e.e_dst in
      (match e.e_memlet with
      | Some m -> (
          push (check_memlet sdfg ~where m);
          match (src.kind, dst.kind) with
          | Sdfg.Access a, Sdfg.Access b -> push (check_copy sdfg ~where a b m)
          | _ -> ())
      | None -> ());
      (* Connector discipline: tasklet endpoints need connectors. *)
      (match (src.kind, e.e_src_conn) with
      | Sdfg.TaskletN t, Some c ->
          if not (List.mem c t.t_outputs) then
            push [ error "%s: tasklet '%s' has no output connector '%s'" where t.tname c ]
      | Sdfg.TaskletN t, None ->
          if e.e_memlet <> None then
            push
              [ error "%s: dataflow out of tasklet '%s' without a connector" where t.tname ]
      | _ -> ());
      match (dst.kind, e.e_dst_conn) with
      | Sdfg.TaskletN t, Some c ->
          if not (List.mem c t.t_inputs) then
            push [ error "%s: tasklet '%s' has no input connector '%s'" where t.tname c ]
      | Sdfg.TaskletN t, None ->
          if e.e_memlet <> None then
            push
              [ error "%s: dataflow into tasklet '%s' without a connector" where t.tname ]
      | _ -> ())
    (Sdfg.edges g);
  (* Native tasklet code must only use declared connectors. *)
  List.iter
    (fun (n : Sdfg.node) ->
      match n.kind with
      | Sdfg.TaskletN { code = Native assigns; t_inputs; t_outputs; tname; _ } ->
          List.iter
            (fun (out, expr) ->
              if not (List.mem out t_outputs) then
                push [ error "%s: tasklet '%s' assigns undeclared output '%s'" where tname out ];
              List.iter
                (fun i ->
                  if not (List.mem i t_inputs) then
                    push
                      [ error "%s: tasklet '%s' reads undeclared input '%s'" where tname i ])
                (Texpr.free_inputs expr))
            assigns
      | Sdfg.MapN mn ->
          if List.length mn.m_params <> List.length mn.m_ranges then
            push [ error "%s: map has %d params but %d ranges" where
                     (List.length mn.m_params) (List.length mn.m_ranges) ];
          (* Map-scope discipline. Parameters are fresh symbols: declaring
             one twice or shadowing a container makes body subsets
             ambiguous. Ranges iterate lo upward by step, so a provably
             non-positive step never terminates. *)
          let seen_params = Hashtbl.create 4 in
          List.iter
            (fun p ->
              if Hashtbl.mem seen_params p then
                push [ error "%s: map declares parameter '%s' twice" where p ]
              else Hashtbl.replace seen_params p ();
              if Hashtbl.mem sdfg.containers p then
                push
                  [ error "%s: map parameter '%s' shadows a container" where p ])
            mn.m_params;
          List.iter
            (fun (d : Range.dim) ->
              if Bexpr.decide (Bexpr.le d.step Expr.zero) = Some true then
                push
                  [ error "%s: map range %s has non-positive step %s" where
                      (Range.to_string [ d ]) (Expr.to_string d.step) ])
            mn.m_ranges;
          (* External memlets summarize the body's accesses for node-level
             reasoning (scheduling, dependence testing); one naming a
             container the body never touches that way is a lie. *)
          let body_reads = Sdfg.read_containers mn.m_body
          and body_writes = Sdfg.written_containers mn.m_body in
          List.iter
            (fun (e : Sdfg.edge) ->
              match e.e_memlet with
              | Some m when e.e_dst = n.nid ->
                  if
                    not
                      (List.mem m.data body_reads
                      || List.mem m.data body_writes)
                  then
                    push
                      [ error
                          "%s: map input memlet '%s' names a container the \
                           body never accesses"
                          where m.data ]
              | Some m when e.e_src = n.nid ->
                  if not (List.mem m.data body_writes) then
                    push
                      [ error
                          "%s: map output memlet '%s' names a container the \
                           body never writes"
                          where m.data ]
              | _ -> ())
            (Sdfg.edges g);
          push (check_graph sdfg ~where:(where ^ "/map") mn.m_body)
      | Sdfg.Access name ->
          if not (Hashtbl.mem sdfg.containers name) then
            push [ error "%s: access node references unknown container '%s'" where name ]
      | Sdfg.TaskletN { code = Opaque _; _ } -> ())
    (Sdfg.nodes g);
  !diags

let validate (sdfg : Sdfg.t) : diagnostic list =
  let diags = ref [] in
  let push d = diags := !diags @ d in
  (* State labels unique; start state and edge endpoints exist. *)
  let labels = List.map (fun (s : Sdfg.state) -> s.s_label) (Sdfg.states sdfg) in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem seen l then push [ error "duplicate state label '%s'" l ]
      else Hashtbl.replace seen l ())
    labels;
  if (Sdfg.states sdfg) <> [] && not (List.mem sdfg.start_state labels) then
    push [ error "start state '%s' does not exist" sdfg.start_state ];
  List.iter
    (fun (e : Sdfg.istate_edge) ->
      if not (List.mem e.ie_src labels) then
        push [ error "interstate edge from unknown state '%s'" e.ie_src ];
      if not (List.mem e.ie_dst labels) then
        push [ error "interstate edge to unknown state '%s'" e.ie_dst ])
    (Sdfg.istate_edges sdfg);
  (* Per-state dataflow. *)
  List.iter
    (fun (s : Sdfg.state) -> push (check_graph sdfg ~where:s.s_label s.s_graph))
    (Sdfg.states sdfg);
  (* Warn about symbols that are never bound anywhere. *)
  let assigned =
    List.concat_map (fun (e : Sdfg.istate_edge) -> List.map fst e.ie_assign)
      (Sdfg.istate_edges sdfg)
    @ sdfg.arg_symbols
  in
  List.iter
    (fun s ->
      if not (List.mem s assigned) then
        push [ warning "symbol '%s' is read but never assigned" s ])
    (Sdfg.free_syms sdfg);
  !diags

let errors (sdfg : Sdfg.t) : diagnostic list =
  List.filter (fun d -> d.severity = `Error) (validate sdfg)

let validate_exn (sdfg : Sdfg.t) : unit =
  match errors sdfg with
  | [] -> ()
  | errs ->
      failwith
        (String.concat "\n"
           (List.map (fun d -> Fmt.str "%a" pp_diagnostic d) errs))
