(** The Stateful Dataflow multiGraph IR (Ben-Nun et al., SC'19), as used by
    the paper.

    An SDFG is a state machine whose nodes (states) hold acyclic dataflow
    graphs. Data containers are declared globally; access nodes inside states
    name them, and edges between nodes carry {e memlets}: symbolic subsets of
    moved data. Interstate edges carry a symbolic condition and symbol
    assignments — loops appear as guard-pattern cycles whose induction
    variable is a symbol.

    One deliberate simplification versus DaCe: a parametric-parallel map is a
    single node holding a nested dataflow graph, instead of matched
    entry/exit nodes in a flat multigraph. External edges of the map node
    carry the aggregated memlets (what the analyses consume); the nested
    graph uses per-iteration subsets over the map parameters. The paper's
    pipeline never emits maps here (auto-parallelization is disabled in the
    evaluation, §7.1); maps are exercised by dedicated tests and examples. *)

open Dcir_symbolic

type dtype = DInt | DFloat

type storage =
  | Heap  (** malloc'd; allocation cost on every (re-)allocation *)
  | Stack  (** cheap allocation *)
  | Register  (** no memory traffic; scalars and tiny promoted buffers *)

type container = {
  cname : string;
  dtype : dtype;
  mutable shape : Expr.t list;  (** [[]] = scalar *)
  mutable transient : bool;  (** lifetime managed by the SDFG *)
  mutable storage : storage;
  mutable alloc_in_loop : bool;
      (** came from an allocation inside a loop: allocation cost recurs on
          every execution of the allocating state until hoisted (§6.3) *)
  mutable alloc_state : string option;
      (** the state whose execution pays the allocation when
          [alloc_in_loop] is set *)
}

let elem_bytes (c : container) : int =
  match c.dtype with DInt -> 8 | DFloat -> 8

let is_scalar (c : container) : bool = c.shape = []

type wcr = WcrSum | WcrProd | WcrMax | WcrMin

let wcr_of_string = function
  | "add" | "sum" -> Some WcrSum
  | "mul" | "prod" -> Some WcrProd
  | "max" -> Some WcrMax
  | "min" -> Some WcrMin
  | _ -> None

let wcr_to_string = function
  | WcrSum -> "add"
  | WcrProd -> "mul"
  | WcrMax -> "max"
  | WcrMin -> "min"

type memlet = {
  data : string;  (** container name *)
  subset : Range.t;
  wcr : wcr option;  (** write-conflict resolution: store becomes update *)
  other : Range.t option;
      (** for Access-to-Access copy edges: the destination subset (the
          source subset is [subset]); [None] everywhere else *)
}

type tasklet_code =
  | Native of Texpr.code
      (** analyzable assignments [out_conn := expr] (raised tasklets) *)
  | Opaque of Dcir_mlir.Ir.func
      (** black-box unit compiled separately (MLIR/C tasklets): executed via
          the MLIR interpreter with link-time overhead, invisible to
          data-centric analysis *)

type tasklet = {
  tname : string;
  t_inputs : string list;  (** input connector names *)
  t_outputs : string list;
  t_syms : string list;
      (** symbols the tasklet reads (read-only, freely accessible §3.2);
          opaque bodies receive them as leading parameters *)
  code : tasklet_code;
  t_overhead : float;
      (** per-invocation cycle cost: 0 for raised/inlined tasklets, positive
          for separately-compiled MLIR tasklets that rely on LTO (§5.2) *)
}

(** How one container is accessed across the iterations of a parallel map —
    the dependence tester's verdict, carried on the map as its
    parallelization certificate. *)
type par_class =
  | ParReadOnly  (** never written in the body *)
  | ParDisjoint
      (** written, but distinct iterations touch provably disjoint subsets;
          the shared buffer is updated in place *)
  | ParReduction of wcr
      (** every access is a WCR update with this operator; workers combine
          into private identity-initialized accumulators, merged in chunk
          order *)
  | ParPrivate
      (** transient written before read each iteration and dead outside the
          loop; each worker gets its own copy *)

type par_cert = { pc_sym : string; pc_classes : (string * par_class) list }
(** Certificate attached by [loop_to_map]: [pc_sym] is the original loop
    induction symbol (= the first map parameter), [pc_classes] classifies
    {e every} container the body accesses. Maps without a certificate keep
    the serial execution semantics; certified maps execute with the chunked
    schedule (identical at any worker count). *)

type node_kind =
  | Access of string  (** of a container *)
  | TaskletN of tasklet
  | MapN of map_node

and map_node = {
  m_params : string list;
  mutable m_ranges : Range.dim list;
  m_body : graph;
  mutable m_par : par_cert option;
}

and node = { nid : int; kind : node_kind }

and edge = {
  e_src : int;
  e_src_conn : string option;  (** tasklet output connector, if any *)
  e_dst : int;
  e_dst_conn : string option;
  mutable e_memlet : memlet option;  (** [None] = pure dependency edge *)
}

and graph = {
  mutable g_nodes : node list;  (** committed, in insertion order *)
  mutable g_nodes_staged : node list;  (** pending appends, newest first *)
  mutable g_edges : edge list;
  mutable g_edges_staged : edge list;
}
(** Node/edge lists use a staged append buffer: [add_node]/[add_edge] cons
    onto the staged list in O(1); readers go through {!nodes}/{!edges},
    which flush staged entries (reversed) onto the committed tail. Building
    an n-node graph is O(n) instead of the former O(n²) [l @ [x]] appends,
    while observable order stays exactly insertion order. *)

type state = { s_label : string; s_graph : graph }

type istate_edge = {
  ie_src : string;
  ie_dst : string;
  mutable ie_cond : Bexpr.t;
  mutable ie_assign : (string * Expr.t) list;
}

type t = {
  name : string;
  containers : (string, container) Hashtbl.t;
  mutable sd_arg_order : string list;
      (** non-transient containers in parameter order (committed) *)
  mutable sd_arg_order_staged : string list;  (** pending, newest first *)
  mutable param_order : string list;
      (** original function parameter names (container names at creation);
          a promoted scalar parameter stays here but moves to
          [arg_symbols] — runners bind positionally through this list *)
  mutable arg_symbols : string list;
      (** free symbols bound by the caller (sizes, promoted scalar params) *)
  mutable sd_states : state list;
  mutable sd_states_staged : state list;
  sd_state_index : (string, state) Hashtbl.t;
      (** label → state for O(1) {!find_state}; on duplicate labels keeps
          the first added (the former [List.find_opt] semantics) *)
  mutable sd_iedges : istate_edge list;
  mutable sd_iedges_staged : istate_edge list;
  mutable start_state : string;
  mutable return_expr : Expr.t option;
      (** symbolic return value, if the function returns through a symbol *)
  mutable return_scalar : string option;
      (** or the scalar container holding the return value *)
  gen : Dcir_support.Id_gen.t;
}

(* ------------------------------------------------------------------ *)
(* Construction *)

let create (name : string) : t =
  {
    name;
    containers = Hashtbl.create 16;
    sd_arg_order = [];
    sd_arg_order_staged = [];
    param_order = [];
    arg_symbols = [];
    sd_states = [];
    sd_states_staged = [];
    sd_state_index = Hashtbl.create 16;
    sd_iedges = [];
    sd_iedges_staged = [];
    start_state = "";
    return_expr = None;
    return_scalar = None;
    gen = Dcir_support.Id_gen.create ();
  }

(* -- staged-list accessors: O(1) appends, reads flush staged entries -- *)

let nodes (g : graph) : node list =
  (match g.g_nodes_staged with
  | [] -> ()
  | staged ->
      g.g_nodes <- g.g_nodes @ List.rev staged;
      g.g_nodes_staged <- []);
  g.g_nodes

let edges (g : graph) : edge list =
  (match g.g_edges_staged with
  | [] -> ()
  | staged ->
      g.g_edges <- g.g_edges @ List.rev staged;
      g.g_edges_staged <- []);
  g.g_edges

let set_nodes (g : graph) (ns : node list) : unit =
  g.g_nodes <- ns;
  g.g_nodes_staged <- []

let set_edges (g : graph) (es : edge list) : unit =
  g.g_edges <- es;
  g.g_edges_staged <- []

let states (sdfg : t) : state list =
  (match sdfg.sd_states_staged with
  | [] -> ()
  | staged ->
      sdfg.sd_states <- sdfg.sd_states @ List.rev staged;
      sdfg.sd_states_staged <- []);
  sdfg.sd_states

let reindex_states (sdfg : t) : unit =
  Hashtbl.reset sdfg.sd_state_index;
  List.iter
    (fun s ->
      if not (Hashtbl.mem sdfg.sd_state_index s.s_label) then
        Hashtbl.replace sdfg.sd_state_index s.s_label s)
    (states sdfg)

let set_states (sdfg : t) (ss : state list) : unit =
  sdfg.sd_states <- ss;
  sdfg.sd_states_staged <- [];
  reindex_states sdfg

let istate_edges (sdfg : t) : istate_edge list =
  (match sdfg.sd_iedges_staged with
  | [] -> ()
  | staged ->
      sdfg.sd_iedges <- sdfg.sd_iedges @ List.rev staged;
      sdfg.sd_iedges_staged <- []);
  sdfg.sd_iedges

let set_istate_edges (sdfg : t) (es : istate_edge list) : unit =
  sdfg.sd_iedges <- es;
  sdfg.sd_iedges_staged <- []

let arg_order (sdfg : t) : string list =
  (match sdfg.sd_arg_order_staged with
  | [] -> ()
  | staged ->
      sdfg.sd_arg_order <- sdfg.sd_arg_order @ List.rev staged;
      sdfg.sd_arg_order_staged <- []);
  sdfg.sd_arg_order

let set_arg_order (sdfg : t) (names : string list) : unit =
  sdfg.sd_arg_order <- names;
  sdfg.sd_arg_order_staged <- []

let add_container (sdfg : t) ?(transient = true) ?(storage = Heap)
    ?(alloc_in_loop = false) ~(dtype : dtype) ~(shape : Expr.t list)
    (cname : string) : container =
  if Hashtbl.mem sdfg.containers cname then
    invalid_arg ("Sdfg.add_container: duplicate " ^ cname);
  let c =
    { cname; dtype; shape; transient; storage; alloc_in_loop; alloc_state = None }
  in
  Hashtbl.replace sdfg.containers cname c;
  if not transient then
    sdfg.sd_arg_order_staged <- cname :: sdfg.sd_arg_order_staged;
  c

let container (sdfg : t) (name : string) : container =
  match Hashtbl.find_opt sdfg.containers name with
  | Some c -> c
  | None -> invalid_arg ("Sdfg.container: unknown " ^ name)

let remove_container (sdfg : t) (name : string) : unit =
  Hashtbl.remove sdfg.containers name;
  set_arg_order sdfg
    (List.filter (fun n -> not (String.equal n name)) (arg_order sdfg))

let fresh_name (sdfg : t) (prefix : string) : string =
  let rec try_ () =
    let n = Dcir_support.Id_gen.fresh sdfg.gen prefix in
    if Hashtbl.mem sdfg.containers n then try_ () else n
  in
  try_ ()

let new_graph () : graph =
  { g_nodes = []; g_nodes_staged = []; g_edges = []; g_edges_staged = [] }

(* Atomic: serve workers build SDFGs concurrently across domains, and a
   torn increment could hand two nodes of one graph the same id. Ids stay
   process-unique; the printer's canonicalization keeps digests
   independent of allocation history. *)
let node_counter = Atomic.make 0

let add_node (g : graph) (kind : node_kind) : node =
  let n = { nid = Atomic.fetch_and_add node_counter 1 + 1; kind } in
  g.g_nodes_staged <- n :: g.g_nodes_staged;
  n

let add_edge (g : graph) ?(src_conn : string option)
    ?(dst_conn : string option) ?(memlet : memlet option) (src : node)
    (dst : node) : edge =
  let e =
    {
      e_src = src.nid;
      e_src_conn = src_conn;
      e_dst = dst.nid;
      e_dst_conn = dst_conn;
      e_memlet = memlet;
    }
  in
  g.g_edges_staged <- e :: g.g_edges_staged;
  e

let add_state (sdfg : t) (label : string) : state =
  let s = { s_label = label; s_graph = new_graph () } in
  sdfg.sd_states_staged <- s :: sdfg.sd_states_staged;
  if not (Hashtbl.mem sdfg.sd_state_index label) then
    Hashtbl.replace sdfg.sd_state_index label s;
  if sdfg.start_state = "" then sdfg.start_state <- label;
  s

let find_state (sdfg : t) (label : string) : state option =
  Hashtbl.find_opt sdfg.sd_state_index label

let add_istate_edge (sdfg : t) ?(cond = Bexpr.true_) ?(assign = []) ~(src : string)
    ~(dst : string) () : unit =
  sdfg.sd_iedges_staged <-
    { ie_src = src; ie_dst = dst; ie_cond = cond; ie_assign = assign }
    :: sdfg.sd_iedges_staged

let out_edges (sdfg : t) (label : string) : istate_edge list =
  List.filter (fun e -> String.equal e.ie_src label) (istate_edges sdfg)

let in_edges (sdfg : t) (label : string) : istate_edge list =
  List.filter (fun e -> String.equal e.ie_dst label) (istate_edges sdfg)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore — the checked-execution primitives of
   {!Dcir_dace_passes.Driver}. Every mutable record (containers, graphs,
   nodes with map bodies, edges, interstate edges) is copied fresh;
   immutable payloads (symbolic expressions, tasklet records, memlets) are
   shared. *)

let rec copy_graph (g : graph) : graph =
  {
    g_nodes =
      List.map
        (fun n ->
          match n.kind with
          | MapN mn ->
              {
                nid = n.nid;
                kind =
                  MapN
                    {
                      m_params = mn.m_params;
                      m_ranges = mn.m_ranges;
                      m_body = copy_graph mn.m_body;
                      m_par = mn.m_par;
                    };
              }
          | Access _ | TaskletN _ -> { nid = n.nid; kind = n.kind })
        (nodes g);
    g_nodes_staged = [];
    g_edges =
      List.map
        (fun e ->
          {
            e_src = e.e_src;
            e_src_conn = e.e_src_conn;
            e_dst = e.e_dst;
            e_dst_conn = e.e_dst_conn;
            e_memlet = e.e_memlet;
          })
        (edges g);
    g_edges_staged = [];
  }

let copy_container (c : container) : container =
  {
    cname = c.cname;
    dtype = c.dtype;
    shape = c.shape;
    transient = c.transient;
    storage = c.storage;
    alloc_in_loop = c.alloc_in_loop;
    alloc_state = c.alloc_state;
  }

(** Deep-copy an SDFG (shares the name and id generator: a restored
    snapshot must keep drawing fresh names). *)
let copy (sdfg : t) : t =
  let containers = Hashtbl.create (Hashtbl.length sdfg.containers) in
  Hashtbl.iter
    (fun k c -> Hashtbl.replace containers k (copy_container c))
    sdfg.containers;
  let c =
    {
      name = sdfg.name;
      containers;
      sd_arg_order = arg_order sdfg;
      sd_arg_order_staged = [];
      param_order = sdfg.param_order;
      arg_symbols = sdfg.arg_symbols;
      sd_states =
        List.map
          (fun s -> { s_label = s.s_label; s_graph = copy_graph s.s_graph })
          (states sdfg);
      sd_states_staged = [];
      sd_state_index = Hashtbl.create 16;
      sd_iedges =
        List.map
          (fun e ->
            {
              ie_src = e.ie_src;
              ie_dst = e.ie_dst;
              ie_cond = e.ie_cond;
              ie_assign = e.ie_assign;
            })
          (istate_edges sdfg);
      sd_iedges_staged = [];
      start_state = sdfg.start_state;
      return_expr = sdfg.return_expr;
      return_scalar = sdfg.return_scalar;
      gen = sdfg.gen;
    }
  in
  reindex_states c;
  c

(** Overwrite [into] with the contents of snapshot [src] — the rollback
    half of checked execution. *)
let restore ~(into : t) (src : t) : unit =
  Hashtbl.reset into.containers;
  Hashtbl.iter (fun k c -> Hashtbl.replace into.containers k c) src.containers;
  set_arg_order into (arg_order src);
  into.param_order <- src.param_order;
  into.arg_symbols <- src.arg_symbols;
  set_states into (states src);
  set_istate_edges into (istate_edges src);
  into.start_state <- src.start_state;
  into.return_expr <- src.return_expr;
  into.return_scalar <- src.return_scalar

(* ------------------------------------------------------------------ *)
(* Graph queries *)

let node_by_id (g : graph) (nid : int) : node =
  match List.find_opt (fun n -> n.nid = nid) (nodes g) with
  | Some n -> n
  | None -> invalid_arg "Sdfg.node_by_id"

let node_in_edges (g : graph) (n : node) : edge list =
  List.filter (fun e -> e.e_dst = n.nid) (edges g)

let node_out_edges (g : graph) (n : node) : edge list =
  List.filter (fun e -> e.e_src = n.nid) (edges g)

(** Topological order of a state's dataflow graph. Raises on cycles (states
    must be acyclic). *)
let topo_order (g : graph) : node list =
  let ids = List.map (fun n -> n.nid) (nodes g) in
  let index_of = Hashtbl.create 16 in
  List.iteri (fun i nid -> Hashtbl.replace index_of nid i) ids;
  let dg =
    Dcir_support.Digraph.create ~n:(List.length ids)
      (List.filter_map
         (fun e ->
           match
             (Hashtbl.find_opt index_of e.e_src, Hashtbl.find_opt index_of e.e_dst)
           with
           | Some a, Some b -> Some (a, b)
           | _ -> None)
         (edges g))
  in
  let order = Dcir_support.Digraph.topo_sort dg in
  let arr = Array.of_list (nodes g) in
  List.map (fun i -> arr.(i)) order

(** Containers read (via load memlets into tasklets/maps/copies) in a
    graph, recursively. *)
let rec read_containers (g : graph) : string list =
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  List.iter
    (fun e ->
      match e.e_memlet with
      | Some m -> (
          (* A memlet going out of an Access node is a read of it. *)
          match (node_by_id g e.e_src).kind with
          | Access _ -> acc := S.add m.data !acc
          | _ -> ())
      | None -> ())
    (edges g);
  List.iter
    (fun n ->
      match n.kind with
      | MapN mn -> List.iter (fun c -> acc := S.add c !acc) (read_containers mn.m_body)
      | _ -> ())
    (nodes g);
  S.elements !acc

(** Containers written in a graph, recursively. *)
let rec written_containers (g : graph) : string list =
  (* For copy edges the memlet names the source; the written container is
     the destination access node's. *)
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  List.iter
    (fun e ->
      match e.e_memlet with
      | Some _ -> (
          match (node_by_id g e.e_dst).kind with
          | Access n -> acc := S.add n !acc
          | _ -> ())
      | None -> ())
    (edges g);
  List.iter
    (fun n ->
      match n.kind with
      | MapN mn ->
          List.iter (fun c -> acc := S.add c !acc) (written_containers mn.m_body)
      | _ -> ())
    (nodes g);
  S.elements !acc

(** Symbols referenced by a graph: memlet subsets, tasklet code, map
    ranges. *)
let rec graph_free_syms (g : graph) : string list =
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  let add l = List.iter (fun s -> acc := S.add s !acc) l in
  List.iter
    (fun e ->
      match e.e_memlet with
      | Some m ->
          add (Range.free_syms m.subset);
          (match m.other with
          | Some o -> add (Range.free_syms o)
          | None -> ())
      | None -> ())
    (edges g);
  List.iter
    (fun n ->
      match n.kind with
      | TaskletN ({ code = Native assigns; _ } as t) ->
          add t.t_syms;
          List.iter (fun (_, e) -> add (Texpr.free_syms e)) assigns
      | TaskletN ({ code = Opaque f; _ } as t) ->
          (* Symbols enter opaque tasklets two ways: declared [t_syms]
             (bound to leading [_sym_*] function parameters) and sdfg.sym
             ops in the body. *)
          add t.t_syms;
          (match f.Dcir_mlir.Ir.fbody with
          | Some r ->
              Dcir_mlir.Ir.walk_region r (fun o ->
                  match Dcir_mlir.Sdfg_d.sym_expr o with
                  | Some e -> add (Expr.free_syms e)
                  | None -> ())
          | None -> ())
      | MapN mn ->
          add (Range.free_syms mn.m_ranges);
          (* Map params shadow outer symbols. *)
          let inner = graph_free_syms mn.m_body in
          add (List.filter (fun s -> not (List.mem s mn.m_params)) inner)
      | Access _ -> ())
    (nodes g);
  S.elements !acc

(** All symbols an SDFG reads anywhere (conditions, assignments, shapes,
    graphs). *)
let free_syms (sdfg : t) : string list =
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  let add l = List.iter (fun s -> acc := S.add s !acc) l in
  List.iter (fun st -> add (graph_free_syms st.s_graph)) (states sdfg);
  List.iter
    (fun e ->
      add (Bexpr.free_syms e.ie_cond);
      List.iter (fun (_, ex) -> add (Expr.free_syms ex)) e.ie_assign)
    (istate_edges sdfg);
  Hashtbl.iter
    (fun _ c -> List.iter (fun d -> add (Expr.free_syms d)) c.shape)
    sdfg.containers;
  (match sdfg.return_expr with Some e -> add (Expr.free_syms e) | None -> ());
  S.elements !acc
