(** The Stateful Dataflow multiGraph IR (Ben-Nun et al., SC'19), as used by
    the paper.

    An SDFG is a state machine whose nodes (states) hold acyclic dataflow
    graphs. Data containers are declared globally; access nodes inside states
    name them, and edges between nodes carry {e memlets}: symbolic subsets of
    moved data. Interstate edges carry a symbolic condition and symbol
    assignments — loops appear as guard-pattern cycles whose induction
    variable is a symbol.

    One deliberate simplification versus DaCe: a parametric-parallel map is a
    single node holding a nested dataflow graph, instead of matched
    entry/exit nodes in a flat multigraph. External edges of the map node
    carry the aggregated memlets (what the analyses consume); the nested
    graph uses per-iteration subsets over the map parameters. The paper's
    pipeline never emits maps here (auto-parallelization is disabled in the
    evaluation, §7.1); maps are exercised by dedicated tests and examples. *)

open Dcir_symbolic

type dtype = DInt | DFloat

type storage =
  | Heap  (** malloc'd; allocation cost on every (re-)allocation *)
  | Stack  (** cheap allocation *)
  | Register  (** no memory traffic; scalars and tiny promoted buffers *)

type container = {
  cname : string;
  dtype : dtype;
  mutable shape : Expr.t list;  (** [[]] = scalar *)
  mutable transient : bool;  (** lifetime managed by the SDFG *)
  mutable storage : storage;
  mutable alloc_in_loop : bool;
      (** came from an allocation inside a loop: allocation cost recurs on
          every execution of the allocating state until hoisted (§6.3) *)
  mutable alloc_state : string option;
      (** the state whose execution pays the allocation when
          [alloc_in_loop] is set *)
}

let elem_bytes (c : container) : int =
  match c.dtype with DInt -> 8 | DFloat -> 8

let is_scalar (c : container) : bool = c.shape = []

type wcr = WcrSum | WcrProd | WcrMax | WcrMin

let wcr_of_string = function
  | "add" | "sum" -> Some WcrSum
  | "mul" | "prod" -> Some WcrProd
  | "max" -> Some WcrMax
  | "min" -> Some WcrMin
  | _ -> None

let wcr_to_string = function
  | WcrSum -> "add"
  | WcrProd -> "mul"
  | WcrMax -> "max"
  | WcrMin -> "min"

type memlet = {
  data : string;  (** container name *)
  subset : Range.t;
  wcr : wcr option;  (** write-conflict resolution: store becomes update *)
  other : Range.t option;
      (** for Access-to-Access copy edges: the destination subset (the
          source subset is [subset]); [None] everywhere else *)
}

type tasklet_code =
  | Native of Texpr.code
      (** analyzable assignments [out_conn := expr] (raised tasklets) *)
  | Opaque of Dcir_mlir.Ir.func
      (** black-box unit compiled separately (MLIR/C tasklets): executed via
          the MLIR interpreter with link-time overhead, invisible to
          data-centric analysis *)

type tasklet = {
  tname : string;
  t_inputs : string list;  (** input connector names *)
  t_outputs : string list;
  t_syms : string list;
      (** symbols the tasklet reads (read-only, freely accessible §3.2);
          opaque bodies receive them as leading parameters *)
  code : tasklet_code;
  t_overhead : float;
      (** per-invocation cycle cost: 0 for raised/inlined tasklets, positive
          for separately-compiled MLIR tasklets that rely on LTO (§5.2) *)
}

type node_kind =
  | Access of string  (** of a container *)
  | TaskletN of tasklet
  | MapN of map_node

and map_node = {
  m_params : string list;
  mutable m_ranges : Range.dim list;
  m_body : graph;
}

and node = { nid : int; kind : node_kind }

and edge = {
  e_src : int;
  e_src_conn : string option;  (** tasklet output connector, if any *)
  e_dst : int;
  e_dst_conn : string option;
  mutable e_memlet : memlet option;  (** [None] = pure dependency edge *)
}

and graph = { mutable nodes : node list; mutable edges : edge list }

type state = { s_label : string; s_graph : graph }

type istate_edge = {
  ie_src : string;
  ie_dst : string;
  mutable ie_cond : Bexpr.t;
  mutable ie_assign : (string * Expr.t) list;
}

type t = {
  name : string;
  containers : (string, container) Hashtbl.t;
  mutable arg_order : string list;
      (** non-transient containers in parameter order *)
  mutable param_order : string list;
      (** original function parameter names (container names at creation);
          a promoted scalar parameter stays here but moves to
          [arg_symbols] — runners bind positionally through this list *)
  mutable arg_symbols : string list;
      (** free symbols bound by the caller (sizes, promoted scalar params) *)
  mutable states : state list;
  mutable istate_edges : istate_edge list;
  mutable start_state : string;
  mutable return_expr : Expr.t option;
      (** symbolic return value, if the function returns through a symbol *)
  mutable return_scalar : string option;
      (** or the scalar container holding the return value *)
  gen : Dcir_support.Id_gen.t;
}

(* ------------------------------------------------------------------ *)
(* Construction *)

let create (name : string) : t =
  {
    name;
    containers = Hashtbl.create 16;
    arg_order = [];
    param_order = [];
    arg_symbols = [];
    states = [];
    istate_edges = [];
    start_state = "";
    return_expr = None;
    return_scalar = None;
    gen = Dcir_support.Id_gen.create ();
  }

let add_container (sdfg : t) ?(transient = true) ?(storage = Heap)
    ?(alloc_in_loop = false) ~(dtype : dtype) ~(shape : Expr.t list)
    (cname : string) : container =
  if Hashtbl.mem sdfg.containers cname then
    invalid_arg ("Sdfg.add_container: duplicate " ^ cname);
  let c =
    { cname; dtype; shape; transient; storage; alloc_in_loop; alloc_state = None }
  in
  Hashtbl.replace sdfg.containers cname c;
  if not transient then sdfg.arg_order <- sdfg.arg_order @ [ cname ];
  c

let container (sdfg : t) (name : string) : container =
  match Hashtbl.find_opt sdfg.containers name with
  | Some c -> c
  | None -> invalid_arg ("Sdfg.container: unknown " ^ name)

let remove_container (sdfg : t) (name : string) : unit =
  Hashtbl.remove sdfg.containers name;
  sdfg.arg_order <- List.filter (fun n -> not (String.equal n name)) sdfg.arg_order

let fresh_name (sdfg : t) (prefix : string) : string =
  let rec try_ () =
    let n = Dcir_support.Id_gen.fresh sdfg.gen prefix in
    if Hashtbl.mem sdfg.containers n then try_ () else n
  in
  try_ ()

let new_graph () : graph = { nodes = []; edges = [] }

let node_counter = ref 0

let add_node (g : graph) (kind : node_kind) : node =
  incr node_counter;
  let n = { nid = !node_counter; kind } in
  g.nodes <- g.nodes @ [ n ];
  n

let add_edge (g : graph) ?(src_conn : string option)
    ?(dst_conn : string option) ?(memlet : memlet option) (src : node)
    (dst : node) : edge =
  let e =
    {
      e_src = src.nid;
      e_src_conn = src_conn;
      e_dst = dst.nid;
      e_dst_conn = dst_conn;
      e_memlet = memlet;
    }
  in
  g.edges <- g.edges @ [ e ];
  e

let add_state (sdfg : t) (label : string) : state =
  let s = { s_label = label; s_graph = new_graph () } in
  sdfg.states <- sdfg.states @ [ s ];
  if sdfg.start_state = "" then sdfg.start_state <- label;
  s

let find_state (sdfg : t) (label : string) : state option =
  List.find_opt (fun s -> String.equal s.s_label label) sdfg.states

let add_istate_edge (sdfg : t) ?(cond = Bexpr.true_) ?(assign = []) ~(src : string)
    ~(dst : string) () : unit =
  sdfg.istate_edges <-
    sdfg.istate_edges
    @ [ { ie_src = src; ie_dst = dst; ie_cond = cond; ie_assign = assign } ]

let out_edges (sdfg : t) (label : string) : istate_edge list =
  List.filter (fun e -> String.equal e.ie_src label) sdfg.istate_edges

let in_edges (sdfg : t) (label : string) : istate_edge list =
  List.filter (fun e -> String.equal e.ie_dst label) sdfg.istate_edges

(* ------------------------------------------------------------------ *)
(* Snapshot / restore — the checked-execution primitives of
   {!Dcir_dace_passes.Driver}. Every mutable record (containers, graphs,
   nodes with map bodies, edges, interstate edges) is copied fresh;
   immutable payloads (symbolic expressions, tasklet records, memlets) are
   shared. *)

let rec copy_graph (g : graph) : graph =
  {
    nodes =
      List.map
        (fun n ->
          match n.kind with
          | MapN mn ->
              {
                nid = n.nid;
                kind =
                  MapN
                    {
                      m_params = mn.m_params;
                      m_ranges = mn.m_ranges;
                      m_body = copy_graph mn.m_body;
                    };
              }
          | Access _ | TaskletN _ -> { nid = n.nid; kind = n.kind })
        g.nodes;
    edges =
      List.map
        (fun e ->
          {
            e_src = e.e_src;
            e_src_conn = e.e_src_conn;
            e_dst = e.e_dst;
            e_dst_conn = e.e_dst_conn;
            e_memlet = e.e_memlet;
          })
        g.edges;
  }

let copy_container (c : container) : container =
  {
    cname = c.cname;
    dtype = c.dtype;
    shape = c.shape;
    transient = c.transient;
    storage = c.storage;
    alloc_in_loop = c.alloc_in_loop;
    alloc_state = c.alloc_state;
  }

(** Deep-copy an SDFG (shares the name and id generator: a restored
    snapshot must keep drawing fresh names). *)
let copy (sdfg : t) : t =
  let containers = Hashtbl.create (Hashtbl.length sdfg.containers) in
  Hashtbl.iter
    (fun k c -> Hashtbl.replace containers k (copy_container c))
    sdfg.containers;
  {
    name = sdfg.name;
    containers;
    arg_order = sdfg.arg_order;
    param_order = sdfg.param_order;
    arg_symbols = sdfg.arg_symbols;
    states =
      List.map
        (fun s -> { s_label = s.s_label; s_graph = copy_graph s.s_graph })
        sdfg.states;
    istate_edges =
      List.map
        (fun e ->
          {
            ie_src = e.ie_src;
            ie_dst = e.ie_dst;
            ie_cond = e.ie_cond;
            ie_assign = e.ie_assign;
          })
        sdfg.istate_edges;
    start_state = sdfg.start_state;
    return_expr = sdfg.return_expr;
    return_scalar = sdfg.return_scalar;
    gen = sdfg.gen;
  }

(** Overwrite [into] with the contents of snapshot [src] — the rollback
    half of checked execution. *)
let restore ~(into : t) (src : t) : unit =
  Hashtbl.reset into.containers;
  Hashtbl.iter (fun k c -> Hashtbl.replace into.containers k c) src.containers;
  into.arg_order <- src.arg_order;
  into.param_order <- src.param_order;
  into.arg_symbols <- src.arg_symbols;
  into.states <- src.states;
  into.istate_edges <- src.istate_edges;
  into.start_state <- src.start_state;
  into.return_expr <- src.return_expr;
  into.return_scalar <- src.return_scalar

(* ------------------------------------------------------------------ *)
(* Graph queries *)

let node_by_id (g : graph) (nid : int) : node =
  match List.find_opt (fun n -> n.nid = nid) g.nodes with
  | Some n -> n
  | None -> invalid_arg "Sdfg.node_by_id"

let node_in_edges (g : graph) (n : node) : edge list =
  List.filter (fun e -> e.e_dst = n.nid) g.edges

let node_out_edges (g : graph) (n : node) : edge list =
  List.filter (fun e -> e.e_src = n.nid) g.edges

(** Topological order of a state's dataflow graph. Raises on cycles (states
    must be acyclic). *)
let topo_order (g : graph) : node list =
  let ids = List.map (fun n -> n.nid) g.nodes in
  let index_of = Hashtbl.create 16 in
  List.iteri (fun i nid -> Hashtbl.replace index_of nid i) ids;
  let dg =
    Dcir_support.Digraph.create ~n:(List.length ids)
      (List.filter_map
         (fun e ->
           match
             (Hashtbl.find_opt index_of e.e_src, Hashtbl.find_opt index_of e.e_dst)
           with
           | Some a, Some b -> Some (a, b)
           | _ -> None)
         g.edges)
  in
  let order = Dcir_support.Digraph.topo_sort dg in
  let arr = Array.of_list g.nodes in
  List.map (fun i -> arr.(i)) order

(** Containers read (via load memlets into tasklets/maps/copies) in a
    graph, recursively. *)
let rec read_containers (g : graph) : string list =
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  List.iter
    (fun e ->
      match e.e_memlet with
      | Some m -> (
          (* A memlet going out of an Access node is a read of it. *)
          match (node_by_id g e.e_src).kind with
          | Access _ -> acc := S.add m.data !acc
          | _ -> ())
      | None -> ())
    g.edges;
  List.iter
    (fun n ->
      match n.kind with
      | MapN mn -> List.iter (fun c -> acc := S.add c !acc) (read_containers mn.m_body)
      | _ -> ())
    g.nodes;
  S.elements !acc

(** Containers written in a graph, recursively. *)
let rec written_containers (g : graph) : string list =
  (* For copy edges the memlet names the source; the written container is
     the destination access node's. *)
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  List.iter
    (fun e ->
      match e.e_memlet with
      | Some _ -> (
          match (node_by_id g e.e_dst).kind with
          | Access n -> acc := S.add n !acc
          | _ -> ())
      | None -> ())
    g.edges;
  List.iter
    (fun n ->
      match n.kind with
      | MapN mn ->
          List.iter (fun c -> acc := S.add c !acc) (written_containers mn.m_body)
      | _ -> ())
    g.nodes;
  S.elements !acc

(** Symbols referenced by a graph: memlet subsets, tasklet code, map
    ranges. *)
let rec graph_free_syms (g : graph) : string list =
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  let add l = List.iter (fun s -> acc := S.add s !acc) l in
  List.iter
    (fun e ->
      match e.e_memlet with
      | Some m ->
          add (Range.free_syms m.subset);
          (match m.other with
          | Some o -> add (Range.free_syms o)
          | None -> ())
      | None -> ())
    g.edges;
  List.iter
    (fun n ->
      match n.kind with
      | TaskletN ({ code = Native assigns; _ } as t) ->
          add t.t_syms;
          List.iter (fun (_, e) -> add (Texpr.free_syms e)) assigns
      | TaskletN ({ code = Opaque f; _ } as t) ->
          (* Symbols enter opaque tasklets two ways: declared [t_syms]
             (bound to leading [_sym_*] function parameters) and sdfg.sym
             ops in the body. *)
          add t.t_syms;
          (match f.Dcir_mlir.Ir.fbody with
          | Some r ->
              Dcir_mlir.Ir.walk_region r (fun o ->
                  match Dcir_mlir.Sdfg_d.sym_expr o with
                  | Some e -> add (Expr.free_syms e)
                  | None -> ())
          | None -> ())
      | MapN mn ->
          add (Range.free_syms mn.m_ranges);
          (* Map params shadow outer symbols. *)
          let inner = graph_free_syms mn.m_body in
          add (List.filter (fun s -> not (List.mem s mn.m_params)) inner)
      | Access _ -> ())
    g.nodes;
  S.elements !acc

(** All symbols an SDFG reads anywhere (conditions, assignments, shapes,
    graphs). *)
let free_syms (sdfg : t) : string list =
  let module S = Set.Make (String) in
  let acc = ref S.empty in
  let add l = List.iter (fun s -> acc := S.add s !acc) l in
  List.iter (fun st -> add (graph_free_syms st.s_graph)) sdfg.states;
  List.iter
    (fun e ->
      add (Bexpr.free_syms e.ie_cond);
      List.iter (fun (_, ex) -> add (Expr.free_syms ex)) e.ie_assign)
    sdfg.istate_edges;
  Hashtbl.iter
    (fun _ c -> List.iter (fun d -> add (Expr.free_syms d)) c.shape)
    sdfg.containers;
  (match sdfg.return_expr with Some e -> add (Expr.free_syms e) | None -> ());
  S.elements !acc
