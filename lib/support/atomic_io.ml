(** Crash-safe file writes.

    Journals and bench reports are the durable record of a run; a process
    killed mid-write (crash, OOM kill, chaos fault) must never leave a
    torn file where a previous good artifact stood. [write] stages the
    content in a sibling temp file and moves it into place with
    [Sys.rename], which is atomic on POSIX filesystems: readers observe
    either the old complete file or the new complete file, never a
    prefix. On any exception from the emitter the temp file is removed
    and the destination is left untouched. *)

(** [write path emit] atomically replaces [path] with the bytes [emit]
    writes to the channel it is given. *)
let write (path : string) (emit : out_channel -> unit) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     emit oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path
