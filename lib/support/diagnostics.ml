(** Structured diagnostics for the compilation pipeline.

    Every user-reachable failure carries a stable error code, the pipeline
    phase it arose in, and a human-readable message — so the CLI can render
    a one-line diagnostic and exit cleanly instead of dumping an
    uncaught-exception backtrace, and so tests can assert on codes rather
    than message prose.

    The module also defines the {!incident} record shared by the checked
    pass drivers (MLIR pass manager, DaCe driver): one incident per pass
    execution that was rolled back because it crashed or produced IR that
    fails verification. *)

type phase =
  | Frontend  (** C parse / sema / lowering *)
  | ControlOpt  (** MLIR control-centric pass pipeline *)
  | Verify  (** MLIR verifier *)
  | Convert  (** core-dialect -> sdfg-dialect conversion *)
  | Translate  (** sdfg dialect -> SDFG IR translation *)
  | DataOpt  (** data-centric pass pipeline *)
  | Validate  (** SDFG validation *)
  | Execute  (** simulated-machine execution *)
  | Fuzz  (** fuzz harness *)
  | Cli  (** argument handling / IO in the driver *)

let phase_name = function
  | Frontend -> "frontend"
  | ControlOpt -> "control-opt"
  | Verify -> "verify"
  | Convert -> "convert"
  | Translate -> "translate"
  | DataOpt -> "data-opt"
  | Validate -> "validate"
  | Execute -> "execute"
  | Fuzz -> "fuzz"
  | Cli -> "cli"

type t = { code : string; phase : phase; message : string }

exception Error of t

let make ~(code : string) ~(phase : phase) (message : string) : t =
  { code; phase; message }

(** Raise {!Error} with a formatted message. *)
let fail ~(code : string) ~(phase : phase) fmt =
  Fmt.kstr (fun message -> raise (Error { code; phase; message })) fmt

(* Single-line rendering: multi-line payloads (e.g. several verifier
   diagnostics) are folded onto one line so shell pipelines stay sane. *)
let one_line (s : string) : string =
  String.concat "; " (String.split_on_char '\n' s)

let to_string (d : t) : string =
  Printf.sprintf "[%s] %s: %s" d.code (phase_name d.phase) (one_line d.message)

let pp (ppf : Format.formatter) (d : t) : unit =
  Format.pp_print_string ppf (to_string d)

(* ------------------------------------------------------------------ *)
(* Checked-execution incidents *)

type incident = {
  in_pass : string;  (** name of the pass that was rolled back *)
  in_round : int;  (** fixpoint round (1-based) the failure occurred in *)
  reason : string;  (** verifier/validator diagnostics, or the exception *)
  reproducer : string option;  (** path of the crash-reproducer file, if
                                   one was written *)
}

let pp_incident (ppf : Format.formatter) (i : incident) : unit =
  Format.fprintf ppf "pass '%s' rolled back in round %d: %s%s" i.in_pass
    i.in_round (one_line i.reason)
    (match i.reproducer with
    | Some path -> Printf.sprintf " (reproducer: %s)" path
    | None -> "")
