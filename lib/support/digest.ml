(** Deterministic content digests for the artifact store.

    A digest is a pure function of the input bytes — no host state, no
    randomization, no dependence on word size beyond the fixed 64-bit
    arithmetic of [Int64] — so the same printed program hashes to the
    same key on every machine and every run. That stability is what makes
    the content-addressed plan store ({!Cstore}) reproducible: cache hits
    and misses are part of the deterministic decision record, not an
    accident of process layout.

    The construction is two independent FNV-1a-style 64-bit lanes (with
    distinct offset bases and an extra avalanche mix borrowed from
    splitmix64) concatenated into a 32-hex-character string. This is not
    a cryptographic hash — the threat model is accidental collision
    between distinct printed programs, not an adversary forging keys —
    and 128 bits of well-mixed state makes accidental collision
    negligible at any plausible store size. *)

(* FNV-1a primes/offsets (64-bit), second lane offset is the first with
   the bits of pi folded in so the lanes decorrelate from the start. *)
let fnv_prime = 0x100000001B3L
let offset_a = 0xCBF29CE484222325L
let offset_b = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer: full avalanche, so nearby inputs (one changed
   byte) land in unrelated buckets. *)
let mix (z : int64) : int64 =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let lane (offset : int64) (s : string) : int64 =
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  mix !h

(** [of_string s] — the 32-hex-character content digest of [s]. *)
let of_string (s : string) : string =
  Printf.sprintf "%016Lx%016Lx" (lane offset_a s) (lane offset_b s)

(** [canonical s] — [s] with every serial-numbered token renumbered by
    first occurrence, per prefix: the first [#]-token becomes [#0], the
    first [_tmp]-suffixed name [_tmp0], and so on, consistently at every
    occurrence in the text.

    Printed IR embeds ids drawn from process-global counters (SDFG node
    ids, MLIR value ids, tasklet serials), so the {e same} source
    compiled at two different points of a process prints with different
    serials. Canonicalizing before digesting makes the digest a pure
    function of the artifact's structure — the property the
    content-addressed store needs to deduplicate identical programs
    across requests and tenants. The rewrite is a bijective rename
    within one text (prefixes are preserved; distinct tokens stay
    distinct), so two texts share a canonical form only when they are
    identical up to consistent renaming of numbered identifiers.

    A token is a maximal run of identifier characters (including [%]
    and [#]) that {e starts} with a non-digit and {e ends} with digits;
    digit-led runs (numeric literals like [1.5e10] or [0x1A]) pass
    through untouched. *)
let canonical (s : string) : string =
  let is_digit c = c >= '0' && c <= '9' in
  let is_start c =
    (c >= 'A' && c <= 'Z')
    || (c >= 'a' && c <= 'z')
    || c = '_' || c = '%' || c = '#'
  in
  let is_part c = is_start c || is_digit c in
  let n = String.length s in
  let buf = Buffer.create n in
  let renamed : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let counters : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if is_part c then begin
      let j = ref !i in
      while !j < n && is_part s.[!j] do incr j done;
      let tok = String.sub s !i (!j - !i) in
      i := !j;
      (* Trailing-digit split: [k] is the prefix length. *)
      let k = ref (String.length tok) in
      while !k > 0 && is_digit tok.[!k - 1] do decr k done;
      if is_digit c || !k = 0 || !k = String.length tok then
        Buffer.add_string buf tok
      else
        let canon =
          match Hashtbl.find_opt renamed tok with
          | Some canon -> canon
          | None ->
              let prefix = String.sub tok 0 !k in
              let counter =
                match Hashtbl.find_opt counters prefix with
                | Some r -> r
                | None ->
                    let r = ref 0 in
                    Hashtbl.add counters prefix r;
                    r
              in
              let canon = Printf.sprintf "%s%d" prefix !counter in
              incr counter;
              Hashtbl.add renamed tok canon;
              canon
        in
        Buffer.add_string buf canon
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

(** Number of hex characters in a digest. *)
let hex_length = 32

(** [shard_of d ~shards] — deterministic shard index in [0, shards) for
    digest [d], taken from the digest's own bits rather than any
    process-dependent hash. Accepts arbitrary strings (non-digest keys
    fall back to a byte fold) so {!Cstore} can shard any key space. *)
let shard_of (d : string) ~(shards : int) : int =
  if shards <= 1 then 0
  else
    let v =
      (* First 8 hex chars when they parse; else fold the raw bytes. *)
      match
        if String.length d >= 8 then
          int_of_string_opt ("0x" ^ String.sub d 0 8)
        else None
      with
      | Some v -> v
      | None ->
          let h = ref 0 in
          String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0x3FFFFFFF) d;
          !h
    in
    abs v mod shards
