(** Content-addressed artifact store: sharded buckets, per-shard LRU
    eviction, configurable capacity.

    The store maps string keys (content digests, see {!Digest}) to
    arbitrary artifacts. Keys are distributed over [shards] buckets by
    {!Digest.shard_of} — a pure function of the key — and each bucket
    evicts least-recently-used entries once it reaches its slice of the
    total [capacity]. Recency is a logical access counter, not a clock,
    so the full hit/miss/evict trajectory of a store is a deterministic
    function of the operation sequence: two runs that perform the same
    lookups and insertions observe byte-identical telemetry.

    Capacity edge cases are first-class: [capacity = 0] disables the
    store entirely ([find] always misses, [add] stores nothing), and
    [capacity < shards] collapses to fewer shards rather than starving
    buckets. The eviction callback receives every displaced [(key,
    artifact)] pair so callers can count and journal evictions. *)

type 'a entry = {
  e_key : string;
  mutable e_value : 'a;
  mutable e_last_use : int;  (** logical access counter at last touch *)
}

type 'a t = {
  capacity : int;  (** total entries across all shards *)
  shard_tbl : 'a entry list array;
  mutable clock : int;  (** logical access counter *)
  mutable count : int;  (** live entries *)
}

(** [create ~capacity ?shards ()] — [shards] defaults to 4; clamped to
    [capacity] so every shard can hold at least one entry. *)
let create ?(shards = 4) ~(capacity : int) () : 'a t =
  if capacity < 0 then invalid_arg "Cstore.create: negative capacity";
  if shards < 1 then invalid_arg "Cstore.create: shards must be >= 1";
  let shards = max 1 (min shards capacity) in
  { capacity; shard_tbl = Array.make shards []; clock = 0; count = 0 }

let capacity (t : 'a t) : int = t.capacity
let length (t : 'a t) : int = t.count
let shard_count (t : 'a t) : int = Array.length t.shard_tbl

(* Shard slice of the total capacity: even split, remainder to the
   lowest-indexed shards (deterministic). *)
let shard_capacity (t : 'a t) (i : int) : int =
  let n = Array.length t.shard_tbl in
  (t.capacity / n) + if i < t.capacity mod n then 1 else 0

let shard_index (t : 'a t) (key : string) : int =
  Digest.shard_of key ~shards:(Array.length t.shard_tbl)

let touch (t : 'a t) (e : 'a entry) : unit =
  t.clock <- t.clock + 1;
  e.e_last_use <- t.clock

(** [find t key] — the stored artifact, bumping its recency; [None] on
    miss (always, when the store has zero capacity). *)
let find (t : 'a t) (key : string) : 'a option =
  if t.capacity = 0 then None
  else
    let i = shard_index t key in
    match List.find_opt (fun e -> String.equal e.e_key key) t.shard_tbl.(i) with
    | Some e ->
        touch t e;
        Some e.e_value
    | None -> None

let mem (t : 'a t) (key : string) : bool =
  t.capacity > 0
  && List.exists
       (fun e -> String.equal e.e_key key)
       t.shard_tbl.(shard_index t key)

(* Least-recently-used entry of a shard; ties cannot arise (the logical
   clock is strictly increasing). *)
let lru (entries : 'a entry list) : 'a entry option =
  List.fold_left
    (fun acc e ->
      match acc with
      | Some best when best.e_last_use <= e.e_last_use -> acc
      | _ -> Some e)
    None entries

(** [add t key v] — insert (or refresh) [key]; returns the evicted
    [(key, artifact)] pairs, oldest first (at most one per call; [[]]
    when the shard had room, the key was already present, or the store
    has zero capacity — in which case nothing is stored either). *)
let add (t : 'a t) (key : string) (v : 'a) : (string * 'a) list =
  if t.capacity = 0 then []
  else
    let i = shard_index t key in
    match List.find_opt (fun e -> String.equal e.e_key key) t.shard_tbl.(i) with
    | Some e ->
        e.e_value <- v;
        touch t e;
        []
    | None ->
        let cap = shard_capacity t i in
        let evicted =
          if List.length t.shard_tbl.(i) >= cap then
            match lru t.shard_tbl.(i) with
            | Some victim ->
                t.shard_tbl.(i) <-
                  List.filter (fun e -> e != victim) t.shard_tbl.(i);
                t.count <- t.count - 1;
                [ (victim.e_key, victim.e_value) ]
            | None -> []
          else []
        in
        t.clock <- t.clock + 1;
        t.shard_tbl.(i) <-
          { e_key = key; e_value = v; e_last_use = t.clock } :: t.shard_tbl.(i);
        t.count <- t.count + 1;
        evicted

(** Drop every entry (capacity and shard layout are retained). *)
let clear (t : 'a t) : unit =
  Array.iteri (fun i _ -> t.shard_tbl.(i) <- []) t.shard_tbl;
  t.count <- 0;
  t.clock <- 0

(** Keys currently stored, sorted (deterministic — for telemetry and
    tests, not for lookup). *)
let keys (t : 'a t) : string list =
  Array.to_list t.shard_tbl
  |> List.concat_map (fun es -> List.map (fun e -> e.e_key) es)
  |> List.sort compare
